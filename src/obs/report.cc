#include "obs/report.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "campaign/stopping.h"
#include "obs/telemetry.h"

namespace seg::obs {

namespace {

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string fmt_u64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

// A histogram counts as a phase latency when it follows the SEG_TIMED
// naming convention ("phase.<name>_us") or is the campaign engine's
// per-replica wall-time histogram.
bool is_phase_histogram(const std::string& name) {
  return name.rfind("phase.", 0) == 0 || name == "campaign.replica_us";
}

}  // namespace

RunReport build_report(const CampaignResult& result, double wall_time_s) {
  RunReport rep;
  rep.seed = result.seed;
  rep.points = result.points.size();
  for (const PointResult& p : result.points) {
    switch (p.state) {
      case PointState::kFixed: ++rep.points_fixed; break;
      case PointState::kStopped: ++rep.points_stopped; break;
      case PointState::kCapped: ++rep.points_capped; break;
      case PointState::kOpen: ++rep.points_open; break;
    }
  }
  rep.replicas_done = result.replicas_done;
  rep.replicas_resumed = result.replicas_resumed;
  rep.complete = result.complete;
  rep.checkpoint_write_failed = result.checkpoint_write_failed;
  rep.wall_time_s = wall_time_s;

  Registry& reg = Registry::instance();
  rep.flips = reg.counter_value("engine.flips");
  rep.checkpoints_written = reg.counter_value("campaign.checkpoints");

  for (const MetricSample& s : reg.snapshot()) {
    if (s.kind != MetricKind::kHistogram || !is_phase_histogram(s.name)) {
      continue;
    }
    if (s.histogram_count == 0) continue;
    PhaseLatency ph;
    ph.name = s.name;
    ph.count = s.histogram_count;
    ph.p50_us = quantile_from_log2_buckets(s.buckets, 0.50);
    ph.p95_us = quantile_from_log2_buckets(s.buckets, 0.95);
    ph.p99_us = quantile_from_log2_buckets(s.buckets, 0.99);
    rep.phases.push_back(std::move(ph));
  }
  std::sort(rep.phases.begin(), rep.phases.end(),
            [](const PhaseLatency& a, const PhaseLatency& b) {
              return a.name < b.name;
            });

  const double wall_us = wall_time_s * 1e6;
  for (const auto& [name, busy_us] :
       reg.counters_with_prefix("pool.campaign.worker.")) {
    WorkerUtilization w;
    w.name = name;
    w.busy_us = busy_us;
    w.utilization =
        wall_us > 0.0
            ? std::clamp(static_cast<double>(busy_us) / wall_us, 0.0, 1.0)
            : 0.0;
    rep.workers.push_back(std::move(w));
  }

  rep.decisions = result.decision_trace.size();
  if (!result.decision_trace.empty()) {
    rep.decision_trace_hash = decision_trace_hash(result.decision_trace);
    std::size_t lo = result.decision_trace.front().replicas;
    std::size_t hi = lo;
    double sum = 0.0;
    for (const StopDecision& d : result.decision_trace) {
      lo = std::min<std::size_t>(lo, d.replicas);
      hi = std::max<std::size_t>(hi, d.replicas);
      sum += d.replicas;
    }
    rep.min_stop_replicas = lo;
    rep.max_stop_replicas = hi;
    rep.mean_stop_replicas =
        sum / static_cast<double>(result.decision_trace.size());
  }
  return rep;
}

std::string render_json(const RunReport& r) {
  std::string out;
  out.reserve(2048);
  out += "{\n  \"campaign\": {\n";
  out += "    \"seed\": " + fmt_u64(r.seed) + ",\n";
  out += "    \"points\": " + fmt_u64(r.points) + ",\n";
  out += "    \"points_by_state\": {\"fixed\": " + fmt_u64(r.points_fixed) +
         ", \"stopped\": " + fmt_u64(r.points_stopped) +
         ", \"capped\": " + fmt_u64(r.points_capped) +
         ", \"open\": " + fmt_u64(r.points_open) + "},\n";
  out += "    \"replicas_done\": " + fmt_u64(r.replicas_done) + ",\n";
  out += "    \"replicas_resumed\": " + fmt_u64(r.replicas_resumed) + ",\n";
  out += std::string("    \"complete\": ") + (r.complete ? "true" : "false") +
         ",\n";
  out += "    \"wall_time_s\": " + fmt_double(r.wall_time_s) + ",\n";
  out += "    \"flips\": " + fmt_u64(r.flips) + "\n  },\n";

  out += "  \"phases\": [";
  for (std::size_t i = 0; i < r.phases.size(); ++i) {
    const PhaseLatency& p = r.phases[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"" + p.name + "\", \"count\": " +
           fmt_u64(p.count) + ", \"p50_us\": " + fmt_double(p.p50_us) +
           ", \"p95_us\": " + fmt_double(p.p95_us) +
           ", \"p99_us\": " + fmt_double(p.p99_us) + "}";
  }
  out += r.phases.empty() ? "],\n" : "\n  ],\n";

  out += "  \"workers\": [";
  for (std::size_t i = 0; i < r.workers.size(); ++i) {
    const WorkerUtilization& w = r.workers[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"" + w.name + "\", \"busy_us\": " +
           fmt_u64(w.busy_us) + ", \"utilization\": " +
           fmt_double(w.utilization) + "}";
  }
  out += r.workers.empty() ? "],\n" : "\n  ],\n";

  out += "  \"adaptive\": {\"decisions\": " + fmt_u64(r.decisions);
  if (r.decisions > 0) {
    out += ", \"decision_trace_hash\": " + fmt_u64(r.decision_trace_hash) +
           ", \"min_stop_replicas\": " + fmt_u64(r.min_stop_replicas) +
           ", \"max_stop_replicas\": " + fmt_u64(r.max_stop_replicas) +
           ", \"mean_stop_replicas\": " + fmt_double(r.mean_stop_replicas);
  }
  out += "},\n";

  out += "  \"checkpoints\": {\"written\": " + fmt_u64(r.checkpoints_written) +
         ", \"write_failed\": " +
         (r.checkpoint_write_failed ? "true" : "false") +
         ", \"replicas_resumed\": " + fmt_u64(r.replicas_resumed) + "}\n";
  out += "}\n";
  return out;
}

std::string render_markdown(const RunReport& r) {
  std::string out;
  out.reserve(2048);
  out += "# Campaign run report\n\n";
  out += "- seed: " + fmt_u64(r.seed) + "\n";
  out += "- points: " + fmt_u64(r.points) + " (fixed " +
         fmt_u64(r.points_fixed) + ", stopped " + fmt_u64(r.points_stopped) +
         ", capped " + fmt_u64(r.points_capped) + ", open " +
         fmt_u64(r.points_open) + ")\n";
  out += "- replicas: " + fmt_u64(r.replicas_done) + " done, " +
         fmt_u64(r.replicas_resumed) + " resumed from checkpoint\n";
  out += std::string("- complete: ") + (r.complete ? "yes" : "no") + "\n";
  out += "- wall time: " + fmt_double(r.wall_time_s) + " s\n";
  out += "- flips: " + fmt_u64(r.flips) + "\n";
  out += "- checkpoints written: " + fmt_u64(r.checkpoints_written) +
         (r.checkpoint_write_failed ? " (a write FAILED)" : "") + "\n";

  if (!r.phases.empty()) {
    out += "\n## Phase latencies (us)\n\n";
    out += "| phase | count | p50 | p95 | p99 |\n";
    out += "|---|---:|---:|---:|---:|\n";
    for (const PhaseLatency& p : r.phases) {
      out += "| " + p.name + " | " + fmt_u64(p.count) + " | " +
             fmt_double(p.p50_us) + " | " + fmt_double(p.p95_us) + " | " +
             fmt_double(p.p99_us) + " |\n";
    }
  }

  if (!r.workers.empty()) {
    out += "\n## Worker utilization\n\n";
    out += "| worker | busy (us) | utilization |\n";
    out += "|---|---:|---:|\n";
    for (const WorkerUtilization& w : r.workers) {
      char pct[16];
      std::snprintf(pct, sizeof(pct), "%.1f%%", 100.0 * w.utilization);
      out += "| " + w.name + " | " + fmt_u64(w.busy_us) + " | " + pct +
             " |\n";
    }
  }

  if (r.decisions > 0) {
    out += "\n## Adaptive stopping\n\n";
    out += "- decisions: " + fmt_u64(r.decisions) + "\n";
    out += "- decision trace hash: " + fmt_u64(r.decision_trace_hash) + "\n";
    out += "- replicas to stop: min " + fmt_u64(r.min_stop_replicas) +
           ", mean " + fmt_double(r.mean_stop_replicas) + ", max " +
           fmt_u64(r.max_stop_replicas) + "\n";
  }
  return out;
}

bool write_report(const RunReport& report, const std::string& path) {
  const bool markdown =
      (path.size() >= 3 && path.compare(path.size() - 3, 3, ".md") == 0) ||
      (path.size() >= 9 &&
       path.compare(path.size() - 9, 9, ".markdown") == 0);
  const std::string body =
      markdown ? render_markdown(report) : render_json(report);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace seg::obs
