// Dynamics engines driving a SchellingModel to its absorbing state.
//
//  * run_glauber   — the paper's process: i.i.d. rate-1 Poisson clocks,
//                    flips happen only when the ringing agent is unhappy
//                    and flipping makes it happy. Simulated event-driven:
//                    between effective flips, continuous time advances by
//                    Exp(1)/|flippable| (superposition of Poisson clocks
//                    conditioned on an effective ring).
//  * run_discrete  — the equivalent discrete-time chain the paper states
//                    (Sec. II-A): each step picks one unhappy agent
//                    uniformly at random and flips it iff that makes it
//                    happy. Same absorbing states, integer step counter.
//  * run_synchronous — classic synchronous ACA update (all flippable
//                    agents flip simultaneously), included as a baseline;
//                    may oscillate, so rounds are capped and 2-cycles are
//                    detected.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

#include "core/model.h"

namespace seg {

struct RunOptions {
  // Stop after this many *effective* flips.
  std::uint64_t max_flips = std::numeric_limits<std::uint64_t>::max();
  // Stop when continuous time exceeds this (Glauber only).
  double max_time = std::numeric_limits<double>::infinity();
  // If nonzero, invoke on_snapshot every `snapshot_every` flips (and once
  // at termination).
  std::uint64_t snapshot_every = 0;
  std::function<void(const SchellingModel&, std::uint64_t flips, double time)>
      on_snapshot;
};

struct RunResult {
  std::uint64_t flips = 0;     // effective flips performed
  double final_time = 0.0;     // continuous time at stop (Glauber)
  bool terminated = false;     // absorbing state reached
  std::uint64_t rounds = 0;    // synchronous only: rounds executed
  bool cycle_detected = false; // synchronous only: 2-cycle oscillation
};

RunResult run_glauber(SchellingModel& model, Rng& rng,
                      const RunOptions& options = {});

RunResult run_discrete(SchellingModel& model, Rng& rng,
                       const RunOptions& options = {});

// max_rounds caps the synchronous sweep count.
RunResult run_synchronous(SchellingModel& model, std::uint64_t max_rounds,
                          const RunOptions& options = {});

}  // namespace seg
