#include "renorm/block_graph.h"

#include <algorithm>
#include <cassert>

#include "grid/point.h"

namespace seg {

namespace {

struct BlockView {
  const BlockGrid* grid;
  int B;  // blocks per side

  bool good(int bx, int by) const {
    return grid->good(torus_wrap(bx, B), torus_wrap(by, B));
  }
  std::size_t index(int bx, int by) const {
    return static_cast<std::size_t>(torus_wrap(by, B)) * B +
           torus_wrap(bx, B);
  }
};

}  // namespace

ChemicalPathResult find_chemical_path(const BlockGrid& blocks, int cx,
                                      int cy, int r_inner, int r_outer) {
  const int B = blocks.blocks_per_side();
  assert(r_inner > 0 && r_inner < r_outer && 2 * r_outer + 1 <= B);
  const BlockView view{&blocks, B};
  ChemicalPathResult result;

  const auto ring_dist = [&](int bx, int by) {
    return torus_linf(Point{bx, by}, Point{cx, cy}, B);
  };

  // --- Cycle test by duality: do bad blocks cross the annulus? ---------
  // Seed the BFS with every bad block on the innermost ring of the
  // annulus; traverse 8-connected bad blocks inside the annulus; a
  // crossing exists iff the BFS reaches the outermost ring.
  std::vector<std::uint8_t> visited(static_cast<std::size_t>(B) * B, 0);
  std::vector<std::uint32_t> queue;
  bool crossing = false;
  for (int by = 0; by < B && !crossing; ++by) {
    for (int bx = 0; bx < B; ++bx) {
      if (ring_dist(bx, by) == r_inner + 1 && !view.good(bx, by)) {
        const std::size_t i = view.index(bx, by);
        if (!visited[i]) {
          visited[i] = 1;
          queue.push_back(static_cast<std::uint32_t>(i));
        }
      }
    }
  }
  static constexpr int kDx8[8] = {-1, 0, 1, -1, 1, -1, 0, 1};
  static constexpr int kDy8[8] = {-1, -1, -1, 0, 0, 1, 1, 1};
  for (std::size_t head = 0; head < queue.size() && !crossing; ++head) {
    const std::uint32_t cur = queue[head];
    const int bx = static_cast<int>(cur % B);
    const int by = static_cast<int>(cur / B);
    if (ring_dist(bx, by) == r_outer) {
      crossing = true;
      break;
    }
    for (int k = 0; k < 8; ++k) {
      const int nx = torus_wrap(bx + kDx8[k], B);
      const int ny = torus_wrap(by + kDy8[k], B);
      const int d = ring_dist(nx, ny);
      if (d <= r_inner || d > r_outer) continue;  // outside annulus
      if (view.good(nx, ny)) continue;
      const std::size_t ni = view.index(nx, ny);
      if (visited[ni]) continue;
      visited[ni] = 1;
      queue.push_back(static_cast<std::uint32_t>(ni));
    }
  }
  result.cycle_exists = !crossing;

  // --- Path from the center block to the annulus over good blocks. -----
  if (view.good(cx, cy)) {
    std::vector<std::int32_t> dist(static_cast<std::size_t>(B) * B, -1);
    std::vector<std::uint32_t> bfs;
    bfs.push_back(static_cast<std::uint32_t>(view.index(cx, cy)));
    dist[view.index(cx, cy)] = 0;
    static constexpr int kDx4[4] = {1, -1, 0, 0};
    static constexpr int kDy4[4] = {0, 0, 1, -1};
    for (std::size_t head = 0; head < bfs.size(); ++head) {
      const std::uint32_t cur = bfs[head];
      const int bx = static_cast<int>(cur % B);
      const int by = static_cast<int>(cur / B);
      const int d_ring = ring_dist(bx, by);
      if (d_ring > r_inner && d_ring <= r_outer) {
        result.center_connected = true;
        result.path_length = dist[cur];
        break;
      }
      for (int k = 0; k < 4; ++k) {
        const int nx = torus_wrap(bx + kDx4[k], B);
        const int ny = torus_wrap(by + kDy4[k], B);
        if (!view.good(nx, ny)) continue;
        if (ring_dist(nx, ny) > r_outer) continue;  // stay inside N_3r
        const std::size_t ni = view.index(nx, ny);
        if (dist[ni] >= 0) continue;
        dist[ni] = dist[cur] + 1;
        bfs.push_back(static_cast<std::uint32_t>(ni));
      }
    }
  }

  result.found = result.cycle_exists && result.center_connected;
  return result;
}

namespace {

std::vector<std::vector<std::uint32_t>> bad_clusters(const BlockGrid& blocks) {
  const int B = blocks.blocks_per_side();
  std::vector<std::uint8_t> visited(static_cast<std::size_t>(B) * B, 0);
  std::vector<std::vector<std::uint32_t>> clusters;
  static constexpr int kDx4[4] = {1, -1, 0, 0};
  static constexpr int kDy4[4] = {0, 0, 1, -1};
  for (int by = 0; by < B; ++by) {
    for (int bx = 0; bx < B; ++bx) {
      const std::size_t i = static_cast<std::size_t>(by) * B + bx;
      if (visited[i] || blocks.good(bx, by)) continue;
      clusters.emplace_back();
      auto& cluster = clusters.back();
      cluster.push_back(static_cast<std::uint32_t>(i));
      visited[i] = 1;
      for (std::size_t head = 0; head < cluster.size(); ++head) {
        const std::uint32_t cur = cluster[head];
        const int x = static_cast<int>(cur % B);
        const int y = static_cast<int>(cur / B);
        for (int k = 0; k < 4; ++k) {
          const int nx = torus_wrap(x + kDx4[k], B);
          const int ny = torus_wrap(y + kDy4[k], B);
          const std::size_t ni = static_cast<std::size_t>(ny) * B + nx;
          if (visited[ni] || blocks.good(nx, ny)) continue;
          visited[ni] = 1;
          cluster.push_back(static_cast<std::uint32_t>(ni));
        }
      }
    }
  }
  return clusters;
}

}  // namespace

int max_bad_cluster_radius(const BlockGrid& blocks) {
  const int B = blocks.blocks_per_side();
  int max_radius = 0;
  for (const auto& cluster : bad_clusters(blocks)) {
    // Radius = half the l1 diameter (rounded up). Subcritical clusters are
    // small, so the quadratic pass is cheap; very large clusters fall back
    // to a bounding-span estimate.
    int diameter = 0;
    if (cluster.size() <= 2048) {
      for (std::size_t i = 0; i < cluster.size(); ++i) {
        const Point a{static_cast<int>(cluster[i] % B),
                      static_cast<int>(cluster[i] / B)};
        for (std::size_t j = i + 1; j < cluster.size(); ++j) {
          const Point b{static_cast<int>(cluster[j] % B),
                        static_cast<int>(cluster[j] / B)};
          diameter = std::max(diameter, torus_l1(a, b, B));
        }
      }
    } else {
      diameter = 2 * B;  // effectively "huge"; callers only threshold it
    }
    max_radius = std::max(max_radius, (diameter + 1) / 2);
  }
  return max_radius;
}

std::size_t bad_cluster_count(const BlockGrid& blocks) {
  return bad_clusters(blocks).size();
}

}  // namespace seg
