// Kawasaki (closed-system) dynamics baseline (paper Sec. I-A): unhappy
// agents of opposite types swap locations when the swap makes both happy.
// The number of agents of each type is conserved — this is the model class
// of Brandt et al. [23]; the paper's own results are for Glauber dynamics,
// and this engine exists as the comparison baseline.
#pragma once

#include <cstdint>

#include "core/dynamics.h"
#include "core/model.h"

namespace seg {

struct KawasakiOptions {
  std::uint64_t max_swaps = std::numeric_limits<std::uint64_t>::max();
  // The exact absorbing-state test (no improving swap exists) costs
  // O(U+ * U-); we run it only after this many consecutive rejected
  // proposals, and stop if it certifies absorption. A small cap keeps the
  // engine honest without quadratic cost per step.
  std::uint64_t stale_check_after = 5000;
  // Give up (reporting terminated = false) after this many consecutive
  // rejections even if the exact test is too expensive; 0 disables.
  std::uint64_t max_consecutive_rejects = 2'000'000;
};

struct KawasakiResult {
  std::uint64_t swaps = 0;
  std::uint64_t proposals = 0;
  bool terminated = false;  // certified: no improving swap exists
  bool gave_up = false;     // stopped on the rejection cap
};

KawasakiResult run_kawasaki(SchellingModel& model, Rng& rng,
                            const KawasakiOptions& options = {});

// True iff swapping the types at a and b would leave both agents happy.
// (a and b must currently hold opposite types.)
bool swap_improves(SchellingModel& model, std::uint32_t a, std::uint32_t b);

// Exact absorption certificate: does any unhappy opposite-type pair admit
// an improving swap? O(U+ * U-) tentative swaps, state fully restored.
// Shared with the sharded sweep engine's between-sweep stale check.
bool improving_swap_exists(SchellingModel& model);

}  // namespace seg
