// FIG2 — reproduces Figure 2: the intolerance intervals where segregation
// is expected, anchored by the constants tau_1 (eq. 1) and tau_2 (eq. 3).
//
// Paper values: tau_1 ~ 0.433, tau_2 = 0.34375; monochromatic interval
// width ~ 0.134 (grey region), almost-monochromatic width ~ 0.312 (grey +
// black region).
#include <cstdio>

#include "io/table.h"
#include "theory/constants.h"

int main() {
  std::printf("== Figure 2: intolerance intervals for expected "
              "segregation ==\n\n");
  const double t1 = seg::tau1();
  const double t2 = seg::tau2();

  seg::TablePrinter constants({"constant", "defining equation", "value",
                               "paper"});
  constants.new_row()
      .add("tau_1")
      .add("(3/4)[1-H(4t/3)] - [1-H(t)] = 0")
      .add(t1, 6)
      .add("~0.433");
  constants.new_row()
      .add("tau_2")
      .add("1024 t^2 - 384 t + 11 = 0")
      .add(t2, 6)
      .add("~0.344");
  constants.print();

  std::printf("\n");
  seg::TablePrinter intervals({"regime", "interval", "width", "paper"});
  char buf[96];
  std::snprintf(buf, sizeof(buf), "(%.4f, 1/2) u (1/2, %.4f)", t1, 1 - t1);
  intervals.new_row()
      .add("monochromatic (Thm 1, grey)")
      .add(buf)
      .add(seg::mono_interval_width(), 6)
      .add("~0.134");
  std::snprintf(buf, sizeof(buf), "(%.4f, %.4f] u [%.4f, %.4f)", t2, t1,
                1 - t1, 1 - t2);
  intervals.new_row()
      .add("almost monochromatic (Thm 2, black)")
      .add(buf)
      .add(seg::full_interval_width() - seg::mono_interval_width(), 6)
      .add("~0.178");
  std::snprintf(buf, sizeof(buf), "(%.4f, 1-%.4f) \\ {1/2}", t2, t2);
  intervals.new_row()
      .add("total (grey + black)")
      .add(buf)
      .add(seg::full_interval_width(), 6)
      .add("~0.312");
  intervals.print();

  std::printf("\nregime map (Glauber, p = 1/2):\n");
  std::printf("  tau < 1/4         : static w.h.p. (Barmpalias et al.)\n");
  std::printf("  [1/4, %.4f]     : unknown (paper, concluding remarks)\n",
              t2);
  std::printf("  (%.4f, %.4f] : E[M'] exponential in N (Thm 2)\n", t2, t1);
  std::printf("  (%.4f, 1/2)    : E[M] exponential in N (Thm 1)\n", t1);
  std::printf("  tau = 1/2         : open problem in 2-D\n");
  std::printf("  symmetric intervals above 1/2; tau > 3/4: static w.h.p.\n");
  return 0;
}
