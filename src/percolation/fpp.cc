#include "percolation/fpp.h"

#include <cassert>
#include <limits>
#include <queue>
#include <utility>

namespace seg {

FppField::FppField(int L, double rate, Rng& rng)
    : L_(L), weights_(static_cast<std::size_t>(L) * L) {
  assert(L > 0 && rate > 0.0);
  for (auto& w : weights_) w = rng.exponential(rate);
}

FppField::FppField(int L, std::vector<double> weights)
    : L_(L), weights_(std::move(weights)) {
  assert(L > 0);
  assert(weights_.size() == static_cast<std::size_t>(L) * L);
}

std::vector<double> FppField::passage_times(int sx, int sy) const {
  assert(sx >= 0 && sx < L_ && sy >= 0 && sy < L_);
  const std::size_t total = weights_.size();
  std::vector<double> dist(total, std::numeric_limits<double>::infinity());
  using Entry = std::pair<double, std::uint32_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  const std::size_t src = static_cast<std::size_t>(sy) * L_ + sx;
  dist[src] = 0.0;  // source weight excluded by convention
  heap.emplace(0.0, static_cast<std::uint32_t>(src));
  static constexpr int kDx[4] = {1, -1, 0, 0};
  static constexpr int kDy[4] = {0, 0, 1, -1};
  while (!heap.empty()) {
    const auto [d, cur] = heap.top();
    heap.pop();
    if (d > dist[cur]) continue;
    const int cx = static_cast<int>(cur % L_);
    const int cy = static_cast<int>(cur / L_);
    for (int k = 0; k < 4; ++k) {
      const int nx = cx + kDx[k];
      const int ny = cy + kDy[k];
      if (nx < 0 || nx >= L_ || ny < 0 || ny >= L_) continue;
      const std::size_t ni = static_cast<std::size_t>(ny) * L_ + nx;
      const double nd = d + weights_[ni];
      if (nd < dist[ni]) {
        dist[ni] = nd;
        heap.emplace(nd, static_cast<std::uint32_t>(ni));
      }
    }
  }
  return dist;
}

double FppField::axis_passage_time(int sx, int sy, int k) const {
  assert(sx + k >= 0 && sx + k < L_);
  const auto dist = passage_times(sx, sy);
  return dist[static_cast<std::size_t>(sy) * L_ + (sx + k)];
}

}  // namespace seg
