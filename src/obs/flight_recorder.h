// Flight recorder: a per-thread lock-free ring buffer of the last N
// structured events, kept so a crashed long campaign leaves evidence.
//
// Each recording thread owns a fixed ring of POD events (name pointer,
// two integer arguments, a global sequence number, a monotonic
// timestamp); recording is a relaxed store into the owner's ring plus
// one relaxed fetch_add on the global sequence counter — no locks, no
// allocation, bounded memory (rings are recycled at thread exit like
// the telemetry slabs). Only the newest kRingEvents events per thread
// survive; older ones are overwritten in place.
//
// Event names must be string literals (the ring stores the pointer;
// dumps — including the signal-handler dump — read it long after the
// recording scope ended).
//
// Dump paths, in decreasing order of luxury:
//  * dump_json()        — ordinary string render (GET /debug/flight,
//                         tests); events across all rings merged in
//                         global sequence order.
//  * dump_to_fd()       — async-signal-safe: write(2) only, integers
//                         formatted by hand, no allocation, no stdio.
//                         Same JSON shape.
//  * install_crash_handler(path) — SIGSEGV/SIGABRT/SIGBUS/SIGFPE
//                         handler that dumps to `path` (and a one-line
//                         notice to stderr) through dump_to_fd, then
//                         re-raises with default disposition so the
//                         process still dies with the original signal.
//    SEG_ASSERT failures reach the same dump through the hook in
//    util/seg_assert.h (seg_assert_fail aborts, and the SIGABRT
//    handler — or the direct stderr dump when no handler is
//    installed — writes the evidence).
//
// Recording is gated by its own enable flag (flight::set_enabled), not
// the telemetry master switch: crash evidence is wanted even for runs
// that never asked for metrics. Events are cold-path (replica
// boundaries, checkpoints, stop decisions), so the cost of an enabled
// recorder is nanoseconds per replica — the ≤ 2% disabled-telemetry
// budget on the flip path is untouched because nothing in a hot loop
// records flight events.
#pragma once

#include <cstdint>
#include <string>

namespace seg::obs::flight {

inline constexpr std::size_t kRingEvents = 256;  // per thread

bool enabled();
void set_enabled(bool on);

// Records one event into the calling thread's ring. No-op while
// disabled. `name` must be a string literal (or otherwise immortal).
void record(const char* name, std::int64_t a = 0, std::int64_t b = 0);

// Total events ever recorded (monotonic, includes overwritten ones).
std::uint64_t recorded_total();

// Merged dump of every ring, oldest surviving event first (global
// sequence order): {"flight":[{"seq":..,"t_us":..,"thread":..,
// "name":"..","a":..,"b":..},...],"dropped":N}.
std::string dump_json();

// Async-signal-safe variant of the same document written to `fd`.
// Returns the byte count written (best effort).
std::size_t dump_to_fd(int fd);

// Installs SIGSEGV/SIGABRT/SIGBUS/SIGFPE handlers that dump to `path`
// (truncating) and then re-raise. The path is copied into static
// storage; empty path dumps to stderr only. Idempotent — a second call
// just updates the path.
void install_crash_handler(const std::string& path);

// Clears every ring and the sequence counter (tests only; not safe
// concurrently with writers).
void reset_for_test();

}  // namespace seg::obs::flight

// Convenience macro mirroring the SEG_* family. Compiled out with the
// rest of the instrumentation under SEG_TELEMETRY=OFF.
#if defined(SEG_TELEMETRY_DISABLED)
#define SEG_FLIGHT(name, a, b) \
  do {                         \
  } while (0)
#else
#define SEG_FLIGHT(name, a, b)                                   \
  do {                                                           \
    if (::seg::obs::flight::enabled()) {                         \
      ::seg::obs::flight::record((name),                         \
                                 static_cast<std::int64_t>(a),   \
                                 static_cast<std::int64_t>(b));  \
    }                                                            \
  } while (0)
#endif
