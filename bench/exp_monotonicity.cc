// MONO — the paper's qualitative claim (Sec. I-B, Fig. 3): as the
// intolerance gets farther from one half, the *expected exponent* of the
// segregated-region size grows — "higher tolerance does not necessarily
// lead to less segregation".
//
// We measure E[M] and E[M'] across tau at fixed w and print the measured
// curve next to the theoretical envelope a(tau). Note the scales at which
// each statement lives: the theorem's monotonicity concerns the asymptotic
// exponent; at laptop-scale N the measured E[M] is dominated by coarsening
// activity (more flips near 1/2), so the finite-N curve can run opposite
// to the asymptotic envelope. Both are printed; EXPERIMENTS.md discusses
// the reconciliation.
#include <cstdio>

#include "analysis/almost.h"
#include "analysis/regions.h"
#include "core/dynamics.h"
#include "core/model.h"
#include "io/table.h"
#include "theory/exponents.h"
#include "util/args.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  const seg::ArgParser args(argc, argv);
  const int w = static_cast<int>(args.get_int("w", 3));
  const int n = static_cast<int>(args.get_int("n", 96));
  const auto trials = static_cast<std::size_t>(args.get_int("trials", 4));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 5));
  const int N = (2 * w + 1) * (2 * w + 1);

  std::printf("== Monotonicity in tau: measured E[M], E[M'] vs the "
              "asymptotic envelope ==\n");
  std::printf("(w=%d, N=%d, n=%d, %zu trials per tau; both sides of "
              "1/2)\n\n",
              w, N, n, trials);

  seg::TablePrinter table({"tau", "K", "mean_flips", "E[M]", "E[M']",
                           "a(tau) envelope"});
  for (const double tau : {0.36, 0.38, 0.40, 0.42, 0.44, 0.46, 0.48, 0.52,
                           0.54, 0.56, 0.58, 0.60, 0.62, 0.64}) {
    seg::RunningStats flips, em, emp;
    for (std::size_t t = 0; t < trials; ++t) {
      seg::ModelParams params{.n = n, .w = w, .tau = tau, .p = 0.5};
      seg::Rng init = seg::Rng::stream(seed + t, 0);
      seg::SchellingModel model(params, init);
      seg::Rng dyn = seg::Rng::stream(seed + t, 1);
      flips.add(static_cast<double>(seg::run_glauber(model, dyn).flips));
      const auto mono = seg::mono_region_field(model);
      seg::Rng s1 = seg::Rng::stream(seed + t, 2);
      em.add(seg::mean_mono_region_size(mono, 24, s1));
      const auto almost = seg::almost_mono_field(model, 0.1);
      seg::Rng s2 = seg::Rng::stream(seed + t, 2);
      emp.add(seg::mean_almost_region_size(almost, 24, s2));
    }
    seg::ModelParams probe{.n = n, .w = w, .tau = tau, .p = 0.5};
    table.new_row()
        .add(tau, 2)
        .add(static_cast<std::int64_t>(probe.happy_threshold()))
        .add(flips.mean(), 0)
        .add(em.mean(), 1)
        .add(emp.mean(), 1)
        .add(seg::a_exponent_envelope(tau), 5);
  }
  table.print();

  std::printf("\nasymptotic claim (theorems): a(tau), b(tau) increase away "
              "from 1/2 — see fig3_exponents.\n");
  std::printf("finite-N observation: activity (flips) and measured E[M] "
              "peak toward 1/2; the asymptotic\n");
  std::printf("monotonicity is a statement about exponents, visible only "
              "as N grows (exp_region_size).\n");
  return 0;
}
