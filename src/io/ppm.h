// Binary PPM (P6) image writing, plus the paper's Figure-1 color scheme:
// green/blue for happy (+1)/(-1) agents, white/yellow for unhappy
// (+1)/(-1) agents.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace seg {

struct Rgb {
  std::uint8_t r = 0;
  std::uint8_t g = 0;
  std::uint8_t b = 0;

  friend bool operator==(const Rgb&, const Rgb&) = default;
};

// Figure 1 palette.
namespace fig1_palette {
inline constexpr Rgb kHappyPlus{46, 160, 67};     // green
inline constexpr Rgb kHappyMinus{33, 96, 196};    // blue
inline constexpr Rgb kUnhappyPlus{255, 255, 255}; // white
inline constexpr Rgb kUnhappyMinus{255, 214, 0};  // yellow
}  // namespace fig1_palette

class PpmImage {
 public:
  PpmImage(int width, int height, Rgb fill = Rgb{});

  int width() const { return width_; }
  int height() const { return height_; }

  void set(int x, int y, Rgb color);
  Rgb get(int x, int y) const;

  // Serializes to binary P6. Returns false on I/O failure.
  bool write_file(const std::string& path) const;

  // In-memory serialization (used by tests).
  std::vector<std::uint8_t> serialize() const;

 private:
  int width_;
  int height_;
  std::vector<Rgb> pixels_;
};

// Renders a spin/happiness pair into the Figure-1 palette.
Rgb fig1_color(std::int8_t spin, bool happy);

}  // namespace seg
