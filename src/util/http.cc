#include "util/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <map>
#include <thread>

namespace seg {

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    default: return "OK";
  }
}

// Reads until the end of the request head ("\r\n\r\n"), EOF, timeout, or
// the size cap. The obs endpoints only ever see header-only GETs, so any
// request body is simply ignored (the connection closes after the
// response anyway).
bool read_request_head(int fd, std::string* head) {
  constexpr std::size_t kMaxHead = 8192;
  char buf[1024];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // timeout or error: caller answers 400
    }
    if (n == 0) return false;  // peer closed before finishing the head
    head->append(buf, static_cast<std::size_t>(n));
    if (head->find("\r\n\r\n") != std::string::npos) return true;
    // Lone-\n clients (nc, hand-rolled test sockets) are accepted too.
    if (head->find("\n\n") != std::string::npos) return true;
    if (head->size() > kMaxHead) return false;
  }
}

// First request line -> (method, path, query). False on malformed input.
bool parse_request_line(const std::string& head, HttpRequest* req) {
  const std::size_t eol = head.find_first_of("\r\n");
  const std::string line =
      eol == std::string::npos ? head : head.substr(0, eol);
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos || sp1 == 0) return false;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos || sp2 == sp1 + 1) return false;
  req->method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = line.substr(sp2 + 1);
  if (version.compare(0, 5, "HTTP/") != 0) return false;
  if (target.empty() || target[0] != '/') return false;
  const std::size_t q = target.find('?');
  if (q != std::string::npos) {
    req->query = target.substr(q + 1);
    target.resize(q);
  }
  req->path = std::move(target);
  return true;
}

void write_all(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // client went away; nothing to salvage
    }
    off += static_cast<std::size_t>(n);
  }
}

void send_response(int fd, const HttpResponse& resp) {
  std::string head = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                     status_text(resp.status) + "\r\n";
  head += "Content-Type: " + resp.content_type + "\r\n";
  head += "Content-Length: " + std::to_string(resp.body.size()) + "\r\n";
  head += "Connection: close\r\n\r\n";
  write_all(fd, head + resp.body);
}

}  // namespace

struct HttpServer::Impl {
  std::map<std::string, Handler> handlers;
  std::thread accept_thread;
  std::atomic<bool> running{false};
  int listen_fd = -1;
  std::uint16_t port = 0;

  void serve_connection(int fd) {
    // A stuck client must not park the accept loop forever.
    timeval tv{};
    tv.tv_sec = 2;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

    std::string head;
    HttpRequest req;
    HttpResponse resp;
    if (!read_request_head(fd, &head) || !parse_request_line(head, &req)) {
      resp.status = 400;
      resp.body = "bad request\n";
    } else if (req.method != "GET") {
      resp.status = 405;
      resp.body = "only GET is served here\n";
    } else {
      const auto it = handlers.find(req.path);
      if (it == handlers.end()) {
        resp.status = 404;
        resp.body = "no handler for " + req.path + "\n";
      } else {
        try {
          resp = it->second(req);
        } catch (...) {
          resp = HttpResponse{};
          resp.status = 500;
          resp.body = "handler failed\n";
        }
      }
    }
    send_response(fd, resp);
    ::close(fd);
  }

  void accept_loop() {
    while (running.load(std::memory_order_acquire)) {
      sockaddr_in peer{};
      socklen_t len = sizeof(peer);
      const int fd =
          ::accept(listen_fd, reinterpret_cast<sockaddr*>(&peer), &len);
      if (fd < 0) {
        if (errno == EINTR) continue;
        // stop() shut the listen socket down; anything else (EMFILE,
        // ECONNABORTED) is transient — keep accepting while running.
        if (!running.load(std::memory_order_acquire)) return;
        continue;
      }
      serve_connection(fd);
    }
  }
};

HttpServer::HttpServer() : impl_(new Impl()) {}

HttpServer::~HttpServer() {
  stop();
  delete impl_;
}

void HttpServer::handle(const std::string& path, Handler handler) {
  impl_->handlers[path] = std::move(handler);
}

bool HttpServer::start(std::uint16_t port, std::string* error) {
  if (impl_->running.load(std::memory_order_acquire)) {
    if (error != nullptr) *error = "server already running";
    return false;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 64) < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    ::close(fd);
    return false;
  }
  impl_->listen_fd = fd;
  impl_->port = ntohs(addr.sin_port);
  impl_->running.store(true, std::memory_order_release);
  impl_->accept_thread = std::thread([this] { impl_->accept_loop(); });
  return true;
}

void HttpServer::stop() {
  if (!impl_->running.exchange(false, std::memory_order_acq_rel)) return;
  // shutdown() wakes the blocking accept(); close() alone may not.
  ::shutdown(impl_->listen_fd, SHUT_RDWR);
  ::close(impl_->listen_fd);
  if (impl_->accept_thread.joinable()) impl_->accept_thread.join();
  impl_->listen_fd = -1;
}

bool HttpServer::running() const {
  return impl_->running.load(std::memory_order_acquire);
}

std::uint16_t HttpServer::port() const { return impl_->port; }

}  // namespace seg
