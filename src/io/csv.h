// Minimal CSV writer for experiment output. Fields containing commas,
// quotes or newlines are quoted per RFC 4180.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace seg {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  // Begins a new row; values are appended with add().
  CsvWriter& new_row();
  CsvWriter& add(const std::string& value);
  CsvWriter& add(double value);
  CsvWriter& add(std::int64_t value);

  std::size_t row_count() const { return rows_; }
  std::size_t column_count() const { return columns_; }

  // Full document including header. Incomplete trailing rows are padded
  // with empty fields.
  std::string str() const;

  bool write_file(const std::string& path) const;

 private:
  static std::string escape(const std::string& value);

  std::size_t columns_;
  std::size_t rows_ = 0;
  std::size_t fields_in_row_ = 0;
  std::ostringstream body_;
  std::string header_line_;
};

}  // namespace seg
