// A halo-padded snapshot of a torus field: the n x n interior plus a
// `halo`-wide wrapped border copied around it. Window scans of radius up
// to `halo` then read contiguous rows with no torus_wrap or modulo in the
// inner loop — the read-side counterpart of the span decomposition in
// window.h, used by the firewall scanners that probe every center of the
// grid against the same immutable field.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "grid/point.h"
#include "lattice/bitfield.h"
#include "obs/trace.h"

namespace seg {

template <typename T>
class HaloField {
 public:
  // Snapshot of `torus` (row-major n x n) with the given halo width.
  // halo may be up to n; larger windows would revisit sites anyway.
  HaloField(const std::vector<T>& torus, int n, int halo)
      : n_(n), halo_(halo), stride_(n + 2 * halo) {
    assert(n > 0 && halo >= 0 && halo <= n);
    assert(torus.size() == static_cast<std::size_t>(n) * n);
    cells_.resize(static_cast<std::size_t>(stride_) * stride_);
    for (int py = 0; py < stride_; ++py) {
      const std::size_t src =
          static_cast<std::size_t>(torus_wrap(py - halo, n)) * n;
      T* dst = cells_.data() + static_cast<std::size_t>(py) * stride_;
      // Interior columns are a straight copy; the x halo wraps around.
      for (int px = 0; px < stride_; ++px) {
        dst[px] = torus[src + torus_wrap(px - halo, n)];
      }
    }
  }

  int side() const { return n_; }
  int halo() const { return halo_; }

  // Pointer to (0, y) of the logical torus row y; valid x offsets are
  // [-halo, n + halo). y itself may range over [-halo, n + halo).
  const T* row(int y) const {
    assert(y >= -halo_ && y < n_ + halo_);
    return cells_.data() +
           static_cast<std::size_t>(y + halo_) * stride_ + halo_;
  }

  T at(int x, int y) const {
    assert(x >= -halo_ && x < n_ + halo_);
    return row(y)[x];
  }

  // Calls fn(ptr, len) for each row segment of the radius-r window around
  // (cx, cy); the segments are contiguous and never cross the halo edge.
  // Requires r <= halo and (cx, cy) in the interior.
  template <typename Fn>
  void for_each_window_row(int cx, int cy, int r, Fn&& fn) const {
    assert(r <= halo_);
    assert(cx >= 0 && cx < n_ && cy >= 0 && cy < n_);
    for (int dy = -r; dy <= r; ++dy) {
      fn(row(cy + dy) + (cx - r), 2 * r + 1);
    }
  }

 private:
  int n_;
  int halo_;
  int stride_;
  std::vector<T> cells_;
};

// The packed counterpart of HaloField<int8_t>: a halo-padded snapshot of
// a BitField, one bit per site. Each padded row is built from the source
// row with three shifted word-copies OR'd together (west wrap, interior,
// east wrap) — no per-cell loop — and a window count is a handful of
// masked popcounts per row with no wrap arithmetic at all. Built by the
// firewall scanners that probe every center of the grid against the same
// immutable field.
class PackedHaloField {
 public:
  PackedHaloField(const BitField& bits, int halo)
      : n_(bits.side()),
        halo_(halo),
        stride_bits_(n_ + 2 * halo),
        words_per_row_((stride_bits_ + 63) / 64),
        words_(static_cast<std::size_t>(n_ + 2 * halo) * words_per_row_,
               0) {
    SEG_TRACE_SPAN("lattice.packed_halo_rebuild");
    assert(halo >= 0 && halo <= n_);
    for (int py = 0; py < n_ + 2 * halo_; ++py) {
      const int y = torus_wrap(py - halo_, n_);
      std::uint64_t* dst =
          words_.data() + static_cast<std::size_t>(py) * words_per_row_;
      // Logical column px holds torus column (px - halo) mod n: the west
      // halo is the row's last `halo` bits, then the full row, then the
      // row's first `halo` bits again.
      if (halo_ > 0) or_row_bits(dst, 0, bits, y, n_ - halo_, halo_);
      or_row_bits(dst, halo_, bits, y, 0, n_);
      if (halo_ > 0) or_row_bits(dst, halo_ + n_, bits, y, 0, halo_);
    }
  }

  int side() const { return n_; }
  int halo() const { return halo_; }

  // Spin at logical torus coordinates; x and y may range over
  // [-halo, n + halo).
  std::int8_t spin(int x, int y) const {
    assert(x >= -halo_ && x < n_ + halo_ && y >= -halo_ && y < n_ + halo_);
    const std::uint64_t* row =
        words_.data() +
        static_cast<std::size_t>(y + halo_) * words_per_row_;
    const int bit = x + halo_;
    return ((row[bit >> 6] >> (bit & 63)) & 1u) != 0 ? 1 : -1;
  }

  // +1 count of the radius-r window around interior center (cx, cy);
  // requires r <= halo. Pure masked popcounts, no wrapping.
  std::int32_t count_window(int cx, int cy, int r) const {
    assert(r <= halo_);
    assert(cx >= 0 && cx < n_ && cy >= 0 && cy < n_);
    const int a = cx - r + halo_;
    const int b = a + 2 * r + 1;  // exclusive bit bound
    std::int32_t total = 0;
    for (int dy = -r; dy <= r; ++dy) {
      const std::uint64_t* row =
          words_.data() +
          static_cast<std::size_t>(cy + dy + halo_) * words_per_row_;
      total += count_bits(row, a, b);
    }
    return total;
  }

 private:
  // OR `len` bits of torus row y starting at column sx into dst at bit
  // position `pos`. Word-at-a-time: shift each covered source word into
  // place (at most two destination words per source word).
  static void or_row_bits(std::uint64_t* dst, int pos, const BitField& bits,
                          int y, int sx, int len) {
    const std::uint64_t* src = bits.row_words(y);
    int s = sx;
    int p = pos;
    int remaining = len;
    while (remaining > 0) {
      const int off = s & 63;
      const int take = std::min(remaining, 64 - off);
      std::uint64_t w = src[s >> 6] >> off;
      if (take < 64) w &= (1ull << take) - 1;
      dst[p >> 6] |= w << (p & 63);
      if ((p & 63) + take > 64) {
        dst[(p >> 6) + 1] |= w >> (64 - (p & 63));
      }
      s += take;
      p += take;
      remaining -= take;
    }
  }

  // Popcount of row bits [a, b); 0 <= a < b <= stride_bits_.
  std::int32_t count_bits(const std::uint64_t* row, int a, int b) const {
    const int wa = a >> 6;
    const int wb = (b - 1) >> 6;
    const std::uint64_t head = ~0ull << (a & 63);
    const std::uint64_t tail = ~0ull >> (63 - ((b - 1) & 63));
    if (wa == wb) return popcount64(row[wa] & head & tail);
    std::int32_t c = popcount64(row[wa] & head);
    for (int wi = wa + 1; wi < wb; ++wi) c += popcount64(row[wi]);
    return c + popcount64(row[wb] & tail);
  }

  int n_;
  int halo_;
  int stride_bits_;
  int words_per_row_;
  std::vector<std::uint64_t> words_;
};

}  // namespace seg
