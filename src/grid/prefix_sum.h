// O(1) rectangle/box queries on the torus via a 2x2 replicated summed-area
// table. Build is O(n^2); any axis-aligned box whose side is < n can then
// be summed in constant time, including boxes that wrap around the torus
// seam. Used by the almost-monochromatic region analysis (Thm. 2) and the
// renormalization good-block classifier (Lemma 11), both of which issue
// millions of box queries.
#pragma once

#include <cstdint>
#include <vector>

namespace seg {

class PrefixSum2D {
 public:
  // values: n*n row-major site values.
  PrefixSum2D(const std::vector<std::int32_t>& values, int n);
  PrefixSum2D(const std::vector<std::int8_t>& values, int n);

  int side() const { return n_; }

  // Sum over the inclusive rectangle [x0, x1] x [y0, y1] in torus
  // coordinates. Requires spans x1-x0+1 <= n and y1-y0+1 <= n (x0/x1 may be
  // any integers; only their wrapped positions and the span matter).
  std::int64_t rect_sum(int x0, int y0, int x1, int y1) const;

  // Sum over the l-infinity ball of radius r centered at (cx, cy).
  // Requires 2r+1 <= n.
  std::int64_t box_sum(int cx, int cy, int r) const;

  // Total sum of the grid.
  std::int64_t total() const;

 private:
  void build(const std::int32_t* values);

  int n_ = 0;
  int m_ = 0;  // replicated side = 2n
  // table_[(i)*(m_+1) + j] = sum over replicated rows < i, cols < j.
  std::vector<std::int64_t> table_;
};

}  // namespace seg
