// Exact chessboard (l-infinity) distance transform on the torus via
// multi-source BFS over the 8-connected lattice.
//
// The monochromatic region of an agent u (paper, Sec. II-A "Segregation")
// is the largest-radius l-infinity ball of a single type containing u.
// The largest monochromatic ball *centered* at c has radius
// dist(c, nearest opposite-type site) - 1, so one distance transform per
// final configuration yields every center's radius in O(n^2).
#pragma once

#include <cstdint>
#include <vector>

namespace seg {

// sources: n*n bytes, nonzero marks a source site. Returns per-site
// chessboard distance to the nearest source (0 at sources). If there are
// no sources every distance is -1.
std::vector<std::int32_t> chessboard_distance_torus(
    const std::vector<std::uint8_t>& sources, int n);

// Per-center radius of the largest monochromatic l-infinity ball:
// radius(c) = chessboard distance from c to the nearest site whose spin
// differs from spin(c), minus 1. If the whole grid is monochromatic the
// radius is reported as floor((n-1)/2) (the largest ball that is still a
// neighborhood, i.e. visits no site twice).
std::vector<std::int32_t> mono_ball_radius(const std::vector<std::int8_t>& spins,
                                           int n);

}  // namespace seg
