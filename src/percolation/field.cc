#include "percolation/field.h"

#include <cassert>

namespace seg {

SiteField::SiteField(int L, double p, Rng& rng)
    : L_(L), p_(p), open_(static_cast<std::size_t>(L) * L) {
  assert(L > 0 && p >= 0.0 && p <= 1.0);
  for (auto& cell : open_) cell = rng.bernoulli(p) ? 1 : 0;
}

SiteField::SiteField(int L, std::vector<std::uint8_t> open)
    : L_(L), open_(std::move(open)) {
  assert(L > 0);
  assert(open_.size() == static_cast<std::size_t>(L) * L);
}

double SiteField::open_fraction() const {
  std::size_t count = 0;
  for (const auto cell : open_) count += cell != 0;
  return static_cast<double>(count) / static_cast<double>(open_.size());
}

}  // namespace seg
