#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>

namespace seg::obs::flight {

namespace {

// One recorded event. Fields are individually relaxed-atomic so the
// dump threads (HTTP handler, signal handler) read a well-defined —
// if possibly torn-across-fields — value instead of a data race. A
// torn event can pair a name with a neighbouring event's arguments
// during an active overwrite; for crash forensics that is acceptable,
// and the seq field makes the overwrite window visible.
struct Event {
  std::atomic<const char*> name{nullptr};
  std::atomic<std::int64_t> a{0};
  std::atomic<std::int64_t> b{0};
  std::atomic<std::int64_t> t_us{0};
  std::atomic<std::uint64_t> seq{0};  // 0 = never written
};

struct Ring {
  Event events[kRingEvents];
  std::atomic<std::uint64_t> count{0};  // total writes into this ring
  std::atomic<std::uint64_t> thread_tag{0};
  std::atomic<bool> claimed{false};
};

// Fixed pool in static storage: claimable without allocation, dumpable
// from a signal handler without locks. A thread beyond the pool size
// records nothing (recorded_total still counts the attempt as dropped
// via the seq counter gap — see dump "dropped").
constexpr std::size_t kMaxRings = 128;
Ring g_rings[kMaxRings];
std::atomic<std::uint64_t> g_seq{0};       // global sequence, starts at 1
std::atomic<std::uint64_t> g_thread_tag{0};
std::atomic<bool> g_enabled{false};

std::int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Ring* claim_ring() {
  for (std::size_t i = 0; i < kMaxRings; ++i) {
    bool expected = false;
    if (g_rings[i].claimed.compare_exchange_strong(
            expected, true, std::memory_order_acq_rel)) {
      g_rings[i].thread_tag.store(
          g_thread_tag.fetch_add(1, std::memory_order_relaxed) + 1,
          std::memory_order_relaxed);
      return &g_rings[i];
    }
  }
  return nullptr;
}

// Releases the ring at thread exit so pools that churn threads reuse
// slots instead of exhausting the pool. Events stay in place — a dump
// after the thread died still shows its tail.
struct RingLease {
  Ring* ring = nullptr;
  RingLease() : ring(claim_ring()) {}
  ~RingLease() {
    if (ring != nullptr) ring->claimed.store(false, std::memory_order_release);
  }
};

Ring* my_ring() {
  thread_local RingLease lease;
  return lease.ring;
}

// ---- async-signal-safe formatting helpers (write(2) only) ----------

std::size_t fd_write(int fd, const char* data, std::size_t len) {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::write(fd, data + done, len - done);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    done += static_cast<std::size_t>(n);
  }
  return done;
}

std::size_t fd_puts(int fd, const char* s) {
  return fd_write(fd, s, std::strlen(s));
}

std::size_t fd_put_i64(int fd, std::int64_t v) {
  char buf[24];
  char* p = buf + sizeof(buf);
  const bool neg = v < 0;
  std::uint64_t u =
      neg ? ~static_cast<std::uint64_t>(v) + 1 : static_cast<std::uint64_t>(v);
  do {
    *--p = static_cast<char>('0' + u % 10);
    u /= 10;
  } while (u != 0);
  if (neg) *--p = '-';
  return fd_write(fd, p, static_cast<std::size_t>(buf + sizeof(buf) - p));
}

std::size_t fd_put_u64(int fd, std::uint64_t u) {
  char buf[24];
  char* p = buf + sizeof(buf);
  do {
    *--p = static_cast<char>('0' + u % 10);
    u /= 10;
  } while (u != 0);
  return fd_write(fd, p, static_cast<std::size_t>(buf + sizeof(buf) - p));
}

// Event names are trusted string literals, but escape the JSON-special
// characters anyway so a hostile name cannot break the document.
std::size_t fd_put_json_string(int fd, const char* s) {
  std::size_t n = fd_puts(fd, "\"");
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      const char esc[3] = {'\\', c, '\0'};
      n += fd_puts(fd, esc);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      n += fd_puts(fd, "?");
    } else {
      n += fd_write(fd, &c, 1);
    }
  }
  n += fd_puts(fd, "\"");
  return n;
}

// Loaded copy of an event (so merge comparisons see stable values).
struct Loaded {
  const char* name;
  std::int64_t a, b, t_us;
  std::uint64_t seq, thread;
};

bool load_event(const Ring& ring, std::size_t idx, Loaded* out) {
  const Event& e = ring.events[idx];
  out->seq = e.seq.load(std::memory_order_relaxed);
  if (out->seq == 0) return false;
  out->name = e.name.load(std::memory_order_relaxed);
  out->a = e.a.load(std::memory_order_relaxed);
  out->b = e.b.load(std::memory_order_relaxed);
  out->t_us = e.t_us.load(std::memory_order_relaxed);
  out->thread = ring.thread_tag.load(std::memory_order_relaxed);
  return out->name != nullptr;
}

std::size_t fd_put_event(int fd, const Loaded& ev, bool first) {
  std::size_t n = 0;
  if (!first) n += fd_puts(fd, ",");
  n += fd_puts(fd, "\n  {\"seq\": ");
  n += fd_put_u64(fd, ev.seq);
  n += fd_puts(fd, ", \"t_us\": ");
  n += fd_put_i64(fd, ev.t_us);
  n += fd_puts(fd, ", \"thread\": ");
  n += fd_put_u64(fd, ev.thread);
  n += fd_puts(fd, ", \"name\": ");
  n += fd_put_json_string(fd, ev.name);
  n += fd_puts(fd, ", \"a\": ");
  n += fd_put_i64(fd, ev.a);
  n += fd_puts(fd, ", \"b\": ");
  n += fd_put_i64(fd, ev.b);
  n += fd_puts(fd, "}");
  return n;
}

// ---- crash handler --------------------------------------------------

char g_crash_path[4096] = {0};
std::atomic<bool> g_handler_installed{false};

extern "C" void seg_flight_signal_handler(int sig) {
  // Everything here is async-signal-safe: open/write/close plus the
  // manual formatters above.
  if (g_crash_path[0] != '\0') {
    const int fd =
        ::open(g_crash_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      dump_to_fd(fd);
      ::close(fd);
      fd_puts(2, "flight recorder: signal ");
      fd_put_i64(2, sig);
      fd_puts(2, ", dump written to ");
      fd_puts(2, g_crash_path);
      fd_puts(2, "\n");
    }
  } else {
    fd_puts(2, "flight recorder: signal ");
    fd_put_i64(2, sig);
    fd_puts(2, ", dump follows\n");
    dump_to_fd(2);
    fd_puts(2, "\n");
  }
  // Restore default disposition and re-raise so the process exits with
  // the original signal (core dump, wait status) intact.
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

void record(const char* name, std::int64_t a, std::int64_t b) {
  if (!enabled()) return;
  const std::uint64_t seq = g_seq.fetch_add(1, std::memory_order_relaxed) + 1;
  Ring* ring = my_ring();
  if (ring == nullptr) return;  // pool exhausted; seq gap shows as dropped
  const std::uint64_t n = ring->count.fetch_add(1, std::memory_order_relaxed);
  Event& e = ring->events[n % kRingEvents];
  e.seq.store(0, std::memory_order_relaxed);  // invalidate during rewrite
  e.name.store(name, std::memory_order_relaxed);
  e.a.store(a, std::memory_order_relaxed);
  e.b.store(b, std::memory_order_relaxed);
  e.t_us.store(now_us(), std::memory_order_relaxed);
  e.seq.store(seq, std::memory_order_release);
}

std::uint64_t recorded_total() {
  return g_seq.load(std::memory_order_relaxed);
}

std::size_t dump_to_fd(int fd) {
  // K-way merge across rings in global sequence order, without
  // allocation: per-ring cursor starting at the oldest surviving event.
  std::size_t cursor[kMaxRings];
  std::uint64_t remaining[kMaxRings];
  std::uint64_t surviving = 0;
  for (std::size_t r = 0; r < kMaxRings; ++r) {
    const std::uint64_t count = g_rings[r].count.load(std::memory_order_acquire);
    const std::uint64_t kept = count < kRingEvents ? count : kRingEvents;
    cursor[r] = static_cast<std::size_t>((count - kept) % kRingEvents);
    remaining[r] = kept;
    surviving += kept;
  }
  const std::uint64_t total = g_seq.load(std::memory_order_relaxed);
  std::size_t n = fd_puts(fd, "{\"flight\": [");
  bool first = true;
  for (;;) {
    // Pick the ring whose head event has the smallest sequence number.
    std::size_t best = kMaxRings;
    Loaded best_ev{};
    for (std::size_t r = 0; r < kMaxRings; ++r) {
      while (remaining[r] > 0) {
        Loaded ev{};
        if (load_event(g_rings[r], cursor[r], &ev)) {
          if (best == kMaxRings || ev.seq < best_ev.seq) {
            best = r;
            best_ev = ev;
          }
          break;
        }
        // Slot invalidated mid-overwrite (or never completed): skip it.
        cursor[r] = (cursor[r] + 1) % kRingEvents;
        --remaining[r];
        --surviving;
      }
    }
    if (best == kMaxRings) break;
    n += fd_put_event(fd, best_ev, first);
    first = false;
    cursor[best] = (cursor[best] + 1) % kRingEvents;
    --remaining[best];
  }
  n += fd_puts(fd, "\n], \"dropped\": ");
  n += fd_put_u64(fd, total >= surviving ? total - surviving : 0);
  n += fd_puts(fd, "}\n");
  return n;
}

std::string dump_json() {
  // Same merge as dump_to_fd, rendered into a string (the fd path
  // cannot be reused directly without a temp file, and the handler
  // path must not allocate — so the merge is duplicated).
  std::string out;
  out.reserve(4096);
  auto put_i64 = [&out](std::int64_t v) { out += std::to_string(v); };
  auto put_u64 = [&out](std::uint64_t v) { out += std::to_string(v); };
  auto put_json_string = [&out](const char* s) {
    out += '"';
    for (; *s != '\0'; ++s) {
      if (*s == '"' || *s == '\\') out += '\\';
      if (static_cast<unsigned char>(*s) < 0x20) {
        out += '?';
      } else {
        out += *s;
      }
    }
    out += '"';
  };

  std::size_t cursor[kMaxRings];
  std::uint64_t remaining[kMaxRings];
  std::uint64_t surviving = 0;
  for (std::size_t r = 0; r < kMaxRings; ++r) {
    const std::uint64_t count = g_rings[r].count.load(std::memory_order_acquire);
    const std::uint64_t kept = count < kRingEvents ? count : kRingEvents;
    cursor[r] = static_cast<std::size_t>((count - kept) % kRingEvents);
    remaining[r] = kept;
    surviving += kept;
  }
  const std::uint64_t total = g_seq.load(std::memory_order_relaxed);
  out += "{\"flight\": [";
  bool first = true;
  for (;;) {
    std::size_t best = kMaxRings;
    Loaded best_ev{};
    for (std::size_t r = 0; r < kMaxRings; ++r) {
      while (remaining[r] > 0) {
        Loaded ev{};
        if (load_event(g_rings[r], cursor[r], &ev)) {
          if (best == kMaxRings || ev.seq < best_ev.seq) {
            best = r;
            best_ev = ev;
          }
          break;
        }
        cursor[r] = (cursor[r] + 1) % kRingEvents;
        --remaining[r];
        --surviving;
      }
    }
    if (best == kMaxRings) break;
    if (!first) out += ',';
    out += "\n  {\"seq\": ";
    put_u64(best_ev.seq);
    out += ", \"t_us\": ";
    put_i64(best_ev.t_us);
    out += ", \"thread\": ";
    put_u64(best_ev.thread);
    out += ", \"name\": ";
    put_json_string(best_ev.name);
    out += ", \"a\": ";
    put_i64(best_ev.a);
    out += ", \"b\": ";
    put_i64(best_ev.b);
    out += '}';
    first = false;
    cursor[best] = (cursor[best] + 1) % kRingEvents;
    --remaining[best];
  }
  out += "\n], \"dropped\": ";
  put_u64(total >= surviving ? total - surviving : 0);
  out += "}\n";
  return out;
}

void install_crash_handler(const std::string& path) {
  std::size_t n = path.size();
  if (n >= sizeof(g_crash_path)) n = sizeof(g_crash_path) - 1;
  std::memcpy(g_crash_path, path.data(), n);
  g_crash_path[n] = '\0';
  bool expected = false;
  if (!g_handler_installed.compare_exchange_strong(expected, true)) return;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = seg_flight_signal_handler;
  sigemptyset(&sa.sa_mask);
  for (const int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE}) {
    ::sigaction(sig, &sa, nullptr);
  }
}

void reset_for_test() {
  g_seq.store(0, std::memory_order_relaxed);
  for (Ring& ring : g_rings) {
    ring.count.store(0, std::memory_order_relaxed);
    for (Event& e : ring.events) {
      e.seq.store(0, std::memory_order_relaxed);
      e.name.store(nullptr, std::memory_order_relaxed);
    }
  }
}

}  // namespace seg::obs::flight

namespace seg::internal {

// Hook called by seg_assert_fail (util/seg_assert.h) before abort():
// persist the flight-recorder tail alongside the assertion report.
void seg_assert_dump_flight() noexcept {
  using namespace seg::obs::flight;
  if (recorded_total() == 0) return;
  ::write(2, "flight recorder dump:\n", 22);
  dump_to_fd(2);
  ::write(2, "\n", 1);
}

}  // namespace seg::internal
