#include "core/vacancy.h"

#include <cassert>
#include <cmath>

#include "grid/box_sum.h"
#include "lattice/window.h"

namespace seg {

std::vector<std::int8_t> random_sites(const VacancyParams& params, Rng& rng) {
  std::vector<std::int8_t> sites(static_cast<std::size_t>(params.n) *
                                 params.n);
  for (auto& s : sites) {
    if (rng.bernoulli(params.vacancy)) {
      s = 0;
    } else {
      s = rng.bernoulli(params.p) ? 1 : -1;
    }
  }
  return sites;
}

VacancyModel::VacancyModel(const VacancyParams& params, Rng& rng)
    : VacancyModel(params, random_sites(params, rng)) {}

VacancyModel::VacancyModel(const VacancyParams& params,
                           std::vector<std::int8_t> sites)
    : params_(params),
      N_(params.neighborhood_size()),
      sites_(std::move(sites)),
      plus_count_(sites_.size(), 0),
      occ_count_(sites_.size(), 0),
      min_same_(static_cast<std::size_t>(N_), 0),
      in_unhappy_(sites_.size(), 0),
      unhappy_(sites_.size()),
      vacant_(sites_.size()) {
  assert(params_.valid());
  assert(sites_.size() ==
         static_cast<std::size_t>(params_.n) * params_.n);
  // min_same_[o] = ceil of the double product tau * o: the smallest
  // integer s with (double)s >= tau * (double)o, i.e. exactly the legacy
  // floating-point happiness comparison folded into an integer table.
  for (int o = 0; o < N_; ++o) {
    min_same_[o] = static_cast<std::int32_t>(
        std::ceil(params_.tau * static_cast<double>(o)));
  }
  std::vector<std::int32_t> plus_indicator(sites_.size());
  std::vector<std::int32_t> occ_indicator(sites_.size());
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    assert(sites_[i] == 1 || sites_[i] == -1 || sites_[i] == 0);
    plus_indicator[i] = sites_[i] > 0 ? 1 : 0;
    occ_indicator[i] = sites_[i] != 0 ? 1 : 0;
  }
  plus_count_ = box_sum_torus(plus_indicator, params_.n, params_.w);
  occ_count_ = box_sum_torus(occ_indicator, params_.n, params_.w);
  for (std::uint32_t id = 0; id < sites_.size(); ++id) {
    if (!occupied(id)) vacant_.insert(id);
    if (unhappy_from_tallies(sites_[id], plus_count_[id], occ_count_[id])) {
      unhappy_.insert(id);
      in_unhappy_[id] = 1;
    }
  }
}

std::int8_t VacancyModel::site_at(int x, int y) const {
  return sites_[static_cast<std::size_t>(torus_wrap(y, params_.n)) *
                    params_.n +
                torus_wrap(x, params_.n)];
}

std::uint32_t VacancyModel::id_of(int x, int y) const {
  return static_cast<std::uint32_t>(
      static_cast<std::size_t>(torus_wrap(y, params_.n)) * params_.n +
      torus_wrap(x, params_.n));
}

bool VacancyModel::unhappy_from_tallies(std::int8_t site, std::int32_t plus,
                                        std::int32_t occ) const {
  if (site == 0) return false;
  const std::int32_t occupied_others = occ - 1;
  if (occupied_others == 0) return false;  // isolated agents are content
  const std::int32_t same_others = (site > 0 ? plus : occ - plus) - 1;
  return same_others < min_same_[occupied_others];
}

bool VacancyModel::is_happy(std::uint32_t id) const {
  assert(occupied(id));
  return !unhappy_from_tallies(sites_[id], plus_count_[id], occ_count_[id]);
}

bool VacancyModel::would_be_happy(std::int8_t type, std::uint32_t at) const {
  assert(type == 1 || type == -1);
  // Standing at `at`, the agent sees the current occupants of the ball
  // around `at` (excluding whatever is at `at` itself — callers test
  // vacant destinations; for occupied ones this evaluates a replacement).
  const bool self_occupied = occupied(at);
  const std::int32_t occupied_others =
      occ_count_[at] - (self_occupied ? 1 : 0);
  if (occupied_others == 0) return true;
  std::int32_t same_others =
      type > 0 ? plus_count_[at] : occ_count_[at] - plus_count_[at];
  if (self_occupied && sites_[at] == type) --same_others;
  return same_others >= min_same_[occupied_others];
}

void VacancyModel::apply_site_delta(std::uint32_t id, std::int8_t type,
                                    int sign) {
  const int n = params_.n;
  const std::int32_t plus_delta = (type > 0 ? 1 : 0) * sign;
  for_each_window_span(
      static_cast<int>(id % n), static_cast<int>(id / n), params_.w, n,
      [&](std::size_t base, int len) {
        std::int32_t* occ = occ_count_.data() + base;
        std::int32_t* plus = plus_count_.data() + base;
        const std::int8_t* site = sites_.data() + base;
        std::uint8_t* member = in_unhappy_.data() + base;
        for (int i = 0; i < len; ++i) {
          occ[i] += sign;
          plus[i] += plus_delta;
          const std::uint8_t want =
              unhappy_from_tallies(site[i], plus[i], occ[i]) ? 1 : 0;
          if (want != member[i]) {
            const auto j = static_cast<std::uint32_t>(base + i);
            if (want) {
              unhappy_.insert(j);
            } else {
              unhappy_.erase(j);
            }
            member[i] = want;
          }
        }
      });
}

void VacancyModel::move(std::uint32_t from, std::uint32_t to) {
  assert(occupied(from));
  assert(!occupied(to));
  const std::int8_t type = sites_[from];
  sites_[from] = 0;
  apply_site_delta(from, type, -1);  // also drops `from` from unhappy_
  vacant_.insert(from);

  sites_[to] = type;
  vacant_.erase(to);
  apply_site_delta(to, type, +1);
  // apply_site_delta(to, ...) already refreshed `to` (it lies in its own
  // ball), as well as every neighbor of both endpoints.
}

bool VacancyModel::absorbing_state() const {
  for (const std::uint32_t agent : unhappy_.items()) {
    for (const std::uint32_t hole : vacant_.items()) {
      if (would_be_happy(sites_[agent], hole)) return false;
    }
  }
  return true;
}

double VacancyModel::happy_fraction() const {
  const std::size_t agents = agent_total();
  if (agents == 0) return 1.0;
  return 1.0 - static_cast<double>(unhappy_.size()) /
                   static_cast<double>(agents);
}

double VacancyModel::similarity_index() const {
  double sum = 0.0;
  std::size_t counted = 0;
  for (std::uint32_t id = 0; id < sites_.size(); ++id) {
    if (!occupied(id)) continue;
    const std::int32_t occupied_others = occ_count_[id] - 1;
    if (occupied_others == 0) continue;
    const std::int32_t same_others =
        (sites_[id] > 0 ? plus_count_[id]
                        : occ_count_[id] - plus_count_[id]) -
        1;
    sum += static_cast<double>(same_others) /
           static_cast<double>(occupied_others);
    ++counted;
  }
  return counted == 0 ? 1.0 : sum / static_cast<double>(counted);
}

bool VacancyModel::check_invariants() const {
  const int n = params_.n;
  const int w = params_.w;
  for (std::uint32_t id = 0; id < sites_.size(); ++id) {
    std::int32_t plus = 0, occ = 0;
    const int cx = static_cast<int>(id % n);
    const int cy = static_cast<int>(id / n);
    for (int dy = -w; dy <= w; ++dy) {
      for (int dx = -w; dx <= w; ++dx) {
        const std::int8_t s = site_at(cx + dx, cy + dy);
        plus += s > 0;
        occ += s != 0;
      }
    }
    if (plus != plus_count_[id] || occ != occ_count_[id]) return false;
    if (vacant_.contains(id) != !occupied(id)) return false;
    const bool want =
        unhappy_from_tallies(sites_[id], plus_count_[id], occ_count_[id]);
    if (in_unhappy_[id] != (want ? 1 : 0)) return false;
    if (unhappy_.contains(id) != want) return false;
    if (occupied(id)) {
      // The table must agree with the direct floating-point rule.
      const std::int32_t occupied_others = occ - 1;
      const std::int32_t same_others =
          (sites_[id] > 0 ? plus : occ - plus) - 1;
      const bool direct_happy =
          occupied_others == 0 ||
          static_cast<double>(same_others) >=
              params_.tau * static_cast<double>(occupied_others);
      if (direct_happy != !want) return false;
    }
  }
  return true;
}

VacancyRunResult run_vacancy(VacancyModel& model, Rng& rng,
                             const VacancyRunOptions& options) {
  VacancyRunResult result;
  std::uint64_t consecutive_failures = 0;
  while (result.moves < options.max_moves) {
    if (model.unhappy_set().empty()) {
      result.terminated = true;
      break;
    }
    const std::uint32_t agent = model.unhappy_set().sample(rng);
    ++result.proposals;
    bool moved = false;
    for (int attempt = 0; attempt < model.params().relocation_attempts;
         ++attempt) {
      const std::uint32_t hole = model.vacant_set().sample(rng);
      if (model.would_be_happy(model.site(agent), hole)) {
        model.move(agent, hole);
        ++result.moves;
        consecutive_failures = 0;
        moved = true;
        break;
      }
    }
    if (moved) continue;
    ++consecutive_failures;
    if (consecutive_failures >= options.stale_check_after &&
        consecutive_failures % options.stale_check_after == 0) {
      if (model.absorbing_state()) {
        result.terminated = true;
        break;
      }
    }
    if (consecutive_failures > 50 * options.stale_check_after) {
      result.gave_up = true;
      break;
    }
  }
  if (!result.terminated && model.unhappy_set().empty()) {
    result.terminated = true;
  }
  return result;
}

}  // namespace seg
