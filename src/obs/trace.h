// Event tracing with Chrome trace / Perfetto JSON export.
//
// A TraceSession collects timestamped events into per-thread buffers
// (one mutex acquisition per thread per session, none per event) and
// serializes them in the Chrome trace-event JSON format, loadable in
// chrome://tracing or https://ui.perfetto.dev. The campaign runner wires
// this to --trace=out.json; the instrumented layers emit scoped spans
// around sweeps, shard phases, reconciliation, streaming replay,
// checkpoint writes, and DSU compactions.
//
// Activation. At most one session is active at a time (start()/stop());
// while none is active a SEG_TRACE_SPAN costs one relaxed atomic load
// and a branch. Span names must be string literals (or otherwise outlive
// the session) — events store the pointer, not a copy.
//
// Threading contract: events may be recorded from any thread while the
// session is active. stop() must happen-after all instrumented work (in
// practice: after worker pools have joined), and the session object must
// outlive any thread that might still be inside an instrumented region.
#pragma once

#include <cstdint>
#include <string>

namespace seg::obs {

class TraceSession {
 public:
  TraceSession();
  ~TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  // Installs this session as the process-wide active one and zeroes its
  // clock. No-op if another session is already active (the first wins).
  void start();
  // Uninstalls the session; recorded events are kept for export.
  void stop();
  bool active() const;

  // The active session, or nullptr. Relaxed atomic load.
  static TraceSession* current();

  // Microseconds since start(), as Chrome trace "ts".
  double now_us() const;

  // Event intake (any thread, active session only — callers go through
  // the SEG_TRACE_* macros / TraceSpan which null-check current()).
  void record_complete(const char* name, double ts_us, double dur_us);
  void record_instant(const char* name);
  void record_counter(const char* name, std::int64_t value);

  std::size_t event_count() const;

  // Chrome trace-event JSON ({"traceEvents": [...]}); write_json returns
  // false on I/O failure. Call after stop().
  std::string to_json() const;
  bool write_json(const std::string& path) const;

 private:
  struct Impl;
  Impl* impl_;
};

// RAII scoped span: records a Chrome "X" (complete) event covering its
// lifetime. Cheap no-op when no session is active at construction.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name)
      : session_(TraceSession::current()), name_(name) {
    if (session_ != nullptr) start_us_ = session_->now_us();
  }
  ~TraceSpan() {
    if (session_ != nullptr) {
      session_->record_complete(name_, start_us_,
                                session_->now_us() - start_us_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceSession* session_;
  const char* name_;
  double start_us_ = 0.0;
};

}  // namespace seg::obs

#ifndef SEG_OBS_CONCAT
#define SEG_OBS_CONCAT_INNER(a, b) a##b
#define SEG_OBS_CONCAT(a, b) SEG_OBS_CONCAT_INNER(a, b)
#endif

#if defined(SEG_TELEMETRY_DISABLED)

#define SEG_TRACE_SPAN(name) \
  do {                       \
  } while (0)
#define SEG_TRACE_INSTANT(name) \
  do {                          \
  } while (0)
#define SEG_TRACE_COUNTER(name, value) \
  do {                                 \
  } while (0)

#else

// Scoped: the span covers the rest of the enclosing block.
#define SEG_TRACE_SPAN(name) \
  ::seg::obs::TraceSpan SEG_OBS_CONCAT(seg_trace_span_, __LINE__)(name)

#define SEG_TRACE_INSTANT(name)                                     \
  do {                                                              \
    if (::seg::obs::TraceSession* seg_trace_s =                     \
            ::seg::obs::TraceSession::current()) {                  \
      seg_trace_s->record_instant(name);                            \
    }                                                               \
  } while (0)

#define SEG_TRACE_COUNTER(name, value)                              \
  do {                                                              \
    if (::seg::obs::TraceSession* seg_trace_s =                     \
            ::seg::obs::TraceSession::current()) {                  \
      seg_trace_s->record_counter(name,                             \
                                  static_cast<std::int64_t>(value)); \
    }                                                               \
  } while (0)

#endif  // SEG_TELEMETRY_DISABLED
