// Tests for the time-series trace recorder.
#include <gtest/gtest.h>

#include "analysis/trace.h"

namespace seg {
namespace {

TEST(Trace, RecordsSamplesThroughDynamics) {
  ModelParams p{.n = 24, .w = 2, .tau = 0.45, .p = 0.5};
  Rng init(1);
  SchellingModel m(p, init);
  TraceRecorder trace;
  RunOptions opt;
  opt.snapshot_every = 50;
  opt.on_snapshot = trace.callback();
  Rng dyn(2);
  const RunResult r = run_glauber(m, dyn, opt);
  ASSERT_FALSE(trace.empty());
  // Final snapshot always fires, so the last row matches the run result.
  EXPECT_EQ(trace.back().flips, r.flips);
  EXPECT_DOUBLE_EQ(trace.back().happy_fraction, 1.0);
}

TEST(Trace, RowsAreMonotoneInTimeAndFlips) {
  ModelParams p{.n = 24, .w = 2, .tau = 0.45, .p = 0.5};
  Rng init(3);
  SchellingModel m(p, init);
  TraceRecorder trace;
  RunOptions opt;
  opt.snapshot_every = 25;
  opt.on_snapshot = trace.callback();
  Rng dyn(4);
  run_glauber(m, dyn, opt);
  for (std::size_t i = 1; i < trace.rows().size(); ++i) {
    EXPECT_GE(trace.rows()[i].flips, trace.rows()[i - 1].flips);
    EXPECT_GE(trace.rows()[i].time, trace.rows()[i - 1].time);
  }
}

TEST(Trace, InterfaceShrinksAlongTheRun) {
  ModelParams p{.n = 32, .w = 2, .tau = 0.45, .p = 0.5};
  Rng init(5);
  SchellingModel m(p, init);
  TraceRecorder trace(/*record_interface=*/true);
  trace.sample(m, 0, 0.0);
  Rng dyn(6);
  run_glauber(m, dyn);
  trace.sample(m, 1, 1.0);
  ASSERT_EQ(trace.rows().size(), 2u);
  EXPECT_LT(trace.rows()[1].interface_length,
            trace.rows()[0].interface_length);
}

TEST(Trace, InterfaceRecordingOptional) {
  ModelParams p{.n = 16, .w = 2, .tau = 0.45, .p = 0.5};
  Rng init(7);
  SchellingModel m(p, init);
  TraceRecorder trace(/*record_interface=*/false);
  trace.sample(m, 0, 0.0);
  EXPECT_EQ(trace.rows()[0].interface_length, 0);
}

TEST(Trace, CsvHasHeaderAndRows) {
  ModelParams p{.n = 16, .w = 2, .tau = 0.45, .p = 0.5};
  Rng init(8);
  SchellingModel m(p, init);
  TraceRecorder trace;
  trace.sample(m, 0, 0.0);
  trace.sample(m, 10, 1.5);
  const std::string csv = trace.to_csv();
  EXPECT_NE(csv.find("flips,time,happy_fraction"), std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

}  // namespace
}  // namespace seg
