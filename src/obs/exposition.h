// Prometheus text exposition (format 0.0.4) of the telemetry registry.
//
// render_prometheus() snapshots the registry and renders every metric as
// a scrape-ready document:
//
//  * names are sanitized to the Prometheus charset and prefixed "seg_"
//    ("engine.flips" -> "seg_engine_flips"); each family gets a # HELP
//    line (echoing the registry name) and a # TYPE line;
//  * counters and gauges render as single samples;
//  * log2 histograms render as cumulative `_bucket{le="..."}` series —
//    one bucket per nonempty log2 bucket boundary (le = 2^b - 1, and
//    le="0" for the zero bucket) plus the mandatory terminal
//    `_bucket{le="+Inf"}` — with `_count` (exact) and `_sum`
//    (bucket-midpoint estimate; the registry stores bucket counts, not
//    running sums, so HELP flags the sum as approximate).
//
// The render reads only the registry's aggregated snapshot: it takes no
// lock a simulation writer ever holds, and touches no RNG stream — a
// live scraper cannot perturb a trajectory (pinned by
// tests/test_metrics_endpoint.cc against the frozen golden hashes).
#pragma once

#include <string>

namespace seg::obs {

// "engine.flips" -> "seg_engine_flips"; any char outside
// [a-zA-Z0-9_:] becomes '_', and a leading digit gets a '_' prefix.
std::string prometheus_name(const std::string& registry_name);

// The full scrape document for the current registry contents.
std::string render_prometheus();

}  // namespace seg::obs
