#include "multitype/multi_model.h"

#include <cassert>

#include "grid/union_find.h"
#include "lattice/window.h"

namespace seg {

namespace {

std::vector<std::uint8_t> random_types(int n, int q, Rng& rng) {
  std::vector<std::uint8_t> types(static_cast<std::size_t>(n) * n);
  for (auto& t : types) {
    t = static_cast<std::uint8_t>(rng.uniform_below(q));
  }
  return types;
}

}  // namespace

MultiTypeModel::MultiTypeModel(const MultiParams& params, Rng& rng)
    : MultiTypeModel(params, random_types(params.n, params.q, rng)) {}

MultiTypeModel::MultiTypeModel(const MultiParams& params,
                               std::vector<std::uint8_t> types)
    : params_(params),
      N_(params.neighborhood_size()),
      K_(params.happy_threshold()),
      types_(std::move(types)),
      counts_(types_.size() * params.q, 0),
      feasible_count_(types_.size(), 0),
      in_flippable_(types_.size(), 0),
      flippable_(types_.size()) {
  assert(params_.valid());
  assert(types_.size() ==
         static_cast<std::size_t>(params_.n) * params_.n);
  // Initial per-type counts: scatter each agent's type into the counts of
  // its window neighbors — O(n^2 N) but only at construction, and the
  // span iteration keeps the writes row-contiguous per type plane.
  const int n = params_.n;
  const int q = params_.q;
  for (std::uint32_t id = 0; id < types_.size(); ++id) {
    const std::uint8_t t = types_[id];
    assert(t < q);
    for_each_window_cell(static_cast<int>(id % n),
                         static_cast<int>(id / n), params_.w, n,
                         [&](std::uint32_t j) { ++counts_[count_index(j, t)]; });
  }
  for (std::uint32_t id = 0; id < types_.size(); ++id) {
    feasible_count_[id] = recount_feasible(id);
    if (is_flippable(id)) {
      flippable_.insert(id);
      in_flippable_[id] = 1;
    }
  }
}

std::uint8_t MultiTypeModel::type_at(int x, int y) const {
  return types_[static_cast<std::size_t>(torus_wrap(y, params_.n)) *
                    params_.n +
                torus_wrap(x, params_.n)];
}

std::uint32_t MultiTypeModel::id_of(int x, int y) const {
  return static_cast<std::uint32_t>(
      static_cast<std::size_t>(torus_wrap(y, params_.n)) * params_.n +
      torus_wrap(x, params_.n));
}

std::int32_t MultiTypeModel::type_count_at(std::uint32_t id,
                                           std::uint8_t t) const {
  return counts_[count_index(id, t)];
}

std::vector<std::uint8_t> MultiTypeModel::feasible_types(
    std::uint32_t id) const {
  std::vector<std::uint8_t> feasible;
  for (std::uint8_t t = 0; t < params_.q; ++t) {
    if (t == types_[id]) continue;
    // Post-switch same-count: current count of t plus the agent itself.
    if (type_count_at(id, t) + 1 >= K_) feasible.push_back(t);
  }
  return feasible;
}

std::int32_t MultiTypeModel::recount_feasible(std::uint32_t id) const {
  std::int32_t feasible = 0;
  const std::int32_t* row = counts_.data() + count_index(id, 0);
  for (int t = 0; t < params_.q; ++t) {
    feasible += (t != types_[id] && row[t] + 1 >= K_);
  }
  return feasible;
}

void MultiTypeModel::set_type(std::uint32_t id, std::uint8_t new_type) {
  assert(new_type < params_.q);
  const std::uint8_t old_type = types_[id];
  if (new_type == old_type) return;
  types_[id] = new_type;
  const int n = params_.n;
  const int q = params_.q;
  for_each_window_span(
      static_cast<int>(id % n), static_cast<int>(id / n), params_.w, n,
      [&](std::size_t base, int len) {
        for (int i = 0; i < len; ++i) {
          const auto j = static_cast<std::uint32_t>(base + i);
          std::int32_t* row = counts_.data() + static_cast<std::size_t>(j) * q;
          const std::int32_t c_old = --row[old_type];
          const std::int32_t c_new = ++row[new_type];
          const std::uint8_t tj = types_[j];
          if (j == id) {
            // The center's own type changed, so its exclusion moved:
            // recount the q types once per switch.
            feasible_count_[j] = recount_feasible(j);
          } else {
            // Feasibility of t flips only when counts_[j, t] crosses
            // K - 1 (post-switch tally includes the agent itself).
            if (old_type != tj && c_old == K_ - 2) --feasible_count_[j];
            if (new_type != tj && c_new == K_ - 1) ++feasible_count_[j];
          }
          const bool happy = row[tj] >= K_;
          const std::uint8_t want =
              (!happy && feasible_count_[j] > 0) ? 1 : 0;
          if (want != in_flippable_[j]) {
            if (want) {
              flippable_.insert(j);
            } else {
              flippable_.erase(j);
            }
            in_flippable_[j] = want;
          }
        }
      });
}

double MultiTypeModel::happy_fraction() const {
  std::size_t happy = 0;
  for (std::uint32_t id = 0; id < types_.size(); ++id) {
    happy += is_happy(id);
  }
  return static_cast<double>(happy) / static_cast<double>(types_.size());
}

std::vector<double> MultiTypeModel::type_fractions() const {
  std::vector<double> fractions(params_.q, 0.0);
  for (const std::uint8_t t : types_) fractions[t] += 1.0;
  for (auto& f : fractions) f /= static_cast<double>(types_.size());
  return fractions;
}

bool MultiTypeModel::check_invariants() const {
  const int n = params_.n;
  const int w = params_.w;
  for (std::uint32_t id = 0; id < types_.size(); ++id) {
    if (types_[id] >= params_.q) return false;
    std::vector<std::int32_t> tally(params_.q, 0);
    const int cx = static_cast<int>(id % n);
    const int cy = static_cast<int>(id / n);
    for (int dy = -w; dy <= w; ++dy) {
      for (int dx = -w; dx <= w; ++dx) {
        ++tally[type_at(cx + dx, cy + dy)];
      }
    }
    for (std::uint8_t t = 0; t < params_.q; ++t) {
      if (tally[t] != type_count_at(id, t)) return false;
    }
    if (feasible_count_[id] != recount_feasible(id)) return false;
    if (feasible_count_[id] !=
        static_cast<std::int32_t>(feasible_types(id).size())) {
      return false;
    }
    if (in_flippable_[id] != (is_flippable(id) ? 1 : 0)) return false;
    if (flippable_.contains(id) != is_flippable(id)) return false;
  }
  return true;
}

MultiRunResult run_multi(MultiTypeModel& model, Rng& rng,
                         std::uint64_t max_flips) {
  MultiRunResult result;
  while (!model.quiescent() && result.flips < max_flips) {
    result.final_time +=
        rng.exponential(static_cast<double>(model.flippable_set().size()));
    const std::uint32_t id = model.flippable_set().sample(rng);
    const auto feasible = model.feasible_types(id);
    // Membership in the flippable set guarantees feasible is nonempty.
    const std::uint8_t target = feasible[rng.uniform_below(feasible.size())];
    model.set_type(id, target);
    ++result.flips;
  }
  result.quiescent = model.quiescent();
  return result;
}

std::int64_t largest_type_cluster(const MultiTypeModel& model) {
  const int n = model.side();
  UnionFind uf(model.agent_count());
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      const std::size_t i = static_cast<std::size_t>(y) * n + x;
      const std::size_t right =
          static_cast<std::size_t>(y) * n + torus_wrap(x + 1, n);
      const std::size_t down =
          static_cast<std::size_t>(torus_wrap(y + 1, n)) * n + x;
      if (model.types()[i] == model.types()[right]) uf.unite(i, right);
      if (model.types()[i] == model.types()[down]) uf.unite(i, down);
    }
  }
  std::int64_t best = 0;
  for (std::size_t i = 0; i < model.agent_count(); ++i) {
    best = std::max<std::int64_t>(best, uf.component_size(i));
  }
  return best;
}

}  // namespace seg
