// Sweeps the intolerance tau across the paper's interval and writes a CSV
// of segregation statistics — the "more tolerance can mean more
// segregation" exploration the paper's introduction motivates.
//
//   ./intolerance_sweep --n 96 --w 3 --trials 4 --out sweep.csv
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/clusters.h"
#include "analysis/regions.h"
#include "core/dynamics.h"
#include "core/experiment.h"
#include "core/model.h"
#include "io/csv.h"
#include "theory/constants.h"
#include "util/args.h"

int main(int argc, char** argv) {
  const seg::ArgParser args(argc, argv);
  const int n = static_cast<int>(args.get_int("n", 96));
  const int w = static_cast<int>(args.get_int("w", 3));
  const auto trials = static_cast<std::size_t>(args.get_int("trials", 4));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  const std::string out = args.get_string("out", "sweep.csv");

  std::printf("tau sweep on %dx%d torus, w=%d, %zu trials per tau\n", n, n, w,
              trials);
  std::printf("paper constants: tau2=%.5f tau1=%.5f\n", seg::tau2(),
              seg::tau1());

  seg::CsvWriter csv({"tau", "mean_flips", "mean_EM", "sem_EM",
                      "mean_largest_cluster", "mean_interface"});
  for (double tau = 0.35; tau < 0.50; tau += 0.02) {
    seg::RunningStats flips, em, largest, interface_len;
    for (std::size_t t = 0; t < trials; ++t) {
      seg::ModelParams params{.n = n, .w = w, .tau = tau, .p = 0.5};
      seg::Rng init = seg::Rng::stream(seed + t, 0);
      seg::SchellingModel m(params, init);
      seg::Rng dyn = seg::Rng::stream(seed + t, 1);
      flips.add(static_cast<double>(seg::run_glauber(m, dyn).flips));
      const auto field = seg::mono_region_field(m);
      seg::Rng smp = seg::Rng::stream(seed + t, 2);
      em.add(seg::mean_mono_region_size(field, 24, smp));
      const auto clusters = seg::cluster_stats(m);
      largest.add(static_cast<double>(clusters.largest_cluster));
      interface_len.add(static_cast<double>(clusters.interface_length));
    }
    csv.new_row()
        .add(tau)
        .add(flips.mean())
        .add(em.mean())
        .add(em.sem())
        .add(largest.mean())
        .add(interface_len.mean());
    std::printf("tau=%.2f  flips=%8.0f  E[M]=%8.1f  largest=%8.0f\n", tau,
                flips.mean(), em.mean(), largest.mean());
  }
  if (csv.write_file(out)) {
    std::printf("wrote %s\n", out.c_str());
  }
  return 0;
}
