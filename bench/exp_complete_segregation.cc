// NOSEG / FONTES — two complementary fixation experiments.
//
// (A) Corollary of Theorems 1-2: at p = 1/2 complete segregation (one
//     type covering the whole grid) does NOT occur w.h.p. for the tau
//     range considered — the exponential *upper* bound on E[M] forbids it.
// (B) Contrast (Fontes et al. [27] / Morris [28]): at tau = 1/2 there is a
//     critical initial density p* < 1 above which the dynamics fixate on
//     the all-majority state. We sweep p at tau = 1/2 and locate the
//     finite-size fixation threshold.
#include <cstdio>

#include "analysis/clusters.h"
#include "core/dynamics.h"
#include "core/model.h"
#include "core/parallel_dynamics.h"
#include "io/table.h"
#include "lattice/sharded.h"
#include "rng/splitmix64.h"
#include "util/args.h"
#include "util/stats.h"

namespace {

struct FixationResult {
  double complete_fraction = 0.0;
  double majority_fraction_mean = 0.0;
};

// shards <= 1 runs the serial engine (bitwise the legacy trajectories);
// shards > 1 runs each trial through the sharded sweep engine
// (core/parallel_dynamics.h), which makes n >= 1024 sweeps practical.
FixationResult measure(int n, int w, double tau, double p,
                       std::size_t trials, std::uint64_t seed, int shards) {
  FixationResult out;
  seg::RunningStats majority;
  std::size_t complete = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    seg::ModelParams params{.n = n, .w = w, .tau = tau, .p = p};
    seg::Rng init = seg::Rng::stream(seed + t, 0);
    if (shards > 1) {
      seg::SchellingModel model(params, init,
                                seg::ShardLayout::stripes(n, w, shards));
      // Per-shard substreams derive from the dynamics stream's seed, so
      // they stay disjoint from the init stream above.
      seg::run_parallel_glauber(model, seg::mix_seed(seed + t, 1));
      complete += seg::completely_segregated(model.spins());
      majority.add(seg::majority_fraction(model.spins()));
      continue;
    }
    seg::SchellingModel model(params, init);
    seg::Rng dyn = seg::Rng::stream(seed + t, 1);
    seg::run_glauber(model, dyn);
    complete += seg::completely_segregated(model.spins());
    majority.add(seg::majority_fraction(model.spins()));
  }
  out.complete_fraction =
      static_cast<double>(complete) / static_cast<double>(trials);
  out.majority_fraction_mean = majority.mean();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const seg::ArgParser args(argc, argv);
  const int n = static_cast<int>(args.get_int("n", 64));
  const int w = static_cast<int>(args.get_int("w", 2));
  const auto trials = static_cast<std::size_t>(args.get_int("trials", 8));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 21));
  const int shards = static_cast<int>(args.get_int("shards", 1));

  std::printf("== (A) No complete segregation at p = 1/2 (corollary of the "
              "exponential upper bound) ==\n");
  std::printf("(n=%d, w=%d, %zu trials per tau)\n\n", n, w, trials);
  seg::TablePrinter a({"tau", "P(complete)", "mean majority fraction"});
  for (const double tau : {0.36, 0.40, 0.45, 0.48, 0.55, 0.60}) {
    const auto r = measure(n, w, tau, 0.5, trials, seed, shards);
    a.new_row()
        .add(tau, 2)
        .add(r.complete_fraction, 3)
        .add(r.majority_fraction_mean, 4);
  }
  a.print();
  std::printf("expected: P(complete) = 0 throughout (paper: \"complete "
              "segregation ... does not occur w.h.p.\").\n\n");

  std::printf("== (B) Fixation at tau = 1/2 as p grows (Fontes et al.: "
              "p* < 1) ==\n\n");
  seg::TablePrinter b({"p", "P(complete)", "mean majority fraction"});
  double p_star_estimate = -1.0;
  for (const double p : {0.50, 0.60, 0.70, 0.80, 0.85, 0.90, 0.95}) {
    const auto r = measure(n, w, 0.5, p, trials, seed + 1000, shards);
    if (p_star_estimate < 0 && r.complete_fraction >= 0.5) {
      p_star_estimate = p;
    }
    b.new_row()
        .add(p, 2)
        .add(r.complete_fraction, 3)
        .add(r.majority_fraction_mean, 4);
  }
  b.print();
  if (p_star_estimate > 0) {
    std::printf("finite-size fixation threshold (first p with >= 50%% "
                "fixation): ~%.2f — consistent with 1/2 < p* < 1.\n",
                p_star_estimate);
  } else {
    std::printf("no majority fixation observed up to p = 0.95 at this "
                "size; increase --n or --trials.\n");
  }
  return 0;
}
