// Tests for the neighborhood-shape generalization (Moore vs von Neumann).
#include <gtest/gtest.h>

#include "core/dynamics.h"
#include "core/model.h"

namespace seg {
namespace {

TEST(Shapes, OffsetStencilSizes) {
  EXPECT_EQ(neighborhood_offsets(NeighborhoodShape::kMoore, 2).size(), 25u);
  EXPECT_EQ(neighborhood_offsets(NeighborhoodShape::kVonNeumann, 2).size(),
            13u);
  EXPECT_EQ(neighborhood_offsets(NeighborhoodShape::kVonNeumann, 1).size(),
            5u);
}

TEST(Shapes, ParamsReportShapeDependentSize) {
  ModelParams moore{.n = 16, .w = 3, .tau = 0.4, .p = 0.5};
  EXPECT_EQ(moore.neighborhood_size(), 49);
  ModelParams diamond = moore;
  diamond.shape = NeighborhoodShape::kVonNeumann;
  EXPECT_EQ(diamond.neighborhood_size(), 25);  // 2*3*4 + 1
}

TEST(Shapes, StencilContainsOriginAndIsSymmetric) {
  for (const auto shape :
       {NeighborhoodShape::kMoore, NeighborhoodShape::kVonNeumann}) {
    const auto offsets = neighborhood_offsets(shape, 3);
    bool has_origin = false;
    for (const Point o : offsets) {
      if (o.x == 0 && o.y == 0) has_origin = true;
      // Symmetric: the negated offset is present too.
      bool has_mirror = false;
      for (const Point m : offsets) {
        if (m.x == -o.x && m.y == -o.y) {
          has_mirror = true;
          break;
        }
      }
      EXPECT_TRUE(has_mirror);
    }
    EXPECT_TRUE(has_origin);
  }
}

TEST(Shapes, VonNeumannCountsMatchBruteForce) {
  ModelParams p{.n = 16, .w = 3, .tau = 0.4, .p = 0.5};
  p.shape = NeighborhoodShape::kVonNeumann;
  Rng rng(1);
  SchellingModel m(p, rng);
  EXPECT_TRUE(m.check_invariants());
}

TEST(Shapes, VonNeumannFlipMaintainsInvariants) {
  ModelParams p{.n = 16, .w = 2, .tau = 0.4, .p = 0.5};
  p.shape = NeighborhoodShape::kVonNeumann;
  Rng rng(2);
  SchellingModel m(p, rng);
  for (int t = 0; t < 40; ++t) {
    m.flip(static_cast<std::uint32_t>(rng.uniform_below(m.agent_count())));
  }
  EXPECT_TRUE(m.check_invariants());
}

TEST(Shapes, VonNeumannPlusCountExample) {
  // Cross of +1 at the center of a -1 field: the center agent's von
  // Neumann ball of radius 1 holds all 5 plus spins; the Moore ball of a
  // diagonal neighbor holds 4 of them but its von Neumann ball only 2.
  const int n = 12;
  ModelParams p{.n = n, .w = 1, .tau = 0.4, .p = 0.5};
  p.shape = NeighborhoodShape::kVonNeumann;
  std::vector<std::int8_t> spins(static_cast<std::size_t>(n) * n, -1);
  spins[5 * n + 5] = 1;
  spins[5 * n + 4] = 1;
  spins[5 * n + 6] = 1;
  spins[4 * n + 5] = 1;
  spins[6 * n + 5] = 1;
  SchellingModel m(p, spins);
  EXPECT_EQ(m.plus_count(m.id_of(5, 5)), 5);
  EXPECT_EQ(m.plus_count(m.id_of(4, 4)), 2);  // (4,5) and (5,4)
}

TEST(Shapes, VonNeumannDynamicsTerminatesHappy) {
  ModelParams p{.n = 32, .w = 2, .tau = 0.45, .p = 0.5};
  p.shape = NeighborhoodShape::kVonNeumann;
  Rng init(3);
  SchellingModel m(p, init);
  Rng dyn(4);
  const RunResult r = run_glauber(m, dyn);
  EXPECT_TRUE(r.terminated);
  EXPECT_EQ(m.count_unhappy(), 0u);  // tau < 1/2
  EXPECT_TRUE(m.check_invariants());
}

TEST(Shapes, BothShapesSegregateSimilarly) {
  // Same tau, same seeds: both stencils drive the system to full
  // happiness and materially fewer, larger clusters; the ablation bench
  // quantifies the differences.
  for (const auto shape :
       {NeighborhoodShape::kMoore, NeighborhoodShape::kVonNeumann}) {
    ModelParams p{.n = 32, .w = 2, .tau = 0.45, .p = 0.5};
    p.shape = shape;
    Rng init(5);
    SchellingModel m(p, init);
    Rng dyn(6);
    run_glauber(m, dyn);
    EXPECT_DOUBLE_EQ(m.happy_fraction(), 1.0);
  }
}

TEST(Shapes, MooreFastPathMatchesGenericInit) {
  // The Moore fast path (separable box sums) and the generic shifted-add
  // path must agree; force the generic path by comparing plus counts with
  // a hand-built Moore stencil via check_invariants on both.
  ModelParams p{.n = 20, .w = 2, .tau = 0.45, .p = 0.5};
  Rng r1(7);
  const auto spins = random_spins(p.n, p.p, r1);
  SchellingModel moore(p, spins);
  EXPECT_TRUE(moore.check_invariants());
  // The von Neumann model on the same field uses the generic path; its
  // invariant check exercises that code against brute force.
  p.shape = NeighborhoodShape::kVonNeumann;
  SchellingModel diamond(p, spins);
  EXPECT_TRUE(diamond.check_invariants());
}

}  // namespace
}  // namespace seg
