// Tests for the classic vacancy-based Schelling model (the mechanism the
// paper's introduction describes).
#include <gtest/gtest.h>

#include "core/vacancy.h"

namespace seg {
namespace {

VacancyParams small_params() {
  return VacancyParams{.n = 24, .w = 2, .tau = 0.45, .vacancy = 0.15,
                       .p = 0.5, .relocation_attempts = 32};
}

TEST(Vacancy, RandomSitesRespectDensities) {
  VacancyParams p{.n = 96, .w = 2, .tau = 0.45, .vacancy = 0.2, .p = 0.7,
                  .relocation_attempts = 8};
  Rng rng(1);
  const auto sites = random_sites(p, rng);
  std::size_t vacant = 0, plus = 0, occupied = 0;
  for (const auto s : sites) {
    vacant += s == 0;
    plus += s > 0;
    occupied += s != 0;
  }
  EXPECT_NEAR(static_cast<double>(vacant) / sites.size(), 0.2, 0.03);
  EXPECT_NEAR(static_cast<double>(plus) / occupied, 0.7, 0.03);
}

TEST(Vacancy, CountsMatchBruteForce) {
  Rng rng(2);
  VacancyModel m(small_params(), rng);
  EXPECT_TRUE(m.check_invariants());
}

TEST(Vacancy, IsolatedAgentIsHappy) {
  // One agent, everything else vacant.
  VacancyParams p = small_params();
  std::vector<std::int8_t> sites(24 * 24, 0);
  sites[12 * 24 + 12] = 1;
  VacancyModel m(p, sites);
  EXPECT_TRUE(m.is_happy(m.id_of(12, 12)));
  EXPECT_EQ(m.count_unhappy(), 0u);
  EXPECT_EQ(m.agent_total(), 1u);
}

TEST(Vacancy, MinorityAgentIsUnhappy) {
  // A -1 surrounded by +1: same-type fraction 0 < tau.
  VacancyParams p = small_params();
  std::vector<std::int8_t> sites(24 * 24, 1);
  sites[0] = 0;  // keep one vacancy so params stay meaningful
  sites[12 * 24 + 12] = -1;
  VacancyModel m(p, sites);
  EXPECT_FALSE(m.is_happy(m.id_of(12, 12)));
  EXPECT_EQ(m.count_unhappy(), 1u);
}

TEST(Vacancy, WouldBeHappyEvaluatesDestination) {
  // Vacant site deep inside a +1 district welcomes +1 and repels -1.
  VacancyParams p = small_params();
  std::vector<std::int8_t> sites(24 * 24, 1);
  sites[12 * 24 + 12] = 0;
  sites[0] = -1;
  VacancyModel m(p, sites);
  const std::uint32_t hole = m.id_of(12, 12);
  EXPECT_TRUE(m.would_be_happy(+1, hole));
  EXPECT_FALSE(m.would_be_happy(-1, hole));
}

TEST(Vacancy, MoveTransfersAgentAndPreservesInvariants) {
  Rng rng(3);
  VacancyModel m(small_params(), rng);
  ASSERT_GT(m.vacancy_total(), 0u);
  // Find any agent and any hole.
  std::uint32_t agent = 0;
  while (!m.occupied(agent)) ++agent;
  const std::uint32_t hole = m.vacant_set().at(0);
  const std::int8_t type = m.site(agent);
  const std::size_t agents_before = m.agent_total();
  m.move(agent, hole);
  EXPECT_EQ(m.site(agent), 0);
  EXPECT_EQ(m.site(hole), type);
  EXPECT_EQ(m.agent_total(), agents_before);
  EXPECT_TRUE(m.check_invariants());
}

TEST(Vacancy, MoveIsReversible) {
  Rng rng(4);
  VacancyModel m(small_params(), rng);
  std::uint32_t agent = 0;
  while (!m.occupied(agent)) ++agent;
  const std::uint32_t hole = m.vacant_set().at(0);
  const auto before = m.sites();
  m.move(agent, hole);
  m.move(hole, agent);
  EXPECT_EQ(m.sites(), before);
  EXPECT_TRUE(m.check_invariants());
}

TEST(Vacancy, RunIncreasesHappiness) {
  Rng init(5);
  VacancyModel m(small_params(), init);
  const double before = m.happy_fraction();
  Rng dyn(6);
  VacancyRunOptions opt;
  opt.max_moves = 20000;
  const VacancyRunResult r = run_vacancy(m, dyn, opt);
  EXPECT_GT(r.moves, 0u);
  EXPECT_GE(m.happy_fraction(), before);
  EXPECT_TRUE(m.check_invariants());
}

TEST(Vacancy, RunRaisesSimilarityIndex) {
  // Schelling's headline: relocation dynamics drive the mean same-type
  // fraction well above its ~1/2 starting point.
  Rng init(7);
  VacancyParams p{.n = 48, .w = 2, .tau = 0.5, .vacancy = 0.15, .p = 0.5,
                  .relocation_attempts = 32};
  VacancyModel m(p, init);
  const double before = m.similarity_index();
  Rng dyn(8);
  VacancyRunOptions opt;
  opt.max_moves = 100000;
  run_vacancy(m, dyn, opt);
  EXPECT_GT(m.similarity_index(), before + 0.1);
}

TEST(Vacancy, TypeCountsConserved) {
  Rng init(9);
  VacancyModel m(small_params(), init);
  const auto tally = [&] {
    std::pair<std::size_t, std::size_t> counts{0, 0};
    for (std::uint32_t id = 0; id < m.site_count(); ++id) {
      if (m.site(id) > 0) ++counts.first;
      if (m.site(id) < 0) ++counts.second;
    }
    return counts;
  };
  const auto before = tally();
  Rng dyn(10);
  VacancyRunOptions opt;
  opt.max_moves = 5000;
  run_vacancy(m, dyn, opt);
  EXPECT_EQ(tally(), before);
}

TEST(Vacancy, AbsorbingStateDetectedOnHappyConfiguration) {
  // Two separated districts and a vacancy strip: everyone happy.
  const int n = 24;
  VacancyParams p = small_params();
  std::vector<std::int8_t> sites(static_cast<std::size_t>(n) * n);
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      sites[y * n + x] = x < 10 ? 1 : (x < 14 ? 0 : -1);
    }
  }
  VacancyModel m(p, sites);
  EXPECT_EQ(m.count_unhappy(), 0u);
  EXPECT_TRUE(m.absorbing_state());
  Rng dyn(11);
  const VacancyRunResult r = run_vacancy(m, dyn);
  EXPECT_TRUE(r.terminated);
  EXPECT_EQ(r.moves, 0u);
}

}  // namespace
}  // namespace seg
