#include "core/comfort.h"

#include <cassert>

#include "grid/box_sum.h"

namespace seg {

ComfortModel::ComfortModel(const ComfortParams& params, Rng& rng)
    : ComfortModel(params, random_spins(params.n, params.p, rng)) {}

ComfortModel::ComfortModel(const ComfortParams& params,
                           std::vector<std::int8_t> spins)
    : params_(params),
      N_(params.neighborhood_size()),
      k_lo_(params.k_lo()),
      k_hi_(params.k_hi()),
      spins_(std::move(spins)),
      plus_count_(spins_.size(), 0),
      flippable_(spins_.size()) {
  assert(params_.valid());
  assert(spins_.size() ==
         static_cast<std::size_t>(params_.n) * params_.n);
  std::vector<std::int32_t> plus_indicator(spins_.size());
  for (std::size_t i = 0; i < spins_.size(); ++i) {
    assert(spins_[i] == 1 || spins_[i] == -1);
    plus_indicator[i] = spins_[i] > 0 ? 1 : 0;
  }
  plus_count_ = box_sum_torus(plus_indicator, params_.n, params_.w);
  for (std::uint32_t id = 0; id < spins_.size(); ++id) {
    refresh_membership(id);
  }
}

std::int8_t ComfortModel::spin_at(int x, int y) const {
  return spins_[static_cast<std::size_t>(torus_wrap(y, params_.n)) *
                    params_.n +
                torus_wrap(x, params_.n)];
}

std::uint32_t ComfortModel::id_of(int x, int y) const {
  return static_cast<std::uint32_t>(
      static_cast<std::size_t>(torus_wrap(y, params_.n)) * params_.n +
      torus_wrap(x, params_.n));
}

std::int32_t ComfortModel::same_count(std::uint32_t id) const {
  return spins_[id] > 0 ? plus_count_[id] : N_ - plus_count_[id];
}

bool ComfortModel::is_happy(std::uint32_t id) const {
  const std::int32_t s = same_count(id);
  return s >= k_lo_ && s <= k_hi_;
}

bool ComfortModel::flip_makes_happy(std::uint32_t id) const {
  const std::int32_t after = N_ - same_count(id) + 1;
  return after >= k_lo_ && after <= k_hi_;
}

void ComfortModel::refresh_membership(std::uint32_t id) {
  if (is_flippable(id)) {
    flippable_.insert(id);
  } else {
    flippable_.erase(id);
  }
}

void ComfortModel::flip(std::uint32_t id) {
  const std::int8_t old_spin = spins_[id];
  spins_[id] = static_cast<std::int8_t>(-old_spin);
  const std::int32_t delta = old_spin > 0 ? -1 : +1;
  const int n = params_.n;
  const int w = params_.w;
  const int cx = static_cast<int>(id % n);
  const int cy = static_cast<int>(id / n);
  for (int dy = -w; dy <= w; ++dy) {
    const std::size_t row =
        static_cast<std::size_t>(torus_wrap(cy + dy, n)) * n;
    for (int dx = -w; dx <= w; ++dx) {
      const std::uint32_t j =
          static_cast<std::uint32_t>(row + torus_wrap(cx + dx, n));
      plus_count_[j] += delta;
      refresh_membership(j);
    }
  }
}

std::size_t ComfortModel::count_unhappy() const {
  std::size_t unhappy = 0;
  for (std::uint32_t id = 0; id < spins_.size(); ++id) {
    unhappy += !is_happy(id);
  }
  return unhappy;
}

double ComfortModel::happy_fraction() const {
  return 1.0 - static_cast<double>(count_unhappy()) /
                   static_cast<double>(spins_.size());
}

bool ComfortModel::check_invariants() const {
  const int n = params_.n;
  const int w = params_.w;
  for (std::uint32_t id = 0; id < spins_.size(); ++id) {
    std::int32_t plus = 0;
    const int cx = static_cast<int>(id % n);
    const int cy = static_cast<int>(id / n);
    for (int dy = -w; dy <= w; ++dy) {
      for (int dx = -w; dx <= w; ++dx) {
        plus += spin_at(cx + dx, cy + dy) > 0 ? 1 : 0;
      }
    }
    if (plus != plus_count_[id]) return false;
    if (flippable_.contains(id) != is_flippable(id)) return false;
  }
  return true;
}

ComfortRunResult run_comfort(ComfortModel& model, Rng& rng,
                             std::uint64_t max_flips) {
  ComfortRunResult result;
  while (!model.quiescent() && result.flips < max_flips) {
    result.final_time +=
        rng.exponential(static_cast<double>(model.flippable_set().size()));
    const std::uint32_t id = model.flippable_set().sample(rng);
    model.flip(id);
    ++result.flips;
  }
  result.quiescent = model.quiescent();
  return result;
}

}  // namespace seg
