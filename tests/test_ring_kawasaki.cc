// Tests for the ring Kawasaki (swap) dynamics — the Brandt et al. [23]
// baseline.
#include <numeric>

#include <gtest/gtest.h>

#include "core1d/ring_kawasaki.h"

namespace seg {
namespace {

std::size_t plus_total(const RingModel& m) {
  std::size_t c = 0;
  for (int i = 0; i < m.size(); ++i) c += m.spin(i) > 0;
  return c;
}

TEST(RingKawasaki, SwapImprovesAppliesAndReverts) {
  // +++---+--- pattern: strays deep inside opposite runs swap happily.
  RingParams p{.n = 24, .w = 1, .tau = 0.6, .p = 0.5};
  std::vector<std::int8_t> spins(24, 1);
  for (int i = 12; i < 24; ++i) spins[i] = -1;
  spins[6] = -1;   // stray -1 in the +1 arc
  spins[18] = 1;   // stray +1 in the -1 arc
  RingModel m(p, spins);
  ASSERT_FALSE(m.is_happy(6));
  ASSERT_FALSE(m.is_happy(18));
  EXPECT_TRUE(ring_swap_improves(m, 6, 18));
  EXPECT_EQ(m.spin(6), 1);
  EXPECT_EQ(m.spin(18), -1);
  EXPECT_TRUE(m.check_invariants());
}

TEST(RingKawasaki, NonImprovingSwapRestoresState) {
  RingParams p{.n = 16, .w = 2, .tau = 0.9, .p = 0.5};
  std::vector<std::int8_t> spins(16);
  for (int i = 0; i < 16; ++i) spins[i] = (i % 2 == 0) ? 1 : -1;
  RingModel m(p, spins);
  const auto before = m.spins();
  EXPECT_FALSE(ring_swap_improves(m, 0, 1));
  EXPECT_EQ(m.spins(), before);
  EXPECT_TRUE(m.check_invariants());
}

TEST(RingKawasaki, ConservesTypeCounts) {
  RingParams p{.n = 512, .w = 2, .tau = 0.5, .p = 0.5};
  Rng init(1);
  RingModel m(p, init);
  const std::size_t before = plus_total(m);
  Rng dyn(2);
  RingKawasakiOptions opt;
  opt.max_swaps = 300;
  run_ring_kawasaki(m, dyn, opt);
  EXPECT_EQ(plus_total(m), before);
}

TEST(RingKawasaki, TerminatesOnUniformRing) {
  RingParams p{.n = 64, .w = 2, .tau = 0.5, .p = 0.5};
  RingModel m(p, std::vector<std::int8_t>(64, 1));
  Rng dyn(3);
  const RingKawasakiResult r = run_ring_kawasaki(m, dyn);
  EXPECT_TRUE(r.terminated);
  EXPECT_EQ(r.swaps, 0u);
}

TEST(RingKawasaki, StaleCheckCertifiesAbsorption) {
  // Alternating ring at tau = 0.9, w = 2: every agent sees 3 of 5
  // same-type and a swap still leaves 3 of 5 — everyone stays unhappy and
  // no swap improves. (At w = 1 swaps *do* improve: each agent's two
  // neighbors have opposite parity, so the swapped pair ends fully
  // surrounded by its own type.)
  RingParams p{.n = 32, .w = 2, .tau = 0.9, .p = 0.5};
  std::vector<std::int8_t> spins(32);
  for (int i = 0; i < 32; ++i) spins[i] = (i % 2 == 0) ? 1 : -1;
  RingModel m(p, spins);
  Rng dyn(4);
  RingKawasakiOptions opt;
  opt.stale_check_after = 50;
  const RingKawasakiResult r = run_ring_kawasaki(m, dyn, opt);
  EXPECT_TRUE(r.terminated);
  EXPECT_EQ(r.swaps, 0u);
}

TEST(RingKawasaki, SegregatesAtTauHalf) {
  RingParams p{.n = 2048, .w = 4, .tau = 0.5, .p = 0.5};
  Rng init(5);
  RingModel m(p, init);
  const double before = m.mean_run_length();
  Rng dyn(6);
  RingKawasakiOptions opt;
  opt.max_swaps = 100000;
  run_ring_kawasaki(m, dyn, opt);
  EXPECT_GT(m.mean_run_length(), before);
}

TEST(RingKawasaki, RunLengthGrowsWithW) {
  // Brandt et al.: expected run length polynomial in w — growing, at any
  // rate, with the window size.
  double prev = 0.0;
  for (const int w : {2, 6}) {
    RingParams p{.n = 4096, .w = w, .tau = 0.5, .p = 0.5};
    Rng init(10 + w);
    RingModel m(p, init);
    Rng dyn(20 + w);
    RingKawasakiOptions opt;
    opt.max_swaps = 200000;
    run_ring_kawasaki(m, dyn, opt);
    const double len = m.mean_run_length();
    EXPECT_GT(len, prev) << w;
    prev = len;
  }
}

}  // namespace
}  // namespace seg
