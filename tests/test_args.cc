#include "util/args.h"

#include <gtest/gtest.h>

namespace seg {
namespace {

ArgParser make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParser, EqualsForm) {
  const auto p = make({"--n=128", "--tau=0.42"});
  EXPECT_EQ(p.get_int("n"), 128);
  EXPECT_DOUBLE_EQ(p.get_double("tau"), 0.42);
}

TEST(ArgParser, SpaceForm) {
  const auto p = make({"--n", "64", "--name", "fig1"});
  EXPECT_EQ(p.get_int("n"), 64);
  EXPECT_EQ(p.get_string("name"), "fig1");
}

TEST(ArgParser, BooleanFlag) {
  const auto p = make({"--verbose"});
  EXPECT_TRUE(p.get_bool("verbose"));
  EXPECT_TRUE(p.has("verbose"));
}

TEST(ArgParser, BoolSpellings) {
  const auto p = make({"--a=true", "--b=0", "--c=yes", "--d=off"});
  EXPECT_TRUE(p.get_bool("a"));
  EXPECT_FALSE(p.get_bool("b"));
  EXPECT_TRUE(p.get_bool("c"));
  EXPECT_FALSE(p.get_bool("d"));
}

TEST(ArgParser, DefaultsWhenMissing) {
  const auto p = make({});
  EXPECT_EQ(p.get_int("n", 42), 42);
  EXPECT_DOUBLE_EQ(p.get_double("tau", 0.5), 0.5);
  EXPECT_EQ(p.get_string("out", "x.csv"), "x.csv");
  EXPECT_FALSE(p.get_bool("flag", false));
  EXPECT_TRUE(p.get_bool("flag2", true));
}

TEST(ArgParser, MalformedNumbersFallBack) {
  const auto p = make({"--n=abc", "--tau=zz"});
  EXPECT_EQ(p.get_int("n", 7), 7);
  EXPECT_DOUBLE_EQ(p.get_double("tau", 0.25), 0.25);
}

TEST(ArgParser, PositionalCollected) {
  const auto p = make({"input.txt", "--n=3", "other"});
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "input.txt");
  EXPECT_EQ(p.positional()[1], "other");
}

TEST(ArgParser, ProgramNameCaptured) {
  const auto p = make({});
  EXPECT_EQ(p.program_name(), "prog");
}

TEST(ArgParser, FlagFollowedByFlagIsBoolean) {
  const auto p = make({"--fast", "--n=10"});
  EXPECT_TRUE(p.get_bool("fast"));
  EXPECT_EQ(p.get_int("n"), 10);
}

TEST(ArgParser, LastValueWins) {
  const auto p = make({"--n=1", "--n=2"});
  EXPECT_EQ(p.get_int("n"), 2);
}

TEST(ArgParser, NegativeNumbersAsValues) {
  const auto p = make({"--offset=-5"});
  EXPECT_EQ(p.get_int("offset"), -5);
}

TEST(ArgParser, HasIsFalseForMissing) {
  const auto p = make({"--x=1"});
  EXPECT_TRUE(p.has("x"));
  EXPECT_FALSE(p.has("y"));
}

}  // namespace
}  // namespace seg
