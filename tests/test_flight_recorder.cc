// Tests for the flight recorder: ring semantics, merged dumps, the
// async-signal-safe fd path, and the crash/assert dump hooks.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "json_checker.h"
#include "obs/flight_recorder.h"
#include "util/seg_assert.h"

namespace seg {
namespace {

namespace flight = obs::flight;
using seg::testing::json_well_formed;

// Serializes recorder state across tests (the rings are process-global).
struct ScopedRecorder {
  ScopedRecorder() {
    flight::reset_for_test();
    flight::set_enabled(true);
  }
  ~ScopedRecorder() {
    flight::set_enabled(false);
    flight::reset_for_test();
  }
};

TEST(FlightRecorder, DisabledRecordsNothing) {
  flight::reset_for_test();
  flight::set_enabled(false);
  flight::record("ignored", 1, 2);
  SEG_FLIGHT("also_ignored", 3, 4);
  EXPECT_EQ(flight::recorded_total(), 0u);
  EXPECT_EQ(flight::dump_json().find("ignored"), std::string::npos);
}

TEST(FlightRecorder, DumpIsWellFormedAndOrdered) {
  ScopedRecorder recorder;
  flight::record("alpha", 1, -2);
  flight::record("beta", 3, 4);
  flight::record("gamma", 5, 6);
  const std::string dump = flight::dump_json();
  EXPECT_TRUE(json_well_formed(dump)) << dump;
  const std::size_t a = dump.find("alpha");
  const std::size_t b = dump.find("beta");
  const std::size_t c = dump.find("gamma");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  ASSERT_NE(c, std::string::npos);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_NE(dump.find("\"b\": -2"), std::string::npos) << dump;
  EXPECT_NE(dump.find("\"dropped\": 0"), std::string::npos) << dump;
}

TEST(FlightRecorder, RingKeepsOnlyTheNewestEvents) {
  ScopedRecorder recorder;
  const std::size_t n = flight::kRingEvents + 50;
  for (std::size_t i = 0; i < n; ++i) {
    flight::record("spin", static_cast<std::int64_t>(i), 0);
  }
  EXPECT_EQ(flight::recorded_total(), n);
  const std::string dump = flight::dump_json();
  EXPECT_TRUE(json_well_formed(dump)) << dump.substr(0, 400);
  // The oldest surviving event is exactly n - kRingEvents (seq n-255).
  EXPECT_EQ(dump.find("\"a\": 0,"), std::string::npos)
      << "overwritten event survived";
  EXPECT_NE(dump.find("\"a\": " + std::to_string(n - 1)), std::string::npos)
      << "newest event missing";
  EXPECT_NE(dump.find("\"dropped\": 50"), std::string::npos) << "expected "
      << n - flight::kRingEvents << " dropped";
}

TEST(FlightRecorder, MergesThreadsInSequenceOrder) {
  ScopedRecorder recorder;
  std::thread other([] {
    for (int i = 0; i < 20; ++i) flight::record("other_thread", i, 0);
  });
  other.join();
  for (int i = 0; i < 20; ++i) flight::record("main_thread", i, 0);
  const std::string dump = flight::dump_json();
  EXPECT_TRUE(json_well_formed(dump)) << dump;
  EXPECT_NE(dump.find("other_thread"), std::string::npos);
  EXPECT_NE(dump.find("main_thread"), std::string::npos);
  // Sequence numbers appear in increasing order (the merge invariant).
  std::uint64_t prev = 0;
  std::size_t pos = 0;
  int events = 0;
  while ((pos = dump.find("\"seq\": ", pos)) != std::string::npos) {
    pos += 7;
    const std::uint64_t seq = std::strtoull(dump.c_str() + pos, nullptr, 10);
    EXPECT_GT(seq, prev) << "dump not in sequence order";
    prev = seq;
    ++events;
  }
  EXPECT_EQ(events, 40);
}

TEST(FlightRecorder, FdDumpMatchesStringDump) {
  ScopedRecorder recorder;
  flight::record("fd_event", 7, 8);
  char path[] = "/tmp/seg_flight_XXXXXX";
  const int fd = ::mkstemp(path);
  ASSERT_GE(fd, 0);
  const std::size_t written = flight::dump_to_fd(fd);
  ::close(fd);
  std::FILE* f = std::fopen(path, "r");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[512];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) contents.append(buf, n);
  std::fclose(f);
  std::remove(path);
  EXPECT_EQ(written, contents.size());
  EXPECT_EQ(contents, flight::dump_json());
}

TEST(FlightRecorderDeathTest, SignalHandlerDumpsBeforeDying) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        flight::reset_for_test();
        flight::set_enabled(true);
        flight::record("before_the_crash", 1, 2);
        flight::install_crash_handler("");  // empty path: dump to stderr
        std::abort();
      },
      "flight recorder: signal 6.*before_the_crash");
}

TEST(FlightRecorderDeathTest, CrashHandlerWritesDumpFile) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string path = "/tmp/seg_flight_crash_dump.json";
  std::remove(path.c_str());
  EXPECT_DEATH(
      {
        flight::reset_for_test();
        flight::set_enabled(true);
        flight::record("crash_file_event", 9, 9);
        flight::install_crash_handler(path);
        ::raise(SIGSEGV);
      },
      "dump written to");
  std::ifstream check(path);
  ASSERT_TRUE(check) << "crash dump file was not written";
  std::ostringstream text;
  text << check.rdbuf();
  EXPECT_TRUE(json_well_formed(text.str())) << text.str();
  EXPECT_NE(text.str().find("crash_file_event"), std::string::npos);
  std::remove(path.c_str());
}

#ifdef SEG_DEBUG_CHECKS
TEST(FlightRecorderDeathTest, SegAssertFailureIncludesFlightDump) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        flight::reset_for_test();
        flight::set_enabled(true);
        flight::record("assert_context", 1, 1);
        SEG_ASSERT(false, "intentional failure " << 42);
      },
      "SEG_ASSERT failed.*flight recorder dump.*assert_context");
}
#endif

}  // namespace
}  // namespace seg
