#include "theory/constants.h"

#include <cassert>
#include <cmath>
#include <mutex>

#include "theory/entropy.h"
#include "theory/roots.h"

namespace seg {

double tau1_equation(double tau) {
  return 0.75 * (1.0 - binary_entropy(4.0 * tau / 3.0)) -
         (1.0 - binary_entropy(tau));
}

double tau2_equation(double tau) {
  return 1024.0 * tau * tau - 384.0 * tau + 11.0;
}

double tau1() {
  static double value = [] {
    // The root lies strictly inside (0.3, 0.499): the equation is negative
    // at 0.3 and positive near 1/2 (checked in tests).
    const RootResult r = bisect(tau1_equation, 0.3, 0.499);
    assert(r.converged);
    return r.x;
  }();
  return value;
}

double tau2() {
  // 1024 tau^2 - 384 tau + 11 = 0  =>  tau = (384 +- 320)/2048.
  // The segregation-relevant root is the larger one, 704/2048 = 11/32.
  return 11.0 / 32.0;
}

double mono_interval_width() { return 2.0 * (0.5 - tau1()); }

double full_interval_width() { return 2.0 * (0.5 - tau2()); }

double f_tau(double tau) {
  if (tau > 0.5) tau = 1.0 - tau;  // symmetry (paper Sec. IV-C)
  assert(tau > tau2() && tau < 0.5);
  const double d = tau - 0.5;
  const double disc = 9.0 * d * d - 7.0 * d * (3.0 * tau + 0.5);
  assert(disc >= 0.0);
  return (3.0 * d + std::sqrt(disc)) / (2.0 * (3.0 * tau + 0.5));
}

}  // namespace seg
