// Quickstart: run the paper's Schelling/Glauber process to its absorbing
// state on a small torus and print what happened.
//
//   ./quickstart [--n 128] [--w 4] [--tau 0.45] [--seed 1]
#include <cstdio>

#include "analysis/clusters.h"
#include "analysis/regions.h"
#include "core/dynamics.h"
#include "core/model.h"
#include "util/args.h"

int main(int argc, char** argv) {
  const seg::ArgParser args(argc, argv);
  seg::ModelParams params;
  params.n = static_cast<int>(args.get_int("n", 128));
  params.w = static_cast<int>(args.get_int("w", 4));
  params.tau = args.get_double("tau", 0.45);
  params.p = args.get_double("p", 0.5);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  if (!params.valid()) {
    std::fprintf(stderr, "invalid parameters (need 2w+1 <= n)\n");
    return 1;
  }

  seg::Rng init = seg::Rng::stream(seed, 0);
  seg::SchellingModel model(params, init);
  std::printf("Schelling/Glauber on a %dx%d torus, w=%d (N=%d), tau=%.3f "
              "(K=%d)\n",
              params.n, params.n, params.w, params.neighborhood_size(),
              params.tau, model.happy_threshold());
  std::printf("initial: %5.1f%% happy, %zu unhappy agents\n",
              100.0 * model.happy_fraction(), model.count_unhappy());

  seg::Rng dyn = seg::Rng::stream(seed, 1);
  const seg::RunResult result = seg::run_glauber(model, dyn);
  std::printf("dynamics: %llu flips, continuous time %.2f, %s\n",
              static_cast<unsigned long long>(result.flips),
              result.final_time,
              result.terminated ? "terminated" : "stopped early");
  std::printf("final:   %5.1f%% happy\n", 100.0 * model.happy_fraction());

  const auto clusters = seg::cluster_stats(model);
  std::printf("clusters: %zu same-type components, largest %lld sites, "
              "interface %lld\n",
              clusters.cluster_count,
              static_cast<long long>(clusters.largest_cluster),
              static_cast<long long>(clusters.interface_length));

  const auto field = seg::mono_region_field(model);
  seg::Rng sample = seg::Rng::stream(seed, 2);
  const double mean_m = seg::mean_mono_region_size(field, 32, sample);
  std::printf("segregation: largest monochromatic ball %lld sites; "
              "E[M] over sampled agents ~ %.1f sites\n",
              static_cast<long long>(seg::largest_mono_region(field)),
              mean_m);
  return 0;
}
