// Built-in campaigns: the paper's bench experiments expressed as scenario
// definitions so the bench drivers and the campaign_runner CLI share one
// source of truth (same spec + same campaign seed => same aggregates,
// bitwise, at any thread count).
//
//  * phase_diagram       — the (tau, p) phase portrait of the concluding
//                          remarks (bench/exp_phase_diagram).
//  * region_size         — E[M], E[M'] versus neighborhood size N for the
//                          Theorem 1/2 exponential-growth fits
//                          (bench/exp_region_size); the grid side is tied
//                          to w as n = max(64, 24w).
//  * percolation_stretch — supercritical chemical-distance stretch,
//                          Theorem 4 (bench/exp_percolation, part 1).
//  * percolation_radius  — subcritical cluster-radius decay, Theorem 5
//                          (bench/exp_percolation, part 2).
//  * graph_topologies    — the three synthetic non-torus families
//                          (lollipop, random_regular, small_world) through
//                          the engine's graph mode, scalar metrics only.
//
// The percolation campaigns reuse the grid axes with their natural
// reinterpretation (n is the box side L, p the site-open probability) and
// supply custom replica functions over percolation/.
#pragma once

#include <string>
#include <vector>

#include "campaign/campaign.h"

namespace seg {

struct BuiltinCampaign {
  ScenarioSpec spec;
  std::vector<ScenarioPoint> points;     // expanded (and possibly adjusted)
  std::vector<std::string> metric_names;
  ReplicaFn replica;
};

// Optional overrides for the campaign's defaults; 0 keeps the default.
struct BuiltinOverrides {
  int n = 0;            // grid side (phase_diagram) / box side L (percolation)
  int w = 0;            // horizon (phase_diagram)
  std::size_t replicas = 0;
  // Lattice shards per Glauber replica (sharded sweep engine); affects
  // the Schelling-dynamics campaigns only.
  std::size_t shards = 0;
  // Sequential stopping config (campaign/stopping.h); rule kNone keeps
  // the campaign fixed-replica. Applied after the builder, so it steers
  // the engine's replica scheduling without touching the replica fn.
  StopConfig stop;
  // Topology overrides for the graph_topologies campaign (the torus
  // campaigns ignore them). Empty topology keeps the builtin's family
  // list; the scalars follow the 0-keeps-default convention except
  // graph_beta, where any negative value keeps the default.
  std::vector<TopologyFamily> topology;
  std::size_t graph_nodes = 0;
  int graph_degree = 0;
  int graph_clique = 0;
  int graph_path = 0;
  double graph_beta = -1.0;
  std::uint64_t graph_seed = 0;
};

std::vector<std::string> builtin_campaign_names();

// False if `name` is not a built-in campaign.
bool make_builtin_campaign(const std::string& name,
                           const BuiltinOverrides& overrides,
                           BuiltinCampaign* out);

}  // namespace seg
