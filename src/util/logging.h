// Minimal leveled logger. The simulator itself never logs from hot paths;
// this exists for the experiment harnesses and examples.
//
// The SEG_LOG_* macros are lazy: when the level is below the global
// threshold the whole statement reduces to one relaxed load and a
// branch — the LogMessage (and its ostringstream) is never constructed
// and the streamed operands are never evaluated, so an expensive
// argument like `summarize(model)` costs nothing when filtered out.
#pragma once

#include <sstream>
#include <string>

namespace seg {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Global threshold; messages below it are dropped. Defaults to kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

// Whether a message at `level` would be emitted right now.
inline bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(log_level());
}

// Writes a single formatted line to stderr, thread-safe. Re-checks the
// threshold, so direct callers get the same filtering as the macros.
void log_line(LogLevel level, const std::string& message);

namespace internal {

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, stream_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Ternary-arm helper: `&` binds looser than `<<` and tighter than `?:`,
// so the macro below can swallow an entire `msg << a << b` chain into a
// void expression matching the `(void)0` arm.
struct Voidify {
  void operator&(const LogMessage&) {}
};

}  // namespace internal
}  // namespace seg

// Evaluates (and formats) the streamed operands only when the level
// clears the threshold at the moment the statement runs.
#define SEG_LOG_AT(level)                 \
  !::seg::log_enabled(level)              \
      ? (void)0                           \
      : ::seg::internal::Voidify() &      \
            ::seg::internal::LogMessage(level)

#define SEG_LOG_DEBUG SEG_LOG_AT(::seg::LogLevel::kDebug)
#define SEG_LOG_INFO SEG_LOG_AT(::seg::LogLevel::kInfo)
#define SEG_LOG_WARN SEG_LOG_AT(::seg::LogLevel::kWarn)
#define SEG_LOG_ERROR SEG_LOG_AT(::seg::LogLevel::kError)
