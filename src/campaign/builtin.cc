#include "campaign/builtin.h"

#include <algorithm>

#include "campaign/metrics.h"
#include "percolation/chemical.h"
#include "percolation/clusters.h"
#include "percolation/field.h"

namespace seg {
namespace {

BuiltinCampaign phase_diagram_campaign(const BuiltinOverrides& overrides) {
  BuiltinCampaign out;
  out.spec.name = "phase_diagram";
  out.spec.n = {overrides.n > 0 ? overrides.n : 64};
  out.spec.w = {overrides.w > 0 ? overrides.w : 2};
  out.spec.tau = {0.30, 0.36, 0.40, 0.44, 0.48, 0.50};
  out.spec.p = {0.50, 0.55, 0.60, 0.70, 0.80, 0.90};
  out.spec.replicas = overrides.replicas > 0 ? overrides.replicas : 3;
  if (overrides.shards > 0) out.spec.shards = overrides.shards;
  out.spec.region_samples = 16;
  out.spec.metrics = {"mean_mono_region", "fixation", "majority", "flips"};
  out.points = expand_grid(out.spec);
  out.metric_names = out.spec.metrics;
  out.replica = make_schelling_replica(out.spec);
  return out;
}

BuiltinCampaign region_size_campaign(const BuiltinOverrides& overrides) {
  BuiltinCampaign out;
  out.spec.name = "region_size";
  out.spec.tau = {0.45, 0.40, 0.55};
  out.spec.w = {1, 2, 3, 4, 5};
  out.spec.replicas = overrides.replicas > 0 ? overrides.replicas : 3;
  if (overrides.shards > 0) out.spec.shards = overrides.shards;
  out.spec.region_samples = 24;
  out.spec.almost_eps = 0.1;
  // The cluster/interface companions to the region metrics come from the
  // streaming engine — tracked over the whole trajectory in O(1) per
  // flip, never by an end-state rescan.
  out.spec.metrics = {"mean_mono_region", "mean_almost_region",
                      "streaming_largest_cluster",
                      "streaming_interface_length"};
  out.points = expand_grid(out.spec);
  // The bench ties the torus side to the horizon so the grid stays large
  // relative to the neighborhood: n = max(64, 24w).
  for (ScenarioPoint& pt : out.points) {
    pt.params.n = std::max(64, 24 * pt.params.w);
  }
  out.metric_names = expand_metric_names(out.spec.metrics);
  out.replica = make_schelling_replica(out.spec);
  return out;
}

BuiltinCampaign percolation_stretch_campaign(
    const BuiltinOverrides& overrides) {
  BuiltinCampaign out;
  out.spec.name = "percolation_stretch";
  out.spec.n = {overrides.n > 0 ? overrides.n : 192};  // box side L
  out.spec.p = {0.65, 0.70, 0.75, 0.85, 0.95};
  out.spec.replicas = overrides.replicas > 0 ? overrides.replicas : 24;
  out.spec.metrics = {"connected", "stretch", "tail_125"};
  out.points = expand_grid(out.spec);
  out.metric_names = out.spec.metrics;
  out.replica = [](const ScenarioPoint& point, std::size_t /*replica*/,
                   std::uint64_t replica_seed) {
    Rng rng = Rng::stream(replica_seed, 0);
    const int L = point.params.n;
    const SiteField field(L, point.params.p, rng);
    const StretchSample s =
        chemical_stretch(field, L / 8, L / 2, 7 * L / 8, L / 2);
    // Unconnected pairs contribute zeros; conditional means are recovered
    // downstream as sum(stretch) / sum(connected).
    return std::vector<double>{s.connected ? 1.0 : 0.0,
                               s.connected ? s.stretch : 0.0,
                               s.connected && s.stretch >= 1.25 ? 1.0 : 0.0};
  };
  return out;
}

BuiltinCampaign percolation_radius_campaign(
    const BuiltinOverrides& overrides) {
  BuiltinCampaign out;
  out.spec.name = "percolation_radius";
  out.spec.n = {overrides.n > 0 ? overrides.n : 61};  // box side L
  out.spec.p = {0.30, 0.40, 0.50};
  out.spec.replicas = overrides.replicas > 0 ? overrides.replicas : 400;
  out.spec.metrics = {"open", "r_ge_2", "r_ge_4", "r_ge_8", "r_ge_16"};
  out.points = expand_grid(out.spec);
  out.metric_names = out.spec.metrics;
  out.replica = [](const ScenarioPoint& point, std::size_t /*replica*/,
                   std::uint64_t replica_seed) {
    Rng rng = Rng::stream(replica_seed, 0);
    const int L = point.params.n;
    const SiteField field(L, point.params.p, rng);
    const int r = cluster_l1_radius(field, L / 2, L / 2);
    std::vector<double> values{r >= 0 ? 1.0 : 0.0};
    for (const int k : {2, 4, 8, 16}) {
      values.push_back(r >= k ? 1.0 : 0.0);
    }
    return values;
  };
  return out;
}

BuiltinCampaign graph_topologies_campaign(const BuiltinOverrides& overrides) {
  BuiltinCampaign out;
  out.spec.name = "graph_topologies";
  // n/w/shape parameterize the small_world base torus and the
  // random_regular node-count default; the lollipop family reads only
  // graph_clique/graph_path.
  out.spec.n = {overrides.n > 0 ? overrides.n : 32};
  out.spec.w = {overrides.w > 0 ? overrides.w : 1};
  out.spec.tau = {0.35, 0.45};
  out.spec.topology = {TopologyFamily::kLollipop,
                       TopologyFamily::kRandomRegular,
                       TopologyFamily::kSmallWorld};
  if (!overrides.topology.empty()) out.spec.topology = overrides.topology;
  out.spec.graph_nodes =
      overrides.graph_nodes > 0 ? overrides.graph_nodes : 1024;
  if (overrides.graph_degree > 0) out.spec.graph_degree = overrides.graph_degree;
  if (overrides.graph_clique > 0) out.spec.graph_clique = overrides.graph_clique;
  if (overrides.graph_path > 0) out.spec.graph_path = overrides.graph_path;
  if (overrides.graph_beta >= 0.0) out.spec.graph_beta = overrides.graph_beta;
  if (overrides.graph_seed > 0) out.spec.graph_seed = overrides.graph_seed;
  out.spec.replicas = overrides.replicas > 0 ? overrides.replicas : 3;
  if (overrides.shards > 0) out.spec.shards = overrides.shards;
  // Graph mode has no termination certificate on every family (small
  // worlds can cycle through near-regular degree classes for a long
  // time), so cap the replicas.
  out.spec.max_flips = 200000;
  out.spec.metrics = {"flips", "terminated", "majority", "happy_fraction",
                      "plus_fraction"};
  out.points = expand_grid(out.spec);
  out.metric_names = out.spec.metrics;
  out.replica = make_schelling_replica(out.spec);
  return out;
}

}  // namespace

std::vector<std::string> builtin_campaign_names() {
  return {"phase_diagram", "region_size", "percolation_stretch",
          "percolation_radius", "graph_topologies"};
}

bool make_builtin_campaign(const std::string& name,
                           const BuiltinOverrides& overrides,
                           BuiltinCampaign* out) {
  if (name == "phase_diagram") {
    *out = phase_diagram_campaign(overrides);
  } else if (name == "region_size") {
    *out = region_size_campaign(overrides);
  } else if (name == "percolation_stretch") {
    *out = percolation_stretch_campaign(overrides);
  } else if (name == "percolation_radius") {
    *out = percolation_radius_campaign(overrides);
  } else if (name == "graph_topologies") {
    *out = graph_topologies_campaign(overrides);
  } else {
    return false;
  }
  // Stopping rules ride on top of any built-in: they only change how many
  // replicas the engine schedules per point, never what a replica computes
  // (the spec copy captured by the replica fn predates this assignment,
  // which is fine — the stop config is engine-only).
  if (overrides.stop.rule != StopRule::kNone) out->spec.stop = overrides.stop;
  return true;
}

}  // namespace seg
