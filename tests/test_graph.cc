// Invariant battery for the graph-topology subsystem and the correctness
// satellites that shipped with it:
//  * builder invariants — torus rows in stencil order, lollipop degree
//    spectrum, random-regular degree exactness, small-world edge
//    conservation, edge-list round-trips and malformed-input refusal;
//  * greedy-BFS partition coverage/balance and the boundary definition;
//  * randomized flip fuzz over all three synthetic families: engine
//    invariant audit, degree conservation, magnetization bookkeeping;
//  * checked-parse helpers (util/parse.h): trailing garbage, overflow,
//    negative-into-unsigned, error messages naming the offending token;
//  * ArgParser malformed-value recording;
//  * checkpoint torn-write refusal (truncations must never load);
//  * ScenarioSpec topology keys: round-trip, default-text stability
//    (hash compatibility), graph-parameter validation.
#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "campaign/checkpoint.h"
#include "campaign/scenario.h"
#include "core/model.h"
#include "graph/partition.h"
#include "graph/topology.h"
#include "grid/point.h"
#include "rng/rng.h"
#include "util/args.h"
#include "util/parse.h"

namespace seg {
namespace {

// ---- builders ---------------------------------------------------------------

TEST(GraphTopologyTest, TorusRowsFollowStencilOrder) {
  const int n = 7;
  const auto offsets = neighborhood_offsets(NeighborhoodShape::kMoore, 2);
  const GraphTopology g = GraphTopology::torus(n, offsets);
  ASSERT_EQ(g.node_count(), static_cast<std::size_t>(n) * n);
  for (std::uint32_t v = 0; v < g.node_count(); ++v) {
    const int x = static_cast<int>(v) % n;
    const int y = static_cast<int>(v) / n;
    const auto [row, len] = g.row(v);
    ASSERT_EQ(len, static_cast<int>(offsets.size()));
    for (int i = 0; i < len; ++i) {
      const int nx = torus_wrap(x + offsets[i].x, n);
      const int ny = torus_wrap(y + offsets[i].y, n);
      ASSERT_EQ(row[i], static_cast<std::uint32_t>(ny * n + nx))
          << "node " << v << " stencil slot " << i;
    }
  }
  EXPECT_TRUE(g.validate());
}

TEST(GraphTopologyTest, LollipopDegreeSpectrum) {
  const int clique = 6, path = 4;
  const GraphTopology g = GraphTopology::lollipop(clique, path);
  std::string error;
  ASSERT_TRUE(g.validate(&error)) << error;
  ASSERT_EQ(g.node_count(), static_cast<std::size_t>(clique + path));
  EXPECT_EQ(g.edge_count(),
            static_cast<std::size_t>(clique * (clique - 1) / 2 + path));
  for (std::uint32_t v = 0; v + 1 < static_cast<std::uint32_t>(clique); ++v) {
    EXPECT_EQ(g.degree(v), clique - 1) << "clique node " << v;
  }
  // The junction carries the clique plus the first path node.
  EXPECT_EQ(g.degree(clique - 1), clique);
  for (std::uint32_t v = clique; v + 1 < g.node_count(); ++v) {
    EXPECT_EQ(g.degree(v), 2) << "path node " << v;
  }
  EXPECT_EQ(g.degree(static_cast<std::uint32_t>(g.node_count() - 1)), 1);
}

TEST(GraphTopologyTest, RandomRegularDegreesExact) {
  // Odd and even degrees, and a degree high enough that rejection
  // sampling of a simple graph would essentially never succeed — the
  // swap-repair construction must still deliver exact degrees.
  struct Case { int nodes, degree; std::uint64_t seed; };
  for (const Case c : {Case{64, 3, 1}, Case{128, 8, 2}, Case{90, 7, 3},
                       Case{256, 16, 4}}) {
    const GraphTopology g =
        GraphTopology::random_regular(c.nodes, c.degree, c.seed);
    std::string error;
    ASSERT_TRUE(g.validate(&error))
        << "nodes=" << c.nodes << " d=" << c.degree << ": " << error;
    ASSERT_EQ(g.node_count(), static_cast<std::size_t>(c.nodes));
    for (std::uint32_t v = 0; v < g.node_count(); ++v) {
      ASSERT_EQ(g.degree(v), c.degree)
          << "nodes=" << c.nodes << " d=" << c.degree << " node " << v;
    }
  }
  // Same seed, same graph; different seed, different graph (whp).
  const GraphTopology a = GraphTopology::random_regular(64, 4, 9);
  const GraphTopology b = GraphTopology::random_regular(64, 4, 9);
  const GraphTopology c = GraphTopology::random_regular(64, 4, 10);
  bool ab_equal = true, ac_equal = true;
  for (std::uint32_t v = 0; v < a.node_count(); ++v) {
    for (std::uint32_t u = 0; u < a.node_count(); ++u) {
      ab_equal &= a.adjacent(v, u) == b.adjacent(v, u);
      ac_equal &= a.adjacent(v, u) == c.adjacent(v, u);
    }
  }
  EXPECT_TRUE(ab_equal);
  EXPECT_FALSE(ac_equal);
}

TEST(GraphTopologyTest, SmallWorldConservesEdgeCount) {
  const int n = 12;
  const auto offsets = neighborhood_offsets(NeighborhoodShape::kMoore, 1);
  const GraphTopology torus = GraphTopology::torus(n, offsets);
  for (const double beta : {0.0, 0.1, 0.5, 1.0}) {
    const GraphTopology g = GraphTopology::small_world(n, offsets, beta, 5);
    std::string error;
    ASSERT_TRUE(g.validate(&error)) << "beta=" << beta << ": " << error;
    EXPECT_EQ(g.node_count(), torus.node_count());
    EXPECT_EQ(g.edge_count(), torus.edge_count()) << "beta=" << beta;
  }
  // beta = 0 keeps the torus edge set exactly (rows re-sorted is fine).
  const GraphTopology frozen = GraphTopology::small_world(n, offsets, 0.0, 5);
  for (std::uint32_t v = 0; v < frozen.node_count(); ++v) {
    for (std::uint32_t u = 0; u < frozen.node_count(); ++u) {
      ASSERT_EQ(frozen.adjacent(v, u), torus.adjacent(v, u))
          << "pair " << v << "," << u;
    }
  }
}

TEST(GraphTopologyTest, EdgeListRoundTrip) {
  const std::string path = ::testing::TempDir() + "seg_edges_roundtrip.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fprintf(f, "# a comment line\n0 1\n1 2\n2 0\n2 3\n\n3 4\n");
  std::fclose(f);
  GraphTopology g;
  std::string error;
  ASSERT_TRUE(GraphTopology::load_edge_list(path, &g, &error)) << error;
  EXPECT_TRUE(g.validate(&error)) << error;
  EXPECT_EQ(g.node_count(), 5u);
  EXPECT_EQ(g.edge_count(), 5u);
  EXPECT_TRUE(g.adjacent(0, 1));
  EXPECT_TRUE(g.adjacent(2, 3));
  EXPECT_FALSE(g.adjacent(0, 3));
  std::remove(path.c_str());
}

TEST(GraphTopologyTest, EdgeListRefusesMalformedInput) {
  const std::string path = ::testing::TempDir() + "seg_edges_malformed.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fprintf(f, "0 1\n1 2x\n");
  std::fclose(f);
  GraphTopology g;
  std::string error;
  EXPECT_FALSE(GraphTopology::load_edge_list(path, &g, &error));
  // The offending token must be named.
  EXPECT_NE(error.find("2x"), std::string::npos) << error;
  std::remove(path.c_str());
  EXPECT_FALSE(GraphTopology::load_edge_list(
      ::testing::TempDir() + "seg_no_such_file.txt", &g, &error));
}

// ---- partition --------------------------------------------------------------

TEST(GraphPartitionTest, GreedyBfsCoversAndClassifiesBoundary) {
  const GraphTopology g = GraphTopology::random_regular(200, 5, 21);
  for (const int parts : {1, 2, 4, 7}) {
    const GraphPartition partition = GraphPartition::greedy_bfs(g, parts);
    ASSERT_EQ(partition.part_count(), parts);
    std::vector<int> size(parts, 0);
    for (std::uint32_t v = 0; v < g.node_count(); ++v) {
      const int part = partition.part_of(v);
      ASSERT_GE(part, 0);
      ASSERT_LT(part, parts);
      ++size[part];
      // Boundary definition, verified against the raw adjacency.
      bool crosses = false;
      const auto [row, len] = g.row(v);
      for (int i = 0; i < len; ++i) {
        crosses |= partition.part_of(row[i]) != part;
      }
      ASSERT_EQ(partition.boundary(v), crosses) << "node " << v;
    }
    for (int part = 0; part < parts; ++part) {
      EXPECT_GT(size[part], 0) << "empty part " << part;
    }
  }
  EXPECT_TRUE(GraphPartition().trivial());
}

// ---- flip fuzz over the synthetic families ----------------------------------

TEST(GraphFuzzTest, RandomFlipsKeepEngineInvariants) {
  ModelParams params{.tau = 0.4, .p = 0.5, .tau_minus = 0.55};
  const auto stencil = neighborhood_offsets(NeighborhoodShape::kMoore, 1);
  const std::vector<std::shared_ptr<const GraphTopology>> topologies = {
      std::make_shared<const GraphTopology>(GraphTopology::lollipop(12, 20)),
      std::make_shared<const GraphTopology>(
          GraphTopology::random_regular(96, 6, 31)),
      std::make_shared<const GraphTopology>(
          GraphTopology::small_world(10, stencil, 0.2, 31)),
  };
  Rng rng = Rng::stream(606060, 0);
  for (const auto& graph : topologies) {
    SchellingModel model(params, graph,
                         random_spins_count(graph->node_count(), params.p,
                                            rng));
    const std::size_t nodes = model.agent_count();
    for (int step = 0; step < 400; ++step) {
      // Arbitrary (not necessarily flippable) flips — the engine contract
      // is unconditional.
      model.flip(rng.uniform_below(static_cast<std::uint32_t>(nodes)));
      if (step % 100 == 99) ASSERT_TRUE(model.check_invariants());
    }
    ASSERT_TRUE(model.check_invariants());
    // Degree conservation: flips never touch the topology.
    std::size_t neighborhood_total = 0;
    for (std::uint32_t v = 0; v < nodes; ++v) {
      neighborhood_total += model.neighborhood_size_of(v);
    }
    EXPECT_EQ(neighborhood_total, 2 * graph->edge_count() + nodes);
    // Magnetization bookkeeping: plus_fraction equals a direct recount.
    std::size_t plus = 0;
    for (std::uint32_t v = 0; v < nodes; ++v) plus += model.spin(v) > 0;
    EXPECT_DOUBLE_EQ(model.plus_fraction(),
                     static_cast<double>(plus) / static_cast<double>(nodes));
  }
}

// ---- checked parsing ---------------------------------------------------------

TEST(CheckedParseTest, RejectsTrailingGarbageNamingToken) {
  std::int64_t i = 0;
  std::string error;
  EXPECT_FALSE(parse_i64_checked("10x", &i, &error));
  EXPECT_NE(error.find("'10x'"), std::string::npos) << error;
  EXPECT_TRUE(parse_i64_checked("10", &i, &error));
  EXPECT_EQ(i, 10);
  EXPECT_FALSE(parse_i64_checked("", &i, &error));
  EXPECT_FALSE(parse_i64_checked("1 2", &i, &error));
}

TEST(CheckedParseTest, RejectsOutOfRange) {
  std::int64_t i = 0;
  std::uint64_t u = 0;
  int narrow = 0;
  std::string error;
  EXPECT_FALSE(parse_i64_checked("99999999999999999999999", &i, &error));
  EXPECT_TRUE(parse_u64_checked("18446744073709551615", &u, &error));
  EXPECT_EQ(u, UINT64_MAX);
  EXPECT_FALSE(parse_u64_checked("18446744073709551616", &u, &error));
  // strtoull would silently wrap "-1"; the checked helper refuses it.
  EXPECT_FALSE(parse_u64_checked("-1", &u, &error));
  EXPECT_NE(error.find("'-1'"), std::string::npos) << error;
  // i64-representable but outside int.
  EXPECT_FALSE(parse_int_checked("3000000000", &narrow, &error));
  EXPECT_TRUE(parse_int_checked("-7", &narrow, &error));
  EXPECT_EQ(narrow, -7);
}

TEST(CheckedParseTest, DoubleRejectsGarbageOverflowAndNonFinite) {
  double d = 0.0;
  std::string error;
  EXPECT_TRUE(parse_double_checked("1e3", &d, &error));
  EXPECT_EQ(d, 1000.0);
  EXPECT_FALSE(parse_double_checked("0.5y", &d, &error));
  EXPECT_NE(error.find("'0.5y'"), std::string::npos) << error;
  EXPECT_FALSE(parse_double_checked("1e999", &d, &error));
  EXPECT_FALSE(parse_double_checked("nan", &d, &error));
  EXPECT_FALSE(parse_double_checked("inf", &d, &error));
}

TEST(ArgParserTest, RecordsMalformedNumericValues) {
  const char* argv[] = {"prog", "--n", "10x", "--tau", "0.4", "--beta",
                        "0.5z"};
  const ArgParser args(7, argv);
  EXPECT_EQ(args.get_int("n", 42), 42);  // falls back AND records
  EXPECT_EQ(args.get_double("tau", 0.0), 0.4);
  EXPECT_EQ(args.get_double("beta", 0.1), 0.1);
  ASSERT_EQ(args.errors().size(), 2u);
  EXPECT_NE(args.errors()[0].find("--n"), std::string::npos);
  EXPECT_NE(args.errors()[0].find("'10x'"), std::string::npos);
  EXPECT_NE(args.errors()[1].find("--beta"), std::string::npos);
}

// ---- checkpoint torn writes --------------------------------------------------

TEST(CheckpointTornWriteTest, TruncatedFilesNeverLoad) {
  CheckpointData data;
  data.seed = 99;
  data.spec_hash = 0xabcdef;
  data.metric_count = 2;
  data.done = {1, 0, 1, 1};
  data.values = {{1.5, 2.5}, {}, {3.25, -0.5}, {0.0, 42.0}};
  const std::string path = ::testing::TempDir() + "seg_ckpt_torn.txt";
  ASSERT_TRUE(save_checkpoint(path, data));

  CheckpointData loaded;
  ASSERT_TRUE(load_checkpoint(path, &loaded));
  EXPECT_EQ(loaded.seed, data.seed);
  EXPECT_EQ(loaded.done, data.done);
  EXPECT_EQ(loaded.values[2], data.values[2]);

  // Read the intact bytes, then re-write every proper prefix: a torn
  // write (power cut mid-write, rename of a half-synced file) must be
  // refused, never half-loaded.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string bytes;
  char buf[256];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.append(buf, got);
  }
  std::fclose(f);
  ASSERT_GT(bytes.size(), 40u);
  for (const std::size_t keep :
       {bytes.size() - 1, bytes.size() - 9, bytes.size() / 2,
        bytes.size() / 4, std::size_t{10}}) {
    std::FILE* w = std::fopen(path.c_str(), "wb");
    ASSERT_NE(w, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, keep, w), keep);
    std::fclose(w);
    CheckpointData torn;
    EXPECT_FALSE(load_checkpoint(path, &torn))
        << "truncation to " << keep << " of " << bytes.size()
        << " bytes loaded";
  }
  std::remove(path.c_str());
}

// ---- scenario topology keys --------------------------------------------------

TEST(ScenarioTopologyTest, DefaultSpecTextHasNoGraphKeys) {
  // Hash compatibility: a torus-only spec's canonical text must not gain
  // topology/graph_* lines, or every existing checkpoint would be
  // orphaned.
  const ScenarioSpec spec;
  const std::string text = spec.to_text();
  EXPECT_EQ(text.find("topology"), std::string::npos);
  EXPECT_EQ(text.find("graph_"), std::string::npos);
}

TEST(ScenarioTopologyTest, RoundTripsTopologyAxis) {
  ScenarioSpec spec;
  spec.topology = {TopologyFamily::kLollipop, TopologyFamily::kRandomRegular,
                   TopologyFamily::kSmallWorld};
  spec.graph_clique = 16;
  spec.graph_degree = 6;
  spec.graph_beta = 0.25;
  spec.graph_seed = 12;
  spec.graph_nodes = 512;
  spec.metrics = {"flips", "happy_fraction"};
  std::string error;
  ASSERT_TRUE(spec.valid(&error)) << error;
  ScenarioSpec parsed;
  ASSERT_TRUE(ScenarioSpec::parse(spec.to_text(), &parsed, &error)) << error;
  EXPECT_EQ(parsed.topology, spec.topology);
  EXPECT_EQ(parsed.graph_clique, 16);
  EXPECT_EQ(parsed.graph_degree, 6);
  EXPECT_EQ(parsed.graph_beta, 0.25);
  EXPECT_EQ(parsed.graph_seed, 12u);
  EXPECT_EQ(parsed.graph_nodes, 512u);
  EXPECT_EQ(parsed.hash(), spec.hash());
  // The topology axis is the outermost expansion loop.
  const auto points = expand_grid(parsed);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].topology, TopologyFamily::kLollipop);
  EXPECT_EQ(points[2].topology, TopologyFamily::kSmallWorld);
}

TEST(ScenarioTopologyTest, ValidRejectsBadGraphSpecs) {
  ScenarioSpec spec;
  spec.topology = {TopologyFamily::kRandomRegular};
  spec.metrics = {"flips"};
  spec.graph_nodes = 99;
  spec.graph_degree = 5;  // 99 * 5 stubs: odd-handshake violation
  std::string error;
  EXPECT_FALSE(spec.valid(&error));
  EXPECT_NE(error.find("even"), std::string::npos) << error;
  spec.graph_degree = 6;
  EXPECT_TRUE(spec.valid(&error)) << error;
  // Lattice-only metrics cannot ride a graph topology.
  spec.metrics = {"flips", "mean_mono_region"};
  EXPECT_FALSE(spec.valid(&error));
  EXPECT_NE(error.find("mean_mono_region"), std::string::npos) << error;
  // Unknown topology names are parse errors naming the family.
  ScenarioSpec parsed;
  EXPECT_FALSE(ScenarioSpec::parse("topology = mobius\n", &parsed, &error));
  EXPECT_NE(error.find("mobius"), std::string::npos) << error;
}

}  // namespace
}  // namespace seg
