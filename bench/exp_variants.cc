// VARIANTS — ablations over the model variations the paper's concluding
// remarks and related work call out:
//
//  (a) comfort band: agents also dislike being an overwhelming majority
//      (tau_hi < 1). The paper conjectures this weakens segregation; we
//      sweep tau_hi and watch the largest same-type cluster collapse.
//  (b) asymmetric intolerance (Barmpalias et al. [26]): tau_minus != tau.
//      The open system drifts toward the more tolerant type.
//  (c) multi-type (Potts-like, Schulze [20]): q types under the same rule;
//      residual unhappiness grows with q while single-type clusters still
//      coarsen far beyond their initial size.
#include <cstdio>

#include "analysis/clusters.h"
#include "analysis/regions.h"
#include "core/comfort.h"
#include "core/dynamics.h"
#include "core/model.h"
#include "io/table.h"
#include "multitype/multi_model.h"
#include "util/args.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  const seg::ArgParser args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 29));
  const auto trials = static_cast<std::size_t>(args.get_int("trials", 4));
  const int n = static_cast<int>(args.get_int("n", 64));

  std::printf("== (a) Comfort band: cap on the same-type fraction ==\n");
  std::printf("(n=%d, w=2, tau_lo=0.45, %zu trials; tau_hi=1 is the "
              "paper's model)\n\n",
              n, trials);
  {
    seg::TablePrinter t({"tau_hi", "quiescent%", "happy%", "largest cluster",
                         "interface"});
    for (const double tau_hi : {1.0, 0.9, 0.8, 0.7, 0.6}) {
      seg::RunningStats quiescent, happy, largest, interface_len;
      for (std::size_t k = 0; k < trials; ++k) {
        seg::ComfortParams p{.n = n, .w = 2, .tau_lo = 0.45,
                             .tau_hi = tau_hi, .p = 0.5};
        seg::Rng init = seg::Rng::stream(seed + k, 0);
        seg::ComfortModel m(p, init);
        seg::Rng dyn = seg::Rng::stream(seed + k, 1);
        const auto r = seg::run_comfort(m, dyn, 400000);
        quiescent.add(r.quiescent ? 1.0 : 0.0);
        happy.add(m.happy_fraction());
        const auto stats = seg::cluster_stats(m.spins(), n);
        largest.add(static_cast<double>(stats.largest_cluster));
        interface_len.add(static_cast<double>(stats.interface_length));
      }
      t.new_row()
          .add(tau_hi, 2)
          .add(100.0 * quiescent.mean(), 0)
          .add(100.0 * happy.mean(), 1)
          .add(largest.mean(), 0)
          .add(interface_len.mean(), 0);
    }
    t.print();
    std::printf("expected: giant clusters at tau_hi = 1 collapse as the "
                "band tightens — discomfort with majority status undoes "
                "self-segregation.\n\n");
  }

  std::printf("== (b) Asymmetric intolerance (tau fixed 0.45 for +1) ==\n\n");
  {
    seg::TablePrinter t({"tau_minus", "final +1 fraction", "E[M]",
                         "flips"});
    for (const double tau_minus : {0.35, 0.40, 0.45, 0.49}) {
      seg::RunningStats plus_frac, em, flips;
      for (std::size_t k = 0; k < trials; ++k) {
        seg::ModelParams p{.n = n, .w = 2, .tau = 0.45, .p = 0.5,
                           .tau_minus = tau_minus};
        seg::Rng init = seg::Rng::stream(seed + 100 + k, 0);
        seg::SchellingModel m(p, init);
        seg::Rng dyn = seg::Rng::stream(seed + 100 + k, 1);
        seg::RunOptions opt;
        opt.max_flips = 400000;  // no Lyapunov guarantee off the diagonal
        flips.add(static_cast<double>(seg::run_glauber(m, dyn, opt).flips));
        plus_frac.add(m.plus_fraction());
        const auto field = seg::mono_region_field(m);
        seg::Rng smp = seg::Rng::stream(seed + 100 + k, 2);
        em.add(seg::mean_mono_region_size(field, 24, smp));
      }
      t.new_row()
          .add(tau_minus, 2)
          .add(plus_frac.mean(), 4)
          .add(em.mean(), 1)
          .add(flips.mean(), 0);
    }
    t.print();
    std::printf("expected: the more intolerant type (higher tau_minus) "
                "flips away more often — the +1 share grows above 1/2.\n\n");
  }

  std::printf("== (c) Multi-type (q types, tau = 0.4, w = 2) ==\n\n");
  {
    seg::TablePrinter t({"q", "initial happy%", "final happy%",
                         "largest type cluster", "flips"});
    for (const int q : {2, 3, 4, 6}) {
      seg::RunningStats happy0, happy1, largest, flips;
      for (std::size_t k = 0; k < trials; ++k) {
        seg::MultiParams p{.n = n, .w = 2, .q = q, .tau = 0.4};
        seg::Rng init = seg::Rng::stream(seed + 200 + k, q);
        seg::MultiTypeModel m(p, init);
        happy0.add(m.happy_fraction());
        seg::Rng dyn = seg::Rng::stream(seed + 300 + k, q);
        const auto r = seg::run_multi(m, dyn, 1u << 21);
        happy1.add(m.happy_fraction());
        largest.add(static_cast<double>(seg::largest_type_cluster(m)));
        flips.add(static_cast<double>(r.flips));
      }
      t.new_row()
          .add(static_cast<std::int64_t>(q))
          .add(100.0 * happy0.mean(), 1)
          .add(100.0 * happy1.mean(), 1)
          .add(largest.mean(), 0)
          .add(flips.mean(), 0);
    }
    t.print();
    std::printf("expected: initial happiness collapses as q grows (each "
                "type holds ~1/q of a neighborhood); dynamics still "
                "coarsen single-type clusters dramatically.\n\n");
  }

  std::printf("== (d) Neighborhood shape: extended Moore (paper) vs von "
              "Neumann ==\n\n");
  {
    seg::TablePrinter t({"shape", "N", "flips", "E[M]",
                         "largest cluster"});
    for (const auto shape : {seg::NeighborhoodShape::kMoore,
                             seg::NeighborhoodShape::kVonNeumann}) {
      seg::RunningStats flips, em, largest;
      for (std::size_t k = 0; k < trials; ++k) {
        seg::ModelParams p{.n = n, .w = 3, .tau = 0.45, .p = 0.5};
        p.shape = shape;
        seg::Rng init = seg::Rng::stream(seed + 400 + k, 0);
        seg::SchellingModel m(p, init);
        seg::Rng dyn = seg::Rng::stream(seed + 400 + k, 1);
        flips.add(static_cast<double>(seg::run_glauber(m, dyn).flips));
        const auto field = seg::mono_region_field(m);
        seg::Rng smp = seg::Rng::stream(seed + 400 + k, 2);
        em.add(seg::mean_mono_region_size(field, 24, smp));
        largest.add(static_cast<double>(
            seg::cluster_stats(m.spins(), n).largest_cluster));
      }
      seg::ModelParams probe{.n = n, .w = 3, .tau = 0.45, .p = 0.5};
      probe.shape = shape;
      t.new_row()
          .add(shape == seg::NeighborhoodShape::kMoore ? "moore"
                                                       : "von neumann")
          .add(static_cast<std::int64_t>(probe.neighborhood_size()))
          .add(flips.mean(), 0)
          .add(em.mean(), 1)
          .add(largest.mean(), 0);
    }
    t.print();
    std::printf("expected: both geometries segregate; the paper's "
                "theorems are stated for the Moore stencil, and the "
                "diamond's smaller N shifts the effective thresholds.\n");
  }
  return 0;
}
