// Shared golden-trajectory pins: the FNV-1a hashing helpers and the
// frozen hash constants captured from the pre-lattice-engine (PR 2 seed)
// implementations. One source of truth — test_golden_trajectory.cc pins
// every variant against these, and the streaming differential suite
// re-asserts the Glauber fixture with an observer attached; re-pinning a
// fixture after an intentional dynamics change happens here only.
#pragma once

#include <cstdint>
#include <cstring>

namespace seg::golden {

inline std::uint64_t fnv1a(const void* data, std::size_t len,
                           std::uint64_t h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

inline std::uint64_t hash_bytes(const void* data, std::size_t len) {
  return fnv1a(data, len, 14695981039346656037ULL);
}

inline std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  return fnv1a(&v, sizeof(v), h);
}

inline std::uint64_t mix_double(std::uint64_t h, double d) {
  std::uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return mix(h, bits);
}

// Captured from the pre-lattice-engine implementations (PR 2 seed state)
// with exactly the parameters and seeds in test_golden_trajectory.cc.
inline constexpr std::uint64_t kGlauber = 0x9ba2eb1f727a5fe9ull;
inline constexpr std::uint64_t kDiscrete = 0x801332b4ccd3037bull;
inline constexpr std::uint64_t kAsymVonNeumann = 0x1af2be3d65a66499ull;
inline constexpr std::uint64_t kSynchronous = 0x03dfa85039d227afull;
inline constexpr std::uint64_t kComfort = 0x4667963ad15961a7ull;
inline constexpr std::uint64_t kVacancy = 0xc330be046aceb86dull;
inline constexpr std::uint64_t kKawasaki = 0xb347afde603cf098ull;
inline constexpr std::uint64_t kMulti = 0x86665de47b912899ull;

}  // namespace seg::golden
