#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

namespace seg::obs {

namespace {

using Clock = std::chrono::steady_clock;

std::atomic<TraceSession*> g_current{nullptr};
// Bumped on every start(); thread-local buffer caches are keyed on it so
// a stale cache from a previous session (possibly allocated at the same
// address) is never written into.
std::atomic<std::uint64_t> g_generation{0};

struct Event {
  const char* name;
  double ts_us;
  double dur_us;        // "X" events only
  std::int64_t value;   // "C" events only
  char phase;           // 'X', 'i', or 'C'
};

struct TraceBuffer {
  std::vector<Event> events;
  std::uint32_t tid = 0;
};

struct ThreadCache {
  std::uint64_t generation = 0;  // 0 never matches a started session
  TraceBuffer* buffer = nullptr;
};

thread_local ThreadCache t_trace;

// Minimal JSON string escaping; span names are code literals, but keep
// the output well-formed for any input.
void append_escaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
}

}  // namespace

struct TraceSession::Impl {
  std::mutex mutex;
  std::vector<std::unique_ptr<TraceBuffer>> buffers;
  std::uint32_t next_tid = 0;
  std::uint64_t generation = 0;
  Clock::time_point epoch{};
  std::atomic<bool> active{false};

  TraceBuffer* local_buffer() {
    if (t_trace.generation != generation) {
      std::lock_guard<std::mutex> lock(mutex);
      buffers.push_back(std::make_unique<TraceBuffer>());
      TraceBuffer* buf = buffers.back().get();
      buf->tid = next_tid++;
      buf->events.reserve(256);
      t_trace.generation = generation;
      t_trace.buffer = buf;
    }
    return t_trace.buffer;
  }
};

TraceSession::TraceSession() : impl_(new Impl()) {}

TraceSession::~TraceSession() {
  stop();
  delete impl_;
}

void TraceSession::start() {
  TraceSession* expected = nullptr;
  if (!g_current.compare_exchange_strong(expected, this,
                                         std::memory_order_acq_rel)) {
    return;  // another session is active; first one wins
  }
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->epoch = Clock::now();
  impl_->generation =
      g_generation.fetch_add(1, std::memory_order_relaxed) + 1;
  impl_->active.store(true, std::memory_order_release);
}

void TraceSession::stop() {
  TraceSession* expected = this;
  if (g_current.compare_exchange_strong(expected, nullptr,
                                        std::memory_order_acq_rel)) {
    impl_->active.store(false, std::memory_order_release);
  }
}

bool TraceSession::active() const {
  return impl_->active.load(std::memory_order_acquire);
}

TraceSession* TraceSession::current() {
  return g_current.load(std::memory_order_relaxed);
}

double TraceSession::now_us() const {
  return std::chrono::duration<double, std::micro>(Clock::now() -
                                                   impl_->epoch)
      .count();
}

void TraceSession::record_complete(const char* name, double ts_us,
                                   double dur_us) {
  impl_->local_buffer()->events.push_back(
      Event{name, ts_us, dur_us, 0, 'X'});
}

void TraceSession::record_instant(const char* name) {
  impl_->local_buffer()->events.push_back(
      Event{name, now_us(), 0.0, 0, 'i'});
}

void TraceSession::record_counter(const char* name, std::int64_t value) {
  impl_->local_buffer()->events.push_back(
      Event{name, now_us(), 0.0, value, 'C'});
}

std::size_t TraceSession::event_count() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::size_t total = 0;
  for (const auto& buf : impl_->buffers) total += buf->events.size();
  return total;
}

std::string TraceSession::to_json() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::string out = "{\"traceEvents\":[";
  char num[64];
  bool first = true;
  for (const auto& buf : impl_->buffers) {
    for (const Event& e : buf->events) {
      if (!first) out.push_back(',');
      first = false;
      out.append("{\"name\":\"");
      append_escaped(&out, e.name);
      out.append("\",\"cat\":\"seg\",\"ph\":\"");
      out.push_back(e.phase);
      out.append("\",\"pid\":1,\"tid\":");
      std::snprintf(num, sizeof(num), "%u", buf->tid);
      out.append(num);
      std::snprintf(num, sizeof(num), ",\"ts\":%.3f", e.ts_us);
      out.append(num);
      if (e.phase == 'X') {
        std::snprintf(num, sizeof(num), ",\"dur\":%.3f", e.dur_us);
        out.append(num);
      } else if (e.phase == 'i') {
        out.append(",\"s\":\"t\"");
      } else if (e.phase == 'C') {
        std::snprintf(num, sizeof(num), ",\"args\":{\"value\":%lld}",
                      static_cast<long long>(e.value));
        out.append(num);
      }
      out.push_back('}');
    }
  }
  out.append("],\"displayTimeUnit\":\"ms\"}");
  return out;
}

bool TraceSession::write_json(const std::string& path) const {
  const std::string doc = to_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  return (std::fclose(f) == 0) && ok;
}

}  // namespace seg::obs
