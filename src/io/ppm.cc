#include "io/ppm.h"

#include <cassert>
#include <cstdio>
#include <cstring>

namespace seg {

PpmImage::PpmImage(int width, int height, Rgb fill)
    : width_(width), height_(height),
      pixels_(static_cast<std::size_t>(width) * height, fill) {
  assert(width > 0 && height > 0);
}

void PpmImage::set(int x, int y, Rgb color) {
  assert(x >= 0 && x < width_ && y >= 0 && y < height_);
  pixels_[static_cast<std::size_t>(y) * width_ + x] = color;
}

Rgb PpmImage::get(int x, int y) const {
  assert(x >= 0 && x < width_ && y >= 0 && y < height_);
  return pixels_[static_cast<std::size_t>(y) * width_ + x];
}

std::vector<std::uint8_t> PpmImage::serialize() const {
  char header[64];
  const int header_len =
      std::snprintf(header, sizeof(header), "P6\n%d %d\n255\n", width_, height_);
  std::vector<std::uint8_t> out;
  out.reserve(static_cast<std::size_t>(header_len) + pixels_.size() * 3);
  out.insert(out.end(), header, header + header_len);
  for (const Rgb& p : pixels_) {
    out.push_back(p.r);
    out.push_back(p.g);
    out.push_back(p.b);
  }
  return out;
}

bool PpmImage::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const auto bytes = serialize();
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool ok = (written == bytes.size()) && (std::fclose(f) == 0);
  if (written != bytes.size()) std::fclose(f);
  return ok;
}

Rgb fig1_color(std::int8_t spin, bool happy) {
  if (spin > 0) {
    return happy ? fig1_palette::kHappyPlus : fig1_palette::kUnhappyPlus;
  }
  return happy ? fig1_palette::kHappyMinus : fig1_palette::kUnhappyMinus;
}

}  // namespace seg
