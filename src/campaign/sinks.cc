#include "campaign/sinks.h"

#include <cinttypes>
#include <cstdio>

#include "io/csv.h"
#include "io/table.h"

namespace seg {
namespace {

// The stop_state / stop_bound columns (and every other adaptive
// rendering below) appear only when a stopping rule is active, so
// rule-none documents stay byte-identical to the fixed-replica engine's.
// The topology column follows the same pattern: torus-only campaigns
// keep the legacy column layout.
bool any_graph_point(const CampaignResult& result) {
  for (const PointResult& pr : result.points) {
    if (pr.point.topology != TopologyFamily::kTorus) return true;
  }
  return false;
}

std::vector<std::string> csv_header(const ScenarioSpec& spec,
                                    const CampaignResult& result) {
  std::vector<std::string> header = {"point",    "n",     "w",
                                     "tau",      "tau_minus", "p",
                                     "shape",    "dynamics"};
  if (any_graph_point(result)) header.push_back("topology");
  header.push_back("replicas");
  if (spec.stop.rule != StopRule::kNone) {
    header.push_back("stop_state");
    header.push_back("stop_bound");
  }
  for (const std::string& m : result.metric_names) {
    header.push_back(m + "_mean");
    header.push_back(m + "_sem");
    header.push_back(m + "_min");
    header.push_back(m + "_max");
  }
  return header;
}

}  // namespace

std::string CsvSink::render(const ScenarioSpec& spec,
                            const CampaignResult& result) {
  const bool adaptive = spec.stop.rule != StopRule::kNone;
  const bool graph = any_graph_point(result);
  CsvWriter csv(csv_header(spec, result));
  for (const PointResult& pr : result.points) {
    const ModelParams& params = pr.point.params;
    csv.new_row()
        .add(static_cast<std::int64_t>(pr.point.index))
        .add(static_cast<std::int64_t>(params.n))
        .add(static_cast<std::int64_t>(params.w))
        .add(params.tau)
        .add(params.tau_minus)
        .add(params.p)
        .add(std::string(shape_name(params.shape)))
        .add(std::string(dynamics_name(pr.point.dynamics)));
    if (graph) csv.add(std::string(topology_name(pr.point.topology)));
    const std::size_t count = pr.stats.empty() ? 0 : pr.stats[0].count();
    csv.add(static_cast<std::int64_t>(count));
    if (adaptive) {
      csv.add(std::string(point_state_name(pr.state)));
      csv.add(pr.stop_bound);
    }
    for (const RunningStats& s : pr.stats) {
      csv.add(s.mean()).add(s.sem());
      csv.add(s.count() > 0 ? s.min() : 0.0);
      csv.add(s.count() > 0 ? s.max() : 0.0);
    }
  }
  return csv.str();
}

bool CsvSink::write(const ScenarioSpec& spec, const CampaignResult& result) {
  const std::string doc = render(spec, result);
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  if (!f) return false;
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  return (std::fclose(f) == 0) && ok;
}

void ManifestSink::set_info(const std::string& key, const std::string& value) {
  info_.emplace_back(key, value);
}

void ManifestSink::set_telemetry(
    std::vector<std::pair<std::string, std::string>> telemetry) {
  telemetry_ = std::move(telemetry);
}

bool ManifestSink::write(const ScenarioSpec& spec,
                         const CampaignResult& result) {
  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (!f) return false;
  bool ok = std::fprintf(f, "# campaign manifest\n[run]\n") > 0;
  ok = ok && std::fprintf(f, "seed = %" PRIu64 "\n", result.seed) > 0;
  ok = ok && std::fprintf(f, "spec_hash = %" PRIu64 "\n", spec.hash()) > 0;
  ok = ok && std::fprintf(f, "points = %zu\n", result.points.size()) > 0;
  ok = ok && std::fprintf(f, "replicas_done = %zu\n",
                          result.replicas_done) > 0;
  ok = ok && std::fprintf(f, "replicas_resumed = %zu\n",
                          result.replicas_resumed) > 0;
  ok = ok && std::fprintf(f, "complete = %s\n",
                          result.complete ? "true" : "false") > 0;
  if (spec.stop.rule != StopRule::kNone) {
    std::size_t stopped = 0, capped = 0, open = 0, used = 0;
    for (const PointResult& pr : result.points) {
      used += pr.replicas_used;
      if (pr.state == PointState::kStopped) ++stopped;
      else if (pr.state == PointState::kCapped) ++capped;
      else if (pr.state == PointState::kOpen) ++open;
    }
    ok = ok && std::fprintf(f, "stop_rule = %s\n",
                            stop_rule_name(spec.stop.rule)) > 0;
    ok = ok && std::fprintf(f, "points_stopped = %zu\n", stopped) > 0;
    ok = ok && std::fprintf(f, "points_capped = %zu\n", capped) > 0;
    ok = ok && std::fprintf(f, "points_open = %zu\n", open) > 0;
    ok = ok && std::fprintf(f, "replicas_folded = %zu\n", used) > 0;
    ok = ok && std::fprintf(f, "decision_trace = %016" PRIx64 "\n",
                            decision_trace_hash(result.decision_trace)) > 0;
  }
  for (const auto& [key, value] : info_) {
    ok = ok && std::fprintf(f, "%s = %s\n", key.c_str(), value.c_str()) > 0;
  }
  if (!telemetry_.empty()) {
    ok = ok && std::fprintf(f, "\n[telemetry]\n") > 0;
    for (const auto& [key, value] : telemetry_) {
      ok = ok && std::fprintf(f, "%s = %s\n", key.c_str(), value.c_str()) > 0;
    }
  }
  ok = ok && std::fprintf(f, "\n[spec]\n%s", spec.to_text().c_str()) > 0;
  return (std::fclose(f) == 0) && ok;
}

bool ConsoleSink::write(const ScenarioSpec& spec,
                        const CampaignResult& result) {
  const bool adaptive = spec.stop.rule != StopRule::kNone;
  if (adaptive) {
    std::printf("campaign '%s': %zu points, adaptive (%s), %zu done%s\n",
                spec.name.c_str(), result.points.size(),
                stop_rule_name(spec.stop.rule), result.replicas_done,
                result.complete ? "" : " (INCOMPLETE)");
  } else {
    std::printf("campaign '%s': %zu points x %zu replicas, %zu done%s\n",
                spec.name.c_str(), result.points.size(), spec.replicas,
                result.replicas_done,
                result.complete ? "" : " (INCOMPLETE)");
  }
  const bool graph = any_graph_point(result);
  std::vector<std::string> header = {"n", "w", "tau", "p", "dyn"};
  if (graph) header.push_back("topology");
  if (adaptive) {
    header.push_back("reps");
    header.push_back("state");
  }
  for (const std::string& m : result.metric_names) {
    header.push_back(m);
    header.push_back("+/-95%");
  }
  TablePrinter table(header);
  for (const PointResult& pr : result.points) {
    const ModelParams& params = pr.point.params;
    table.new_row()
        .add(static_cast<std::int64_t>(params.n))
        .add(static_cast<std::int64_t>(params.w))
        .add(params.tau, 3)
        .add(params.p, 3)
        .add(std::string(dynamics_name(pr.point.dynamics)));
    if (graph) table.add(std::string(topology_name(pr.point.topology)));
    if (adaptive) {
      table.add(static_cast<std::int64_t>(pr.replicas_used))
          .add(std::string(point_state_name(pr.state)));
    }
    for (const RunningStats& s : pr.stats) {
      table.add(s.mean(), 4).add(s.ci95_half_width(), 4);
    }
  }
  table.print();
  return true;
}

bool write_all(const ScenarioSpec& spec, const CampaignResult& result,
               const std::vector<ResultSink*>& sinks) {
  bool ok = true;
  for (ResultSink* sink : sinks) {
    if (sink) ok = sink->write(spec, result) && ok;
  }
  return ok;
}

}  // namespace seg
