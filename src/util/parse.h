// Checked numeric parsing for every user-facing token (scenario specs,
// CLI flags, edge lists). The raw strtol/strtoll calls these replace had
// two silent failure modes: trailing garbage ("10x" parsed as 10) and
// out-of-range values (errno/ERANGE never inspected, so overflow wrapped
// or saturated quietly). Every helper here consumes the WHOLE token,
// checks ERANGE, and on failure writes a message naming the offending
// token into *error.
#pragma once

#include <cstdint>
#include <string>

namespace seg {

// Signed 64-bit. Rejects empty tokens, trailing garbage, and overflow.
bool parse_i64_checked(const std::string& token, std::int64_t* out,
                       std::string* error = nullptr);

// Unsigned 64-bit. Also rejects leading '-': strtoull happily wraps
// "-1" to 2^64-1, which is never what a replica count meant.
bool parse_u64_checked(const std::string& token, std::uint64_t* out,
                       std::string* error = nullptr);

// int-ranged convenience over parse_i64_checked.
bool parse_int_checked(const std::string& token, int* out,
                       std::string* error = nullptr);

// Finite double. Rejects trailing garbage and ERANGE overflow to
// +/-HUGE_VAL (subnormal underflow is accepted as the rounded value).
bool parse_double_checked(const std::string& token, double* out,
                          std::string* error = nullptr);

}  // namespace seg
