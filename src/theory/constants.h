// The paper's critical intolerance constants and the triggering threshold
// f(tau).
//
//  tau_1 ~= 0.433 : root of (3/4)[1 - H(4 tau/3)] - [1 - H(tau)] = 0 (eq. 1)
//  tau_2  = 0.34375: root of 1024 tau^2 - 384 tau + 11 = 0          (eq. 3)
//  f(tau)          : infimum of epsilon' that makes a radical region
//                    expandable (eq. 10, plotted in Fig. 6)
#pragma once

namespace seg {

// Numerically solved tau_1 (cached after the first call; thread-safe).
double tau1();

// Closed-form tau_2 = (384 - 320) / 2048 ... the relevant root 11/32.
double tau2();

// Width of the monochromatic interval (tau_1, 1/2) u (1/2, 1 - tau_1),
// i.e. 2 * (1/2 - tau_1) ~= 0.134 (Fig. 2, grey region).
double mono_interval_width();

// Width of the full interval (tau_2, 1 - tau_2) \ {1/2} ~= 0.312
// (Fig. 2, grey + black region).
double full_interval_width();

// Eq. (10). Requires tau in (tau_2, 1/2): below tau_2 the discriminant
// goes negative (no triggering configuration exists). For tau in
// (1/2, 1 - tau_2) the symmetric value f(1 - tau) is returned.
double f_tau(double tau);

// The left-hand side of eq. (1); exposed for tests.
double tau1_equation(double tau);

// The quadratic of eq. (3); exposed for tests.
double tau2_equation(double tau);

}  // namespace seg
