#include "io/table.h"

#include <algorithm>
#include <cstdio>

namespace seg {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

TablePrinter& TablePrinter::new_row() {
  rows_.emplace_back();
  return *this;
}

TablePrinter& TablePrinter::add(const std::string& value) {
  if (rows_.empty()) rows_.emplace_back();
  rows_.back().push_back(value);
  return *this;
}

TablePrinter& TablePrinter::add(double value, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return add(std::string(buf));
}

TablePrinter& TablePrinter::add(std::int64_t value) {
  return add(std::to_string(value));
}

std::string TablePrinter::str() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      line += cell;
      if (c + 1 < widths.size()) {
        line.append(widths[c] - cell.size() + 2, ' ');
      }
    }
    line += '\n';
    return line;
  };
  std::string out = render_row(header_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(rule, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::print() const { std::fputs(str().c_str(), stdout); }

}  // namespace seg
