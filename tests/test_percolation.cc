#include "percolation/chemical.h"
#include "percolation/clusters.h"
#include "percolation/field.h"
#include "percolation/fpp.h"

#include <cmath>

#include <gtest/gtest.h>

namespace seg {
namespace {

TEST(SiteFieldTest, OpenFractionTracksP) {
  Rng rng(1);
  const SiteField f(200, 0.7, rng);
  EXPECT_NEAR(f.open_fraction(), 0.7, 0.02);
}

TEST(SiteFieldTest, OutOfBoundsIsClosed) {
  Rng rng(2);
  const SiteField f(10, 1.0, rng);
  EXPECT_FALSE(f.open(-1, 0));
  EXPECT_FALSE(f.open(0, 10));
  EXPECT_TRUE(f.open(0, 0));
}

TEST(SiteFieldTest, ExplicitConstruction) {
  std::vector<std::uint8_t> open{1, 0, 0, 1};
  const SiteField f(2, open);
  EXPECT_TRUE(f.open(0, 0));
  EXPECT_FALSE(f.open(1, 0));
  EXPECT_TRUE(f.open(1, 1));
}

TEST(PercClustersTest, FullyOpenIsOneCluster) {
  Rng rng(3);
  const SiteField f(16, 1.0, rng);
  const auto clusters = percolation_clusters(f);
  EXPECT_EQ(clusters.size.size(), 1u);
  EXPECT_EQ(clusters.largest, 256);
}

TEST(PercClustersTest, FullyClosedHasNoClusters) {
  Rng rng(4);
  const SiteField f(8, 0.0, rng);
  const auto clusters = percolation_clusters(f);
  EXPECT_TRUE(clusters.size.empty());
  EXPECT_EQ(clusters.largest, 0);
}

TEST(PercClustersTest, DiagonalSitesAreSeparateClusters) {
  // 4-connectivity: diagonal neighbors do not join.
  std::vector<std::uint8_t> open{1, 0, 0, 1};
  const SiteField f(2, open);
  const auto clusters = percolation_clusters(f);
  EXPECT_EQ(clusters.size.size(), 2u);
}

TEST(PercClustersTest, LabelsConsistentWithOpenness) {
  Rng rng(5);
  const SiteField f(32, 0.6, rng);
  const auto clusters = percolation_clusters(f);
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      EXPECT_EQ(clusters.label[f.index(x, y)] >= 0, f.open(x, y));
    }
  }
}

TEST(ClusterRadius, ClosedSiteReturnsMinusOne) {
  std::vector<std::uint8_t> open{0, 1, 1, 1};
  const SiteField f(2, open);
  EXPECT_EQ(cluster_l1_radius(f, 0, 0), -1);
}

TEST(ClusterRadius, LineClusterRadius) {
  // A horizontal line of 5 open sites; radius from the left end is 4.
  const int L = 7;
  std::vector<std::uint8_t> open(L * L, 0);
  for (int x = 1; x <= 5; ++x) open[3 * L + x] = 1;
  const SiteField f(L, open);
  EXPECT_EQ(cluster_l1_radius(f, 1, 3), 4);
  EXPECT_EQ(cluster_l1_radius(f, 3, 3), 2);
}

TEST(ClusterRadius, SubcriticalRadiiAreSmall) {
  // p well below p_c: radii have exponential tails (Grimmett Thm. 5.4).
  Rng rng(6);
  int large = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    const SiteField f(41, 0.35, rng);
    const int r = cluster_l1_radius(f, 20, 20);
    if (r > 15) ++large;
  }
  EXPECT_LT(large, trials / 20);  // < 5% reach radius 15
}

TEST(Spanning, FullyOpenSpans) {
  Rng rng(7);
  const SiteField f(12, 1.0, rng);
  EXPECT_TRUE(spans_horizontally(f));
}

TEST(Spanning, ClosedColumnBlocksSpanning) {
  const int L = 8;
  std::vector<std::uint8_t> open(L * L, 1);
  for (int y = 0; y < L; ++y) open[y * L + 4] = 0;
  const SiteField f(L, open);
  EXPECT_FALSE(spans_horizontally(f));
}

TEST(Spanning, SupercriticalUsuallySpans) {
  Rng rng(8);
  int spans = 0;
  for (int t = 0; t < 20; ++t) {
    const SiteField f(64, 0.75, rng);
    spans += spans_horizontally(f);
  }
  EXPECT_GE(spans, 18);
}

TEST(LargestClusterFraction, ApproachesThetaAboveCriticality) {
  Rng rng(9);
  const SiteField f(128, 0.8, rng);
  EXPECT_GT(largest_cluster_fraction(f), 0.9);
  const SiteField g(128, 0.3, rng);
  EXPECT_LT(largest_cluster_fraction(g), 0.1);
}

TEST(Chemical, DistanceOnFullyOpenEqualsL1) {
  Rng rng(10);
  const SiteField f(20, 1.0, rng);
  EXPECT_EQ(chemical_distance(f, 0, 0, 7, 5), 12);
  EXPECT_EQ(chemical_distance(f, 3, 3, 3, 3), 0);
}

TEST(Chemical, UnreachableIsMinusOne) {
  const int L = 5;
  std::vector<std::uint8_t> open(L * L, 1);
  for (int y = 0; y < L; ++y) open[y * L + 2] = 0;  // separating column
  const SiteField f(L, open);
  EXPECT_EQ(chemical_distance(f, 0, 0, 4, 0), -1);
}

TEST(Chemical, DetourMeasured) {
  // Open "U" shape forces a detour longer than l1.
  const int L = 5;
  std::vector<std::uint8_t> open(L * L, 0);
  // Path: down the left, across the bottom, up the right.
  for (int y = 0; y < L; ++y) {
    open[y * L + 0] = 1;
    open[y * L + 4] = 1;
  }
  for (int x = 0; x < L; ++x) open[4 * L + x] = 1;
  const SiteField f(L, open);
  EXPECT_EQ(chemical_distance(f, 0, 0, 4, 0), 12);  // l1 distance is 4
}

TEST(Chemical, StretchNearOneAtHighP) {
  Rng rng(11);
  double sum = 0;
  int count = 0;
  for (int t = 0; t < 30; ++t) {
    const SiteField f(96, 0.95, rng);
    const auto s = chemical_stretch(f, 8, 48, 88, 48);
    if (s.connected) {
      sum += s.stretch;
      ++count;
    }
  }
  ASSERT_GT(count, 15);  // endpoints may be closed at p = 0.95
  EXPECT_LT(sum / count, 1.10);  // Garet-Marchand: stretch -> ~1 as p -> 1
  EXPECT_GE(sum / count, 1.0);
}

TEST(Chemical, DistancesVectorMatchesPointQuery) {
  Rng rng(12);
  const SiteField f(24, 0.7, rng);
  const auto dist = chemical_distances(f, 5, 5);
  EXPECT_EQ(dist[f.index(20, 20)], chemical_distance(f, 5, 5, 20, 20));
}

TEST(Fpp, ZeroWeightsGiveZeroTimes) {
  FppField f(8, std::vector<double>(64, 0.0));
  const auto t = f.passage_times(0, 0);
  for (const double v : t) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Fpp, UnitWeightsGiveL1Distance) {
  FppField f(10, std::vector<double>(100, 1.0));
  const auto t = f.passage_times(0, 0);
  EXPECT_DOUBLE_EQ(t[0], 0.0);  // source excluded
  EXPECT_DOUBLE_EQ(t[5], 5.0);
  EXPECT_DOUBLE_EQ(t[9 * 10 + 9], 18.0);
}

TEST(Fpp, AvoidsExpensiveSites) {
  // A cheap detour around one expensive site must be taken.
  const int L = 3;
  std::vector<double> w(L * L, 1.0);
  w[1] = 100.0;  // (1, 0)
  FppField f(L, w);
  // 0,0 -> 2,0: direct path costs 101; detour via row 1 costs 4.
  EXPECT_DOUBLE_EQ(f.axis_passage_time(0, 0, 2), 4.0);
}

TEST(Fpp, PassageTimesSatisfyTriangleLikeConsistency) {
  Rng rng(13);
  const FppField f(32, 1.0, rng);
  const auto from_origin = f.passage_times(0, 0);
  // Every site's time is bounded by neighbor time + own weight (Dijkstra
  // fixed point).
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      if (x + 1 < 32) {
        EXPECT_LE(from_origin[y * 32 + x + 1],
                  from_origin[y * 32 + x] + f.weight(x + 1, y) + 1e-12);
      }
    }
  }
}

TEST(Fpp, MeanRateScalesWithRate) {
  // Weights Exp(rate): passage times scale like 1/rate.
  Rng rng1(14), rng2(14);
  const FppField slow(48, 1.0, rng1);
  const FppField fast(48, 10.0, rng2);
  const double t_slow = slow.axis_passage_time(0, 24, 40);
  const double t_fast = fast.axis_passage_time(0, 24, 40);
  EXPECT_NEAR(t_fast, t_slow / 10.0, 1e-9);  // identical draws, scaled
}

TEST(Fpp, TimeConstantEmpiricallyStable) {
  // T_k / k concentrates (Kesten): sample twice, expect close values.
  Rng rng(15);
  const int L = 128, k = 100;
  const FppField f1(L, 1.0, rng);
  const FppField f2(L, 1.0, rng);
  const double r1 = f1.axis_passage_time(10, 64, k) / k;
  const double r2 = f2.axis_passage_time(10, 64, k) / k;
  EXPECT_NEAR(r1, r2, 0.15);
}

}  // namespace
}  // namespace seg
