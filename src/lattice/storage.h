// Storage-backend selection for BinarySpinEngine.
//
// Two backends share one engine: `kByte` keeps the PR 2 layout (one
// int8 spin per site, int32 window counts) and is the bitwise reference
// implementation; `kPacked` stores one *bit* per site (lattice/bitfield.h)
// with int16 window counts, cutting the hot working set ~5x and letting
// the span kernels vectorize twice as wide. Both backends run the exact
// same update sequence — same count values, same touch order, same
// AgentSet mutation history — so trajectories are bitwise identical and
// the differential suite can drive either one against the frozen golden
// hashes in a single binary.
//
// `kDefault` resolves at compile time: packed unless the build sets
// SEG_BYTE_STORAGE_DEFAULT (CMake -DSEG_PACKED_DEFAULT=OFF), so the whole
// existing test battery exercises whichever backend the build defaults
// to, and explicit kByte/kPacked pin a backend regardless of the build.
#pragma once

#include <cstdint>

namespace seg {

enum class EngineStorage : std::uint8_t { kDefault = 0, kByte = 1, kPacked = 2 };

inline EngineStorage resolve_storage(EngineStorage storage) {
  if (storage != EngineStorage::kDefault) return storage;
#if defined(SEG_BYTE_STORAGE_DEFAULT)
  return EngineStorage::kByte;
#else
  return EngineStorage::kPacked;
#endif
}

inline const char* storage_name(EngineStorage storage) {
  switch (storage) {
    case EngineStorage::kByte:
      return "byte";
    case EngineStorage::kPacked:
      return "packed";
    default:
      return "default";
  }
}

}  // namespace seg
