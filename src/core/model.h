// The Schelling model state: spins, incrementally-maintained neighbor
// counts, and the happy / unhappy / flippable classification of every
// agent (paper Sec. II-A). A thin policy over lattice::BinarySpinEngine —
// this file defines only the thresholds and the membership code; storage,
// window iteration, and threshold-crossing set maintenance live in
// src/lattice/.
//
// Invariants maintained after construction and after every flip():
//  * plus_count(i) == number of +1 spins in the l-infinity ball of radius
//    w around i (self included);
//  * the unhappy and flippable index sets contain exactly the agents for
//    which is_unhappy() / is_flippable() hold.
//
// "Flippable" means unhappy AND the flip would make the agent happy — the
// paper's Glauber rule. For tau < 1/2 every unhappy agent is flippable
// (first observation in Sec. II-A); for tau > 1/2 the flippable agents are
// exactly the paper's "super-unhappy" agents (Sec. IV-C).
#pragma once

#include <cstdint>
#include <vector>

#include "core/params.h"
#include "grid/point.h"
#include "lattice/agent_set.h"
#include "lattice/engine.h"
#include "lattice/sharded.h"
#include "rng/rng.h"

namespace seg {

class SchellingModel {
 public:
  // Engine set indices.
  static constexpr int kUnhappySet = 0;
  static constexpr int kFlippableSet = 1;

  // Random Bernoulli(p) initial configuration.
  SchellingModel(const ModelParams& params, Rng& rng);

  // Explicit initial configuration; spins must be +1/-1, size n*n.
  SchellingModel(const ModelParams& params, std::vector<std::int8_t> spins);

  // Sharded variants for the parallel sweep engine
  // (core/parallel_dynamics.h): the unhappy/flippable sets are split per
  // shard of `layout`. Serial dynamics must not drive a sharded model —
  // the no-arg set accessors below only see shard 0.
  SchellingModel(const ModelParams& params, Rng& rng, ShardLayout layout);
  SchellingModel(const ModelParams& params, std::vector<std::int8_t> spins,
                 ShardLayout layout);

  // Graph-topology variants: agents live on `graph`'s nodes, happiness
  // thresholds are per-node K_v = ceil(tau * N_v) over the node's own
  // neighborhood size, and `partition` (graph/partition.h) plays the
  // ShardLayout role for the parallel sweep engine. `params.n`/`params.w`
  // keep their torus meaning only for builders that derive the graph from
  // them; the engine itself reads nothing but tau/tau_minus.
  SchellingModel(const ModelParams& params,
                 std::shared_ptr<const GraphTopology> graph, Rng& rng,
                 GraphPartition partition = GraphPartition());
  SchellingModel(const ModelParams& params,
                 std::shared_ptr<const GraphTopology> graph,
                 std::vector<std::int8_t> spins,
                 GraphPartition partition = GraphPartition());

  const ModelParams& params() const { return params_; }
  int side() const { return params_.n; }
  int horizon() const { return params_.w; }
  // Torus-mode stencil size; graph-mode callers need the per-node
  // neighborhood_size_of() below (degrees vary across the graph).
  int neighborhood_size() const { return N_; }
  // Threshold for +1 agents (equal to the -1 threshold in the symmetric
  // model); use happy_threshold_of() in the asymmetric variant. Both are
  // torus-mode values — graph mode thresholds are per node.
  int happy_threshold() const { return k_plus_; }
  int happy_threshold_of(std::int8_t type) const {
    return type > 0 ? k_plus_ : k_minus_;
  }
  std::size_t agent_count() const { return engine_.size(); }

  bool graph_mode() const { return engine_.graph_mode(); }
  // Null in torus mode.
  const GraphTopology* graph() const { return engine_.graph(); }
  // Neighborhood size of agent id, self included: N in torus mode, the
  // node's CSR row length in graph mode.
  int neighborhood_size_of(std::uint32_t id) const {
    return engine_.neighborhood_size(id);
  }
  // Happiness threshold of agent id if it were of `type`:
  // ceil(tau_type * N_id). Equals happy_threshold_of(type) in torus mode.
  int happy_threshold_at(std::uint32_t id, std::int8_t type) const {
    if (!graph_mode()) return happy_threshold_of(type);
    return happiness_threshold(params_.tau_of(type),
                               neighborhood_size_of(id));
  }
  // Can a flip at id write another shard's storage? Unified over stripe
  // layouts and graph partitions — the parallel sweep engine's routing
  // question.
  bool shard_boundary(std::uint32_t id) const {
    return engine_.shard_boundary(id);
  }

  std::int8_t spin(std::uint32_t id) const { return engine_.spin(id); }
  std::int8_t spin_at(int x, int y) const;
  // Snapshot of the spin field, one byte per site. Returns BY VALUE: the
  // packed storage backend has no byte array to reference, so the old
  // by-reference accessor is gone — hot loops should iterate spin(id) or
  // hoist one snapshot instead of calling this per element.
  std::vector<std::int8_t> spins() const { return engine_.spins_snapshot(); }
  std::vector<std::int8_t> spins_snapshot() const {
    return engine_.spins_snapshot();
  }
  // One-bit-per-site copy of the field (cheap under packed storage);
  // feeds the popcount scanners (PackedHaloField, packed_window_count).
  BitField packed_spins() const { return engine_.packed_spins(); }
  EngineStorage storage() const { return engine_.storage(); }

  std::uint32_t id_of(int x, int y) const;
  Point point_of(std::uint32_t id) const;

  // Count of +1 spins in the neighborhood of agent id (self included).
  std::int32_t plus_count(std::uint32_t id) const {
    return engine_.plus_count(id);
  }
  // Count of agents sharing id's type in its neighborhood (self included).
  std::int32_t same_count(std::uint32_t id) const;

  bool is_happy(std::uint32_t id) const {
    return same_count(id) >= happy_threshold_at(id, spin(id));
  }
  bool is_unhappy(std::uint32_t id) const { return !is_happy(id); }
  // Would flipping make the agent happy? (N - same + 1 >= K after flip.)
  bool flip_makes_happy(std::uint32_t id) const;
  bool is_flippable(std::uint32_t id) const {
    return is_unhappy(id) && flip_makes_happy(id);
  }

  const AgentSet& unhappy_set() const { return engine_.set(kUnhappySet); }
  const AgentSet& flippable_set() const {
    return engine_.set(kFlippableSet);
  }

  // Sharding interface. shard_count() is 1 for serially-constructed
  // models, in which case unhappy_set(0)/flippable_set(0) are the
  // classic global sets.
  int shard_count() const { return engine_.shard_count(); }
  const ShardLayout& shard_layout() const { return engine_.layout(); }
  const AgentSet& unhappy_set(int shard) const {
    return engine_.set(kUnhappySet, shard);
  }
  const AgentSet& flippable_set(int shard) const {
    return engine_.set(kFlippableSet, shard);
  }
  // Shard-routed membership probes (exact at any shard count).
  bool in_unhappy_set(std::uint32_t id) const {
    return engine_.in_set(kUnhappySet, id);
  }
  bool in_flippable_set(std::uint32_t id) const {
    return engine_.in_set(kFlippableSet, id);
  }
  std::size_t count_flippable() const {
    return engine_.set_size(kFlippableSet);
  }
  // O(1) classification read off the engine's membership code byte (no
  // window rescan, no shard-routed set probe). The synchronous sweep's
  // row-wise batch builder scans this over ascending ids so the
  // accept/reject test is one byte test per site.
  bool flippable_cached(std::uint32_t id) const {
    return ((engine_.code(id) >> kFlippableSet) & 1u) != 0;
  }

  // Flips the spin of `id` and restores all invariants in one window
  // pass; set updates fire only on threshold crossings.
  // Unconditional: dynamics engines only call it on flippable agents, but
  // the firewall/adversarial experiments may force arbitrary flips.
  void flip(std::uint32_t id) { engine_.flip(id); }

  // Streaming-measurement hook: the observer fires after every flip (see
  // the FlipObserver contract in lattice/engine.h). Serial dynamics only;
  // sharded sweeps must use ParallelOptions::streaming instead.
  void set_flip_observer(FlipObserver* observer) {
    engine_.set_observer(observer);
  }
  FlipObserver* flip_observer() const { return engine_.observer(); }

  // Paper's termination certificate: the process has stopped when no
  // unhappy agent can become happy by flipping. Aggregates across shards.
  bool terminated() const { return count_flippable() == 0; }

  // Lyapunov function of Sec. II-A ("Termination"): sum over all agents of
  // their same-type neighbor count. Strictly increases with every flip of
  // a flippable agent. O(n^2) to evaluate.
  std::int64_t lyapunov() const;

  std::size_t count_unhappy() const {
    return engine_.set_size(kUnhappySet);
  }
  // Fraction of agents currently happy.
  double happy_fraction() const;
  // Fraction of +1 agents.
  double plus_fraction() const;

  // Full O(n^2 (recount)) invariant audit used by tests and debug builds.
  bool check_invariants() const;

  // The neighborhood's offset stencil (includes (0,0)); size == N.
  const std::vector<Point>& offsets() const { return engine_.offsets(); }

 private:
  static BinarySpinEngine make_engine(const ModelParams& params,
                                      std::vector<std::int8_t> spins,
                                      ShardLayout layout);
  static BinarySpinEngine make_graph_engine(
      const ModelParams& params, std::shared_ptr<const GraphTopology> graph,
      std::vector<std::int8_t> spins, GraphPartition partition);

  ModelParams params_;
  int N_;        // neighborhood size
  int k_plus_;   // happiness threshold for +1 agents
  int k_minus_;  // happiness threshold for -1 agents
  BinarySpinEngine engine_;
};

// Offset stencil for a shape/horizon pair, (0,0) included.
std::vector<Point> neighborhood_offsets(NeighborhoodShape shape, int w);

// Draws a +1/-1 spin field of side n with P(+1) = p.
std::vector<std::int8_t> random_spins(int n, double p, Rng& rng);

// Draws `count` +1/-1 spins with P(+1) = p — the graph-node analogue of
// random_spins (identical draw sequence, so a torus-built graph with
// count = n*n sees the same initial field as the native model).
std::vector<std::int8_t> random_spins_count(std::size_t count, double p,
                                            Rng& rng);

}  // namespace seg
