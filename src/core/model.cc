#include "core/model.h"

#include <cassert>

#include "grid/box_sum.h"
#include "grid/torus_grid.h"

namespace seg {

void AgentSet::insert(std::uint32_t id) {
  assert(id < pos_.size());
  if (pos_[id] != kAbsent) return;
  pos_[id] = static_cast<std::uint32_t>(items_.size());
  items_.push_back(id);
}

void AgentSet::erase(std::uint32_t id) {
  assert(id < pos_.size());
  const std::uint32_t p = pos_[id];
  if (p == kAbsent) return;
  const std::uint32_t last = items_.back();
  items_[p] = last;
  pos_[last] = p;
  items_.pop_back();
  pos_[id] = kAbsent;
}

std::uint32_t AgentSet::sample(Rng& rng) const {
  assert(!items_.empty());
  return items_[rng.uniform_below(items_.size())];
}

std::vector<Point> neighborhood_offsets(NeighborhoodShape shape, int w) {
  std::vector<Point> offsets;
  for (int dy = -w; dy <= w; ++dy) {
    for (int dx = -w; dx <= w; ++dx) {
      if (shape == NeighborhoodShape::kVonNeumann &&
          std::abs(dx) + std::abs(dy) > w) {
        continue;
      }
      offsets.push_back(Point{dx, dy});
    }
  }
  return offsets;
}

std::vector<std::int8_t> random_spins(int n, double p, Rng& rng) {
  std::vector<std::int8_t> spins(static_cast<std::size_t>(n) * n);
  for (auto& s : spins) s = rng.bernoulli(p) ? 1 : -1;
  return spins;
}

SchellingModel::SchellingModel(const ModelParams& params, Rng& rng)
    : SchellingModel(params, random_spins(params.n, params.p, rng)) {}

SchellingModel::SchellingModel(const ModelParams& params,
                               std::vector<std::int8_t> spins)
    : params_(params),
      N_(params.neighborhood_size()),
      k_plus_(params.happy_threshold_of(+1)),
      k_minus_(params.happy_threshold_of(-1)),
      offsets_(neighborhood_offsets(params.shape, params.w)),
      spins_(std::move(spins)),
      plus_count_(spins_.size(), 0),
      unhappy_(spins_.size()),
      flippable_(spins_.size()) {
  assert(params_.valid());
  assert(spins_.size() ==
         static_cast<std::size_t>(params_.n) * params_.n);
  init_counts_and_sets();
}

void SchellingModel::init_counts_and_sets() {
  // 0/1 indicator of +1 spins.
  std::vector<std::int32_t> plus_indicator(spins_.size());
  for (std::size_t i = 0; i < spins_.size(); ++i) {
    assert(spins_[i] == 1 || spins_[i] == -1);
    plus_indicator[i] = spins_[i] > 0 ? 1 : 0;
  }
  if (params_.shape == NeighborhoodShape::kMoore) {
    // Fast path: separable sliding-window box sum, O(n^2).
    plus_count_ = box_sum_torus(plus_indicator, params_.n, params_.w);
  } else {
    // Generic stencil: one cache-friendly shifted-add pass per offset,
    // O(n^2 N) at construction only.
    const int n = params_.n;
    std::fill(plus_count_.begin(), plus_count_.end(), 0);
    for (const Point o : offsets_) {
      for (int y = 0; y < n; ++y) {
        const std::size_t src_row =
            static_cast<std::size_t>(torus_wrap(y + o.y, n)) * n;
        std::int32_t* dst =
            plus_count_.data() + static_cast<std::size_t>(y) * n;
        for (int x = 0; x < n; ++x) {
          dst[x] += plus_indicator[src_row + torus_wrap(x + o.x, n)];
        }
      }
    }
  }
  for (std::uint32_t id = 0; id < spins_.size(); ++id) {
    refresh_membership(id);
  }
}

std::int8_t SchellingModel::spin_at(int x, int y) const {
  return spins_[static_cast<std::size_t>(torus_wrap(y, params_.n)) *
                    params_.n +
                torus_wrap(x, params_.n)];
}

std::uint32_t SchellingModel::id_of(int x, int y) const {
  return static_cast<std::uint32_t>(
      static_cast<std::size_t>(torus_wrap(y, params_.n)) * params_.n +
      torus_wrap(x, params_.n));
}

Point SchellingModel::point_of(std::uint32_t id) const {
  return Point{static_cast<int>(id % params_.n),
               static_cast<int>(id / params_.n)};
}

std::int32_t SchellingModel::same_count(std::uint32_t id) const {
  return spins_[id] > 0 ? plus_count_[id] : N_ - plus_count_[id];
}

bool SchellingModel::flip_makes_happy(std::uint32_t id) const {
  // After the flip the agent's same-type count becomes
  // (opposite-type count before) + 1 = N - same_count + 1, and the
  // relevant threshold is the one of its *new* type.
  return N_ - same_count(id) + 1 >=
         happy_threshold_of(static_cast<std::int8_t>(-spins_[id]));
}

void SchellingModel::refresh_membership(std::uint32_t id) {
  if (is_happy(id)) {
    unhappy_.erase(id);
    flippable_.erase(id);
    return;
  }
  unhappy_.insert(id);
  if (flip_makes_happy(id)) {
    flippable_.insert(id);
  } else {
    flippable_.erase(id);
  }
}

void SchellingModel::flip(std::uint32_t id) {
  const std::int8_t old_spin = spins_[id];
  spins_[id] = static_cast<std::int8_t>(-old_spin);
  const std::int32_t delta = old_spin > 0 ? -1 : +1;

  const int n = params_.n;
  const int cx = static_cast<int>(id % n);
  const int cy = static_cast<int>(id / n);

  // Both stencils are symmetric, so exactly the agents whose neighborhood
  // contains `id` are the stencil translates of `id`: their +1 count
  // shifts by delta and their classification may change.
  for (const Point o : offsets_) {
    const std::uint32_t j = static_cast<std::uint32_t>(
        static_cast<std::size_t>(torus_wrap(cy + o.y, n)) * n +
        torus_wrap(cx + o.x, n));
    plus_count_[j] += delta;
    refresh_membership(j);
  }
}

std::int64_t SchellingModel::lyapunov() const {
  std::int64_t sum = 0;
  for (std::uint32_t id = 0; id < spins_.size(); ++id) {
    sum += same_count(id);
  }
  return sum;
}

double SchellingModel::happy_fraction() const {
  return 1.0 - static_cast<double>(unhappy_.size()) /
                   static_cast<double>(spins_.size());
}

double SchellingModel::plus_fraction() const {
  std::size_t plus = 0;
  for (const auto s : spins_) plus += (s > 0);
  return static_cast<double>(plus) / static_cast<double>(spins_.size());
}

bool SchellingModel::check_invariants() const {
  const int n = params_.n;
  for (std::uint32_t id = 0; id < spins_.size(); ++id) {
    if (spins_[id] != 1 && spins_[id] != -1) return false;
    // Recount the neighborhood from scratch.
    std::int32_t plus = 0;
    const int cx = static_cast<int>(id % n);
    const int cy = static_cast<int>(id / n);
    for (const Point o : offsets_) {
      plus += spin_at(cx + o.x, cy + o.y) > 0 ? 1 : 0;
    }
    if (plus != plus_count_[id]) return false;
    if (unhappy_.contains(id) != is_unhappy(id)) return false;
    if (flippable_.contains(id) != is_flippable(id)) return false;
  }
  return true;
}

}  // namespace seg
