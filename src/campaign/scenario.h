// Declarative scenario specifications for the campaign engine.
//
// A ScenarioSpec is a parameter grid over the model axes — grid side n,
// horizon w, intolerance tau (and the asymmetric tau_minus of Barmpalias
// et al.), initial density p, neighborhood shape, dynamics variant —
// crossed with a replica count. The cartesian product of the axes defines
// the scenario points; every point is run `replicas` times with
// independent RNG streams derived from the single campaign seed.
//
// Specs have a canonical key=value text form (one key per line, list
// values comma-separated) used both as an on-disk format for the
// campaign_runner CLI and as the identity hashed into checkpoints so a
// resume against a different spec is refused.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/stopping.h"
#include "core/params.h"

namespace seg {

// Which dynamics engine drives each replica to absorption.
enum class DynamicsKind { kGlauber, kDiscrete, kSynchronous };

const char* dynamics_name(DynamicsKind kind);
bool parse_dynamics(const std::string& name, DynamicsKind* out);

const char* shape_name(NeighborhoodShape shape);
bool parse_shape(const std::string& name, NeighborhoodShape* out);

// Which topology the replicas run on. kTorus is the native span engine
// (the default, bitwise the legacy trajectories); the rest construct a
// GraphTopology (graph/topology.h) per replica and run the same dynamics
// through the engine's graph mode with per-node thresholds.
enum class TopologyFamily {
  kTorus,          // native n x n torus, span/popcount fast path
  kLollipop,       // clique of graph_clique nodes + path of graph_path
  kRandomRegular,  // graph_nodes nodes, degree graph_degree, seeded
  kSmallWorld,     // torus stencil rewired with prob. graph_beta, seeded
  kEdgeList,       // imported from graph_file (u v per line)
};

const char* topology_name(TopologyFamily family);
bool parse_topology(const std::string& name, TopologyFamily* out);

struct ScenarioSpec {
  std::string name = "campaign";

  // Grid axes. The expanded points are the cartesian product, nested in
  // declaration order (n outermost, dynamics innermost).
  std::vector<int> n = {64};
  std::vector<int> w = {2};
  std::vector<double> tau = {0.45};
  std::vector<double> tau_minus = {-1.0};  // < 0 means symmetric
  std::vector<double> p = {0.5};
  std::vector<NeighborhoodShape> shape = {NeighborhoodShape::kMoore};
  std::vector<DynamicsKind> dynamics = {DynamicsKind::kGlauber};

  // Topology axis (outermost loop of the expansion). The default —
  // torus only — keeps every key below out of the canonical text, so
  // pre-graph specs keep their hash and their checkpoints stay
  // resumable. Non-torus families read the graph_* parameters; n/w/shape
  // retain their meaning only where noted.
  std::vector<TopologyFamily> topology = {TopologyFamily::kTorus};
  int graph_clique = 24;           // lollipop: clique size (>= 2)
  int graph_path = 40;             // lollipop: path length (>= 1)
  int graph_degree = 8;            // random_regular: node degree
  double graph_beta = 0.1;         // small_world: rewiring probability
  std::uint64_t graph_seed = 1;    // builder seed (rewiring / matching)
  std::size_t graph_nodes = 0;     // random_regular node count; 0 = n*n
  std::string graph_file;          // edge_list: path to "u v" lines

  // Replicas per scenario point. With a stopping rule this is the
  // default per-point cap (see `stop`); without one it is the exact
  // count every point runs.
  std::size_t replicas = 3;

  // Sequential stopping (campaign/stopping.h). stop.rule == kNone — the
  // default — keeps the fixed-replica engine, and none of the stop_*
  // keys enter the canonical text then, so pre-adaptive specs keep their
  // hash and their checkpoints stay resumable. With a rule set, every
  // point runs at least stop.min_replicas and at most layout_replicas()
  // replicas, stopping the moment the rule's anytime-valid bound reaches
  // the target half-width; spec keys: stop_rule, stop_delta, stop_alpha,
  // min_replicas, max_replicas, stop_metric, stop_range, stop_threshold.
  StopConfig stop;

  // Lattice shards per replica (stripe decomposition,
  // core/parallel_dynamics.h). 1 = the serial engines, bitwise the
  // legacy trajectories; > 1 runs Glauber replicas through the sharded
  // sweep engine (other dynamics kinds ignore it). Part of the spec —
  // and the checkpoint hash — because the k-shard process is a distinct
  // deterministic trajectory per k.
  std::size_t shards = 1;

  // Per-replica run controls.
  std::uint64_t max_flips = 0;         // 0 = run to absorption
  std::uint64_t sync_max_rounds = 4096;  // synchronous dynamics round cap
  std::size_t region_samples = 16;     // sampled agents for E[M] estimators
  double almost_eps = 0.1;             // epsilon for almost-mono regions

  // Flip interval between magnetization time-autocorrelation samples
  // when streaming metrics are active; 0 = auto (n^2 / 64). Only enters
  // the canonical text (and checkpoint hash) when nonzero.
  std::uint64_t streaming_sample_every = 0;

  // Names resolved against the metric registry (campaign/metrics.h).
  // The pseudo-metric "streaming" expands to the full streaming
  // observable group (expand_metric_names); any "streaming_*" metric
  // attaches a StreamingObservables engine to the replica's dynamics, and
  // the cluster-derived built-ins (largest_cluster, cluster_count,
  // mean_cluster_size, interface_length) are then served from it in O(1)
  // instead of by an O(n^2) rescan.
  std::vector<std::string> metrics = {"flips", "fixation", "majority",
                                      "mean_mono_region"};

  std::size_t grid_size() const;
  std::size_t total_replicas() const { return grid_size() * replicas; }

  // Per-point replica count of the campaign's global index layout: the
  // fixed count without a stopping rule, the per-point cap with one.
  // Replica seeds derive from point * layout_replicas() + r, so this is
  // part of the checkpoint identity.
  std::size_t layout_replicas() const {
    if (stop.rule == StopRule::kNone || stop.max_replicas == 0) {
      return replicas;
    }
    return stop.max_replicas;
  }

  // Every axis non-empty, every point's ModelParams valid, every metric
  // known to the registry.
  bool valid(std::string* error = nullptr) const;

  // Canonical text form; parse(to_text()) reproduces the spec exactly.
  std::string to_text() const;
  static bool parse(const std::string& text, ScenarioSpec* out,
                    std::string* error = nullptr);

  // FNV-1a over the canonical text; checkpoint identity.
  std::uint64_t hash() const;
};

// One cell of the expanded grid.
struct ScenarioPoint {
  std::size_t index = 0;  // position in the expanded grid
  ModelParams params;
  DynamicsKind dynamics = DynamicsKind::kGlauber;
  TopologyFamily topology = TopologyFamily::kTorus;
};

// Cartesian product of the spec's axes in declaration order.
std::vector<ScenarioPoint> expand_grid(const ScenarioSpec& spec);

}  // namespace seg
