#include "rng/rng.h"

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "rng/splitmix64.h"

namespace seg {
namespace {

TEST(SplitMix, DeterministicSequence) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(MixSeed, SensitiveToBothArguments) {
  EXPECT_NE(mix_seed(1, 0), mix_seed(1, 1));
  EXPECT_NE(mix_seed(1, 0), mix_seed(2, 0));
}

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, UniformBitGeneratorInterface) {
  EXPECT_EQ(Xoshiro256::min(), 0u);
  EXPECT_EQ(Xoshiro256::max(), ~0ULL);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / trials, 0.5, 0.01);
}

TEST(RngTest, UniformBelowRespectsBound) {
  Rng rng(5);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 100ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.uniform_below(bound), bound);
    }
  }
}

TEST(RngTest, UniformBelowOneIsAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_below(1), 0u);
}

TEST(RngTest, UniformBelowCoversAllResidues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_below(6));
  EXPECT_EQ(seen.size(), 6u);
}

TEST(RngTest, UniformBelowApproximatelyUniform) {
  Rng rng(13);
  std::vector<int> counts(8, 0);
  const int trials = 80000;
  for (int i = 0; i < trials; ++i) ++counts[rng.uniform_below(8)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.125, 0.01);
  }
}

TEST(RngTest, UniformIntClosedRange) {
  Rng rng(17);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(29);
  double sum = 0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / trials, 0.25, 0.005);
}

TEST(RngTest, ExponentialAlwaysNonNegative) {
  Rng rng(31);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.exponential(1.0), 0.0);
  }
}

TEST(RngTest, StreamsAreIndependentAndReproducible) {
  Rng a = Rng::stream(100, 0);
  Rng b = Rng::stream(100, 1);
  Rng a2 = Rng::stream(100, 0);
  EXPECT_NE(a.next_u64(), b.next_u64());
  Rng a3 = Rng::stream(100, 0);
  EXPECT_EQ(a2.next_u64(), a3.next_u64());
}

TEST(RngTest, AdjacentStreamsDecorrelated) {
  // Crude cross-correlation check between stream i and i+1.
  Rng a = Rng::stream(7, 10);
  Rng b = Rng::stream(7, 11);
  double corr = 0;
  const int trials = 10000;
  for (int i = 0; i < trials; ++i) {
    corr += (a.uniform() - 0.5) * (b.uniform() - 0.5);
  }
  EXPECT_NEAR(corr / trials, 0.0, 0.005);
}

}  // namespace
}  // namespace seg
