// Time-series recording of a running process: happiness, unhappy counts,
// type balance and interface length sampled every k flips. Plugs into
// RunOptions::on_snapshot and serializes to CSV — this is what produces
// the trajectory data behind Figure 1's panel progression.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/dynamics.h"

namespace seg {

struct TraceRow {
  std::uint64_t flips = 0;
  double time = 0.0;
  double happy_fraction = 0.0;
  std::uint64_t unhappy = 0;
  double plus_fraction = 0.0;
  std::int64_t interface_length = 0;
};

class TraceRecorder {
 public:
  // record_interface: the interface length costs an O(n^2) pass per
  // sample; disable for hot sweeps.
  explicit TraceRecorder(bool record_interface = true)
      : record_interface_(record_interface) {}

  // Captures the model's current statistics as a row.
  void sample(const SchellingModel& model, std::uint64_t flips, double time);

  // Adapter for RunOptions::on_snapshot.
  std::function<void(const SchellingModel&, std::uint64_t, double)>
  callback();

  const std::vector<TraceRow>& rows() const { return rows_; }
  bool empty() const { return rows_.empty(); }
  const TraceRow& back() const { return rows_.back(); }

  // CSV document with a header; one line per sample.
  std::string to_csv() const;

 private:
  bool record_interface_;
  std::vector<TraceRow> rows_;
};

}  // namespace seg
