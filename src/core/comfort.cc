#include "core/comfort.h"

#include <cassert>

#include "grid/torus_grid.h"

namespace seg {

BinarySpinEngine ComfortModel::make_engine(const ComfortParams& params,
                                           std::vector<std::int8_t> spins) {
  assert(params.valid());
  const int N = params.neighborhood_size();
  const int k_lo = params.k_lo();
  const int k_hi = params.k_hi();
  // Single set: flippable == unhappy AND the flip lands inside the band.
  MembershipTable table(N, [&](bool plus, int count) -> std::uint8_t {
    const int same = plus ? count : N - count;
    const bool happy = same >= k_lo && same <= k_hi;
    if (happy) return 0;
    const int after = N - same + 1;
    return (after >= k_lo && after <= k_hi) ? (1u << kFlippableSet) : 0;
  });
  return BinarySpinEngine(params.n, params.w, /*dense_window=*/true,
                          neighborhood_offsets(NeighborhoodShape::kMoore,
                                               params.w),
                          std::move(spins), std::move(table),
                          /*set_count=*/1, ShardLayout(), params.storage);
}

BinarySpinEngine ComfortModel::make_graph_engine(
    const ComfortParams& params, std::shared_ptr<const GraphTopology> graph,
    std::vector<std::int8_t> spins) {
  const double tau_lo = params.tau_lo;
  const double tau_hi = params.tau_hi;
  const GraphCodeFn code_of = [tau_lo, tau_hi](int N, bool plus,
                                               int count) -> std::uint8_t {
    const int k_lo = ComfortParams::k_lo_of(tau_lo, N);
    const int k_hi = ComfortParams::k_hi_of(tau_hi, N);
    const int same = plus ? count : N - count;
    const bool happy = same >= k_lo && same <= k_hi;
    if (happy) return 0;
    const int after = N - same + 1;
    return (after >= k_lo && after <= k_hi) ? (1u << kFlippableSet) : 0;
  };
  return BinarySpinEngine(std::move(graph), std::move(spins), code_of,
                          /*set_count=*/1);
}

ComfortModel::ComfortModel(const ComfortParams& params, Rng& rng)
    : ComfortModel(params, random_spins(params.n, params.p, rng)) {}

ComfortModel::ComfortModel(const ComfortParams& params,
                           std::vector<std::int8_t> spins)
    : params_(params),
      N_(params.neighborhood_size()),
      k_lo_(params.k_lo()),
      k_hi_(params.k_hi()),
      engine_(make_engine(params, std::move(spins))) {}

ComfortModel::ComfortModel(const ComfortParams& params,
                           std::shared_ptr<const GraphTopology> graph,
                           std::vector<std::int8_t> spins)
    : params_(params),
      N_(params.neighborhood_size()),
      k_lo_(params.k_lo()),
      k_hi_(params.k_hi()),
      engine_(make_graph_engine(params, std::move(graph),
                                std::move(spins))) {}

std::int8_t ComfortModel::spin_at(int x, int y) const {
  return engine_.spin(engine_.geometry().id_of(x, y));
}

std::uint32_t ComfortModel::id_of(int x, int y) const {
  return engine_.geometry().id_of(x, y);
}

std::int32_t ComfortModel::same_count(std::uint32_t id) const {
  return spin(id) > 0
             ? engine_.plus_count(id)
             : engine_.neighborhood_size(id) - engine_.plus_count(id);
}

bool ComfortModel::is_happy(std::uint32_t id) const {
  const std::int32_t s = same_count(id);
  if (!graph_mode()) return s >= k_lo_ && s <= k_hi_;
  const int N = neighborhood_size_of(id);
  return s >= ComfortParams::k_lo_of(params_.tau_lo, N) &&
         s <= ComfortParams::k_hi_of(params_.tau_hi, N);
}

bool ComfortModel::flip_makes_happy(std::uint32_t id) const {
  const int N = graph_mode() ? neighborhood_size_of(id) : N_;
  const std::int32_t after = N - same_count(id) + 1;
  if (!graph_mode()) return after >= k_lo_ && after <= k_hi_;
  return after >= ComfortParams::k_lo_of(params_.tau_lo, N) &&
         after <= ComfortParams::k_hi_of(params_.tau_hi, N);
}

std::size_t ComfortModel::count_unhappy() const {
  std::size_t unhappy = 0;
  for (std::uint32_t id = 0; id < agent_count(); ++id) {
    unhappy += !is_happy(id);
  }
  return unhappy;
}

double ComfortModel::happy_fraction() const {
  return 1.0 - static_cast<double>(count_unhappy()) /
                   static_cast<double>(agent_count());
}

bool ComfortModel::check_invariants() const {
  if (!engine_.check_invariants()) return false;
  for (std::uint32_t id = 0; id < agent_count(); ++id) {
    if (flippable_set().contains(id) != is_flippable(id)) return false;
  }
  return true;
}

ComfortRunResult run_comfort(ComfortModel& model, Rng& rng,
                             std::uint64_t max_flips) {
  ComfortRunResult result;
  while (!model.quiescent() && result.flips < max_flips) {
    result.final_time +=
        rng.exponential(static_cast<double>(model.flippable_set().size()));
    const std::uint32_t id = model.flippable_set().sample(rng);
    model.flip(id);
    ++result.flips;
  }
  result.quiescent = model.quiescent();
  return result;
}

}  // namespace seg
