// Structured end-of-campaign run reports.
//
// build_report() folds a finished CampaignResult together with the
// telemetry registry into a RunReport: campaign outcome (points by
// state, replicas done/resumed, completeness), per-phase latency
// quantiles from the SEG_TIMED histograms (p50/p95/p99 microseconds,
// bucket-interpolated), per-worker utilization from the pool busy
// counters, the adaptive-stopping decision-trace summary, and
// checkpoint counts. render_json() emits it as report.json;
// render_markdown() as a human-readable summary table. write_report()
// dispatches on the extension: ".md"/".markdown" renders markdown,
// anything else JSON.
//
// The report reads only the registry's aggregated snapshot and the
// result struct — building one touches no RNG stream and cannot
// perturb a trajectory.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/campaign.h"

namespace seg::obs {

struct PhaseLatency {
  std::string name;      // registry histogram name, e.g. "phase.sweep_us"
  std::uint64_t count = 0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
};

struct WorkerUtilization {
  std::string name;          // registry counter name
  std::uint64_t busy_us = 0;
  double utilization = 0.0;  // busy_us / wall_time_us, clamped to [0,1]
};

struct RunReport {
  // Campaign outcome.
  std::uint64_t seed = 0;
  std::size_t points = 0;
  std::size_t points_fixed = 0;
  std::size_t points_stopped = 0;
  std::size_t points_capped = 0;
  std::size_t points_open = 0;
  std::size_t replicas_done = 0;
  std::size_t replicas_resumed = 0;
  bool complete = false;
  bool checkpoint_write_failed = false;

  // Telemetry-derived sections.
  double wall_time_s = 0.0;  // campaign wall time, supplied by the caller
  std::uint64_t flips = 0;
  std::uint64_t checkpoints_written = 0;
  std::vector<PhaseLatency> phases;       // SEG_TIMED histograms, sorted
  std::vector<WorkerUtilization> workers; // pool busy counters, sorted

  // Adaptive-stopping decision-trace summary.
  std::size_t decisions = 0;
  std::uint64_t decision_trace_hash = 0;
  std::size_t min_stop_replicas = 0;
  std::size_t max_stop_replicas = 0;
  double mean_stop_replicas = 0.0;
};

// Folds `result` + the current registry contents. `wall_time_s` is the
// campaign wall time (used for worker-utilization denominators).
RunReport build_report(const CampaignResult& result, double wall_time_s);

std::string render_json(const RunReport& report);
std::string render_markdown(const RunReport& report);

// Writes the render chosen by `path`'s extension (".md"/".markdown" →
// markdown, else JSON). False on I/O failure.
bool write_report(const RunReport& report, const std::string& path);

}  // namespace seg::obs
