// 1D — the one-dimensional baselines the paper's background builds on
// (Sec. I-B): on a ring, Brandt et al. [23] show polynomial (in the
// neighborhood size) run lengths at tau = 1/2, and Barmpalias et al. [24]
// show a static phase for tau below ~0.35 and exponential run lengths for
// 0.35 < tau < 1/2 (Glauber, symmetric about 1/2).
//
// We run the ring Glauber dynamics across (tau, w) and fit the growth of
// the mean run length in the window size 2w+1: near-linear log2(length) in
// w indicates the exponential phase; a flat, small length indicates the
// static phase; tau = 1/2 grows only polynomially.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core1d/ring_kawasaki.h"
#include "core1d/ring_model.h"
#include "io/table.h"
#include "util/args.h"
#include "util/stats.h"

namespace {

double mean_run_length(int ring, int w, double tau, std::size_t trials,
                       std::uint64_t seed) {
  seg::RunningStats stats;
  for (std::size_t t = 0; t < trials; ++t) {
    seg::RingParams params{.n = ring, .w = w, .tau = tau, .p = 0.5};
    seg::Rng init = seg::Rng::stream(seed + t, 0);
    seg::RingModel model(params, init);
    seg::Rng dyn = seg::Rng::stream(seed + t, 1);
    model.run_glauber(dyn);
    stats.add(model.mean_run_length());
  }
  return stats.mean();
}

}  // namespace

int main(int argc, char** argv) {
  const seg::ArgParser args(argc, argv);
  const int ring = static_cast<int>(args.get_int("ring", 1 << 14));
  const auto trials = static_cast<std::size_t>(args.get_int("trials", 3));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 13));
  const std::vector<int> ws{2, 4, 6, 8, 10, 12};

  std::printf("== 1-D ring baseline: mean run length vs w (ring = %d, %zu "
              "trials) ==\n\n",
              ring, trials);

  seg::TablePrinter table({"tau", "w=2", "w=4", "w=6", "w=8", "w=10",
                           "w=12", "log2-fit slope", "regime"});
  for (const double tau : {0.30, 0.40, 0.45, 0.50}) {
    std::vector<double> xs, logs;
    table.new_row().add(tau, 2);
    for (const int w : ws) {
      const double len =
          mean_run_length(ring, w, tau, trials, seed + 1000 * w);
      table.add(len, 1);
      xs.push_back(w);
      logs.push_back(std::log2(len));
    }
    const seg::LinearFit fit = seg::fit_line(xs, logs);
    table.add(fit.slope, 3);
    const char* regime = tau < 0.35   ? "static (expected flat)"
                         : tau < 0.5  ? "exponential (expected growth)"
                                      : "tau=1/2 (expected poly)";
    table.add(regime);
  }
  table.print();

  std::printf("\nexpected ordering of the log2-fit slopes: "
              "tau=0.30 < tau=0.50 < tau in (0.35, 0.5).\n");
  std::printf("(the paper's 2-D theorems generalize exactly this "
              "transition structure.)\n\n");

  // Kawasaki (closed) vs Glauber (open) at tau = 1/2 — Brandt et al.'s
  // setting. Kawasaki conserves the type counts and produces the
  // polynomial run lengths of [23].
  std::printf("== Kawasaki vs Glauber at tau = 1/2 (ring = %d) ==\n\n",
              ring / 4);
  seg::TablePrinter duel({"w", "glauber mean run", "kawasaki mean run"});
  for (const int w : {2, 4, 8}) {
    seg::RunningStats glauber_len, kawasaki_len;
    for (std::size_t t = 0; t < trials; ++t) {
      seg::RingParams params{.n = ring / 4, .w = w, .tau = 0.5, .p = 0.5};
      seg::Rng init = seg::Rng::stream(seed + 5000 + t, w);
      seg::RingModel g(params, init);
      seg::RingModel k(params, g.spins());
      seg::Rng dg = seg::Rng::stream(seed + 6000 + t, w);
      g.run_glauber(dg);
      glauber_len.add(g.mean_run_length());
      seg::Rng dk = seg::Rng::stream(seed + 7000 + t, w);
      seg::RingKawasakiOptions opt;
      opt.max_swaps = 200000;
      seg::run_ring_kawasaki(k, dk, opt);
      kawasaki_len.add(k.mean_run_length());
    }
    duel.new_row()
        .add(static_cast<std::int64_t>(w))
        .add(glauber_len.mean(), 1)
        .add(kawasaki_len.mean(), 1);
  }
  duel.print();
  std::printf("expected: both grow with w; Kawasaki (closed system, "
              "poly-in-w theory) stays at or below open-system Glauber.\n");
  return 0;
}
