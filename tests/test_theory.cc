#include "theory/constants.h"
#include "theory/entropy.h"
#include "theory/exponents.h"
#include "theory/roots.h"

#include <cmath>

#include <gtest/gtest.h>

namespace seg {
namespace {

TEST(Entropy, BoundaryValues) {
  EXPECT_DOUBLE_EQ(binary_entropy(0.0), 0.0);
  EXPECT_DOUBLE_EQ(binary_entropy(1.0), 0.0);
}

TEST(Entropy, MaximumAtHalf) {
  EXPECT_DOUBLE_EQ(binary_entropy(0.5), 1.0);
  EXPECT_LT(binary_entropy(0.3), 1.0);
  EXPECT_LT(binary_entropy(0.7), 1.0);
}

TEST(Entropy, Symmetry) {
  for (const double x : {0.1, 0.25, 0.42, 0.49}) {
    EXPECT_NEAR(binary_entropy(x), binary_entropy(1.0 - x), 1e-14);
  }
}

TEST(Entropy, KnownValue) {
  // H(1/4) = 2 - (3/4) log2 3 ~ 0.811278.
  EXPECT_NEAR(binary_entropy(0.25), 0.8112781244591328, 1e-12);
}

TEST(Entropy, DerivativeMatchesFiniteDifference) {
  for (const double x : {0.2, 0.35, 0.5, 0.65}) {
    const double h = 1e-6;
    const double fd =
        (binary_entropy(x + h) - binary_entropy(x - h)) / (2.0 * h);
    EXPECT_NEAR(binary_entropy_derivative(x), fd, 1e-6);
  }
}

TEST(Bisect, FindsSimpleRoot) {
  const RootResult r = bisect([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, std::sqrt(2.0), 1e-10);
}

TEST(Bisect, ExactEndpointRoot) {
  const RootResult r = bisect([](double x) { return x; }, 0.0, 1.0);
  EXPECT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(r.x, 0.0);
}

TEST(Bisect, DecreasingFunction) {
  const RootResult r = bisect([](double x) { return 1.0 - x; }, 0.0, 3.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 1.0, 1e-10);
}

TEST(Constants, Tau1MatchesPaper) {
  // Paper: tau_1 ~= 0.433.
  EXPECT_NEAR(tau1(), 0.433, 5e-4);
  // And it must solve eq. (1).
  EXPECT_NEAR(tau1_equation(tau1()), 0.0, 1e-10);
}

TEST(Constants, Tau2IsElevenThirtySeconds) {
  EXPECT_DOUBLE_EQ(tau2(), 0.34375);
  EXPECT_NEAR(tau2_equation(tau2()), 0.0, 1e-9);
}

TEST(Constants, Tau2OtherRootIsRejected) {
  // The quadratic's other root 1/32 also solves eq. (3) but is not the
  // segregation threshold.
  EXPECT_NEAR(tau2_equation(1.0 / 32.0), 0.0, 1e-9);
  EXPECT_GT(tau2(), 1.0 / 32.0);
}

TEST(Constants, IntervalWidthsMatchAbstract) {
  // ~0.134 for monochromatic, ~0.312 for almost monochromatic.
  EXPECT_NEAR(mono_interval_width(), 0.134, 2e-3);
  EXPECT_NEAR(full_interval_width(), 0.3125, 1e-9);
}

TEST(Constants, OrderingTau2LessThanTau1LessThanHalf) {
  EXPECT_LT(tau2(), tau1());
  EXPECT_LT(tau1(), 0.5);
}

TEST(FTau, VanishesAtHalf) {
  // As tau -> 1/2 the discriminant and the linear term vanish.
  EXPECT_NEAR(f_tau(0.4999), 0.0, 2e-2);
}

TEST(FTau, PositiveAndBelowHalfOnInterval) {
  for (double tau = 0.345; tau < 0.499; tau += 0.01) {
    const double f = f_tau(tau);
    EXPECT_GT(f, 0.0) << tau;
    EXPECT_LT(f, 0.5) << tau;  // paper: f(tau) < 1/2 on (tau_2, 1/2)
  }
}

TEST(FTau, DecreasingInTau) {
  // More tolerant agents need a larger trigger region (Fig. 6).
  double prev = f_tau(0.35);
  for (double tau = 0.36; tau < 0.5; tau += 0.01) {
    const double cur = f_tau(tau);
    EXPECT_LT(cur, prev) << tau;
    prev = cur;
  }
}

TEST(FTau, SymmetricAboutHalf) {
  EXPECT_NEAR(f_tau(0.45), f_tau(0.55), 1e-12);
  EXPECT_NEAR(f_tau(0.36), f_tau(0.64), 1e-12);
}

TEST(Exponents, TauPrimeApproachesTau) {
  EXPECT_NEAR(tau_prime(0.45, 100000), 0.45, 1e-4);
  EXPECT_LT(tau_prime(0.45, 25), 0.45);
}

TEST(Exponents, TauHatDeflatesTau) {
  // tau^ = tau - N^{-(1/2-eps)}: at N = 441, eps = 0.25 the deflation is
  // 441^{-1/4} ~ 0.218.
  const double th = tau_hat(0.45, 441, 0.25);
  EXPECT_LT(th, 0.45);
  EXPECT_NEAR(th, 0.45 - std::pow(441.0, -0.25), 1e-12);
  // A milder eps deflates less.
  EXPECT_GT(tau_hat(0.45, 441, 0.05), th);
}

TEST(Exponents, LowerBelowUpper) {
  for (double tau = 0.35; tau < 0.499; tau += 0.01) {
    EXPECT_LT(a_exponent_envelope(tau), b_exponent_envelope(tau)) << tau;
  }
}

TEST(Exponents, PositiveOnInterval) {
  for (double tau = 0.345; tau < 0.499; tau += 0.01) {
    EXPECT_GT(a_exponent_envelope(tau), 0.0) << tau;
    EXPECT_GT(b_exponent_envelope(tau), 0.0) << tau;
  }
}

TEST(Exponents, DecreasingTowardHalf) {
  // Fig. 3 / Theorem statement: a and b decrease as tau -> 1/2 from below
  // (farther from one half means larger regions).
  double prev_a = a_exponent_envelope(0.36);
  double prev_b = b_exponent_envelope(0.36);
  for (double tau = 0.37; tau < 0.5; tau += 0.01) {
    const double a = a_exponent_envelope(tau);
    const double b = b_exponent_envelope(tau);
    EXPECT_LT(a, prev_a) << tau;
    EXPECT_LT(b, prev_b) << tau;
    prev_a = a;
    prev_b = b;
  }
}

TEST(Exponents, SymmetricAboutHalf) {
  EXPECT_NEAR(a_exponent_envelope(0.45), a_exponent_envelope(0.55), 1e-12);
  EXPECT_NEAR(b_exponent_envelope(0.44), b_exponent_envelope(0.56), 1e-12);
}

TEST(Exponents, VanishAtHalf) {
  EXPECT_NEAR(a_exponent_envelope(0.4999), 0.0, 1e-3);
  EXPECT_NEAR(b_exponent_envelope(0.4999), 0.0, 1e-3);
}

TEST(Exponents, ExplicitEpsilonMonotonicity) {
  // Larger eps' shrinks the lower bound and grows the upper bound.
  EXPECT_GT(a_exponent(0.45, 0.1), a_exponent(0.45, 0.3));
  EXPECT_LT(b_exponent(0.45, 0.1), b_exponent(0.45, 0.3));
}

}  // namespace
}  // namespace seg
