#include "analysis/correlation.h"

#include <cassert>
#include <cmath>

#include "grid/point.h"

namespace seg {

std::vector<double> pair_correlation(const std::vector<std::int8_t>& spins,
                                     int n, int max_r) {
  assert(spins.size() == static_cast<std::size_t>(n) * n);
  assert(max_r >= 0 && max_r < n / 2);

  double mean = 0.0;
  for (const std::int8_t s : spins) mean += s;
  mean /= static_cast<double>(spins.size());

  // Directions at l-infinity distance r: two axes and two diagonals.
  static constexpr int kDx[4] = {1, 0, 1, 1};
  static constexpr int kDy[4] = {0, 1, 1, -1};

  std::vector<double> c(static_cast<std::size_t>(max_r) + 1, 0.0);
  for (int r = 0; r <= max_r; ++r) {
    double acc = 0.0;
    for (int y = 0; y < n; ++y) {
      for (int x = 0; x < n; ++x) {
        const double s0 =
            spins[static_cast<std::size_t>(y) * n + x];
        for (int d = 0; d < 4; ++d) {
          const int nx = torus_wrap(x + kDx[d] * r, n);
          const int ny = torus_wrap(y + kDy[d] * r, n);
          acc += s0 * spins[static_cast<std::size_t>(ny) * n + nx];
        }
      }
    }
    c[r] = acc / (4.0 * static_cast<double>(spins.size())) - mean * mean;
  }
  return c;
}

std::vector<double> autocovariance(const std::vector<double>& series,
                                   std::size_t max_lag) {
  const std::size_t t_count = series.size();
  std::vector<double> out(max_lag + 1, 0.0);
  if (t_count == 0) return out;
  double total = 0.0;
  for (const double v : series) total += v;
  const double mean = total / static_cast<double>(t_count);
  for (std::size_t l = 0; l <= max_lag; ++l) {
    if (l >= t_count) continue;
    // Closed form: sum (x_t - m)(x_{t-l} - m) = sum x_t x_{t-l}
    //   - m * (head + tail) + (T - l) m^2, with head/tail the lagged and
    // leading partial sums. The expression (and operation order) matches
    // StreamingObservables::autocovariance so integer-valued series
    // agree bitwise.
    double prod = 0.0;
    for (std::size_t t = l; t < t_count; ++t) {
      prod += series[t] * series[t - l];
    }
    double head_excl = 0.0;
    for (std::size_t t = 0; t < l; ++t) head_excl += series[t];
    double tail_excl = 0.0;
    for (std::size_t t = t_count - l; t < t_count; ++t) {
      tail_excl += series[t];
    }
    const double head = total - head_excl;
    const double tail = total - tail_excl;
    const double tl = static_cast<double>(t_count - l);
    out[l] = (prod - mean * (head + tail) + tl * mean * mean) / tl;
  }
  return out;
}

double correlation_length(const std::vector<double>& c) {
  assert(!c.empty());
  const double target = c[0] / std::exp(1.0);
  if (c[0] <= 0.0) return 0.0;
  for (std::size_t r = 1; r < c.size(); ++r) {
    if (c[r] <= target) {
      // Linear interpolation between r-1 and r.
      const double hi = c[r - 1];
      const double lo = c[r];
      if (hi == lo) return static_cast<double>(r);
      const double frac = (hi - target) / (hi - lo);
      return static_cast<double>(r - 1) + frac;
    }
  }
  return static_cast<double>(c.size() - 1);
}

}  // namespace seg
