// Tests for the q-type (Potts-like) generalization.
#include <algorithm>

#include <gtest/gtest.h>

#include "core/model.h"
#include "multitype/multi_model.h"

namespace seg {
namespace {

TEST(MultiParams, Validation) {
  MultiParams good{.n = 16, .w = 2, .q = 3, .tau = 0.4};
  EXPECT_TRUE(good.valid());
  MultiParams bad_q{.n = 16, .w = 2, .q = 1, .tau = 0.4};
  EXPECT_FALSE(bad_q.valid());
  MultiParams bad_w{.n = 3, .w = 2, .q = 3, .tau = 0.4};
  EXPECT_FALSE(bad_w.valid());
}

TEST(Multi, UniformFieldIsHappyAndQuiescent) {
  MultiParams p{.n = 12, .w = 2, .q = 3, .tau = 0.4};
  MultiTypeModel m(p, std::vector<std::uint8_t>(144, 2));
  EXPECT_DOUBLE_EQ(m.happy_fraction(), 1.0);
  EXPECT_TRUE(m.quiescent());
  EXPECT_EQ(largest_type_cluster(m), 144);
}

TEST(Multi, CountsMatchBruteForce) {
  MultiParams p{.n = 12, .w = 2, .q = 4, .tau = 0.3};
  Rng rng(1);
  MultiTypeModel m(p, rng);
  EXPECT_TRUE(m.check_invariants());
}

TEST(Multi, TypeFractionsSumToOne) {
  MultiParams p{.n = 24, .w = 2, .q = 5, .tau = 0.3};
  Rng rng(2);
  MultiTypeModel m(p, rng);
  const auto fractions = m.type_fractions();
  ASSERT_EQ(fractions.size(), 5u);
  double sum = 0;
  for (const double f : fractions) {
    sum += f;
    EXPECT_NEAR(f, 0.2, 0.08);  // uniform initial distribution
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Multi, SetTypeUpdatesCountsIncrementally) {
  MultiParams p{.n = 12, .w = 1, .q = 3, .tau = 0.3};
  Rng rng(3);
  MultiTypeModel m(p, rng);
  const std::uint32_t id = m.id_of(5, 5);
  const std::uint8_t old_type = m.type_of(id);
  const auto new_type = static_cast<std::uint8_t>((old_type + 1) % 3);
  const std::int32_t before_new = m.type_count_at(id, new_type);
  m.set_type(id, new_type);
  EXPECT_EQ(m.type_of(id), new_type);
  EXPECT_EQ(m.type_count_at(id, new_type), before_new + 1);
  EXPECT_TRUE(m.check_invariants());
}

TEST(Multi, SetSameTypeIsNoOp) {
  MultiParams p{.n = 12, .w = 1, .q = 3, .tau = 0.3};
  Rng rng(4);
  MultiTypeModel m(p, rng);
  const auto before = m.types();
  m.set_type(m.id_of(3, 3), m.type_of(m.id_of(3, 3)));
  EXPECT_EQ(m.types(), before);
}

TEST(Multi, FeasibleTypesRespectThreshold) {
  // Field of type 0 with one type-1 agent: the stray is unhappy; its only
  // feasible switch is to type 0 (type 2 has count 0 + 1 < K).
  MultiParams p{.n = 12, .w = 1, .q = 3, .tau = 0.4};  // K = 4
  std::vector<std::uint8_t> types(144, 0);
  types[5 * 12 + 5] = 1;
  MultiTypeModel m(p, types);
  const std::uint32_t id = m.id_of(5, 5);
  ASSERT_FALSE(m.is_happy(id));
  const auto feasible = m.feasible_types(id);
  ASSERT_EQ(feasible.size(), 1u);
  EXPECT_EQ(feasible[0], 0);
  EXPECT_TRUE(m.is_flippable(id));
}

TEST(Multi, RunReducesUnhappiness) {
  MultiParams p{.n = 32, .w = 2, .q = 3, .tau = 0.4};
  Rng init(5);
  MultiTypeModel m(p, init);
  const double before = m.happy_fraction();
  Rng dyn(6);
  const MultiRunResult r = run_multi(m, dyn, 1u << 20);
  EXPECT_GT(m.happy_fraction(), before);
  EXPECT_TRUE(m.check_invariants());
  if (r.quiescent) {
    // Quiescent means no flippable agent; with q >= 3 some unhappy agents
    // may remain (no feasible switch).
    for (std::uint32_t id = 0; id < m.agent_count(); ++id) {
      EXPECT_FALSE(m.is_flippable(id));
    }
  }
}

TEST(Multi, SegregationGrowsLargestCluster) {
  MultiParams p{.n = 32, .w = 2, .q = 3, .tau = 0.4};
  Rng init(7);
  MultiTypeModel m(p, init);
  const std::int64_t before = largest_type_cluster(m);
  Rng dyn(8);
  run_multi(m, dyn, 1u << 20);
  EXPECT_GT(largest_type_cluster(m), before);
}

TEST(Multi, TwoTypeCaseMatchesBinaryModelHappiness) {
  const int n = 16;
  MultiParams mp{.n = n, .w = 2, .q = 2, .tau = 0.45};
  Rng rng(9);
  std::vector<std::uint8_t> types(static_cast<std::size_t>(n) * n);
  std::vector<std::int8_t> spins(types.size());
  for (std::size_t i = 0; i < types.size(); ++i) {
    types[i] = rng.bernoulli(0.5) ? 1 : 0;
    spins[i] = types[i] == 1 ? 1 : -1;
  }
  MultiTypeModel mm(mp, types);
  ModelParams sp{.n = n, .w = 2, .tau = 0.45, .p = 0.5};
  SchellingModel sm(sp, spins);
  for (std::uint32_t id = 0; id < sm.agent_count(); ++id) {
    EXPECT_EQ(mm.is_happy(id), sm.is_happy(id)) << id;
    EXPECT_EQ(mm.is_flippable(id), sm.is_flippable(id)) << id;
  }
}

TEST(Multi, MoreTypesLeaveMoreResidualUnhappiness) {
  // With many types and uniform initialization, each type holds ~1/q of a
  // neighborhood; at tau above 1/q agents are mostly unhappy and fewer
  // switches are feasible — the multi-type system retains more residual
  // unhappiness than the binary one at the same tau.
  double happy_q2 = 0, happy_q5 = 0;
  for (const int q : {2, 5}) {
    MultiParams p{.n = 32, .w = 2, .q = q, .tau = 0.45};
    Rng init(100 + q);
    MultiTypeModel m(p, init);
    Rng dyn(200 + q);
    run_multi(m, dyn, 1u << 21);
    (q == 2 ? happy_q2 : happy_q5) = m.happy_fraction();
  }
  EXPECT_GE(happy_q2, happy_q5);
}

}  // namespace
}  // namespace seg
