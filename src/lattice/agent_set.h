// An O(1) insert/erase/sample index set over agent ids, used for the
// unhappy / flippable / vacant sets of every lattice model. Sampling must
// be uniform for the dynamics to realize the Poisson-clock law.
//
// The iteration (and therefore sampling) order is a deterministic function
// of the insert/erase history: erase moves the last element into the hole.
// The engines preserve the legacy per-window mutation order exactly so
// that trajectories stay bitwise reproducible across refactors.
#pragma once

#include <cstdint>
#include <vector>

#include "rng/rng.h"

namespace seg {

class AgentSet {
 public:
  explicit AgentSet(std::size_t capacity) : pos_(capacity, kAbsent) {}

  // Windowed set over ids in [base, base + capacity): the position table
  // only spans the window, so a sharded engine whose shards own
  // contiguous id ranges (row stripes) pays O(sites) total across all
  // shard slices instead of O(sites * shards). Ids outside the window
  // must never be inserted/erased/probed.
  AgentSet(std::size_t capacity, std::uint32_t base)
      : base_(base), pos_(capacity, kAbsent) {}

  // Safe for any id: out-of-window ids are simply not members.
  bool contains(std::uint32_t id) const {
    const std::uint32_t offset = id - base_;
    return offset < pos_.size() && pos_[offset] != kAbsent;
  }
  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  // Idempotent: inserting a present id / erasing an absent id is a no-op.
  void insert(std::uint32_t id);
  void erase(std::uint32_t id);

  std::uint32_t sample(Rng& rng) const;
  std::uint32_t at(std::size_t i) const { return items_[i]; }
  const std::vector<std::uint32_t>& items() const { return items_; }

 private:
  static constexpr std::uint32_t kAbsent = 0xffffffffu;
  std::uint32_t base_ = 0;
  std::vector<std::uint32_t> items_;  // raw (un-offset) ids
  std::vector<std::uint32_t> pos_;    // indexed by id - base_
};

}  // namespace seg
