// Graph structure on the renormalized block lattice: bad-block clusters
// (Lemma 14 bounds their radius) and the r-chemical-path search behind the
// chemical firewall (Lemma 13).
//
// A chemical path centered at block c consists of (i) a cycle of good
// blocks inside the annulus {r_inner < d_linf(b, c) <= r_outer} that
// encloses c, and (ii) a path of good blocks from c to that cycle. The
// enclosing-cycle test uses Whitney duality on the annulus: a good
// 4-connected cycle around the hole exists iff the bad blocks (8-connected)
// do not cross the annulus from its inner to its outer boundary.
#pragma once

#include <cstdint>
#include <vector>

#include "renorm/blocks.h"

namespace seg {

struct ChemicalPathResult {
  bool cycle_exists = false;       // enclosing good cycle in the annulus
  bool center_connected = false;   // good path from center to the annulus
  bool found = false;              // both of the above
  // Chemical (BFS) distance in good blocks from the center block to the
  // nearest good block in the annulus; -1 when not connected.
  int path_length = -1;
};

// Searches for a chemical path around block (cx, cy) (block coordinates)
// using annulus radii (r_inner, r_outer], measured in l-infinity block
// distance on the block torus. Requires 0 < r_inner < r_outer and
// 2*r_outer + 1 <= blocks_per_side.
ChemicalPathResult find_chemical_path(const BlockGrid& blocks, int cx,
                                      int cy, int r_inner, int r_outer);

// Maximum l1 radius over all 4-connected clusters of bad blocks on the
// block torus (0 when there are no bad blocks). Lemma 14: w.h.p. no bad
// cluster has radius exceeding N^2 blocks inside an exponentially large
// neighborhood.
int max_bad_cluster_radius(const BlockGrid& blocks);

// Number of 4-connected bad clusters.
std::size_t bad_cluster_count(const BlockGrid& blocks);

}  // namespace seg
