#include "analysis/streaming.h"

#include <algorithm>
#include <cassert>

#include "grid/point.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace seg {

namespace {

// The four lattice directions of pair_correlation(): two axes, two
// diagonals. Kept bit-identical to analysis/correlation.cc.
constexpr int kCorrDx[4] = {1, 0, 1, 1};
constexpr int kCorrDy[4] = {0, 1, 1, -1};

}  // namespace

StreamingObservables::StreamingObservables(std::vector<std::int8_t> field,
                                           int n, StreamingConfig config)
    : n_(n),
      config_(config),
      field_(std::move(field)),
      // No-log mode: the streaming engine only resets (epoch rebuilds),
      // never rolls back, and gets path-halving finds in exchange.
      dsu_(0, /*logging=*/false),
      node_of_(field_.size(), 0),
      size_count_(field_.size() + 1, 0),
      visit_(field_.size(), 0) {
  assert(n_ >= 2);
  assert(field_.size() == static_cast<std::size_t>(n_) * n_);
  assert(config_.max_r >= 0 && config_.max_r < n_ / 2);

  for (const std::int8_t v : field_) {
    ++value_count_[static_cast<std::uint8_t>(v)];
    spin_sum_ += v;
  }

  // Interface via the batch right+down scan, so n == 2 double counting
  // matches cluster_stats() exactly.
  for (int y = 0; y < n_; ++y) {
    for (int x = 0; x < n_; ++x) {
      const std::size_t i = static_cast<std::size_t>(y) * n_ + x;
      const std::size_t right =
          static_cast<std::size_t>(y) * n_ + torus_wrap(x + 1, n_);
      const std::size_t down =
          static_cast<std::size_t>(torus_wrap(y + 1, n_)) * n_ + x;
      interface_ += field_[i] != field_[right];
      interface_ += field_[i] != field_[down];
    }
  }

  if (config_.max_r > 0) {
    corr_acc_.assign(static_cast<std::size_t>(config_.max_r) + 1, 0);
    for (int r = 0; r <= config_.max_r; ++r) {
      std::int64_t acc = 0;
      for (int y = 0; y < n_; ++y) {
        for (int x = 0; x < n_; ++x) {
          const std::int64_t s0 =
              field_[static_cast<std::size_t>(y) * n_ + x];
          for (int d = 0; d < 4; ++d) {
            const int nx = torus_wrap(x + kCorrDx[d] * r, n_);
            const int ny = torus_wrap(y + kCorrDy[d] * r, n_);
            acc += s0 * field_[static_cast<std::size_t>(ny) * n_ + nx];
          }
        }
      }
      corr_acc_[r] = acc;
    }
  }

  if (config_.autocorr_window > 0) {
    ring_.assign(config_.autocorr_window, 0);
    first_.assign(config_.autocorr_window, 0);
    lag_prod_.assign(config_.autocorr_window, 0);
  }

  full_rebuild();
  rebuilds_ = 0;  // the constructor's build is not a fallback
}

void StreamingObservables::hist_add(std::int64_t size) {
  assert(size >= 1 && size <= static_cast<std::int64_t>(field_.size()));
  ++size_count_[static_cast<std::size_t>(size)];
  if (size > largest_) largest_ = size;
}

void StreamingObservables::hist_remove(std::int64_t size) {
  assert(size >= 1 && size <= static_cast<std::int64_t>(field_.size()));
  const std::int32_t left = --size_count_[static_cast<std::size_t>(size)];
  assert(left >= 0);
  (void)left;
  if (size == largest_) {
    while (largest_ > 0 && size_count_[static_cast<std::size_t>(
                               largest_)] == 0) {
      --largest_;
    }
  }
}

void StreamingObservables::full_rebuild() {
  // Compaction storms show up on the trace timeline and in the
  // "streaming.compactions" counter; each rebuild is O(sites).
  SEG_TRACE_SPAN("dsu_compaction");
  SEG_TIMED("phase.dsu_compaction_us");
  SEG_COUNT("streaming.compactions", 1);
  ++rebuilds_;
  const std::size_t sites = field_.size();
  dsu_.reset(sites);
  for (std::uint32_t i = 0; i < sites; ++i) node_of_[i] = i;
  std::fill(size_count_.begin(), size_count_.end(), 0);
  largest_ = 0;
  cluster_count_ = sites;
  for (int y = 0; y < n_; ++y) {
    for (int x = 0; x < n_; ++x) {
      const auto i = static_cast<std::uint32_t>(
          static_cast<std::size_t>(y) * n_ + x);
      const auto right = static_cast<std::uint32_t>(
          static_cast<std::size_t>(y) * n_ + torus_wrap(x + 1, n_));
      const auto down = static_cast<std::uint32_t>(
          static_cast<std::size_t>(torus_wrap(y + 1, n_)) * n_ + x);
      if (field_[i] == field_[right] && dsu_.unite(i, right)) {
        --cluster_count_;
      }
      if (field_[i] == field_[down] && dsu_.unite(i, down)) {
        --cluster_count_;
      }
    }
  }
  for (std::uint32_t i = 0; i < sites; ++i) {
    if (dsu_.find(i) == i) hist_add(dsu_.size_of(i));
  }
}

void StreamingObservables::apply_set(std::uint32_t id, std::int8_t value) {
  assert(id < field_.size());
  const std::int8_t old = field_[id];
  if (old == value) return;

  // Arena compaction: one epoch rebuild once the node arena outgrows 2x
  // the site count, which bounds memory at O(sites) and amortizes the
  // rebuild over at least site_count events.
  if (dsu_.node_count() >= 2 * field_.size() + 64) full_rebuild();

  --value_count_[static_cast<std::uint8_t>(old)];
  ++value_count_[static_cast<std::uint8_t>(value)];
  spin_sum_ += value - old;

  std::uint32_t adj[4];
  neighbors4(id, adj);
  for (int dir = 0; dir < 4; ++dir) {
    const std::int8_t nb = field_[adj[dir]];
    interface_ += static_cast<int>(value != nb) - static_cast<int>(old != nb);
  }

  if (config_.max_r > 0) {
    const std::int64_t dv = static_cast<std::int64_t>(value) - old;
    corr_acc_[0] += 4 * (static_cast<std::int64_t>(value) * value -
                         static_cast<std::int64_t>(old) * old);
    const int x = static_cast<int>(id % static_cast<std::uint32_t>(n_));
    const int y = static_cast<int>(id / static_cast<std::uint32_t>(n_));
    for (int d = 0; d < 4; ++d) {
      for (int r = 1; r <= config_.max_r; ++r) {
        const std::size_t fwd =
            static_cast<std::size_t>(torus_wrap(y + kCorrDy[d] * r, n_)) *
                n_ +
            torus_wrap(x + kCorrDx[d] * r, n_);
        const std::size_t bwd =
            static_cast<std::size_t>(torus_wrap(y - kCorrDy[d] * r, n_)) *
                n_ +
            torus_wrap(x - kCorrDx[d] * r, n_);
        corr_acc_[r] +=
            dv * (static_cast<std::int64_t>(field_[fwd]) + field_[bwd]);
      }
    }
  }

  field_[id] = value;
  cluster_remove(id, old);
  cluster_insert(id);
}

bool StreamingObservables::ring_connected(std::uint32_t id,
                                          std::int8_t old_value) const {
  // The 8-ring around id in cyclic order; consecutive positions are
  // always 4-adjacent, and none of them is id itself (true for any
  // n >= 2), so one contiguous same-value arc covering every same-value
  // cardinal neighbor proves they stay connected without id.
  const auto un = static_cast<std::uint32_t>(n_);
  const std::uint32_t x = id % un;
  const std::uint32_t y = id / un;
  const std::uint32_t xr = x + 1 == un ? 0 : x + 1;
  const std::uint32_t xl = x == 0 ? un - 1 : x - 1;
  const std::uint32_t yd = y + 1 == un ? 0 : y + 1;
  const std::uint32_t yu = y == 0 ? un - 1 : y - 1;
  const std::size_t row = static_cast<std::size_t>(y) * un;
  const std::size_t row_d = static_cast<std::size_t>(yd) * un;
  const std::size_t row_u = static_cast<std::size_t>(yu) * un;
  const std::size_t ring[8] = {row + xr,   row_d + xr, row_d + x,
                               row_d + xl, row + xl,   row_u + xl,
                               row_u + x,  row_u + xr};
  bool occ[8];
  int gap = -1;
  for (int p = 0; p < 8; ++p) {
    occ[p] = field_[ring[p]] == old_value;
    if (!occ[p]) gap = p;
  }
  if (gap < 0) return true;  // fully surrounded: one arc
  // Walk the ring once starting after a gap; cardinal neighbors sit at
  // the even positions. Connected iff at most one arc holds cardinals.
  int arcs_with_cardinal = 0;
  bool arc_has_cardinal = false;
  for (int s = 1; s <= 8; ++s) {
    const int p = (gap + s) % 8;
    if (occ[p]) {
      arc_has_cardinal |= (p % 2) == 0;
    } else {
      arcs_with_cardinal += arc_has_cardinal;
      arc_has_cardinal = false;
    }
  }
  return arcs_with_cardinal <= 1;
}

void StreamingObservables::cluster_remove(std::uint32_t id,
                                          std::int8_t old_value) {
  const std::uint32_t root = dsu_.find(node_of_[id]);
  const std::int64_t s = dsu_.size_of(root);
  assert(s >= 1);
  hist_remove(s);
  dsu_.adjust_size(root, -1);
  if (s == 1) {
    --cluster_count_;
    return;
  }
  hist_add(s - 1);

  // Distinct same-old-value neighbors; field_[id] already holds the new
  // value, so the departed site can never re-enter the search.
  std::uint32_t nb[4];
  std::uint32_t adj[4];
  neighbors4(id, adj);
  int k = 0;
  for (int dir = 0; dir < 4; ++dir) {
    const std::uint32_t j = adj[dir];
    if (field_[j] != old_value) continue;
    bool dup = false;
    for (int a = 0; a < k; ++a) dup |= nb[a] == j;
    if (!dup) nb[k++] = j;
  }
  assert(k >= 1 && "a size >= 2 cluster must touch its departed site");
  if (k <= 1) return;  // removal of a degree-<=1 site cannot split
  if (ring_connected(id, old_value)) return;  // O(8) bulk-flip fast path

  // Round-robin multi-source BFS: one frontier per neighbor, expanded in
  // lockstep. Touching fronts merge; a front whose frontier exhausts
  // while others remain is a complete detached component and is split
  // off. Lockstep expansion bounds the cost at O(k * smallest piece) in
  // the split case and O(k * front meeting distance) otherwise.
  ++visit_epoch_;
  if (visit_epoch_ >= (1u << 30)) {
    std::fill(visit_.begin(), visit_.end(), 0u);
    visit_epoch_ = 1;
  }
  const std::uint32_t visit_tag = visit_epoch_ << 2;
  std::uint8_t front_parent[4];
  std::vector<std::uint32_t>* frontier = frontier_;
  std::size_t head[4] = {0, 0, 0, 0};
  bool done[4] = {false, false, false, false};
  for (int a = 0; a < k; ++a) {
    front_parent[a] = static_cast<std::uint8_t>(a);
    frontier[a].clear();
    visit_[nb[a]] = visit_tag | static_cast<std::uint32_t>(a);
    frontier[a].push_back(nb[a]);
  }
  const auto ffind = [&](int a) {
    while (front_parent[a] != a) a = front_parent[a];
    return a;
  };
  while (true) {
    int roots[4];
    int nroots = 0;
    for (int a = 0; a < k; ++a) {
      if (!done[a] && ffind(a) == a) roots[nroots++] = a;
    }
    if (nroots <= 1) break;  // the remainder is connected: no more splits
    for (int ri = 0; ri < nroots; ++ri) {
      const int g = roots[ri];
      if (done[g] || ffind(g) != g) continue;  // merged earlier this round
      if (head[g] >= frontier[g].size()) {
        // Complete component. If no other front is still live (they all
        // merged, split, or exhausted earlier this round), this is the
        // old cluster's remainder — leave it in place.
        int others = 0;
        for (int a = 0; a < k; ++a) {
          others += !done[a] && a != g && ffind(a) == a;
        }
        if (others == 0) {
          done[g] = true;
          continue;
        }
        // Detached from every other live front: split it off.
        const auto piece =
            static_cast<std::int64_t>(frontier[g].size());
        const std::uint32_t fresh = dsu_.grow();
        dsu_.adjust_size(fresh, piece - 1);
        for (const std::uint32_t site : frontier[g]) {
          node_of_[site] = fresh;
        }
        const std::int64_t rem = dsu_.size_of(root);
        assert(rem > piece && "a live front remains in the old cluster");
        hist_remove(rem);
        hist_add(rem - piece);
        hist_add(piece);
        dsu_.adjust_size(root, -piece);
        ++cluster_count_;
        ++splits_;
        SEG_COUNT("streaming.splits", 1);
        SEG_HISTOGRAM("streaming.split_piece_sites", piece);
        done[g] = true;
        continue;
      }
      const std::uint32_t site = frontier[g][head[g]++];
      std::uint32_t expand[4];
      neighbors4(site, expand);
      for (int dir = 0; dir < 4; ++dir) {
        const std::uint32_t t = expand[dir];
        if (field_[t] != old_value) continue;
        const std::uint32_t tag = visit_[t];
        if ((tag >> 2) == visit_epoch_) {
          const int h = ffind(static_cast<int>(tag & 3u));
          if (h != g) {
            // Fronts met: absorb h into g (explored prefixes re-pop as
            // cheap no-ops; visits are never double counted).
            front_parent[h] = static_cast<std::uint8_t>(g);
            frontier[g].insert(frontier[g].end(), frontier[h].begin(),
                               frontier[h].end());
            frontier[h].clear();
          }
          continue;
        }
        visit_[t] = visit_tag | static_cast<std::uint32_t>(g);
        frontier[g].push_back(t);
      }
    }
  }
}

void StreamingObservables::cluster_insert(std::uint32_t id) {
  const std::int8_t v = field_[id];
  const std::uint32_t node = dsu_.grow();
  node_of_[id] = node;
  ++cluster_count_;
  hist_add(1);
  std::uint32_t adj[4];
  neighbors4(id, adj);
  for (int dir = 0; dir < 4; ++dir) {
    const std::uint32_t j = adj[dir];
    if (field_[j] != v) continue;
    const std::uint32_t ra = dsu_.find(node_of_[j]);
    const std::uint32_t rb = dsu_.find(node);
    if (ra == rb) continue;
    const std::int64_t sa = dsu_.size_of(ra);
    const std::int64_t sb = dsu_.size_of(rb);
    dsu_.unite(ra, rb);
    hist_remove(sa);
    hist_remove(sb);
    hist_add(sa + sb);
    --cluster_count_;
  }
}

double StreamingObservables::mean_cluster_size() const {
  return static_cast<double>(field_.size()) /
         static_cast<double>(std::max<std::size_t>(1, cluster_count_));
}

ClusterStats StreamingObservables::cluster_stats() const {
  ClusterStats stats;
  stats.cluster_count = cluster_count_;
  stats.largest_cluster = largest_;
  stats.mean_cluster_size = mean_cluster_size();
  stats.interface_length = interface_;
  return stats;
}

std::vector<double> StreamingObservables::pair_correlation() const {
  std::vector<double> c;
  if (config_.max_r <= 0) return c;
  const double mean =
      static_cast<double>(spin_sum_) / static_cast<double>(field_.size());
  c.reserve(corr_acc_.size());
  for (const std::int64_t acc : corr_acc_) {
    c.push_back(static_cast<double>(acc) /
                    (4.0 * static_cast<double>(field_.size())) -
                mean * mean);
  }
  return c;
}

void StreamingObservables::record_sample() {
  // Live-observable gauges for the progress reporter: published at the
  // sampling cadence (per sweep-ish), never from the per-flip path.
  SEG_GAUGE_SET("streaming.magnetization", spin_sum_);
  SEG_GAUGE_SET("streaming.clusters", cluster_count_);
  SEG_GAUGE_SET("streaming.interface", interface_);
  if (ring_.empty()) return;
  const std::size_t w = ring_.size();
  const std::int64_t m = spin_sum_;
  const std::size_t t = sample_count_;
  const std::size_t max_lag = std::min(t, w - 1);
  for (std::size_t l = 0; l <= max_lag; ++l) {
    const std::int64_t prev = l == 0 ? m : ring_[(t - l) % w];
    lag_prod_[l] += m * prev;
  }
  ring_[t % w] = m;
  if (t < w) first_[t] = m;
  sample_total_ += m;
  ++sample_count_;
}

double StreamingObservables::autocovariance(std::size_t lag) const {
  const std::size_t w = ring_.size();
  const std::size_t t = sample_count_;
  if (t == 0 || lag >= t || lag >= w) return 0.0;
  // Identical expression structure to autocovariance() in
  // analysis/correlation.cc; every operand is an exactly represented
  // integer, so the two evaluate bitwise equal.
  const double total = static_cast<double>(sample_total_);
  const double mean = total / static_cast<double>(t);
  std::int64_t head_excl = 0;
  for (std::size_t i = 0; i < lag; ++i) head_excl += first_[i];
  std::int64_t tail_excl = 0;
  for (std::size_t i = 0; i < lag; ++i) {
    tail_excl += ring_[(t - 1 - i) % w];
  }
  const double head = total - static_cast<double>(head_excl);
  const double tail = total - static_cast<double>(tail_excl);
  const double tl = static_cast<double>(t - lag);
  return (static_cast<double>(lag_prod_[lag]) - mean * (head + tail) +
          tl * mean * mean) /
         tl;
}

double StreamingObservables::autocorrelation(std::size_t lag) const {
  const double g0 = autocovariance(0);
  if (g0 == 0.0) return 0.0;
  return autocovariance(lag) / g0;
}

}  // namespace seg
