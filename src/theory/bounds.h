// Probability bounds from the paper's appendix, implemented both exactly
// (finite-N binomial computations, usable up to N of a few thousand) and
// in their asymptotic 2^{-[1-H]N} form:
//
//  Lemma 19: probability p_u that an arbitrary agent is unhappy at t = 0.
//  Lemma 20: probability that a neighborhood of radius (1+e')w is a
//            radical region at t = 0.
//  Lemma 1 / Prop. 1: Azuma-type concentration envelopes for
//            sub-neighborhood counts.
//  Lemma 18: concentration of W around N/2.
#pragma once

#include <cstdint>

namespace seg {

// log2 of the binomial coefficient C(n, k) via lgamma; exact enough for
// all n used here. Returns -infinity for k outside [0, n].
double log2_binomial(std::int64_t n, std::int64_t k);

// log2 P(Binomial(n, 1/2) <= k), computed by stable log-sum-exp.
// Returns 0.0 (probability 1) when k >= n, -infinity when k < 0.
double log2_binomial_cdf_half(std::int64_t n, std::int64_t k);

// Integer happiness threshold: the minimum number of same-type agents
// (self included) required in a size-N neighborhood, K = ceil(tau * N)
// computed robustly against floating-point edge cases. This matches the
// paper's tau = ceil(tau~ N)/N convention: happy iff same-count >= K.
int happiness_threshold(double tau, int N);

// Exact Lemma 19 probability: an agent is unhappy at t = 0 iff fewer than
// K - 1 of its N - 1 neighbors share its type. p = 1/2 per site.
double unhappy_probability_exact(double tau, int N);

// Asymptotic form 2^{-[1-H(tau')]N} / sqrt(N) (up to the lemma's constant).
double unhappy_probability_asymptotic(double tau, int N);

// Exact Lemma 20 probability that a fixed neighborhood of radius
// (1+eps_prime)*w is a radical region: Binomial(N_S, 1/2) < tau^ * N_S
// where N_S is the region size and tau^ the deflated threshold.
// w is the horizon; eps in (0, 1/2) is the concentration exponent.
double radical_region_probability_exact(double tau, int w, double eps_prime,
                                        double eps);

// Size (agent count) of a radius-r l-infinity neighborhood.
std::int64_t neighborhood_size(int r);

// Radius used for a radical region: floor((1 + eps_prime) * w).
int radical_radius(int w, double eps_prime);

// Azuma bound of Lemma 1: P(|W' - gamma K| >= t) <= 2 exp(-t^2 / (2 N')).
double azuma_two_sided_bound(double t, std::int64_t n_prime);

// Lemma 18 envelope: P(|W - N/2| >= c N^{1/2+eps}) <= 2 exp(-2 c^2 N^{2eps})
// (Hoeffding form with 1/2-bounded increments).
double lemma18_bound(double c, double eps, std::int64_t N);

}  // namespace seg
