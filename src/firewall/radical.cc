#include "firewall/radical.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "lattice/halo_field.h"
#include "lattice/window.h"
#include "theory/bounds.h"
#include "theory/exponents.h"

namespace seg {

namespace {

// Counts agents of type `type` in the radius-r ball around center, via
// the shared window iteration (wrap-free row spans).
std::int64_t count_type_in_ball(const SchellingModel& model, Point center,
                                int r, std::int8_t type) {
  const int n = model.side();
  // One masked-popcount pass over the packed field: count the +1 agents
  // in the ball, then complement for a minority of type -1.
  const std::int32_t plus = packed_window_count(
      model.packed_spins(), torus_wrap(center.x, n), torus_wrap(center.y, n),
      r);
  if (type > 0) return plus;
  const int side = 2 * r + 1;
  return static_cast<std::int64_t>(side) * side - plus;
}

// The deflated-density bound of the radical-region test; `effective_tau`
// is tau for tau < 1/2 and tau-bar for the super-radical variant.
double radical_bound(const SchellingModel& model, const RadicalParams& params,
                     double effective_tau, std::int64_t region_size) {
  const int N = model.neighborhood_size();
  const double deflated =
      effective_tau *
      (1.0 - 1.0 / (effective_tau *
                    std::pow(static_cast<double>(N), 0.5 - params.eps)));
  return deflated * static_cast<double>(region_size);
}

bool radical_test(const SchellingModel& model, Point center,
                  const RadicalParams& params, std::int8_t minority,
                  double effective_tau) {
  const int w = model.horizon();
  const int rr = radical_region_radius(w, params.eps_prime);
  if (2 * rr + 1 > model.side()) return false;
  const std::int64_t region_size = neighborhood_size(rr);
  const std::int64_t minority_count =
      count_type_in_ball(model, center, rr, minority);
  return static_cast<double>(minority_count) <
         radical_bound(model, params, effective_tau, region_size);
}

}  // namespace

int radical_region_radius(int w, double eps_prime) {
  return static_cast<int>(std::floor((1.0 + eps_prime) * w));
}

bool is_radical_region(const SchellingModel& model, Point center,
                       const RadicalParams& params, std::int8_t minority) {
  return radical_test(model, center, params, minority, model.params().tau);
}

double tau_bar(double tau, int N) {
  return 1.0 - tau + 2.0 / static_cast<double>(N);
}

bool is_super_radical_region(const SchellingModel& model, Point center,
                             const RadicalParams& params,
                             std::int8_t minority) {
  assert(model.params().tau > 0.5);
  return radical_test(model, center, params, minority,
                      tau_bar(model.params().tau, model.neighborhood_size()));
}

std::vector<Point> find_radical_regions(const SchellingModel& model,
                                        const RadicalParams& params,
                                        std::int8_t minority) {
  std::vector<Point> centers;
  const int n = model.side();
  const int w = model.horizon();
  const int rr = radical_region_radius(w, params.eps_prime);
  if (2 * rr + 1 > n) return centers;
  const bool super = model.params().tau > 0.5;
  const double effective_tau =
      super ? tau_bar(model.params().tau, model.neighborhood_size())
            : model.params().tau;
  const double bound =
      radical_bound(model, params, effective_tau, neighborhood_size(rr));
  // Every one of the n^2 centers scans the same spin field: snapshot it
  // once into a halo-padded packed copy so the per-center ball count is a
  // handful of masked popcounts with no wrapping. The window's minority
  // count is the +1 popcount (minority == +1) or its complement.
  const std::int64_t region_size = neighborhood_size(rr);
  const PackedHaloField field(model.packed_spins(), rr);
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      const std::int64_t plus = field.count_window(x, y, rr);
      const std::int64_t minority_count =
          minority > 0 ? plus : region_size - plus;
      if (static_cast<double>(minority_count) < bound) {
        centers.push_back(Point{x, y});
      }
    }
  }
  return centers;
}

NucleusCheck check_unhappy_nucleus(const SchellingModel& model, Point center,
                                   const RadicalParams& params,
                                   std::int8_t minority) {
  const int n = model.side();
  const int w = model.horizon();
  const int N = model.neighborhood_size();
  const int nucleus_r =
      std::max(1, static_cast<int>(std::floor(params.eps_prime * w)));
  NucleusCheck check;
  for_each_window_point(
      torus_wrap(center.x, n), torus_wrap(center.y, n), nucleus_r, n,
      [&](int, int, std::uint32_t id) {
        if (model.spin(id) != minority) return;
        ++check.minority_in_nucleus;
        if (model.is_unhappy(id)) ++check.unhappy_minority_in_nucleus;
      });
  // Lemma 4's count: floor(tau * eps'^2 N) - N^{1/2+eps} (the paper's
  // bound for the number of unhappy minority agents in the nucleus).
  const double target =
      model.params().tau * params.eps_prime * params.eps_prime *
          static_cast<double>(N) -
      std::pow(static_cast<double>(N), 0.5 + params.eps);
  check.required = std::max<std::int64_t>(
      0, static_cast<std::int64_t>(std::floor(target)));
  check.holds = check.unhappy_minority_in_nucleus >= check.required;
  return check;
}

ExpansionResult try_expand_radical_region(const SchellingModel& model,
                                          Point center,
                                          const RadicalParams& params,
                                          std::int8_t minority) {
  const int w = model.horizon();
  const int rr = radical_region_radius(w, params.eps_prime);
  const int core_r = std::max(1, w / 2);
  const auto budget =
      static_cast<std::uint64_t>(w + 1) * static_cast<std::uint64_t>(w + 1);

  // Scratch copy: flips here do not touch the caller's model.
  SchellingModel scratch(model.params(), model.spins());
  ExpansionResult result;

  const int n = scratch.side();
  const auto core_is_majority = [&] {
    return for_each_window_point_until(
        torus_wrap(center.x, n), torus_wrap(center.y, n), core_r, n,
        [&](int, int, std::uint32_t id) {
          return scratch.spin(id) != minority;
        });
  };

  while (result.flips_used < budget) {
    if (core_is_majority()) {
      result.expanded = true;
      return result;
    }
    // Find a flippable minority agent inside the radical region; prefer
    // agents nearest the center so the core clears first.
    std::int64_t best_dist = -1;
    std::uint32_t best_id = 0;
    for (const std::uint32_t id : scratch.flippable_set().items()) {
      if (scratch.spin(id) != minority) continue;
      const Point p = scratch.point_of(id);
      const int d = torus_linf(p, center, scratch.side());
      if (d > rr) continue;
      if (best_dist < 0 || d < best_dist) {
        best_dist = d;
        best_id = id;
      }
    }
    if (best_dist < 0) break;  // no flippable minority agent in the region
    scratch.flip(best_id);
    ++result.flips_used;
  }
  result.expanded = core_is_majority();
  return result;
}

}  // namespace seg
