// THM1/THM2 — the headline claims: the expected size of the (almost)
// monochromatic region containing an arbitrary agent grows exponentially
// in the neighborhood size N.
//
// The sweep is the built-in `region_size` campaign (tau x w grid with the
// torus side tied to the horizon, n = max(64, 24w)), run through the
// campaign engine; this driver only renders the per-tau tables and the
// log2 E[M] versus N exponential-growth fits. The paper's claim fixes the
// *shape*: the fit should be close to linear (r^2 high) with a positive
// slope; the theorems bracket the asymptotic slope in [a(tau), b(tau)] —
// we print both for comparison (absolute agreement is not expected at
// these finite sizes).
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "campaign/builtin.h"
#include "campaign/sinks.h"
#include "io/table.h"
#include "theory/constants.h"
#include "theory/exponents.h"
#include "util/args.h"
#include "util/stats.h"

namespace {

void report_tau(const seg::BuiltinCampaign& campaign,
                const seg::CampaignResult& result, std::size_t tau_index) {
  const double tau = campaign.spec.tau[tau_index];
  const std::size_t tau_count = campaign.spec.tau.size();
  const std::size_t w_count = campaign.spec.w.size();
  const bool mono_regime = tau > seg::tau1() && tau < 1.0 - seg::tau1();
  std::printf("\n-- tau = %.3f (%s regime) --\n", tau,
              mono_regime ? "monochromatic, Thm 1"
                          : "almost monochromatic, Thm 2");
  seg::TablePrinter table({"w", "N", "E[M]", "log2 E[M]", "E[M']",
                           "log2 E[M']", "E[C1]", "E[iface]/n^2"});
  std::vector<double> ns, log_m, log_mp;
  for (std::size_t wi = 0; wi < w_count; ++wi) {
    // Grid order: w is an outer axis relative to tau (expand_grid nests
    // n, w, tau, ...), so each w block holds tau_count points.
    const std::size_t point = wi * tau_count + tau_index;
    const int w = campaign.spec.w[wi];
    const int N = (2 * w + 1) * (2 * w + 1);
    // The builtin ties the torus side to the horizon; read it off the
    // expanded point rather than duplicating the formula.
    const int n = campaign.points[point].params.n;
    const double mean_m =
        result.stats_for(point, "mean_mono_region")->mean();
    const double mean_mp =
        result.stats_for(point, "mean_almost_region")->mean();
    // Companion observables from the streaming engine: the largest
    // same-type cluster and the interface (unlike-neighbor bond) energy
    // density of the absorbing configuration.
    const double mean_c1 =
        result.stats_for(point, "streaming_largest_cluster")->mean();
    const double mean_iface =
        result.stats_for(point, "streaming_interface_length")->mean();
    table.new_row()
        .add(static_cast<std::int64_t>(w))
        .add(static_cast<std::int64_t>(N))
        .add(mean_m, 1)
        .add(std::log2(mean_m), 3)
        .add(mean_mp, 1)
        .add(std::log2(mean_mp), 3)
        .add(mean_c1, 1)
        .add(mean_iface / (static_cast<double>(n) * n), 4);
    ns.push_back(N);
    log_m.push_back(std::log2(mean_m));
    log_mp.push_back(std::log2(mean_mp));
  }
  table.print();

  const seg::LinearFit fit_m = seg::fit_line(ns, log_m);
  const seg::LinearFit fit_mp = seg::fit_line(ns, log_mp);
  std::printf("exponential-growth fit log2 E[M]  ~ %.5f * N + %.2f   "
              "(r^2 = %.3f)\n",
              fit_m.slope, fit_m.intercept, fit_m.r2);
  std::printf("exponential-growth fit log2 E[M'] ~ %.5f * N + %.2f   "
              "(r^2 = %.3f)\n",
              fit_mp.slope, fit_mp.intercept, fit_mp.r2);
  std::printf("theory envelope (asymptotic): a(tau) = %.5f, b(tau) = %.5f\n",
              seg::a_exponent_envelope(tau), seg::b_exponent_envelope(tau));
  std::printf("shape verdict: slope %s, fit %s\n",
              fit_m.slope > 0 ? "positive (grows with N)" : "NON-POSITIVE",
              fit_m.r2 > 0.8 ? "near-linear in N (exponential E[M])"
                             : "noisy at this scale");
}

}  // namespace

int main(int argc, char** argv) {
  const seg::ArgParser args(argc, argv);
  const auto trials = static_cast<std::size_t>(args.get_int("trials", 3));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const auto threads = static_cast<std::size_t>(args.get_int("threads", 1));
  const std::string out = args.get_string("out", "");

  seg::BuiltinCampaign campaign;
  seg::make_builtin_campaign("region_size", {.replicas = trials}, &campaign);

  std::printf("== Theorems 1 & 2: E[M], E[M'] exponential in N ==\n");
  std::printf("(grid side n = max(64, 24w); %zu trials per point; E over "
              "%zu sampled agents per trial)\n",
              trials, campaign.spec.region_samples);

  seg::CampaignOptions options;
  options.threads = threads;
  options.checkpoint_path = args.get_string("checkpoint", "");
  options.resume = args.get_bool("resume", false);
  const seg::CampaignResult result = seg::run_campaign(
      campaign.spec, campaign.points, campaign.metric_names,
      campaign.replica, seed, options);

  for (std::size_t ti = 0; ti < campaign.spec.tau.size(); ++ti) {
    report_tau(campaign, result, ti);
  }
  if (!out.empty()) {
    seg::CsvSink csv(out);
    if (csv.write(campaign.spec, result)) {
      std::printf("\nfull grid written to %s\n", out.c_str());
    }
  }
  return 0;
}
