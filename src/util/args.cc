#include "util/args.h"

#include "util/parse.h"

namespace seg {

namespace {

bool is_flag(const std::string& s) {
  return s.size() > 2 && s[0] == '-' && s[1] == '-';
}

}  // namespace

ArgParser::ArgParser(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!is_flag(arg)) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // `--key value` if the next token is not itself a flag, else boolean.
    if (i + 1 < argc && !is_flag(argv[i + 1])) {
      values_[arg] = argv[i + 1];
      ++i;
    } else {
      values_[arg] = "true";
    }
  }
}

bool ArgParser::has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string ArgParser::get_string(const std::string& key,
                                  std::string def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

std::int64_t ArgParser::get_int(const std::string& key,
                                std::int64_t def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  std::int64_t v = 0;
  std::string why;
  if (!parse_i64_checked(it->second, &v, &why)) {
    errors_.push_back("--" + key + ": " + why);
    return def;
  }
  return v;
}

double ArgParser::get_double(const std::string& key, double def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  double v = 0.0;
  std::string why;
  if (!parse_double_checked(it->second, &v, &why)) {
    errors_.push_back("--" + key + ": " + why);
    return def;
  }
  return v;
}

bool ArgParser::get_bool(const std::string& key, bool def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  const std::string& s = it->second;
  if (s == "true" || s == "1" || s == "yes" || s == "on") return true;
  if (s == "false" || s == "0" || s == "no" || s == "off") return false;
  return def;
}

}  // namespace seg
