#include "grid/distance_transform.h"

#include <cassert>
#include <vector>

#include "grid/point.h"

namespace seg {

std::vector<std::int32_t> chessboard_distance_torus(
    const std::vector<std::uint8_t>& sources, int n) {
  assert(n > 0);
  const std::size_t total = static_cast<std::size_t>(n) * n;
  assert(sources.size() == total);
  std::vector<std::int32_t> dist(total, -1);

  // Ring buffer BFS frontier; each site enters the queue at most once.
  std::vector<std::uint32_t> queue;
  queue.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    if (sources[i]) {
      dist[i] = 0;
      queue.push_back(static_cast<std::uint32_t>(i));
    }
  }
  if (queue.empty()) return dist;

  static constexpr int kDx[8] = {-1, 0, 1, -1, 1, -1, 0, 1};
  static constexpr int kDy[8] = {-1, -1, -1, 0, 0, 1, 1, 1};

  for (std::size_t head = 0; head < queue.size(); ++head) {
    const std::uint32_t cur = queue[head];
    const int x = static_cast<int>(cur % n);
    const int y = static_cast<int>(cur / n);
    const std::int32_t d = dist[cur];
    for (int k = 0; k < 8; ++k) {
      const int nx = torus_wrap(x + kDx[k], n);
      const int ny = torus_wrap(y + kDy[k], n);
      const std::size_t ni = static_cast<std::size_t>(ny) * n + nx;
      if (dist[ni] < 0) {
        dist[ni] = d + 1;
        queue.push_back(static_cast<std::uint32_t>(ni));
      }
    }
  }
  return dist;
}

std::vector<std::int32_t> mono_ball_radius(const std::vector<std::int8_t>& spins,
                                           int n) {
  const std::size_t total = static_cast<std::size_t>(n) * n;
  assert(spins.size() == total);

  // A site c's nearest "obstacle" is the nearest site of the opposite spin.
  // Run one BFS per spin value, with the opposite-type sites as sources.
  std::vector<std::uint8_t> plus_sources(total), minus_sources(total);
  bool any_plus = false, any_minus = false;
  for (std::size_t i = 0; i < total; ++i) {
    if (spins[i] > 0) {
      plus_sources[i] = 1;
      any_plus = true;
    } else {
      minus_sources[i] = 1;
      any_minus = true;
    }
  }

  const std::int32_t max_radius = (n - 1) / 2;
  std::vector<std::int32_t> radius(total, max_radius);
  if (!any_plus || !any_minus) return radius;  // fully monochromatic grid

  // Distance from each site to the nearest minus site / plus site.
  const auto dist_to_minus = chessboard_distance_torus(minus_sources, n);
  const auto dist_to_plus = chessboard_distance_torus(plus_sources, n);
  for (std::size_t i = 0; i < total; ++i) {
    const std::int32_t d =
        spins[i] > 0 ? dist_to_minus[i] : dist_to_plus[i];
    radius[i] = std::min(max_radius, d - 1);
  }
  return radius;
}

}  // namespace seg
