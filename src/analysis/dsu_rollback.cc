#include "analysis/dsu_rollback.h"

#include <algorithm>
#include <cassert>

#include "obs/telemetry.h"

namespace seg {

DsuRollback::DsuRollback(std::size_t n, bool logging)
    : logging_(logging) {
  reset(n);
}

void DsuRollback::ensure_storage(std::size_t n) {
  if (parent_.size() < n) {
    parent_.resize(n, 0);
    size_.resize(n, 0);
    stamp_.resize(n, 0);
  }
}

std::uint32_t DsuRollback::grow() {
  const auto id = static_cast<std::uint32_t>(count_++);
  ensure_storage(count_);
  stamp_[id] = epoch_;
  parent_[id] = id;
  size_[id] = 1;
  if (logging_) log_.push_back(Entry{Op::kGrow, id, id, 0});
  return id;
}

std::uint32_t DsuRollback::find(std::uint32_t v) {
  assert(v < count_);
  refresh(v);
  // Any non-trivial parent link was written in the current epoch, so the
  // chain above v needs no refresh.
  if (logging_) {
    // No compression: a rollback may detach any interior node, and a
    // compressed link would silently survive it.
    while (parent_[v] != v) v = parent_[v];
    return v;
  }
  while (parent_[v] != v) {
    parent_[v] = parent_[parent_[v]];  // path halving
    v = parent_[v];
  }
  return v;
}

bool DsuRollback::unite(std::uint32_t a, std::uint32_t b) {
  a = find(a);
  b = find(b);
  if (a == b) return false;
  if (size_[a] < size_[b]) {
    const std::uint32_t t = a;
    a = b;
    b = t;
  }
  if (logging_) log_.push_back(Entry{Op::kUnion, b, a, size_[b]});
  parent_[b] = a;
  size_[a] += size_[b];
  return true;
}

void DsuRollback::adjust_size(std::uint32_t root, std::int64_t delta) {
  assert(root < count_);
  refresh(root);
  assert(parent_[root] == root && "adjust_size target must be a root");
  size_[root] += delta;
  if (logging_) log_.push_back(Entry{Op::kAdjust, root, root, delta});
}

void DsuRollback::rollback(std::size_t mark) {
  assert(mark <= log_.size());
  while (log_.size() > mark) {
    const Entry e = log_.back();
    log_.pop_back();
    switch (e.op) {
      case Op::kUnion:
        parent_[e.child] = e.child;
        size_[e.parent] -= e.delta;
        break;
      case Op::kAdjust:
        size_[e.child] -= e.delta;
        break;
      case Op::kGrow:
        --count_;
        break;
    }
  }
}

void DsuRollback::reset(std::size_t n) {
  SEG_COUNT("dsu.resets", 1);
  ++epoch_;
  if (epoch_ == 0) {
    // Stamp wrap after ~4e9 resets: hard-clear so stale stamps cannot
    // alias the new epoch.
    std::fill(stamp_.begin(), stamp_.end(), 0u);
    epoch_ = 1;
  }
  count_ = n;
  ensure_storage(n);
  log_.clear();
}

}  // namespace seg
