// Arbitrary-graph neighborhood structure for the binary-spin engines.
//
// A GraphTopology is a CSR adjacency over `node_count()` nodes where
// every row INCLUDES the node itself — mirroring the torus convention
// that the (0,0) offset is part of the stencil, so a node's
// "neighborhood size" N_v (the quantity the membership thresholds are
// computed from) is simply its row length. Rows are the engine's touch
// order: a flip at v updates counts and memberships of exactly row(v),
// in row order.
//
// Builders:
//  * torus(n, offsets)  — the n x n torus with the given stencil
//    (neighborhood_offsets from core/model.h, (0,0) included). Rows are
//    emitted in EXACT stencil order (dy = -w..w, dx = -w..w, coordinates
//    wrapped), which is also the span order of the native window engine;
//    this is what makes torus-as-graph trajectories bitwise identical to
//    the span fast path (the differential suite pins all six goldens).
//  * lollipop(clique, path) — a complete clique with a path glued to its
//    last node (the classic hitting-time pathology; heterogeneous
//    degrees stress the per-degree membership tables).
//  * random_regular(nodes, degree, seed) — configuration-model random
//    d-regular graph with a deterministic seeded rewiring repair of
//    self-loops and duplicate edges.
//  * small_world(n, offsets, beta, seed) — Watts-Strogatz rewiring of
//    the torus: each canonical torus edge is redirected with probability
//    beta to a uniform non-adjacent endpoint (edge count preserved).
//  * from_edges / load_edge_list — imported undirected edge lists (e.g.
//    real street networks).
//
// Non-torus rows are sorted ascending (self included at its sorted
// position); there is no legacy order to preserve off the torus, and
// sorted rows make trajectories a well-defined function of the edge set.
//
// All builders produce simple symmetric graphs: validate() checks
// symmetry, exactly one self entry per row, and no duplicate entries.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "grid/point.h"

namespace seg {

class GraphTopology {
 public:
  GraphTopology() = default;

  std::size_t node_count() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }

  // Row length of v — the membership-threshold N_v (self included).
  int neighborhood_size(std::uint32_t v) const {
    return static_cast<int>(offsets_[v + 1] - offsets_[v]);
  }
  // Graph-theoretic degree (self excluded).
  int degree(std::uint32_t v) const { return neighborhood_size(v) - 1; }

  // {pointer, length} of v's row (self included), the engine touch order.
  std::pair<const std::uint32_t*, int> row(std::uint32_t v) const {
    return {adj_.data() + offsets_[v], neighborhood_size(v)};
  }

  // Undirected edge count, self entries excluded.
  std::size_t edge_count() const {
    return (adj_.size() - node_count()) / 2;
  }

  int min_neighborhood_size() const;
  int max_neighborhood_size() const;

  // True iff v is adjacent to u (or v == u, since rows include self).
  bool adjacent(std::uint32_t u, std::uint32_t v) const;

  // Structural audit: rows sorted-or-stencil consistent is NOT required,
  // but symmetry, exactly one self entry per row, in-range ids, and no
  // duplicate row entries are. On failure *error names the defect.
  bool validate(std::string* error = nullptr) const;

  static GraphTopology torus(int n, const std::vector<Point>& offsets);
  static GraphTopology lollipop(int clique, int path);
  static GraphTopology random_regular(int nodes, int degree,
                                      std::uint64_t seed);
  static GraphTopology small_world(int n, const std::vector<Point>& offsets,
                                   double beta, std::uint64_t seed);
  // Undirected simple graph from an edge list; self loops in `edges` are
  // ignored, duplicates collapse. Rows come out sorted with self added.
  static GraphTopology from_edges(
      std::size_t nodes,
      const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges);
  // Text edge list: one "u v" pair per line, '#' comments; node count is
  // 1 + the largest id seen. False (with *error) on unreadable files,
  // malformed tokens, or an empty edge set.
  static bool load_edge_list(const std::string& path, GraphTopology* out,
                             std::string* error = nullptr);

 private:
  std::vector<std::size_t> offsets_;  // CSR row starts, node_count() + 1
  std::vector<std::uint32_t> adj_;    // rows, self included
};

}  // namespace seg
