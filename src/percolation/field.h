// Bernoulli site percolation fields on a finite L x L box of Z^2 (open
// boundary, no wrap) — the substrate behind the paper's Lemmas 13-14 and
// the cited theorems of Garet-Marchand (chemical distance) and Grimmett
// (subcritical cluster-radius decay).
#pragma once

#include <cstdint>
#include <vector>

#include "rng/rng.h"

namespace seg {

// Critical probability for site percolation on Z^2 (numerical value, used
// by experiments to pick sub/supercritical p).
inline constexpr double kSiteCriticalP = 0.592746;

class SiteField {
 public:
  // Draws an L x L field with P(open) = p.
  SiteField(int L, double p, Rng& rng);
  // Explicit field (row-major open flags).
  SiteField(int L, std::vector<std::uint8_t> open);

  int side() const { return L_; }
  double p() const { return p_; }

  bool open(int x, int y) const {
    return in_bounds(x, y) &&
           open_[static_cast<std::size_t>(y) * L_ + x] != 0;
  }
  bool in_bounds(int x, int y) const {
    return x >= 0 && x < L_ && y >= 0 && y < L_;
  }
  std::size_t index(int x, int y) const {
    return static_cast<std::size_t>(y) * L_ + x;
  }
  const std::vector<std::uint8_t>& data() const { return open_; }

  double open_fraction() const;

 private:
  int L_;
  double p_ = 0.0;
  std::vector<std::uint8_t> open_;
};

}  // namespace seg
