// FIG6 — reproduces Figure 6: the infimum epsilon' = f(tau) (eq. 10) of
// the radical-region oversize factor that can trigger the cascade
// (Lemma 5). Near tau = 1/2 a vanishing nucleus suffices; toward tau_2
// ever larger unhappy regions are needed.
#include <cstdio>

#include "io/table.h"
#include "theory/constants.h"

int main() {
  std::printf("== Figure 6: triggering threshold f(tau) ==\n\n");
  const double t2 = seg::tau2();
  seg::TablePrinter table({"tau", "f(tau)"});
  for (double tau = t2 + 0.002; tau < 0.4999; tau += 0.005) {
    table.new_row().add(tau, 4).add(seg::f_tau(tau), 6);
  }
  table.new_row().add(0.4999, 4).add(seg::f_tau(0.4999), 6);
  table.print();

  std::printf("\nshape checks (paper, Fig. 6):\n");
  std::printf("  f decreasing in tau: %s\n",
              seg::f_tau(0.36) > seg::f_tau(0.45) ? "yes" : "NO");
  std::printf("  f -> 0 as tau -> 1/2: %s (f(0.4999) = %.5f)\n",
              seg::f_tau(0.4999) < 0.02 ? "yes" : "NO", seg::f_tau(0.4999));
  std::printf("  f < 1/2 on the whole interval: %s\n",
              seg::f_tau(t2 + 1e-4) < 0.5 ? "yes" : "NO");
  std::printf("  f(tau_2+) = %.5f (largest trigger the theory needs)\n",
              seg::f_tau(t2 + 1e-4));
  return 0;
}
