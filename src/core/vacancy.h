// The classic vacancy-based Schelling model — the mechanism the paper's
// introduction describes ("Unhappy agents randomly move to vacant
// locations where they will be happy", Sec. I-A) and of which the Glauber
// flip dynamics is the open-system abstraction. Included as the historical
// baseline: a fraction `vacancy` of sites is empty; an unhappy agent
// relocates to a uniformly sampled vacant site where it would be happy.
//
// Happiness follows Schelling's convention: the fraction of same-type
// agents among the *occupied other* sites of the neighborhood must be at
// least tau; an agent with no occupied neighbors is happy.
//
// Built on the lattice layer: window updates walk contiguous row spans
// (lattice/window.h), and the unhappy-set refresh is driven by a per-site
// membership byte plus a precomputed integer threshold table — only sites
// whose (same, occupied) tallies cross the tau boundary touch the set.
#pragma once

#include <cstdint>
#include <vector>

#include "grid/point.h"
#include "lattice/agent_set.h"
#include "rng/rng.h"

namespace seg {

struct VacancyParams {
  int n = 64;
  int w = 2;
  double tau = 0.45;
  double vacancy = 0.10;  // fraction of empty sites
  double p = 0.5;         // split of +1 among occupied sites
  // Random vacant sites probed per relocation attempt before giving up.
  int relocation_attempts = 32;

  int neighborhood_size() const { return (2 * w + 1) * (2 * w + 1); }
  bool valid() const {
    return n > 0 && w >= 1 && 2 * w + 1 <= n && tau >= 0.0 && tau <= 1.0 &&
           vacancy > 0.0 && vacancy < 1.0 && p >= 0.0 && p <= 1.0 &&
           relocation_attempts >= 1;
  }
};

class VacancyModel {
 public:
  // Site states: +1, -1, or 0 (vacant).
  VacancyModel(const VacancyParams& params, Rng& rng);
  VacancyModel(const VacancyParams& params, std::vector<std::int8_t> sites);

  const VacancyParams& params() const { return params_; }
  int side() const { return params_.n; }
  std::size_t site_count() const { return sites_.size(); }
  std::size_t agent_total() const {
    return sites_.size() - vacant_.size();
  }
  std::size_t vacancy_total() const { return vacant_.size(); }

  std::int8_t site(std::uint32_t id) const { return sites_[id]; }
  std::int8_t site_at(int x, int y) const;
  const std::vector<std::int8_t>& sites() const { return sites_; }
  std::uint32_t id_of(int x, int y) const;

  bool occupied(std::uint32_t id) const { return sites_[id] != 0; }

  // Occupied / same-type tallies over the neighborhood (self included in
  // the stored counts; the happiness predicate removes the agent itself).
  std::int32_t occupied_count(std::uint32_t id) const {
    return occ_count_[id];
  }
  std::int32_t plus_count(std::uint32_t id) const { return plus_count_[id]; }

  // Schelling happiness for the agent at `id` (must be occupied).
  bool is_happy(std::uint32_t id) const;
  // Would an agent of `type` be happy standing at (vacant or not) `at`?
  bool would_be_happy(std::int8_t type, std::uint32_t at) const;

  const AgentSet& unhappy_set() const { return unhappy_; }
  const AgentSet& vacant_set() const { return vacant_; }
  std::size_t count_unhappy() const { return unhappy_.size(); }
  double happy_fraction() const;

  // Moves the agent at `from` to the vacant site `to`. One span pass per
  // endpoint window.
  void move(std::uint32_t from, std::uint32_t to);

  // Exact absorption test: no unhappy agent has any vacancy where it
  // would be happy. O(U * V) would-be-happy checks.
  bool absorbing_state() const;

  // Mean same-type fraction over agents with at least one occupied
  // neighbor — the classic segregation ("similarity") index.
  double similarity_index() const;

  bool check_invariants() const;

 private:
  void apply_site_delta(std::uint32_t id, std::int8_t type, int sign);
  bool unhappy_from_tallies(std::int8_t site, std::int32_t plus,
                            std::int32_t occ) const;

  VacancyParams params_;
  int N_;
  std::vector<std::int8_t> sites_;
  std::vector<std::int32_t> plus_count_;  // +1 agents in ball, self incl.
  std::vector<std::int32_t> occ_count_;   // occupied sites in ball
  // min_same_[o] = smallest same-others tally that is happy among o
  // occupied others — the integer form of `same >= tau * o` under the
  // legacy double comparison, so trajectories match bit for bit.
  std::vector<std::int32_t> min_same_;
  std::vector<std::uint8_t> in_unhappy_;  // membership byte per site
  AgentSet unhappy_;
  AgentSet vacant_;
};

struct VacancyRunResult {
  std::uint64_t moves = 0;
  std::uint64_t proposals = 0;
  bool terminated = false;  // certified absorbing state
  bool gave_up = false;
};

struct VacancyRunOptions {
  std::uint64_t max_moves = ~std::uint64_t{0};
  // Consecutive failed relocation attempts before running the exact
  // absorption test.
  std::uint64_t stale_check_after = 2000;
};

// Random-order relocation dynamics: pick a uniform unhappy agent, probe
// `relocation_attempts` uniform vacancies, move to the first where the
// agent would be happy.
VacancyRunResult run_vacancy(VacancyModel& model, Rng& rng,
                             const VacancyRunOptions& options = {});

// Draws a site field with the requested vacancy fraction and +1 split.
std::vector<std::int8_t> random_sites(const VacancyParams& params, Rng& rng);

}  // namespace seg
