// Threshold-crossing tables for the binary-spin engines.
//
// Every model variant classifies an agent from (its spin, its +1-count);
// the classification is a small bitmask over the engine's agent sets
// (bit s set == "belongs to set s"). A flip changes each neighbor's count
// by exactly +-1, so a neighbor's classification can change only when its
// count crosses one of the model's thresholds — precomputing the code for
// every (spin, count) pair turns the per-neighbor membership refresh into
// one table load and a byte compare, replacing the legacy per-neighbor
// predicate evaluation and O(1)-but-branchy set probes.
#pragma once

#include <cstdint>
#include <vector>

namespace seg {

class MembershipTable {
 public:
  // code_of(plus, count) -> membership bitmask for an agent of the given
  // spin sign whose window holds `count` +1 agents (count in [0, N]).
  template <typename CodeFn>
  MembershipTable(int window_size, CodeFn&& code_of)
      : stride_(window_size + 1),
        table_(static_cast<std::size_t>(2) * stride_) {
    for (int c = 0; c <= window_size; ++c) {
      table_[c] = code_of(true, c);
      table_[static_cast<std::size_t>(stride_) + c] = code_of(false, c);
    }
  }

  std::uint8_t code(bool plus, std::int32_t count) const {
    return table_[(plus ? 0 : stride_) + count];
  }

  // Raw access for the hot loop: data()[spin_offset(spin) + count].
  const std::uint8_t* data() const { return table_.data(); }
  std::int32_t spin_offset(std::int8_t spin) const {
    return spin > 0 ? 0 : stride_;
  }

  // Counts c in [1, N] where the code changes for either spin sign — the
  // crossing-detection set the engines' flip fast path compares against.
  std::vector<std::int32_t> breaks() const {
    std::vector<std::int32_t> found;
    for (std::int32_t c = 1; c < stride_; ++c) {
      if (code(true, c) != code(true, c - 1) ||
          code(false, c) != code(false, c - 1)) {
        found.push_back(c);
      }
    }
    return found;
  }

 private:
  std::int32_t stride_;
  std::vector<std::uint8_t> table_;
};

}  // namespace seg
