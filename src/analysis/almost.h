// Almost-monochromatic region measurement (paper Sec. II-A and the
// quantity M' of Theorem 2): the largest-radius ball containing u in which
// the ratio (minority count / majority count) is at most e^{-eps N},
// where N is the neighborhood size of the dynamics.
#pragma once

#include <cstdint>
#include <vector>

#include "grid/point.h"
#include "rng/rng.h"

namespace seg {

class SchellingModel;

struct AlmostMonoField {
  int n = 0;
  double ratio_threshold = 0.0;
  // Per-center radius of the largest almost-monochromatic ball centered
  // there (-1 if even the radius-0 ball fails, which cannot happen since a
  // single agent has minority ratio 0).
  std::vector<std::int32_t> radius;
};

// Computes the per-center almost-monochromatic radii. max_radius bounds
// the search (and the cost, O(n^2 * max_radius)); it defaults to the
// largest proper ball, (n-1)/2, when <= 0.
AlmostMonoField almost_mono_field(const std::vector<std::int8_t>& spins,
                                  int n, double ratio_threshold,
                                  int max_radius = 0);

// Paper's threshold e^{-eps N} for the given dynamics neighborhood size.
double almost_mono_threshold(double eps, int neighborhood_size);

// M'(u): size of the largest almost-monochromatic ball containing u.
std::int64_t almost_region_size_of(const AlmostMonoField& field, Point u);

// Mean of M'(u) over uniformly sampled agents (estimator for E[M']).
double mean_almost_region_size(const AlmostMonoField& field,
                               std::size_t samples, Rng& rng);

std::int64_t largest_almost_region(const AlmostMonoField& field);

// Convenience overload binding threshold = e^{-eps N(model)}.
AlmostMonoField almost_mono_field(const SchellingModel& model, double eps,
                                  int max_radius = 0);

}  // namespace seg
