#include "grid/distance_transform.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "grid/point.h"
#include "rng/rng.h"

namespace seg {
namespace {

// Reference O(n^2 * sources) chessboard distance.
std::vector<std::int32_t> naive_chessboard(
    const std::vector<std::uint8_t>& sources, int n) {
  std::vector<Point> src;
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      if (sources[static_cast<std::size_t>(y) * n + x]) src.push_back({x, y});
    }
  }
  std::vector<std::int32_t> dist(sources.size(), -1);
  if (src.empty()) return dist;
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      int best = n;
      for (const Point& s : src) {
        best = std::min(best, torus_linf({x, y}, s, n));
      }
      dist[static_cast<std::size_t>(y) * n + x] = best;
    }
  }
  return dist;
}

TEST(ChessboardDT, NoSourcesAllMinusOne) {
  const int n = 4;
  std::vector<std::uint8_t> src(n * n, 0);
  const auto dist = chessboard_distance_torus(src, n);
  for (const auto d : dist) EXPECT_EQ(d, -1);
}

TEST(ChessboardDT, AllSourcesAllZero) {
  const int n = 4;
  std::vector<std::uint8_t> src(n * n, 1);
  const auto dist = chessboard_distance_torus(src, n);
  for (const auto d : dist) EXPECT_EQ(d, 0);
}

TEST(ChessboardDT, SingleSourceEqualsLinfDistance) {
  const int n = 9;
  std::vector<std::uint8_t> src(n * n, 0);
  src[4 * n + 4] = 1;
  const auto dist = chessboard_distance_torus(src, n);
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      EXPECT_EQ(dist[y * n + x], torus_linf({x, y}, {4, 4}, n));
    }
  }
}

TEST(ChessboardDT, WrapsAroundSeam) {
  const int n = 10;
  std::vector<std::uint8_t> src(n * n, 0);
  src[0] = 1;  // source at (0,0)
  const auto dist = chessboard_distance_torus(src, n);
  EXPECT_EQ(dist[9 * n + 9], 1);
  EXPECT_EQ(dist[5 * n + 5], 5);
}

TEST(ChessboardDT, MatchesNaiveOnRandomFields) {
  for (const int n : {3, 5, 8, 12}) {
    Rng rng(77 + n);
    std::vector<std::uint8_t> src(static_cast<std::size_t>(n) * n, 0);
    for (auto& s : src) s = rng.bernoulli(0.15) ? 1 : 0;
    EXPECT_EQ(chessboard_distance_torus(src, n), naive_chessboard(src, n))
        << "n=" << n;
  }
}

TEST(MonoBallRadius, UniformGridReportsMaxRadius) {
  const int n = 7;
  std::vector<std::int8_t> spins(n * n, 1);
  const auto radius = mono_ball_radius(spins, n);
  for (const auto r : radius) EXPECT_EQ(r, (n - 1) / 2);
}

TEST(MonoBallRadius, IsolatedOppositeSiteKillsNeighborhood) {
  const int n = 9;
  std::vector<std::int8_t> spins(n * n, 1);
  spins[4 * n + 4] = -1;
  const auto radius = mono_ball_radius(spins, n);
  // The minority site itself: nearest +1 is adjacent, radius 0.
  EXPECT_EQ(radius[4 * n + 4], 0);
  // A site next to it can only host a radius-0 ball.
  EXPECT_EQ(radius[4 * n + 5], 0);
  // A site 4 away (linf) can host radius 3.
  EXPECT_EQ(radius[4 * n + 8], 3);
}

TEST(MonoBallRadius, HalfAndHalfGrid) {
  const int n = 8;
  std::vector<std::int8_t> spins(n * n);
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      spins[y * n + x] = x < n / 2 ? 1 : -1;
    }
  }
  const auto radius = mono_ball_radius(spins, n);
  // Column 1 is 1 step from the boundary at column 4 (wrapped boundary at
  // column 7 is also distance 2): nearest opposite for x=1 is x=7 at
  // linf distance 2; radius 1.
  EXPECT_EQ(radius[0 * n + 1], 1);
  // Column 0 touches the wrapped opposite column 7: radius 0.
  EXPECT_EQ(radius[0 * n + 0], 0);
}

TEST(MonoBallRadius, BallsAreActuallyMonochromatic) {
  const int n = 11;
  Rng rng(123);
  std::vector<std::int8_t> spins(n * n);
  for (auto& s : spins) s = rng.bernoulli(0.7) ? 1 : -1;
  const auto radius = mono_ball_radius(spins, n);
  for (int cy = 0; cy < n; ++cy) {
    for (int cx = 0; cx < n; ++cx) {
      const std::int32_t r = radius[cy * n + cx];
      ASSERT_GE(r, 0);
      // Every site within radius r must share the center's spin.
      const std::int8_t center = spins[cy * n + cx];
      for (int dy = -r; dy <= r; ++dy) {
        for (int dx = -r; dx <= r; ++dx) {
          EXPECT_EQ(spins[torus_wrap(cy + dy, n) * n + torus_wrap(cx + dx, n)],
                    center);
        }
      }
      // And radius r+1 must fail (unless capped at the max radius).
      if (r < (n - 1) / 2) {
        bool found_opposite = false;
        const int rr = r + 1;
        for (int dy = -rr; dy <= rr && !found_opposite; ++dy) {
          for (int dx = -rr; dx <= rr; ++dx) {
            if (spins[torus_wrap(cy + dy, n) * n + torus_wrap(cx + dx, n)] !=
                center) {
              found_opposite = true;
              break;
            }
          }
        }
        EXPECT_TRUE(found_opposite) << "radius not maximal at " << cx << ","
                                    << cy;
      }
    }
  }
}

}  // namespace
}  // namespace seg
