// An O(1) insert/erase/sample index set over agent ids, used for the
// unhappy / flippable / vacant sets of every lattice model. Sampling must
// be uniform for the dynamics to realize the Poisson-clock law.
//
// The iteration (and therefore sampling) order is a deterministic function
// of the insert/erase history: erase moves the last element into the hole.
// The engines preserve the legacy per-window mutation order exactly so
// that trajectories stay bitwise reproducible across refactors.
#pragma once

#include <cstdint>
#include <vector>

#include "rng/rng.h"

namespace seg {

class AgentSet {
 public:
  explicit AgentSet(std::size_t capacity) : pos_(capacity, kAbsent) {}

  bool contains(std::uint32_t id) const { return pos_[id] != kAbsent; }
  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  // Idempotent: inserting a present id / erasing an absent id is a no-op.
  void insert(std::uint32_t id);
  void erase(std::uint32_t id);

  std::uint32_t sample(Rng& rng) const;
  std::uint32_t at(std::size_t i) const { return items_[i]; }
  const std::vector<std::uint32_t>& items() const { return items_; }

 private:
  static constexpr std::uint32_t kAbsent = 0xffffffffu;
  std::vector<std::uint32_t> items_;
  std::vector<std::uint32_t> pos_;
};

}  // namespace seg
