// STATIC — the static regime: Barmpalias et al. [26] prove that for
// tau < 1/4 (and tau > 3/4) the initial configuration remains static
// w.h.p.; the paper's Fig. 2 regime map leaves [1/4, tau_2] unknown. We
// measure the number of flips and the fraction of agents that ever change
// type across the whole tau range, exhibiting the static -> cascading
// transition.
#include <cstdio>

#include "core/dynamics.h"
#include "core/model.h"
#include "io/table.h"
#include "theory/bounds.h"
#include "theory/constants.h"
#include "util/args.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  const seg::ArgParser args(argc, argv);
  const int n = static_cast<int>(args.get_int("n", 96));
  const int w = static_cast<int>(args.get_int("w", 3));
  const auto trials = static_cast<std::size_t>(args.get_int("trials", 4));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 9));
  const int N = (2 * w + 1) * (2 * w + 1);

  std::printf("== Static vs cascading regimes across tau (w=%d, N=%d, "
              "n=%d) ==\n",
              w, N, n);
  std::printf("boundaries: 1/4 (static below, Barmpalias et al.), tau_2 = "
              "%.5f, tau_1 = %.4f\n\n",
              seg::tau2(), seg::tau1());

  seg::TablePrinter table({"tau", "P(unhappy) t=0", "mean_flips",
                           "flips/n^2", "changed_frac", "verdict"});
  for (const double tau : {0.15, 0.20, 0.24, 0.28, 0.32, 0.3438, 0.36,
                           0.40, 0.4334, 0.46, 0.49}) {
    seg::RunningStats flips, changed;
    for (std::size_t t = 0; t < trials; ++t) {
      seg::ModelParams params{.n = n, .w = w, .tau = tau, .p = 0.5};
      seg::Rng init = seg::Rng::stream(seed + t, 0);
      seg::SchellingModel model(params, init);
      const auto spins0 = model.spins();
      seg::Rng dyn = seg::Rng::stream(seed + t, 1);
      flips.add(static_cast<double>(seg::run_glauber(model, dyn).flips));
      const auto spins1 = model.spins();
      std::size_t diff = 0;
      for (std::size_t i = 0; i < spins0.size(); ++i) {
        diff += spins0[i] != spins1[i];
      }
      changed.add(static_cast<double>(diff) /
                  static_cast<double>(spins0.size()));
    }
    const double per_site =
        flips.mean() / (static_cast<double>(n) * static_cast<double>(n));
    const char* verdict = per_site < 0.01   ? "static"
                          : per_site < 0.25 ? "sparse flips"
                                            : "cascading";
    table.new_row()
        .add(tau, 4)
        .add(seg::unhappy_probability_exact(tau, N), 6)
        .add(flips.mean(), 1)
        .add(per_site, 4)
        .add(changed.mean(), 4)
        .add(verdict);
  }
  table.print();

  std::printf("\nexpected shape: static for tau < 1/4, transition through "
              "[1/4, tau_2], cascading above tau_2.\n");
  return 0;
}
