// Property-based sweeps over the (tau, w) parameter grid: invariants that
// must hold for every run of the process, regardless of parameters.
#include <tuple>

#include <gtest/gtest.h>

#include "core/dynamics.h"
#include "core/model.h"

namespace seg {
namespace {

class ProcessProperties
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(ProcessProperties, TerminatesWithConsistentState) {
  const auto [tau, w] = GetParam();
  const int n = 24;
  ModelParams p{.n = n, .w = w, .tau = tau, .p = 0.5};
  ASSERT_TRUE(p.valid());
  Rng init(static_cast<std::uint64_t>(tau * 1000) * 31 + w);
  SchellingModel m(p, init);

  const std::int64_t lyapunov_initial = m.lyapunov();
  Rng dyn(static_cast<std::uint64_t>(tau * 1000) * 37 + w);
  const RunResult r = run_glauber(m, dyn);

  // 1. The process terminates (Lyapunov argument of Sec. II-A).
  EXPECT_TRUE(r.terminated);
  // 2. At absorption no agent is flippable.
  EXPECT_TRUE(m.flippable_set().empty());
  for (std::uint32_t id = 0; id < m.agent_count(); ++id) {
    EXPECT_FALSE(m.is_flippable(id));
  }
  // 3. For tau <= 1/2, unhappy implies flippable, so all agents are happy.
  if (tau <= 0.5) {
    EXPECT_EQ(m.count_unhappy(), 0u);
  }
  // 4. The Lyapunov function never decreased in aggregate.
  EXPECT_GE(m.lyapunov(), lyapunov_initial);
  // 5. Internal caches still agree with a from-scratch recount.
  EXPECT_TRUE(m.check_invariants());
  // 6. Continuous time is finite and nonnegative.
  EXPECT_GE(r.final_time, 0.0);
}

TEST_P(ProcessProperties, FlipCountBoundedByLyapunovBudget) {
  // Each flip raises the (integer) Lyapunov function by at least 1 and its
  // maximum is n^2 * N, so flips <= n^2 N. A crude but rigorous bound.
  const auto [tau, w] = GetParam();
  const int n = 24;
  ModelParams p{.n = n, .w = w, .tau = tau, .p = 0.5};
  Rng init(static_cast<std::uint64_t>(tau * 10000) + w * 131);
  SchellingModel m(p, init);
  Rng dyn(static_cast<std::uint64_t>(tau * 10000) + w * 137);
  const RunResult r = run_glauber(m, dyn);
  const auto budget = static_cast<std::uint64_t>(n) * n *
                      static_cast<std::uint64_t>(p.neighborhood_size());
  EXPECT_LE(r.flips, budget);
}

INSTANTIATE_TEST_SUITE_P(
    TauWSweep, ProcessProperties,
    ::testing::Combine(
        ::testing::Values(0.15, 0.3, 0.36, 0.42, 0.45, 0.49, 0.5, 0.55,
                          0.64, 0.75),
        ::testing::Values(1, 2, 3)));

class DiscreteEquivalence : public ::testing::TestWithParam<double> {};

TEST_P(DiscreteEquivalence, DiscreteChainSharesAbsorptionProperties) {
  const double tau = GetParam();
  ModelParams p{.n = 24, .w = 2, .tau = tau, .p = 0.5};
  Rng init(static_cast<std::uint64_t>(tau * 1e6));
  SchellingModel m(p, init);
  Rng dyn(static_cast<std::uint64_t>(tau * 1e6) + 1);
  const RunResult r = run_discrete(m, dyn);
  EXPECT_TRUE(r.terminated);
  EXPECT_TRUE(m.flippable_set().empty());
  if (tau <= 0.5) {
    EXPECT_EQ(m.count_unhappy(), 0u);
  }
  EXPECT_TRUE(m.check_invariants());
}

INSTANTIATE_TEST_SUITE_P(Taus, DiscreteEquivalence,
                         ::testing::Values(0.3, 0.4, 0.45, 0.55, 0.6));

class InitialBias : public ::testing::TestWithParam<double> {};

TEST_P(InitialBias, PlusFractionTracksP) {
  const double prob = GetParam();
  ModelParams params{.n = 48, .w = 2, .tau = 0.45, .p = prob};
  Rng rng(static_cast<std::uint64_t>(prob * 1e9));
  SchellingModel m(params, rng);
  EXPECT_NEAR(m.plus_fraction(), prob, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Ps, InitialBias,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9));

}  // namespace
}  // namespace seg
