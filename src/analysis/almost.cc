#include "analysis/almost.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/model.h"
#include "analysis/regions.h"
#include "grid/prefix_sum.h"

namespace seg {

double almost_mono_threshold(double eps, int neighborhood_size) {
  assert(eps > 0.0 && neighborhood_size > 0);
  return std::exp(-eps * static_cast<double>(neighborhood_size));
}

AlmostMonoField almost_mono_field(const std::vector<std::int8_t>& spins,
                                  int n, double ratio_threshold,
                                  int max_radius) {
  assert(spins.size() == static_cast<std::size_t>(n) * n);
  if (max_radius <= 0) max_radius = (n - 1) / 2;
  max_radius = std::min(max_radius, (n - 1) / 2);

  AlmostMonoField field;
  field.n = n;
  field.ratio_threshold = ratio_threshold;
  field.radius.assign(spins.size(), 0);

  std::vector<std::int32_t> plus_indicator(spins.size());
  for (std::size_t i = 0; i < spins.size(); ++i) {
    plus_indicator[i] = spins[i] > 0 ? 1 : 0;
  }
  const PrefixSum2D prefix(plus_indicator, n);

  for (int cy = 0; cy < n; ++cy) {
    for (int cx = 0; cx < n; ++cx) {
      // Largest r whose ball satisfies the ratio test. The property is not
      // monotone in r, so scan all radii and keep the largest passing one.
      std::int32_t best = 0;  // radius-0 ball always passes (ratio 0)
      for (int r = 1; r <= max_radius; ++r) {
        const std::int64_t size = ball_size(r);
        const std::int64_t plus = prefix.box_sum(cx, cy, r);
        const std::int64_t minority = std::min(plus, size - plus);
        const std::int64_t majority = size - minority;
        if (static_cast<double>(minority) <=
            ratio_threshold * static_cast<double>(majority)) {
          best = r;
        }
      }
      field.radius[static_cast<std::size_t>(cy) * n + cx] = best;
    }
  }
  return field;
}

AlmostMonoField almost_mono_field(const SchellingModel& model, double eps,
                                  int max_radius) {
  return almost_mono_field(
      model.spins(), model.side(),
      almost_mono_threshold(eps, model.neighborhood_size()), max_radius);
}

std::int64_t almost_region_size_of(const AlmostMonoField& field, Point u) {
  const int n = field.n;
  std::int64_t best = 1;
  for (int cy = 0; cy < n; ++cy) {
    for (int cx = 0; cx < n; ++cx) {
      const std::int32_t r =
          field.radius[static_cast<std::size_t>(cy) * n + cx];
      if (r <= 0) continue;
      if (torus_linf(Point{cx, cy}, u, n) <= r) {
        best = std::max(best, ball_size(r));
      }
    }
  }
  return best;
}

double mean_almost_region_size(const AlmostMonoField& field,
                               std::size_t samples, Rng& rng) {
  assert(samples > 0);
  const auto total =
      static_cast<std::uint64_t>(field.n) * static_cast<std::uint64_t>(field.n);
  double sum = 0.0;
  for (std::size_t s = 0; s < samples; ++s) {
    const auto id = rng.uniform_below(total);
    const Point u{static_cast<int>(id % field.n),
                  static_cast<int>(id / field.n)};
    sum += static_cast<double>(almost_region_size_of(field, u));
  }
  return sum / static_cast<double>(samples);
}

std::int64_t largest_almost_region(const AlmostMonoField& field) {
  std::int32_t best = 0;
  for (const std::int32_t r : field.radius) best = std::max(best, r);
  return ball_size(best);
}

}  // namespace seg
