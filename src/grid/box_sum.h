// Separable sliding-window box sums on the torus.
//
// Given per-site integer values v(x, y), computes for every site the sum of
// v over the l-infinity ball of radius w (a (2w+1) x (2w+1) box, wrapping).
// Two passes of 1-D sliding windows give O(n^2) total work independent of
// w — this is how the Schelling model initializes its per-agent neighbor
// counts on large grids (n = 1000, w = 10 in the paper's Fig. 1).
#pragma once

#include <cstdint>
#include <vector>

namespace seg {

// values.size() must be n*n (row-major, index = y*n + x); requires
// 2*w + 1 <= n. Returns the box sums in the same layout.
std::vector<std::int32_t> box_sum_torus(const std::vector<std::int32_t>& values,
                                        int n, int w);

// Convenience overload for 0/1 grids stored as bytes.
std::vector<std::int32_t> box_sum_torus(const std::vector<std::uint8_t>& values,
                                        int n, int w);

}  // namespace seg
