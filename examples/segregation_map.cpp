// Figure-1-style visualization: runs the process and writes PPM frames
// using the paper's palette (green/blue happy, white/yellow unhappy).
//
//   ./segregation_map --n 256 --w 10 --tau 0.42 --frames 4 --out out
//
// Reproduces the four panels of the paper's Figure 1 at a configurable
// scale (the paper uses n = 1000, w = 10, tau = 0.42; pass --n 1000 for
// the full-size run).
#include <cstdio>
#include <string>
#include <sys/stat.h>

#include "core/dynamics.h"
#include "core/model.h"
#include "io/ppm.h"
#include "util/args.h"

namespace {

void write_frame(const seg::SchellingModel& model, const std::string& path) {
  const int n = model.side();
  seg::PpmImage img(n, n);
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      const std::uint32_t id = model.id_of(x, y);
      img.set(x, y, seg::fig1_color(model.spin(id), model.is_happy(id)));
    }
  }
  if (!img.write_file(path)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
  } else {
    std::printf("wrote %s (happy %.1f%%)\n", path.c_str(),
                100.0 * model.happy_fraction());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const seg::ArgParser args(argc, argv);
  seg::ModelParams params;
  params.n = static_cast<int>(args.get_int("n", 256));
  params.w = static_cast<int>(args.get_int("w", 10));
  params.tau = args.get_double("tau", 0.42);
  params.p = args.get_double("p", 0.5);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const auto frames = static_cast<int>(args.get_int("frames", 4));
  const std::string out_dir = args.get_string("out", "out");
  if (!params.valid() || frames < 2) {
    std::fprintf(stderr, "invalid parameters\n");
    return 1;
  }
  ::mkdir(out_dir.c_str(), 0755);

  seg::Rng init = seg::Rng::stream(seed, 0);
  seg::SchellingModel model(params, init);
  write_frame(model, out_dir + "/frame0.ppm");

  // Estimate the total flip budget with a probe run? Cheaper: run in
  // chunks and emit a frame after each chunk until absorption; the chunk
  // size is a fraction of the expected O(n^2) activity.
  seg::Rng dyn = seg::Rng::stream(seed, 1);
  const std::uint64_t chunk = static_cast<std::uint64_t>(params.n) *
                              static_cast<std::uint64_t>(params.n) / 4;
  int frame = 1;
  for (; frame < frames; ++frame) {
    seg::RunOptions opt;
    opt.max_flips = chunk;
    const seg::RunResult r = seg::run_glauber(model, dyn, opt);
    write_frame(model, out_dir + "/frame" + std::to_string(frame) + ".ppm");
    if (r.terminated) break;
  }
  if (!model.terminated()) {
    const seg::RunResult r = seg::run_glauber(model, dyn);
    std::printf("ran to absorption with %llu more flips\n",
                static_cast<unsigned long long>(r.flips));
    write_frame(model, out_dir + "/frame_final.ppm");
  }
  return 0;
}
