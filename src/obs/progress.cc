#include "obs/progress.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/telemetry.h"

namespace seg::obs {

namespace {

using Clock = std::chrono::steady_clock;

std::string format_rate(double v) {
  char buf[32];
  if (v >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1fM", v / 1e6);
  } else if (v >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fk", v / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f", v);
  }
  return buf;
}

}  // namespace

struct ProgressReporter::Impl {
  ProgressOptions options;
  std::atomic<std::size_t> done{0};
  std::atomic<std::size_t> total{0};
  Clock::time_point start = Clock::now();

  std::FILE* jsonl = nullptr;
  std::mutex emit_mutex;
  std::atomic<std::size_t> records{0};
  mutable std::mutex latest_mutex;
  std::string latest = "{}";  // newest record, no trailing newline
  bool tty = false;
  bool wrote_tty_line = false;

  // Previous sample, for instantaneous rates (guarded by emit_mutex).
  double prev_t = 0.0;
  std::size_t prev_done = 0;
  std::uint64_t prev_flips = 0;
  std::map<std::string, std::uint64_t> prev_busy;

  // Ticker.
  std::thread ticker;
  std::mutex stop_mutex;
  std::condition_variable stop_cv;
  bool stopping = false;
  bool finished = false;

  double elapsed_s() const {
    return std::chrono::duration<double>(Clock::now() - start).count();
  }

  void emit(bool final) {
    std::lock_guard<std::mutex> lock(emit_mutex);
    const double t = elapsed_s();
    const std::size_t done_now = done.load(std::memory_order_relaxed);
    const std::size_t total_now = total.load(std::memory_order_relaxed);
    Registry& reg = Registry::instance();
    const std::uint64_t flips = reg.counter_value("engine.flips");

    const double dt = std::max(1e-9, t - prev_t);
    const double replicas_per_s =
        static_cast<double>(done_now - prev_done) / dt;
    const double flips_per_s =
        static_cast<double>(flips - prev_flips) / dt;
    // ETA from the overall average rate — steadier than the
    // instantaneous one, and defined from the first completed replica.
    const double overall_rate = done_now > 0 ? done_now / std::max(t, 1e-9)
                                             : 0.0;
    const double eta_s =
        overall_rate > 0.0 && total_now >= done_now
            ? static_cast<double>(total_now - done_now) / overall_rate
            : -1.0;

    // Per-worker utilization from the pool busy counters.
    std::vector<double> workers;
    double util_sum = 0.0;
    for (const auto& [name, busy_us] :
         reg.counters_with_prefix(options.worker_prefix)) {
      const auto it = prev_busy.find(name);
      const std::uint64_t prev = it == prev_busy.end() ? 0 : it->second;
      const double u = std::clamp(
          static_cast<double>(busy_us - prev) / (dt * 1e6), 0.0, 1.0);
      workers.push_back(u);
      util_sum += u;
      prev_busy[name] = busy_us;
    }
    const std::int64_t conflict_depth =
        reg.gauge_value("dynamics.conflict_queue_depth");
    const std::int64_t live_mag = reg.gauge_value("streaming.magnetization");
    const std::int64_t live_clusters = reg.gauge_value("streaming.clusters");
    const std::int64_t live_interface =
        reg.gauge_value("streaming.interface");
    const std::int64_t open_points = reg.gauge_value("campaign.open_points");
    const double max_ci = static_cast<double>(reg.gauge_value(
                              "campaign.max_ci_half_width_ppm")) /
                          1e6;

    prev_t = t;
    prev_done = done_now;
    prev_flips = flips;

    // The record is built on every tick — even with no progress file —
    // because the metrics endpoint serves the newest one as /progress.
    std::string line;
    {
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "{\"t\":%.3f,\"done\":%zu,\"total\":%zu,"
                    "\"replicas_per_s\":%.6g,\"flips_per_s\":%.6g,"
                    "\"eta_s\":%.3f,\"workers\":[",
                    t, done_now, total_now, replicas_per_s, flips_per_s,
                    eta_s);
      line = buf;
      for (std::size_t i = 0; i < workers.size(); ++i) {
        std::snprintf(buf, sizeof(buf), "%s%.3f", i == 0 ? "" : ",",
                      workers[i]);
        line += buf;
      }
      std::snprintf(buf, sizeof(buf),
                    "],\"conflict_queue_depth\":%lld,"
                    "\"streaming\":{\"magnetization\":%lld,"
                    "\"clusters\":%lld,\"interface\":%lld}",
                    static_cast<long long>(conflict_depth),
                    static_cast<long long>(live_mag),
                    static_cast<long long>(live_clusters),
                    static_cast<long long>(live_interface));
      line += buf;
      if (options.adaptive) {
        std::snprintf(buf, sizeof(buf),
                      ",\"adaptive\":{\"open_points\":%lld,"
                      "\"max_ci_half_width\":%.6g}",
                      static_cast<long long>(open_points), max_ci);
        line += buf;
      }
      line += "}";
    }
    {
      std::lock_guard<std::mutex> latest_lock(latest_mutex);
      latest = line;
    }
    if (jsonl != nullptr) {
      line += "\n";
      std::fwrite(line.data(), 1, line.size(), jsonl);
      std::fflush(jsonl);
      records.fetch_add(1, std::memory_order_relaxed);
    }

    if (options.stderr_line) {
      const double pct =
          total_now > 0 ? 100.0 * static_cast<double>(done_now) /
                              static_cast<double>(total_now)
                        : 100.0;
      char eta_buf[32];
      if (eta_s >= 0.0) {
        std::snprintf(eta_buf, sizeof(eta_buf), "%.0fs", eta_s);
      } else {
        std::snprintf(eta_buf, sizeof(eta_buf), "?");
      }
      char open_buf[40] = "";
      if (options.adaptive) {
        std::snprintf(open_buf, sizeof(open_buf), " | open %lld",
                      static_cast<long long>(open_points));
      }
      char line[256];
      std::snprintf(
          line, sizeof(line),
          "campaign %zu/%zu (%.1f%%) | %s rep/s | %s flips/s | "
          "util %.0f%% (%zu) | ETA %s%s",
          done_now, total_now, pct, format_rate(replicas_per_s).c_str(),
          format_rate(flips_per_s).c_str(),
          workers.empty() ? 0.0 : 100.0 * util_sum / workers.size(),
          workers.size(), eta_buf, open_buf);
      if (tty) {
        // In-place line; pad to wipe a longer previous render.
        std::fprintf(stderr, "\r%-100s", line);
        wrote_tty_line = true;
        if (final) std::fputc('\n', stderr);
      } else {
        std::fprintf(stderr, "%s\n", line);
      }
      std::fflush(stderr);
    }
  }

  void ticker_loop() {
    const auto interval = std::chrono::duration<double>(
        std::max(0.001, options.interval_s));
    std::unique_lock<std::mutex> lock(stop_mutex);
    while (!stop_cv.wait_for(lock, interval, [this] { return stopping; })) {
      lock.unlock();
      emit(/*final=*/false);
      lock.lock();
    }
  }
};

ProgressReporter::ProgressReporter(std::size_t total,
                                   ProgressOptions options)
    : impl_(new Impl()) {
  impl_->options = std::move(options);
  impl_->total.store(total, std::memory_order_relaxed);
  impl_->tty = impl_->options.force_tty > 0 ||
               (impl_->options.force_tty == 0 && isatty(fileno(stderr)));
  if (!impl_->options.jsonl_path.empty()) {
    impl_->jsonl = std::fopen(impl_->options.jsonl_path.c_str(), "w");
    if (impl_->jsonl == nullptr) {
      std::fprintf(stderr, "warning: cannot open progress file %s\n",
                   impl_->options.jsonl_path.c_str());
    }
  }
  impl_->ticker = std::thread([this] { impl_->ticker_loop(); });
}

ProgressReporter::~ProgressReporter() {
  finish();
  delete impl_;
}

void ProgressReporter::replica_done(std::size_t done, std::size_t total) {
  impl_->done.store(done, std::memory_order_relaxed);
  impl_->total.store(total, std::memory_order_relaxed);
}

std::function<void(std::size_t, std::size_t)> ProgressReporter::callback() {
  return [this](std::size_t done, std::size_t total) {
    replica_done(done, total);
  };
}

void ProgressReporter::finish() {
  {
    std::lock_guard<std::mutex> lock(impl_->stop_mutex);
    if (impl_->finished) return;
    impl_->finished = true;
    impl_->stopping = true;
  }
  impl_->stop_cv.notify_all();
  if (impl_->ticker.joinable()) impl_->ticker.join();
  impl_->emit(/*final=*/true);
  if (impl_->jsonl != nullptr) {
    std::fclose(impl_->jsonl);
    impl_->jsonl = nullptr;
  }
}

std::size_t ProgressReporter::records_written() const {
  return impl_->records.load(std::memory_order_relaxed);
}

std::string ProgressReporter::latest_record() const {
  std::lock_guard<std::mutex> lock(impl_->latest_mutex);
  return impl_->latest;
}

}  // namespace seg::obs
