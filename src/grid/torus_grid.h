// A dense n x n grid with toroidal indexing. Every site holds a value of
// type T; the Schelling model uses T = int8_t spins, the percolation
// substrate uses T = uint8_t open/closed flags.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

#include "grid/point.h"

namespace seg {

template <typename T>
class TorusGrid {
 public:
  TorusGrid() = default;
  explicit TorusGrid(int n, T fill = T{})
      : n_(n), cells_(static_cast<std::size_t>(n) * n, fill) {
    assert(n > 0);
  }

  int side() const { return n_; }
  std::size_t size() const { return cells_.size(); }

  // Raw (already in-range) access, the hot path.
  T& at_index(std::size_t i) { return cells_[i]; }
  const T& at_index(std::size_t i) const { return cells_[i]; }

  std::size_t index_of(int x, int y) const {
    assert(x >= 0 && x < n_ && y >= 0 && y < n_);
    return static_cast<std::size_t>(y) * n_ + x;
  }

  // Wrapping access: any integer coordinates are accepted.
  T& at(int x, int y) { return cells_[wrapped_index(x, y)]; }
  const T& at(int x, int y) const { return cells_[wrapped_index(x, y)]; }
  T& at(Point p) { return at(p.x, p.y); }
  const T& at(Point p) const { return at(p.x, p.y); }

  std::size_t wrapped_index(int x, int y) const {
    return static_cast<std::size_t>(torus_wrap(y, n_)) * n_ +
           torus_wrap(x, n_);
  }

  Point point_of(std::size_t i) const {
    return Point{static_cast<int>(i % n_), static_cast<int>(i / n_)};
  }

  void fill(T v) { cells_.assign(cells_.size(), v); }

  const std::vector<T>& data() const { return cells_; }
  std::vector<T>& data() { return cells_; }

  friend bool operator==(const TorusGrid&, const TorusGrid&) = default;

 private:
  int n_ = 0;
  std::vector<T> cells_;
};

// Calls fn(x, y) for every site of the l-infinity ball of radius r centered
// at (cx, cy), with coordinates wrapped into [0, n). Visits (2r+1)^2 sites;
// requires 2r+1 <= n so no site is visited twice.
template <typename Fn>
void for_each_in_ball(int cx, int cy, int r, int n, Fn&& fn) {
  assert(2 * r + 1 <= n);
  for (int dy = -r; dy <= r; ++dy) {
    const int y = torus_wrap(cy + dy, n);
    for (int dx = -r; dx <= r; ++dx) {
      const int x = torus_wrap(cx + dx, n);
      fn(x, y);
    }
  }
}

}  // namespace seg
