#include "grid/box_sum.h"

#include <cassert>

#include "grid/point.h"

namespace seg {

namespace {

// Horizontal pass: out(x, y) = sum_{dx=-w..w} in(wrap(x+dx), y).
void horizontal_window(const std::vector<std::int32_t>& in, int n, int w,
                       std::vector<std::int32_t>& out) {
  for (int y = 0; y < n; ++y) {
    const std::int32_t* row = in.data() + static_cast<std::size_t>(y) * n;
    std::int32_t* orow = out.data() + static_cast<std::size_t>(y) * n;
    std::int32_t acc = 0;
    for (int dx = -w; dx <= w; ++dx) acc += row[torus_wrap(dx, n)];
    orow[0] = acc;
    for (int x = 1; x < n; ++x) {
      acc += row[torus_wrap(x + w, n)];
      acc -= row[torus_wrap(x - 1 - w, n)];
      orow[x] = acc;
    }
  }
}

// Vertical pass: out(x, y) = sum_{dy=-w..w} in(x, wrap(y+dy)).
void vertical_window(const std::vector<std::int32_t>& in, int n, int w,
                     std::vector<std::int32_t>& out) {
  std::vector<std::int32_t> acc(static_cast<std::size_t>(n), 0);
  for (int dy = -w; dy <= w; ++dy) {
    const std::int32_t* row =
        in.data() + static_cast<std::size_t>(torus_wrap(dy, n)) * n;
    for (int x = 0; x < n; ++x) acc[x] += row[x];
  }
  for (int x = 0; x < n; ++x) out[x] = acc[x];
  for (int y = 1; y < n; ++y) {
    const std::int32_t* add =
        in.data() + static_cast<std::size_t>(torus_wrap(y + w, n)) * n;
    const std::int32_t* sub =
        in.data() + static_cast<std::size_t>(torus_wrap(y - 1 - w, n)) * n;
    std::int32_t* orow = out.data() + static_cast<std::size_t>(y) * n;
    for (int x = 0; x < n; ++x) {
      acc[x] += add[x] - sub[x];
      orow[x] = acc[x];
    }
  }
}

}  // namespace

std::vector<std::int32_t> box_sum_torus(const std::vector<std::int32_t>& values,
                                        int n, int w) {
  assert(n > 0 && w >= 0 && 2 * w + 1 <= n);
  assert(values.size() == static_cast<std::size_t>(n) * n);
  std::vector<std::int32_t> tmp(values.size());
  std::vector<std::int32_t> out(values.size());
  horizontal_window(values, n, w, tmp);
  vertical_window(tmp, n, w, out);
  return out;
}

std::vector<std::int32_t> box_sum_torus(const std::vector<std::uint8_t>& values,
                                        int n, int w) {
  std::vector<std::int32_t> ints(values.begin(), values.end());
  return box_sum_torus(ints, n, w);
}

}  // namespace seg
