// Domain decomposition of the torus for sharded parallel dynamics.
//
// A ShardLayout partitions the n x n torus into `shards` axis-aligned
// bands — row stripes, or a rows x cols checkerboard of blocks — and
// classifies every site as *interior* or *boundary* with respect to the
// interaction margin w (the model's neighborhood radius). A site is
// interior iff its whole l-infinity window of radius w lies inside its own
// shard; equivalently, boundary sites are those within w of a band edge.
// A dimension that is not cut (a single band spanning the whole ring) has
// no boundary in that dimension, so the 1-shard layout has no boundary at
// all and sharded dynamics degenerate exactly to the serial process.
//
// The isolation guarantee the parallel sweep engine builds on: a flip at
// an interior site of shard s reads and writes only sites of shard s
// (its window is contained in s by definition), and conversely no other
// shard's interior flip can touch any site of s. Boundary flips are the
// only cross-shard interactions and are deferred by the sweep engine into
// a serial reconciliation queue.
//
// Stripes vs checkerboard: stripes own whole rows, so window spans never
// wrap mid-shard and the boundary fraction is ~2w/(n/k); a checkerboard
// cuts both axes, doubling the boundary fraction for the same shard count
// but keeping shards square-ish — useful when k exceeds n/(2w+1) rows or
// when cache locality of row-major stripes stops mattering (huge w).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace seg {

enum class ShardMode { kStripes, kCheckerboard };

class ShardLayout {
 public:
  // Trivial layout: one shard covering everything, no boundary.
  ShardLayout() = default;

  // `shards` row stripes of near-equal height over an n x n torus with
  // interaction margin w. shards is clamped to [1, n].
  static ShardLayout stripes(int n, int w, int shards);

  // rows x cols blocks. rows clamped to [1, n], cols to [1, n].
  static ShardLayout checkerboard(int n, int w, int rows, int cols);

  // Largest stripe count for which every stripe still has interior rows
  // (height >= 2w + 1). More stripes remain *correct* (an all-boundary
  // stripe just defers every flip) but stop scaling.
  static int max_stripes(int n, int w) {
    const int k = n / (2 * w + 1);
    return k < 1 ? 1 : k;
  }

  int shard_count() const { return shard_count_; }
  bool trivial() const { return shard_count_ == 1; }
  ShardMode mode() const { return mode_; }
  int side() const { return n_; }    // 0 for the trivial layout
  int margin() const { return w_; }  // interaction radius the layout is for

  // Shard owning site id (row-major id over the n*n torus).
  int shard_of(std::uint32_t id) const {
    if (trivial()) return 0;
    return row_shard_[id / static_cast<std::uint32_t>(n_)] +
           col_shard_[id % static_cast<std::uint32_t>(n_)];
  }

  // True iff the window of radius `margin()` around id leaves id's shard.
  bool boundary(std::uint32_t id) const {
    if (trivial()) return false;
    return (row_boundary_[id / static_cast<std::uint32_t>(n_)] |
            col_boundary_[id % static_cast<std::uint32_t>(n_)]) != 0;
  }

  // Total number of boundary sites (0 for the trivial layout).
  std::size_t boundary_site_count() const;

  // {first id, id count} of the smallest row-aligned id range containing
  // every site of `shard` — exact for stripes (whole rows), the row-band
  // bounding range for checkerboard blocks. Engines size their per-shard
  // set slices to this window, keeping sharded set memory O(sites) for
  // stripes instead of O(sites * shards).
  std::pair<std::uint32_t, std::uint32_t> id_window(int shard) const;

  // True iff this layout partitions an n x n torus with margin w — the
  // compatibility check engines run at construction.
  bool compatible(int n, int w) const {
    return trivial() || (n_ == n && w_ == w);
  }

  // True iff some `block`-aligned column group spans two column bands —
  // i.e. a packed spin word of `block` bits would hold sites of two
  // shards, forcing the packed engine onto atomic bit flips. Stripe
  // layouts never split columns; checkerboards do whenever a column cut
  // lands off `block` alignment.
  bool splits_aligned_columns(int block) const;

 private:
  static std::vector<int> band_starts(int n, int bands);
  static void classify_axis(int n, int w, int bands,
                            std::vector<std::uint32_t>* band_of,
                            std::vector<std::uint8_t>* boundary);

  int n_ = 0;
  int w_ = 0;
  int shard_count_ = 1;
  int row_bands_ = 1;
  int col_bands_ = 1;
  ShardMode mode_ = ShardMode::kStripes;
  // shard_of(id) = row_shard_[y] + col_shard_[x]; row_shard_ is
  // premultiplied by the column band count so the lookup is one add.
  std::vector<std::uint32_t> row_shard_;
  std::vector<std::uint32_t> col_shard_;
  std::vector<std::uint8_t> row_boundary_;
  std::vector<std::uint8_t> col_boundary_;
};

}  // namespace seg
