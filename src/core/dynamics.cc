#include "core/dynamics.h"

#include <cassert>
#include <vector>

namespace seg {

namespace {

void maybe_snapshot(const RunOptions& options, const SchellingModel& model,
                    std::uint64_t flips, double time) {
  if (options.on_snapshot && options.snapshot_every > 0 &&
      flips % options.snapshot_every == 0) {
    options.on_snapshot(model, flips, time);
  }
}

void final_snapshot(const RunOptions& options, const SchellingModel& model,
                    std::uint64_t flips, double time) {
  if (options.on_snapshot) options.on_snapshot(model, flips, time);
}

}  // namespace

RunResult run_glauber(SchellingModel& model, Rng& rng,
                      const RunOptions& options) {
  RunResult result;
  while (!model.terminated()) {
    if (result.flips >= options.max_flips) break;
    // Each of the |flippable| agents rings at rate 1 and an effective ring
    // of a flippable agent immediately flips it; rings of other agents do
    // not change the state. The time to the next effective flip is
    // therefore Exp(|flippable|) and the flipping agent is uniform over
    // the flippable set.
    const double dt =
        rng.exponential(static_cast<double>(model.flippable_set().size()));
    if (result.final_time + dt > options.max_time) {
      result.final_time = options.max_time;
      final_snapshot(options, model, result.flips, result.final_time);
      return result;
    }
    result.final_time += dt;
    const std::uint32_t id = model.flippable_set().sample(rng);
    model.flip(id);
    ++result.flips;
    maybe_snapshot(options, model, result.flips, result.final_time);
  }
  result.terminated = model.terminated();
  final_snapshot(options, model, result.flips, result.final_time);
  return result;
}

RunResult run_discrete(SchellingModel& model, Rng& rng,
                       const RunOptions& options) {
  RunResult result;
  // Discrete time: pick an unhappy agent uniformly; flip iff it would
  // become happy. Non-flippable unhappy agents (possible only for
  // tau > 1/2) consume a step without changing state, exactly as stated in
  // the paper. The chain absorbs when no unhappy agent is flippable.
  while (!model.terminated()) {
    if (result.flips >= options.max_flips) break;
    const std::uint32_t id = model.unhappy_set().sample(rng);
    result.final_time += 1.0;
    if (!model.is_flippable(id)) continue;
    model.flip(id);
    ++result.flips;
    maybe_snapshot(options, model, result.flips, result.final_time);
  }
  result.terminated = model.terminated();
  final_snapshot(options, model, result.flips, result.final_time);
  return result;
}

RunResult run_synchronous(SchellingModel& model, std::uint64_t max_rounds,
                          const RunOptions& options) {
  RunResult result;
  std::vector<std::int8_t> prev_spins;
  std::vector<std::int8_t> prev_prev_spins;
  std::vector<std::uint32_t> batch;
  for (std::uint64_t round = 0; round < max_rounds; ++round) {
    if (model.terminated()) break;
    prev_prev_spins = std::move(prev_spins);
    prev_spins = model.spins();

    // Synchronous flips are unconditional and commute within a round, so
    // the committed state does not depend on batch order. With no per-flip
    // observer attached we build the batch by a row-wise scan of the cached
    // membership codes (one contiguous byte test per site — vectorizable)
    // instead of walking the flippable set's insertion-ordered storage.
    // An observer pins the legacy set order so its event stream is stable.
    batch.clear();
    if (model.flip_observer() == nullptr) {
      const auto count = static_cast<std::uint32_t>(model.agent_count());
      for (std::uint32_t id = 0; id < count; ++id) {
        if (model.flippable_cached(id)) batch.push_back(id);
      }
    } else {
      batch.assign(model.flippable_set().items().begin(),
                   model.flippable_set().items().end());
    }
    for (const std::uint32_t id : batch) {
      model.flip(id);  // unconditional: synchronous rule commits the batch
      ++result.flips;
    }
    ++result.rounds;
    result.final_time += 1.0;
    maybe_snapshot(options, model, result.flips, result.final_time);
    if (!prev_prev_spins.empty() && model.spins() == prev_prev_spins) {
      result.cycle_detected = true;  // period-2 oscillation
      break;
    }
  }
  result.terminated = model.terminated();
  final_snapshot(options, model, result.flips, result.final_time);
  return result;
}

}  // namespace seg
