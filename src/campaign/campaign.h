// The campaign engine: fans the replicas of a scenario grid out over a
// thread pool and aggregates per-replica metrics online.
//
// Determinism contract: replica g (the global index point *
// layout_replicas + r) draws every random bit from a stream derived as
// mix_seed(campaign seed, g), and the per-point aggregates are folded in
// global replica order after all replicas finish. The aggregated result
// is therefore bitwise identical at any thread count, and identical
// whether the campaign ran uninterrupted or was checkpointed, killed and
// resumed.
//
// Adaptive campaigns (spec.stop.rule != kNone): workers claim replicas
// from a shared queue instead of running a fixed count per point. Each
// point folds its completed replicas in replica order through a
// SequentialStopper; the moment the rule fires the point stops claiming
// new replicas and the freed worker slots flow to the open point with
// the widest confidence interval. Because the stopper folds in replica
// order — never completion order — the decision (replica count and
// bound, the StopDecision) is a pure function of the campaign seed:
// identical at any thread count and across checkpoint/resume. Replicas
// already in flight when a rule fires still complete and are recorded in
// the checkpoint, but are excluded from the aggregates, which contain
// exactly the first `replicas_used` replicas of each point.
//
// Checkpointing: when a checkpoint path is set, the engine periodically
// persists the raw per-replica metric vectors (bit-exact) plus the spec
// hash and the stop-decision trace; a resumed run loads them, replays
// the decisions from the raw rows (refusing the checkpoint if the replay
// disagrees with the stored trace), skips the completed replicas, and
// produces the same fold.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "campaign/scenario.h"
#include "util/stats.h"

namespace seg {

// Computes the metric vector for one replica of one scenario point. The
// vector must be parallel to the campaign's metric names. `replica` is the
// 0-based replica index within the point; `replica_seed` is the stream
// seed derived from the campaign seed and the global replica index — all
// randomness must come from it.
using ReplicaFn = std::function<std::vector<double>(
    const ScenarioPoint& point, std::size_t replica,
    std::uint64_t replica_seed)>;

struct CampaignOptions {
  std::size_t threads = 1;  // 0 = hardware concurrency

  // Empty disables checkpointing. Writes are atomic (tmp + rename).
  std::string checkpoint_path;
  // Replicas completed between checkpoint writes.
  std::size_t checkpoint_every = 64;
  // Load checkpoint_path (if present and matching) before running.
  bool resume = false;

  // If nonzero, stop scheduling new replicas once this many have finished
  // in this run (already-running replicas still complete). Used to bound
  // a run's work and to exercise the checkpoint/resume path; the result
  // is marked incomplete, and under a stopping rule the unresolved points
  // are reported kOpen (budget-exhausted, resumable) — never as stopped.
  std::size_t max_new_replicas = 0;

  // Invoked (under the engine lock) as replicas finish.
  std::function<void(std::size_t done, std::size_t total)> progress;
};

// How a point's replica budget resolved.
enum class PointState {
  kFixed,    // fixed-replica campaign: ran exactly spec.replicas
  kStopped,  // the stopping rule fired at replicas_used replicas
  kCapped,   // folded every replica up to the per-point cap, no fire
  kOpen,     // unresolved: run interrupted or max_new_replicas exhausted
};

const char* point_state_name(PointState state);

struct PointResult {
  ScenarioPoint point;
  // Parallel to CampaignResult::metric_names; each accumulator holds the
  // point's completed replicas, folded in replica order. Under a stopping
  // rule, exactly the first replicas_used replicas — in-flight stragglers
  // recorded after the rule fired are excluded.
  std::vector<RunningStats> stats;

  PointState state = PointState::kFixed;
  // Replicas folded into `stats` (the decision's count when kStopped).
  std::size_t replicas_used = 0;
  // Confidence-sequence half-width after the last folded replica: the
  // decision bound when kStopped, the current width when kCapped/kOpen,
  // +infinity when kFixed or nothing folded yet.
  double stop_bound = 0.0;
};

struct CampaignResult {
  std::uint64_t seed = 0;
  std::vector<std::string> metric_names;
  std::vector<PointResult> points;
  std::size_t replicas_done = 0;     // completed, including resumed
  std::size_t replicas_resumed = 0;  // loaded from a checkpoint
  // Complete = every point resolved: all replicas done (fixed), or every
  // point kStopped/kCapped (adaptive).
  bool complete = false;

  // Adaptive campaigns: the stop decisions, ordered by point index —
  // deterministic for a given seed and spec, invariant to thread count
  // and checkpoint/resume (tests/test_campaign_adaptive.cc pins this).
  // Empty for fixed-replica campaigns.
  std::vector<StopDecision> decision_trace;
  // True if any checkpoint write failed (also warned on stderr once);
  // the run's results are still valid but a kill would lose them.
  bool checkpoint_write_failed = false;

  // nullptr if the point index or metric name is unknown.
  const RunningStats* stats_for(std::size_t point_index,
                                const std::string& metric) const;
};

// Stream seed for global replica index g of a campaign.
std::uint64_t derive_replica_seed(std::uint64_t campaign_seed,
                                  std::size_t global_index);

// Core engine: runs `replica` for every (point, replica) pair not already
// satisfied by a resumed checkpoint. `metric_names` defines the layout of
// the replica vectors and of the aggregated result.
CampaignResult run_campaign(const ScenarioSpec& spec,
                            const std::vector<ScenarioPoint>& points,
                            const std::vector<std::string>& metric_names,
                            const ReplicaFn& replica, std::uint64_t seed,
                            const CampaignOptions& options = {});

// Convenience: expands the spec's grid and runs the built-in Schelling
// replica with spec.metrics resolved against the metric registry.
CampaignResult run_campaign(const ScenarioSpec& spec, std::uint64_t seed,
                            const CampaignOptions& options = {});

}  // namespace seg
