// Tests for the Lemma 8 region-of-expansion checker.
#include <gtest/gtest.h>

#include "firewall/expansion.h"

namespace seg {
namespace {

SchellingModel make_uniform(int n, int w, double tau, std::int8_t v) {
  ModelParams p{.n = n, .w = w, .tau = tau, .p = 0.5};
  return SchellingModel(p, std::vector<std::int8_t>(
                               static_cast<std::size_t>(n) * n, v));
}

TEST(Expansion, PlacementUnhappinessOnBalancedField) {
  // Checkerboard at tau = 0.45: a (-1) agent adjacent to an all-(+1)
  // block loses about half of its same-type support and goes unhappy.
  const int n = 24, w = 2;
  ModelParams p{.n = n, .w = w, .tau = 0.45, .p = 0.5};
  std::vector<std::int8_t> spins(static_cast<std::size_t>(n) * n);
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      spins[y * n + x] = ((x + y) % 2 == 0) ? 1 : -1;
    }
  }
  SchellingModel m(p, spins);
  // Block of radius 1 at (10, 10); probe the (-1) agent at (12, 11)
  // (distance 2, on the boundary ring of a radius-1 block; odd parity).
  const Point agent{12, 11};
  ASSERT_EQ(m.spin_at(agent.x, agent.y), -1);
  EXPECT_TRUE(placement_makes_minus_unhappy(m, {10, 10}, 1, agent));
}

TEST(Expansion, PlacementHarmlessWhenAgentIsFarFromBlock) {
  const int n = 24, w = 2;
  ModelParams p{.n = n, .w = w, .tau = 0.45, .p = 0.5};
  std::vector<std::int8_t> spins(static_cast<std::size_t>(n) * n, -1);
  SchellingModel m(p, spins);
  // All -1: every agent has full same-type support. A block far away
  // (outside the neighborhood) removes nothing.
  EXPECT_FALSE(placement_makes_minus_unhappy(m, {2, 2}, 1, {12, 12}));
}

TEST(Expansion, AllMinusFieldIsRegionOfExpansionAtModerateTau) {
  // On an all-(-1) field, placing a (+1) w-block removes a w-block worth
  // of support from each boundary agent; at tau = 0.45 and w = 2 that is
  // enough to make every boundary agent unhappy: same drops from 25 to
  // 25 - 6 = 19? The exact count is what the checker verifies.
  auto m = make_uniform(24, 2, 0.45, -1);
  const auto report = check_region_of_expansion(m, {12, 12}, 3);
  // Exact arithmetic: block radius 1 (w/2), boundary agent at distance 2
  // from block center shares a 3x1 strip of the block minus... the
  // checker's verdict is authoritative; pin it and its consistency.
  EXPECT_GT(report.placements_tested, 0);
  // Whatever the verdict, a second invocation agrees (pure function).
  const auto again = check_region_of_expansion(m, {12, 12}, 3);
  EXPECT_EQ(report.is_region_of_expansion, again.is_region_of_expansion);
}

TEST(Expansion, HighTauUniformFieldExpands) {
  // At tau close to 1 every perturbed agent goes unhappy: definitely a
  // region of expansion.
  auto m = make_uniform(24, 2, 0.9, -1);
  const auto report = check_region_of_expansion(m, {12, 12}, 3);
  EXPECT_TRUE(report.is_region_of_expansion);
}

TEST(Expansion, LowTauUniformFieldDoesNotExpand) {
  // At tau = 0.1 a boundary agent keeps 90%+ support: never unhappy.
  auto m = make_uniform(24, 2, 0.1, -1);
  const auto report = check_region_of_expansion(m, {12, 12}, 2);
  EXPECT_FALSE(report.is_region_of_expansion);
  EXPECT_GE(report.first_failure.x, 0);  // failure location reported
}

TEST(Expansion, MonotoneInTau) {
  // If a configuration is a region of expansion at tau, it remains one at
  // any higher tau (unhappiness thresholds only grow).
  for (const double lo : {0.3, 0.45}) {
    auto m_lo = make_uniform(20, 2, lo, -1);
    auto m_hi = make_uniform(20, 2, lo + 0.3, -1);
    const bool at_lo =
        check_region_of_expansion(m_lo, {10, 10}, 2).is_region_of_expansion;
    const bool at_hi =
        check_region_of_expansion(m_hi, {10, 10}, 2).is_region_of_expansion;
    if (at_lo) {
      EXPECT_TRUE(at_hi) << lo;
    }
  }
}

TEST(Expansion, PlacementSuccessRateGrowsWithTau) {
  // Lemma 8 is asymptotic in N: at laptop-scale w the all-placements
  // property often fails on a fluctuation, but the per-placement success
  // rate already shows the regime: near tau = 1/2 a seeded block almost
  // always upsets its whole boundary, while at lower tau it rarely does.
  const auto success_rate = [](double tau) {
    int ok = 0, total = 0;
    for (int t = 0; t < 8; ++t) {
      ModelParams p{.n = 64, .w = 4, .tau = tau, .p = 0.5};
      Rng rng(400 + t);
      SchellingModel m(p, rng);
      for (const int cx : {16, 32, 48}) {
        for (const int cy : {16, 32, 48}) {
          ++total;
          ok += check_region_of_expansion(m, {cx, cy}, 0)
                    .is_region_of_expansion;
        }
      }
    }
    return static_cast<double>(ok) / total;
  };
  const double near_half = success_rate(0.49);
  const double lower = success_rate(0.40);
  EXPECT_GT(near_half, 0.5);
  EXPECT_GT(near_half, lower + 0.2);
}

}  // namespace
}  // namespace seg
