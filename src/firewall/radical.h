// Radical regions, unhappy nuclei, and expandability (paper Sec. III,
// Lemmas 4-6), plus the super-radical variant for tau > 1/2 (Sec. IV-C).
//
// A radical region (for the +1 type) is a neighborhood of radius
// (1 + eps') w containing fewer than tau^ * |region| agents of type (-1),
// where tau^ = tau [1 - 1/(tau N^{1/2-eps})]. Such a region contains a
// nucleus of unhappy (-1) agents w.h.p. (Lemma 4), and for eps' > f(tau)
// a sequence of at most (w+1)^2 flips inside it turns the central
// w-block monochromatic (+1) (Lemma 5) — the trigger of the whole
// segregation cascade.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/model.h"
#include "grid/point.h"

namespace seg {

struct RadicalParams {
  double eps_prime = 0.3;  // region oversize factor; must exceed f(tau)
  double eps = 0.25;       // concentration exponent in (0, 1/2)
};

// Radius of a radical region in sites: floor((1 + eps') w).
int radical_region_radius(int w, double eps_prime);

// Is the radius-(1+eps')w neighborhood centered at `center` a radical
// region for `minority` (the type that must be scarce)?
bool is_radical_region(const SchellingModel& model, Point center,
                       const RadicalParams& params, std::int8_t minority);

// Scans every center; returns centers of radical regions for `minority`.
std::vector<Point> find_radical_regions(const SchellingModel& model,
                                        const RadicalParams& params,
                                        std::int8_t minority);

// Lemma 4 empirical check: the nucleus N_{eps' w} at the center holds at
// least floor(tau * (eps' w ball size)) - N^{1/2+eps} unhappy agents of
// the minority type.
struct NucleusCheck {
  std::int64_t minority_in_nucleus = 0;
  std::int64_t unhappy_minority_in_nucleus = 0;
  std::int64_t required = 0;
  bool holds = false;
};
NucleusCheck check_unhappy_nucleus(const SchellingModel& model, Point center,
                                   const RadicalParams& params,
                                   std::int8_t minority);

// Lemma 5 / expandability: greedily flips flippable `minority` agents
// inside the radical region (on a scratch copy of the model) and reports
// whether the central w-block (radius floor(w/2)) became monochromatic of
// the majority type within (w+1)^2 flips.
struct ExpansionResult {
  bool expanded = false;
  std::uint64_t flips_used = 0;
};
ExpansionResult try_expand_radical_region(const SchellingModel& model,
                                          Point center,
                                          const RadicalParams& params,
                                          std::int8_t minority);

// tau-bar of Sec. IV-C: the effective threshold governing super-unhappy
// agents for tau > 1/2.
double tau_bar(double tau, int N);

// Super-radical region test for tau > 1/2 (Sec. IV-C): same geometry, with
// tau replaced by tau-bar and the deflation applied to tau-bar.
bool is_super_radical_region(const SchellingModel& model, Point center,
                             const RadicalParams& params,
                             std::int8_t minority);

}  // namespace seg
