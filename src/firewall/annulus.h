// Annular firewalls (paper Sec. IV-A, Lemma 9).
//
// A firewall of radius r centered at u is the set of agents in the annulus
//   A_r(u) = { y : r - sqrt(2) w <= ||u - y||_2 <= r },
// all of one type. Once monochromatic it remains so: every firewall agent
// keeps at least K same-type neighbors even in the worst case where every
// agent outside the annulus-plus-interior is of the opposite type. This
// module constructs annuli and checks that worst-case stability
// certificate exactly (finite-n geometry, no asymptotics).
#pragma once

#include <cstdint>
#include <vector>

#include "grid/point.h"

namespace seg {

// Site ids (y * n + x) of the annulus A_r(center) on the n-torus.
std::vector<std::uint32_t> annulus_sites(Point center, double r, int w,
                                         int n);

// Site ids of the open interior { y : ||center - y||_2 < r - sqrt(2) w }.
std::vector<std::uint32_t> annulus_interior(Point center, double r, int w,
                                            int n);

struct FirewallCertificate {
  bool stable = false;
  // Minimum over annulus agents of (same-type neighbors in the worst
  // case) - K; stable iff >= 0. The worst case counts only annulus and
  // interior sites as same-type.
  int min_margin = 0;
  std::size_t annulus_size = 0;
};

// Exact Lemma 9 check for the given geometry and intolerance. The annulus
// must fit on the torus (2 * ceil(r) + 1 <= n).
FirewallCertificate firewall_certificate(Point center, double r, int w,
                                         double tau, int n);

// Smallest integer radius in [r_lo, r_hi] whose firewall certificate is
// stable, or -1 if none. Used to probe how Lemma 9's "sufficiently large"
// radius scales with w.
int min_stable_firewall_radius(int w, double tau, int n, int r_lo, int r_hi);

// Builds a spin configuration: annulus and interior of `inside_type`,
// everything else of the opposite type. For dynamic stability tests.
std::vector<std::int8_t> make_firewall_config(Point center, double r, int w,
                                              int n, std::int8_t inside_type);

}  // namespace seg
