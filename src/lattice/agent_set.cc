#include "lattice/agent_set.h"

#include <cassert>

namespace seg {

void AgentSet::insert(std::uint32_t id) {
  assert(id - base_ < pos_.size());
  if (pos_[id - base_] != kAbsent) return;
  pos_[id - base_] = static_cast<std::uint32_t>(items_.size());
  items_.push_back(id);
}

void AgentSet::erase(std::uint32_t id) {
  assert(id - base_ < pos_.size());
  const std::uint32_t p = pos_[id - base_];
  if (p == kAbsent) return;
  const std::uint32_t last = items_.back();
  items_[p] = last;
  pos_[last - base_] = p;
  items_.pop_back();
  pos_[id - base_] = kAbsent;
}

std::uint32_t AgentSet::sample(Rng& rng) const {
  assert(!items_.empty());
  return items_[rng.uniform_below(items_.size())];
}

}  // namespace seg
