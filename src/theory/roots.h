// Scalar root finding used to solve the paper's defining equations for
// tau_1 (eq. 1) and tau_2 (eq. 3).
#pragma once

#include <functional>

namespace seg {

struct RootResult {
  double x = 0.0;
  bool converged = false;
  int iterations = 0;
};

// Bisection on [lo, hi]; requires f(lo) and f(hi) of opposite sign.
// Converges to |f| <= tol_f or interval width <= tol_x.
RootResult bisect(const std::function<double(double)>& f, double lo,
                  double hi, double tol_x = 1e-12, int max_iter = 200);

}  // namespace seg
