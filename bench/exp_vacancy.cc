// VACANCY — the historical Schelling mechanism vs the paper's Glauber
// abstraction. The paper (Sec. I-A) recounts the original model: unhappy
// agents move to vacant locations where they will be happy; the Glauber
// flip ("the agent moved out of the system and a new one occupied its
// location") is the open-system idealization the theorems analyze. This
// bench runs both on matched parameters and compares the segregation they
// produce (similarity index and correlation length), plus the vacancy
// density's effect.
#include <cstdio>

#include "analysis/correlation.h"
#include "core/dynamics.h"
#include "core/model.h"
#include "core/vacancy.h"
#include "grid/box_sum.h"
#include "io/table.h"
#include "util/args.h"
#include "util/stats.h"

namespace {

double similarity_of_spins(const std::vector<std::int8_t>& spins, int n,
                           int w) {
  // Same-type fraction among the (2w+1)^2 - 1 other neighbors, averaged.
  // The per-site same-type tallies come from the engine's separable box
  // sums — O(n^2) total instead of an O(n^2 w^2) hand-rolled window loop.
  std::vector<std::int32_t> plus_indicator(spins.size());
  for (std::size_t i = 0; i < spins.size(); ++i) {
    plus_indicator[i] = spins[i] > 0 ? 1 : 0;
  }
  const auto plus = seg::box_sum_torus(plus_indicator, n, w);
  const int N = (2 * w + 1) * (2 * w + 1);
  double sum = 0.0;
  for (std::size_t i = 0; i < spins.size(); ++i) {
    const std::int32_t same =
        (spins[i] > 0 ? plus[i] : N - plus[i]) - 1;  // excludes self
    sum += static_cast<double>(same) / static_cast<double>(N - 1);
  }
  return sum / (static_cast<double>(n) * n);
}

}  // namespace

int main(int argc, char** argv) {
  const seg::ArgParser args(argc, argv);
  const int n = static_cast<int>(args.get_int("n", 64));
  const int w = static_cast<int>(args.get_int("w", 2));
  const double tau = args.get_double("tau", 0.45);
  const auto trials = static_cast<std::size_t>(args.get_int("trials", 4));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 41));

  std::printf("== Glauber (open system) vs vacancy relocation (closed "
              "system), tau=%.2f, w=%d, n=%d ==\n\n",
              tau, w, n);

  // Glauber reference.
  seg::RunningStats g_sim, g_len, g_flips;
  for (std::size_t t = 0; t < trials; ++t) {
    seg::ModelParams p{.n = n, .w = w, .tau = tau, .p = 0.5};
    seg::Rng init = seg::Rng::stream(seed + t, 0);
    seg::SchellingModel m(p, init);
    seg::Rng dyn = seg::Rng::stream(seed + t, 1);
    g_flips.add(static_cast<double>(seg::run_glauber(m, dyn).flips));
    g_sim.add(similarity_of_spins(m.spins(), n, w));
    g_len.add(seg::correlation_length(
        seg::pair_correlation(m.spins(), n, n / 4)));
  }

  seg::TablePrinter table({"dynamics", "vacancy", "moves/flips",
                           "similarity", "corr length", "terminated%"});
  table.new_row()
      .add("glauber")
      .add("-")
      .add(g_flips.mean(), 0)
      .add(g_sim.mean(), 4)
      .add(g_len.mean(), 2)
      .add(100.0, 0);

  for (const double vacancy : {0.05, 0.10, 0.20, 0.30}) {
    seg::RunningStats sim, len, moves, term;
    for (std::size_t t = 0; t < trials; ++t) {
      seg::VacancyParams p{.n = n, .w = w, .tau = tau, .vacancy = vacancy,
                           .p = 0.5, .relocation_attempts = 32};
      seg::Rng init = seg::Rng::stream(seed + 100 + t,
                                       static_cast<std::uint64_t>(vacancy *
                                                                  100));
      seg::VacancyModel m(p, init);
      seg::Rng dyn = seg::Rng::stream(seed + 200 + t,
                                      static_cast<std::uint64_t>(vacancy *
                                                                 100));
      seg::VacancyRunOptions opt;
      opt.max_moves = 400000;
      const auto r = seg::run_vacancy(m, dyn, opt);
      moves.add(static_cast<double>(r.moves));
      term.add(r.terminated ? 1.0 : 0.0);
      sim.add(m.similarity_index());
      // Correlation over occupied sites only: map vacancies to +1/-1
      // alternately would bias; instead compute on the +/-1 majority
      // field with vacancies assigned the local majority sign.
      std::vector<std::int8_t> filled(m.sites());
      for (std::uint32_t id = 0; id < m.site_count(); ++id) {
        if (filled[id] == 0) {
          filled[id] = m.plus_count(id) * 2 >= m.occupied_count(id)
                           ? 1
                           : -1;
        }
      }
      len.add(seg::correlation_length(
          seg::pair_correlation(filled, n, n / 4)));
    }
    char label[16];
    std::snprintf(label, sizeof(label), "%.2f", vacancy);
    table.new_row()
        .add("vacancy")
        .add(label)
        .add(moves.mean(), 0)
        .add(sim.mean(), 4)
        .add(len.mean(), 2)
        .add(100.0 * term.mean(), 0);
  }
  table.print();

  std::printf("\nexpected: both mechanisms push the similarity index far "
              "above the ~0.5 well-mixed baseline — Schelling's original "
              "observation and the paper's abstraction agree "
              "qualitatively; relocation leaves a slightly rougher "
              "texture (shorter correlation length) since movers must "
              "find vacancies.\n");
  return 0;
}
