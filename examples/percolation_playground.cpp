// Percolation substrate demo: cluster structure, chemical distance, and
// first-passage times — the machinery behind the paper's Lemmas 7, 13, 14.
//
//   ./percolation_playground --L 128 --p 0.75
#include <cstdio>

#include "percolation/chemical.h"
#include "percolation/clusters.h"
#include "percolation/field.h"
#include "percolation/fpp.h"
#include "util/args.h"

int main(int argc, char** argv) {
  const seg::ArgParser args(argc, argv);
  const int L = static_cast<int>(args.get_int("L", 128));
  const double p = args.get_double("p", 0.75);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 3));

  seg::Rng rng = seg::Rng::stream(seed, 0);
  const seg::SiteField field(L, p, rng);
  std::printf("site percolation on %dx%d, p=%.3f (p_c ~ %.4f)\n", L, L, p,
              seg::kSiteCriticalP);
  std::printf("open fraction: %.4f\n", field.open_fraction());

  const auto clusters = seg::percolation_clusters(field);
  std::printf("clusters: %zu, largest %lld (%.1f%% of open sites)\n",
              clusters.size.size(),
              static_cast<long long>(clusters.largest),
              100.0 * seg::largest_cluster_fraction(field));
  std::printf("spans horizontally: %s\n",
              seg::spans_horizontally(field) ? "yes" : "no");

  // Chemical stretch across the box (Garet-Marchand / Lemma 13).
  const auto stretch =
      seg::chemical_stretch(field, L / 8, L / 2, 7 * L / 8, L / 2);
  if (stretch.connected) {
    std::printf("chemical distance across the box: %d (l1 %d, stretch "
                "%.3f)\n",
                stretch.distance, stretch.l1, stretch.stretch);
  } else {
    std::printf("chosen endpoints not connected at this p\n");
  }

  // First-passage percolation (Kesten / Lemma 7): T_k/k estimates.
  seg::Rng fpp_rng = seg::Rng::stream(seed, 1);
  const seg::FppField fpp(L, 1.0, fpp_rng);
  for (const int k : {L / 8, L / 4, L / 2, 3 * L / 4}) {
    const double t = fpp.axis_passage_time(L / 8, L / 2, k);
    std::printf("FPP: T_%-4d = %8.2f   T_k/k = %.4f\n", k, t,
                t / static_cast<double>(k));
  }
  return 0;
}
