// Same-type connected-component statistics of a spin configuration:
// cluster sizes, the largest cluster, the interface length between types,
// and the complete-segregation predicate used by the paper's corollary
// ("complete segregation does not occur w.h.p. for p = 1/2").
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace seg {

class SchellingModel;

struct ClusterStats {
  std::size_t cluster_count = 0;
  std::int64_t largest_cluster = 0;
  double mean_cluster_size = 0.0;
  // Number of 4-neighbor site pairs with opposite spins (each unordered
  // pair counted once) — the total boundary length between the two types.
  std::int64_t interface_length = 0;
};

// 4-connected same-spin clusters on the torus.
ClusterStats cluster_stats(const std::vector<std::int8_t>& spins, int n);

// Per-site label array (labels are arbitrary but consistent) and sizes,
// for callers that need the full decomposition.
struct ClusterLabels {
  std::vector<std::int32_t> label;      // size n*n
  std::vector<std::int64_t> size;       // indexed by label
};
ClusterLabels label_clusters(const std::vector<std::int8_t>& spins, int n);

// All agents share one type.
bool completely_segregated(const std::vector<std::int8_t>& spins);

// Fraction held by the majority type (0.5 .. 1.0).
double majority_fraction(const std::vector<std::int8_t>& spins);

ClusterStats cluster_stats(const SchellingModel& model);

}  // namespace seg
