// PERF — engineering microbenchmarks for the hot paths: model
// construction (separable box sums), single flips (O(N) incremental
// updates), full Glauber runs, the distance transform behind the region
// metrics, and prefix-sum construction.
#include <benchmark/benchmark.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>

#include "analysis/clusters.h"
#include "analysis/correlation.h"
#include "analysis/regions.h"
#include "analysis/streaming.h"
#include "campaign/campaign.h"
#include "core/dynamics.h"
#include "core/model.h"
#include "core/parallel_dynamics.h"
#include "graph/topology.h"
#include "grid/box_sum.h"
#include "grid/distance_transform.h"
#include "grid/prefix_sum.h"
#include "lattice/sharded.h"
#include "obs/endpoint.h"
#include "obs/telemetry.h"
#include "rng/splitmix64.h"

namespace {

void BM_ModelInit(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int w = static_cast<int>(state.range(1));
  seg::ModelParams params{.n = n, .w = w, .tau = 0.45, .p = 0.5};
  seg::Rng rng(1);
  const auto spins = seg::random_spins(n, 0.5, rng);
  for (auto _ : state) {
    seg::SchellingModel model(params, spins);
    benchmark::DoNotOptimize(model.count_unhappy());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_ModelInit)->Args({256, 4})->Args({256, 10})->Args({512, 10});

// Storage backends are benchmarked side by side: arg value 0 forces the
// byte backend (one int8 per spin, int32 counts), 1 forces the bit-packed
// backend (one bit per spin, int16 counts + the AVX-512 flip kernel where
// the CPU has it). scripts/bench.sh records the packed/byte ratio.
seg::EngineStorage storage_arg(std::int64_t v) {
  return v != 0 ? seg::EngineStorage::kPacked : seg::EngineStorage::kByte;
}

void BM_Flip(benchmark::State& state) {
  const int w = static_cast<int>(state.range(0));
  seg::ModelParams params{.n = 128, .w = w, .tau = 0.45, .p = 0.5};
  params.storage = storage_arg(state.range(1));
  seg::Rng rng(2);
  seg::SchellingModel model(params, rng);
  std::uint32_t id = 0;
  for (auto _ : state) {
    model.flip(id);  // flip and flip back: state stays bounded
    model.flip(id);
    id = (id + 97) % (128 * 128);
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_Flip)
    ->Args({2, 0})
    ->Args({2, 1})
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({10, 0})
    ->Args({10, 1});

// The same torus expressed as a GraphTopology, driven through the
// engine's graph mode (CSR row walk, per-degree-class tables, byte
// storage). The BM_FlipGraphTorus/<w> : BM_Flip/<w>/0 ratio is the
// generic-graph overhead factor on the torus fast path's home turf —
// scripts/bench.sh records it as context.graph_overhead and
// scripts/audit.py ties the README claim to it.
void BM_FlipGraphTorus(benchmark::State& state) {
  const int w = static_cast<int>(state.range(0));
  seg::ModelParams params{.n = 128, .w = w, .tau = 0.45, .p = 0.5};
  const auto graph = std::make_shared<const seg::GraphTopology>(
      seg::GraphTopology::torus(
          params.n, seg::neighborhood_offsets(params.shape, params.w)));
  seg::Rng rng(2);
  seg::SchellingModel model(params, graph, rng);
  std::uint32_t id = 0;
  for (auto _ : state) {
    model.flip(id);  // flip and flip back: state stays bounded
    model.flip(id);
    id = (id + 97) % (128 * 128);
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_FlipGraphTorus)->Arg(2)->Arg(4)->Arg(10);

// Telemetry overhead on the hottest call: the same flip/flip-back loop as
// BM_Flip (w = 10) with the telemetry runtime switch off (arg 0) or on
// (arg 1). Arg 0 measures what every non-instrumented run pays for the
// SEG_COUNT("engine.flips") macro compiled into flip() — one relaxed bool
// load and a predicted branch; the acceptance budget is <= 2% over
// BM_Flip/10 (scripts/bench.sh records the ratio, and
// scripts/telemetry_gate.sh additionally compares against a build with
// SEG_TELEMETRY=OFF, where the macro does not exist at all). Arg 1 is the
// full per-flip slab bump that live telemetry costs.
void BM_FlipTelemetry(benchmark::State& state) {
  const bool enabled = state.range(0) != 0;
  seg::ModelParams params{.n = 128, .w = 10, .tau = 0.45, .p = 0.5};
  seg::Rng rng(2);
  seg::SchellingModel model(params, rng);
  const bool was_enabled = seg::obs::enabled();
  seg::obs::set_enabled(enabled);
  std::uint32_t id = 0;
  for (auto _ : state) {
    model.flip(id);  // flip and flip back: state stays bounded
    model.flip(id);
    id = (id + 97) % (128 * 128);
  }
  seg::obs::set_enabled(was_enabled);
  state.SetItemsProcessed(state.iterations() * 2);
  state.counters["telemetry"] = enabled ? 1 : 0;
}
BENCHMARK(BM_FlipTelemetry)->Arg(0)->Arg(1);

void BM_GlauberRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int w = static_cast<int>(state.range(1));
  seg::ModelParams params{.n = n, .w = w, .tau = 0.45, .p = 0.5};
  params.storage = storage_arg(state.range(2));
  std::uint64_t flips = 0;
  for (auto _ : state) {
    state.PauseTiming();
    seg::Rng init(3);
    seg::SchellingModel model(params, init);
    seg::Rng dyn(4);
    state.ResumeTiming();
    const seg::RunResult r = seg::run_glauber(model, dyn);
    benchmark::DoNotOptimize(r.flips);
    flips += r.flips;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(flips));
}
BENCHMARK(BM_GlauberRun)
    ->Args({64, 2, 0})
    ->Args({64, 2, 1})
    ->Args({128, 2, 0})
    ->Args({128, 2, 1})
    ->Args({128, 4, 0})
    ->Args({128, 4, 1})
    ->Args({128, 10, 0})
    ->Args({128, 10, 1});

// One GET /metrics against the loopback endpoint; the scraper thread in
// BM_GlauberRunScraped calls this at its polling cadence.
bool scrape_once(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  const char req[] = "GET /metrics HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n";
  (void)!::send(fd, req, sizeof(req) - 1, 0);
  char buf[4096];
  std::size_t total = 0;
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    total += static_cast<std::size_t>(n);
  }
  ::close(fd);
  return total > 0;
}

// Exporter overhead under load: the BM_GlauberRun workload (128/10, flat
// storage) with live telemetry, without (arg 0) and with (arg 1) a
// /metrics endpoint being scraped every ~10ms from another thread.
// scripts/bench.sh records the on/off ratio as
// context.metrics_endpoint_overhead (min over repetitions); the README
// "Observability endpoint" claim and scripts/audit.py hold it to <= 2%.
// The endpoint renders registry snapshots only, so the cost is cache
// pressure from the render loop — nothing in the simulation synchronizes
// with the scraper.
void BM_GlauberRunScraped(benchmark::State& state) {
  const bool scraped = state.range(0) != 0;
  const bool was_enabled = seg::obs::enabled();
  seg::obs::set_enabled(true);

  seg::obs::MetricsServer server;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> scrapes{0};
  std::thread scraper;
  if (scraped && server.start(0)) {
    const std::uint16_t port = server.port();
    scraper = std::thread([port, &stop, &scrapes] {
      while (!stop.load(std::memory_order_relaxed)) {
        if (scrape_once(port)) scrapes.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    });
  }

  seg::ModelParams params{.n = 128, .w = 10, .tau = 0.45, .p = 0.5};
  std::uint64_t flips = 0;
  for (auto _ : state) {
    state.PauseTiming();
    seg::Rng init(3);
    seg::SchellingModel model(params, init);
    seg::Rng dyn(4);
    state.ResumeTiming();
    const seg::RunResult r = seg::run_glauber(model, dyn);
    benchmark::DoNotOptimize(r.flips);
    flips += r.flips;
  }

  stop.store(true);
  if (scraper.joinable()) scraper.join();
  server.stop();
  seg::obs::set_enabled(was_enabled);
  state.SetItemsProcessed(static_cast<std::int64_t>(flips));
  state.counters["scraped"] = scraped ? 1 : 0;
  state.counters["scrapes"] = static_cast<double>(scrapes.load());
}
BENCHMARK(BM_GlauberRunScraped)->Arg(0)->Arg(1);

// Giant-lattice sweep throughput: a fixed flip budget on a fresh
// tau = 0.45 lattice, serial engine (shards = 0) versus the sharded
// sweep engine at 1/2/4/8 stripes. Rate (items == applied flips) is the
// comparison metric, so serial and sharded rows are directly comparable
// even though the sharded runs may overshoot the budget by one sweep
// quantum. Thread count follows the hardware (capped at the shard
// count) — on a single-core host the sharded rows measure pure framework
// overhead; the scaling headroom needs real cores.
void BM_GlauberSweep(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int shards = static_cast<int>(state.range(1));
  const int w = 4;
  seg::ModelParams params{.n = n, .w = w, .tau = 0.45, .p = 0.5};
  params.storage = storage_arg(state.range(2));
  seg::Rng spin_rng(3);
  // One shared initial configuration; each iteration restarts from it so
  // the dynamics never runs into the absorbing tail where the flippable
  // set thins out.
  const auto spins = seg::random_spins(n, 0.5, spin_rng);
  const std::uint64_t budget =
      static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n) / 64;
  std::uint64_t flips = 0;
  for (auto _ : state) {
    state.PauseTiming();
    if (shards == 0) {
      seg::SchellingModel model(params, spins);
      seg::Rng dyn(4);
      state.ResumeTiming();
      seg::RunOptions opt;
      opt.max_flips = budget;
      flips += seg::run_glauber(model, dyn, opt).flips;
    } else {
      seg::SchellingModel model(params, spins,
                                seg::ShardLayout::stripes(n, w, shards));
      state.ResumeTiming();
      seg::ParallelOptions opt;
      opt.max_flips = budget;
      flips += seg::run_parallel_glauber(model, 4, opt).flips;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(flips));
  state.counters["shards"] = shards;
}
BENCHMARK(BM_GlauberSweep)
    // Full shard sweep on the packed backend (the resolved default), plus
    // byte-backend reference rows at shards 0 and 4 for the storage ratio.
    ->Args({1024, 0, 0})
    ->Args({1024, 0, 1})
    ->Args({1024, 1, 1})
    ->Args({1024, 2, 1})
    ->Args({1024, 4, 0})
    ->Args({1024, 4, 1})
    ->Args({1024, 8, 1})
    ->Args({2048, 0, 0})
    ->Args({2048, 0, 1})
    ->Args({2048, 1, 1})
    ->Args({2048, 2, 1})
    ->Args({2048, 4, 0})
    ->Args({2048, 4, 1})
    ->Args({2048, 8, 1})
    ->Args({4096, 0, 0})
    ->Args({4096, 0, 1})
    ->Args({4096, 1, 1})
    ->Args({4096, 2, 1})
    ->Args({4096, 4, 0})
    ->Args({4096, 4, 1})
    ->Args({4096, 8, 1})
    // Phase A runs on pool workers whose CPU time the main thread never
    // sees; wall-clock is the only honest basis for the flips/sec rate.
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Per-sweep observable recording: one sweep of flip activity (1024
// flip/flip-back pairs) followed by one measurement of the snapshot
// observables a trajectory panel wants — cluster statistics, interface
// energy, and the spatial pair correlation to r = 16. mode 0 recomputes
// them with the batch O(n^2) rescans (analysis/clusters.h +
// analysis/correlation.h) — the pre-streaming measurement path; mode 1
// reads them off the StreamingObservables engine fed by the engine's
// flip events. Both modes perform identical dynamics work, so the rate
// gap is purely the per-sweep recording cost; scripts/bench.sh records
// the ratio in BENCH_core.json (acceptance bar: >= 10x at n = 1024).
void BM_StreamingObservables(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const bool streaming_mode = state.range(1) != 0;
  constexpr int kMaxR = 16;
  seg::ModelParams params{.n = n, .w = 2, .tau = 0.45, .p = 0.5};
  seg::Rng rng(8);
  seg::SchellingModel model(params, rng);
  seg::StreamingConfig config;
  config.max_r = kMaxR;
  seg::StreamingObservables streaming(model.spins(), n, config);
  if (streaming_mode) model.set_flip_observer(&streaming);
  const auto sites = static_cast<std::uint32_t>(model.agent_count());
  std::uint32_t id = 0;
  constexpr int kPairsPerSweep = 1024;
  for (auto _ : state) {
    for (int i = 0; i < kPairsPerSweep; ++i) {
      model.flip(id);  // flip and flip back: state stays bounded
      model.flip(id);
      id = (id + 9973) % sites;
    }
    if (streaming_mode) {
      seg::ClusterStats stats = streaming.cluster_stats();
      benchmark::DoNotOptimize(stats);
      std::vector<double> corr = streaming.pair_correlation();
      benchmark::DoNotOptimize(corr);
    } else {
      seg::ClusterStats stats = seg::cluster_stats(model.spins(), n);
      benchmark::DoNotOptimize(stats);
      std::vector<double> corr =
          seg::pair_correlation(model.spins(), n, kMaxR);
      benchmark::DoNotOptimize(corr);
    }
  }
  state.SetItemsProcessed(state.iterations());  // items == recorded sweeps
  state.counters["streaming"] = streaming_mode ? 1 : 0;
}
BENCHMARK(BM_StreamingObservables)
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Unit(benchmark::kMillisecond);

// Fixed vs adaptive campaign scheduling on a synthetic variance-skewed
// grid: 16 points whose metric standard deviation ramps 0.02 -> 0.25
// (replicas are a single scaled SplitMix64 draw, so the run measures the
// engine, not the model), per-point cap 3072 replicas. Arg 0 runs the
// fixed-replica engine (every point burns the full cap); arg 1 runs the
// empirical-Bernstein stopper at delta = 0.05, which resolves the
// low-variance points an order of magnitude earlier. The "replicas"
// counter records how many replicas each mode actually scheduled;
// scripts/bench.sh turns the pair into context.adaptive_savings
// (acceptance bar: >= 30% of the cap saved at equal certified CI width —
// tests/test_campaign_adaptive.cc pins the same grid).
void BM_AdaptiveCampaign(benchmark::State& state) {
  const bool adaptive = state.range(0) != 0;
  constexpr std::size_t kPoints = 16;
  std::vector<double> sigmas;
  for (std::size_t i = 0; i < kPoints; ++i) {
    sigmas.push_back(0.02 + (0.25 - 0.02) * static_cast<double>(i) /
                                static_cast<double>(kPoints - 1));
  }
  seg::ScenarioSpec spec;
  spec.name = "bench_adaptive";
  spec.n = {8};
  spec.w = {1};
  spec.tau.clear();
  for (std::size_t i = 0; i < kPoints; ++i) {
    spec.tau.push_back(0.30 + 0.01 * static_cast<double>(i));
  }
  spec.replicas = 3072;
  spec.metrics = {"flips"};
  if (adaptive) {
    spec.stop.rule = seg::StopRule::kBernstein;
    spec.stop.delta = 0.05;
    spec.stop.alpha = 0.05;
    spec.stop.min_replicas = 16;
  }
  const auto points = seg::expand_grid(spec);
  const seg::ReplicaFn replica = [&sigmas](const seg::ScenarioPoint& point,
                                           std::size_t /*replica*/,
                                           std::uint64_t replica_seed) {
    seg::SplitMix64 rng(replica_seed);
    const double u = static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
    const double sigma = sigmas[point.index % sigmas.size()];
    return std::vector<double>{0.5 + sigma * std::sqrt(3.0) * (2.0 * u - 1.0)};
  };
  seg::CampaignOptions options;
  options.threads = 4;
  std::size_t replicas_done = 0;
  for (auto _ : state) {
    const seg::CampaignResult result =
        run_campaign(spec, points, {"value"}, replica, 2024, options);
    replicas_done = result.replicas_done;
    benchmark::DoNotOptimize(replicas_done);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * replicas_done));
  state.counters["replicas"] = static_cast<double>(replicas_done);
  state.counters["adaptive"] = adaptive ? 1 : 0;
}
BENCHMARK(BM_AdaptiveCampaign)
    ->Arg(0)
    ->Arg(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_BoxSum(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int w = static_cast<int>(state.range(1));
  seg::Rng rng(5);
  std::vector<std::int32_t> values(static_cast<std::size_t>(n) * n);
  for (auto& v : values) v = static_cast<std::int32_t>(rng.uniform_below(2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(seg::box_sum_torus(values, n, w));
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_BoxSum)->Args({512, 10})->Args({1024, 10});

void BM_DistanceTransform(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  seg::Rng rng(6);
  std::vector<std::int8_t> spins(static_cast<std::size_t>(n) * n);
  for (auto& s : spins) s = rng.bernoulli(0.5) ? 1 : -1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(seg::mono_ball_radius(spins, n));
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_DistanceTransform)->Arg(256)->Arg(512);

void BM_PrefixSumBuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  seg::Rng rng(7);
  std::vector<std::int32_t> values(static_cast<std::size_t>(n) * n);
  for (auto& v : values) v = static_cast<std::int32_t>(rng.uniform_below(2));
  for (auto _ : state) {
    const seg::PrefixSum2D prefix(values, n);
    benchmark::DoNotOptimize(prefix.total());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_PrefixSumBuild)->Arg(256)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
