#include "util/thread_pool.h"

#include <algorithm>

namespace seg {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  task_cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
  }
  task_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < count; ++i) {
    pool.submit([i, &fn] { fn(i); });
  }
  pool.wait_idle();
}

}  // namespace seg
