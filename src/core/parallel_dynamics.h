// Sharded parallel dynamics: Glauber and Kawasaki sweeps of ONE large
// lattice decomposed into shards (lattice/sharded.h) and driven across the
// util/thread_pool workers.
//
// Algorithm (both engines): time advances in *sweeps*. In phase A every
// shard, in parallel, runs the serial proposal loop restricted to its own
// sub-lattice — sampling from its shard-local flippable/unhappy set with
// its own splitmix-derived RNG substream (Rng::stream(seed, shard), the
// campaign engine's scheme) and applying moves whose whole interaction
// window is interior to the shard directly on the shared engine. A draw
// that lands within `w` of a shard boundary is *deferred*: the site (or
// swap pair) goes into the shard's conflict queue and, for Glauber, ends
// the shard's phase A (the stripe is blocked on its boundary). Phase B is
// a serial, deterministic reconciliation pass: queues drain in ascending
// shard order, every deferred move is re-validated against the current
// global state (it may have been invalidated by an earlier reconciled
// move) and applied iff still legal. Counts, codes, and set memberships
// therefore stay exact at every step — the ShardLayout isolation
// guarantee makes phase A race-free and phase B makes cross-boundary
// effects serial.
//
// Determinism contract: for a fixed shard count the trajectory — spins,
// flip/swap counts, Poisson clocks — is a pure function of the seed,
// bitwise identical at ANY thread count (each shard's phase A depends
// only on its own state and substream; the fold and reconciliation run in
// shard order). With ONE shard there is no boundary, phase A is the
// serial proposal loop verbatim, and the run is bitwise identical to
// run_glauber / run_kawasaki driven by Rng::stream(seed, 0) — the
// differential tests pin this.
//
// Semantics at k > 1: this is a domain-decomposed variant of the paper's
// process (shards ring concurrently, one Poisson clock per shard
// subsystem), not a reordering of the serial chain. Flippable-only flips
// keep the Lyapunov function strictly increasing, so parallel Glauber
// absorbs exactly like the serial process; Kawasaki swaps conserve the
// type counts exactly, with proposals restricted to intra-shard pairs.
#pragma once

#include <cstdint>
#include <limits>

#include "core/dynamics.h"
#include "core/model.h"

namespace seg {

class StreamingObservables;

struct ParallelOptions {
  // Worker threads for phase A; 0 = hardware concurrency. The pool is
  // additionally capped at the shard count.
  std::size_t threads = 0;
  // Streaming measurement sink (analysis/streaming.h). Phase-A workers
  // append applied flips to per-shard event logs (no shared writes); the
  // logs are drained into the sink serially at every reconciliation
  // barrier in ascending shard order, followed by the reconciled flips
  // in application order. The sink therefore sees a deterministic event
  // stream (per shard count, at any thread count) whose final state is
  // exactly the engine's. Do NOT additionally attach the sink as the
  // engine's FlipObserver — phase A is concurrent.
  StreamingObservables* streaming = nullptr;
  // Flips between time-autocorrelation samples recorded into `streaming`
  // (counted on the replayed stream, so deterministic); 0 = one sample
  // per reconciliation sweep. Matches the serial RunOptions cadence
  // (snapshot_every) when set to the same value.
  std::uint64_t streaming_sample_every = 0;
  // Stop once at least this many flips were performed. Exact for one
  // shard; at k > 1 the budget is split per sweep, so a run may overshoot
  // by up to (shards - 1) * sweep_quantum flips.
  std::uint64_t max_flips = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_sweeps = std::numeric_limits<std::uint64_t>::max();
  // Flips attempted per shard per sweep before the reconciliation
  // barrier; 0 = auto (max(256, sites / (4 * shards))). Larger quanta
  // amortize the barrier, smaller ones reconcile boundaries sooner.
  std::uint64_t sweep_quantum = 0;
};

struct ParallelRunResult {
  std::uint64_t flips = 0;       // applied flips, reconciled included
  std::uint64_t sweeps = 0;      // phase A + B rounds executed
  std::uint64_t deferred = 0;    // boundary draws pushed to conflict queues
  std::uint64_t reconciled = 0;  // deferred flips applied in phase B
  // Max over the shard-local Poisson clocks (== the serial clock for one
  // shard). A deferred draw consumes its waiting time whether or not the
  // reconciliation pass ends up applying it.
  double final_time = 0.0;
  bool terminated = false;  // absorbing state: no flippable agent left
};

// Event-driven Glauber sweeps over a sharded model (the model must have
// been constructed with a ShardLayout; shard_count() == 1 reproduces
// run_glauber bitwise). Shard substreams derive as Rng::stream(seed, s).
ParallelRunResult run_parallel_glauber(SchellingModel& model,
                                       std::uint64_t seed,
                                       const ParallelOptions& options = {});

struct ParallelKawasakiOptions {
  std::size_t threads = 0;
  std::uint64_t max_swaps = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_sweeps = std::numeric_limits<std::uint64_t>::max();
  // Proposals per shard per sweep; 0 = auto (max(512, sites / shards)).
  std::uint64_t proposal_quantum = 0;
  // Per-shard consecutive-rejection threshold: once EVERY shard is past
  // it, the exact global absorption test runs between sweeps (same
  // certificate as run_kawasaki).
  std::uint64_t stale_check_after = 5000;
  // Give up (gave_up = true) once every shard is past this; 0 disables.
  std::uint64_t max_consecutive_rejects = 2'000'000;
};

struct ParallelKawasakiResult {
  std::uint64_t swaps = 0;       // applied swaps, reconciled included
  std::uint64_t proposals = 0;
  std::uint64_t deferred = 0;    // boundary pairs queued for phase B
  std::uint64_t reconciled = 0;  // deferred swaps applied in phase B
  std::uint64_t sweeps = 0;
  bool terminated = false;  // certified: no improving swap exists
  bool gave_up = false;
};

// Conserved-magnetization swap sweeps. Proposals are intra-shard (each
// shard samples opposite-type unhappy pairs from its own sub-set); pairs
// touching a boundary defer to the serial reconciliation pass. One shard
// reproduces run_kawasaki's proposal stream bitwise.
ParallelKawasakiResult run_parallel_kawasaki(
    SchellingModel& model, std::uint64_t seed,
    const ParallelKawasakiOptions& options = {});

// Adapter for drivers and the campaign layer that consume the serial
// RunResult shape (sweeps map onto `rounds`).
RunResult to_run_result(const ParallelRunResult& parallel);

}  // namespace seg
