#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>

namespace seg {

ThreadPool::ThreadPool(std::size_t threads,
                       const std::string& telemetry_label) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
#if !defined(SEG_TELEMETRY_DISABLED)
  if (!telemetry_label.empty()) {
    obs::Registry& registry = obs::Registry::instance();
    const std::string prefix = "pool." + telemetry_label;
    tasks_id_ = registry.counter(prefix + ".tasks");
    busy_ids_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      busy_ids_.push_back(registry.counter(
          prefix + ".worker." + std::to_string(i) + ".busy_us"));
    }
  }
#else
  (void)telemetry_label;
#endif
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  task_cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
  }
  task_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
}

// Runs one task, charging its wall time to the worker's busy counter
// when the pool is labeled and telemetry is runtime-enabled. Tasks here
// are coarse (whole replicas, shard sweep quanta), so the two clock
// reads are noise next to the work they bracket.
void ThreadPool::run_task(std::size_t worker, std::function<void()>& task) {
#if !defined(SEG_TELEMETRY_DISABLED)
  if (!busy_ids_.empty() && obs::enabled()) {
    using Clock = std::chrono::steady_clock;
    const Clock::time_point start = Clock::now();
    task();
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        Clock::now() - start)
                        .count();
    obs::Registry& registry = obs::Registry::instance();
    registry.add(busy_ids_[worker], static_cast<std::uint64_t>(us));
    registry.add(tasks_id_, 1);
    return;
  }
#endif
  (void)worker;
  task();
}

void ThreadPool::worker_loop(std::size_t worker) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++in_flight_;
    }
    run_task(worker, task);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < count; ++i) {
    pool.submit([i, &fn] { fn(i); });
  }
  pool.wait_idle();
}

}  // namespace seg
