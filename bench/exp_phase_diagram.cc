// PHASE — the (tau, p) phase portrait the paper's concluding remarks ask
// about ("how the parameter of the initial distribution of the agents
// influences segregation"): for each (intolerance, initial density) cell
// we run the process and record the mean monochromatic region and whether
// the grid fixated on one type. Prints a console map and writes the full
// grid as CSV.
#include <cstdio>
#include <string>

#include "analysis/clusters.h"
#include "analysis/regions.h"
#include "core/dynamics.h"
#include "core/model.h"
#include "io/csv.h"
#include "io/table.h"
#include "util/args.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  const seg::ArgParser args(argc, argv);
  const int n = static_cast<int>(args.get_int("n", 64));
  const int w = static_cast<int>(args.get_int("w", 2));
  const auto trials = static_cast<std::size_t>(args.get_int("trials", 3));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 37));
  const std::string out = args.get_string("out", "phase_diagram.csv");

  const double taus[] = {0.30, 0.36, 0.40, 0.44, 0.48, 0.50};
  const double ps[] = {0.50, 0.55, 0.60, 0.70, 0.80, 0.90};

  std::printf("== (tau, p) phase portrait (n=%d, w=%d, %zu trials/cell) "
              "==\n\n",
              n, w, trials);
  std::printf("cell symbol: '.' static-ish, 'o' segregated regions, "
              "'#' majority fixation (complete segregation)\n\n");

  seg::CsvWriter csv({"tau", "p", "mean_EM", "fixation_fraction",
                      "mean_majority", "mean_flips"});
  seg::TablePrinter map({"tau \\ p", "0.50", "0.55", "0.60", "0.70",
                         "0.80", "0.90"});
  for (const double tau : taus) {
    map.new_row();
    char label[16];
    std::snprintf(label, sizeof(label), "%.2f", tau);
    map.add(label);
    for (const double p : ps) {
      seg::RunningStats em, fixation, majority, flips;
      for (std::size_t t = 0; t < trials; ++t) {
        seg::ModelParams params{.n = n, .w = w, .tau = tau, .p = p};
        seg::Rng init = seg::Rng::stream(seed + t, 0);
        seg::SchellingModel m(params, init);
        seg::Rng dyn = seg::Rng::stream(seed + t, 1);
        flips.add(static_cast<double>(seg::run_glauber(m, dyn).flips));
        fixation.add(seg::completely_segregated(m.spins()) ? 1.0 : 0.0);
        majority.add(seg::majority_fraction(m.spins()));
        const auto field = seg::mono_region_field(m);
        seg::Rng smp = seg::Rng::stream(seed + t, 2);
        em.add(seg::mean_mono_region_size(field, 16, smp));
      }
      csv.new_row()
          .add(tau)
          .add(p)
          .add(em.mean())
          .add(fixation.mean())
          .add(majority.mean())
          .add(flips.mean());
      const double cells = static_cast<double>(n) * n;
      const char* symbol = fixation.mean() >= 0.5       ? "#"
                           : em.mean() >= 0.02 * cells  ? "o"
                                                        : ".";
      char cell[24];
      std::snprintf(cell, sizeof(cell), "%s %6.0f", symbol, em.mean());
      map.add(cell);
    }
  }
  map.print();
  std::printf("\nexpected: fixation ('#') occupies the high-p column well "
              "before p = 1 (Fontes et al.), while the p = 1/2 column "
              "segregates without fixating (the paper's corollary).\n");
  if (csv.write_file(out)) std::printf("full grid written to %s\n",
                                       out.c_str());
  return 0;
}
