// Open-cluster decomposition of a site field: labels, sizes, the radius of
// the cluster containing a given site (Grimmett Thm. 5.4 measures this
// radius' tail below criticality), and spanning detection.
#pragma once

#include <cstdint>
#include <vector>

#include "percolation/field.h"

namespace seg {

struct PercClusters {
  std::vector<std::int32_t> label;  // -1 for closed sites
  std::vector<std::int64_t> size;   // per label
  std::int64_t largest = 0;
};

// 4-connected open clusters.
PercClusters percolation_clusters(const SiteField& field);

// l1 radius of the open cluster containing (x, y):
// sup{ |a-x| + |b-y| : (a,b) in cluster }. Returns -1 if the site is
// closed. BFS over the cluster.
int cluster_l1_radius(const SiteField& field, int x, int y);

// True if some open cluster touches both the left and right columns
// (horizontal spanning) — a standard supercritical indicator.
bool spans_horizontally(const SiteField& field);

// Fraction of open sites belonging to the largest cluster (finite-size
// stand-in for the percolation probability theta(p)).
double largest_cluster_fraction(const SiteField& field);

}  // namespace seg
