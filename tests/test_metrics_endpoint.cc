// Tests for the observability endpoint: the embedded HTTP server, the
// Prometheus text exposition, and the determinism guarantee that a live
// concurrent scraper leaves trajectories bitwise identical.
//
// The Prometheus checker here is also the CI scrape linter: the
// workflow saves a live scrape to a file and runs this binary with
// SEG_PROM_LINT_FILE pointing at it (see PromFormat.LintFile).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/dynamics.h"
#include "golden_fixtures.h"
#include "json_checker.h"
#include "obs/endpoint.h"
#include "obs/exposition.h"
#include "obs/flight_recorder.h"
#include "obs/telemetry.h"
#include "util/http.h"

namespace seg {
namespace {

using golden::hash_bytes;
using golden::mix;
using golden::mix_double;

// ---- tiny HTTP client ---------------------------------------------------

struct HttpReply {
  int status = 0;
  std::string body;
  std::string raw;
};

// Sends `request` verbatim to 127.0.0.1:port and reads to EOF. `status`
// is 0 when no status line came back.
HttpReply http_raw(std::uint16_t port, const std::string& request,
                   bool half_close = true) {
  HttpReply reply;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return reply;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return reply;
  }
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  if (half_close) ::shutdown(fd, SHUT_WR);
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    reply.raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  if (reply.raw.rfind("HTTP/1.1 ", 0) == 0 && reply.raw.size() >= 12) {
    reply.status = std::atoi(reply.raw.c_str() + 9);
  }
  const std::size_t sep = reply.raw.find("\r\n\r\n");
  if (sep != std::string::npos) reply.body = reply.raw.substr(sep + 4);
  return reply;
}

HttpReply http_get(std::uint16_t port, const std::string& path) {
  return http_raw(port,
                  "GET " + path + " HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n",
                  /*half_close=*/false);
}

// ---- mini Prometheus text-format checker --------------------------------
// Validates the subset of exposition format 0.0.4 the exporter emits:
// HELP/TYPE comment lines, bare and labeled samples, histogram series
// with strictly increasing `le` labels, non-decreasing cumulative bucket
// counts, a terminal +Inf bucket equal to _count, and TYPE lines
// preceding every family's samples. Collects problems instead of
// stopping at the first one, so a failed lint names everything wrong.

struct PromChecker {
  std::vector<std::string> problems;
  // Bare (unlabeled) samples: counters and gauges, name -> value.
  std::map<std::string, double> scalars;
  std::map<std::string, std::string> types;  // family -> counter|gauge|...

  static bool valid_name(const std::string& name) {
    if (name.empty()) return false;
    for (std::size_t i = 0; i < name.size(); ++i) {
      const char c = name[i];
      const bool alpha =
          (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
          c == ':';
      if (!(alpha || (i > 0 && c >= '0' && c <= '9'))) return false;
    }
    return true;
  }

  void fail(const std::string& what, const std::string& line) {
    problems.push_back(what + ": '" + line + "'");
  }

  // Histogram family being accumulated.
  struct HistState {
    std::string family;
    double prev_le = -1.0;
    bool saw_inf = false;
    double inf_count = 0.0;
    double prev_cum = -1.0;
    bool any_bucket = false;
  } hist;

  void finish_histogram() {
    if (!hist.any_bucket) return;
    if (!hist.saw_inf) {
      problems.push_back("histogram " + hist.family +
                         " has no le=\"+Inf\" terminal bucket");
    }
    hist = HistState{};
  }

  void check(const std::string& doc) {
    std::istringstream in(doc);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      if (line[0] == '#') {
        std::istringstream ls(line);
        std::string hash, kind, name, rest;
        ls >> hash >> kind >> name;
        if (kind != "HELP" && kind != "TYPE") {
          fail("comment line is neither HELP nor TYPE", line);
          continue;
        }
        if (!valid_name(name)) fail("bad metric name in " + kind, line);
        if (kind == "TYPE") {
          std::string type;
          ls >> type;
          if (type != "counter" && type != "gauge" && type != "histogram" &&
              type != "summary" && type != "untyped") {
            fail("unknown TYPE", line);
          }
          if (types.count(name) != 0) fail("duplicate TYPE for family", line);
          types[name] = type;
        }
        continue;
      }
      // Sample line: name[{labels}] value
      const std::size_t brace = line.find('{');
      const std::size_t space = line.find(' ');
      if (space == std::string::npos) {
        fail("sample line without a value", line);
        continue;
      }
      std::string name, labels;
      std::string value_str;
      if (brace != std::string::npos && brace < space) {
        const std::size_t close = line.find('}', brace);
        if (close == std::string::npos) {
          fail("unterminated label set", line);
          continue;
        }
        name = line.substr(0, brace);
        labels = line.substr(brace + 1, close - brace - 1);
        value_str = line.substr(close + 1);
      } else {
        name = line.substr(0, space);
        value_str = line.substr(space);
      }
      if (!valid_name(name)) fail("bad sample name", line);
      while (!value_str.empty() && value_str.front() == ' ') {
        value_str.erase(value_str.begin());
      }
      char* parse_end = nullptr;
      const double value = std::strtod(value_str.c_str(), &parse_end);
      if (parse_end == value_str.c_str()) {
        fail("unparseable sample value", line);
        continue;
      }

      // Histogram series checks, keyed on the _bucket suffix.
      const bool is_bucket =
          name.size() > 7 && name.compare(name.size() - 7, 7, "_bucket") == 0;
      if (is_bucket) {
        const std::string family = name.substr(0, name.size() - 7);
        if (hist.any_bucket && family != hist.family) finish_histogram();
        hist.family = family;
        hist.any_bucket = true;
        if (types.count(family) == 0 || types[family] != "histogram") {
          fail("histogram bucket without TYPE histogram", line);
        }
        if (labels.rfind("le=\"", 0) != 0 || labels.back() != '"') {
          fail("bucket without an le label", line);
          continue;
        }
        const std::string le = labels.substr(4, labels.size() - 5);
        double le_value;
        if (le == "+Inf") {
          le_value = std::numeric_limits<double>::infinity();
          hist.saw_inf = true;
          hist.inf_count = value;
        } else {
          le_value = std::strtod(le.c_str(), nullptr);
        }
        if (le_value <= hist.prev_le) {
          fail("bucket le labels not strictly increasing", line);
        }
        hist.prev_le = le_value;
        if (value + 1e-9 < hist.prev_cum) {
          fail("cumulative bucket counts decreased", line);
        }
        hist.prev_cum = value;
        continue;
      }
      const bool is_sum =
          name.size() > 4 && name.compare(name.size() - 4, 4, "_sum") == 0;
      const bool is_count =
          name.size() > 6 && name.compare(name.size() - 6, 6, "_count") == 0;
      if (is_count && hist.any_bucket &&
          name.substr(0, name.size() - 6) == hist.family) {
        if (hist.saw_inf && value != hist.inf_count) {
          fail("_count disagrees with the +Inf bucket", line);
        }
        finish_histogram();
        continue;
      }
      if (is_sum && hist.any_bucket) continue;

      // Bare scalar sample: needs a preceding TYPE.
      if (types.count(name) == 0) fail("sample before its TYPE line", line);
      if (types[name] == "counter" && value < 0.0) {
        fail("negative counter", line);
      }
      scalars[name] = value;
    }
    finish_histogram();
  }
};

std::vector<std::string> prom_problems(const std::string& doc,
                                       std::map<std::string, double>* scalars
                                       = nullptr) {
  PromChecker checker;
  checker.check(doc);
  if (scalars != nullptr) *scalars = checker.scalars;
  return checker.problems;
}

// RAII telemetry toggle so a failing test cannot leak a live registry
// into later tests.
struct ScopedTelemetry {
  ScopedTelemetry() { obs::set_enabled(true); }
  ~ScopedTelemetry() { obs::set_enabled(false); }
};

// ---- checker self-tests -------------------------------------------------

TEST(PromChecker, AcceptsExporterOutput) {
  ScopedTelemetry telemetry;
  obs::Registry& reg = obs::Registry::instance();
  reg.reset_values();
  SEG_COUNT("endpoint_test.count", 7);
  SEG_GAUGE_SET("endpoint_test.gauge", -3);
  for (std::uint64_t v : {0u, 1u, 5u, 900u, 70000u}) {
    SEG_HISTOGRAM("endpoint_test.hist", v);
  }
  const std::string doc = obs::render_prometheus();
  const std::vector<std::string> problems = prom_problems(doc);
  EXPECT_TRUE(problems.empty()) << problems.front() << "\n" << doc;
}

TEST(PromChecker, RejectsMalformedDocuments) {
  EXPECT_FALSE(prom_problems("seg_x 1\n").empty())
      << "sample without TYPE must fail";
  EXPECT_FALSE(prom_problems("# TYPE bad-name counter\nbad-name 1\n").empty());
  EXPECT_FALSE(
      prom_problems("# TYPE h histogram\n"
                    "h_bucket{le=\"1\"} 2\nh_bucket{le=\"3\"} 1\n"
                    "h_bucket{le=\"+Inf\"} 1\nh_count 1\n")
          .empty())
      << "shrinking cumulative buckets must fail";
  EXPECT_FALSE(
      prom_problems("# TYPE h histogram\n"
                    "h_bucket{le=\"1\"} 1\nh_count 1\n")
          .empty())
      << "missing +Inf bucket must fail";
  EXPECT_FALSE(
      prom_problems("# TYPE h histogram\n"
                    "h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\n"
                    "h_count 3\n")
          .empty())
      << "+Inf / _count mismatch must fail";
  EXPECT_FALSE(prom_problems("# TYPE c counter\nc -1\n").empty())
      << "negative counter must fail";
}

// The CI scrape linter: point SEG_PROM_LINT_FILE at a saved /metrics
// response and this test validates it with the full checker.
TEST(PromFormat, LintFile) {
  const char* path = std::getenv("SEG_PROM_LINT_FILE");
  if (path == nullptr) {
    GTEST_SKIP() << "SEG_PROM_LINT_FILE not set";
  }
  std::ifstream in(path);
  ASSERT_TRUE(in) << "cannot read " << path;
  std::ostringstream text;
  text << in.rdbuf();
  ASSERT_FALSE(text.str().empty()) << path << " is empty";
  const std::vector<std::string> problems = prom_problems(text.str());
  for (const std::string& p : problems) ADD_FAILURE() << p;
}

// ---- endpoint behavior --------------------------------------------------

TEST(MetricsEndpoint, ServesScrapeHealthAndProgress) {
  ScopedTelemetry telemetry;
  obs::Registry::instance().reset_values();
  SEG_COUNT("endpoint_test.scrapeme", 41);

  obs::MetricsServerOptions mopt;
  mopt.progress_json = [] {
    return std::string("{\"done\":3,\"total\":9}");
  };
  obs::MetricsServer server(std::move(mopt));
  std::string error;
  ASSERT_TRUE(server.start(0, &error)) << error;
  ASSERT_GT(server.port(), 0);

  const HttpReply health = http_get(server.port(), "/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body, "ok\n");

  const HttpReply progress = http_get(server.port(), "/progress");
  EXPECT_EQ(progress.status, 200);
  EXPECT_TRUE(seg::testing::json_well_formed(progress.body))
      << progress.body;
  EXPECT_NE(progress.body.find("\"done\":3"), std::string::npos);

  const HttpReply scrape = http_get(server.port(), "/metrics");
  EXPECT_EQ(scrape.status, 200);
  EXPECT_NE(scrape.raw.find("text/plain; version=0.0.4"), std::string::npos);
  std::map<std::string, double> scalars;
  const std::vector<std::string> problems =
      prom_problems(scrape.body, &scalars);
  EXPECT_TRUE(problems.empty()) << problems.front();
  EXPECT_EQ(scalars["seg_endpoint_test_scrapeme"], 41.0);
}

TEST(MetricsEndpoint, CountersAreMonotoneAcrossScrapes) {
  ScopedTelemetry telemetry;
  obs::Registry::instance().reset_values();
  SEG_COUNT("endpoint_test.mono", 5);

  obs::MetricsServer server;
  ASSERT_TRUE(server.start(0));

  std::map<std::string, double> first, second;
  EXPECT_TRUE(prom_problems(http_get(server.port(), "/metrics").body, &first)
                  .empty());
  SEG_COUNT("endpoint_test.mono", 2);
  EXPECT_TRUE(prom_problems(http_get(server.port(), "/metrics").body, &second)
                  .empty());
  // Every counter present in both scrapes must be non-decreasing.
  for (const auto& [name, value] : first) {
    const auto it = second.find(name);
    if (it == second.end()) continue;
    EXPECT_GE(it->second, value) << name << " decreased between scrapes";
  }
  EXPECT_EQ(second["seg_endpoint_test_mono"] -
                first["seg_endpoint_test_mono"],
            2.0);
}

TEST(MetricsEndpoint, HttpEdgeCases) {
  obs::MetricsServer server;
  ASSERT_TRUE(server.start(0));
  const std::uint16_t port = server.port();

  EXPECT_EQ(http_get(port, "/no/such/path").status, 404);
  EXPECT_EQ(http_raw(port, "POST /metrics HTTP/1.1\r\n\r\n").status, 405);
  // Truncated request head: client half-closes before the blank line.
  EXPECT_EQ(http_raw(port, "GET /metr").status, 400);
  // Malformed request line.
  EXPECT_EQ(http_raw(port, "NONSENSE\r\n\r\n").status, 400);
  // The endpoint survives all of the above and still serves.
  EXPECT_EQ(http_get(port, "/healthz").status, 200);
}

TEST(MetricsEndpoint, ConcurrentScrapesAllSucceed) {
  ScopedTelemetry telemetry;
  obs::MetricsServer server;
  ASSERT_TRUE(server.start(0));
  const std::uint16_t port = server.port();

  std::atomic<int> failures{0};
  std::vector<std::thread> scrapers;
  for (int t = 0; t < 4; ++t) {
    scrapers.emplace_back([port, &failures] {
      for (int i = 0; i < 8; ++i) {
        const HttpReply r = http_get(port, "/metrics");
        if (r.status != 200 || !prom_problems(r.body).empty()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : scrapers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(MetricsEndpoint, DebugFlightRouteIsGated) {
  obs::MetricsServer plain;
  ASSERT_TRUE(plain.start(0));
  EXPECT_EQ(http_get(plain.port(), "/debug/flight").status, 404);

  obs::flight::reset_for_test();
  obs::flight::set_enabled(true);
  obs::flight::record("endpoint_gate_test", 1, 2);
  obs::flight::set_enabled(false);
  obs::MetricsServerOptions mopt;
  mopt.debug_routes = true;
  obs::MetricsServer debug(std::move(mopt));
  ASSERT_TRUE(debug.start(0));
  const HttpReply r = http_get(debug.port(), "/debug/flight");
  EXPECT_EQ(r.status, 200);
  EXPECT_TRUE(seg::testing::json_well_formed(r.body)) << r.body;
  EXPECT_NE(r.body.find("endpoint_gate_test"), std::string::npos);
}

// ---- the determinism pin ------------------------------------------------

std::uint64_t serial_glauber_hash() {
  ModelParams p{.n = 48, .w = 3, .tau = 0.45, .p = 0.5};
  Rng init = Rng::stream(1001, 0);
  SchellingModel m(p, init);
  Rng dyn = Rng::stream(1001, 1);
  const RunResult r = run_glauber(m, dyn);
  std::uint64_t h = hash_bytes(m.spins().data(), m.spins().size());
  h = mix(h, r.flips);
  return mix_double(h, r.final_time);
}

// The frozen golden hash must be reproduced bit-for-bit while a live
// scraper hammers /metrics from another thread: the exporter reads
// registry snapshots only and touches no RNG stream.
TEST(MetricsEndpoint, GoldenTrajectoryUnchangedUnderLiveScraping) {
  ScopedTelemetry telemetry;
  obs::MetricsServer server;
  ASSERT_TRUE(server.start(0));
  const std::uint16_t port = server.port();

  std::atomic<bool> stop{false};
  std::atomic<int> scrapes{0};
  std::thread scraper([port, &stop, &scrapes] {
    while (!stop.load()) {
      if (http_get(port, "/metrics").status == 200) {
        scrapes.fetch_add(1);
      }
    }
  });

  const std::uint64_t h = serial_glauber_hash();
  // The run can outpace the first scrape; keep the endpoint under load
  // until a few scrapes definitely overlapped registry writes.
  for (int i = 0; i < 200 && scrapes.load() < 3; ++i) {
    serial_glauber_hash();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true);
  scraper.join();

  EXPECT_EQ(h, golden::kGlauber);
  EXPECT_GT(scrapes.load(), 0) << "scraper never completed a request";
}

}  // namespace
}  // namespace seg
