// End-to-end pipeline tests: initial configuration -> dynamics ->
// measurement, checking the paper's qualitative predictions at small scale.
#include <cmath>

#include <gtest/gtest.h>

#include "analysis/almost.h"
#include "analysis/clusters.h"
#include "analysis/regions.h"
#include "core/dynamics.h"
#include "core/experiment.h"
#include "core/model.h"
#include "theory/constants.h"

namespace seg {
namespace {

double final_mean_region(int n, int w, double tau, std::uint64_t seed,
                         std::size_t samples = 24) {
  ModelParams p{.n = n, .w = w, .tau = tau, .p = 0.5};
  Rng init = Rng::stream(seed, 0);
  SchellingModel m(p, init);
  Rng dyn = Rng::stream(seed, 1);
  run_glauber(m, dyn);
  const auto field = mono_region_field(m);
  Rng smp = Rng::stream(seed, 2);
  return mean_mono_region_size(field, samples, smp);
}

TEST(Integration, FullPipelineDeterministic) {
  const double a = final_mean_region(32, 2, 0.45, 7);
  const double b = final_mean_region(32, 2, 0.45, 7);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Integration, SegregationEmergesInTheTheoremInterval) {
  // tau in (tau_1, 1/2): expect the mean monochromatic region after the
  // process to clearly exceed the initial-configuration baseline.
  ModelParams p{.n = 48, .w = 2, .tau = 0.45, .p = 0.5};
  Rng init(11);
  SchellingModel m(p, init);
  const auto field0 = mono_region_field(m);
  Rng s0(12);
  const double initial = mean_mono_region_size(field0, 32, s0);
  Rng dyn(13);
  run_glauber(m, dyn);
  const auto field1 = mono_region_field(m);
  Rng s1(12);
  const double final = mean_mono_region_size(field1, 32, s1);
  EXPECT_GT(final, 2.0 * initial);
}

TEST(Integration, StaticRegimeBelowOneQuarter) {
  // Barmpalias et al. [26]: for tau < 1/4 the initial configuration is
  // static w.h.p. (here: very few flips on a moderate grid).
  ModelParams p{.n = 48, .w = 2, .tau = 0.2, .p = 0.5};
  Rng init(21);
  SchellingModel m(p, init);
  Rng dyn(22);
  const RunResult r = run_glauber(m, dyn);
  EXPECT_TRUE(r.terminated);
  EXPECT_LT(r.flips, 20u);
}

TEST(Integration, SymmetricTausBehaveSimilarly) {
  // Glauber dynamics is symmetric about tau = 1/2 (Sec. IV-C): flips at
  // tau and 1 - tau have mirrored statistics. Compare flip counts loosely
  // across several seeds.
  RunningStats low, high;
  for (std::uint64_t s = 0; s < 4; ++s) {
    ModelParams pl{.n = 32, .w = 2, .tau = 0.45, .p = 0.5};
    ModelParams ph{.n = 32, .w = 2, .tau = 0.55, .p = 0.5};
    Rng il = Rng::stream(100 + s, 0), ih = Rng::stream(200 + s, 0);
    SchellingModel ml(pl, il), mh(ph, ih);
    Rng dl = Rng::stream(100 + s, 1), dh = Rng::stream(200 + s, 1);
    low.add(static_cast<double>(run_glauber(ml, dl).flips));
    high.add(static_cast<double>(run_glauber(mh, dh).flips));
  }
  // Same order of magnitude (not exact equality: tau > 1/2 has unhappy
  // agents that cannot flip).
  EXPECT_GT(high.mean(), 0.2 * low.mean());
  EXPECT_LT(high.mean(), 5.0 * low.mean());
}

TEST(Integration, NoCompleteSegregationAtBalancedP) {
  // Corollary of the exponential upper bound: complete segregation does
  // not occur w.h.p. for p = 1/2.
  int complete = 0;
  for (std::uint64_t s = 0; s < 6; ++s) {
    ModelParams p{.n = 32, .w = 2, .tau = 0.45, .p = 0.5};
    Rng init = Rng::stream(300 + s, 0);
    SchellingModel m(p, init);
    Rng dyn = Rng::stream(300 + s, 1);
    run_glauber(m, dyn);
    complete += completely_segregated(m.spins());
  }
  EXPECT_EQ(complete, 0);
}

TEST(Integration, HighInitialBiasCanFixate) {
  // Fontes et al. [27]: at tau = 1/2 and p close to 1 the dynamics
  // converge to the all-(+1) state.
  ModelParams p{.n = 32, .w = 2, .tau = 0.5, .p = 0.97};
  Rng init(41);
  SchellingModel m(p, init);
  Rng dyn(42);
  run_glauber(m, dyn);
  EXPECT_TRUE(completely_segregated(m.spins()));
  EXPECT_DOUBLE_EQ(m.plus_fraction(), 1.0);
}

TEST(Integration, SegregationAmplifiesAcrossTheInterval) {
  // Robust form of the paper's qualitative claim: for every tau inside the
  // segregation interval the process amplifies the mean monochromatic
  // region well beyond its initial value. (The *direction* of the tau
  // trend at finite N is measured by bench/exp_monotonicity and discussed
  // in EXPERIMENTS.md; the theorem's monotonicity statement concerns the
  // asymptotic exponents a(tau), b(tau), which test_theory.cc pins.)
  for (const double tau : {0.44, 0.46, 0.48}) {
    RunningStats initial, final_;
    for (std::uint64_t s = 0; s < 4; ++s) {
      ModelParams p{.n = 48, .w = 2, .tau = tau, .p = 0.5};
      Rng init = Rng::stream(900 + s, 0);
      SchellingModel m(p, init);
      const auto f0 = mono_region_field(m);
      Rng s0 = Rng::stream(900 + s, 2);
      initial.add(mean_mono_region_size(f0, 24, s0));
      Rng dyn = Rng::stream(900 + s, 1);
      run_glauber(m, dyn);
      const auto f1 = mono_region_field(m);
      Rng s1 = Rng::stream(900 + s, 2);
      final_.add(mean_mono_region_size(f1, 24, s1));
    }
    EXPECT_GT(final_.mean(), 1.5 * initial.mean()) << "tau=" << tau;
  }
}

TEST(Integration, AlmostRegionsDominateMonoRegions) {
  ModelParams p{.n = 40, .w = 2, .tau = 0.4, .p = 0.5};
  Rng init(61);
  SchellingModel m(p, init);
  Rng dyn(62);
  run_glauber(m, dyn);
  const auto mono = mono_region_field(m);
  const auto almost = almost_mono_field(m, 0.1);
  Rng s1(63), s2(63);
  EXPECT_GE(mean_almost_region_size(almost, 24, s1),
            mean_mono_region_size(mono, 24, s2));
}

TEST(Integration, RunTrialsAggregatesExperiment) {
  const RunningStats stats = run_trials(
      6, 777,
      [](std::size_t, Rng& rng) {
        ModelParams p{.n = 24, .w = 2, .tau = 0.45, .p = 0.5};
        SchellingModel m(p, rng);
        run_glauber(m, rng);
        return m.happy_fraction();
      },
      2);
  EXPECT_EQ(stats.count(), 6u);
  EXPECT_DOUBLE_EQ(stats.mean(), 1.0);  // tau < 1/2: everyone ends happy
}

TEST(Integration, InterfaceShrinksAsSegregationProceeds) {
  ModelParams p{.n = 48, .w = 2, .tau = 0.45, .p = 0.5};
  Rng init(71);
  SchellingModel m(p, init);
  const auto before = cluster_stats(m);
  Rng dyn(72);
  run_glauber(m, dyn);
  const auto after = cluster_stats(m);
  EXPECT_LT(after.interface_length, before.interface_length);
  EXPECT_GT(after.largest_cluster, before.largest_cluster);
}

}  // namespace
}  // namespace seg
