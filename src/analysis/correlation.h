// Two-point spin correlations and the segregation length scale.
//
// C(r) = <s(x) s(x + r e)> - <s>^2 averaged over sites and over the four
// lattice directions (two axes, two diagonals with l-infinity norm r).
// After the process terminates, C decays on the scale of the segregated
// regions; the correlation length (first crossing of C(0)/e) is a
// resolution-independent companion to the region-size metrics of
// Theorems 1-2.
#pragma once

#include <cstdint>
#include <vector>

namespace seg {

// C(r) for r = 0..max_r on the torus (spins +1/-1). O(n^2 max_r).
std::vector<double> pair_correlation(const std::vector<std::int8_t>& spins,
                                     int n, int max_r);

// First r (linearly interpolated) where C(r) drops below C(0)/e; returns
// max_r if it never does. C must be a pair_correlation() output.
double correlation_length(const std::vector<double>& c);

}  // namespace seg
