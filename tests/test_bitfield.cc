// The bit-packed storage battery.
//
// Layer 1 pins BitField itself: pack/unpack roundtrips, masked-popcount
// row counts against a scalar reference at every alignment (word-multiple
// and ragged sides), and the wrapped window popcount at every center.
// Layer 2 pins PackedHaloField against the byte HaloField it replaces.
// Layer 3 is the backend differential: every model policy (Glauber,
// discrete, synchronous, comfort, Kawasaki) must reproduce the *frozen
// golden trajectory hashes* under BOTH EngineStorage backends — the
// packed engine is not "close to" the byte engine, it is bit-for-bit the
// same dynamical system. Layer 4 drives sharded engines (4-stripe and
// checkerboard layouts, the latter exercising the atomic shared-word bit
// flips) through identical arbitrary flip sequences on both backends and
// a packed mutation fuzz with full recount audits.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/comfort.h"
#include "core/dynamics.h"
#include "core/kawasaki.h"
#include "core/model.h"
#include "golden_fixtures.h"
#include "lattice/bitfield.h"
#include "lattice/halo_field.h"
#include "lattice/sharded.h"
#include "lattice/window.h"
#include "rng/rng.h"

namespace seg {
namespace {

using golden::hash_bytes;
using golden::mix;
using golden::mix_double;

std::vector<std::int8_t> random_field(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int8_t> spins(static_cast<std::size_t>(n) * n);
  for (auto& s : spins) s = rng.bernoulli(0.5) ? 1 : -1;
  return spins;
}

// Scalar reference for count_row: walk the wrapped interval cell by cell.
std::int32_t count_row_reference(const std::vector<std::int8_t>& spins,
                                 int n, int y, int x0, int len) {
  std::int32_t c = 0;
  for (int i = 0; i < len; ++i) {
    c += spins[static_cast<std::size_t>(y) * n + (x0 + i) % n] > 0;
  }
  return c;
}

TEST(BitField, PackUnpackRoundtrip) {
  // 130 = 2*64 + 2 exercises ragged final words; 64 exercises the exact
  // word-multiple layout with no tail masking.
  for (const int n : {64, 130}) {
    const auto spins = random_field(n, 40001 + n);
    const BitField bits(spins, n);
    EXPECT_EQ(bits.side(), n);
    EXPECT_EQ(bits.unpack(), spins);
    std::int64_t plus = 0;
    for (const std::int8_t s : spins) plus += (s == 1);
    EXPECT_EQ(bits.count_all(), plus);
    for (std::uint32_t id = 0; id < spins.size(); ++id) {
      EXPECT_EQ(bits.spin(id), spins[id]) << "id " << id;
    }
  }
}

TEST(BitField, FlipAndAssignKeepPaddingClear) {
  const int n = 70;  // 6 padding bits per row
  const auto spins = random_field(n, 40002);
  BitField bits(spins, n);
  Rng rng(40003);
  std::int64_t plus = bits.count_all();
  for (int step = 0; step < 4000; ++step) {
    const auto id =
        static_cast<std::uint32_t>(rng.uniform_below(std::uint64_t(n) * n));
    const bool was_plus = bits.test(id);
    if (rng.bernoulli(0.5)) {
      bits.flip(id);
    } else {
      bits.flip_atomic(id);
    }
    plus += was_plus ? -1 : 1;
    ASSERT_EQ(bits.test(id), !was_plus);
    // count_all sums raw words: any bit leaked into row padding breaks it.
    ASSERT_EQ(bits.count_all(), plus) << "step " << step;
  }
  for (std::uint32_t id = 0; id < std::uint64_t(n) * n; ++id) {
    bits.assign(id, spins[id] > 0);
  }
  EXPECT_EQ(bits.unpack(), spins);
}

TEST(BitField, CountRowMatchesScalarAtEveryAlignment) {
  // n = 192 keeps rows at exact word multiples; n = 130 leaves a 62-bit
  // ragged tail. Every (x0, len) pair covers all head/tail mask shapes,
  // the multi-word middle loop, and the wrap-around split.
  for (const int n : {192, 130}) {
    const auto spins = random_field(n, 40004 + n);
    const BitField bits(spins, n);
    for (const int y : {0, 1, n - 1}) {
      for (int x0 = 0; x0 < n; ++x0) {
        for (const int len : {1, 2, 63, 64, 65, 127, 128, n}) {
          ASSERT_EQ(bits.count_row(y, x0, len),
                    count_row_reference(spins, n, y, x0, len))
              << "n=" << n << " y=" << y << " x0=" << x0 << " len=" << len;
        }
      }
    }
  }
}

TEST(BitField, PackedWindowCountMatchesScalarAtEveryCenter) {
  for (const int n : {130, 64}) {
    const auto spins = random_field(n, 40005 + n);
    const BitField bits(spins, n);
    // r = 31 makes 2r+1 = 63 of a 64/130 torus: nearly every window wraps.
    for (const int r : {1, 5, 31}) {
      for (int cy = 0; cy < n; ++cy) {
        for (int cx = 0; cx < n; ++cx) {
          std::int32_t want = 0;
          for_each_window_cell(cx, cy, r, n, [&](std::uint32_t id) {
            want += spins[id] > 0;
          });
          ASSERT_EQ(packed_window_count(bits, cx, cy, r), want)
              << "n=" << n << " r=" << r << " center (" << cx << ", " << cy
              << ")";
        }
      }
    }
  }
}

TEST(PackedHaloField, MatchesByteHaloField) {
  const int n = 96;
  const auto spins = random_field(n, 40006);
  const BitField bits(spins, n);
  for (const int halo : {3, 17}) {
    const HaloField<std::int8_t> bytes(spins, n, halo);
    const PackedHaloField packed(bits, halo);
    for (int y = -halo; y < n + halo; ++y) {
      for (int x = -halo; x < n + halo; ++x) {
        ASSERT_EQ(packed.spin(x, y), bytes.at(x, y))
            << "halo=" << halo << " (" << x << ", " << y << ")";
      }
    }
    for (int cy = 0; cy < n; ++cy) {
      for (int cx = 0; cx < n; ++cx) {
        ASSERT_EQ(packed.count_window(cx, cy, halo),
                  packed_window_count(bits, cx, cy, halo))
            << "halo=" << halo << " center (" << cx << ", " << cy << ")";
      }
    }
  }
}

// ---- Layer 3: backend differential against the frozen golden hashes ----

const EngineStorage kBothBackends[] = {EngineStorage::kByte,
                                       EngineStorage::kPacked};

TEST(PackedDifferential, GlauberReproducesGoldenOnBothBackends) {
  for (const EngineStorage storage : kBothBackends) {
    ModelParams p{.n = 48, .w = 3, .tau = 0.45, .p = 0.5};
    p.storage = storage;
    Rng init = Rng::stream(1001, 0);
    SchellingModel m(p, init);
    ASSERT_EQ(m.storage(), storage);
    Rng dyn = Rng::stream(1001, 1);
    const RunResult r = run_glauber(m, dyn);
    std::uint64_t h = hash_bytes(m.spins().data(), m.spins().size());
    h = mix(h, r.flips);
    h = mix_double(h, r.final_time);
    EXPECT_EQ(h, golden::kGlauber) << "storage " << static_cast<int>(storage);
  }
}

TEST(PackedDifferential, DiscreteReproducesGoldenOnBothBackends) {
  for (const EngineStorage storage : kBothBackends) {
    ModelParams p{.n = 40, .w = 2, .tau = 0.55, .p = 0.5};
    p.storage = storage;
    Rng init = Rng::stream(1002, 0);
    SchellingModel m(p, init);
    Rng dyn = Rng::stream(1002, 1);
    RunOptions opt;
    opt.max_flips = 3000;
    const RunResult r = run_discrete(m, dyn, opt);
    std::uint64_t h = hash_bytes(m.spins().data(), m.spins().size());
    h = mix(h, r.flips);
    h = mix_double(h, r.final_time);
    EXPECT_EQ(h, golden::kDiscrete) << "storage " << static_cast<int>(storage);
  }
}

TEST(PackedDifferential, SynchronousReproducesGoldenOnBothBackends) {
  for (const EngineStorage storage : kBothBackends) {
    ModelParams p{.n = 32, .w = 2, .tau = 0.45, .p = 0.5};
    p.storage = storage;
    Rng init = Rng::stream(1004, 0);
    SchellingModel m(p, init);
    const RunResult r = run_synchronous(m, 64);
    std::uint64_t h = hash_bytes(m.spins().data(), m.spins().size());
    h = mix(h, r.flips);
    h = mix(h, r.rounds);
    h = mix(h, r.cycle_detected ? 1 : 0);
    EXPECT_EQ(h, golden::kSynchronous)
        << "storage " << static_cast<int>(storage);
  }
}

TEST(PackedDifferential, ComfortReproducesGoldenOnBothBackends) {
  for (const EngineStorage storage : kBothBackends) {
    ComfortParams p{.n = 40, .w = 2, .tau_lo = 0.4, .tau_hi = 0.8, .p = 0.5};
    p.storage = storage;
    Rng init = Rng::stream(1005, 0);
    ComfortModel m(p, init);
    Rng dyn = Rng::stream(1005, 1);
    const ComfortRunResult r = run_comfort(m, dyn, 5000);
    std::uint64_t h = hash_bytes(m.spins().data(), m.spins().size());
    h = mix(h, r.flips);
    h = mix_double(h, r.final_time);
    EXPECT_EQ(h, golden::kComfort) << "storage " << static_cast<int>(storage);
  }
}

TEST(PackedDifferential, KawasakiReproducesGoldenOnBothBackends) {
  for (const EngineStorage storage : kBothBackends) {
    ModelParams p{.n = 32, .w = 2, .tau = 0.4, .p = 0.5};
    p.storage = storage;
    Rng init = Rng::stream(1007, 0);
    SchellingModel m(p, init);
    Rng dyn = Rng::stream(1007, 1);
    KawasakiOptions opt;
    opt.max_swaps = 1500;
    const KawasakiResult r = run_kawasaki(m, dyn, opt);
    std::uint64_t h = hash_bytes(m.spins().data(), m.spins().size());
    h = mix(h, r.swaps);
    h = mix(h, r.proposals);
    EXPECT_EQ(h, golden::kKawasaki) << "storage " << static_cast<int>(storage);
  }
}

// The sparse von Neumann stencil takes the generic (non-span) flip path;
// the packed backend must agree there too, asymmetric thresholds included.
TEST(PackedDifferential, AsymVonNeumannReproducesGoldenOnBothBackends) {
  for (const EngineStorage storage : kBothBackends) {
    ModelParams p{.n = 40, .w = 3, .tau = 0.4, .p = 0.5, .tau_minus = 0.55,
                  .shape = NeighborhoodShape::kVonNeumann};
    p.storage = storage;
    Rng init = Rng::stream(1003, 0);
    SchellingModel m(p, init);
    Rng dyn = Rng::stream(1003, 1);
    RunOptions opt;
    opt.max_flips = 4000;
    const RunResult r = run_glauber(m, dyn, opt);
    std::uint64_t h = hash_bytes(m.spins().data(), m.spins().size());
    h = mix(h, r.flips);
    h = mix_double(h, r.final_time);
    EXPECT_EQ(h, golden::kAsymVonNeumann)
        << "storage " << static_cast<int>(storage);
  }
}

// ---- Layer 4: sharded layouts and packed mutation fuzz ----

TEST(PackedDifferential, ShardedLayoutsMatchByteBackendFlipForFlip) {
  // n = 36 with a 3x3 checkerboard cuts columns at 12/24 — off 64-bit
  // alignment, so shards share spin words and the packed engine routes
  // those flips through the atomic fetch-xor path.
  ModelParams params{.n = 36, .w = 2, .tau = 0.45, .p = 0.5};
  for (const bool checkers : {false, true}) {
    const ShardLayout layout =
        checkers ? ShardLayout::checkerboard(params.n, params.w, 3, 3)
                 : ShardLayout::stripes(params.n, params.w, 4);
    Rng spin_rng(41001);
    const auto spins = random_spins(params.n, 0.5, spin_rng);
    ModelParams bp = params;
    bp.storage = EngineStorage::kByte;
    SchellingModel byte_model(bp, spins, layout);
    ModelParams pp = params;
    pp.storage = EngineStorage::kPacked;
    SchellingModel packed_model(pp, spins, layout);
    Rng rng(41002 + checkers);
    for (int step = 0; step < 6000; ++step) {
      const auto id = static_cast<std::uint32_t>(
          rng.uniform_below(byte_model.agent_count()));
      byte_model.flip(id);
      packed_model.flip(id);
    }
    ASSERT_TRUE(packed_model.check_invariants());
    EXPECT_EQ(packed_model.spins(), byte_model.spins());
    EXPECT_EQ(packed_model.count_unhappy(), byte_model.count_unhappy());
    for (int s = 0; s < packed_model.shard_count(); ++s) {
      EXPECT_EQ(packed_model.unhappy_set(s).size(),
                byte_model.unhappy_set(s).size())
          << "shard " << s;
    }
  }
}

TEST(PackedFuzz, ArbitraryFlipsKeepPackedInvariants) {
  // Arbitrary-site mutation fuzz pinned to the packed backend (the
  // invariant-fuzz suite runs whatever the build default resolves to;
  // this one must exercise the bit path even under SEG_PACKED_DEFAULT=OFF
  // builds). w = 10 on n = 24 wraps every window past the seam.
  struct Config {
    ModelParams params;
    std::uint64_t seed;
  };
  Config configs[] = {
      {{.n = 32, .w = 2, .tau = 0.45, .p = 0.5}, 42001},
      {{.n = 24, .w = 10, .tau = 0.55, .p = 0.4}, 42002},
  };
  for (Config& config : configs) {
    config.params.storage = EngineStorage::kPacked;
    Rng rng(config.seed);
    SchellingModel model(config.params, rng);
    ASSERT_TRUE(model.check_invariants());
    for (int step = 0; step < 6000; ++step) {
      model.flip(static_cast<std::uint32_t>(
          rng.uniform_below(model.agent_count())));
      if (rng.uniform_below(400) == 0) {
        ASSERT_TRUE(model.check_invariants()) << "step " << step;
      }
    }
    ASSERT_TRUE(model.check_invariants());
    // The packed bits and the byte snapshot must be two views of one
    // field.
    EXPECT_EQ(model.packed_spins().unpack(), model.spins());
  }
}

}  // namespace
}  // namespace seg
