#include "analysis/regions.h"

#include <algorithm>
#include <cassert>

#include "core/model.h"
#include "grid/distance_transform.h"

namespace seg {

MonoRegionField mono_region_field(const std::vector<std::int8_t>& spins,
                                  int n) {
  MonoRegionField field;
  field.n = n;
  field.radius = mono_ball_radius(spins, n);
  return field;
}

MonoRegionField mono_region_field(const SchellingModel& model) {
  return mono_region_field(model.spins(), model.side());
}

std::int64_t mono_region_size_of(const MonoRegionField& field, Point u) {
  const int n = field.n;
  std::int64_t best = 1;  // the radius-0 ball {u} is always monochromatic
  for (int cy = 0; cy < n; ++cy) {
    for (int cx = 0; cx < n; ++cx) {
      const std::int32_t r =
          field.radius[static_cast<std::size_t>(cy) * n + cx];
      if (r <= 0) continue;
      if (torus_linf(Point{cx, cy}, u, n) <= r) {
        best = std::max(best, ball_size(r));
      }
    }
  }
  return best;
}

double mean_mono_region_size(const MonoRegionField& field,
                             std::size_t samples, Rng& rng) {
  assert(samples > 0);
  const auto total =
      static_cast<std::uint64_t>(field.n) * static_cast<std::uint64_t>(field.n);
  double sum = 0.0;
  for (std::size_t s = 0; s < samples; ++s) {
    const auto id = rng.uniform_below(total);
    const Point u{static_cast<int>(id % field.n),
                  static_cast<int>(id / field.n)};
    sum += static_cast<double>(mono_region_size_of(field, u));
  }
  return sum / static_cast<double>(samples);
}

std::int64_t largest_mono_region(const MonoRegionField& field) {
  std::int32_t best = 0;
  for (const std::int32_t r : field.radius) best = std::max(best, r);
  return ball_size(best);
}

}  // namespace seg
