// Runtime telemetry: a process-wide registry of named counters, gauges,
// and log2-bucketed value histograms, built for instrumentation of the
// simulation hot paths.
//
// Write-side design — no atomic RMW on the hot path. Every writing
// thread owns a cache-line-guarded slab of plain 64-bit cells; a counter
// add is one relaxed load + one relaxed store on the thread's own cell
// (compilers lower both to ordinary MOVs on x86/ARM), so concurrent
// writers never contend and never bounce cache lines. The read side
// aggregates by summing the cells of every slab ever registered; slabs
// are returned to a free list when their thread exits and may be adopted
// by a later thread, which keeps totals exact and slab memory bounded by
// the peak thread count.
//
// Enabling. Two switches, one compile-time and one runtime:
//  * Building with -DSEG_TELEMETRY=OFF (CMake) defines
//    SEG_TELEMETRY_DISABLED and compiles every SEG_* macro below to
//    nothing — the instrumented code carries zero telemetry bytes.
//  * At runtime telemetry starts disabled; seg::obs::set_enabled(true)
//    turns it on (the campaign runner does this for --progress/--trace/
//    --telemetry). While disabled, a macro costs one relaxed bool load
//    and a predictable branch — the overhead budget pinned by
//    BM_FlipTelemetry is <= 2% on BM_Flip.
//
// Naming convention: dot-separated lowercase paths, coarse to fine —
// "engine.flips", "dynamics.deferred", "pool.campaign.worker.3.busy_us",
// "streaming.magnetization". The README "Telemetry & tracing" section
// lists the registry names each layer emits.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace seg::obs {

// Log2 histogram layout: bucket 0 counts the value 0, bucket b >= 1
// counts values v with bit_width(v) == b, i.e. v in [2^(b-1), 2^b - 1].
// Values at or beyond 2^62 land in the last bucket.
inline constexpr int kHistogramBuckets = 64;

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

// Opaque handle resolved once per call site (the macros cache it in a
// function-local static); cheap to copy.
struct MetricId {
  std::uint32_t index = 0;  // registry metric-table index
  std::uint32_t slot = 0;   // first slab cell (counters / histograms)
};

// Runtime master switch. Reading is a relaxed atomic load.
bool enabled();
void set_enabled(bool on);

// Aggregated value of one metric at snapshot time.
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t value = 0;                    // counter total / gauge bits
  std::int64_t gauge = 0;                     // gauges only
  std::vector<std::uint64_t> buckets;         // histograms only
  std::uint64_t histogram_count = 0;          // total observations
};

class Registry {
 public:
  // Process-wide instance; intentionally leaked so thread_local slab
  // handles destroyed during process teardown never outlive it.
  static Registry& instance();

  // Registration is idempotent by name and thread-safe; the kind of an
  // existing name must match. Call sites normally go through the SEG_*
  // macros, which register lazily on first use.
  MetricId counter(const std::string& name);
  MetricId gauge(const std::string& name);
  MetricId histogram(const std::string& name);

  // ---- write side (hot) ----
  void add(MetricId id, std::uint64_t delta);      // counters
  void observe(MetricId id, std::uint64_t value);  // histograms
  // Gauges are single global atomics (set from cold paths only).
  void gauge_set(MetricId id, std::int64_t value);
  void gauge_max(MetricId id, std::int64_t value);

  // ---- read side (aggregates across all slabs) ----
  // Zero / empty when the name is unknown.
  std::uint64_t counter_value(const std::string& name) const;
  std::int64_t gauge_value(const std::string& name) const;
  std::vector<std::uint64_t> histogram_buckets(const std::string& name) const;

  // Aggregated snapshot of every registered metric, sorted by name.
  std::vector<MetricSample> snapshot() const;
  // Quantile estimate (q in [0,1]) for a log2 histogram, linearly
  // interpolated inside the bucket that crosses the target rank — the
  // estimator behind the p50/p95/p99 columns in /metrics summaries and
  // run reports. NaN when the name is unknown, not a histogram, or
  // empty.
  double histogram_quantile(const std::string& name, double q) const;
  // Counters matching a name prefix (sorted by name) — the progress
  // reporter uses this for per-worker utilization.
  std::vector<std::pair<std::string, std::uint64_t>> counters_with_prefix(
      const std::string& prefix) const;
  // Human/manifest-friendly key=value rendering of the snapshot:
  // counters and gauges as integers, histograms as "count=N p50~V max~V"
  // with bucket-midpoint quantile estimates.
  std::vector<std::pair<std::string, std::string>> summary() const;

  // Zeroes every cell, gauge, and histogram (names stay registered).
  // Not safe concurrently with writers; tests and benchmarks only.
  void reset_values();

  std::size_t metric_count() const;

  struct Impl;  // public so file-local thread-exit hooks can name it

 private:
  Registry();
  ~Registry() = delete;  // leaked singleton
  Impl* impl_;
};

// Quantile over a raw log2 bucket vector (layout as above): linear
// interpolation between the bucket's value range endpoints at the target
// rank. Shared by Registry::histogram_quantile, the Prometheus
// exposition, and the run-report renderer. NaN on an empty histogram.
double quantile_from_log2_buckets(const std::vector<std::uint64_t>& buckets,
                                  double q);

// RAII phase timer behind SEG_TIMED: measures the scope's wall duration
// and feeds the microsecond count into a log2 histogram, so phase
// latency distributions (p50/p95/p99) are available from /metrics and
// run reports — not only from Chrome traces. The id_fn indirection lets
// the macro cache the registry handle in a function-local static while
// this class stays non-template at the storage level; nothing (not even
// a clock read) happens while telemetry is runtime-disabled.
class ScopedTimer {
 public:
  template <typename IdFn>
  explicit ScopedTimer(IdFn id_fn) {
    if (enabled()) {
      id_ = id_fn();
      active_ = true;
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ScopedTimer() {
    if (active_) {
      const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
      Registry::instance().observe(id_, static_cast<std::uint64_t>(us));
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  MetricId id_;
  bool active_ = false;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace seg::obs

// ---- instrumentation macros --------------------------------------------
//
// `name` must be a string literal (the handle is cached in a static
// local, so one call site must always name the same metric).

#ifndef SEG_OBS_CONCAT
#define SEG_OBS_CONCAT_INNER(a, b) a##b
#define SEG_OBS_CONCAT(a, b) SEG_OBS_CONCAT_INNER(a, b)
#endif

#if defined(SEG_TELEMETRY_DISABLED)

#define SEG_COUNT(name, delta) \
  do {                         \
  } while (0)
#define SEG_TIMED(name) \
  do {                  \
  } while (0)
#define SEG_GAUGE_SET(name, value) \
  do {                             \
  } while (0)
#define SEG_GAUGE_MAX(name, value) \
  do {                             \
  } while (0)
#define SEG_HISTOGRAM(name, value) \
  do {                             \
  } while (0)

#else

#define SEG_COUNT(name, delta)                                        \
  do {                                                                \
    if (::seg::obs::enabled()) {                                      \
      static const ::seg::obs::MetricId seg_obs_id =                  \
          ::seg::obs::Registry::instance().counter(name);             \
      ::seg::obs::Registry::instance().add(seg_obs_id,                \
                                           static_cast<std::uint64_t>(\
                                               delta));               \
    }                                                                 \
  } while (0)

#define SEG_GAUGE_SET(name, value)                                  \
  do {                                                              \
    if (::seg::obs::enabled()) {                                    \
      static const ::seg::obs::MetricId seg_obs_id =                \
          ::seg::obs::Registry::instance().gauge(name);             \
      ::seg::obs::Registry::instance().gauge_set(                   \
          seg_obs_id, static_cast<std::int64_t>(value));            \
    }                                                               \
  } while (0)

#define SEG_GAUGE_MAX(name, value)                                  \
  do {                                                              \
    if (::seg::obs::enabled()) {                                    \
      static const ::seg::obs::MetricId seg_obs_id =                \
          ::seg::obs::Registry::instance().gauge(name);             \
      ::seg::obs::Registry::instance().gauge_max(                   \
          seg_obs_id, static_cast<std::int64_t>(value));            \
    }                                                               \
  } while (0)

#define SEG_HISTOGRAM(name, value)                                  \
  do {                                                              \
    if (::seg::obs::enabled()) {                                    \
      static const ::seg::obs::MetricId seg_obs_id =                \
          ::seg::obs::Registry::instance().histogram(name);         \
      ::seg::obs::Registry::instance().observe(                     \
          seg_obs_id, static_cast<std::uint64_t>(value));           \
    }                                                               \
  } while (0)

// Scoped phase-latency timer: the histogram `name` (microsecond values)
// receives the duration of the rest of the enclosing block. Place next
// to SEG_TRACE_SPAN so every traced phase also has a scrapeable latency
// distribution. Costs one relaxed bool load + branch while disabled.
#define SEG_TIMED(name)                                               \
  ::seg::obs::ScopedTimer SEG_OBS_CONCAT(seg_timed_, __LINE__)(       \
      []() -> ::seg::obs::MetricId {                                  \
        static const ::seg::obs::MetricId seg_timed_id =              \
            ::seg::obs::Registry::instance().histogram(name);         \
        return seg_timed_id;                                          \
      })

#endif  // SEG_TELEMETRY_DISABLED
