#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace seg {

void RunningStats::add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::sem() const {
  if (count_ < 1) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

double RunningStats::ci95_half_width() const { return 1.96 * sem(); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi) {
  // Fail safe: bins == 0 would otherwise make add() index
  // counts_[size - 1] == counts_[SIZE_MAX], and hi <= lo would put every
  // in-range observation into a negative bin index. Degenerate
  // parameters collapse to a single bin over a unit range.
  if (bins == 0) bins = 1;
  if (!(hi_ > lo_)) hi_ = lo_ + 1.0;
  width_ = (hi_ - lo_) / static_cast<double>(bins);
  counts_.assign(bins, 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto i = static_cast<std::size_t>((x - lo_) / width_);
  if (i >= counts_.size()) i = counts_.size() - 1;  // fp edge case
  ++counts_[i];
}

void Histogram::merge(const Histogram& other) {
  // An empty accumulator merges as a no-op regardless of its binning —
  // the parallel fold's identity element, mirroring RunningStats::merge.
  if (other.total_ == 0) return;
  // Fail closed on mismatched binnings in every build type: merging them
  // would read out of bounds and produce garbage counts, and the edge
  // cases are pinned by tests, so the behavior must not differ between
  // the sanitizer (Debug) and production (Release) builds.
  if (lo_ != other.lo_ || hi_ != other.hi_ ||
      counts_.size() != other.counts_.size()) {
    return;
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::fraction(std::size_t i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(i)) / static_cast<double>(total_);
}

LinearFit fit_line(const std::vector<double>& x, const std::vector<double>& y) {
  assert(x.size() == y.size());
  LinearFit fit;
  fit.n = x.size();
  if (fit.n < 2) return fit;
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < fit.n; ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / static_cast<double>(fit.n);
  const double my = sy / static_cast<double>(fit.n);
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < fit.n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

double quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double mean_of(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double s = 0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

}  // namespace seg
