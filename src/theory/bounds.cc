#include "theory/bounds.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "theory/entropy.h"
#include "theory/exponents.h"

namespace seg {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
constexpr double kLog2E = 1.4426950408889634;  // log2(e)
}  // namespace

double log2_binomial(std::int64_t n, std::int64_t k) {
  if (k < 0 || k > n) return kNegInf;
  if (k == 0 || k == n) return 0.0;
  const double ln = std::lgamma(static_cast<double>(n) + 1.0) -
                    std::lgamma(static_cast<double>(k) + 1.0) -
                    std::lgamma(static_cast<double>(n - k) + 1.0);
  return ln * kLog2E;
}

double log2_binomial_cdf_half(std::int64_t n, std::int64_t k) {
  if (k < 0) return kNegInf;
  if (k >= n) return 0.0;
  // log2 sum_{j<=k} C(n, j) - n. Accumulate in log space, largest term
  // last so the log-sum-exp is stable.
  double log_sum = kNegInf;
  for (std::int64_t j = 0; j <= k; ++j) {
    const double term = log2_binomial(n, j);
    if (log_sum == kNegInf) {
      log_sum = term;
    } else {
      const double hi = std::max(log_sum, term);
      const double lo = std::min(log_sum, term);
      log_sum = hi + std::log2(1.0 + std::exp2(lo - hi));
    }
  }
  return log_sum - static_cast<double>(n);
}

int happiness_threshold(double tau, int N) {
  assert(N > 0 && tau >= 0.0 && tau <= 1.0);
  // K = ceil(tau * N), robust to tau*N landing a hair above an integer
  // due to floating point (e.g. 0.3 * 10 = 3.0000000000000004).
  const double scaled = tau * static_cast<double>(N);
  const double nearest = std::nearbyint(scaled);
  if (std::abs(scaled - nearest) < 1e-9 * static_cast<double>(N)) {
    return static_cast<int>(nearest);
  }
  return static_cast<int>(std::ceil(scaled));
}

double unhappy_probability_exact(double tau, int N) {
  const int K = happiness_threshold(tau, N);
  // Same-type count (self included) = 1 + Binomial(N-1, 1/2); unhappy iff
  // the count < K, i.e. Binomial(N-1, 1/2) <= K - 2.
  return std::exp2(log2_binomial_cdf_half(N - 1, K - 2));
}

double unhappy_probability_asymptotic(double tau, int N) {
  const double tp = tau_prime(tau, N);
  if (tp <= 0.0) return 0.0;
  return std::exp2(-(1.0 - binary_entropy(tp)) * N) / std::sqrt(N);
}

std::int64_t neighborhood_size(int r) {
  const std::int64_t side = 2 * static_cast<std::int64_t>(r) + 1;
  return side * side;
}

int radical_radius(int w, double eps_prime) {
  return static_cast<int>(std::floor((1.0 + eps_prime) * w));
}

double radical_region_probability_exact(double tau, int w, double eps_prime,
                                        double eps) {
  assert(w >= 1 && eps_prime > 0.0);
  const int N = static_cast<int>(neighborhood_size(w));
  const int rr = radical_radius(w, eps_prime);
  const std::int64_t ns = neighborhood_size(rr);
  const double that = tau_hat(tau, N, eps);
  // Radical region: strictly fewer than that * (1+e')^2 * N minus-type
  // agents in the radius-(1+e')w neighborhood (paper Sec. III). We use the
  // actual region size ns as the finite-N stand-in for (1+e')^2 N.
  const double bound = that * static_cast<double>(ns);
  const auto limit = static_cast<std::int64_t>(std::ceil(bound)) - 1;
  return std::exp2(log2_binomial_cdf_half(ns, limit));
}

double azuma_two_sided_bound(double t, std::int64_t n_prime) {
  assert(n_prime > 0);
  return std::min(1.0, 2.0 * std::exp(-t * t /
                                      (2.0 * static_cast<double>(n_prime))));
}

double lemma18_bound(double c, double eps, std::int64_t N) {
  assert(c > 0.0 && eps > 0.0 && eps < 0.5 && N > 0);
  const double dev = c * std::pow(static_cast<double>(N), 0.5 + eps);
  // Hoeffding with increments bounded by 1/2:
  // P(|W - N/2| >= dev) <= 2 exp(-2 dev^2 / N).
  return std::min(1.0, 2.0 * std::exp(-2.0 * dev * dev /
                                      static_cast<double>(N)));
}

}  // namespace seg
