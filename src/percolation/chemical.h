// Chemical distance D(x, y) inside the open cluster: the length (site
// count) of the shortest open path. Garet & Marchand (paper Thm. 4) show
// that in the supercritical regime D(0, x) exceeds (1 + alpha) ||x||_1
// only with exponentially small probability — the fact behind the paper's
// chemical firewall (Lemma 13). This module measures D and the stretch
// D / ||x||_1 empirically.
#pragma once

#include <cstdint>
#include <vector>

#include "percolation/field.h"

namespace seg {

// BFS distances (edge counts) from (sx, sy) within the open cluster;
// -1 for unreachable or closed sites. O(L^2).
std::vector<std::int32_t> chemical_distances(const SiteField& field, int sx,
                                             int sy);

// Chemical distance between two sites, or -1 if not connected.
std::int32_t chemical_distance(const SiteField& field, int sx, int sy,
                               int tx, int ty);

struct StretchSample {
  bool connected = false;
  std::int32_t distance = -1;
  int l1 = 0;
  double stretch = 0.0;  // distance / l1 (only when connected and l1 > 0)
};

// Measures the stretch between two given sites.
StretchSample chemical_stretch(const SiteField& field, int sx, int sy,
                               int tx, int ty);

}  // namespace seg
