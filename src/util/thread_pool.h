// Small fixed-size thread pool used to parallelize independent Monte-Carlo
// trials. Each trial derives its own RNG stream from the experiment seed,
// so results are identical regardless of the number of workers.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "obs/telemetry.h"

namespace seg {

class ThreadPool {
 public:
  // threads == 0 selects std::thread::hardware_concurrency() (min 1).
  //
  // A non-empty `telemetry_label` registers per-worker busy-time
  // counters "pool.<label>.worker.<i>.busy_us" and a task counter
  // "pool.<label>.tasks" in the telemetry registry; workers then time
  // each task while telemetry is runtime-enabled (two clock reads per
  // task — the pools run coarse tasks, replicas and shard sweeps). The
  // progress reporter turns the busy counters into per-worker
  // utilization. An empty label keeps the pool entirely uninstrumented.
  explicit ThreadPool(std::size_t threads = 0,
                      const std::string& telemetry_label = "");
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Tasks must not throw.
  void submit(std::function<void()> task);

  // Blocks until every submitted task has finished.
  void wait_idle();

  std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop(std::size_t worker);
  void run_task(std::size_t worker, std::function<void()>& task);

  std::vector<std::thread> workers_;
  // Parallel to workers_ when a telemetry label was given; empty
  // otherwise (the task loop then skips the timing entirely).
  std::vector<obs::MetricId> busy_ids_;
  obs::MetricId tasks_id_{};
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_cv_;
  std::condition_variable idle_cv_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

// Runs fn(i) for i in [0, count) across the pool's workers and waits for
// completion. fn must be safe to call concurrently for distinct i.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

}  // namespace seg
