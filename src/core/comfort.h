// The "uncomfortable majority" variant proposed in the paper's concluding
// remarks (Sec. V): the baseline model is biased toward segregation
// because agents flip when too many neighbors differ but never when too
// many agree. Here an agent is happy iff its same-type fraction lies in a
// comfort band [tau_lo, tau_hi]; it flips (when its Poisson clock rings)
// iff it is unhappy and the flip lands it inside the band. tau_hi = 1
// recovers the paper's model exactly — the golden-seed tests pin the
// flip-for-flip equivalence with SchellingModel.
//
// A thin policy over lattice::BinarySpinEngine: only the band membership
// code differs from the baseline model.
//
// Unlike the baseline, this dynamics has no Lyapunov function (a flip can
// reduce aggregate same-type counts), so absorption is not guaranteed;
// run_comfort() therefore always takes a flip budget.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/model.h"
#include "core/params.h"
#include "grid/point.h"
#include "lattice/engine.h"
#include "rng/rng.h"

namespace seg {

struct ComfortParams {
  int n = 64;
  int w = 2;
  double tau_lo = 0.45;  // minimum comfortable same-type fraction
  double tau_hi = 1.0;   // maximum comfortable same-type fraction
  double p = 0.5;
  // Engine storage backend; see ModelParams::storage.
  EngineStorage storage = EngineStorage::kDefault;

  int neighborhood_size() const { return (2 * w + 1) * (2 * w + 1); }
  // Band edges for an arbitrary neighborhood size — the graph engine
  // computes these per degree class.
  static int k_lo_of(double tau_lo, int N) {
    return happiness_threshold(tau_lo, N);
  }
  static int k_hi_of(double tau_hi, int N) {
    // floor(tau_hi * N), robust to fp edges (mirror of ceil in k_lo).
    const double scaled = tau_hi * N;
    const double nearest = std::nearbyint(scaled);
    if (std::abs(scaled - nearest) < 1e-9 * N) {
      return static_cast<int>(nearest);
    }
    return static_cast<int>(std::floor(scaled));
  }
  // Inclusive integer band [k_lo, k_hi] on the same-type count.
  int k_lo() const { return k_lo_of(tau_lo, neighborhood_size()); }
  int k_hi() const { return k_hi_of(tau_hi, neighborhood_size()); }
  bool valid() const {
    return n > 0 && w >= 1 && 2 * w + 1 <= n && tau_lo >= 0.0 &&
           tau_lo <= tau_hi && tau_hi <= 1.0 && p >= 0.0 && p <= 1.0;
  }
};

class ComfortModel {
 public:
  static constexpr int kFlippableSet = 0;

  ComfortModel(const ComfortParams& params, Rng& rng);
  ComfortModel(const ComfortParams& params, std::vector<std::int8_t> spins);

  // Graph-topology variant: the comfort band is per node,
  // [ceil(tau_lo * N_v), floor(tau_hi * N_v)] over the node's own
  // neighborhood size. params.n/params.w are ignored.
  ComfortModel(const ComfortParams& params,
               std::shared_ptr<const GraphTopology> graph,
               std::vector<std::int8_t> spins);

  const ComfortParams& params() const { return params_; }
  int side() const { return params_.n; }
  int neighborhood_size() const { return N_; }
  bool graph_mode() const { return engine_.graph_mode(); }
  int neighborhood_size_of(std::uint32_t id) const {
    return engine_.neighborhood_size(id);
  }
  std::size_t agent_count() const { return engine_.size(); }

  std::int8_t spin(std::uint32_t id) const { return engine_.spin(id); }
  std::int8_t spin_at(int x, int y) const;
  // Snapshot by value; see SchellingModel::spins().
  std::vector<std::int8_t> spins() const { return engine_.spins_snapshot(); }
  BitField packed_spins() const { return engine_.packed_spins(); }
  std::uint32_t id_of(int x, int y) const;

  std::int32_t same_count(std::uint32_t id) const;
  bool is_happy(std::uint32_t id) const;
  bool flip_makes_happy(std::uint32_t id) const;
  bool is_flippable(std::uint32_t id) const {
    return !is_happy(id) && flip_makes_happy(id);
  }

  const AgentSet& flippable_set() const {
    return engine_.set(kFlippableSet);
  }
  bool quiescent() const { return flippable_set().empty(); }
  std::size_t count_unhappy() const;
  double happy_fraction() const;

  void flip(std::uint32_t id) { engine_.flip(id); }

  // Streaming-measurement hook (serial dynamics only; see the
  // FlipObserver contract in lattice/engine.h).
  void set_flip_observer(FlipObserver* observer) {
    engine_.set_observer(observer);
  }

  bool check_invariants() const;

 private:
  static BinarySpinEngine make_engine(const ComfortParams& params,
                                      std::vector<std::int8_t> spins);
  static BinarySpinEngine make_graph_engine(
      const ComfortParams& params, std::shared_ptr<const GraphTopology> graph,
      std::vector<std::int8_t> spins);

  ComfortParams params_;
  int N_;
  int k_lo_;
  int k_hi_;
  BinarySpinEngine engine_;
};

struct ComfortRunResult {
  std::uint64_t flips = 0;
  double final_time = 0.0;
  bool quiescent = false;  // no flippable agent remained
};

// Event-driven Glauber dynamics with the comfort-band rule. max_flips is
// mandatory (no termination guarantee).
ComfortRunResult run_comfort(ComfortModel& model, Rng& rng,
                             std::uint64_t max_flips);

}  // namespace seg
