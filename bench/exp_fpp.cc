// FPP — Kesten's Theorem 3 (used in the paper's Lemma 7): for i.i.d.
// site-weight first-passage percolation, T_k/k converges to a time
// constant mu and the fluctuations of T_k are O(sqrt(k)). We estimate both
// with exponential weights (the paper's waiting-time distribution) and
// verify the speed-bound scaling that Lemma 7 extracts: with weights of
// mean 1/N, passage over distance k takes ~ mu k / N.
#include <cmath>
#include <cstdio>
#include <vector>

#include "io/table.h"
#include "percolation/fpp.h"
#include "util/args.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  const seg::ArgParser args(argc, argv);
  const int L = static_cast<int>(args.get_int("L", 192));
  const auto trials = static_cast<std::size_t>(args.get_int("trials", 16));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 17));

  std::printf("== Theorem 3 (Kesten): T_k/k convergence and sqrt(k) "
              "fluctuations ==\n");
  std::printf("(Exp(1) site weights on a %dx%d box, %zu independent "
              "fields)\n\n",
              L, L, trials);

  seg::TablePrinter table({"k", "mean T_k", "T_k/k", "std T_k",
                           "std/sqrt(k)"});
  std::vector<double> ratios;
  for (const int k : {24, 48, 96, 160}) {
    seg::RunningStats tk;
    for (std::size_t t = 0; t < trials; ++t) {
      seg::Rng rng = seg::Rng::stream(seed + t, static_cast<std::uint64_t>(k));
      const seg::FppField field(L, 1.0, rng);
      tk.add(field.axis_passage_time(8, L / 2, k));
    }
    table.new_row()
        .add(static_cast<std::int64_t>(k))
        .add(tk.mean(), 2)
        .add(tk.mean() / k, 4)
        .add(tk.stddev(), 3)
        .add(tk.stddev() / std::sqrt(static_cast<double>(k)), 4);
    ratios.push_back(tk.mean() / k);
  }
  table.print();

  const double drift = std::abs(ratios.back() - ratios[ratios.size() - 2]);
  std::printf("\nT_k/k drift between the last two k values: %.4f "
              "(convergence to mu: smaller is better)\n",
              drift);
  std::printf("expected shape: T_k/k approaching a constant mu < 1 and "
              "std/sqrt(k) roughly flat (Kesten's concentration).\n\n");

  std::printf("== Lemma 7 scaling: mean-1/N weights slow the spread by N "
              "==\n");
  const int k = 96;
  seg::TablePrinter t2({"weight mean", "mean T_k", "T_k * N / k"});
  for (const double inv_n : {1.0, 1.0 / 25.0, 1.0 / 49.0}) {
    seg::RunningStats tk;
    for (std::size_t t = 0; t < trials; ++t) {
      seg::Rng rng = seg::Rng::stream(seed + 500 + t,
                                      static_cast<std::uint64_t>(1.0 / inv_n));
      const seg::FppField field(L, 1.0 / inv_n, rng);
      tk.add(field.axis_passage_time(8, L / 2, k));
    }
    t2.new_row()
        .add(inv_n, 4)
        .add(tk.mean(), 3)
        .add(tk.mean() / (inv_n * k), 4);
  }
  t2.print();
  std::printf("expected: the normalized column is constant — the unhappy-"
              "agent front needs time ~ c k / N to travel k blocks, which "
              "is Lemma 7's bound.\n");
  return 0;
}
