// THM1/THM2 — the headline claims: the expected size of the (almost)
// monochromatic region containing an arbitrary agent grows exponentially
// in the neighborhood size N.
//
// For each tau we sweep w (hence N = (2w+1)^2), run the Glauber process to
// absorption on a torus large relative to w, estimate E[M] (and E[M'] with
// ratio threshold e^{-0.1 N}), and fit log2 E[M] against N. The paper's
// claim fixes the *shape*: the fit should be close to linear (r^2 high)
// with a positive slope; the theorems bracket the asymptotic slope in
// [a(tau), b(tau)] — we print both for comparison (absolute agreement is
// not expected at these finite sizes).
#include <cmath>
#include <cstdio>
#include <vector>

#include "analysis/almost.h"
#include "analysis/regions.h"
#include "core/dynamics.h"
#include "core/model.h"
#include "io/table.h"
#include "theory/constants.h"
#include "theory/exponents.h"
#include "util/args.h"
#include "util/stats.h"

namespace {

struct Row {
  int w = 0;
  int N = 0;
  double mean_m = 0.0;
  double mean_m_prime = 0.0;
};

Row measure(double tau, int w, std::size_t trials, std::uint64_t seed) {
  Row row;
  row.w = w;
  row.N = (2 * w + 1) * (2 * w + 1);
  const int n = std::max(64, 24 * w);
  seg::RunningStats m_stats, mp_stats;
  for (std::size_t t = 0; t < trials; ++t) {
    seg::ModelParams params{.n = n, .w = w, .tau = tau, .p = 0.5};
    seg::Rng init = seg::Rng::stream(seed + t, 0);
    seg::SchellingModel model(params, init);
    seg::Rng dyn = seg::Rng::stream(seed + t, 1);
    seg::run_glauber(model, dyn);

    const auto mono = seg::mono_region_field(model);
    seg::Rng s1 = seg::Rng::stream(seed + t, 2);
    m_stats.add(seg::mean_mono_region_size(mono, 24, s1));

    const auto almost = seg::almost_mono_field(model, 0.1);
    seg::Rng s2 = seg::Rng::stream(seed + t, 2);
    mp_stats.add(seg::mean_almost_region_size(almost, 24, s2));
  }
  row.mean_m = m_stats.mean();
  row.mean_m_prime = mp_stats.mean();
  return row;
}

void run_tau(double tau, std::size_t trials, std::uint64_t seed) {
  const bool mono_regime = tau > seg::tau1() && tau < 1.0 - seg::tau1();
  std::printf("\n-- tau = %.3f (%s regime) --\n", tau,
              mono_regime ? "monochromatic, Thm 1"
                          : "almost monochromatic, Thm 2");
  seg::TablePrinter table(
      {"w", "N", "E[M]", "log2 E[M]", "E[M']", "log2 E[M']"});
  std::vector<double> ns, log_m, log_mp;
  for (const int w : {1, 2, 3, 4, 5}) {
    const Row row = measure(tau, w, trials, seed + 100 * w);
    table.new_row()
        .add(static_cast<std::int64_t>(row.w))
        .add(static_cast<std::int64_t>(row.N))
        .add(row.mean_m, 1)
        .add(std::log2(row.mean_m), 3)
        .add(row.mean_m_prime, 1)
        .add(std::log2(row.mean_m_prime), 3);
    ns.push_back(row.N);
    log_m.push_back(std::log2(row.mean_m));
    log_mp.push_back(std::log2(row.mean_m_prime));
  }
  table.print();

  const seg::LinearFit fit_m = seg::fit_line(ns, log_m);
  const seg::LinearFit fit_mp = seg::fit_line(ns, log_mp);
  std::printf("exponential-growth fit log2 E[M]  ~ %.5f * N + %.2f   "
              "(r^2 = %.3f)\n",
              fit_m.slope, fit_m.intercept, fit_m.r2);
  std::printf("exponential-growth fit log2 E[M'] ~ %.5f * N + %.2f   "
              "(r^2 = %.3f)\n",
              fit_mp.slope, fit_mp.intercept, fit_mp.r2);
  std::printf("theory envelope (asymptotic): a(tau) = %.5f, b(tau) = %.5f\n",
              seg::a_exponent_envelope(tau), seg::b_exponent_envelope(tau));
  std::printf("shape verdict: slope %s, fit %s\n",
              fit_m.slope > 0 ? "positive (grows with N)" : "NON-POSITIVE",
              fit_m.r2 > 0.8 ? "near-linear in N (exponential E[M])"
                             : "noisy at this scale");
}

}  // namespace

int main(int argc, char** argv) {
  const seg::ArgParser args(argc, argv);
  const auto trials = static_cast<std::size_t>(args.get_int("trials", 3));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  std::printf("== Theorems 1 & 2: E[M], E[M'] exponential in N ==\n");
  std::printf("(grid side n = max(64, 24w); %zu trials per point; E over "
              "24 sampled agents per trial)\n",
              trials);

  run_tau(0.45, trials, seed);        // Thm 1 interval (tau_1, 1/2)
  run_tau(0.40, trials, seed + 50);   // Thm 2 interval (tau_2, tau_1]
  run_tau(0.55, trials, seed + 90);   // symmetric Thm 1 interval
  return 0;
}
