#include "campaign/scenario.h"

#include <cstdio>
#include <sstream>

#include "campaign/metrics.h"
#include "util/parse.h"

namespace seg {
namespace {

std::string format_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string join_ints(const std::vector<int>& xs) {
  std::string out;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i) out += ',';
    out += std::to_string(xs[i]);
  }
  return out;
}

std::string join_doubles(const std::vector<double>& xs) {
  std::string out;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i) out += ',';
    out += format_double(xs[i]);
  }
  return out;
}

std::string join_strings(const std::vector<std::string>& xs) {
  std::string out;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i) out += ',';
    out += xs[i];
  }
  return out;
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream in(s);
  while (std::getline(in, item, ',')) {
    item = trim(item);
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

// List parsers over the checked scalar helpers (util/parse.h): trailing
// garbage ("10x") and out-of-range values are hard errors naming the
// offending token, not silent truncations.
bool parse_int_list(const std::string& s, std::vector<int>* out,
                    std::string* why) {
  out->clear();
  for (const std::string& item : split_list(s)) {
    int v = 0;
    if (!parse_int_checked(item, &v, why)) return false;
    out->push_back(v);
  }
  return !out->empty();
}

bool parse_double_list(const std::string& s, std::vector<double>* out,
                       std::string* why) {
  out->clear();
  for (const std::string& item : split_list(s)) {
    double v = 0.0;
    if (!parse_double_checked(item, &v, why)) return false;
    out->push_back(v);
  }
  return !out->empty();
}

}  // namespace

const char* dynamics_name(DynamicsKind kind) {
  switch (kind) {
    case DynamicsKind::kGlauber: return "glauber";
    case DynamicsKind::kDiscrete: return "discrete";
    case DynamicsKind::kSynchronous: return "synchronous";
  }
  return "glauber";
}

bool parse_dynamics(const std::string& name, DynamicsKind* out) {
  if (name == "glauber") *out = DynamicsKind::kGlauber;
  else if (name == "discrete") *out = DynamicsKind::kDiscrete;
  else if (name == "synchronous") *out = DynamicsKind::kSynchronous;
  else return false;
  return true;
}

const char* topology_name(TopologyFamily family) {
  switch (family) {
    case TopologyFamily::kTorus: return "torus";
    case TopologyFamily::kLollipop: return "lollipop";
    case TopologyFamily::kRandomRegular: return "random_regular";
    case TopologyFamily::kSmallWorld: return "small_world";
    case TopologyFamily::kEdgeList: return "edge_list";
  }
  return "torus";
}

bool parse_topology(const std::string& name, TopologyFamily* out) {
  if (name == "torus") *out = TopologyFamily::kTorus;
  else if (name == "lollipop") *out = TopologyFamily::kLollipop;
  else if (name == "random_regular") *out = TopologyFamily::kRandomRegular;
  else if (name == "small_world") *out = TopologyFamily::kSmallWorld;
  else if (name == "edge_list") *out = TopologyFamily::kEdgeList;
  else return false;
  return true;
}

const char* shape_name(NeighborhoodShape shape) {
  return shape == NeighborhoodShape::kMoore ? "moore" : "von_neumann";
}

bool parse_shape(const std::string& name, NeighborhoodShape* out) {
  if (name == "moore") *out = NeighborhoodShape::kMoore;
  else if (name == "von_neumann") *out = NeighborhoodShape::kVonNeumann;
  else return false;
  return true;
}

std::size_t ScenarioSpec::grid_size() const {
  return topology.size() * n.size() * w.size() * tau.size() *
         tau_minus.size() * p.size() * shape.size() * dynamics.size();
}

bool ScenarioSpec::valid(std::string* error) const {
  auto fail = [&](const std::string& msg) {
    if (error) *error = msg;
    return false;
  };
  if (n.empty() || w.empty() || tau.empty() || tau_minus.empty() ||
      p.empty() || shape.empty() || dynamics.empty() || topology.empty()) {
    return fail("every grid axis needs at least one value");
  }
  if (replicas == 0) return fail("replicas must be >= 1");
  if (shards == 0) return fail("shards must be >= 1");
  if (metrics.empty()) return fail("at least one metric is required");
  bool any_graph = false;
  for (const TopologyFamily f : topology) {
    any_graph |= f != TopologyFamily::kTorus;
  }
  for (const std::string& m : expand_metric_names(metrics)) {
    if (!lookup_metric(m, nullptr)) return fail("unknown metric: " + m);
    if (any_graph && !metric_supports_graph(m)) {
      return fail("metric '" + m +
                  "' is lattice-only and cannot run on a graph topology");
    }
  }
  // Builder preconditions are validated here, not in the builders: their
  // SEG_ASSERTs compile out of release builds, so the spec layer is the
  // real guard for user-supplied parameters.
  for (const TopologyFamily f : topology) {
    switch (f) {
      case TopologyFamily::kTorus:
        break;
      case TopologyFamily::kLollipop:
        if (graph_clique < 2 || graph_path < 1) {
          return fail("lollipop needs graph_clique >= 2, graph_path >= 1");
        }
        break;
      case TopologyFamily::kRandomRegular:
        if (graph_degree < 1) return fail("graph_degree must be >= 1");
        for (const int side : n) {
          const std::size_t nodes =
              graph_nodes > 0 ? graph_nodes
                              : static_cast<std::size_t>(side) * side;
          if (nodes <= static_cast<std::size_t>(graph_degree)) {
            return fail("random_regular needs node count > graph_degree");
          }
          if ((nodes * static_cast<std::size_t>(graph_degree)) % 2 != 0) {
            return fail("random_regular needs nodes * graph_degree even");
          }
        }
        break;
      case TopologyFamily::kSmallWorld:
        if (!(graph_beta >= 0.0 && graph_beta <= 1.0)) {
          return fail("graph_beta must be in [0, 1]");
        }
        break;
      case TopologyFamily::kEdgeList:
        if (graph_file.empty()) {
          return fail("edge_list topology needs graph_file");
        }
        break;
    }
  }
  if (stop.rule != StopRule::kNone) {
    if (!(stop.delta > 0.0)) return fail("stop_delta must be > 0");
    if (!(stop.alpha > 0.0 && stop.alpha < 1.0)) {
      return fail("stop_alpha must be in (0, 1)");
    }
    if (stop.min_replicas == 0) return fail("min_replicas must be >= 1");
    if (layout_replicas() < stop.min_replicas) {
      return fail("max_replicas (or replicas) must be >= min_replicas");
    }
    if (!(stop.range_hi > stop.range_lo)) {
      return fail("stop_range must have hi > lo");
    }
    if (!stop.metric.empty()) {
      const std::vector<std::string> expanded = expand_metric_names(metrics);
      bool found = false;
      for (const std::string& m : expanded) {
        if (m == stop.metric) { found = true; break; }
      }
      if (!found) {
        return fail("stop_metric '" + stop.metric +
                    "' is not among the campaign metrics");
      }
    }
  }
  for (const ScenarioPoint& pt : expand_grid(*this)) {
    if (!pt.params.valid()) {
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "invalid point (n=%d, w=%d, tau=%g, p=%g)", pt.params.n,
                    pt.params.w, pt.params.tau, pt.params.p);
      return fail(buf);
    }
  }
  return true;
}

std::string ScenarioSpec::to_text() const {
  std::ostringstream out;
  out << "name = " << name << '\n';
  out << "n = " << join_ints(n) << '\n';
  out << "w = " << join_ints(w) << '\n';
  out << "tau = " << join_doubles(tau) << '\n';
  out << "tau_minus = " << join_doubles(tau_minus) << '\n';
  out << "p = " << join_doubles(p) << '\n';
  std::vector<std::string> names;
  for (const NeighborhoodShape s : shape) names.push_back(shape_name(s));
  out << "shape = " << join_strings(names) << '\n';
  names.clear();
  for (const DynamicsKind d : dynamics) names.push_back(dynamics_name(d));
  out << "dynamics = " << join_strings(names) << '\n';
  // The topology axis and the graph_* parameters follow the shards
  // pattern below: only non-default values enter the canonical text, so
  // every pre-graph spec keeps its hash and its checkpoints.
  if (!(topology.size() == 1 && topology[0] == TopologyFamily::kTorus)) {
    names.clear();
    for (const TopologyFamily f : topology) names.push_back(topology_name(f));
    out << "topology = " << join_strings(names) << '\n';
  }
  if (graph_clique != 24) out << "graph_clique = " << graph_clique << '\n';
  if (graph_path != 40) out << "graph_path = " << graph_path << '\n';
  if (graph_degree != 8) out << "graph_degree = " << graph_degree << '\n';
  if (graph_beta != 0.1) {
    out << "graph_beta = " << format_double(graph_beta) << '\n';
  }
  if (graph_seed != 1) out << "graph_seed = " << graph_seed << '\n';
  if (graph_nodes != 0) out << "graph_nodes = " << graph_nodes << '\n';
  if (!graph_file.empty()) out << "graph_file = " << graph_file << '\n';
  out << "replicas = " << replicas << '\n';
  // Only non-default shard counts enter the canonical text (and thus the
  // checkpoint identity hash): serial specs keep their pre-sharding hash,
  // so their existing checkpoints stay resumable.
  if (shards != 1) out << "shards = " << shards << '\n';
  out << "max_flips = " << max_flips << '\n';
  // Like shards: only a non-default cadence enters the canonical text,
  // so pre-streaming specs keep their checkpoint identity.
  if (streaming_sample_every != 0) {
    out << "streaming_sample_every = " << streaming_sample_every << '\n';
  }
  out << "sync_max_rounds = " << sync_max_rounds << '\n';
  out << "region_samples = " << region_samples << '\n';
  out << "almost_eps = " << format_double(almost_eps) << '\n';
  out << "metrics = " << join_strings(metrics) << '\n';
  // The stop_* keys follow the shards pattern: they enter the canonical
  // text — and so the checkpoint identity — only when a rule is active,
  // keeping every pre-adaptive spec's hash (and checkpoints) intact.
  if (stop.rule != StopRule::kNone) {
    out << "stop_rule = " << stop_rule_name(stop.rule) << '\n';
    out << "stop_delta = " << format_double(stop.delta) << '\n';
    out << "stop_alpha = " << format_double(stop.alpha) << '\n';
    out << "min_replicas = " << stop.min_replicas << '\n';
    if (stop.max_replicas != 0) {
      out << "max_replicas = " << stop.max_replicas << '\n';
    }
    if (!stop.metric.empty()) out << "stop_metric = " << stop.metric << '\n';
    out << "stop_range = " << format_double(stop.range_lo) << ','
        << format_double(stop.range_hi) << '\n';
    if (stop.rule == StopRule::kPassRate) {
      out << "stop_threshold = " << format_double(stop.threshold) << '\n';
    }
  }
  return out.str();
}

bool ScenarioSpec::parse(const std::string& text, ScenarioSpec* out,
                         std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error) *error = msg;
    return false;
  };
  ScenarioSpec spec;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    line = trim(line);
    if (line.empty() || line[0] == '#') continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return fail("line " + std::to_string(line_no) + ": expected key = value");
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    bool ok = true;
    std::string why;
    if (key == "name") {
      spec.name = value;
      ok = !value.empty();
    } else if (key == "n") {
      ok = parse_int_list(value, &spec.n, &why);
    } else if (key == "w") {
      ok = parse_int_list(value, &spec.w, &why);
    } else if (key == "tau") {
      ok = parse_double_list(value, &spec.tau, &why);
    } else if (key == "tau_minus") {
      ok = parse_double_list(value, &spec.tau_minus, &why);
    } else if (key == "p") {
      ok = parse_double_list(value, &spec.p, &why);
    } else if (key == "shape") {
      spec.shape.clear();
      for (const std::string& item : split_list(value)) {
        NeighborhoodShape s;
        if (!parse_shape(item, &s)) { ok = false; break; }
        spec.shape.push_back(s);
      }
      ok = ok && !spec.shape.empty();
    } else if (key == "dynamics") {
      spec.dynamics.clear();
      for (const std::string& item : split_list(value)) {
        DynamicsKind d;
        if (!parse_dynamics(item, &d)) { ok = false; break; }
        spec.dynamics.push_back(d);
      }
      ok = ok && !spec.dynamics.empty();
    } else if (key == "topology") {
      spec.topology.clear();
      for (const std::string& item : split_list(value)) {
        TopologyFamily f;
        if (!parse_topology(item, &f)) {
          why = "unknown topology family: '" + item + "'";
          ok = false;
          break;
        }
        spec.topology.push_back(f);
      }
      ok = ok && !spec.topology.empty();
    } else if (key == "graph_clique") {
      ok = parse_int_checked(value, &spec.graph_clique, &why);
    } else if (key == "graph_path") {
      ok = parse_int_checked(value, &spec.graph_path, &why);
    } else if (key == "graph_degree") {
      ok = parse_int_checked(value, &spec.graph_degree, &why);
    } else if (key == "graph_beta") {
      ok = parse_double_checked(value, &spec.graph_beta, &why);
    } else if (key == "graph_seed") {
      ok = parse_u64_checked(value, &spec.graph_seed, &why);
    } else if (key == "graph_nodes") {
      std::uint64_t v = 0;
      ok = parse_u64_checked(value, &v, &why);
      spec.graph_nodes = static_cast<std::size_t>(v);
    } else if (key == "graph_file") {
      spec.graph_file = value;
      ok = !value.empty();
    } else if (key == "replicas") {
      std::uint64_t v = 0;
      ok = parse_u64_checked(value, &v, &why) && v > 0;
      spec.replicas = static_cast<std::size_t>(v);
    } else if (key == "shards") {
      std::uint64_t v = 0;
      ok = parse_u64_checked(value, &v, &why) && v > 0;
      spec.shards = static_cast<std::size_t>(v);
    } else if (key == "max_flips") {
      ok = parse_u64_checked(value, &spec.max_flips, &why);
    } else if (key == "streaming_sample_every") {
      ok = parse_u64_checked(value, &spec.streaming_sample_every, &why);
    } else if (key == "sync_max_rounds") {
      ok = parse_u64_checked(value, &spec.sync_max_rounds, &why);
    } else if (key == "region_samples") {
      std::uint64_t v = 0;
      ok = parse_u64_checked(value, &v, &why);
      spec.region_samples = static_cast<std::size_t>(v);
    } else if (key == "almost_eps") {
      std::vector<double> v;
      ok = parse_double_list(value, &v, &why) && v.size() == 1;
      if (ok) spec.almost_eps = v[0];
    } else if (key == "metrics") {
      spec.metrics = split_list(value);
      ok = !spec.metrics.empty();
    } else if (key == "stop_rule") {
      ok = parse_stop_rule(value, &spec.stop.rule);
    } else if (key == "stop_delta") {
      std::vector<double> v;
      ok = parse_double_list(value, &v, &why) && v.size() == 1;
      if (ok) spec.stop.delta = v[0];
    } else if (key == "stop_alpha") {
      std::vector<double> v;
      ok = parse_double_list(value, &v, &why) && v.size() == 1;
      if (ok) spec.stop.alpha = v[0];
    } else if (key == "min_replicas") {
      std::uint64_t v = 0;
      ok = parse_u64_checked(value, &v, &why) && v > 0;
      spec.stop.min_replicas = static_cast<std::size_t>(v);
    } else if (key == "max_replicas") {
      std::uint64_t v = 0;
      ok = parse_u64_checked(value, &v, &why);
      spec.stop.max_replicas = static_cast<std::size_t>(v);
    } else if (key == "stop_metric") {
      spec.stop.metric = value;
      ok = !value.empty();
    } else if (key == "stop_range") {
      std::vector<double> v;
      ok = parse_double_list(value, &v, &why) && v.size() == 2;
      if (ok) {
        spec.stop.range_lo = v[0];
        spec.stop.range_hi = v[1];
      }
    } else if (key == "stop_threshold") {
      std::vector<double> v;
      ok = parse_double_list(value, &v, &why) && v.size() == 1;
      if (ok) spec.stop.threshold = v[0];
    } else {
      return fail("line " + std::to_string(line_no) + ": unknown key '" +
                  key + "'");
    }
    if (!ok) {
      std::string msg = "line " + std::to_string(line_no) +
                        ": bad value for '" + key + "'";
      if (!why.empty()) msg += " (" + why + ")";
      return fail(msg);
    }
  }
  std::string why;
  if (!spec.valid(&why)) return fail(why);
  *out = spec;
  return true;
}

std::uint64_t ScenarioSpec::hash() const {
  // FNV-1a, 64-bit.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : to_text()) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::vector<ScenarioPoint> expand_grid(const ScenarioSpec& spec) {
  std::vector<ScenarioPoint> points;
  points.reserve(spec.grid_size());
  // Topology is the outermost loop: a torus-only spec enumerates exactly
  // the legacy point order, so adding the axis never renumbers (or
  // reseeds) existing campaigns.
  for (const TopologyFamily topology : spec.topology)
    for (const int n : spec.n)
      for (const int w : spec.w)
        for (const double tau : spec.tau)
          for (const double tau_minus : spec.tau_minus)
            for (const double p : spec.p)
              for (const NeighborhoodShape shape : spec.shape)
                for (const DynamicsKind dynamics : spec.dynamics) {
                  ScenarioPoint pt;
                  pt.index = points.size();
                  pt.params = ModelParams{.n = n,
                                          .w = w,
                                          .tau = tau,
                                          .p = p,
                                          .tau_minus = tau_minus,
                                          .shape = shape};
                  pt.dynamics = dynamics;
                  pt.topology = topology;
                  points.push_back(pt);
                }
  return points;
}

}  // namespace seg
