// Multi-trial Monte-Carlo driver. Each trial gets an independent RNG
// stream derived from (seed, trial_index), so results do not depend on the
// number of worker threads.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "rng/rng.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace seg {

// Runs `trials` independent evaluations of `metric(trial_index, rng)` and
// aggregates them. With threads == 1 the trials run inline.
inline RunningStats run_trials(
    std::size_t trials, std::uint64_t seed,
    const std::function<double(std::size_t, Rng&)>& metric,
    std::size_t threads = 1) {
  if (threads <= 1) {
    RunningStats stats;
    for (std::size_t t = 0; t < trials; ++t) {
      Rng rng = Rng::stream(seed, t);
      stats.add(metric(t, rng));
    }
    return stats;
  }
  std::vector<double> values(trials, 0.0);
  ThreadPool pool(threads);
  parallel_for(pool, trials, [&](std::size_t t) {
    Rng rng = Rng::stream(seed, t);
    values[t] = metric(t, rng);
  });
  RunningStats stats;
  for (const double v : values) stats.add(v);
  return stats;
}

}  // namespace seg
