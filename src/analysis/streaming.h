// Streaming observables: every quantity the measurement layer used to
// recompute by an O(n^2) grid rescan per snapshot — type counts and
// magnetization, interface (unlike-neighbor bond) energy, the same-value
// connected-component statistics of analysis/clusters.h, the spatial pair
// correlation of analysis/correlation.h, and a ring-buffer time
// autocorrelation of the magnetization — maintained incrementally from
// flip events in O(1)-ish work per flip.
//
// The engine owns a private copy of the site field, so it never races
// with the producer and works identically whether events arrive
//
//  * inline, as a FlipObserver attached to a serially-driven
//    BinarySpinEngine (SchellingModel::set_flip_observer), or
//  * replayed, from the per-shard flip logs the parallel sweep engine
//    collects in phase A and drains serially at every reconciliation
//    barrier (ParallelOptions::streaming), or
//  * directly, via apply_set()/apply_flip() for models that are not
//    engine-backed (vacancy sites use value 0, multi-type models use
//    values 0..q-1 — any int8 alphabet works).
//
// Exactness contract (pinned by tests/test_streaming_differential.cc):
// after any event sequence, every observable equals the batch recompute
// on the current field — integer counts bitwise, floating aggregates to
// 1e-12 relative (the correlation arithmetic is integer underneath, so
// those match bitwise too).
//
// Cluster maintenance: a DsuRollback forest over an arena of nodes with a
// site -> node indirection. Insertions union in O(alpha). A removal that
// may split its old cluster first runs an O(8) sufficiency test — if the
// departed site's same-value neighbors are joined by one contiguous
// same-value arc of its 8-ring, no split is possible; this resolves the
// bulk of flips instantly. The inconclusive rest run a round-robin
// multi-source BFS from the same-value neighbors, expanded in lockstep,
// so the search ends after O(k * min(smallest detached piece, front
// meeting distance)) sites: detached pieces are split off exactly, and
// the worst case (a filament flip on a lattice-spanning cluster) is
// bounded by the component size — the cost of one batch rescan, paid
// only when the geometry genuinely demands it. The node arena is
// compacted by an epoch-based full rebuild (DsuRollback::reset) once it
// outgrows 2x the site count, keeping memory O(sites) and the rebuild
// cost amortized O(1) per event.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/clusters.h"
#include "analysis/dsu_rollback.h"
#include "lattice/engine.h"

namespace seg {

struct StreamingConfig {
  // Spatial pair-correlation radius, matching pair_correlation(spins, n,
  // max_r); 0 disables the accumulators (and their O(max_r) flip cost).
  int max_r = 0;
  // Lags tracked by the magnetization time-autocorrelation ring buffer;
  // 0 disables sampling. record_sample() costs O(autocorr_window).
  std::size_t autocorr_window = 0;
};

class StreamingObservables final : public FlipObserver {
 public:
  // `field` is the initial configuration (any int8 alphabet), size n*n.
  StreamingObservables(std::vector<std::int8_t> field, int n,
                       StreamingConfig config = {});

  // ---- event intake ----
  void on_flip(std::uint32_t id, std::int8_t new_value) override {
    apply_set(id, new_value);
  }
  // Binary-alphabet convenience: negates the tracked value.
  void apply_flip(std::uint32_t id) {
    apply_set(id, static_cast<std::int8_t>(-field_[id]));
  }
  // Sets site id to `value`, updating every observable incrementally.
  // A no-op when the value is unchanged.
  void apply_set(std::uint32_t id, std::int8_t value);

  // ---- field ----
  int side() const { return n_; }
  std::size_t site_count() const { return field_.size(); }
  const std::vector<std::int8_t>& field() const { return field_; }

  // ---- O(1) scalar observables ----
  std::int64_t count_of(std::int8_t value) const {
    return value_count_[static_cast<std::uint8_t>(value)];
  }
  std::int64_t magnetization() const { return spin_sum_; }
  std::int64_t vacancy_count() const { return count_of(0); }
  // Unordered 4-neighbor pairs of unlike values, == ClusterStats::
  // interface_length.
  std::int64_t interface_length() const { return interface_; }
  std::size_t cluster_count() const { return cluster_count_; }
  std::int64_t largest_cluster() const { return largest_; }
  // Number of clusters (any value class) of exactly `size` sites.
  std::int32_t clusters_of_size(std::int64_t size) const {
    return size_count_[static_cast<std::size_t>(size)];
  }
  double mean_cluster_size() const;
  ClusterStats cluster_stats() const;

  // ---- spatial pair correlation (enabled by config.max_r > 0) ----
  int max_r() const { return config_.max_r; }
  // C(r) for r = 0..max_r; bitwise equal to pair_correlation(field(),
  // side(), max_r()). Empty when disabled.
  std::vector<double> pair_correlation() const;

  // ---- magnetization time autocorrelation (config.autocorr_window) ----
  // Pushes the current magnetization as the next sample; O(window).
  void record_sample();
  std::size_t samples_recorded() const { return sample_count_; }
  // gamma(lag) as defined by autocovariance() in analysis/correlation.h,
  // over the recorded sample stream. Valid for lag < min(samples,
  // window); 0 otherwise.
  double autocovariance(std::size_t lag) const;
  // gamma(lag) / gamma(0); 0 when gamma(0) == 0.
  double autocorrelation(std::size_t lag) const;

  // ---- observability ----
  std::uint64_t rebuild_count() const { return rebuilds_; }
  std::uint64_t split_count() const { return splits_; }

 private:
  void full_rebuild();
  // O(8) no-split sufficiency test: true when the departed site's
  // same-value neighbors lie on one contiguous same-value arc of its
  // 8-ring (they then stay connected without the site).
  bool ring_connected(std::uint32_t id, std::int8_t old_value) const;
  // Updates cluster state for the departure of `id` from value class
  // `old_value` (field_[id] already holds the new value).
  void cluster_remove(std::uint32_t id, std::int8_t old_value);
  void cluster_insert(std::uint32_t id);
  void hist_add(std::int64_t size);
  void hist_remove(std::int64_t size);
  // All four torus neighbors (+x, -x, +y, -y) from a single divmod —
  // the BFS and interface loops are neighbor-bound, so the per-call
  // div/mod of a one-at-a-time helper would dominate them.
  void neighbors4(std::uint32_t id, std::uint32_t out[4]) const {
    const auto un = static_cast<std::uint32_t>(n_);
    const std::uint32_t sites = un * un;
    const std::uint32_t x = id % un;
    const std::uint32_t y = id / un;
    out[0] = x + 1 == un ? id + 1 - un : id + 1;
    out[1] = x == 0 ? id + un - 1 : id - 1;
    out[2] = y + 1 == un ? id + un - sites : id + un;
    out[3] = y == 0 ? id + sites - un : id - un;
  }

  int n_ = 0;
  StreamingConfig config_;
  std::vector<std::int8_t> field_;

  // Scalar aggregates.
  std::int64_t value_count_[256] = {};
  std::int64_t spin_sum_ = 0;
  std::int64_t interface_ = 0;

  // Clusters.
  DsuRollback dsu_;
  std::vector<std::uint32_t> node_of_;  // site -> arena node
  std::vector<std::int32_t> size_count_;  // histogram of cluster sizes
  std::int64_t largest_ = 0;
  std::size_t cluster_count_ = 0;
  std::uint64_t rebuilds_ = 0;
  std::uint64_t splits_ = 0;

  // Split-search scratch, epoch-stamped so clears are O(1): each entry
  // packs (epoch << 2) | front so a visit touches one cache line. The
  // frontier buffers are members so a split search costs no allocations
  // once their capacity has warmed up.
  std::vector<std::uint32_t> visit_;
  std::uint32_t visit_epoch_ = 0;
  std::vector<std::uint32_t> frontier_[4];

  // Spatial correlation: acc_[r] = sum over sites x and the four lattice
  // directions d of field(x) * field(x + r d); exact integers.
  std::vector<std::int64_t> corr_acc_;

  // Time autocorrelation: ring of the last `window` samples, the first
  // `window` samples ever (for head sums), the lag product sums, and the
  // running total. All exact integers.
  std::vector<std::int64_t> ring_;
  std::vector<std::int64_t> first_;
  std::vector<std::int64_t> lag_prod_;
  std::int64_t sample_total_ = 0;
  std::size_t sample_count_ = 0;
};

}  // namespace seg
