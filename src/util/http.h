// Minimal embedded HTTP/1.1 server for the observability endpoints.
//
// Deliberately tiny: a blocking accept loop on one dedicated thread,
// GET-only, exact-path handler dispatch, close-after-response. No
// third-party dependencies, no TLS, no keep-alive — the server exists so
// a campaign process can be scraped (`/metrics`, `/healthz`, ...) and
// poked for post-mortem state (`/debug/flight`), not to serve an
// application. It binds loopback only: the exposed surface is the local
// host (a scraper sidecar, curl, CI), never the network.
//
// Concurrency model: connections are accepted and served one at a time
// on the server thread. Handlers therefore need no internal locking
// against each other, but they do run concurrently with the simulation
// threads — a handler must only touch snapshot-style read paths (the
// telemetry registry aggregates, the progress reporter's last record),
// which is exactly what the obs endpoints do. Concurrent scrapes queue
// in the listen backlog and are answered in order.
//
// Robustness: a slow or dead client cannot wedge the accept loop — every
// connection gets a receive/send timeout and is dropped afterwards.
// Truncated or malformed requests get a 400, unknown paths a 404,
// non-GET methods a 405. A handler that throws is answered with a 500
// rather than taking the process down.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace seg {

struct HttpRequest {
  std::string method;  // "GET"
  std::string path;    // "/metrics" (query string stripped into `query`)
  std::string query;   // bytes after '?', "" if none
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer();
  ~HttpServer();  // implies stop()
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Registers `handler` for exact matches of `path`. Must be called
  // before start(); later registrations race the accept thread.
  void handle(const std::string& path, Handler handler);

  // Binds 127.0.0.1:`port` (0 = kernel-assigned ephemeral port), starts
  // the accept thread. Returns false (with `*error` set when non-null)
  // if the socket could not be bound. Idempotent failure: the server can
  // be start()ed again with another port.
  bool start(std::uint16_t port, std::string* error = nullptr);

  // Stops the accept loop and joins the thread. Idempotent; called by
  // the destructor. In-flight handlers finish first.
  void stop();

  bool running() const;
  // The bound port (resolved after start() when 0 was requested).
  std::uint16_t port() const;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace seg
