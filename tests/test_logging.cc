// Tests for the leveled logger: threshold gating must skip operand
// formatting entirely, and concurrent emission must keep lines intact.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/logging.h"

namespace seg {
namespace {

// Streaming one of these records the evaluation, so a test can prove a
// filtered-out statement never formatted its operands.
struct FormatProbe {
  mutable int* evaluations;
};

std::ostream& operator<<(std::ostream& os, const FormatProbe& probe) {
  ++*probe.evaluations;
  return os << "probe";
}

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { set_log_level(LogLevel::kInfo); }
  void TearDown() override { set_log_level(LogLevel::kInfo); }
};

TEST_F(LoggingTest, LogEnabledFollowsThreshold) {
  set_log_level(LogLevel::kWarn);
  EXPECT_FALSE(log_enabled(LogLevel::kDebug));
  EXPECT_FALSE(log_enabled(LogLevel::kInfo));
  EXPECT_TRUE(log_enabled(LogLevel::kWarn));
  EXPECT_TRUE(log_enabled(LogLevel::kError));
  set_log_level(LogLevel::kDebug);
  EXPECT_TRUE(log_enabled(LogLevel::kDebug));
}

TEST_F(LoggingTest, BelowThresholdSkipsFormatting) {
  set_log_level(LogLevel::kWarn);
  int evaluations = 0;
  const FormatProbe probe{&evaluations};
  ::testing::internal::CaptureStderr();
  SEG_LOG_DEBUG << "never " << probe;
  SEG_LOG_INFO << "never " << probe;
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
  EXPECT_EQ(evaluations, 0) << "filtered log statements formatted operands";
}

TEST_F(LoggingTest, AtOrAboveThresholdFormatsAndEmits) {
  set_log_level(LogLevel::kWarn);
  int evaluations = 0;
  const FormatProbe probe{&evaluations};
  ::testing::internal::CaptureStderr();
  SEG_LOG_WARN << "w " << probe;
  SEG_LOG_ERROR << "e " << 42;
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(evaluations, 1);
  EXPECT_EQ(out, "[WARN] w probe\n[ERROR] e 42\n");
}

TEST_F(LoggingTest, ThresholdIsCheckedAtStatementTime) {
  set_log_level(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  SEG_LOG_INFO << "dropped";
  set_log_level(LogLevel::kDebug);
  SEG_LOG_INFO << "kept";
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "[INFO] kept\n");
}

TEST_F(LoggingTest, DirectLogLineStillFilters) {
  set_log_level(LogLevel::kWarn);
  ::testing::internal::CaptureStderr();
  log_line(LogLevel::kInfo, "dropped");
  log_line(LogLevel::kError, "kept");
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "[ERROR] kept\n");
}

TEST_F(LoggingTest, ConcurrentLinesStayIntact) {
  set_log_level(LogLevel::kInfo);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  ::testing::internal::CaptureStderr();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        SEG_LOG_INFO << "thread " << t << " msg " << i;
      }
    });
  }
  for (std::thread& th : threads) th.join();
  const std::string out = ::testing::internal::GetCapturedStderr();
  // Every line must be one complete, well-formed record — interleaving
  // within a line means the mutex failed to serialize fprintf calls.
  std::istringstream lines(out);
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    ++count;
    EXPECT_TRUE(line.rfind("[INFO] thread ", 0) == 0) << "mangled: " << line;
    EXPECT_NE(line.find(" msg "), std::string::npos) << "mangled: " << line;
  }
  EXPECT_EQ(count, kThreads * kPerThread);
}

}  // namespace
}  // namespace seg
