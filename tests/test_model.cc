#include "core/model.h"

#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/params.h"

namespace seg {
namespace {

std::vector<std::int8_t> uniform_spins(int n, std::int8_t v) {
  return std::vector<std::int8_t>(static_cast<std::size_t>(n) * n, v);
}

TEST(ModelParams, DerivedQuantities) {
  ModelParams p{.n = 64, .w = 10, .tau = 0.42, .p = 0.5};
  EXPECT_EQ(p.neighborhood_size(), 441);
  EXPECT_EQ(p.happy_threshold(), 186);
  EXPECT_TRUE(p.valid());
}

TEST(ModelParams, InvalidWhenNeighborhoodExceedsGrid) {
  ModelParams p{.n = 5, .w = 3, .tau = 0.4, .p = 0.5};
  EXPECT_FALSE(p.valid());
}

TEST(AgentSetTest, InsertEraseContains) {
  AgentSet s(10);
  EXPECT_TRUE(s.empty());
  s.insert(3);
  s.insert(7);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.contains(3));
  EXPECT_FALSE(s.contains(4));
  s.erase(3);
  EXPECT_FALSE(s.contains(3));
  EXPECT_TRUE(s.contains(7));
}

TEST(AgentSetTest, DuplicateInsertIgnored) {
  AgentSet s(4);
  s.insert(1);
  s.insert(1);
  EXPECT_EQ(s.size(), 1u);
}

TEST(AgentSetTest, EraseAbsentIgnored) {
  AgentSet s(4);
  s.erase(2);
  EXPECT_TRUE(s.empty());
}

TEST(AgentSetTest, SampleReturnsMember) {
  AgentSet s(100);
  for (std::uint32_t i = 10; i < 20; ++i) s.insert(i);
  Rng rng(1);
  for (int t = 0; t < 100; ++t) {
    const std::uint32_t v = s.sample(rng);
    EXPECT_GE(v, 10u);
    EXPECT_LT(v, 20u);
  }
}

TEST(Model, UniformConfigurationIsAllHappy) {
  ModelParams p{.n = 12, .w = 2, .tau = 0.45, .p = 0.5};
  SchellingModel m(p, uniform_spins(12, 1));
  EXPECT_TRUE(m.terminated());
  EXPECT_EQ(m.count_unhappy(), 0u);
  EXPECT_DOUBLE_EQ(m.happy_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(m.plus_fraction(), 1.0);
}

TEST(Model, PlusCountMatchesDefinition) {
  ModelParams p{.n = 8, .w = 1, .tau = 0.4, .p = 0.5};
  // Single -1 at (3, 3) in a field of +1.
  auto spins = uniform_spins(8, 1);
  spins[3 * 8 + 3] = -1;
  SchellingModel m(p, spins);
  // Agents adjacent to (3,3) see 8 of 9 plus.
  EXPECT_EQ(m.plus_count(m.id_of(3, 3)), 8);
  EXPECT_EQ(m.plus_count(m.id_of(2, 3)), 8);
  EXPECT_EQ(m.plus_count(m.id_of(0, 0)), 9);
}

TEST(Model, SameCountUsesOwnType) {
  ModelParams p{.n = 8, .w = 1, .tau = 0.4, .p = 0.5};
  auto spins = uniform_spins(8, 1);
  spins[3 * 8 + 3] = -1;
  SchellingModel m(p, spins);
  EXPECT_EQ(m.same_count(m.id_of(3, 3)), 1);   // only itself
  EXPECT_EQ(m.same_count(m.id_of(2, 3)), 8);   // all but the -1
}

TEST(Model, HappinessThresholdRespected) {
  // N = 9, tau = 0.4 -> K = 4 same-type agents needed.
  ModelParams p{.n = 9, .w = 1, .tau = 0.4, .p = 0.5};
  auto spins = uniform_spins(9, 1);
  // Give (4,4) exactly 3 same-type (incl. self): 6 of its 8 neighbors -1.
  spins[3 * 9 + 3] = -1;
  spins[3 * 9 + 4] = -1;
  spins[3 * 9 + 5] = -1;
  spins[4 * 9 + 3] = -1;
  spins[4 * 9 + 5] = -1;
  spins[5 * 9 + 3] = -1;
  SchellingModel m(p, spins);
  EXPECT_EQ(m.happy_threshold(), 4);
  EXPECT_EQ(m.same_count(m.id_of(4, 4)), 3);
  EXPECT_TRUE(m.is_unhappy(m.id_of(4, 4)));
}

TEST(Model, FlipMakesHappyForLowTau) {
  // For tau < 1/2 every unhappy agent becomes happy by flipping
  // (paper Sec. II-A, first observation).
  ModelParams p{.n = 16, .w = 2, .tau = 0.44, .p = 0.5};
  Rng rng(7);
  SchellingModel m(p, rng);
  for (const std::uint32_t id : m.unhappy_set().items()) {
    EXPECT_TRUE(m.flip_makes_happy(id));
    EXPECT_TRUE(m.is_flippable(id));
  }
  EXPECT_EQ(m.unhappy_set().size(), m.flippable_set().size());
}

TEST(Model, SuperUnhappyDistinctionForHighTau) {
  // For tau > 1/2 an unhappy agent flips only if the flip makes it happy;
  // near-balanced neighborhoods leave agents unhappy but unflippable.
  ModelParams p{.n = 16, .w = 2, .tau = 0.6, .p = 0.5};
  Rng rng(11);
  SchellingModel m(p, rng);
  EXPECT_LE(m.flippable_set().size(), m.unhappy_set().size());
  bool found_unflippable = false;
  for (const std::uint32_t id : m.unhappy_set().items()) {
    if (!m.is_flippable(id)) {
      found_unflippable = true;
      // Verify directly: after a flip it would still be below threshold.
      const int after = m.neighborhood_size() - m.same_count(id) + 1;
      EXPECT_LT(after, m.happy_threshold());
    }
  }
  // At tau = 0.6 with p = 1/2, near-balanced neighborhoods are common.
  EXPECT_TRUE(found_unflippable);
}

TEST(Model, FlipUpdatesSpinAndCounts) {
  ModelParams p{.n = 10, .w = 2, .tau = 0.45, .p = 0.5};
  Rng rng(3);
  SchellingModel m(p, rng);
  const std::uint32_t id = m.id_of(5, 5);
  const std::int8_t before = m.spin(id);
  m.flip(id);
  EXPECT_EQ(m.spin(id), -before);
  EXPECT_TRUE(m.check_invariants());
}

TEST(Model, DoubleFlipRestoresState) {
  ModelParams p{.n = 10, .w = 2, .tau = 0.45, .p = 0.5};
  Rng rng(5);
  SchellingModel m(p, rng);
  const auto spins_before = m.spins();
  const std::uint32_t id = m.id_of(2, 7);
  m.flip(id);
  m.flip(id);
  EXPECT_EQ(m.spins(), spins_before);
  EXPECT_TRUE(m.check_invariants());
}

TEST(Model, RandomFlipSequencePreservesInvariants) {
  ModelParams p{.n = 12, .w = 3, .tau = 0.4, .p = 0.5};
  Rng rng(13);
  SchellingModel m(p, rng);
  for (int t = 0; t < 50; ++t) {
    const auto id = static_cast<std::uint32_t>(
        rng.uniform_below(m.agent_count()));
    m.flip(id);
  }
  EXPECT_TRUE(m.check_invariants());
}

TEST(Model, LyapunovIncreasesOnFlippableFlip) {
  ModelParams p{.n = 16, .w = 2, .tau = 0.45, .p = 0.5};
  Rng rng(17);
  SchellingModel m(p, rng);
  ASSERT_FALSE(m.terminated());
  for (int t = 0; t < 10 && !m.terminated(); ++t) {
    const std::int64_t before = m.lyapunov();
    const std::uint32_t id = m.flippable_set().sample(rng);
    m.flip(id);
    EXPECT_GT(m.lyapunov(), before);
  }
}

TEST(Model, IdPointRoundTrip) {
  ModelParams p{.n = 9, .w = 1, .tau = 0.4, .p = 0.5};
  Rng rng(19);
  SchellingModel m(p, rng);
  for (const int x : {0, 4, 8}) {
    for (const int y : {0, 3, 8}) {
      const Point pt = m.point_of(m.id_of(x, y));
      EXPECT_EQ(pt.x, x);
      EXPECT_EQ(pt.y, y);
    }
  }
  // Wrapping coordinates resolve to the same agent.
  EXPECT_EQ(m.id_of(-1, 0), m.id_of(8, 0));
}

TEST(Model, BernoulliInitialMixRoughlyBalanced) {
  ModelParams p{.n = 64, .w = 2, .tau = 0.45, .p = 0.5};
  Rng rng(23);
  SchellingModel m(p, rng);
  EXPECT_NEAR(m.plus_fraction(), 0.5, 0.05);
}

TEST(Model, BiasedInitialMix) {
  ModelParams p{.n = 64, .w = 2, .tau = 0.45, .p = 0.8};
  Rng rng(29);
  SchellingModel m(p, rng);
  EXPECT_NEAR(m.plus_fraction(), 0.8, 0.05);
}

TEST(Model, InitialCountsMatchBruteForce) {
  ModelParams p{.n = 11, .w = 3, .tau = 0.4, .p = 0.5};
  Rng rng(31);
  SchellingModel m(p, rng);
  EXPECT_TRUE(m.check_invariants());
}

class ModelParamSweep
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(ModelParamSweep, InvariantsAfterConstructionAndFlips) {
  const auto [n, w, tau] = GetParam();
  ModelParams p{.n = n, .w = w, .tau = tau, .p = 0.5};
  ASSERT_TRUE(p.valid());
  Rng rng(static_cast<std::uint64_t>(n * 1000 + w * 10) ^
          static_cast<std::uint64_t>(tau * 1e6));
  SchellingModel m(p, rng);
  EXPECT_TRUE(m.check_invariants());
  for (int t = 0; t < 20 && !m.terminated(); ++t) {
    m.flip(m.flippable_set().sample(rng));
  }
  EXPECT_TRUE(m.check_invariants());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ModelParamSweep,
    ::testing::Combine(::testing::Values(8, 12, 16),
                       ::testing::Values(1, 2, 3),
                       ::testing::Values(0.3, 0.4, 0.45, 0.55, 0.7)));

}  // namespace
}  // namespace seg
