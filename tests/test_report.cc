// Tests for the structured run report: histogram quantile estimation,
// report building from a campaign result plus the registry, and the
// JSON / markdown renders.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/campaign.h"
#include "campaign/stopping.h"
#include "json_checker.h"
#include "obs/report.h"
#include "obs/telemetry.h"

namespace seg {
namespace {

using seg::testing::json_well_formed;

struct ScopedTelemetry {
  ScopedTelemetry() {
    obs::set_enabled(true);
    obs::Registry::instance().reset_values();
  }
  ~ScopedTelemetry() { obs::set_enabled(false); }
};

TEST(HistogramQuantile, InterpolatesWithinLog2Buckets) {
  // 100 observations of value 10 (bucket b=4, range [8,15]): every
  // quantile lands inside that bucket's bounds.
  std::vector<std::uint64_t> buckets(obs::kHistogramBuckets, 0);
  buckets[4] = 100;
  const double p50 = obs::quantile_from_log2_buckets(buckets, 0.5);
  EXPECT_GE(p50, 8.0);
  EXPECT_LE(p50, 15.0);
  const double p99 = obs::quantile_from_log2_buckets(buckets, 0.99);
  EXPECT_GE(p99, p50);
  EXPECT_LE(p99, 15.0);
}

TEST(HistogramQuantile, OrdersAcrossBuckets) {
  // 90 small values, 10 large ones: the p50 sits in the low bucket, the
  // p99 in the high one.
  std::vector<std::uint64_t> buckets(obs::kHistogramBuckets, 0);
  buckets[3] = 90;   // [4, 7]
  buckets[10] = 10;  // [512, 1023]
  const double p50 = obs::quantile_from_log2_buckets(buckets, 0.5);
  const double p99 = obs::quantile_from_log2_buckets(buckets, 0.99);
  EXPECT_LE(p50, 7.0);
  EXPECT_GE(p99, 512.0);
}

TEST(HistogramQuantile, EmptyHistogramIsNan) {
  std::vector<std::uint64_t> buckets(obs::kHistogramBuckets, 0);
  EXPECT_TRUE(std::isnan(obs::quantile_from_log2_buckets(buckets, 0.5)));
}

TEST(HistogramQuantile, RegistryLookupMatchesFreeFunction) {
  ScopedTelemetry telemetry;
  for (int i = 0; i < 100; ++i) SEG_HISTOGRAM("report_test.q_us", 100);
  const double p50 =
      obs::Registry::instance().histogram_quantile("report_test.q_us", 0.5);
  EXPECT_GE(p50, 64.0);
  EXPECT_LE(p50, 127.0);
}

CampaignResult fake_result() {
  CampaignResult result;
  result.seed = 99;
  result.metric_names = {"seg_index"};
  result.replicas_done = 12;
  result.replicas_resumed = 4;
  result.complete = true;
  PointResult stopped;
  stopped.state = PointState::kStopped;
  stopped.replicas_used = 5;
  PointResult capped;
  capped.state = PointState::kCapped;
  capped.replicas_used = 7;
  result.points = {stopped, capped};
  result.decision_trace = {
      StopDecision{0, 5, StopRule::kHoeffding, 0.01},
  };
  return result;
}

TEST(RunReport, FoldsResultAndRegistry) {
  ScopedTelemetry telemetry;
  SEG_COUNT("campaign.checkpoints", 3);
  SEG_COUNT("pool.campaign.worker.0.busy_us", 500000);
  for (int i = 0; i < 32; ++i) SEG_HISTOGRAM("phase.sweep_us", 100 + i);
  SEG_HISTOGRAM("streaming.split_piece_sites", 64);  // not a phase

  const obs::RunReport rep = obs::build_report(fake_result(), 1.0);
  EXPECT_EQ(rep.seed, 99u);
  EXPECT_EQ(rep.points, 2u);
  EXPECT_EQ(rep.points_stopped, 1u);
  EXPECT_EQ(rep.points_capped, 1u);
  EXPECT_EQ(rep.replicas_done, 12u);
  EXPECT_EQ(rep.replicas_resumed, 4u);
  EXPECT_EQ(rep.checkpoints_written, 3u);
  EXPECT_EQ(rep.decisions, 1u);
  EXPECT_EQ(rep.min_stop_replicas, 5u);
  EXPECT_EQ(rep.max_stop_replicas, 5u);

  ASSERT_EQ(rep.phases.size(), 1u) << "only phase.* histograms qualify";
  EXPECT_EQ(rep.phases[0].name, "phase.sweep_us");
  EXPECT_EQ(rep.phases[0].count, 32u);
  EXPECT_LE(rep.phases[0].p50_us, rep.phases[0].p95_us);
  EXPECT_LE(rep.phases[0].p95_us, rep.phases[0].p99_us);

  ASSERT_EQ(rep.workers.size(), 1u);
  EXPECT_NEAR(rep.workers[0].utilization, 0.5, 1e-9);
}

TEST(RunReport, JsonRenderIsWellFormed) {
  ScopedTelemetry telemetry;
  for (int i = 0; i < 8; ++i) SEG_HISTOGRAM("phase.reconcile_us", 50);
  const std::string doc = obs::render_json(obs::build_report(fake_result(),
                                                             2.5));
  EXPECT_TRUE(json_well_formed(doc)) << doc;
  EXPECT_NE(doc.find("\"decision_trace_hash\""), std::string::npos);
  EXPECT_NE(doc.find("\"phase.reconcile_us\""), std::string::npos);
  EXPECT_NE(doc.find("\"wall_time_s\": 2.5"), std::string::npos);
}

TEST(RunReport, MarkdownRenderHasSections) {
  ScopedTelemetry telemetry;
  for (int i = 0; i < 8; ++i) SEG_HISTOGRAM("phase.sweep_us", 200);
  const std::string md =
      obs::render_markdown(obs::build_report(fake_result(), 1.0));
  EXPECT_NE(md.find("# Campaign run report"), std::string::npos);
  EXPECT_NE(md.find("## Phase latencies"), std::string::npos);
  EXPECT_NE(md.find("## Adaptive stopping"), std::string::npos);
  EXPECT_NE(md.find("| phase.sweep_us |"), std::string::npos);
}

TEST(RunReport, WriteDispatchesOnExtension) {
  ScopedTelemetry telemetry;
  const obs::RunReport rep = obs::build_report(fake_result(), 1.0);

  const std::string json_path = "/tmp/seg_report_test.json";
  ASSERT_TRUE(obs::write_report(rep, json_path));
  std::ostringstream json_text;
  json_text << std::ifstream(json_path).rdbuf();
  EXPECT_TRUE(json_well_formed(json_text.str()));
  std::remove(json_path.c_str());

  const std::string md_path = "/tmp/seg_report_test.md";
  ASSERT_TRUE(obs::write_report(rep, md_path));
  std::ostringstream md_text;
  md_text << std::ifstream(md_path).rdbuf();
  EXPECT_EQ(md_text.str().rfind("# Campaign run report", 0), 0u);
  std::remove(md_path.c_str());
}

}  // namespace
}  // namespace seg
