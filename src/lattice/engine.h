// The shared incremental engine for binary-spin lattice models
// (SchellingModel, ComfortModel, and anything with an agent state of
// +1/-1 and a classification driven by the windowed +1-count).
//
// The engine owns the spin field, the per-site +1 window counts, a
// per-site membership code (see membership.h), and up to 8 AgentSets.
// flip(id) negates a spin and restores all invariants in one pass over
// the window: counts update via contiguous row spans (window.h), and set
// membership updates fire only for sites whose count crossed a model
// threshold — O(#crossings) set operations instead of (2w+1)^2 probes.
//
// Storage backends (lattice/storage.h): the byte backend keeps one int8
// spin per site with int32 counts (the PR 2 reference layout); the packed
// backend keeps one *bit* per site (lattice/bitfield.h) with int16
// counts, shrinking the per-flip working set ~2.5x and doubling the SIMD
// lane count of the span kernels. Both backends execute the identical
// update sequence — same count values, same touch order, same AgentSet
// mutation history — so trajectories are bitwise identical; the
// differential suites drive both against the same frozen golden hashes.
//
// Trajectory compatibility: sites are visited in the legacy stencil
// order and set mutations are applied in ascending set index, which
// reproduces the pre-engine refresh_membership() mutation sequence
// exactly; golden-seed tests pin this down.
//
// Sharding: when constructed with a non-trivial ShardLayout, every
// logical set is split into one AgentSet per shard and a site's
// membership always lives in its owning shard's sub-set. Flips at
// layout-interior sites then touch only that shard's storage (spins,
// counts, codes, sub-sets), which is what lets the parallel sweep engine
// (core/parallel_dynamics.h) run interior flips of distinct shards
// concurrently without locks. With the default trivial layout the engine
// is bit-for-bit the serial engine of PR 2. Under the packed backend,
// two shards can share a 64-bit spin word when a checkerboard layout
// cuts columns off 64-bit alignment; the engine detects that at
// construction and routes those flips through atomic fetch-xor.
//
// Graph mode: the second constructor takes a GraphTopology (graph/) in
// place of the torus geometry. Neighborhood iteration becomes a CSR row
// walk, shard ownership/boundaries come from a GraphPartition instead of
// a ShardLayout, and — because neighborhood sizes vary per node — the
// single MembershipTable becomes one table per neighborhood-size class,
// built from a code functor (N, plus, count) -> code. Graph mode always
// uses the byte backend and skips the span/break machinery; a flip walks
// row(id) and touch-updates each entry, which on a torus-built graph is
// the exact legacy touch order, so torus-as-graph trajectories are
// bitwise identical to the native span engine (the graph differential
// suite pins all golden hashes). Everything downstream — agent sets,
// observers, the parallel sweep engine — works unchanged because flips
// at partition-interior nodes still write only their own part's storage.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

// The packed backend's flip kernel has an AVX-512BW specialization (one
// masked zmm read-modify-write per window row, vpcmpw break detection
// straight into a k-mask), selected at runtime via cpuid so the binary
// stays portable. SEG_NO_POPCNT (the portable-build knob) disables every
// CPU-specific fast path, this one included.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(SEG_NO_POPCNT)
#define SEG_ENGINE_AVX512 1
#endif

#include "graph/partition.h"
#include "graph/topology.h"
#include "grid/point.h"
#include "lattice/agent_set.h"
#include "lattice/bitfield.h"
#include "lattice/membership.h"
#include "lattice/sharded.h"
#include "lattice/storage.h"
#include "lattice/window.h"
#include "obs/telemetry.h"
#include "util/seg_assert.h"

namespace seg {

// Flip-event subscriber (analysis/streaming.h implements it). The engine
// invokes on_flip() after every completed flip — counts, codes, and set
// memberships are already restored when the callback runs, and spin(id)
// holds the new value. Observers must not mutate the engine from inside
// the callback.
//
// Thread-safety contract: the callback fires on whichever thread called
// flip(). The sharded sweep engine (core/parallel_dynamics.h) runs
// phase-A flips concurrently, so an engine-level observer must NOT be
// attached to a sharded engine driven by the parallel sweeps — use
// ParallelOptions::streaming, which logs per-shard flip events and
// replays them serially at each reconciliation barrier instead.
class FlipObserver {
 public:
  virtual ~FlipObserver() = default;
  virtual void on_flip(std::uint32_t id, std::int8_t new_spin) = 0;
};

// Graph-mode membership rule: code for an agent on a node whose
// neighborhood holds `neighborhood_size` sites (self included), of the
// given spin sign, with `count` +1 agents in the neighborhood. Evaluated
// once per neighborhood-size class at construction, never on a flip.
using GraphCodeFn =
    std::function<std::uint8_t(int neighborhood_size, bool plus, int count)>;

class BinarySpinEngine {
 public:
  // `offsets` is the full stencil including (0,0). When `dense_window` is
  // true the stencil must be the full (2w+1)^2 Moore window and flips take
  // the span fast path; otherwise (e.g. von Neumann) flips walk the
  // offsets with wrapped indexing. Spins must be +1/-1, size n*n.
  // `layout` must be trivial or partition the same torus with margin w.
  // `storage` picks the backend; kDefault resolves to the build default
  // (lattice/storage.h), and windows larger than an int16 count can hold
  // (> 32767 sites) silently fall back to the byte backend.
  BinarySpinEngine(int n, int w, bool dense_window,
                   std::vector<Point> offsets,
                   std::vector<std::int8_t> spins, MembershipTable table,
                   int set_count, ShardLayout layout = ShardLayout(),
                   EngineStorage storage = EngineStorage::kDefault);

  // Graph mode: spins live on `graph`'s nodes (size node_count()), and
  // `code_of` defines the membership rule per neighborhood-size class.
  // `partition` plays the ShardLayout role (default: trivial, serial).
  // Always byte storage: the span/popcount machinery is torus-specific,
  // and graph nodes have no row structure for the SIMD kernels to use.
  BinarySpinEngine(std::shared_ptr<const GraphTopology> graph,
                   std::vector<std::int8_t> spins, const GraphCodeFn& code_of,
                   int set_count, GraphPartition partition = GraphPartition());

  int side() const { return geometry_.side(); }
  int radius() const { return geometry_.radius(); }
  int window_size() const { return static_cast<int>(offsets_.size()); }
  std::size_t size() const {
    return graph_ ? graph_->node_count() : geometry_.site_count();
  }
  const WindowGeometry& geometry() const { return geometry_; }

  bool graph_mode() const { return graph_ != nullptr; }
  // Null in torus mode.
  const GraphTopology* graph() const { return graph_.get(); }
  const GraphPartition& partition() const { return partition_; }
  // Per-node stencil size (self included): the membership-threshold N for
  // node `id`. Uniform and equal to window_size() in torus mode.
  int neighborhood_size(std::uint32_t id) const {
    return graph_ ? graph_->neighborhood_size(id) : window_size();
  }
  // True iff a flip at `id` can write another shard's storage — the
  // question the parallel sweep engine asks, unified across both
  // sharding schemes (stripe/checkerboard layouts and graph partitions).
  bool shard_boundary(std::uint32_t id) const {
    return graph_ ? partition_.boundary(id) : layout_.boundary(id);
  }

  EngineStorage storage() const { return storage_; }
  bool packed() const { return storage_ == EngineStorage::kPacked; }

  std::int8_t spin(std::uint32_t id) const {
    return packed() ? bits_.spin(id) : spins_[id];
  }
  // Snapshot of the spin field as one byte per site. The pre-packed raw
  // reference accessor (`const std::vector<int8_t>& spins()`) is gone:
  // the packed backend has no byte array to reference, so every consumer
  // goes through spin(id), the snapshot, or the packed accessors below.
  std::vector<std::int8_t> spins_snapshot() const;
  // The packed backend's live bit array (valid while the engine lives).
  // Only meaningful when packed(); byte-backend callers wanting bits use
  // packed_spins().
  const BitField& bits() const {
    SEG_ASSERT(packed(), "bits() called on a byte-storage engine");
    return bits_;
  }
  // One-bit-per-site copy of the field under either backend.
  BitField packed_spins() const;
  // Number of +1 sites (a whole-field popcount under the packed backend).
  std::int64_t plus_total() const;

  std::int32_t plus_count(std::uint32_t id) const {
    return packed() ? plus_count16_[id] : plus_count_[id];
  }
  std::uint8_t code(std::uint32_t id) const { return status_[id]; }
  const std::vector<std::uint8_t>& codes() const { return status_; }
  const std::vector<Point>& offsets() const { return offsets_; }

  // Shard 0's slice of set s — the whole set under the trivial layout.
  // Serial callers (every model's hot path) use this form; sharded
  // engines must address slices explicitly via set(s, shard).
  const AgentSet& set(int s) const { return sets_[s * shard_count_]; }
  AgentSet& set(int s) { return sets_[s * shard_count_]; }

  int shard_count() const { return shard_count_; }
  const ShardLayout& layout() const { return layout_; }
  const AgentSet& set(int s, int shard) const {
    return sets_[s * shard_count_ + shard];
  }
  AgentSet& set(int s, int shard) { return sets_[s * shard_count_ + shard]; }
  // Membership of id in logical set s, looked up in its owning shard.
  bool in_set(int s, std::uint32_t id) const {
    return sets_[s * shard_count_ + site_shard(id)].contains(id);
  }
  // Total size of logical set s across shards.
  std::size_t set_size(int s) const {
    std::size_t total = 0;
    for (int shard = 0; shard < shard_count_; ++shard) {
      total += sets_[s * shard_count_ + shard].size();
    }
    return total;
  }

  // Negates spins_[id] and restores counts, codes, and set memberships,
  // then notifies the attached observer (if any).
  void flip(std::uint32_t id) {
    // Safe under concurrent phase-A flips: the counter add lands in the
    // calling thread's own telemetry slab. Runtime-disabled cost is one
    // relaxed load + branch, pinned <= 2% on BM_Flip by BM_FlipTelemetry.
    SEG_COUNT("engine.flips", 1);
    flip_impl(id);
    if (observer_ != nullptr) observer_->on_flip(id, spin(id));
  }

  // At most one observer; nullptr detaches. See the FlipObserver contract
  // above for the threading rules.
  void set_observer(FlipObserver* observer) { observer_ = observer; }
  FlipObserver* observer() const { return observer_; }

  // Full recount audit: counts match the stencil, codes match the table,
  // memberships match the codes. O(n^2 N).
  bool check_invariants() const;

 private:
  // Membership codes are piecewise-constant in the count; a +-1 count
  // change can alter the code only when the new count lands exactly on a
  // piece boundary. The detection set is the union of both spin signs'
  // boundaries, so the hot loop compares counts against register
  // constants only — no per-cell spin load. A hit may be a false positive
  // for the other spin sign; touch() resolves it against the exact table
  // (and does nothing when the code is unchanged). Every current model
  // has <= 4 boundaries per spin sign, <= 8 in the union; flip_impl
  // dispatches a 4-compare kernel when the union fits in 4.
  static constexpr int kMaxBreaks = 8;

  void init_counts();
  void init_codes();
  void init_breaks();
  void init_graph(const GraphCodeFn& code_of);
  void flip_impl(std::uint32_t id);
  void flip_graph(std::uint32_t id);

  // The dense span fast path, instantiated per (count type, compare
  // width): int32/int16 for the byte/packed backends, 4 or 8 break
  // compares depending on how many boundaries the model actually has.
  template <typename CountT, int NB>
  void flip_dense_sparse(std::uint32_t id, std::int32_t delta,
                         CountT* counts);

#if SEG_ENGINE_AVX512
  // Packed-backend specialization of the dense fast path: one masked zmm
  // RMW per window row segment (32 int16 lanes), break hits read directly
  // off vpcmpw k-masks — no second rescan pass. Touch order is identical
  // to flip_dense_sparse (legacy stencil order), so trajectories stay
  // bitwise identical; test_bitfield pins this differentially.
  __attribute__((target("avx512f,avx512bw"))) void flip_packed_avx512(
      std::uint32_t id, std::int32_t delta);
#endif

  // Count bump for the cold paths (dense fallback, generic stencil).
  std::int32_t bump_count(std::uint32_t id, std::int32_t delta) {
    if (packed()) {
      return plus_count16_[id] =
                 static_cast<std::int16_t>(plus_count16_[id] + delta);
    }
    return plus_count_[id] += delta;
  }

  // Owning shard of a site under whichever sharding scheme is active.
  int site_shard(std::uint32_t id) const {
    if (shard_count_ == 1) return 0;
    return graph_ ? partition_.part_of(id) : layout_.shard_of(id);
  }

  void apply_code(std::uint32_t id, std::uint8_t have, std::uint8_t want) {
    // One branch on the trivial case keeps the serial hot path free of
    // the per-row shard lookup.
    const int shard = site_shard(id);
    for (int s = 0; s < set_count_; ++s) {
      const std::uint8_t bit = static_cast<std::uint8_t>(1u << s);
      if ((have ^ want) & bit) {
        AgentSet& target = sets_[s * shard_count_ + shard];
        if (want & bit) {
          SEG_ASSERT(!target.contains(id),
                     "site " << id << " already in set " << s << " shard "
                             << shard << " on insert");
          target.insert(id);
        } else {
          SEG_ASSERT(target.contains(id),
                     "site " << id << " absent from set " << s << " shard "
                             << shard << " on erase");
          target.erase(id);
        }
      }
    }
  }

  // Updates one site given its new count; shared by both flip paths.
  void touch(std::uint32_t id, std::int32_t new_count) {
    SEG_ASSERT(new_count >= 0 && new_count <= window_size(),
               "site " << id << " count " << new_count
                       << " escaped [0, " << window_size()
                       << "] after a window update");
    const std::uint8_t want =
        table_.data()[table_.spin_offset(spin(id)) + new_count];
    const std::uint8_t have = status_[id];
    if (want != have) {
      apply_code(id, have, want);
      status_[id] = want;
    }
  }

  // Graph-mode twin of touch(): same contract, but the code lookup goes
  // through the node's neighborhood-size class table.
  void touch_graph(std::uint32_t id, std::int32_t new_count) {
    SEG_ASSERT(new_count >= 0 && new_count <= neighborhood_size(id),
               "node " << id << " count " << new_count << " escaped [0, "
                       << neighborhood_size(id) << "] after a flip");
    const MembershipTable& table = class_tables_[table_of_[id]];
    const std::uint8_t want =
        table.data()[table.spin_offset(spins_[id]) + new_count];
    const std::uint8_t have = status_[id];
    if (want != have) {
      apply_code(id, have, want);
      status_[id] = want;
    }
  }

  WindowGeometry geometry_;
  ShardLayout layout_;
  int shard_count_;
  bool dense_window_;
  bool sparse_crossings_;
  EngineStorage storage_ = EngineStorage::kByte;
  // Packed backend only: route bit flips through atomic fetch-xor because
  // some 64-bit word straddles a shard boundary (checkerboard column cuts
  // off 64-alignment) and phase-A flips may hit it concurrently.
  bool atomic_bits_ = false;
  // Packed + dense + sparse-crossings + cpuid(avx512bw): flips route to
  // flip_packed_avx512.
  bool simd_kernel_ = false;
  int break_count_ = 0;
  // Counts c where code(c) != code(c - 1) for either spin sign, padded
  // with an unreachable sentinel.
  std::int32_t breaks_[kMaxBreaks];
  int set_count_;
  std::vector<Point> offsets_;
  MembershipTable table_;
  std::vector<std::int8_t> spins_;        // byte backend (empty if packed)
  BitField bits_;                         // packed backend
  std::vector<std::int32_t> plus_count_;  // byte backend counts
  std::vector<std::int16_t> plus_count16_;  // packed backend counts
  std::vector<std::uint8_t> status_;
  std::vector<AgentSet> sets_;
  FlipObserver* observer_ = nullptr;

  // Graph mode only. One MembershipTable per distinct neighborhood size
  // (class_tables_), with table_of_[id] indexing each node's class —
  // uniform-degree graphs (torus-as-graph, random regular) collapse to a
  // single table, so the touch cost matches the torus path.
  std::shared_ptr<const GraphTopology> graph_;
  GraphPartition partition_;
  std::vector<MembershipTable> class_tables_;
  std::vector<std::uint16_t> table_of_;
};

}  // namespace seg
