#include "core/parallel_dynamics.h"

#include <algorithm>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "analysis/streaming.h"
#include "core/kawasaki.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "util/seg_assert.h"
#include "util/thread_pool.h"

namespace seg {

namespace {

std::size_t pool_width(std::size_t requested, int shards) {
  std::size_t width = requested;
  if (width == 0) {
    width = std::max(1u, std::thread::hardware_concurrency());
  }
  return std::min(width, static_cast<std::size_t>(shards));
}

// Per-shard unhappy split into +1 / -1 classes; the Kawasaki proposal
// loop terminates a shard when either class is empty (mirrors the serial
// engine's unhappy_partition).
std::pair<std::size_t, std::size_t> shard_unhappy_partition(
    const SchellingModel& model, int shard) {
  std::size_t plus = 0;
  const AgentSet& unhappy = model.unhappy_set(shard);
  for (const std::uint32_t id : unhappy.items()) {
    plus += model.spin(id) > 0;
  }
  return {plus, unhappy.size() - plus};
}

}  // namespace

ParallelRunResult run_parallel_glauber(SchellingModel& model,
                                       std::uint64_t seed,
                                       const ParallelOptions& options) {
  const int k = model.shard_count();
  StreamingObservables* streaming = options.streaming;
  SEG_ASSERT(model.flip_observer() == nullptr || k == 1,
             "engine-level flip observer attached to a " << k
                 << "-shard model: phase A is concurrent; route streaming "
                    "measurement through ParallelOptions::streaming");

  struct ShardState {
    Rng rng;
    std::vector<std::uint32_t> queue;  // deferred boundary draws
    std::vector<std::uint32_t> events;  // applied flips, for streaming
    std::uint64_t flips = 0;            // this sweep
    std::uint64_t deferred = 0;         // this sweep
    double time = 0.0;                  // shard-local Poisson clock
  };
  std::vector<ShardState> shards;
  shards.reserve(k);
  for (int s = 0; s < k; ++s) {
    shards.push_back(ShardState{Rng::stream(seed, s), {}, {}, 0, 0, 0.0});
  }

  const std::uint64_t quantum =
      options.sweep_quantum > 0
          ? options.sweep_quantum
          : std::max<std::uint64_t>(256, model.agent_count() / (4 * k));

  ThreadPool pool(pool_width(options.threads, k), "shards");
  ParallelRunResult result;
  std::vector<std::uint32_t> reconciled_events;
  std::uint64_t flips_since_sample = 0;

  while (!model.terminated() && result.flips < options.max_flips &&
         result.sweeps < options.max_sweeps) {
    SEG_TRACE_SPAN("sweep");
    SEG_TIMED("phase.sweep_us");
    const std::uint64_t budget =
        std::min(quantum, options.max_flips - result.flips);

    // Phase A: every shard advances its own subsystem. Interior flips
    // stay entirely inside the shard (ShardLayout isolation), so the
    // shared engine is written race-free; the first boundary draw is
    // deferred and blocks the shard until reconciliation.
    parallel_for(pool, static_cast<std::size_t>(k), [&](std::size_t s) {
      SEG_TRACE_SPAN("phase_a_shard");
      SEG_TIMED("phase.shard_a_us");
      ShardState& st = shards[s];
      const AgentSet& flippable =
          model.flippable_set(static_cast<int>(s));
      for (std::uint64_t b = 0; b < budget; ++b) {
        if (flippable.empty()) break;
        const double dt = st.rng.exponential(
            static_cast<double>(flippable.size()));
        st.time += dt;
        const std::uint32_t id = flippable.sample(st.rng);
        if (model.shard_boundary(id)) {
          st.queue.push_back(id);
          ++st.deferred;
          break;
        }
        model.flip(id);
        ++st.flips;
        if (streaming != nullptr) st.events.push_back(id);
      }
    });

    // Fold sweep statistics in shard order (deterministic). Telemetry
    // counters are bumped once per sweep with the folded deltas, so the
    // phase-A proposal loops stay macro-free.
    std::uint64_t sweep_flips = 0;
    std::int64_t queue_depth = 0;
    for (ShardState& st : shards) {
      sweep_flips += st.flips;
      result.flips += st.flips;
      result.deferred += st.deferred;
      SEG_COUNT("dynamics.deferred", st.deferred);
      queue_depth += static_cast<std::int64_t>(st.queue.size());
      result.final_time = std::max(result.final_time, st.time);
      st.flips = 0;
      st.deferred = 0;
    }
    SEG_COUNT("dynamics.flips", sweep_flips);
    // Queue pressure at the barrier: how much work phase A pushed into
    // the serial reconciliation pass this sweep.
    SEG_GAUGE_SET("dynamics.conflict_queue_depth", queue_depth);
    SEG_TRACE_COUNTER("conflict_queue_depth", queue_depth);

    // Phase B: serial reconciliation in ascending shard order. A deferred
    // flip is re-validated against the current global state — an earlier
    // reconciled flip may have changed its window.
    {
      SEG_TRACE_SPAN("reconcile");
      SEG_TIMED("phase.reconcile_us");
      std::uint64_t sweep_reconciled = 0;
      for (ShardState& st : shards) {
        for (const std::uint32_t id : st.queue) {
          SEG_ASSERT(model.shard_boundary(id),
                     "non-boundary site " << id
                                          << " reached the conflict queue");
          if (model.in_flippable_set(id)) {
            model.flip(id);
            ++sweep_reconciled;
            ++result.reconciled;
            ++result.flips;
            if (streaming != nullptr) reconciled_events.push_back(id);
          }
        }
        st.queue.clear();
      }
      SEG_COUNT("dynamics.reconciled", sweep_reconciled);
      SEG_COUNT("dynamics.flips", sweep_reconciled);
    }
    if (streaming != nullptr) {
      // Drain the sweep's events serially: phase-A logs in shard order
      // (interior sites, disjoint across shards and from the boundary
      // sites phase B touches, so per-site ordering is preserved), then
      // the reconciled boundary flips in application order. Samples are
      // taken on the replayed stream every `streaming_sample_every`
      // flips (or once per sweep when 0), deterministically.
      SEG_TRACE_SPAN("streaming_replay");
      SEG_TIMED("phase.streaming_replay_us");
      const auto drain = [&](std::uint32_t id) {
        streaming->apply_flip(id);
        if (options.streaming_sample_every > 0 &&
            ++flips_since_sample >= options.streaming_sample_every) {
          flips_since_sample = 0;
          streaming->record_sample();
        }
      };
      for (ShardState& st : shards) {
        for (const std::uint32_t id : st.events) drain(id);
        st.events.clear();
      }
      for (const std::uint32_t id : reconciled_events) drain(id);
      reconciled_events.clear();
      if (options.streaming_sample_every == 0) streaming->record_sample();
    }
    ++result.sweeps;
  }

  result.terminated = model.terminated();
  return result;
}

ParallelKawasakiResult run_parallel_kawasaki(
    SchellingModel& model, std::uint64_t seed,
    const ParallelKawasakiOptions& options) {
  const int k = model.shard_count();

  struct ShardState {
    Rng rng;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> queue;
    std::uint64_t swaps = 0;      // this sweep
    std::uint64_t proposals = 0;  // this sweep
    std::uint64_t deferred = 0;   // this sweep
    std::uint64_t consecutive_rejects = 0;  // persists across sweeps
    bool absorbed = false;        // one unhappy class empty this sweep
    bool certified = false;       // 1-shard mid-loop exact test passed
  };
  std::vector<ShardState> shards;
  shards.reserve(k);
  for (int s = 0; s < k; ++s) {
    shards.push_back(ShardState{Rng::stream(seed, s), {}, 0, 0, 0, 0,
                                false, false});
  }

  const std::uint64_t quantum =
      options.proposal_quantum > 0
          ? options.proposal_quantum
          : std::max<std::uint64_t>(512, model.agent_count() /
                                             static_cast<std::uint64_t>(k));

  ThreadPool pool(pool_width(options.threads, k), "shards");
  ParallelKawasakiResult result;

  while (result.swaps < options.max_swaps &&
         result.sweeps < options.max_sweeps) {
    SEG_TRACE_SPAN("kawasaki_sweep");
    SEG_TIMED("phase.kawasaki_sweep_us");
    const std::uint64_t swap_budget = options.max_swaps - result.swaps;

    parallel_for(pool, static_cast<std::size_t>(k), [&](std::size_t si) {
      SEG_TRACE_SPAN("phase_a_shard");
      SEG_TIMED("phase.shard_a_us");
      const int s = static_cast<int>(si);
      ShardState& st = shards[si];
      st.absorbed = false;
      auto [plus_unhappy, minus_unhappy] =
          shard_unhappy_partition(model, s);
      while (st.proposals < quantum && st.swaps < swap_budget) {
        if (plus_unhappy == 0 || minus_unhappy == 0) {
          st.absorbed = true;
          break;
        }
        const AgentSet& unhappy = model.unhappy_set(s);
        const std::uint32_t a = unhappy.sample(st.rng);
        const std::uint32_t b = unhappy.sample(st.rng);
        ++st.proposals;
        if (model.spin(a) == model.spin(b)) continue;
        if (model.shard_boundary(a) || model.shard_boundary(b)) {
          st.queue.emplace_back(a, b);
          ++st.deferred;
          continue;
        }
        // Both endpoints interior to this shard: the tentative swap and
        // its possible revert touch only shard-local state.
        if (swap_improves(model, a, b)) {
          ++st.swaps;
          st.consecutive_rejects = 0;
          std::tie(plus_unhappy, minus_unhappy) =
              shard_unhappy_partition(model, s);
          continue;
        }
        ++st.consecutive_rejects;
        if (k == 1) {
          // Single shard: run the serial engine's mid-stream exact
          // absorption test at the same cadence, so the 1-shard run
          // terminates on the same proposal as run_kawasaki.
          if (st.consecutive_rejects >= options.stale_check_after &&
              st.consecutive_rejects % options.stale_check_after == 0 &&
              !improving_swap_exists(model)) {
            st.certified = true;
            break;
          }
          if (options.max_consecutive_rejects > 0 &&
              st.consecutive_rejects >= options.max_consecutive_rejects) {
            break;
          }
        }
      }
    });

    bool all_absorbed = true;
    std::uint64_t sweep_progress = 0;
    std::uint64_t sweep_swaps = 0, sweep_proposals = 0, sweep_deferred = 0;
    std::int64_t queue_depth = 0;
    for (ShardState& st : shards) {
      result.swaps += st.swaps;
      result.proposals += st.proposals;
      result.deferred += st.deferred;
      sweep_progress += st.swaps;
      sweep_swaps += st.swaps;
      sweep_proposals += st.proposals;
      sweep_deferred += st.deferred;
      queue_depth += static_cast<std::int64_t>(st.queue.size());
      st.swaps = 0;
      st.proposals = 0;
      st.deferred = 0;
      all_absorbed &= st.absorbed;
      if (st.certified) result.terminated = true;
    }
    SEG_COUNT("dynamics.swaps", sweep_swaps);
    SEG_COUNT("dynamics.proposals", sweep_proposals);
    SEG_COUNT("dynamics.deferred", sweep_deferred);
    SEG_GAUGE_SET("dynamics.conflict_queue_depth", queue_depth);
    SEG_TRACE_COUNTER("conflict_queue_depth", queue_depth);

    // Phase B: serial reconciliation of boundary pairs in shard order. A
    // rejected deferred pair counts toward its shard's consecutive
    // rejections — otherwise a shard whose remaining pairs all touch a
    // boundary could defer-and-fail every sweep without ever tripping
    // the stale or give-up exits below.
    const std::uint64_t reconciled_before = result.reconciled;
    {
      SEG_TRACE_SPAN("reconcile");
      SEG_TIMED("phase.reconcile_us");
      for (ShardState& st : shards) {
        std::unordered_set<std::uint64_t> seen;  // same pair drawn twice
        for (const auto& [a, b] : st.queue) {
          SEG_ASSERT(model.shard_boundary(a) || model.shard_boundary(b),
                     "interior pair (" << a << ", " << b
                                       << ") reached the conflict queue");
          const std::uint64_t key =
              (static_cast<std::uint64_t>(a) << 32) | b;
          if (!seen.insert(key).second) continue;  // duplicate this sweep
          // Re-validate the full serial proposal rule against the current
          // global state: an earlier reconciled (or same-shard interior)
          // swap may have flipped an endpoint's type or made it happy —
          // and the serial dynamics never relocates a happy agent.
          if (model.spin(a) != model.spin(b) && model.in_unhappy_set(a) &&
              model.in_unhappy_set(b) && swap_improves(model, a, b)) {
            ++result.swaps;
            ++result.reconciled;
            ++sweep_progress;
            st.consecutive_rejects = 0;
          } else {
            ++st.consecutive_rejects;
          }
        }
        st.queue.clear();
      }
      SEG_COUNT("dynamics.swaps", result.reconciled - reconciled_before);
      SEG_COUNT("dynamics.reconciled",
                result.reconciled - reconciled_before);
    }
    ++result.sweeps;

    if (result.terminated) break;  // 1-shard certified mid-loop
    if (sweep_progress > 0) continue;  // real progress: keep sweeping
    if (all_absorbed) {
      // No shard can propose an opposite-type unhappy pair and nothing
      // reconciled: the sharded dynamics has no reachable move left.
      // `terminated` is a *certificate* of global absorption, though, so
      // distinguish it from the cross-shard-only regime (each shard
      // one-class-empty but opposite-type pairs spanning shards remain).
      if (!improving_swap_exists(model)) {
        result.terminated = true;
      } else {
        result.gave_up = true;
      }
      break;
    }
    // Stale / give-up exits, evaluated after phase B so reconciliation
    // failures count. An absorbed shard cannot act at all, so it must
    // not hold back the exits of the shards that still can.
    bool all_stale = true;
    bool all_exhausted = options.max_consecutive_rejects > 0;
    for (const ShardState& st : shards) {
      all_stale &= st.absorbed ||
                   st.consecutive_rejects >= options.stale_check_after;
      all_exhausted &=
          st.absorbed ||
          st.consecutive_rejects >= options.max_consecutive_rejects;
    }
    if (all_stale && !improving_swap_exists(model)) {
      // Exact global certificate (all shard slices scanned, tentative
      // swaps reverted): genuinely absorbed.
      result.terminated = true;
      break;
    }
    // Improving swaps may exist but be cross-shard (unreachable for
    // this dynamics); the give-up cap bounds that regime.
    if (all_exhausted) {
      result.gave_up = true;
      break;
    }
  }

  return result;
}

RunResult to_run_result(const ParallelRunResult& parallel) {
  RunResult run;
  run.flips = parallel.flips;
  run.final_time = parallel.final_time;
  run.terminated = parallel.terminated;
  run.rounds = parallel.sweeps;
  return run;
}

}  // namespace seg
