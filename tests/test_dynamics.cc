#include "core/dynamics.h"

#include <vector>

#include <gtest/gtest.h>

namespace seg {
namespace {

SchellingModel make_random_model(int n, int w, double tau,
                                 std::uint64_t seed) {
  ModelParams p{.n = n, .w = w, .tau = tau, .p = 0.5};
  Rng rng(seed);
  return SchellingModel(p, rng);
}

TEST(Glauber, ReachesAbsorbingState) {
  auto m = make_random_model(24, 2, 0.45, 1);
  Rng rng(2);
  const RunResult r = run_glauber(m, rng);
  EXPECT_TRUE(r.terminated);
  EXPECT_TRUE(m.terminated());
  EXPECT_TRUE(m.flippable_set().empty());
}

TEST(Glauber, AllHappyAtTerminationForLowTau) {
  // For tau < 1/2, unhappy == flippable, so termination means all happy.
  auto m = make_random_model(24, 2, 0.4, 3);
  Rng rng(4);
  run_glauber(m, rng);
  EXPECT_EQ(m.count_unhappy(), 0u);
  EXPECT_DOUBLE_EQ(m.happy_fraction(), 1.0);
}

TEST(Glauber, HighTauMayLeaveUnhappyButUnflippableAgents) {
  auto m = make_random_model(24, 2, 0.6, 5);
  Rng rng(6);
  const RunResult r = run_glauber(m, rng);
  EXPECT_TRUE(r.terminated);
  for (const std::uint32_t id : m.unhappy_set().items()) {
    EXPECT_FALSE(m.flip_makes_happy(id));
  }
}

TEST(Glauber, DeterministicForSeed) {
  auto m1 = make_random_model(20, 2, 0.45, 7);
  auto m2 = make_random_model(20, 2, 0.45, 7);
  Rng r1(8), r2(8);
  const RunResult a = run_glauber(m1, r1);
  const RunResult b = run_glauber(m2, r2);
  EXPECT_EQ(a.flips, b.flips);
  EXPECT_DOUBLE_EQ(a.final_time, b.final_time);
  EXPECT_EQ(m1.spins(), m2.spins());
}

TEST(Glauber, TimeAdvancesMonotonically) {
  auto m = make_random_model(20, 2, 0.45, 9);
  Rng rng(10);
  std::vector<double> times;
  RunOptions opt;
  opt.snapshot_every = 1;
  opt.on_snapshot = [&](const SchellingModel&, std::uint64_t, double t) {
    times.push_back(t);
  };
  run_glauber(m, rng, opt);
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_GE(times[i], times[i - 1]);
  }
}

TEST(Glauber, MaxFlipsHonored) {
  auto m = make_random_model(32, 3, 0.45, 11);
  Rng rng(12);
  RunOptions opt;
  opt.max_flips = 5;
  const RunResult r = run_glauber(m, rng, opt);
  EXPECT_LE(r.flips, 5u);
}

TEST(Glauber, MaxTimeHonored) {
  auto m = make_random_model(32, 3, 0.45, 13);
  Rng rng(14);
  RunOptions opt;
  opt.max_time = 1e-9;  // essentially no time to do anything
  const RunResult r = run_glauber(m, rng, opt);
  EXPECT_FALSE(r.terminated);
  EXPECT_DOUBLE_EQ(r.final_time, 1e-9);
}

TEST(Glauber, LyapunovNeverDecreasesAcrossRun) {
  auto m = make_random_model(20, 2, 0.42, 15);
  std::int64_t prev = m.lyapunov();
  Rng rng(16);
  RunOptions opt;
  opt.snapshot_every = 10;
  bool monotone = true;
  opt.on_snapshot = [&](const SchellingModel& model, std::uint64_t, double) {
    const std::int64_t cur = model.lyapunov();
    if (cur < prev) monotone = false;
    prev = cur;
  };
  run_glauber(m, rng, opt);
  EXPECT_TRUE(monotone);
}

TEST(Glauber, AlreadyTerminatedRunsZeroFlips) {
  ModelParams p{.n = 10, .w = 1, .tau = 0.4, .p = 0.5};
  SchellingModel m(p, std::vector<std::int8_t>(100, 1));
  Rng rng(17);
  const RunResult r = run_glauber(m, rng);
  EXPECT_TRUE(r.terminated);
  EXPECT_EQ(r.flips, 0u);
  EXPECT_DOUBLE_EQ(r.final_time, 0.0);
}

TEST(Glauber, SnapshotCallbackSeesFinalState) {
  auto m = make_random_model(16, 2, 0.45, 19);
  Rng rng(20);
  std::uint64_t last_flips = 0;
  RunOptions opt;
  opt.on_snapshot = [&](const SchellingModel&, std::uint64_t f, double) {
    last_flips = f;
  };
  const RunResult r = run_glauber(m, rng, opt);
  EXPECT_EQ(last_flips, r.flips);  // final snapshot always fires
}

TEST(Discrete, ReachesSameClassOfAbsorbingStates) {
  auto m = make_random_model(24, 2, 0.45, 21);
  Rng rng(22);
  const RunResult r = run_discrete(m, rng);
  EXPECT_TRUE(r.terminated);
  EXPECT_EQ(m.count_unhappy(), 0u);
}

TEST(Discrete, StepCounterCountsProposals) {
  auto m = make_random_model(16, 2, 0.6, 23);
  Rng rng(24);
  const RunResult r = run_discrete(m, rng);
  // final_time counts proposals, flips counts accepted ones.
  EXPECT_GE(r.final_time, static_cast<double>(r.flips));
}

TEST(Discrete, DeterministicForSeed) {
  auto m1 = make_random_model(16, 2, 0.45, 25);
  auto m2 = make_random_model(16, 2, 0.45, 25);
  Rng r1(26), r2(26);
  run_discrete(m1, r1);
  run_discrete(m2, r2);
  EXPECT_EQ(m1.spins(), m2.spins());
}

TEST(Synchronous, TerminatesOrDetectsCycle) {
  auto m = make_random_model(20, 2, 0.45, 27);
  const RunResult r = run_synchronous(m, 10000);
  EXPECT_TRUE(r.terminated || r.cycle_detected);
}

TEST(Synchronous, RoundCapHonored) {
  auto m = make_random_model(20, 2, 0.45, 29);
  const RunResult r = run_synchronous(m, 2);
  EXPECT_LE(r.rounds, 2u);
}

TEST(Synchronous, UniformStartDoesNothing) {
  ModelParams p{.n = 12, .w = 2, .tau = 0.45, .p = 0.5};
  SchellingModel m(p, std::vector<std::int8_t>(144, -1));
  const RunResult r = run_synchronous(m, 100);
  EXPECT_TRUE(r.terminated);
  EXPECT_EQ(r.flips, 0u);
}

TEST(Dynamics, GlauberAndDiscreteAgreeOnHappinessStatistics) {
  // Both chains share absorbing states; on the same initial condition the
  // final happy fraction must be 1 for tau < 1/2 under either engine.
  ModelParams p{.n = 24, .w = 2, .tau = 0.42, .p = 0.5};
  Rng init(31);
  const auto spins = random_spins(p.n, p.p, init);
  SchellingModel mg(p, spins);
  SchellingModel md(p, spins);
  Rng rg(32), rd(33);
  run_glauber(mg, rg);
  run_discrete(md, rd);
  EXPECT_DOUBLE_EQ(mg.happy_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(md.happy_fraction(), 1.0);
}

}  // namespace
}  // namespace seg
