#include "analysis/clusters.h"

#include <algorithm>
#include <cassert>

#include "core/model.h"
#include "grid/point.h"
#include "grid/union_find.h"

namespace seg {

ClusterLabels label_clusters(const std::vector<std::int8_t>& spins, int n) {
  assert(spins.size() == static_cast<std::size_t>(n) * n);
  UnionFind uf(spins.size());
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      const std::size_t i = static_cast<std::size_t>(y) * n + x;
      const std::size_t right =
          static_cast<std::size_t>(y) * n + torus_wrap(x + 1, n);
      const std::size_t down =
          static_cast<std::size_t>(torus_wrap(y + 1, n)) * n + x;
      if (spins[i] == spins[right]) uf.unite(i, right);
      if (spins[i] == spins[down]) uf.unite(i, down);
    }
  }
  ClusterLabels out;
  out.label.assign(spins.size(), -1);
  std::vector<std::int32_t> root_label(spins.size(), -1);
  for (std::size_t i = 0; i < spins.size(); ++i) {
    const std::size_t root = uf.find(i);
    if (root_label[root] < 0) {
      root_label[root] = static_cast<std::int32_t>(out.size.size());
      out.size.push_back(0);
    }
    out.label[i] = root_label[root];
    ++out.size[root_label[root]];
  }
  return out;
}

ClusterStats cluster_stats(const std::vector<std::int8_t>& spins, int n) {
  const ClusterLabels labels = label_clusters(spins, n);
  ClusterStats stats;
  stats.cluster_count = labels.size.size();
  for (const std::int64_t s : labels.size) {
    stats.largest_cluster = std::max(stats.largest_cluster, s);
  }
  stats.mean_cluster_size =
      static_cast<double>(spins.size()) /
      static_cast<double>(std::max<std::size_t>(1, stats.cluster_count));
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      const std::size_t i = static_cast<std::size_t>(y) * n + x;
      const std::size_t right =
          static_cast<std::size_t>(y) * n + torus_wrap(x + 1, n);
      const std::size_t down =
          static_cast<std::size_t>(torus_wrap(y + 1, n)) * n + x;
      stats.interface_length += spins[i] != spins[right];
      stats.interface_length += spins[i] != spins[down];
    }
  }
  return stats;
}

ClusterStats cluster_stats(const SchellingModel& model) {
  return cluster_stats(model.spins(), model.side());
}

bool completely_segregated(const std::vector<std::int8_t>& spins) {
  if (spins.empty()) return true;
  const std::int8_t first = spins.front();
  return std::all_of(spins.begin(), spins.end(),
                     [first](std::int8_t s) { return s == first; });
}

double majority_fraction(const std::vector<std::int8_t>& spins) {
  if (spins.empty()) return 1.0;
  std::size_t plus = 0;
  for (const std::int8_t s : spins) plus += s > 0;
  const double frac =
      static_cast<double>(plus) / static_cast<double>(spins.size());
  return std::max(frac, 1.0 - frac);
}

}  // namespace seg
