// Renormalization of the grid into blocks, and the good/bad block
// classification of the paper's Sec. IV-B.
//
// A block is *good* when every possible intersection I of a (placed
// anywhere) w-block with the block satisfies W_I - N_I/2 < N^{1/2+eps},
// where W_I counts the (-1) agents in I, N_I = |I| and N is the dynamics
// neighborhood size (Lemma 11). Good blocks occur with probability
// approaching 1, putting the renormalized lattice in the supercritical
// site-percolation regime that Lemmas 13-14 exploit.
#pragma once

#include <cstdint>
#include <vector>

namespace seg {

struct BlockParams {
  int block_side = 8;    // side (in sites) of the renormalized blocks
  int w_block_side = 4;  // side of the sliding w-block window
  int dynamics_N = 25;   // neighborhood size N of the underlying dynamics
  double eps = 0.25;     // concentration exponent, in (0, 1/2)
  // The paper's test is one-sided in the (-1) count (a surplus of (-1)
  // blocks a (+1) chemical firewall); set two_sided to also reject a
  // surplus of (+1), giving a type-symmetric classification.
  bool two_sided = false;
};

class BlockGrid {
 public:
  // spins: n x n (+1/-1) sites, row-major. Requires n divisible by
  // block_side (the torus renormalizes evenly).
  BlockGrid(const std::vector<std::int8_t>& spins, int n,
            const BlockParams& params);

  const BlockParams& params() const { return params_; }
  int blocks_per_side() const { return blocks_per_side_; }
  std::size_t block_count() const { return good_.size(); }

  bool good(int bx, int by) const;
  bool good_at(std::size_t block_index) const { return good_[block_index]; }

  std::size_t good_count() const { return good_count_; }
  std::size_t bad_count() const { return good_.size() - good_count_; }
  double bad_fraction() const;

  // The deviation threshold N^{1/2+eps} used by the classifier.
  double deviation_threshold() const;

 private:
  BlockParams params_;
  int n_ = 0;
  int blocks_per_side_ = 0;
  std::vector<std::uint8_t> good_;
  std::size_t good_count_ = 0;
};

}  // namespace seg
