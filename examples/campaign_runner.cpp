// campaign_runner: run a scenario campaign from the command line.
//
//   ./campaign_runner --scenario phase_diagram --seed 37 --threads 8
//   ./campaign_runner --spec my_sweep.scenario --out sweep.csv
//   ./campaign_runner --list
//
// Scenarios come from two places: the built-in campaigns (shared with the
// bench drivers, see src/campaign/builtin.h) selected with --scenario, or
// a declarative key=value spec file (format documented in the README)
// loaded with --spec and run with the built-in Schelling replica.
//
// Determinism: for a fixed --seed the aggregated output (CSV included) is
// bitwise identical at any --threads, and identical across an interrupted
// run resumed with --checkpoint/--resume.
//
// Flags:
//   --scenario NAME    built-in campaign (see --list)
//   --spec FILE        scenario spec file (overrides --scenario)
//   --seed S           campaign seed (default 37)
//   --threads T        worker threads (default 1, 0 = hardware)
//   --replicas R       override replica count
//   --n N  --w W       override built-in grid side / horizon (where used)
//   --shards K         lattice shards per Glauber replica (sharded sweep
//                      engine; K=1 keeps the serial engine, trajectories
//                      are deterministic per K — see README "Scaling runs").
//                      Non-torus points shard by greedy-BFS graph partition
//   --topology LIST    override the topology axis (comma-separated:
//                      torus | lollipop | random_regular | small_world |
//                      edge_list; see README "Graph topologies")
//   --graph-nodes N    random_regular node count (0 = n*n)
//   --graph-degree D   random_regular degree
//   --graph-clique M   lollipop clique size
//   --graph-path L     lollipop path length
//   --graph-beta B     small_world rewiring probability
//   --graph-seed S     graph builder seed
//   --graph-file F     edge_list file ("u v" per line; spec campaigns)
//   --out FILE         aggregated CSV (default <name>.csv)
//   --manifest FILE    run manifest (default <name>.manifest)
//   --checkpoint FILE  checkpoint path (enables periodic checkpointing)
//   --checkpoint-every K   replicas between checkpoint writes (default 64)
//   --resume           load the checkpoint before running
//   --max-new-replicas K   stop scheduling after K new replicas (budget /
//                      smoke tests; --stop-after is an alias). Points left
//                      unresolved stay open and resumable — never stopped.
//   --quiet            skip the console table
//   --list             list built-in scenarios and registry metrics
//
// Adaptive campaigns (README "Adaptive campaigns"; the spec keys
// stop_rule / stop_delta / stop_alpha / min_replicas / max_replicas /
// stop_metric / stop_range / stop_threshold can also live in the spec
// file — the flags override them):
//   --stop-rule R      none | hoeffding | bernstein | pass_rate
//   --stop-delta D     target confidence-sequence half-width
//   --stop-alpha A     anytime miscoverage budget (default 0.05)
//   --min-replicas K   replica floor before a rule may fire
//   --max-replicas K   per-point replica cap (0 = the replicas value)
//   --stop-metric M    watched metric (default: first campaign metric)
//
// Telemetry (see README "Telemetry & tracing"; any of these flags turns
// the runtime telemetry registry on, and the manifest then records a
// [telemetry] summary section):
//   --telemetry        enable counters/gauges without other output
//   --trace FILE       write a Chrome trace / Perfetto JSON of the run
//   --progress         live one-line status on stderr (in-place on a TTY)
//   --progress-file F  append machine-readable progress records (JSONL)
//   --progress-every S progress sampling period in seconds (default 1.0)
//
// Observability endpoint (README "Observability endpoint"):
//   --metrics-port N   serve GET /metrics (Prometheus text format),
//                      /healthz and /progress on 127.0.0.1:N for the
//                      run's duration; 0 binds an ephemeral port, printed
//                      to stderr and recorded in the manifest
//   --metrics-debug    also serve GET /debug/flight (flight-recorder dump)
//   --report FILE      end-of-run structured report; ".md" renders
//                      markdown, everything else report.json
//   --flight-dump FILE enable the flight recorder and install the crash
//                      handler: on SIGSEGV/SIGABRT the last events are
//                      dumped to FILE before the process dies
//
// None of the telemetry paths touch any RNG stream: trajectories and all
// outputs are bitwise identical with and without these flags — including
// with a live scraper hitting the endpoint (the handlers read registry
// snapshots only).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "campaign/builtin.h"
#include "campaign/metrics.h"
#include "campaign/sinks.h"
#include "obs/endpoint.h"
#include "obs/flight_recorder.h"
#include "obs/progress.h"
#include "obs/report.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "util/args.h"

namespace {

// Comma-separated --topology list; false (with a message) on unknown
// family names.
bool parse_topology_list(const std::string& value,
                         std::vector<seg::TopologyFamily>* out) {
  out->clear();
  std::string item;
  std::istringstream in(value);
  while (std::getline(in, item, ',')) {
    if (item.empty()) continue;
    seg::TopologyFamily f;
    if (!seg::parse_topology(item, &f)) {
      std::fprintf(stderr,
                   "--topology: unknown family '%s' (torus | lollipop | "
                   "random_regular | small_world | edge_list)\n",
                   item.c_str());
      return false;
    }
    out->push_back(f);
  }
  if (out->empty()) {
    std::fprintf(stderr, "--topology needs at least one family\n");
    return false;
  }
  return true;
}

// Non-negative CLI integer; exits with a usage error on negative values
// (a bare size_t cast would wrap -1 to ~2^64).
bool get_size(const seg::ArgParser& args, const std::string& key,
              std::size_t def, std::size_t* out) {
  const std::int64_t v = args.get_int(key, static_cast<std::int64_t>(def));
  if (v < 0) {
    std::fprintf(stderr, "--%s must be >= 0 (got %lld)\n", key.c_str(),
                 static_cast<long long>(v));
    return false;
  }
  *out = static_cast<std::size_t>(v);
  return true;
}

int list_scenarios() {
  std::printf("built-in scenarios:\n");
  for (const std::string& name : seg::builtin_campaign_names()) {
    std::printf("  %s\n", name.c_str());
  }
  std::printf("\nregistry metrics (for spec files):\n");
  for (const std::string& name : seg::known_metrics()) {
    std::printf("  %s\n", name.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const seg::ArgParser args(argc, argv);
  if (args.get_bool("list", false)) return list_scenarios();

  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 37));
  const std::string spec_path = args.get_string("spec", "");
  const std::string scenario = args.get_string("scenario", "phase_diagram");

  std::size_t threads = 1, replicas_override = 0, max_new_replicas = 0,
              stop_after_alias = 0, checkpoint_every = 64, n_override = 0,
              w_override = 0, shards_override = 0, min_replicas_override = 0,
              max_replicas_override = 0;
  if (!get_size(args, "threads", 1, &threads) ||
      !get_size(args, "replicas", 0, &replicas_override) ||
      !get_size(args, "max-new-replicas", 0, &max_new_replicas) ||
      !get_size(args, "stop-after", 0, &stop_after_alias) ||
      !get_size(args, "checkpoint-every", 64, &checkpoint_every) ||
      !get_size(args, "n", 0, &n_override) ||
      !get_size(args, "w", 0, &w_override) ||
      !get_size(args, "shards", 0, &shards_override) ||
      !get_size(args, "min-replicas", 0, &min_replicas_override) ||
      !get_size(args, "max-replicas", 0, &max_replicas_override)) {
    return 1;
  }
  if (max_new_replicas == 0) max_new_replicas = stop_after_alias;

  std::size_t graph_nodes = 0, graph_degree = 0, graph_clique = 0,
              graph_path = 0, graph_seed = 0;
  if (!get_size(args, "graph-nodes", 0, &graph_nodes) ||
      !get_size(args, "graph-degree", 0, &graph_degree) ||
      !get_size(args, "graph-clique", 0, &graph_clique) ||
      !get_size(args, "graph-path", 0, &graph_path) ||
      !get_size(args, "graph-seed", 0, &graph_seed)) {
    return 1;
  }
  const double graph_beta = args.get_double("graph-beta", -1.0);
  const std::string graph_file = args.get_string("graph-file", "");
  std::vector<seg::TopologyFamily> topology_override;
  if (args.has("topology") &&
      !parse_topology_list(args.get_string("topology", ""),
                           &topology_override)) {
    return 1;
  }

  seg::BuiltinCampaign campaign;
  if (!spec_path.empty()) {
    std::ifstream in(spec_path);
    if (!in) {
      std::fprintf(stderr, "cannot read spec file %s\n", spec_path.c_str());
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string error;
    if (!seg::ScenarioSpec::parse(text.str(), &campaign.spec, &error)) {
      std::fprintf(stderr, "bad spec %s: %s\n", spec_path.c_str(),
                   error.c_str());
      return 1;
    }
    if (replicas_override > 0) campaign.spec.replicas = replicas_override;
    if (shards_override > 0) campaign.spec.shards = shards_override;
    // Topology overrides land before the replica fn captures the spec.
    if (!topology_override.empty()) campaign.spec.topology = topology_override;
    if (graph_nodes > 0) campaign.spec.graph_nodes = graph_nodes;
    if (graph_degree > 0) {
      campaign.spec.graph_degree = static_cast<int>(graph_degree);
    }
    if (graph_clique > 0) {
      campaign.spec.graph_clique = static_cast<int>(graph_clique);
    }
    if (graph_path > 0) campaign.spec.graph_path = static_cast<int>(graph_path);
    if (graph_beta >= 0.0) campaign.spec.graph_beta = graph_beta;
    if (graph_seed > 0) campaign.spec.graph_seed = graph_seed;
    if (!graph_file.empty()) campaign.spec.graph_file = graph_file;
    std::string override_error;
    if (!campaign.spec.valid(&override_error)) {
      std::fprintf(stderr, "bad spec after overrides: %s\n",
                   override_error.c_str());
      return 1;
    }
    campaign.points = seg::expand_grid(campaign.spec);
    campaign.metric_names = seg::expand_metric_names(campaign.spec.metrics);
    campaign.replica = seg::make_schelling_replica(campaign.spec);
  } else {
    const seg::BuiltinOverrides overrides{
        .n = static_cast<int>(n_override),
        .w = static_cast<int>(w_override),
        .replicas = replicas_override,
        .shards = shards_override,
        .topology = topology_override,
        .graph_nodes = graph_nodes,
        .graph_degree = static_cast<int>(graph_degree),
        .graph_clique = static_cast<int>(graph_clique),
        .graph_path = static_cast<int>(graph_path),
        .graph_beta = graph_beta,
        .graph_seed = graph_seed};
    if (!seg::make_builtin_campaign(scenario, overrides, &campaign)) {
      std::fprintf(stderr, "unknown scenario '%s' (try --list)\n",
                   scenario.c_str());
      return 1;
    }
  }

  // Stopping-rule overrides apply after the campaign is built: they only
  // steer the engine's replica scheduling, never the replica function.
  const std::string stop_rule = args.get_string("stop-rule", "");
  if (!stop_rule.empty() &&
      !seg::parse_stop_rule(stop_rule, &campaign.spec.stop.rule)) {
    std::fprintf(stderr, "unknown --stop-rule '%s' (none | hoeffding | "
                         "bernstein | pass_rate)\n", stop_rule.c_str());
    return 1;
  }
  campaign.spec.stop.delta =
      args.get_double("stop-delta", campaign.spec.stop.delta);
  campaign.spec.stop.alpha =
      args.get_double("stop-alpha", campaign.spec.stop.alpha);
  if (min_replicas_override > 0) {
    campaign.spec.stop.min_replicas = min_replicas_override;
  }
  if (max_replicas_override > 0) {
    campaign.spec.stop.max_replicas = max_replicas_override;
  }
  const std::string stop_metric = args.get_string("stop-metric", "");
  if (!stop_metric.empty()) campaign.spec.stop.metric = stop_metric;
  const bool adaptive = campaign.spec.stop.rule != seg::StopRule::kNone;
  if (adaptive) {
    // Validate against the campaign's actual metric columns — built-in
    // campaigns with custom replicas may not use spec.metrics.
    const seg::StopConfig& stop = campaign.spec.stop;
    if (!stop.metric.empty() &&
        seg::metric_index(campaign.metric_names, stop.metric) >=
            campaign.metric_names.size()) {
      std::fprintf(stderr, "--stop-metric '%s' is not a campaign metric\n",
                   stop.metric.c_str());
      return 1;
    }
    if (!(stop.delta > 0.0) || !(stop.alpha > 0.0 && stop.alpha < 1.0) ||
        stop.min_replicas == 0 ||
        campaign.spec.layout_replicas() < stop.min_replicas) {
      std::fprintf(stderr, "bad stopping config: need stop_delta > 0, "
                           "stop_alpha in (0,1), and min_replicas <= the "
                           "replica cap\n");
      return 1;
    }
  }

  seg::CampaignOptions options;
  options.threads = threads;
  options.checkpoint_path = args.get_string("checkpoint", "");
  options.checkpoint_every = checkpoint_every;
  options.resume = args.get_bool("resume", false);
  options.max_new_replicas = max_new_replicas;

  const std::string trace_path = args.get_string("trace", "");
  const bool progress_line = args.get_bool("progress", false);
  const std::string progress_file = args.get_string("progress-file", "");
  const double progress_every = args.get_double("progress-every", 1.0);
  const std::int64_t metrics_port_arg = args.get_int("metrics-port", -1);
  const bool metrics_debug = args.get_bool("metrics-debug", false);
  const std::string report_path = args.get_string("report", "");
  const std::string flight_dump = args.get_string("flight-dump", "");
  // All numeric flags are read by now; a malformed value ("--seed 10x",
  // an overflowing count) is a hard usage error, not a silent fallback
  // to the default.
  if (!args.errors().empty()) {
    for (const std::string& e : args.errors()) {
      std::fprintf(stderr, "%s\n", e.c_str());
    }
    return 1;
  }
  if (metrics_port_arg > 65535) {
    std::fprintf(stderr, "--metrics-port must be in [0, 65535]\n");
    return 1;
  }
  const bool metrics_endpoint = metrics_port_arg >= 0;
  const bool telemetry = args.get_bool("telemetry", false) ||
                         !trace_path.empty() || progress_line ||
                         !progress_file.empty() || metrics_endpoint ||
                         !report_path.empty();
  if (telemetry) seg::obs::set_enabled(true);
  if (!flight_dump.empty() || metrics_debug) {
    seg::obs::flight::set_enabled(true);
    if (!flight_dump.empty()) {
      seg::obs::flight::install_crash_handler(flight_dump);
    }
  }

  const std::size_t total =
      campaign.points.size() * campaign.spec.layout_replicas();
  if (adaptive) {
    std::printf("campaign '%s': %zu points x <= %zu replicas (rule %s, "
                "delta %g, alpha %g, min %zu), seed %llu, %zu thread(s), "
                "%zu shard(s)/replica\n",
                campaign.spec.name.c_str(), campaign.points.size(),
                campaign.spec.layout_replicas(),
                seg::stop_rule_name(campaign.spec.stop.rule),
                campaign.spec.stop.delta, campaign.spec.stop.alpha,
                campaign.spec.stop.min_replicas,
                static_cast<unsigned long long>(seed),
                options.threads == 0 ? 0 : options.threads,
                campaign.spec.shards);
  } else {
    std::printf("campaign '%s': %zu points x %zu replicas = %zu runs, "
                "seed %llu, %zu thread(s), %zu shard(s)/replica\n",
                campaign.spec.name.c_str(), campaign.points.size(),
                campaign.spec.replicas, total,
                static_cast<unsigned long long>(seed),
                options.threads == 0 ? 0 : options.threads,
                campaign.spec.shards);
  }

  seg::obs::TraceSession trace_session;
  if (!trace_path.empty()) trace_session.start();

  std::unique_ptr<seg::obs::ProgressReporter> progress;
  // The endpoint serves /progress from the reporter's latest record, so
  // a live endpoint keeps a (silent) reporter ticking even when neither
  // progress flag asked for one.
  if (progress_line || !progress_file.empty() || metrics_endpoint) {
    seg::obs::ProgressOptions popt;
    popt.interval_s = progress_every;
    popt.jsonl_path = progress_file;
    popt.stderr_line = progress_line;
    popt.adaptive = adaptive;
    progress = std::make_unique<seg::obs::ProgressReporter>(total, popt);
    options.progress = progress->callback();
  }

  seg::obs::MetricsServer metrics_server([&] {
    seg::obs::MetricsServerOptions mopt;
    if (progress) {
      seg::obs::ProgressReporter* reporter = progress.get();
      mopt.progress_json = [reporter] { return reporter->latest_record(); };
    }
    mopt.debug_routes = metrics_debug;
    return mopt;
  }());
  if (metrics_endpoint) {
    std::string error;
    if (!metrics_server.start(static_cast<std::uint16_t>(metrics_port_arg),
                              &error)) {
      std::fprintf(stderr, "cannot start metrics endpoint: %s\n",
                   error.c_str());
      return 1;
    }
    std::fprintf(stderr, "metrics endpoint on http://127.0.0.1:%u/metrics\n",
                 static_cast<unsigned>(metrics_server.port()));
  }

  const auto wall_start = std::chrono::steady_clock::now();
  const seg::CampaignResult result = seg::run_campaign(
      campaign.spec, campaign.points, campaign.metric_names,
      campaign.replica, seed, options);
  const double wall_time_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  // run_campaign has joined its worker pool, so every instrumented region
  // is quiescent before the session stops and the reporter finalizes.
  if (progress) progress->finish();
  if (trace_session.active()) {
    trace_session.stop();
    if (!trace_session.write_json(trace_path)) {
      std::fprintf(stderr, "warning: failed to write trace %s\n",
                   trace_path.c_str());
    } else {
      std::printf("trace -> %s (%zu events)\n", trace_path.c_str(),
                  trace_session.event_count());
    }
  }

  if (!args.get_bool("quiet", false)) {
    seg::ConsoleSink console;
    console.write(campaign.spec, result);
  }

  const std::string out =
      args.get_string("out", campaign.spec.name + ".csv");
  const std::string manifest_path =
      args.get_string("manifest", campaign.spec.name + ".manifest");
  seg::CsvSink csv(out);
  seg::ManifestSink manifest(manifest_path);
  manifest.set_info("threads", std::to_string(options.threads));
  manifest.set_info("shards", std::to_string(campaign.spec.shards));
  manifest.set_info("csv", out);
  if (!spec_path.empty()) manifest.set_info("spec_file", spec_path);
  if (!trace_path.empty()) manifest.set_info("trace", trace_path);
  if (metrics_endpoint) {
    manifest.set_info("metrics_port", std::to_string(metrics_server.port()));
  }
  if (!report_path.empty()) manifest.set_info("report", report_path);
  if (telemetry) {
    manifest.set_telemetry(seg::obs::Registry::instance().summary());
  }
  if (!seg::write_all(campaign.spec, result, {&csv, &manifest})) {
    std::fprintf(stderr, "failed to write %s or %s\n", out.c_str(),
                 manifest_path.c_str());
    return 1;
  }
  std::printf("aggregates -> %s, manifest -> %s\n", out.c_str(),
              manifest_path.c_str());
  if (!report_path.empty()) {
    const seg::obs::RunReport report =
        seg::obs::build_report(result, wall_time_s);
    if (!seg::obs::write_report(report, report_path)) {
      std::fprintf(stderr, "failed to write report %s\n",
                   report_path.c_str());
      return 1;
    }
    std::printf("report -> %s\n", report_path.c_str());
  }
  if (adaptive) {
    std::size_t stopped = 0, capped = 0, open = 0, used = 0;
    for (const seg::PointResult& pr : result.points) {
      used += pr.replicas_used;
      if (pr.state == seg::PointState::kStopped) ++stopped;
      else if (pr.state == seg::PointState::kCapped) ++capped;
      else if (pr.state == seg::PointState::kOpen) ++open;
    }
    const double saved =
        total > 0 ? 100.0 * (1.0 - static_cast<double>(result.replicas_done) /
                                       static_cast<double>(total))
                  : 0.0;
    std::printf("adaptive: %zu stopped, %zu capped, %zu open; %zu replicas "
                "folded, %zu run (%.1f%% of the %zu-replica cap saved)\n",
                stopped, capped, open, used, result.replicas_done, saved,
                total);
  }
  if (result.checkpoint_write_failed) {
    std::fprintf(stderr, "warning: checkpoint writes to %s failed; a kill "
                         "would lose this run's progress\n",
                 options.checkpoint_path.c_str());
  }
  if (!result.complete) {
    std::printf("run incomplete (%zu/%zu replicas); resume with "
                "--checkpoint %s --resume\n",
                result.replicas_done, total,
                options.checkpoint_path.empty()
                    ? "<path>"
                    : options.checkpoint_path.c_str());
  }
  return result.complete ? 0 : 2;
}
