// Tests for the asymmetric-intolerance variant (Barmpalias et al. [26]):
// each type carries its own threshold.
#include <gtest/gtest.h>

#include "core/dynamics.h"
#include "core/model.h"

namespace seg {
namespace {

TEST(Asymmetric, DefaultIsSymmetric) {
  ModelParams p{.n = 16, .w = 2, .tau = 0.45, .p = 0.5};
  EXPECT_TRUE(p.symmetric());
  EXPECT_EQ(p.happy_threshold_of(+1), p.happy_threshold_of(-1));
  EXPECT_DOUBLE_EQ(p.tau_of(+1), p.tau_of(-1));
}

TEST(Asymmetric, DistinctThresholdsPerType) {
  ModelParams p{.n = 16, .w = 2, .tau = 0.48, .p = 0.5, .tau_minus = 0.32};
  EXPECT_FALSE(p.symmetric());
  EXPECT_EQ(p.happy_threshold_of(+1), 12);  // ceil(0.48 * 25)
  EXPECT_EQ(p.happy_threshold_of(-1), 8);   // ceil(0.32 * 25)
  EXPECT_DOUBLE_EQ(p.tau_of(-1), 0.32);
}

TEST(Asymmetric, ExplicitEqualTauMinusIsSymmetric) {
  ModelParams p{.n = 16, .w = 2, .tau = 0.4, .p = 0.5, .tau_minus = 0.4};
  EXPECT_TRUE(p.symmetric());
}

TEST(Asymmetric, HappinessUsesOwnTypeThreshold) {
  // 50/50 vertical halves: agents one column from the boundary see 15 of
  // 25 same-type (3 of 5 columns). With tau = 0.7 for +1 (K = 18) and
  // tau = 0.3 for -1 (K = 8), the mirrored (+1) and (-1) agents with the
  // same same-type count get opposite classifications.
  const int n = 16;
  ModelParams p{.n = n, .w = 2, .tau = 0.7, .p = 0.5, .tau_minus = 0.3};
  std::vector<std::int8_t> spins(static_cast<std::size_t>(n) * n);
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      spins[y * n + x] = (x < n / 2) ? 1 : -1;
    }
  }
  SchellingModel m(p, spins);
  const std::uint32_t plus_agent = m.id_of(n / 2 - 1, 8);
  EXPECT_EQ(m.same_count(plus_agent), 15);
  EXPECT_TRUE(m.is_unhappy(plus_agent));  // 15 < 18
  const std::uint32_t minus_agent = m.id_of(n / 2, 8);
  EXPECT_EQ(m.same_count(minus_agent), 15);
  EXPECT_TRUE(m.is_happy(minus_agent));  // 15 >= 8
}

TEST(Asymmetric, FlipUsesTargetTypeThreshold) {
  // A -1 agent flipping to +1 must satisfy the +1 threshold.
  const int n = 12;
  ModelParams p{.n = n, .w = 1, .tau = 0.9, .p = 0.5, .tau_minus = 0.5};
  // Single -1 in a sea of +1: it is unhappy (1 of 9 < ceil(4.5) = 5).
  std::vector<std::int8_t> spins(static_cast<std::size_t>(n) * n, 1);
  spins[5 * n + 5] = -1;
  SchellingModel m(p, spins);
  const std::uint32_t id = m.id_of(5, 5);
  ASSERT_TRUE(m.is_unhappy(id));
  // After flip it would have 9 same-type >= ceil(0.9*9) = 9 -> flippable.
  EXPECT_TRUE(m.flip_makes_happy(id));
  m.flip(id);
  EXPECT_TRUE(m.is_happy(id));
  EXPECT_TRUE(m.check_invariants());
}

TEST(Asymmetric, InvariantsHoldThroughDynamics) {
  ModelParams p{.n = 24, .w = 2, .tau = 0.45, .p = 0.5, .tau_minus = 0.38};
  Rng init(3);
  SchellingModel m(p, init);
  Rng dyn(4);
  RunOptions opt;
  opt.max_flips = 5000;  // asymmetric dynamics has no Lyapunov guarantee
  run_glauber(m, dyn, opt);
  EXPECT_TRUE(m.check_invariants());
}

TEST(Asymmetric, BarmpaliasStaticRegime) {
  // [26]: for tau_1 = tau_2 = tau > 3/4 or < 1/4 the configuration is
  // static w.h.p. Mirror with explicit tau_minus.
  for (const double tau : {0.15, 0.85}) {
    ModelParams p{.n = 32, .w = 2, .tau = tau, .p = 0.5, .tau_minus = tau};
    Rng init(static_cast<std::uint64_t>(tau * 100));
    SchellingModel m(p, init);
    Rng dyn(7);
    RunOptions opt;
    opt.max_flips = 100000;
    const RunResult r = run_glauber(m, dyn, opt);
    EXPECT_TRUE(r.terminated) << tau;
    EXPECT_LT(r.flips, 10u) << tau;
  }
}

TEST(Asymmetric, MoreTolerantMinorityFlipsMore) {
  // When -1 agents are far more intolerant than +1 agents, more -1 agents
  // are initially unhappy, so early flips skew toward -1 -> +1 and the
  // +1 share grows.
  ModelParams p{.n = 48, .w = 2, .tau = 0.30, .p = 0.5, .tau_minus = 0.49};
  Rng init(11);
  SchellingModel m(p, init);
  const double plus_before = m.plus_fraction();
  Rng dyn(12);
  RunOptions opt;
  opt.max_flips = 20000;
  run_glauber(m, dyn, opt);
  EXPECT_GT(m.plus_fraction(), plus_before);
}

TEST(Asymmetric, ValidationRejectsBadTauMinus) {
  ModelParams p{.n = 16, .w = 2, .tau = 0.4, .p = 0.5, .tau_minus = 1.5};
  EXPECT_FALSE(p.valid());
}

}  // namespace
}  // namespace seg
