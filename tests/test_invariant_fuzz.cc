// Randomized invariant fuzzing of the incremental lattice engines.
//
// Each harness drives ~10k random mutations through BinarySpinEngine (or
// its sibling incremental engines) via the five model policies —
// Schelling (dense Moore and sparse von Neumann stencils, symmetric and
// asymmetric thresholds), comfort band, vacancy relocation, multi-type,
// and Kawasaki swaps — and calls the full-recount check_invariants audit
// at random intervals. The mutations are *arbitrary* (any site, happy or
// not), which exercises every crossing direction of the membership
// tables, not just the trajectories the dynamics visit. Conserved
// quantities (magnetization under swaps, agent/vacancy totals and type
// counts under relocations) are asserted exactly.
//
// In Debug / sanitizer builds the SEG_ASSERT instrumentation inside
// flip/touch/apply_code reports the offending site, span, and set index
// at the first corrupt update instead of leaving the divergence to a
// later audit.
#include <cstdint>
#include <numeric>

#include <gtest/gtest.h>

#include "core/comfort.h"
#include "core/model.h"
#include "core/parallel_dynamics.h"
#include "core/vacancy.h"
#include "lattice/sharded.h"
#include "multitype/multi_model.h"
#include "rng/rng.h"

namespace seg {
namespace {

constexpr int kSteps = 10000;

// Audits are O(n^2 N); running one every ~kSteps/25 random steps keeps
// the suite fast while still interleaving audits with every mutation mix.
bool audit_due(Rng& rng) { return rng.uniform_below(400) == 0; }

std::int64_t magnetization(const std::vector<std::int8_t>& spins) {
  return std::accumulate(spins.begin(), spins.end(), std::int64_t{0},
                         [](std::int64_t acc, std::int8_t s) {
                           return acc + s;
                         });
}

TEST(InvariantFuzz, SchellingArbitraryFlips) {
  struct Config {
    ModelParams params;
    std::uint64_t seed;
  };
  const Config configs[] = {
      {{.n = 32, .w = 2, .tau = 0.45, .p = 0.5}, 31001},
      {{.n = 24, .w = 4, .tau = 0.55, .p = 0.4}, 31002},  // super-unhappy
      {{.n = 32, .w = 3, .tau = 0.4, .p = 0.5, .tau_minus = 0.6,
        .shape = NeighborhoodShape::kVonNeumann},
       31003},  // sparse stencil + asymmetric thresholds
  };
  // Both storage backends take the full mutation mix: the byte layout and
  // the bit-packed layout maintain counts/codes/sets through different
  // kernels but must agree with the recount audit identically.
  for (const EngineStorage storage :
       {EngineStorage::kByte, EngineStorage::kPacked}) {
    for (const Config& config : configs) {
      ModelParams params = config.params;
      params.storage = storage;
      Rng rng(config.seed);
      SchellingModel model(params, rng);
      ASSERT_TRUE(model.check_invariants());
      int audits = 0;
      for (int step = 0; step < kSteps; ++step) {
        model.flip(static_cast<std::uint32_t>(
            rng.uniform_below(model.agent_count())));
        if (audit_due(rng)) {
          ++audits;
          ASSERT_TRUE(model.check_invariants())
              << "n=" << config.params.n << " step " << step;
        }
      }
      EXPECT_GT(audits, 0);
      ASSERT_TRUE(model.check_invariants());
    }
  }
}

TEST(InvariantFuzz, ShardedEngineArbitraryFlips) {
  // Arbitrary serial flips over sharded engines — boundary sites
  // included — must keep every membership in its owning shard's slice
  // (the audit cross-checks all shard slices per site).
  ModelParams params{.n = 36, .w = 2, .tau = 0.45, .p = 0.5};
  for (const bool checkers : {false, true}) {
    const ShardLayout layout =
        checkers ? ShardLayout::checkerboard(params.n, params.w, 3, 3)
                 : ShardLayout::stripes(params.n, params.w, 4);
    Rng rng(32001 + checkers);
    SchellingModel model(params, rng, layout);
    ASSERT_TRUE(model.check_invariants());
    for (int step = 0; step < kSteps; ++step) {
      model.flip(static_cast<std::uint32_t>(
          rng.uniform_below(model.agent_count())));
      if (audit_due(rng)) {
        ASSERT_TRUE(model.check_invariants()) << "step " << step;
      }
    }
    ASSERT_TRUE(model.check_invariants());
    // The per-shard sets partition the classic global classification.
    std::size_t unhappy_total = 0;
    for (int s = 0; s < model.shard_count(); ++s) {
      unhappy_total += model.unhappy_set(s).size();
    }
    EXPECT_EQ(unhappy_total, model.count_unhappy());
  }
}

TEST(InvariantFuzz, ComfortBandArbitraryFlips) {
  const ComfortParams configs[] = {
      {.n = 32, .w = 2, .tau_lo = 0.4, .tau_hi = 0.8, .p = 0.5},
      {.n = 24, .w = 3, .tau_lo = 0.3, .tau_hi = 0.6, .p = 0.45},
  };
  std::uint64_t seed = 33001;
  for (const ComfortParams& params : configs) {
    Rng rng(seed++);
    ComfortModel model(params, rng);
    ASSERT_TRUE(model.check_invariants());
    for (int step = 0; step < kSteps; ++step) {
      model.flip(static_cast<std::uint32_t>(
          rng.uniform_below(model.agent_count())));
      if (audit_due(rng)) {
        ASSERT_TRUE(model.check_invariants()) << "step " << step;
      }
    }
    ASSERT_TRUE(model.check_invariants());
  }
}

TEST(InvariantFuzz, KawasakiSwapsConserveMagnetization) {
  ModelParams params{.n = 32, .w = 2, .tau = 0.4, .p = 0.5};
  Rng rng(34001);
  SchellingModel model(params, rng);
  const std::int64_t conserved = magnetization(model.spins());
  for (int step = 0; step < kSteps / 2; ++step) {
    // Arbitrary opposite-spin pair, swapped unconditionally (two flips)
    // — harsher than the dynamics, which only swaps improving pairs.
    const auto a = static_cast<std::uint32_t>(
        rng.uniform_below(model.agent_count()));
    const auto b = static_cast<std::uint32_t>(
        rng.uniform_below(model.agent_count()));
    if (model.spin(a) == model.spin(b)) continue;
    model.flip(a);
    model.flip(b);
    if (audit_due(rng)) {
      ASSERT_TRUE(model.check_invariants()) << "step " << step;
      ASSERT_EQ(magnetization(model.spins()), conserved) << "step " << step;
    }
  }
  ASSERT_TRUE(model.check_invariants());
  EXPECT_EQ(magnetization(model.spins()), conserved);
}

TEST(InvariantFuzz, VacancyMovesConserveAllCounts) {
  VacancyParams params{.n = 32, .w = 2, .tau = 0.45, .vacancy = 0.15,
                       .p = 0.5};
  Rng rng(35001);
  VacancyModel model(params, rng);
  ASSERT_TRUE(model.check_invariants());
  const std::size_t agents = model.agent_total();
  const std::size_t vacancies = model.vacancy_total();
  std::int64_t plus = 0;
  for (const std::int8_t s : model.sites()) plus += (s == 1);
  int moves = 0;
  for (int step = 0; step < kSteps; ++step) {
    // Random occupied -> random vacant relocation, regardless of
    // happiness (the dynamics would be pickier).
    const auto from = static_cast<std::uint32_t>(
        rng.uniform_below(model.site_count()));
    if (!model.occupied(from)) continue;
    const std::uint32_t to = model.vacant_set().at(
        rng.uniform_below(model.vacant_set().size()));
    model.move(from, to);
    ++moves;
    if (audit_due(rng)) {
      ASSERT_TRUE(model.check_invariants()) << "step " << step;
      ASSERT_EQ(model.agent_total(), agents);
      ASSERT_EQ(model.vacancy_total(), vacancies);
      std::int64_t plus_now = 0;
      for (const std::int8_t s : model.sites()) plus_now += (s == 1);
      ASSERT_EQ(plus_now, plus) << "type counts drifted at step " << step;
    }
  }
  EXPECT_GT(moves, kSteps / 2);
  ASSERT_TRUE(model.check_invariants());
  EXPECT_EQ(model.agent_total(), agents);
  EXPECT_EQ(model.vacancy_total(), vacancies);
}

TEST(InvariantFuzz, MultiTypeArbitrarySwitches) {
  MultiParams params{.n = 28, .w = 2, .q = 5, .tau = 0.35};
  Rng rng(36001);
  MultiTypeModel model(params, rng);
  ASSERT_TRUE(model.check_invariants());
  const std::size_t agents = model.agent_count();
  for (int step = 0; step < kSteps; ++step) {
    const auto id = static_cast<std::uint32_t>(rng.uniform_below(agents));
    // Uniform type different from the current one.
    const auto hop = 1 + rng.uniform_below(
                             static_cast<std::uint64_t>(params.q - 1));
    const auto next = static_cast<std::uint8_t>(
        (model.type_of(id) + hop) % params.q);
    model.set_type(id, next);
    if (audit_due(rng)) {
      ASSERT_TRUE(model.check_invariants()) << "step " << step;
    }
  }
  ASSERT_TRUE(model.check_invariants());
}

TEST(InvariantFuzz, ShardedSweepsAuditCleanMidRun) {
  // The parallel engine itself under fuzz: interleave bounded sweep
  // bursts with full audits and conservation bookkeeping of the flip
  // counters (applied = interior + reconciled).
  ModelParams params{.n = 48, .w = 2, .tau = 0.45, .p = 0.5};
  Rng rng(37001);
  SchellingModel model(params, rng,
                       ShardLayout::stripes(params.n, params.w, 3));
  ParallelOptions opt;
  opt.sweep_quantum = 37;  // deliberately odd, forces frequent barriers
  std::uint64_t total_flips = 0, total_deferred = 0, total_reconciled = 0;
  for (int burst = 0; burst < 60 && !model.terminated(); ++burst) {
    opt.max_sweeps = 1 + rng.uniform_below(4);
    const ParallelRunResult run =
        run_parallel_glauber(model, 37002 + burst, opt);
    total_flips += run.flips;
    total_deferred += run.deferred;
    total_reconciled += run.reconciled;
    ASSERT_TRUE(model.check_invariants()) << "burst " << burst;
    ASSERT_LE(run.reconciled, run.deferred);
  }
  EXPECT_GT(total_flips, 0u);
  EXPECT_LE(total_reconciled, total_deferred);
}

}  // namespace
}  // namespace seg
