// The binary entropy function H (paper eq. (2)) and related helpers.
#pragma once

namespace seg {

// H(x) = -x log2(x) - (1-x) log2(1-x), with H(0) = H(1) = 0.
// Requires x in [0, 1].
double binary_entropy(double x);

// Derivative H'(x) = log2((1-x)/x), for x in (0, 1). Used by tests to
// verify the entropy implementation against finite differences.
double binary_entropy_derivative(double x);

}  // namespace seg
