// Edge-of-parameter-space behaviors: extreme intolerance, minimal grids,
// synchronous oscillators, and boundary thresholds.
#include <cmath>

#include <gtest/gtest.h>

#include "core/dynamics.h"
#include "core/model.h"
#include "theory/bounds.h"

namespace seg {
namespace {

bool completely_monochromatic(const SchellingModel& m) {
  for (std::uint32_t id = 1; id < m.agent_count(); ++id) {
    if (m.spin(id) != m.spin(0)) return false;
  }
  return true;
}

TEST(EdgeCases, TauZeroEveryoneHappyForever) {
  ModelParams p{.n = 16, .w = 2, .tau = 0.0, .p = 0.5};
  Rng rng(1);
  SchellingModel m(p, rng);
  EXPECT_EQ(m.count_unhappy(), 0u);
  EXPECT_TRUE(m.terminated());
  Rng dyn(2);
  EXPECT_EQ(run_glauber(m, dyn).flips, 0u);
}

TEST(EdgeCases, TauOneAlmostEveryoneUnhappyAndStuck) {
  // K = N: happy only inside a fully monochromatic neighborhood. A flip
  // helps only if the agent is the lone dissenter in its ball, which a
  // balanced random field essentially never provides at N = 25 — but the
  // classification itself must be consistent.
  ModelParams p{.n = 24, .w = 2, .tau = 1.0, .p = 0.5};
  Rng rng(3);
  SchellingModel m(p, rng);
  EXPECT_EQ(m.happy_threshold(), 25);
  for (const std::uint32_t id : m.flippable_set().items()) {
    EXPECT_EQ(m.same_count(id), 1);  // lone dissenter
  }
  Rng dyn(4);
  RunOptions opt;
  opt.max_flips = 100000;
  const RunResult r = run_glauber(m, dyn, opt);
  EXPECT_TRUE(r.terminated);
  EXPECT_TRUE(m.check_invariants());
}

TEST(EdgeCases, LoneDissenterFlipsAtTauOne) {
  ModelParams p{.n = 12, .w = 1, .tau = 1.0, .p = 0.5};
  std::vector<std::int8_t> spins(144, 1);
  spins[5 * 12 + 5] = -1;
  SchellingModel m(p, spins);
  const std::uint32_t id = m.id_of(5, 5);
  EXPECT_TRUE(m.is_flippable(id));
  Rng dyn(5);
  const RunResult r = run_glauber(m, dyn);
  EXPECT_TRUE(r.terminated);
  EXPECT_EQ(r.flips, 1u);
  EXPECT_EQ(m.count_unhappy(), 0u);
}

TEST(EdgeCases, NeighborhoodCoveringWholeGrid) {
  // n = 2w + 1: every agent's neighborhood is the entire torus, so every
  // agent shares the same plus count.
  ModelParams p{.n = 5, .w = 2, .tau = 0.45, .p = 0.5};
  Rng rng(6);
  SchellingModel m(p, rng);
  const std::int32_t c0 = m.plus_count(0);
  for (std::uint32_t id = 1; id < m.agent_count(); ++id) {
    EXPECT_EQ(m.plus_count(id), c0);
  }
  m.flip(0);
  EXPECT_TRUE(m.check_invariants());
  for (std::uint32_t id = 1; id < m.agent_count(); ++id) {
    EXPECT_EQ(m.plus_count(id), m.plus_count(0));
  }
}

TEST(EdgeCases, SynchronousStripeOscillatorDetected) {
  // Width-1 vertical stripes at w = 1, tau = 2/3: every agent has 3 of 9
  // same-type (unhappy, K = 6) and flipping yields 9 - 3 + 1 = 7 >= 6, so
  // the synchronous rule flips *everyone*, producing the complementary
  // stripe pattern — a period-2 oscillation the engine must detect.
  const int n = 12;
  ModelParams p{.n = n, .w = 1, .tau = 2.0 / 3.0, .p = 0.5};
  std::vector<std::int8_t> spins(static_cast<std::size_t>(n) * n);
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      spins[y * n + x] = (x % 2 == 0) ? 1 : -1;
    }
  }
  SchellingModel m(p, spins);
  EXPECT_EQ(m.flippable_set().size(), m.agent_count());
  const RunResult r = run_synchronous(m, 50);
  EXPECT_TRUE(r.cycle_detected);
  EXPECT_FALSE(r.terminated);
}

TEST(EdgeCases, AsynchronousStripesDoNotOscillate) {
  // The same oscillator under asynchronous Glauber dynamics must still
  // absorb (the Lyapunov argument needs asynchrony — this is exactly why
  // the paper's model uses Poisson clocks).
  const int n = 12;
  ModelParams p{.n = n, .w = 1, .tau = 2.0 / 3.0, .p = 0.5};
  std::vector<std::int8_t> spins(static_cast<std::size_t>(n) * n);
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      spins[y * n + x] = (x % 2 == 0) ? 1 : -1;
    }
  }
  SchellingModel m(p, spins);
  Rng dyn(7);
  const RunResult r = run_glauber(m, dyn);
  EXPECT_TRUE(r.terminated);
  EXPECT_TRUE(m.check_invariants());
}

TEST(EdgeCases, UnhappyProbabilityAtTauOne) {
  // Unhappy iff not all N-1 others share the type:
  // p_u = 1 - 2^{-(N-1)}.
  const int N = 9;
  EXPECT_NEAR(unhappy_probability_exact(1.0, N),
              1.0 - std::exp2(-(N - 1)), 1e-12);
}

TEST(EdgeCases, UnhappyProbabilityAtTauZeroIsZero) {
  EXPECT_DOUBLE_EQ(unhappy_probability_exact(0.0, 25), 0.0);
}

TEST(EdgeCases, AllMinusInitialFieldAtPZero) {
  ModelParams p{.n = 16, .w = 2, .tau = 0.45, .p = 0.0};
  Rng rng(8);
  SchellingModel m(p, rng);
  EXPECT_DOUBLE_EQ(m.plus_fraction(), 0.0);
  EXPECT_TRUE(m.terminated());
}

TEST(EdgeCases, MaxFlipsZeroDoesNothing) {
  ModelParams p{.n = 16, .w = 2, .tau = 0.45, .p = 0.5};
  Rng rng(9);
  SchellingModel m(p, rng);
  const auto before = m.spins();
  Rng dyn(10);
  RunOptions opt;
  opt.max_flips = 0;
  const RunResult r = run_glauber(m, dyn, opt);
  EXPECT_EQ(r.flips, 0u);
  EXPECT_EQ(m.spins(), before);
}

TEST(EdgeCases, HappinessThresholdBoundaryRationals) {
  // tau exactly K/N must give threshold K (the paper's tau = ceil(t~ N)/N
  // convention), not K+1 from floating-point drift.
  EXPECT_EQ(happiness_threshold(11.0 / 25.0, 25), 11);
  EXPECT_EQ(happiness_threshold(186.0 / 441.0, 441), 186);
  EXPECT_EQ(happiness_threshold(0.5, 441), 221);  // ceil(220.5)
}

TEST(EdgeCases, DiscreteDynamicsOnLoneDissenter) {
  ModelParams p{.n = 12, .w = 1, .tau = 0.4, .p = 0.5};
  std::vector<std::int8_t> spins(144, -1);
  spins[3 * 12 + 3] = 1;
  SchellingModel m(p, spins);
  Rng dyn(11);
  const RunResult r = run_discrete(m, dyn);
  EXPECT_TRUE(r.terminated);
  EXPECT_EQ(r.flips, 1u);
  EXPECT_TRUE(completely_monochromatic(m));
}

}  // namespace
}  // namespace seg
