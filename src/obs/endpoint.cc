#include "obs/endpoint.h"

#include "obs/exposition.h"
#include "obs/flight_recorder.h"
#include "util/http.h"

namespace seg::obs {

struct MetricsServer::Impl {
  MetricsServerOptions options;
  HttpServer server;
};

MetricsServer::MetricsServer(MetricsServerOptions options)
    : impl_(new Impl()) {
  impl_->options = std::move(options);
  impl_->server.handle("/metrics", [](const HttpRequest&) {
    HttpResponse resp;
    // The versioned content type Prometheus scrapers negotiate for the
    // 0.0.4 text format.
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
    resp.body = render_prometheus();
    return resp;
  });
  impl_->server.handle("/healthz", [](const HttpRequest&) {
    HttpResponse resp;
    resp.body = "ok\n";
    return resp;
  });
  Impl* impl = impl_;
  impl_->server.handle("/progress", [impl](const HttpRequest&) {
    HttpResponse resp;
    resp.content_type = "application/json";
    resp.body =
        impl->options.progress_json ? impl->options.progress_json() : "{}";
    resp.body += '\n';
    return resp;
  });
  if (impl_->options.debug_routes) {
    impl_->server.handle("/debug/flight", [](const HttpRequest&) {
      HttpResponse resp;
      resp.content_type = "application/json";
      resp.body = flight::dump_json();
      return resp;
    });
  }
}

MetricsServer::~MetricsServer() {
  stop();
  delete impl_;
}

bool MetricsServer::start(std::uint16_t port, std::string* error) {
  return impl_->server.start(port, error);
}

void MetricsServer::stop() { impl_->server.stop(); }

bool MetricsServer::running() const { return impl_->server.running(); }

std::uint16_t MetricsServer::port() const { return impl_->server.port(); }

}  // namespace seg::obs
