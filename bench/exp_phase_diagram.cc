// PHASE — the (tau, p) phase portrait the paper's concluding remarks ask
// about ("how the parameter of the initial distribution of the agents
// influences segregation"): for each (intolerance, initial density) cell
// we run the process and record the mean monochromatic region and whether
// the grid fixated on one type. Prints a console map and writes the full
// grid as CSV.
//
// A thin scenario definition over the campaign engine: the sweep itself is
// the built-in `phase_diagram` campaign (src/campaign/builtin.h), shared
// with examples/campaign_runner, so aggregates are bitwise identical at
// any --threads and across checkpoint/resume.
#include <cstdio>
#include <string>

#include "campaign/builtin.h"
#include "campaign/sinks.h"
#include "io/table.h"
#include "util/args.h"

int main(int argc, char** argv) {
  const seg::ArgParser args(argc, argv);
  const int n = static_cast<int>(args.get_int("n", 64));
  const int w = static_cast<int>(args.get_int("w", 2));
  const auto trials = static_cast<std::size_t>(args.get_int("trials", 3));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 37));
  const auto threads = static_cast<std::size_t>(args.get_int("threads", 1));
  const std::string out = args.get_string("out", "phase_diagram.csv");

  seg::BuiltinCampaign campaign;
  seg::make_builtin_campaign(
      "phase_diagram", {.n = n, .w = w, .replicas = trials}, &campaign);

  std::printf("== (tau, p) phase portrait (n=%d, w=%d, %zu trials/cell) "
              "==\n\n",
              n, w, trials);
  std::printf("cell symbol: '.' static-ish, 'o' segregated regions, "
              "'#' majority fixation (complete segregation)\n\n");

  seg::CampaignOptions options;
  options.threads = threads;
  options.checkpoint_path = args.get_string("checkpoint", "");
  options.resume = args.get_bool("resume", false);
  const seg::CampaignResult result = seg::run_campaign(
      campaign.spec, campaign.points, campaign.metric_names,
      campaign.replica, seed, options);

  // Console map: points expand with tau outermost, p innermost.
  const std::vector<double>& taus = campaign.spec.tau;
  const std::vector<double>& ps = campaign.spec.p;
  std::vector<std::string> header = {"tau \\ p"};
  for (const double p : ps) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%.2f", p);
    header.emplace_back(buf);
  }
  seg::TablePrinter map(header);
  for (std::size_t ti = 0; ti < taus.size(); ++ti) {
    map.new_row();
    char label[16];
    std::snprintf(label, sizeof(label), "%.2f", taus[ti]);
    map.add(label);
    for (std::size_t pi = 0; pi < ps.size(); ++pi) {
      const std::size_t point = ti * ps.size() + pi;
      const double em = result.stats_for(point, "mean_mono_region")->mean();
      const double fixation = result.stats_for(point, "fixation")->mean();
      const double cells = static_cast<double>(n) * n;
      const char* symbol = fixation >= 0.5        ? "#"
                           : em >= 0.02 * cells   ? "o"
                                                  : ".";
      char cell[24];
      std::snprintf(cell, sizeof(cell), "%s %6.0f", symbol, em);
      map.add(cell);
    }
  }
  map.print();
  std::printf("\nexpected: fixation ('#') occupies the high-p column well "
              "before p = 1 (Fontes et al.), while the p = 1/2 column "
              "segregates without fixating (the paper's corollary).\n");

  seg::CsvSink csv(out);
  if (csv.write(campaign.spec, result)) {
    std::printf("full grid written to %s\n", out.c_str());
  }
  return 0;
}
