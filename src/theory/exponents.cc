#include "theory/exponents.h"

#include <cassert>
#include <cmath>

#include "theory/constants.h"
#include "theory/entropy.h"

namespace seg {

double tau_prime(double tau, int N) {
  assert(N >= 2);
  return (tau * N - 2.0) / (N - 1.0);
}

double tau_hat(double tau, int N, double eps) {
  assert(N >= 1 && eps > 0.0 && eps < 0.5);
  return tau * (1.0 - 1.0 / (tau * std::pow(N, 0.5 - eps)));
}

double a_exponent(double tau, double eps_prime) {
  if (tau > 0.5) tau = 1.0 - tau;
  const double shrink = 1.0 - (2.0 * eps_prime + eps_prime * eps_prime);
  return shrink * (1.0 - binary_entropy(tau));
}

double b_exponent(double tau, double eps_prime) {
  if (tau > 0.5) tau = 1.0 - tau;
  const double grow = 1.5 * (1.0 + eps_prime) * (1.0 + eps_prime);
  return grow * (1.0 - binary_entropy(tau));
}

double a_exponent_envelope(double tau) {
  return a_exponent(tau, f_tau(tau));
}

double b_exponent_envelope(double tau) {
  return b_exponent(tau, f_tau(tau));
}

}  // namespace seg
