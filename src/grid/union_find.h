// Disjoint-set union with union-by-size and path halving. Used for
// percolation cluster labeling and same-type cluster statistics.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <vector>

namespace seg {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n)
      : parent_(n), size_(n, 1), components_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  std::size_t find(std::size_t v) {
    assert(v < parent_.size());
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];  // path halving
      v = parent_[v];
    }
    return v;
  }

  // Returns true if the two elements were in different components.
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    --components_;
    return true;
  }

  bool same(std::size_t a, std::size_t b) { return find(a) == find(b); }

  std::size_t component_size(std::size_t v) { return size_[find(v)]; }

  std::size_t components() const { return components_; }
  std::size_t element_count() const { return parent_.size(); }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
  std::size_t components_;
};

}  // namespace seg
