// Deterministic random number generation for the whole reproduction.
//
// Core generator is xoshiro256** 1.0 (Blackman & Vigna, public domain
// algorithm), seeded via SplitMix64. `Rng` wraps it with the typed draws
// the simulators need (uniform ints, Bernoulli, exponential waiting times)
// and with cheap stream derivation so each Monte-Carlo trial gets an
// independent, reproducible generator.
#pragma once

#include <cstdint>

#include "rng/splitmix64.h"

namespace seg {

class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
    // All-zero state is invalid for xoshiro; SplitMix64 cannot emit four
    // consecutive zeros, but keep a belt-and-braces guard.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface, so <random> distributions work.
  std::uint64_t operator()() { return next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

// High-level typed draws on top of Xoshiro256.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) : gen_(seed) {}

  // Derives an independent generator for stream `index` of this seed.
  static Rng stream(std::uint64_t seed, std::uint64_t index) {
    return Rng(mix_seed(seed, index));
  }

  std::uint64_t next_u64() { return gen_.next(); }

  // Uniform double in [0, 1) with 53 bits of precision.
  double uniform() {
    return static_cast<double>(gen_.next() >> 11) * 0x1.0p-53;
  }

  // Uniform integer in [0, bound) via Lemire's multiply-shift rejection.
  std::uint64_t uniform_below(std::uint64_t bound);

  // Uniform integer in the closed range [lo, hi].
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  bool bernoulli(double p) { return uniform() < p; }

  // Exponential with the given rate (mean 1/rate). rate must be > 0.
  double exponential(double rate);

  // UniformRandomBitGenerator interface.
  std::uint64_t operator()() { return gen_.next(); }
  static constexpr std::uint64_t min() { return Xoshiro256::min(); }
  static constexpr std::uint64_t max() { return Xoshiro256::max(); }

 private:
  Xoshiro256 gen_;
};

}  // namespace seg
