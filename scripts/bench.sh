#!/usr/bin/env bash
# Emits BENCH_core.json at the repo root: the core hot-path benchmarks
# (BM_Flip and BM_GlauberRun at w in {2, 4, 10} on both storage backends
# — trailing benchmark arg 0 = byte, 1 = bit-packed — plus the
# BM_GlauberSweep giant-lattice scaling curve: packed serial engine vs
# 1/2/4/8 stripe shards at n in {1024, 2048, 4096}, with byte reference
# rows, and the BM_AdaptiveCampaign fixed-vs-adaptive scheduling pair)
# in Google Benchmark's JSON format, annotated with the
# seed-implementation baselines, the sharded-vs-serial speedups, the
# packed-vs-byte storage ratios, and the adaptive-campaign replica
# savings so the perf trajectory is tracked PR over PR.
#
# The sharded speedups are wall-clock flips/sec ratios and therefore
# bounded by the host's physical parallelism: on a 1-core container every
# shard count measures pure framework overhead (expect ~1.0x), and the
# scaling headroom only shows on multi-core hardware. The JSON records
# hardware_threads next to the curve so a reader can tell which regime a
# run measured.
set -euo pipefail
cd "$(dirname "$0")/.."
repo=$(pwd)

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build -j --target perf_core >/dev/null

if [[ ! -x build/perf_core ]]; then
  echo "perf_core was not built (is Google Benchmark installed?)" >&2
  exit 1
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
(cd "$tmp" && "$repo/build/perf_core" \
    --benchmark_filter='^BM_(AdaptiveCampaign|Flip|FlipTelemetry|GlauberRun|GlauberSweep|StreamingObservables)' \
    --benchmark_min_time=0.25 \
    --benchmark_format=json >raw.json)

# Dedicated repetitions for the telemetry-overhead annotation: a 2%
# budget cannot be resolved from single runs on a shared host (run-to-run
# spread on the same loop is >10%), so the overhead is computed from the
# min over 5 repetitions of each flip variant.
(cd "$tmp" && "$repo/build/perf_core" \
    --benchmark_filter='^(BM_Flip/10/1$|BM_FlipTelemetry)' \
    --benchmark_min_time=0.1 \
    --benchmark_repetitions=5 \
    --benchmark_report_aggregates_only=false \
    --benchmark_format=json >flip_reps.json)

# Dedicated repetitions for the metrics-endpoint-overhead annotation:
# BM_GlauberRunScraped/{0,1} is the same full-run workload with live
# telemetry, without/with a ~10ms-cadence /metrics scraper thread. Same
# min-over-repetitions treatment as the telemetry overhead — the budget
# (<= 2% scrape overhead) is below single-run noise on a shared host —
# plus random interleaving: blocked repetitions alias slow host phases
# onto whichever variant runs inside them, which at this effect size
# flips the sign of the measured overhead run to run.
(cd "$tmp" && "$repo/build/perf_core" \
    --benchmark_filter='^BM_GlauberRunScraped' \
    --benchmark_min_time=0.1 \
    --benchmark_repetitions=10 \
    --benchmark_enable_random_interleaving=true \
    --benchmark_report_aggregates_only=false \
    --benchmark_format=json >scrape_reps.json)

python3 - "$tmp/raw.json" "$repo/BENCH_core.json" "$tmp/flip_reps.json" \
    "$tmp/scrape_reps.json" <<'EOF'
import json
import sys

raw = json.load(open(sys.argv[1]))
# Pre-lattice-engine (seed) timings for the same workloads, measured at
# the start of the unified-engine PR on the reference container. Keyed
# without the trailing storage argument (BM_Flip/<w>, not
# BM_Flip/<w>/<storage>): the seed predates the backend split, so both
# backends' rows get the same baseline.
seed_ns = {
    "BM_Flip/2": 1020.0,
    "BM_Flip/4": 2643.0,
    "BM_Flip/10": 9309.0,
    "BM_GlauberRun/64/2": 724903.0,
    "BM_GlauberRun/128/2": 2806754.0,
}
# Byte-engine timings recorded by the previous PR's BENCH_core.json on
# the reference container (pre-bit-packing state of this repo) — the
# bit-packing PR's speedup claims in README.md are measured against
# these, and scripts/audit.py cross-checks the claims.
prior_byte_ns = {
    "BM_Flip/10": 1522.1,
    "BM_GlauberRun/128/10": 10299211.8,
}
serial_rate = {}   # n -> packed serial-engine flips/sec
sweep_rows = []
recording = {}     # n -> {mode: real_time}; mode 0 = rescan, 1 = streaming
by_storage = {}    # workload (name sans storage arg) -> {storage: ns}
graph_flip = {}    # w -> ns; BM_FlipGraphTorus (CSR graph engine on torus)
campaign = {}      # mode -> scheduled replicas; 0 = fixed, 1 = adaptive
for bench in raw.get("benchmarks", []):
    name = bench.get("name", "")
    parts = name.split("/")
    workload = None
    if name.startswith(("BM_Flip/", "BM_GlauberRun/")):
        # BM_Flip/<w>/<storage>, BM_GlauberRun/<n>/<w>/<storage>
        workload, storage = "/".join(parts[:-1]), int(parts[-1])
    elif name.startswith("BM_GlauberSweep/"):
        # BM_GlauberSweep/<n>/<shards>/<storage>/real_time
        workload = "/".join(parts[:3])
        storage = int(parts[3])
    if workload is not None and bench.get("real_time"):
        by_storage.setdefault(workload, {})[storage] = bench["real_time"]
        baseline = seed_ns.get(workload)
        if baseline is not None:
            bench["seed_baseline_ns"] = baseline
            bench["speedup_vs_seed"] = round(baseline / bench["real_time"], 2)
    if name.startswith("BM_GlauberSweep/"):
        n, shards, storage = int(parts[1]), int(parts[2]), int(parts[3])
        if storage == 1:
            if shards == 0:
                serial_rate[n] = bench["items_per_second"]
            sweep_rows.append((n, shards, bench))
    if name.startswith("BM_FlipGraphTorus/") and bench.get("real_time"):
        graph_flip[int(parts[1])] = bench["real_time"]
    if name.startswith("BM_StreamingObservables/"):
        n, mode = int(parts[1]), int(parts[2])
        recording.setdefault(n, {})[mode] = bench["real_time"]
    if name.startswith("BM_AdaptiveCampaign/") and bench.get("replicas"):
        campaign[int(parts[1])] = bench["replicas"]

scaling = {}
for n, shards, bench in sweep_rows:
    if shards == 0 or n not in serial_rate:
        continue
    speedup = bench["items_per_second"] / serial_rate[n]
    bench["speedup_vs_serial_engine"] = round(speedup, 3)
    scaling.setdefault(str(n), {})[str(shards)] = round(speedup, 3)

context = raw.setdefault("context", {})
context["streaming_observables"] = {
    "metric": "per-sweep observable recording (1024 flip pairs + one "
              "cluster/interface/correlation measurement): batch O(n^2) "
              "rescans vs the StreamingObservables engine (O(1)-ish per "
              "flip, O(1)/O(max_r) read)",
    "speedup_vs_rescan": {
        str(n): round(modes[0] / modes[1], 2)
        for n, modes in sorted(recording.items())
        if 0 in modes and 1 in modes and modes[1] > 0
    },
    "target": ">= 10x at n = 1024",
}
# Adaptive-campaign replica savings: the "replicas" counters of the two
# BM_AdaptiveCampaign modes (0 = fixed-replica engine, 1 = the
# empirical-Bernstein stopper at delta = 0.05 on the same variance-skewed
# 16-point grid, cap 3072/point). The counts are deterministic — the stop
# decisions depend only on the campaign seed, and claim run-ahead is
# windowed — so README.md quotes the savings and scripts/audit.py fails
# if the quote drifts from what is recorded here.
if 0 in campaign and 1 in campaign and campaign[0] > 0:
    context["adaptive_savings"] = {
        "metric": "replicas scheduled: empirical-Bernstein stopping "
                  "(delta=0.05, alpha=0.05, min 16) vs the fixed-replica "
                  "engine on the BM_AdaptiveCampaign grid (16 points, "
                  "metric sd ramping 0.02..0.25, cap 3072/point)",
        "fixed_replicas": int(campaign[0]),
        "adaptive_replicas": int(campaign[1]),
        "savings": round(1.0 - campaign[1] / campaign[0], 3),
        "target": ">= 0.30 at equal certified CI width "
                  "(tests/test_campaign_adaptive.cc pins the same grid)",
    }
context["sharded_scaling"] = {
    "metric": "wall-clock flips/sec, sharded sweep engine vs serial "
              "run_glauber at the same n (w=4, tau=0.45)",
    "hardware_threads": context.get("num_cpus"),
    "speedup_vs_serial": scaling,
    "note": "speedups are bounded by hardware_threads; a 1-core host "
            "measures framework overhead only (the >=3x target at "
            "n=2048/8 shards needs >=4 physical cores)",
}
# Packed-vs-byte storage comparison: same-run ratio between the two
# backend rows of each workload, plus the speedup of the packed backend
# over the byte-engine numbers the *previous PR* recorded (the honest
# "what did this PR buy" figure — README.md's claims quote these, and
# scripts/audit.py fails if they drift from what is recorded here).
packed_vs_byte = {
    wl: round(times[0] / times[1], 2)
    for wl, times in sorted(by_storage.items())
    if 0 in times and 1 in times and times[1] > 0
}
vs_prior = {
    wl: {
        "prior_byte_ns": prior,
        "packed_ns": round(by_storage[wl][1], 1),
        "speedup": round(prior / by_storage[wl][1], 2),
    }
    for wl, prior in prior_byte_ns.items()
    if by_storage.get(wl, {}).get(1)
}
context["packed_storage"] = {
    "metric": "bit-packed backend (storage arg 1: one bit/site, int16 "
              "counts, AVX-512 flip kernel where the CPU has it) vs the "
              "byte backend (storage arg 0) on the same workloads",
    "packed_over_byte_same_run": packed_vs_byte,
    "packed_vs_prior_recorded_byte": vs_prior,
}

# Generic-graph dispatch overhead: BM_FlipGraphTorus/<w> drives the exact
# BM_Flip loop through the CSR GraphTopology engine path on the torus the
# native fast path was built for, so its ratio to BM_Flip/<w>/0 (byte
# backend — the layout the graph engine uses) is the pure cost of the
# indirection: CSR row walk + per-node class tables instead of the
# precomputed stencil. README.md quotes the factor and scripts/audit.py
# fails if the quote drifts from what is recorded here.
# The context entry is self-contained (both ns values plus the factor,
# like telemetry_overhead's baseline): the ratio only means something
# same-run, so scripts/audit.py recomputes it from the pair recorded
# here rather than from raw rows that may come from another run.
graph_overhead = {}
for w, t in sorted(graph_flip.items()):
    native = by_storage.get(f"BM_Flip/{w}", {}).get(0)
    if native:
        graph_overhead[str(w)] = {
            "graph_ns": round(t, 1),
            "native_byte_ns": round(native, 1),
            "factor": round(t / native, 2),
        }
if graph_overhead:
    context["graph_overhead"] = {
        "metric": "BM_FlipGraphTorus/<w> (torus expressed as a CSR "
                  "GraphTopology, engine graph mode) vs BM_Flip/<w>/0 "
                  "(native span engine, byte backend), same flip/flip-back "
                  "loop at n = 128, same run",
        "overhead_factor_by_w": graph_overhead,
    }

# Telemetry overhead: BM_FlipTelemetry/{0,1} is the BM_Flip/10 loop with
# the runtime telemetry switch off/on. The disabled ratio is the cost the
# instrumentation macros impose on every un-instrumented run; the
# acceptance budget is <= 2% (scripts/telemetry_gate.sh enforces it
# against a SEG_TELEMETRY=OFF build as well). Computed from the min over
# 5 repetitions (cleanest sample each variant gets) — single runs on a
# shared host spread by >10%, far beyond the budget being resolved.
reps = json.load(open(sys.argv[3]))
flip_times = {}
for bench in reps.get("benchmarks", []):
    if bench.get("run_type") != "iteration" or not bench.get("real_time"):
        continue
    name = bench["name"].split("/repeats:")[0]
    prev = flip_times.get(name)
    flip_times[name] = min(prev, bench["real_time"]) if prev else \
        bench["real_time"]
base = flip_times.get("BM_Flip/10/1")
if base:
    overhead = {}
    for arg, label in ((0, "disabled"), (1, "enabled")):
        t = flip_times.get(f"BM_FlipTelemetry/{arg}")
        if t:
            overhead[label] = {
                "real_time_ns": round(t, 2),
                "overhead_vs_BM_Flip_10": round(t / base - 1.0, 4),
            }
    context["telemetry_overhead"] = {
        "metric": "BM_Flip/10 flip loop with telemetry runtime-disabled / "
                  "runtime-enabled, vs the uninstrumented-path baseline "
                  "BM_Flip/10; min over 5 repetitions of each, same run",
        "baseline_BM_Flip_10_ns": round(base, 2),
        "budget": "disabled overhead <= 2%",
        **overhead,
    }

# Metrics-endpoint overhead under load: BM_GlauberRunScraped/0 (live
# telemetry, no endpoint) vs /1 (same workload with a /metrics scrape
# every ~10ms from another thread). The exporter reads registry
# snapshots only, so the ratio is the full cost a scraped production run
# pays over an unscraped one. README.md's "Observability endpoint"
# section quotes the recorded overhead and scripts/audit.py fails if the
# quote drifts or the number leaves the <= 2% budget.
scrape_reps = json.load(open(sys.argv[4]))
scrape_times = {}
for bench in scrape_reps.get("benchmarks", []):
    if bench.get("run_type") != "iteration" or not bench.get("real_time"):
        continue
    name = bench["name"].split("/repeats:")[0]
    prev = scrape_times.get(name)
    scrape_times[name] = min(prev, bench["real_time"]) if prev else \
        bench["real_time"]
unscraped = scrape_times.get("BM_GlauberRunScraped/0")
scraped = scrape_times.get("BM_GlauberRunScraped/1")
if unscraped and scraped:
    context["metrics_endpoint_overhead"] = {
        "metric": "BM_GlauberRunScraped: full Glauber run (n=128, w=10) "
                  "with live telemetry, with vs without a concurrent "
                  "/metrics scraper polling the embedded endpoint every "
                  "~10ms; min over 10 random-interleaved repetitions of "
                  "each, same run",
        "unscraped_ns": round(unscraped, 1),
        "scraped_ns": round(scraped, 1),
        "overhead": round(scraped / unscraped - 1.0, 4),
        "budget": "scrape overhead <= 2%",
    }

# Single-core hosts cannot exercise real parallelism: flag every
# wall-clock-parallel number so downstream readers (and scripts/audit.py)
# treat them as framework-overhead measurements, not scaling results.
if context.get("num_cpus") == 1:
    raw["caveats"] = [
        "hardware_threads == 1: sharded/threaded speedups measure "
        "framework overhead only, not parallel scaling",
    ]
json.dump(raw, open(sys.argv[2], "w"), indent=1)
print(f"wrote {sys.argv[2]}")
EOF
