#include "core1d/ring_model.h"

#include <cassert>

#include "theory/bounds.h"

namespace seg {

RingModel::RingModel(const RingParams& params, Rng& rng)
    : RingModel(params, [&] {
        std::vector<std::int8_t> spins(params.n);
        for (auto& s : spins) s = rng.bernoulli(params.p) ? 1 : -1;
        return spins;
      }()) {}

RingModel::RingModel(const RingParams& params, std::vector<std::int8_t> spins)
    : params_(params),
      N_(params.neighborhood_size()),
      K_(happiness_threshold(params.tau, N_)),
      spins_(std::move(spins)),
      plus_count_(spins_.size(), 0),
      flip_pos_(spins_.size(), kAbsent) {
  assert(params_.valid());
  assert(spins_.size() == static_cast<std::size_t>(params_.n));
  // Initial sliding-window counts.
  std::int32_t acc = 0;
  for (int d = -params_.w; d <= params_.w; ++d) {
    acc += spins_[wrap(d)] > 0 ? 1 : 0;
  }
  plus_count_[0] = acc;
  for (int i = 1; i < params_.n; ++i) {
    acc += spins_[wrap(i + params_.w)] > 0 ? 1 : 0;
    acc -= spins_[wrap(i - 1 - params_.w)] > 0 ? 1 : 0;
    plus_count_[i] = acc;
  }
  for (int i = 0; i < params_.n; ++i) refresh_membership(i);
}

std::int32_t RingModel::same_count(int i) const {
  const int j = wrap(i);
  return spins_[j] > 0 ? plus_count_[j] : N_ - plus_count_[j];
}

bool RingModel::flip_makes_happy(int i) const {
  return N_ - same_count(i) + 1 >= K_;
}

void RingModel::set_insert(std::uint32_t i) {
  if (flip_pos_[i] != kAbsent) return;
  flip_pos_[i] = static_cast<std::uint32_t>(flip_items_.size());
  flip_items_.push_back(i);
}

void RingModel::set_erase(std::uint32_t i) {
  const std::uint32_t p = flip_pos_[i];
  if (p == kAbsent) return;
  const std::uint32_t last = flip_items_.back();
  flip_items_[p] = last;
  flip_pos_[last] = p;
  flip_items_.pop_back();
  flip_pos_[i] = kAbsent;
}

void RingModel::refresh_membership(int i) {
  const auto id = static_cast<std::uint32_t>(wrap(i));
  if (is_flippable(static_cast<int>(id))) {
    set_insert(id);
  } else {
    set_erase(id);
  }
}

void RingModel::flip(int i) {
  const int c = wrap(i);
  const std::int8_t old_spin = spins_[c];
  spins_[c] = static_cast<std::int8_t>(-old_spin);
  const std::int32_t delta = old_spin > 0 ? -1 : +1;
  for (int d = -params_.w; d <= params_.w; ++d) {
    const int j = wrap(c + d);
    plus_count_[j] += delta;
    refresh_membership(j);
  }
}

std::uint64_t RingModel::run_glauber(Rng& rng, std::uint64_t max_flips) {
  std::uint64_t flips = 0;
  while (!terminated() && flips < max_flips) {
    const std::uint32_t id =
        flip_items_[rng.uniform_below(flip_items_.size())];
    flip(static_cast<int>(id));
    ++flips;
  }
  return flips;
}

std::vector<int> RingModel::run_lengths() const {
  std::vector<int> lengths;
  const int n = params_.n;
  // Find a boundary to anchor the scan; if none, the ring is monochromatic.
  int start = -1;
  for (int i = 0; i < n; ++i) {
    if (spins_[i] != spins_[wrap(i - 1)]) {
      start = i;
      break;
    }
  }
  if (start < 0) return {n};
  int run = 1;
  for (int k = 1; k < n; ++k) {
    const int i = wrap(start + k);
    if (spins_[i] == spins_[wrap(i - 1)]) {
      ++run;
    } else {
      lengths.push_back(run);
      run = 1;
    }
  }
  lengths.push_back(run);
  return lengths;
}

double RingModel::mean_run_length() const {
  const auto lengths = run_lengths();
  std::size_t total = 0;
  for (const int l : lengths) total += l;
  return static_cast<double>(total) / static_cast<double>(lengths.size());
}

bool RingModel::check_invariants() const {
  for (int i = 0; i < params_.n; ++i) {
    std::int32_t plus = 0;
    for (int d = -params_.w; d <= params_.w; ++d) {
      plus += spins_[wrap(i + d)] > 0 ? 1 : 0;
    }
    if (plus != plus_count_[i]) return false;
    const bool in_set = flip_pos_[i] != kAbsent;
    if (in_set != is_flippable(i)) return false;
  }
  return true;
}

}  // namespace seg
