#include "renorm/block_graph.h"
#include "renorm/blocks.h"

#include <cmath>

#include <gtest/gtest.h>

#include "rng/rng.h"

namespace seg {
namespace {

std::vector<std::int8_t> uniform_spins(int n, std::int8_t v) {
  return std::vector<std::int8_t>(static_cast<std::size_t>(n) * n, v);
}

BlockParams small_params() {
  // Threshold N^{1/2+eps} = 25^{0.55} ~ 5.87: small enough that a fully
  // (-1) 4x4 window intersection (deviation 8) trips the classifier.
  return BlockParams{.block_side = 8, .w_block_side = 4, .dynamics_N = 25,
                     .eps = 0.05, .two_sided = false};
}

TEST(Blocks, AllPlusGridIsAllGood) {
  const int n = 32;
  const BlockGrid g(uniform_spins(n, 1), n, small_params());
  EXPECT_EQ(g.bad_count(), 0u);
  EXPECT_DOUBLE_EQ(g.bad_fraction(), 0.0);
}

TEST(Blocks, AllMinusGridOneSidedIsBad) {
  // One-sided test counts (-1) surplus: a full 4x4 window intersection of
  // an all-(-1) block has W_I - N_I/2 = 8 > 5.87.
  const int n = 32;
  const BlockGrid g(uniform_spins(n, -1), n, small_params());
  EXPECT_EQ(g.good_count(), 0u);
  EXPECT_DOUBLE_EQ(g.bad_fraction(), 1.0);
}

TEST(Blocks, TwoSidedRejectsBothSurpluses) {
  auto params = small_params();
  params.two_sided = true;
  const int n = 32;
  const BlockGrid gp(uniform_spins(n, 1), n, params);
  const BlockGrid gm(uniform_spins(n, -1), n, params);
  EXPECT_EQ(gp.good_count(), 0u);
  EXPECT_EQ(gm.good_count(), 0u);
}

TEST(Blocks, BalancedRandomFieldIsMostlyGood) {
  const int n = 64;
  Rng rng(1);
  std::vector<std::int8_t> spins(static_cast<std::size_t>(n) * n);
  for (auto& s : spins) s = rng.bernoulli(0.5) ? 1 : -1;
  const BlockGrid g(spins, n, small_params());
  EXPECT_GT(g.good_count(), g.bad_count());
}

TEST(Blocks, DeviationThresholdFormula) {
  const BlockGrid g(uniform_spins(16, 1), 16, small_params());
  EXPECT_NEAR(g.deviation_threshold(), std::pow(25.0, 0.55), 1e-12);
}

TEST(Blocks, GridGeometry) {
  const BlockGrid g(uniform_spins(32, 1), 32, small_params());
  EXPECT_EQ(g.blocks_per_side(), 4);
  EXPECT_EQ(g.block_count(), 16u);
}

TEST(Blocks, LocalMinusPatchMakesOnlyItsBlockBad) {
  const int n = 32;
  auto spins = uniform_spins(n, 1);
  // Fill one whole block (8..15, 8..15) with -1.
  for (int y = 8; y < 16; ++y) {
    for (int x = 8; x < 16; ++x) spins[y * n + x] = -1;
  }
  const BlockGrid g(spins, n, small_params());
  EXPECT_FALSE(g.good(1, 1));
  EXPECT_TRUE(g.good(3, 3));
  EXPECT_EQ(g.bad_count(), 1u);
}

TEST(Blocks, SmallIntersectionsAreToleratedByConcentration) {
  // A thin column of -1: a 4x4 window sees at most 4 of 16 sites minus
  // (deviation -4); even a clipped 1x4 intersection lying entirely on the
  // column deviates by only 4 - 2 = 2 — all below 5.87.
  const int n = 32;
  auto spins = uniform_spins(n, 1);
  for (int y = 0; y < n; ++y) spins[y * n + 9] = -1;
  const BlockGrid g(spins, n, small_params());
  EXPECT_EQ(g.bad_count(), 0u);
}

TEST(BlockGraph, NoBadBlocksMeansZeroRadius) {
  const BlockGrid g(uniform_spins(64, 1), 64, small_params());
  EXPECT_EQ(max_bad_cluster_radius(g), 0);
  EXPECT_EQ(bad_cluster_count(g), 0u);
}

TEST(BlockGraph, SingleBadBlockRadiusZero) {
  const int n = 32;
  auto spins = uniform_spins(n, 1);
  for (int y = 8; y < 16; ++y) {
    for (int x = 8; x < 16; ++x) spins[y * n + x] = -1;
  }
  const BlockGrid g(spins, n, small_params());
  EXPECT_EQ(bad_cluster_count(g), 1u);
  EXPECT_EQ(max_bad_cluster_radius(g), 0);
}

TEST(BlockGraph, AdjacentBadBlocksFormOneCluster) {
  const int n = 64;
  auto spins = uniform_spins(n, 1);
  // Two horizontally adjacent bad blocks.
  for (int y = 8; y < 16; ++y) {
    for (int x = 8; x < 24; ++x) spins[y * n + x] = -1;
  }
  const BlockGrid g(spins, n, small_params());
  EXPECT_EQ(bad_cluster_count(g), 1u);
  EXPECT_EQ(max_bad_cluster_radius(g), 1);  // l1 diameter 1 -> radius 1
}

TEST(ChemicalPath, AllGoodGridHasPath) {
  const int n = 15 * 8;
  const BlockGrid g(uniform_spins(n, 1), n, small_params());
  const auto r = find_chemical_path(g, 7, 7, 2, 6);
  EXPECT_TRUE(r.cycle_exists);
  EXPECT_TRUE(r.center_connected);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.path_length, 3);  // first annulus ring is 3 steps away
}

TEST(ChemicalPath, BadWallBlocksCycle) {
  const int n = 15 * 8;
  auto spins = uniform_spins(n, 1);
  // A radial wall of bad blocks from the annulus inner ring to the outer
  // ring at block row 7, columns 10..13 (center block (7,7), annulus
  // radii 2..6).
  for (int bx = 9; bx <= 13; ++bx) {
    for (int y = 7 * 8; y < 8 * 8; ++y) {
      for (int x = bx * 8; x < (bx + 1) * 8; ++x) spins[y * n + x] = -1;
    }
  }
  const BlockGrid g(spins, n, small_params());
  const auto r = find_chemical_path(g, 7, 7, 2, 6);
  EXPECT_FALSE(r.cycle_exists);
  EXPECT_FALSE(r.found);
}

TEST(ChemicalPath, BadCenterBlocksConnection) {
  const int n = 15 * 8;
  auto spins = uniform_spins(n, 1);
  for (int y = 7 * 8; y < 8 * 8; ++y) {
    for (int x = 7 * 8; x < 8 * 8; ++x) spins[y * n + x] = -1;
  }
  const BlockGrid g(spins, n, small_params());
  const auto r = find_chemical_path(g, 7, 7, 2, 6);
  EXPECT_TRUE(r.cycle_exists);  // annulus itself untouched
  EXPECT_FALSE(r.center_connected);
  EXPECT_FALSE(r.found);
}

TEST(ChemicalPath, IsolatedBadBlockInAnnulusDoesNotBlock) {
  const int n = 15 * 8;
  auto spins = uniform_spins(n, 1);
  // One bad block inside the annulus; the cycle routes around it.
  for (int y = 7 * 8; y < 8 * 8; ++y) {
    for (int x = 11 * 8; x < 12 * 8; ++x) spins[y * n + x] = -1;
  }
  const BlockGrid g(spins, n, small_params());
  const auto r = find_chemical_path(g, 7, 7, 2, 6);
  EXPECT_TRUE(r.cycle_exists);
  EXPECT_TRUE(r.found);
}

TEST(ChemicalPath, SupercriticalRandomFieldUsuallyHasPath) {
  // Lemma 13's regime: good blocks are overwhelmingly likely, so the
  // chemical path exists w.h.p.
  Rng rng(7);
  int found = 0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    const int n = 15 * 8;
    std::vector<std::int8_t> spins(static_cast<std::size_t>(n) * n);
    for (auto& s : spins) s = rng.bernoulli(0.5) ? 1 : -1;
    const BlockGrid g(spins, n, small_params());
    found += find_chemical_path(g, 7, 7, 2, 6).found;
  }
  EXPECT_GE(found, 8);
}

}  // namespace
}  // namespace seg
