#include "grid/box_sum.h"

#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "grid/point.h"
#include "rng/rng.h"

namespace seg {
namespace {

// Reference O(n^2 N) implementation.
std::vector<std::int32_t> naive_box_sum(const std::vector<std::int32_t>& v,
                                        int n, int w) {
  std::vector<std::int32_t> out(v.size(), 0);
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      std::int32_t acc = 0;
      for (int dy = -w; dy <= w; ++dy) {
        for (int dx = -w; dx <= w; ++dx) {
          acc += v[static_cast<std::size_t>(torus_wrap(y + dy, n)) * n +
                   torus_wrap(x + dx, n)];
        }
      }
      out[static_cast<std::size_t>(y) * n + x] = acc;
    }
  }
  return out;
}

TEST(BoxSum, UniformFieldGivesBallSizeEverywhere) {
  const int n = 8, w = 2;
  std::vector<std::int32_t> ones(n * n, 1);
  const auto sums = box_sum_torus(ones, n, w);
  for (const auto s : sums) EXPECT_EQ(s, 25);
}

TEST(BoxSum, SingleImpulseSpreadsToBall) {
  const int n = 9, w = 1;
  std::vector<std::int32_t> v(n * n, 0);
  v[4 * n + 4] = 1;
  const auto sums = box_sum_torus(v, n, w);
  int ones = 0;
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      const bool in_ball = torus_linf({x, y}, {4, 4}, n) <= w;
      EXPECT_EQ(sums[y * n + x], in_ball ? 1 : 0);
      ones += sums[y * n + x];
    }
  }
  EXPECT_EQ(ones, 9);
}

TEST(BoxSum, ImpulseAtSeamWraps) {
  const int n = 6, w = 1;
  std::vector<std::int32_t> v(n * n, 0);
  v[0] = 1;  // (0, 0)
  const auto sums = box_sum_torus(v, n, w);
  EXPECT_EQ(sums[5 * n + 5], 1);  // wrapped corner neighbor
  EXPECT_EQ(sums[3 * n + 3], 0);
}

TEST(BoxSum, ZeroRadiusIsIdentity) {
  const int n = 5;
  std::vector<std::int32_t> v(n * n);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<int>(i);
  EXPECT_EQ(box_sum_torus(v, n, 0), v);
}

TEST(BoxSum, ByteOverloadMatchesIntOverload) {
  const int n = 7, w = 2;
  Rng rng(5);
  std::vector<std::uint8_t> bytes(n * n);
  std::vector<std::int32_t> ints(n * n);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = rng.bernoulli(0.5) ? 1 : 0;
    ints[i] = bytes[i];
  }
  EXPECT_EQ(box_sum_torus(bytes, n, w), box_sum_torus(ints, n, w));
}

TEST(BoxSum, NegativeValuesSupported) {
  const int n = 6, w = 1;
  Rng rng(8);
  std::vector<std::int32_t> v(n * n);
  for (auto& x : v) x = static_cast<std::int32_t>(rng.uniform_int(-5, 5));
  EXPECT_EQ(box_sum_torus(v, n, w), naive_box_sum(v, n, w));
}

class BoxSumParam : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BoxSumParam, MatchesNaiveOnRandomField) {
  const auto [n, w] = GetParam();
  Rng rng(1000 + n * 17 + w);
  std::vector<std::int32_t> v(static_cast<std::size_t>(n) * n);
  for (auto& x : v) x = static_cast<std::int32_t>(rng.uniform_below(4));
  EXPECT_EQ(box_sum_torus(v, n, w), naive_box_sum(v, n, w))
      << "n=" << n << " w=" << w;
}

INSTANTIATE_TEST_SUITE_P(
    SweepSizes, BoxSumParam,
    ::testing::Values(std::tuple{3, 1}, std::tuple{5, 1}, std::tuple{5, 2},
                      std::tuple{7, 3}, std::tuple{8, 2}, std::tuple{9, 4},
                      std::tuple{12, 5}, std::tuple{16, 3}, std::tuple{17, 8},
                      std::tuple{31, 7}));

}  // namespace
}  // namespace seg
