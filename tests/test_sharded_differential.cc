// Differential battery for the sharded parallel dynamics
// (core/parallel_dynamics.h over lattice/sharded.h).
//
// The contract under test, from strongest to weakest:
//  1. ONE shard is the serial process, bitwise: same flips, same RNG
//     consumption, same Poisson clock as run_glauber / run_kawasaki
//     driven by Rng::stream(seed, 0). Uses the golden-trajectory fixture
//     parameters (test_golden_trajectory.cc) so the serial side is itself
//     pinned by the golden constants.
//  2. For a FIXED shard count, the trajectory is bitwise identical at any
//     thread count (each shard's substream and sub-state are isolated;
//     reconciliation is serial in shard order).
//  3. At any shard count, counts/codes/memberships stay exact (full
//     recount audits pass mid-run and at absorption), boundary flips all
//     route through the conflict queue, and the absorbing states are
//     genuine (no flippable agent remains).
#include <cstring>

#include <gtest/gtest.h>

#include "core/dynamics.h"
#include "core/kawasaki.h"
#include "core/model.h"
#include "core/parallel_dynamics.h"
#include "lattice/sharded.h"

namespace seg {
namespace {

std::uint64_t fnv1a(const void* data, std::size_t len, std::uint64_t h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t hash_state(const SchellingModel& m, std::uint64_t a,
                         std::uint64_t b) {
  std::uint64_t h = fnv1a(m.spins().data(), m.spins().size(),
                          14695981039346656037ULL);
  h = fnv1a(&a, sizeof(a), h);
  h = fnv1a(&b, sizeof(b), h);
  return h;
}

// ---- ShardLayout geometry --------------------------------------------------

TEST(ShardLayout, TrivialLayoutHasOneShardAndNoBoundary) {
  ShardLayout layout;
  EXPECT_EQ(layout.shard_count(), 1);
  EXPECT_TRUE(layout.trivial());
  EXPECT_EQ(layout.boundary_site_count(), 0u);
  EXPECT_EQ(layout.shard_of(123), 0);
  EXPECT_FALSE(layout.boundary(123));
  EXPECT_TRUE(layout.compatible(48, 3));
}

TEST(ShardLayout, StripesPartitionAndClassify) {
  const int n = 32, w = 2, k = 4;
  const ShardLayout layout = ShardLayout::stripes(n, w, k);
  EXPECT_EQ(layout.shard_count(), k);
  EXPECT_TRUE(layout.compatible(n, w));
  EXPECT_FALSE(layout.compatible(n, w + 1));
  // Stripes of height 8: rows 0..7 -> shard 0, etc. Boundary rows are the
  // first and last w rows of each stripe.
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      const auto id = static_cast<std::uint32_t>(y * n + x);
      EXPECT_EQ(layout.shard_of(id), y / 8);
      const int within = y % 8;
      EXPECT_EQ(layout.boundary(id), within < w || within >= 8 - w);
    }
  }
  EXPECT_EQ(layout.boundary_site_count(),
            static_cast<std::size_t>(k * 2 * w * n));
}

TEST(ShardLayout, IsolationInvariant) {
  // The guarantee phase A relies on: the radius-w window of every
  // interior site stays inside its own shard. Verified exhaustively.
  const int n = 30, w = 2;
  for (const ShardLayout& layout :
       {ShardLayout::stripes(n, w, 3), ShardLayout::stripes(n, w, 5),
        ShardLayout::checkerboard(n, w, 2, 3),
        ShardLayout::checkerboard(n, w, 3, 3)}) {
    for (int y = 0; y < n; ++y) {
      for (int x = 0; x < n; ++x) {
        const auto id = static_cast<std::uint32_t>(y * n + x);
        if (layout.boundary(id)) continue;
        for (int dy = -w; dy <= w; ++dy) {
          for (int dx = -w; dx <= w; ++dx) {
            const int yy = (y + dy + n) % n;
            const int xx = (x + dx + n) % n;
            const auto nb = static_cast<std::uint32_t>(yy * n + xx);
            ASSERT_EQ(layout.shard_of(nb), layout.shard_of(id))
                << "interior site (" << x << "," << y
                << ") has a window cell in another shard";
          }
        }
      }
    }
  }
}

TEST(ShardLayout, CheckerboardCutsBothAxes) {
  const int n = 24, w = 1;
  const ShardLayout layout = ShardLayout::checkerboard(n, w, 2, 2);
  EXPECT_EQ(layout.shard_count(), 4);
  EXPECT_EQ(layout.mode(), ShardMode::kCheckerboard);
  // Block of (0,0) vs (12,0) vs (0,12) vs (12,12).
  EXPECT_EQ(layout.shard_of(0), 0);
  EXPECT_EQ(layout.shard_of(12), 1);
  EXPECT_EQ(layout.shard_of(12 * n), 2);
  EXPECT_EQ(layout.shard_of(12 * n + 12), 3);
  // A column cut makes vertical strips of boundary even in interior rows.
  EXPECT_TRUE(layout.boundary(6 * n + 11));   // col 11: within 1 of cut
  EXPECT_FALSE(layout.boundary(6 * n + 6));   // deep interior
}

TEST(ShardLayout, MaxStripesRespectsWindow) {
  EXPECT_EQ(ShardLayout::max_stripes(2048, 4), 227);
  EXPECT_EQ(ShardLayout::max_stripes(32, 2), 6);
  EXPECT_EQ(ShardLayout::max_stripes(8, 3), 1);
}

// ---- 1-shard == serial, on the golden fixture ------------------------------

TEST(ShardedDifferential, OneShardGlauberIsSerialBitwise) {
  // Same model fixture as GoldenTrajectory.SchellingGlauber; the serial
  // reference below is therefore pinned (transitively) by the golden
  // hash. The sharded runner derives shard 0's stream as
  // Rng::stream(seed, 0), so the serial run uses exactly that stream.
  ModelParams p{.n = 48, .w = 3, .tau = 0.45, .p = 0.5};
  const std::uint64_t dyn_seed = 987001;

  Rng init_a = Rng::stream(1001, 0);
  SchellingModel serial(p, init_a);
  Rng dyn = Rng::stream(dyn_seed, 0);
  const RunResult serial_run = run_glauber(serial, dyn);

  Rng init_b = Rng::stream(1001, 0);
  SchellingModel sharded(p, init_b, ShardLayout::stripes(p.n, p.w, 1));
  const ParallelRunResult parallel_run =
      run_parallel_glauber(sharded, dyn_seed);

  EXPECT_TRUE(serial_run.terminated);
  EXPECT_TRUE(parallel_run.terminated);
  EXPECT_EQ(parallel_run.flips, serial_run.flips);
  EXPECT_EQ(parallel_run.final_time, serial_run.final_time);  // bitwise
  EXPECT_EQ(parallel_run.deferred, 0u);
  EXPECT_EQ(parallel_run.reconciled, 0u);
  EXPECT_EQ(sharded.spins(), serial.spins());
}

TEST(ShardedDifferential, OneShardGlauberHonorsMaxFlipsExactly) {
  ModelParams p{.n = 40, .w = 2, .tau = 0.45, .p = 0.5};
  const std::uint64_t dyn_seed = 987002;

  Rng init_a = Rng::stream(1002, 0);
  SchellingModel serial(p, init_a);
  Rng dyn = Rng::stream(dyn_seed, 0);
  RunOptions serial_opt;
  serial_opt.max_flips = 777;  // deliberately not a sweep-quantum multiple
  const RunResult serial_run = run_glauber(serial, dyn, serial_opt);

  Rng init_b = Rng::stream(1002, 0);
  SchellingModel sharded(p, init_b, ShardLayout::stripes(p.n, p.w, 1));
  ParallelOptions opt;
  opt.max_flips = 777;
  opt.sweep_quantum = 100;
  const ParallelRunResult parallel_run =
      run_parallel_glauber(sharded, dyn_seed, opt);

  EXPECT_EQ(parallel_run.flips, serial_run.flips);
  EXPECT_EQ(parallel_run.final_time, serial_run.final_time);
  EXPECT_EQ(sharded.spins(), serial.spins());
}

TEST(ShardedDifferential, OneShardKawasakiIsSerialBitwise) {
  // Budgeted comparison well short of absorption, so neither engine's
  // stale-check path fires and both stop exactly at max_swaps.
  ModelParams p{.n = 32, .w = 2, .tau = 0.4, .p = 0.5};
  const std::uint64_t dyn_seed = 987003;

  Rng init_a = Rng::stream(1007, 0);
  SchellingModel serial(p, init_a);
  Rng dyn = Rng::stream(dyn_seed, 0);
  KawasakiOptions serial_opt;
  serial_opt.max_swaps = 900;
  const KawasakiResult serial_run = run_kawasaki(serial, dyn, serial_opt);

  Rng init_b = Rng::stream(1007, 0);
  SchellingModel sharded(p, init_b, ShardLayout::stripes(p.n, p.w, 1));
  ParallelKawasakiOptions opt;
  opt.max_swaps = 900;
  const ParallelKawasakiResult parallel_run =
      run_parallel_kawasaki(sharded, dyn_seed, opt);

  EXPECT_EQ(parallel_run.swaps, serial_run.swaps);
  EXPECT_EQ(parallel_run.proposals, serial_run.proposals);
  EXPECT_EQ(parallel_run.deferred, 0u);
  EXPECT_EQ(sharded.spins(), serial.spins());
}

// ---- fixed shard count: thread-count invariance ----------------------------

TEST(ShardedDifferential, GlauberInvariantAcrossThreadCounts) {
  ModelParams p{.n = 96, .w = 2, .tau = 0.45, .p = 0.5};
  const int k = 6;
  const std::uint64_t dyn_seed = 987004;

  std::uint64_t reference_hash = 0;
  ParallelRunResult reference;
  for (const std::size_t threads : {1u, 2u, 6u}) {
    Rng init = Rng::stream(2002, 0);
    SchellingModel model(p, init, ShardLayout::stripes(p.n, p.w, k));
    ParallelOptions opt;
    opt.threads = threads;
    const ParallelRunResult run = run_parallel_glauber(model, dyn_seed, opt);
    EXPECT_TRUE(run.terminated);
    EXPECT_TRUE(model.check_invariants());
    const std::uint64_t h = hash_state(model, run.flips, run.sweeps);
    if (threads == 1) {
      reference_hash = h;
      reference = run;
      // The decomposition must actually be exercised at this size.
      EXPECT_GT(run.deferred, 0u);
    } else {
      EXPECT_EQ(h, reference_hash) << "threads=" << threads;
      EXPECT_EQ(run.flips, reference.flips);
      EXPECT_EQ(run.deferred, reference.deferred);
      EXPECT_EQ(run.reconciled, reference.reconciled);
      EXPECT_EQ(run.final_time, reference.final_time);
    }
  }
}

TEST(ShardedDifferential, KawasakiInvariantAcrossThreadCounts) {
  ModelParams p{.n = 64, .w = 2, .tau = 0.4, .p = 0.5};
  const int k = 4;
  const std::uint64_t dyn_seed = 987005;

  std::uint64_t reference_hash = 0;
  ParallelKawasakiResult reference;
  std::int64_t reference_magnetization = 0;
  for (const std::size_t threads : {1u, 4u}) {
    Rng init = Rng::stream(2003, 0);
    SchellingModel model(p, init, ShardLayout::stripes(p.n, p.w, k));
    std::int64_t magnetization = 0;
    for (const std::int8_t s : model.spins()) magnetization += s;
    ParallelKawasakiOptions opt;
    opt.threads = threads;
    opt.max_swaps = 600;
    const ParallelKawasakiResult run =
        run_parallel_kawasaki(model, dyn_seed, opt);
    EXPECT_TRUE(model.check_invariants());
    // Swap dynamics conserve the magnetization exactly.
    std::int64_t after = 0;
    for (const std::int8_t s : model.spins()) after += s;
    EXPECT_EQ(after, magnetization);
    const std::uint64_t h = hash_state(model, run.swaps, run.proposals);
    if (threads == 1) {
      reference_hash = h;
      reference = run;
      reference_magnetization = after;
    } else {
      EXPECT_EQ(h, reference_hash) << "threads=" << threads;
      EXPECT_EQ(run.swaps, reference.swaps);
      EXPECT_EQ(run.proposals, reference.proposals);
      EXPECT_EQ(run.deferred, reference.deferred);
      EXPECT_EQ(after, reference_magnetization);
    }
  }
}

// ---- sharded semantics at k > 1 --------------------------------------------

TEST(ShardedDifferential, ShardedRunsAreRepeatableAndExact) {
  // Stripes and checkerboard both: two identically-seeded runs agree
  // bitwise, audits pass at absorption, and the absorbing state is real.
  ModelParams p{.n = 60, .w = 2, .tau = 0.45, .p = 0.5};
  for (const bool checkers : {false, true}) {
    const ShardLayout layout =
        checkers ? ShardLayout::checkerboard(p.n, p.w, 2, 2)
                 : ShardLayout::stripes(p.n, p.w, 4);
    std::uint64_t first_hash = 0;
    for (int repeat = 0; repeat < 2; ++repeat) {
      Rng init = Rng::stream(2004, 0);
      SchellingModel model(p, init, layout);
      const ParallelRunResult run = run_parallel_glauber(model, 987006);
      EXPECT_TRUE(run.terminated);
      EXPECT_TRUE(model.terminated());
      EXPECT_TRUE(model.check_invariants());
      for (std::uint32_t id = 0; id < model.agent_count(); ++id) {
        ASSERT_FALSE(model.is_flippable(id)) << "site " << id;
      }
      const std::uint64_t h = hash_state(model, run.flips, run.deferred);
      if (repeat == 0) {
        first_hash = h;
      } else {
        EXPECT_EQ(h, first_hash) << (checkers ? "checkerboard" : "stripes");
      }
    }
  }
}

TEST(ShardedDifferential, LyapunovIncreasesUnderShardedGlauber) {
  // Only flippable agents ever flip (phase A samples the flippable set,
  // phase B re-validates), so the paper's Lyapunov argument applies to
  // the sharded process too: the aggregate same-type count must strictly
  // increase between checkpoints that contain at least one flip.
  ModelParams p{.n = 64, .w = 2, .tau = 0.45, .p = 0.5};
  Rng init = Rng::stream(2005, 0);
  SchellingModel model(p, init, ShardLayout::stripes(p.n, p.w, 4));
  std::int64_t lyapunov = model.lyapunov();
  ParallelOptions opt;
  opt.sweep_quantum = 64;
  for (int burst = 0; burst < 20; ++burst) {
    opt.max_sweeps = 1;
    const ParallelRunResult run = run_parallel_glauber(model, 987007, opt);
    const std::int64_t next = model.lyapunov();
    if (run.flips > 0) {
      EXPECT_GT(next, lyapunov) << "burst " << burst;
    } else {
      EXPECT_EQ(next, lyapunov);
    }
    lyapunov = next;
    if (model.terminated()) break;
  }
}

TEST(ShardedDifferential, FourShardGoldenTrajectory) {
  // Frozen golden hash for a k = 4 stripe run (captured at the
  // introduction of the sharded engine): pins the k-shard trajectory —
  // phase A order, deferral rule, reconciliation order, per-shard
  // substream derivation — against future refactors the same way the
  // serial golden suite pins the serial engines.
  constexpr std::uint64_t kGoldenSharded4 = 0x1d4e36dd87ec18cfull;
  ModelParams p{.n = 64, .w = 3, .tau = 0.45, .p = 0.5};
  Rng init = Rng::stream(3001, 0);
  SchellingModel model(p, init, ShardLayout::stripes(p.n, p.w, 4));
  const ParallelRunResult run = run_parallel_glauber(model, 3002);
  EXPECT_TRUE(run.terminated);
  EXPECT_EQ(run.flips, 2707u);
  EXPECT_EQ(run.deferred, 959u);
  EXPECT_EQ(run.reconciled, 959u);
  std::uint64_t h = fnv1a(model.spins().data(), model.spins().size(),
                          14695981039346656037ULL);
  h = fnv1a(&run.flips, sizeof(run.flips), h);
  h = fnv1a(&run.deferred, sizeof(run.deferred), h);
  h = fnv1a(&run.reconciled, sizeof(run.reconciled), h);
  h = fnv1a(&run.final_time, sizeof(run.final_time), h);
  EXPECT_EQ(h, kGoldenSharded4);
}

TEST(ShardedDifferential, RunResultAdapter) {
  ParallelRunResult parallel;
  parallel.flips = 42;
  parallel.sweeps = 7;
  parallel.final_time = 1.5;
  parallel.terminated = true;
  const RunResult run = to_run_result(parallel);
  EXPECT_EQ(run.flips, 42u);
  EXPECT_EQ(run.rounds, 7u);
  EXPECT_EQ(run.final_time, 1.5);
  EXPECT_TRUE(run.terminated);
}

}  // namespace
}  // namespace seg
