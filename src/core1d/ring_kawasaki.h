// Kawasaki (swap) dynamics on the ring — the exact setting of Brandt,
// Immorlica, Kamath & Kleinberg [23]: unhappy agents of opposite types
// swap positions when the swap makes both happy; the type counts are
// conserved. Their theorem: at tau = 1/2 the expected run length in the
// final configuration is polynomial in the window size — the contrast
// against the exponential Glauber regimes the paper proves in 2-D.
#pragma once

#include <cstdint>

#include "core1d/ring_model.h"

namespace seg {

struct RingKawasakiOptions {
  std::uint64_t max_swaps = ~std::uint64_t{0};
  // Run the exact no-improving-swap absorption check after this many
  // consecutive rejected proposals.
  std::uint64_t stale_check_after = 2000;
  std::uint64_t max_consecutive_rejects = 500000;
};

struct RingKawasakiResult {
  std::uint64_t swaps = 0;
  std::uint64_t proposals = 0;
  bool terminated = false;
  bool gave_up = false;
};

// True iff swapping the spins at i and j leaves both agents happy. Applies
// the swap when it improves; otherwise restores the ring.
bool ring_swap_improves(RingModel& model, int i, int j);

RingKawasakiResult run_ring_kawasaki(RingModel& model, Rng& rng,
                                     const RingKawasakiOptions& options = {});

}  // namespace seg
