// The Schelling model state: spins, incrementally-maintained neighbor
// counts, and the happy / unhappy / flippable classification of every
// agent (paper Sec. II-A).
//
// Invariants maintained after construction and after every flip():
//  * plus_count(i) == number of +1 spins in the l-infinity ball of radius
//    w around i (self included);
//  * the unhappy and flippable index sets contain exactly the agents for
//    which is_unhappy() / is_flippable() hold.
//
// "Flippable" means unhappy AND the flip would make the agent happy — the
// paper's Glauber rule. For tau < 1/2 every unhappy agent is flippable
// (first observation in Sec. II-A); for tau > 1/2 the flippable agents are
// exactly the paper's "super-unhappy" agents (Sec. IV-C).
#pragma once

#include <cstdint>
#include <vector>

#include "core/params.h"
#include "grid/point.h"
#include "rng/rng.h"

namespace seg {

// An O(1) insert/erase/sample index set over agent ids, used for the
// unhappy and flippable sets. Sampling must be uniform for the dynamics
// to realize the Poisson-clock law.
class AgentSet {
 public:
  explicit AgentSet(std::size_t capacity) : pos_(capacity, kAbsent) {}

  bool contains(std::uint32_t id) const { return pos_[id] != kAbsent; }
  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  void insert(std::uint32_t id);
  void erase(std::uint32_t id);

  std::uint32_t sample(Rng& rng) const;
  std::uint32_t at(std::size_t i) const { return items_[i]; }
  const std::vector<std::uint32_t>& items() const { return items_; }

 private:
  static constexpr std::uint32_t kAbsent = 0xffffffffu;
  std::vector<std::uint32_t> items_;
  std::vector<std::uint32_t> pos_;
};

class SchellingModel {
 public:
  // Random Bernoulli(p) initial configuration.
  SchellingModel(const ModelParams& params, Rng& rng);

  // Explicit initial configuration; spins must be +1/-1, size n*n.
  SchellingModel(const ModelParams& params, std::vector<std::int8_t> spins);

  const ModelParams& params() const { return params_; }
  int side() const { return params_.n; }
  int horizon() const { return params_.w; }
  int neighborhood_size() const { return N_; }
  // Threshold for +1 agents (equal to the -1 threshold in the symmetric
  // model); use happy_threshold_of() in the asymmetric variant.
  int happy_threshold() const { return k_plus_; }
  int happy_threshold_of(std::int8_t type) const {
    return type > 0 ? k_plus_ : k_minus_;
  }
  std::size_t agent_count() const { return spins_.size(); }

  std::int8_t spin(std::uint32_t id) const { return spins_[id]; }
  std::int8_t spin_at(int x, int y) const;
  const std::vector<std::int8_t>& spins() const { return spins_; }

  std::uint32_t id_of(int x, int y) const;
  Point point_of(std::uint32_t id) const;

  // Count of +1 spins in the neighborhood of agent id (self included).
  std::int32_t plus_count(std::uint32_t id) const { return plus_count_[id]; }
  // Count of agents sharing id's type in its neighborhood (self included).
  std::int32_t same_count(std::uint32_t id) const;

  bool is_happy(std::uint32_t id) const {
    return same_count(id) >= happy_threshold_of(spins_[id]);
  }
  bool is_unhappy(std::uint32_t id) const { return !is_happy(id); }
  // Would flipping make the agent happy? (N - same + 1 >= K after flip.)
  bool flip_makes_happy(std::uint32_t id) const;
  bool is_flippable(std::uint32_t id) const {
    return is_unhappy(id) && flip_makes_happy(id);
  }

  const AgentSet& unhappy_set() const { return unhappy_; }
  const AgentSet& flippable_set() const { return flippable_; }

  // Flips the spin of `id` and restores all invariants. O(N) work.
  // Unconditional: dynamics engines only call it on flippable agents, but
  // the firewall/adversarial experiments may force arbitrary flips.
  void flip(std::uint32_t id);

  // Paper's termination certificate: the process has stopped when no
  // unhappy agent can become happy by flipping.
  bool terminated() const { return flippable_.empty(); }

  // Lyapunov function of Sec. II-A ("Termination"): sum over all agents of
  // their same-type neighbor count. Strictly increases with every flip of
  // a flippable agent. O(n^2) to evaluate.
  std::int64_t lyapunov() const;

  std::size_t count_unhappy() const { return unhappy_.size(); }
  // Fraction of agents currently happy.
  double happy_fraction() const;
  // Fraction of +1 agents.
  double plus_fraction() const;

  // Full O(n^2 (recount)) invariant audit used by tests and debug builds.
  bool check_invariants() const;

  // The neighborhood's offset stencil (includes (0,0)); size == N.
  const std::vector<Point>& offsets() const { return offsets_; }

 private:
  void init_counts_and_sets();
  void refresh_membership(std::uint32_t id);

  ModelParams params_;
  int N_;        // neighborhood size
  int k_plus_;   // happiness threshold for +1 agents
  int k_minus_;  // happiness threshold for -1 agents
  std::vector<Point> offsets_;
  std::vector<std::int8_t> spins_;
  std::vector<std::int32_t> plus_count_;
  AgentSet unhappy_;
  AgentSet flippable_;
};

// Offset stencil for a shape/horizon pair, (0,0) included.
std::vector<Point> neighborhood_offsets(NeighborhoodShape shape, int w);

// Draws a +1/-1 spin field of side n with P(+1) = p.
std::vector<std::int8_t> random_spins(int n, double p, Rng& rng);

}  // namespace seg
