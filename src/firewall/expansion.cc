#include "firewall/expansion.h"

#include <algorithm>

#include "lattice/window.h"

namespace seg {

bool placement_makes_minus_unhappy(const SchellingModel& model,
                                   Point block_center, int block_r,
                                   Point agent) {
  const int w = model.horizon();
  const int n = model.side();
  // Same-type count of the (-1) agent after the hypothetical placement:
  // start from its current count and subtract the (-1) sites of its
  // neighborhood that the block overwrites with (+1).
  const std::uint32_t id = model.id_of(agent.x, agent.y);
  std::int32_t same = model.same_count(id);
  for_each_window_point(torus_wrap(agent.x, n), torus_wrap(agent.y, n), w, n,
                        [&](int x, int y, std::uint32_t site) {
                          if (torus_linf(Point{x, y}, block_center, n) >
                              block_r) {
                            return;
                          }
                          if (model.spin(site) < 0) --same;
                        });
  // The agent itself is outside the block (callers place it on the
  // boundary ring), so its own contribution (+1 to same) is untouched.
  return same < model.happy_threshold_of(-1);
}

ExpansionRegionReport check_region_of_expansion(const SchellingModel& model,
                                                Point center, int region_r) {
  const int n = model.side();
  const int block_r = std::max(1, model.horizon() / 2);
  ExpansionRegionReport report;
  report.is_region_of_expansion = true;
  for_each_window_point_until(
      torus_wrap(center.x, n), torus_wrap(center.y, n), region_r, n,
      [&](int bx, int by, std::uint32_t) {
        const Point block_center{bx, by};
        ++report.placements_tested;
        // Boundary ring: sites at l-infinity distance exactly block_r + 1.
        const int ring = block_r + 1;
        bool placement_ok = true;
        for (int ry = -ring; ry <= ring && placement_ok; ++ry) {
          for (int rx = -ring; rx <= ring; ++rx) {
            if (std::max(std::abs(rx), std::abs(ry)) != ring) continue;
            const Point agent{torus_wrap(block_center.x + rx, n),
                              torus_wrap(block_center.y + ry, n)};
            if (model.spin_at(agent.x, agent.y) >= 0) continue;  // only (-1)
            if (!placement_makes_minus_unhappy(model, block_center, block_r,
                                               agent)) {
              placement_ok = false;
              break;
            }
          }
        }
        if (!placement_ok) {
          report.is_region_of_expansion = false;
          if (report.first_failure.x < 0) report.first_failure = block_center;
          return false;  // stop at the first failing placement
        }
        return true;
      });
  return report;
}

}  // namespace seg
