// Debug-mode invariant assertions for the lattice hot paths.
//
// SEG_ASSERT(cond, message_stream) aborts with a formatted report when
// `cond` fails. The checks are active whenever SEG_DEBUG_CHECKS is on —
// which is the default in assert-enabled (non-NDEBUG) builds — and
// compile to nothing in Release, so the flip/reconciliation hot loops pay
// zero cost in optimized binaries while the fuzz and sanitizer suites get
// precise failure reports (offending site, span, set index) instead of a
// silent divergence caught only by a later full recount.
//
//   SEG_ASSERT(count >= 0, "site " << id << " count " << count
//                              << " underflowed in set " << s);
#pragma once

#if !defined(SEG_DEBUG_CHECKS) && !defined(NDEBUG)
#define SEG_DEBUG_CHECKS 1
#endif

#ifdef SEG_DEBUG_CHECKS

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace seg {
namespace internal {

// Defined in obs/flight_recorder.cc: writes the flight-recorder tail to
// stderr (no-op when nothing was recorded) so an assertion failure in a
// long campaign leaves the recent event history next to the report.
void seg_assert_dump_flight() noexcept;

[[noreturn]] inline void seg_assert_fail(const char* expr, const char* file,
                                         int line, const std::string& what) {
  std::fprintf(stderr, "SEG_ASSERT failed at %s:%d: (%s) %s\n", file, line,
               expr, what.c_str());
  std::fflush(stderr);
  seg_assert_dump_flight();
  std::abort();
}

}  // namespace internal
}  // namespace seg

#define SEG_ASSERT(cond, message)                                        \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::ostringstream seg_assert_stream_;                             \
      seg_assert_stream_ << message; /* NOLINT */                        \
      ::seg::internal::seg_assert_fail(#cond, __FILE__, __LINE__,        \
                                       seg_assert_stream_.str());        \
    }                                                                    \
  } while (0)

#else

#define SEG_ASSERT(cond, message) ((void)0)

#endif  // SEG_DEBUG_CHECKS
