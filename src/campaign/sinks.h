// Pluggable result sinks for campaign output.
//
//  * CsvSink      — aggregated per-point table (one row per scenario
//                   point; axis columns plus count/mean/sem/min/max per
//                   metric) through io/csv.
//  * ManifestSink — human-readable run manifest: the canonical spec text,
//                   campaign seed and hash, completion state, and any
//                   extra key/value info the caller attaches (thread
//                   count, output paths, ...).
//  * ConsoleSink  — aligned mean +/- CI table through io/table.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "campaign/campaign.h"

namespace seg {

class ResultSink {
 public:
  virtual ~ResultSink() = default;
  // Returns false on I/O failure.
  virtual bool write(const ScenarioSpec& spec,
                     const CampaignResult& result) = 0;
};

class CsvSink : public ResultSink {
 public:
  explicit CsvSink(std::string path) : path_(std::move(path)) {}
  bool write(const ScenarioSpec& spec, const CampaignResult& result) override;
  const std::string& path() const { return path_; }

  // The document the sink would write, for callers that want the bytes.
  static std::string render(const ScenarioSpec& spec,
                            const CampaignResult& result);

 private:
  std::string path_;
};

class ManifestSink : public ResultSink {
 public:
  explicit ManifestSink(std::string path) : path_(std::move(path)) {}
  bool write(const ScenarioSpec& spec, const CampaignResult& result) override;
  const std::string& path() const { return path_; }

  // Extra lines recorded under "[run]" in the manifest.
  void set_info(const std::string& key, const std::string& value);

  // Telemetry key/value pairs (e.g. obs::Registry::summary()) recorded
  // under a "[telemetry]" section between "[run]" and "[spec]". Empty
  // input leaves the section out entirely, so manifests written with
  // telemetry off are byte-identical to pre-telemetry ones.
  void set_telemetry(
      std::vector<std::pair<std::string, std::string>> telemetry);

 private:
  std::string path_;
  std::vector<std::pair<std::string, std::string>> info_;
  std::vector<std::pair<std::string, std::string>> telemetry_;
};

class ConsoleSink : public ResultSink {
 public:
  bool write(const ScenarioSpec& spec, const CampaignResult& result) override;
};

// Writes `result` to every sink; returns false if any sink failed.
bool write_all(const ScenarioSpec& spec, const CampaignResult& result,
               const std::vector<ResultSink*>& sinks);

}  // namespace seg
