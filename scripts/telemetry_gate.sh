#!/usr/bin/env bash
# Telemetry-overhead gate: proves that compiling the telemetry macros in
# (SEG_TELEMETRY=ON, the default) costs at most SEG_TELEMETRY_BUDGET_PCT
# (default 2%) on the hottest path while runtime-disabled.
#
# BENCH_core.json records the same ratio from a single build
# (BM_FlipTelemetry/0 vs BM_Flip/10); this script is the honest version
# for CI: it builds the benchmark twice — once with the macros compiled
# out entirely (SEG_TELEMETRY=OFF) and once with them in — runs BM_Flip
# in both, and compares the min over repetitions on the same host.
set -euo pipefail
cd "$(dirname "$0")/.."
repo=$(pwd)
budget_pct=${SEG_TELEMETRY_BUDGET_PCT:-2}
reps=${SEG_TELEMETRY_GATE_REPS:-5}

run_bm_flip() {
  local build_dir=$1 telemetry=$2
  cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=Release \
      -DSEG_TELEMETRY="$telemetry" >/dev/null
  cmake --build "$build_dir" -j --target perf_core >/dev/null
  "$build_dir/perf_core" \
      --benchmark_filter='^BM_Flip/10$' \
      --benchmark_repetitions="$reps" \
      --benchmark_report_aggregates_only=false \
      --benchmark_format=json
}

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "telemetry gate: building with SEG_TELEMETRY=OFF (macro-free baseline)"
run_bm_flip "$tmp/build-off" OFF >"$tmp/off.json"
echo "telemetry gate: building with SEG_TELEMETRY=ON (runtime-disabled)"
run_bm_flip "$tmp/build-on" ON >"$tmp/on.json"

python3 - "$tmp/off.json" "$tmp/on.json" "$budget_pct" <<'EOF'
import json
import sys

def min_real_time(path):
    raw = json.load(open(path))
    times = [b["real_time"] for b in raw.get("benchmarks", [])
             if b.get("run_type") == "iteration" and b.get("real_time")]
    if not times:
        sys.exit(f"telemetry gate: no BM_Flip/10 iterations in {path}")
    return min(times)

# Min over repetitions: the cleanest sample each build gets on a shared
# host. Means are dominated by scheduling noise, which on a loaded CI
# runner dwarfs the effect being measured.
off = min_real_time(sys.argv[1])
on = min_real_time(sys.argv[2])
budget = float(sys.argv[3]) / 100.0
overhead = on / off - 1.0
print(f"telemetry gate: BM_Flip/10 min real_time "
      f"OFF={off:.2f}ns ON(disabled)={on:.2f}ns overhead={overhead:+.2%} "
      f"(budget {budget:.0%})")
if overhead > budget:
    sys.exit(f"telemetry gate: FAIL — disabled-telemetry overhead "
             f"{overhead:+.2%} exceeds the {budget:.0%} budget")
print("telemetry gate: PASS")
EOF
