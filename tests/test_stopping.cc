// Statistical battery for the sequential stopping rules
// (campaign/stopping.h).
//
// The headline tests are Monte-Carlo coverage checks: a confidence
// sequence promises P(exists n: |mean_n - mu| > h_n) <= alpha
// *simultaneously over every n*, and we verify that promise empirically
// over thousands of simulated bounded iid streams instead of trusting
// the formula. A stream miscovers if the interval ever excludes the true
// mean at any prefix length; the observed miscoverage rate must stay
// below alpha plus a small binomial slack.
//
// SEG_STOPPING_CALIBRATE=1 prints the observed miscoverage rates (and
// the binomial standard errors) instead of asserting, in the style of
// SEG_STREAMING_STATS_CALIBRATE in test_streaming_stats.cc.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <vector>

#include "campaign/stopping.h"
#include "gtest/gtest.h"
#include "rng/splitmix64.h"

namespace seg {
namespace {

bool calibrating() {
  const char* env = std::getenv("SEG_STOPPING_CALIBRATE");
  return env != nullptr && env[0] == '1';
}

double uniform01(SplitMix64& rng) {
  return static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
}

// ---- coverage -----------------------------------------------------------

constexpr std::size_t kStreams = 2500;   // >= 2000 per the battery spec
constexpr std::size_t kHorizon = 512;    // prefix lengths checked per stream
constexpr double kAlpha = 0.05;
constexpr std::uint64_t kSeedBase = 0x5eedc0de;

enum class Stream { kUniform, kBernoulliQuarter, kSpiky };

// One bounded iid draw in [0, 1] with a known mean.
double draw(Stream kind, SplitMix64& rng, double* mu) {
  switch (kind) {
    case Stream::kUniform:
      *mu = 0.5;
      return uniform01(rng);
    case Stream::kBernoulliQuarter:
      *mu = 0.25;
      return uniform01(rng) < 0.25 ? 1.0 : 0.0;
    case Stream::kSpiky:
      // Mostly tiny values with rare unit spikes: high skew, the regime
      // where a naive (non-anytime) Bernstein bound undercovers.
      *mu = 0.05 * 1.0 + 0.95 * 0.02;
      return uniform01(rng) < 0.05 ? 1.0 : 0.02;
  }
  *mu = 0.5;
  return 0.5;
}

// Fraction of streams whose confidence sequence ever excludes the true
// mean within the horizon. Welford mirrors SequentialStopper's fold so
// the test exercises the same variance path the engine uses.
double miscoverage_rate(StopRule rule, Stream kind, std::uint64_t seed_base) {
  std::size_t missed = 0;
  for (std::size_t s = 0; s < kStreams; ++s) {
    SplitMix64 rng(mix_seed(seed_base, s));
    double mean = 0.0, m2 = 0.0, mu = 0.0;
    bool miss = false;
    for (std::size_t n = 1; n <= kHorizon && !miss; ++n) {
      const double v = draw(kind, rng, &mu);
      const double d = v - mean;
      mean += d / static_cast<double>(n);
      m2 += d * (v - mean);
      const double var = n > 1 ? m2 / static_cast<double>(n - 1) : 0.0;
      const double h =
          rule == StopRule::kBernstein
              ? empirical_bernstein_half_width(n, var, kAlpha, 1.0)
              : hoeffding_half_width(n, kAlpha, 1.0);
      miss = std::abs(mean - mu) > h;
    }
    missed += miss;
  }
  return static_cast<double>(missed) / static_cast<double>(kStreams);
}

// Binomial slack: even a perfectly calibrated alpha-rate would show
// sampling noise of sqrt(alpha (1 - alpha) / streams) ~ 0.0044; three
// sigma on top of alpha never trips on noise. In practice both bounds
// are conservative (union bound + alpha spending) and the observed rates
// sit far below alpha — run with SEG_STOPPING_CALIBRATE=1 to see them.
const double kCoverageBar =
    kAlpha + 3.0 * std::sqrt(kAlpha * (1.0 - kAlpha) /
                             static_cast<double>(kStreams));

class StoppingCoverage
    : public ::testing::TestWithParam<std::pair<StopRule, Stream>> {};

TEST_P(StoppingCoverage, AnytimeMiscoverageBelowAlpha) {
  const auto [rule, kind] = GetParam();
  if (calibrating()) {
    for (const std::uint64_t base : {kSeedBase, kSeedBase + 101,
                                     kSeedBase + 202}) {
      std::printf("// rule %s: base %llu -> miscoverage %.4f (bar %.4f)\n",
                  stop_rule_name(rule),
                  static_cast<unsigned long long>(base),
                  miscoverage_rate(rule, kind, base), kCoverageBar);
    }
    GTEST_SKIP() << "calibration run";
  }
  EXPECT_LT(miscoverage_rate(rule, kind, kSeedBase), kCoverageBar)
      << stop_rule_name(rule)
      << " confidence sequence miscovers above alpha";
}

INSTANTIATE_TEST_SUITE_P(
    Rules, StoppingCoverage,
    ::testing::Values(
        std::make_pair(StopRule::kHoeffding, Stream::kUniform),
        std::make_pair(StopRule::kHoeffding, Stream::kBernoulliQuarter),
        std::make_pair(StopRule::kBernstein, Stream::kUniform),
        std::make_pair(StopRule::kBernstein, Stream::kBernoulliQuarter),
        std::make_pair(StopRule::kBernstein, Stream::kSpiky)));

// A stopped point's reported interval must cover the true mean at the
// stopping time with the same guarantee — stopping is an "exists n"
// event, exactly what anytime validity insures against.
TEST(StoppingCoverage, CoverageHoldsAtTheStoppingTime) {
  StopConfig config;
  config.rule = StopRule::kBernstein;
  config.delta = 0.15;
  config.alpha = kAlpha;
  config.min_replicas = 2;
  // Longer horizon than the coverage sweep: at delta = 0.15 on a
  // Bernoulli(0.25) stream the Bernstein rule fires around n ~ 900.
  constexpr std::size_t kStopHorizon = 2048;
  std::size_t stopped = 0, missed = 0;
  for (std::size_t s = 0; s < kStreams; ++s) {
    SplitMix64 rng(mix_seed(kSeedBase + 777, s));
    SequentialStopper st(config);
    double mu = 0.0;
    for (std::size_t n = 0; n < kStopHorizon; ++n) {
      if (st.observe(draw(Stream::kBernoulliQuarter, rng, &mu))) break;
    }
    if (!st.fired()) continue;
    ++stopped;
    missed += std::abs(st.mean() - mu) > st.bound_at_stop();
  }
  ASSERT_GT(stopped, kStreams / 2) << "stopper barely fired; test is vacuous";
  EXPECT_LT(static_cast<double>(missed) / static_cast<double>(stopped),
            kCoverageBar);
}

// ---- unit pins ----------------------------------------------------------

TEST(StoppingBounds, HoeffdingMonotoneDecreasingInN) {
  double prev = std::numeric_limits<double>::infinity();
  for (std::size_t n = 1; n <= 4096; n *= 2) {
    const double h = hoeffding_half_width(n, 0.05, 1.0);
    EXPECT_LT(h, prev) << "half-width must shrink with n (n=" << n << ")";
    EXPECT_GT(h, 0.0);
    prev = h;
  }
}

TEST(StoppingBounds, BernsteinMonotoneDecreasingInNAtFixedVariance) {
  for (const double var : {0.0, 1e-4, 0.25}) {
    double prev = std::numeric_limits<double>::infinity();
    for (std::size_t n = 1; n <= 4096; n *= 2) {
      const double h = empirical_bernstein_half_width(n, var, 0.05, 1.0);
      EXPECT_LT(h, prev) << "var=" << var << " n=" << n;
      prev = h;
    }
  }
}

TEST(StoppingBounds, BernsteinBeatsHoeffdingAtLowVariance) {
  // The variance-adaptive bound is the whole point of the adaptive
  // engine. Its 3 range x / n linear term keeps it above Hoeffding's
  // sqrt(x / 2n) for small n regardless of variance (the crossover is
  // n ~ 18 x ~ 300 at these alphas); past it, a low-variance stream's
  // EB width collapses while Hoeffding's barely moves.
  const double eb = empirical_bernstein_half_width(512, 1e-6, 0.05, 1.0);
  const double hf = hoeffding_half_width(512, 0.05, 1.0);
  EXPECT_LT(eb, hf);
  EXPECT_LT(empirical_bernstein_half_width(2048, 1e-6, 0.05, 1.0),
            0.5 * hoeffding_half_width(2048, 0.05, 1.0));
}

TEST(StoppingBounds, WidthsScaleWithTheDeclaredRange) {
  const double h1 = hoeffding_half_width(64, 0.05, 1.0);
  const double h10 = hoeffding_half_width(64, 0.05, 10.0);
  EXPECT_DOUBLE_EQ(h10, 10.0 * h1);
}

TEST(StoppingBounds, DegenerateInputs) {
  EXPECT_TRUE(std::isinf(hoeffding_half_width(0, 0.05, 1.0)));
  EXPECT_TRUE(std::isinf(empirical_bernstein_half_width(0, 0.0, 0.05, 1.0)));
  // Single sample: finite but far too wide to fire any sane delta.
  EXPECT_GT(hoeffding_half_width(1, 0.05, 1.0), 1.0);
  // Negative variance (numerical fuzz from Welford) is clamped, not NaN.
  const double h = empirical_bernstein_half_width(8, -1e-18, 0.05, 1.0);
  EXPECT_FALSE(std::isnan(h));
  EXPECT_GT(h, 0.0);
}

TEST(StoppingBounds, AlphaSpendingTelescopesToAlpha) {
  // sum_n alpha / (n (n+1)) = alpha; the partial sums must approach it
  // from below — that is the whole union-bound budget.
  double spent = 0.0;
  for (std::size_t n = 1; n <= 100000; ++n) spent += anytime_alpha(n, 0.05);
  EXPECT_LT(spent, 0.05);
  EXPECT_GT(spent, 0.05 * 0.99998);
}

TEST(SequentialStopperTest, ZeroVarianceStreamStopsEarlyUnderBernstein) {
  StopConfig config;
  config.rule = StopRule::kBernstein;
  config.delta = 0.05;
  config.alpha = 0.05;
  config.min_replicas = 2;
  SequentialStopper st(config);
  std::size_t fired_at = 0;
  for (std::size_t n = 1; n <= 4096; ++n) {
    if (st.observe(0.3)) {
      fired_at = n;
      break;
    }
  }
  ASSERT_GT(fired_at, 0u) << "identical replicas must fire the rule";
  // With zero variance only the 3 range x / n term remains, which needs
  // n ~ 60 x ~ 1100 at delta = 0.05 — well under the ~3500 a Hoeffding
  // stopper would need for the same width.
  EXPECT_LE(fired_at, 2048u);
  EXPECT_DOUBLE_EQ(st.mean(), 0.3);
  EXPECT_DOUBLE_EQ(st.variance(), 0.0);
  EXPECT_LE(st.bound_at_stop(), config.delta);
}

TEST(SequentialStopperTest, RespectsMinReplicasFloor) {
  StopConfig config;
  config.rule = StopRule::kHoeffding;
  config.delta = 10.0;  // fires on the first allowed observation
  config.min_replicas = 5;
  SequentialStopper st(config);
  for (std::size_t n = 1; n < 5; ++n) {
    EXPECT_FALSE(st.observe(0.5)) << "fired below the min_replicas floor";
  }
  EXPECT_TRUE(st.observe(0.5));
  EXPECT_EQ(st.count(), 5u);
}

TEST(SequentialStopperTest, FiresExactlyOnceAndIgnoresLaterValues) {
  StopConfig config;
  config.rule = StopRule::kHoeffding;
  config.delta = 10.0;
  config.min_replicas = 2;
  SequentialStopper st(config);
  EXPECT_FALSE(st.observe(0.1));
  EXPECT_TRUE(st.observe(0.2));
  const double bound = st.bound_at_stop();
  const double mean = st.mean();
  EXPECT_FALSE(st.observe(0.9));  // ignored: already fired
  EXPECT_EQ(st.count(), 2u);
  EXPECT_DOUBLE_EQ(st.mean(), mean);
  EXPECT_DOUBLE_EQ(st.bound_at_stop(), bound);
}

TEST(SequentialStopperTest, RuleNoneNeverFires) {
  StopConfig config;  // rule = kNone
  SequentialStopper st(config);
  for (std::size_t n = 0; n < 1000; ++n) {
    EXPECT_FALSE(st.observe(0.5));
  }
  EXPECT_FALSE(st.fired());
  EXPECT_TRUE(std::isinf(st.half_width()));
}

TEST(SequentialStopperTest, PassRateDecidesSideOfThreshold) {
  StopConfig config;
  config.rule = StopRule::kPassRate;
  config.delta = 0.01;  // too tight to pin; the side decision must fire
  config.alpha = 0.05;
  config.min_replicas = 2;
  config.threshold = 0.5;
  SequentialStopper st(config);
  std::size_t fired_at = 0;
  for (std::size_t n = 1; n <= 4096; ++n) {
    if (st.observe(1.0)) {  // every outcome passes
      fired_at = n;
      break;
    }
  }
  ASSERT_GT(fired_at, 0u);
  // Fired because mean - h > threshold, not because h <= delta.
  EXPECT_GT(st.bound_at_stop(), config.delta);
  EXPECT_GT(st.mean() - st.bound_at_stop(), config.threshold);
}

TEST(StopDecisionTest, TraceHashIsOrderAndBitSensitive) {
  const StopDecision a{3, 17, StopRule::kBernstein, 0.043};
  const StopDecision b{5, 9, StopRule::kBernstein, 0.051};
  EXPECT_NE(decision_trace_hash({a, b}), decision_trace_hash({b, a}));
  StopDecision a2 = a;
  a2.bound = std::nextafter(a.bound, 1.0);
  EXPECT_FALSE(a == a2);
  EXPECT_NE(decision_trace_hash({a, b}), decision_trace_hash({a2, b}));
  EXPECT_EQ(decision_trace_hash({a, b}), decision_trace_hash({a, b}));
}

TEST(StopRuleTest, NamesRoundTrip) {
  for (const StopRule rule : {StopRule::kNone, StopRule::kHoeffding,
                              StopRule::kBernstein, StopRule::kPassRate}) {
    StopRule parsed;
    ASSERT_TRUE(parse_stop_rule(stop_rule_name(rule), &parsed));
    EXPECT_EQ(parsed, rule);
  }
  StopRule parsed;
  EXPECT_FALSE(parse_stop_rule("bogus", &parsed));
}

}  // namespace
}  // namespace seg
