// Live campaign progress: a periodic reporter that renders a one-line
// status to stderr (in-place when stderr is a TTY) and appends
// machine-readable JSON lines to a progress file.
//
// The reporter owns a ticker thread that wakes every interval and
// samples (a) the replica completion counters fed through callback() —
// wired to CampaignOptions::progress, which fires under the campaign
// engine lock, so the callback only touches atomics — and (b) the
// telemetry registry: engine flip counters for flips/sec, the
// per-worker pool busy counters for utilization, the sharded
// conflict-queue gauge, and the live streaming-observable gauges
// (magnetization / clusters / interface) that analysis/streaming
// publishes on every sample. ETA extrapolates the replica completion
// rate over the remaining replicas.
//
// Each JSONL record:
//   {"t": seconds_since_start, "done": N, "total": N,
//    "replicas_per_s": R, "flips_per_s": F, "eta_s": E,
//    "workers": [u0, u1, ...],            // busy fraction per worker
//    "conflict_queue_depth": D,           // sharded runs, else 0
//    "streaming": {"magnetization": M, "clusters": C, "interface": I},
//    "adaptive": {"open_points": P, "max_ci_half_width": W}}  // opt-in
//
// The "adaptive" object (and an "open P" status-line segment) appears
// when ProgressOptions::adaptive is set: the reporter then samples the
// campaign engine's live stopping gauges — campaign.open_points and
// campaign.max_ci_half_width_ppm (widest confidence interval over the
// still-open points, in parts-per-million of the metric range).
//
// A final record (and status line) is always emitted by finish(), so a
// zero-replica or faster-than-interval run still produces output.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

namespace seg::obs {

struct ProgressOptions {
  double interval_s = 1.0;    // ticker period
  std::string jsonl_path;     // empty: no progress file
  bool stderr_line = true;    // render the status line
  // TTY detection override for tests: 0 = auto (isatty(stderr)),
  // 1 = force carriage-return in-place line, -1 = force full lines.
  int force_tty = 0;
  // Worker-utilization counter prefix in the telemetry registry; the
  // campaign pool publishes under "pool.campaign.worker.".
  std::string worker_prefix = "pool.campaign.worker.";
  // Sample the adaptive-campaign stopping gauges (open points / widest
  // CI) into each record and the status line.
  bool adaptive = false;
};

class ProgressReporter {
 public:
  // `total` is the campaign's replica count (points x replicas).
  ProgressReporter(std::size_t total, ProgressOptions options = {});
  ~ProgressReporter();  // implies finish()
  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;

  // Thread-safe completion update; shaped for CampaignOptions::progress.
  void replica_done(std::size_t done, std::size_t total);
  std::function<void(std::size_t, std::size_t)> callback();

  // Stops the ticker and emits the final record + status line.
  // Idempotent.
  void finish();

  // Number of JSONL records written (tests).
  std::size_t records_written() const;

  // The most recent JSONL record as a JSON object string (no trailing
  // newline), or "{}" before the first emission. Built on every tick
  // whether or not a progress file is open — this is what the metrics
  // endpoint serves as GET /progress. Thread-safe.
  std::string latest_record() const;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace seg::obs
