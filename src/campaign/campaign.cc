#include "campaign/campaign.h"

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>

#include "campaign/checkpoint.h"
#include "campaign/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "rng/splitmix64.h"
#include "util/thread_pool.h"

namespace seg {

const RunningStats* CampaignResult::stats_for(
    std::size_t point_index, const std::string& metric) const {
  if (point_index >= points.size()) return nullptr;
  for (std::size_t m = 0; m < metric_names.size(); ++m) {
    if (metric_names[m] == metric) return &points[point_index].stats[m];
  }
  return nullptr;
}

std::uint64_t derive_replica_seed(std::uint64_t campaign_seed,
                                  std::size_t global_index) {
  return mix_seed(campaign_seed,
                  static_cast<std::uint64_t>(global_index));
}

namespace {

// Campaign identity for checkpoints: the spec hash alone is not enough
// because callers (e.g. the region_size built-in) may adjust the expanded
// points after expand_grid; hash what will actually run.
std::uint64_t campaign_identity(const ScenarioSpec& spec,
                                const std::vector<ScenarioPoint>& points) {
  std::uint64_t h = spec.hash();
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;  // FNV-1a prime
    }
  };
  auto mix_double = [&mix](double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    mix(bits);
  };
  for (const ScenarioPoint& pt : points) {
    mix(static_cast<std::uint64_t>(pt.params.n));
    mix(static_cast<std::uint64_t>(pt.params.w));
    mix_double(pt.params.tau);
    mix_double(pt.params.tau_minus);
    mix_double(pt.params.p);
    mix(static_cast<std::uint64_t>(pt.params.shape));
    mix(static_cast<std::uint64_t>(pt.dynamics));
  }
  return h;
}

// Caller-supplied metric names define the column layout of the checkpoint
// rows, so they are part of the identity too (spec.metrics may differ
// from them for custom-replica campaigns).
std::uint64_t metrics_identity(std::uint64_t h,
                               const std::vector<std::string>& names) {
  for (const std::string& name : names) {
    for (const char c : name) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ULL;
    }
    h ^= 0xff;  // separator so {"ab","c"} != {"a","bc"}
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Shared mutable state of one engine run. `mutex` guards done / values /
// the counters; `checkpoint_mutex` guards `checkpoint` and serializes
// writers so file I/O happens outside `mutex`.
struct EngineState {
  std::mutex mutex;
  std::mutex checkpoint_mutex;
  std::vector<std::uint8_t> done;
  std::vector<std::vector<double>> values;
  std::size_t fresh_done = 0;       // completed in this run
  std::size_t since_checkpoint = 0;
  std::atomic<bool> stop{false};
  // Accumulated snapshot written to disk; rows are added incrementally as
  // replicas complete, so a write never copies more than the delta.
  CheckpointData checkpoint;
  bool checkpoint_write_failed = false;  // guarded by checkpoint_mutex
};

// Folds newly completed rows into the persistent snapshot and writes it.
// Only the done-flag byte vector is copied under the engine mutex; a row
// published there is immutable afterwards, so its values are copied
// outside the lock and workers never wait on the copy or the disk.
// checkpoint_mutex is taken first and never inside `mutex`.
void write_checkpoint(const std::string& path, EngineState& state) {
  SEG_TRACE_SPAN("checkpoint_write");
  SEG_COUNT("campaign.checkpoints", 1);
  std::lock_guard<std::mutex> io_lock(state.checkpoint_mutex);
  std::vector<std::uint8_t> done_now;
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    done_now = state.done;
  }
  CheckpointData& ck = state.checkpoint;
  for (std::size_t g = 0; g < done_now.size(); ++g) {
    if (done_now[g] && !ck.done[g]) {
      ck.values[g] = state.values[g];
      ck.done[g] = 1;
    }
  }
  if (!save_checkpoint(path, ck)) {
    if (!state.checkpoint_write_failed) {
      std::fprintf(stderr,
                   "warning: failed to write campaign checkpoint %s\n",
                   path.c_str());
    }
    state.checkpoint_write_failed = true;
  }
}

}  // namespace

CampaignResult run_campaign(const ScenarioSpec& spec,
                            const std::vector<ScenarioPoint>& points,
                            const std::vector<std::string>& metric_names,
                            const ReplicaFn& replica, std::uint64_t seed,
                            const CampaignOptions& options) {
  const std::size_t replicas = spec.replicas;
  const std::size_t metric_count = metric_names.size();
  const std::size_t total = points.size() * replicas;
  const std::uint64_t identity =
      metrics_identity(campaign_identity(spec, points), metric_names);

  EngineState state;
  state.done.assign(total, 0);
  state.values.assign(total, {});

  std::size_t resumed = 0;
  if (options.resume && !options.checkpoint_path.empty()) {
    CheckpointData ck;
    if (load_checkpoint(options.checkpoint_path, &ck) && ck.seed == seed &&
        ck.spec_hash == identity && ck.done.size() == total &&
        ck.metric_count == metric_count) {
      state.done = std::move(ck.done);
      state.values = std::move(ck.values);
      resumed = 0;
      for (const std::uint8_t d : state.done) resumed += d != 0;
    }
  }
  state.checkpoint.seed = seed;
  state.checkpoint.spec_hash = identity;
  state.checkpoint.metric_count = metric_count;
  state.checkpoint.done = state.done;      // resumed rows seed the snapshot
  state.checkpoint.values = state.values;

  std::vector<std::size_t> pending;
  pending.reserve(total - resumed);
  for (std::size_t g = 0; g < total; ++g) {
    if (!state.done[g]) pending.push_back(g);
  }

  auto run_one = [&](std::size_t g) {
    const ScenarioPoint& point = points[g / replicas];
    std::vector<double> row;
    {
      SEG_TRACE_SPAN("replica");
      // Replicas are whole simulations; the two clock reads bounding one
      // are noise, but skip even those unless telemetry is live.
      if (obs::enabled()) {
        using Clock = std::chrono::steady_clock;
        const Clock::time_point start = Clock::now();
        row = replica(point, g % replicas, derive_replica_seed(seed, g));
        const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                            Clock::now() - start)
                            .count();
        SEG_HISTOGRAM("campaign.replica_us", us);
      } else {
        row = replica(point, g % replicas, derive_replica_seed(seed, g));
      }
    }
    SEG_COUNT("campaign.replicas_done", 1);
    assert(row.size() == metric_count && "replica returned a wrong-width row");
    row.resize(metric_count, 0.0);
    bool checkpoint_due = false;
    {
      std::lock_guard<std::mutex> lock(state.mutex);
      state.values[g] = std::move(row);
      state.done[g] = 1;
      ++state.fresh_done;
      if (options.stop_after > 0 && state.fresh_done >= options.stop_after) {
        state.stop.store(true, std::memory_order_relaxed);
      }
      if (options.progress) {
        options.progress(resumed + state.fresh_done, total);
      }
      if (!options.checkpoint_path.empty() &&
          ++state.since_checkpoint >= options.checkpoint_every) {
        state.since_checkpoint = 0;
        checkpoint_due = true;
      }
    }
    if (checkpoint_due) {
      write_checkpoint(options.checkpoint_path, state);
    }
  };

  if (options.threads == 1) {
    for (const std::size_t g : pending) {
      if (state.stop.load(std::memory_order_relaxed)) break;
      run_one(g);
    }
  } else if (!pending.empty()) {
    ThreadPool pool(options.threads, "campaign");
    for (const std::size_t g : pending) {
      pool.submit([&, g] {
        if (state.stop.load(std::memory_order_relaxed)) return;
        run_one(g);
      });
    }
    pool.wait_idle();
  }

  if (!options.checkpoint_path.empty()) {
    write_checkpoint(options.checkpoint_path, state);
  }

  // Deterministic fold: global replica order, independent of which thread
  // produced each row and of any checkpoint/resume boundary.
  CampaignResult result;
  result.seed = seed;
  result.metric_names = metric_names;
  result.points.resize(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    result.points[i].point = points[i];
    result.points[i].stats.resize(metric_count);
  }
  std::size_t done_total = 0;
  for (std::size_t g = 0; g < total; ++g) {
    if (!state.done[g]) continue;
    ++done_total;
    PointResult& pr = result.points[g / replicas];
    for (std::size_t m = 0; m < metric_count; ++m) {
      pr.stats[m].add(state.values[g][m]);
    }
  }
  result.replicas_done = done_total;
  result.replicas_resumed = resumed;
  result.complete = done_total == total;
  result.checkpoint_write_failed = state.checkpoint_write_failed;
  return result;
}

CampaignResult run_campaign(const ScenarioSpec& spec, std::uint64_t seed,
                            const CampaignOptions& options) {
  return run_campaign(spec, expand_grid(spec), expand_metric_names(spec.metrics),
                      make_schelling_replica(spec), seed, options);
}

}  // namespace seg
