#include "analysis/clusters.h"

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "core/model.h"
#include "grid/point.h"
#include "rng/rng.h"

namespace seg {
namespace {

TEST(Clusters, UniformGridIsOneCluster) {
  const int n = 6;
  std::vector<std::int8_t> spins(n * n, 1);
  const auto stats = cluster_stats(spins, n);
  EXPECT_EQ(stats.cluster_count, 1u);
  EXPECT_EQ(stats.largest_cluster, n * n);
  EXPECT_EQ(stats.interface_length, 0);
}

TEST(Clusters, CheckerboardIsAllSingletons) {
  const int n = 6;  // even: checkerboard is consistent on the torus
  std::vector<std::int8_t> spins(n * n);
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      spins[y * n + x] = ((x + y) % 2 == 0) ? 1 : -1;
    }
  }
  const auto stats = cluster_stats(spins, n);
  EXPECT_EQ(stats.cluster_count, static_cast<std::size_t>(n * n));
  EXPECT_EQ(stats.largest_cluster, 1);
  // Every one of the 2 n^2 (right, down) adjacencies crosses types.
  EXPECT_EQ(stats.interface_length, 2 * n * n);
}

TEST(Clusters, TwoHalvesOnTorus) {
  const int n = 8;
  std::vector<std::int8_t> spins(n * n);
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      spins[y * n + x] = (x < n / 2) ? 1 : -1;
    }
  }
  const auto stats = cluster_stats(spins, n);
  EXPECT_EQ(stats.cluster_count, 2u);
  EXPECT_EQ(stats.largest_cluster, n * n / 2);
  // Two vertical boundaries of length n each (one at n/2, one wrapped).
  EXPECT_EQ(stats.interface_length, 2 * n);
}

TEST(Clusters, LabelsPartitionTheGrid) {
  const int n = 12;
  Rng rng(3);
  std::vector<std::int8_t> spins(n * n);
  for (auto& s : spins) s = rng.bernoulli(0.5) ? 1 : -1;
  const auto labels = label_clusters(spins, n);
  ASSERT_EQ(labels.label.size(), spins.size());
  const std::int64_t total =
      std::accumulate(labels.size.begin(), labels.size.end(),
                      std::int64_t{0});
  EXPECT_EQ(total, static_cast<std::int64_t>(spins.size()));
  // Adjacent same-spin sites share labels; opposite spins never do.
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      const std::size_t i = static_cast<std::size_t>(y) * n + x;
      const std::size_t right =
          static_cast<std::size_t>(y) * n + torus_wrap(x + 1, n);
      if (spins[i] == spins[right]) {
        EXPECT_EQ(labels.label[i], labels.label[right]);
      } else {
        EXPECT_NE(labels.label[i], labels.label[right]);
      }
    }
  }
}

TEST(Clusters, WrappingClusterJoinsAcrossSeam) {
  const int n = 5;
  std::vector<std::int8_t> spins(n * n, -1);
  // A horizontal stripe through the seam.
  for (int x = 0; x < n; ++x) spins[2 * n + x] = 1;
  const auto labels = label_clusters(spins, n);
  EXPECT_EQ(labels.label[2 * n + 0], labels.label[2 * n + (n - 1)]);
}

TEST(Segregated, DetectsCompleteSegregation) {
  EXPECT_TRUE(completely_segregated(std::vector<std::int8_t>(9, 1)));
  EXPECT_TRUE(completely_segregated(std::vector<std::int8_t>(9, -1)));
  std::vector<std::int8_t> mixed(9, 1);
  mixed[4] = -1;
  EXPECT_FALSE(completely_segregated(mixed));
}

TEST(Segregated, MajorityFraction) {
  std::vector<std::int8_t> spins(10, 1);
  EXPECT_DOUBLE_EQ(majority_fraction(spins), 1.0);
  for (int i = 0; i < 5; ++i) spins[i] = -1;
  EXPECT_DOUBLE_EQ(majority_fraction(spins), 0.5);
  spins[0] = 1;
  EXPECT_DOUBLE_EQ(majority_fraction(spins), 0.6);
}

TEST(Clusters, ModelOverloadAgrees) {
  ModelParams p{.n = 10, .w = 1, .tau = 0.4, .p = 0.5};
  Rng rng(9);
  SchellingModel m(p, rng);
  const auto a = cluster_stats(m);
  const auto b = cluster_stats(m.spins(), m.side());
  EXPECT_EQ(a.cluster_count, b.cluster_count);
  EXPECT_EQ(a.largest_cluster, b.largest_cluster);
  EXPECT_EQ(a.interface_length, b.interface_length);
}

}  // namespace
}  // namespace seg
