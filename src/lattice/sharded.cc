#include "lattice/sharded.h"

#include <cassert>

#include "obs/telemetry.h"

namespace seg {

namespace {

// Layout telemetry: shard count and boundary-site volume, the two
// numbers that predict conflict-queue pressure (every boundary draw
// defers to phase B). Boundary sites = rows-boundary union cols-boundary.
void publish_layout_gauges(const std::vector<std::uint8_t>& row_boundary,
                           const std::vector<std::uint8_t>& col_boundary,
                           int n, int shards) {
  std::int64_t rows = 0, cols = 0;
  for (const std::uint8_t b : row_boundary) rows += b;
  for (const std::uint8_t b : col_boundary) cols += b;
  const std::int64_t sites = rows * n + cols * n - rows * cols;
  SEG_GAUGE_SET("sharded.shards", shards);
  SEG_GAUGE_SET("sharded.boundary_sites", sites);
}

}  // namespace

std::vector<int> ShardLayout::band_starts(int n, int bands) {
  // Band b covers [b*n/bands, (b+1)*n/bands): heights differ by at most 1.
  std::vector<int> starts(static_cast<std::size_t>(bands) + 1);
  for (int b = 0; b <= bands; ++b) {
    starts[b] = static_cast<int>(static_cast<std::int64_t>(b) * n / bands);
  }
  return starts;
}

void ShardLayout::classify_axis(int n, int w, int bands,
                                std::vector<std::uint32_t>* band_of,
                                std::vector<std::uint8_t>* boundary) {
  band_of->assign(static_cast<std::size_t>(n), 0);
  boundary->assign(static_cast<std::size_t>(n), 0);
  if (bands == 1) return;  // whole ring: nothing to cross, no boundary
  const std::vector<int> starts = band_starts(n, bands);
  for (int b = 0; b < bands; ++b) {
    const int lo = starts[b];
    const int hi = starts[b + 1];  // exclusive
    for (int y = lo; y < hi; ++y) {
      (*band_of)[y] = static_cast<std::uint32_t>(b);
      // Within w of either cut: the radius-w window leaves the band.
      (*boundary)[y] = (y - lo < w) || (hi - 1 - y < w);
    }
  }
}

ShardLayout ShardLayout::stripes(int n, int w, int shards) {
  assert(n > 0 && w >= 1);
  if (shards < 1) shards = 1;
  if (shards > n) shards = n;
  ShardLayout layout;
  layout.n_ = n;
  layout.w_ = w;
  layout.shard_count_ = shards;
  layout.row_bands_ = shards;
  layout.col_bands_ = 1;
  layout.mode_ = ShardMode::kStripes;
  classify_axis(n, w, shards, &layout.row_shard_, &layout.row_boundary_);
  layout.col_shard_.assign(static_cast<std::size_t>(n), 0);
  layout.col_boundary_.assign(static_cast<std::size_t>(n), 0);
  publish_layout_gauges(layout.row_boundary_, layout.col_boundary_, n,
                        shards);
  return layout;
}

ShardLayout ShardLayout::checkerboard(int n, int w, int rows, int cols) {
  assert(n > 0 && w >= 1);
  if (rows < 1) rows = 1;
  if (rows > n) rows = n;
  if (cols < 1) cols = 1;
  if (cols > n) cols = n;
  ShardLayout layout;
  layout.n_ = n;
  layout.w_ = w;
  layout.shard_count_ = rows * cols;
  layout.row_bands_ = rows;
  layout.col_bands_ = cols;
  layout.mode_ = ShardMode::kCheckerboard;
  classify_axis(n, w, rows, &layout.row_shard_, &layout.row_boundary_);
  classify_axis(n, w, cols, &layout.col_shard_, &layout.col_boundary_);
  // Premultiply the row band so shard_of is row_shard_[y] + col_shard_[x].
  for (auto& band : layout.row_shard_) {
    band = static_cast<std::uint32_t>(band) * static_cast<std::uint32_t>(cols);
  }
  publish_layout_gauges(layout.row_boundary_, layout.col_boundary_, n,
                        rows * cols);
  return layout;
}

std::pair<std::uint32_t, std::uint32_t> ShardLayout::id_window(
    int shard) const {
  if (trivial()) return {0, 0};  // caller sizes to the full lattice
  const std::vector<int> starts = band_starts(n_, row_bands_);
  const int row_band = shard / col_bands_;
  const auto base = static_cast<std::uint32_t>(
      static_cast<std::size_t>(starts[row_band]) * n_);
  const auto end = static_cast<std::uint32_t>(
      static_cast<std::size_t>(starts[row_band + 1]) * n_);
  return {base, end - base};
}

bool ShardLayout::splits_aligned_columns(int block) const {
  if (trivial() || col_bands_ == 1) return false;
  for (int x = 1; x < n_; ++x) {
    if (x % block != 0 && col_shard_[x] != col_shard_[x - 1]) return true;
  }
  return false;
}

std::size_t ShardLayout::boundary_site_count() const {
  if (trivial()) return 0;
  std::size_t boundary_rows = 0, boundary_cols = 0;
  for (const std::uint8_t b : row_boundary_) boundary_rows += b;
  for (const std::uint8_t b : col_boundary_) boundary_cols += b;
  const auto n = static_cast<std::size_t>(n_);
  // Inclusion-exclusion over the row-band and column-band cuts.
  return boundary_rows * n + boundary_cols * n -
         boundary_rows * boundary_cols;
}

}  // namespace seg
