// PERC — the two percolation theorems the paper leans on:
//
// (Thm 4, Garet-Marchand): supercritical chemical distance. The stretch
// D(0,x)/||x||_1 concentrates near a constant that tends to 1 as p -> 1;
// the probability of a (1+alpha)-stretch decays exponentially. We sweep p
// above criticality and report mean stretch and the tail frequency.
//
// (Thm 5, Grimmett 5.4): subcritical cluster-radius decay. We estimate
// P(radius >= k) at sub-critical p and fit the exponential decay rate
// psi(p); the fit should be near-linear in k on a log scale and steeper
// for smaller p.
//
// Both sweeps are built-in campaigns (`percolation_stretch` and
// `percolation_radius`) run through the campaign engine with custom
// replica functions over percolation/; each replica draws its own field
// from its derived stream, so the sweep parallelizes deterministically.
#include <cmath>
#include <cstdio>
#include <vector>

#include "campaign/builtin.h"
#include "io/table.h"
#include "percolation/field.h"
#include "util/args.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  const seg::ArgParser args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 31));
  const auto threads = static_cast<std::size_t>(args.get_int("threads", 1));

  std::printf("== Theorem 4 (chemical distance, supercritical) ==\n");
  const int L = static_cast<int>(args.get_int("L", 192));
  const auto pair_trials =
      static_cast<std::size_t>(args.get_int("pairs", 24));

  seg::BuiltinCampaign stretch;
  seg::make_builtin_campaign("percolation_stretch",
                             {.n = L, .replicas = pair_trials}, &stretch);
  seg::CampaignOptions options;
  options.threads = threads;
  const seg::CampaignResult stretch_result =
      seg::run_campaign(stretch.spec, stretch.points, stretch.metric_names,
                        stretch.replica, seed, options);

  seg::TablePrinter t4({"p", "connected", "mean stretch",
                        "P(stretch >= 1.25)"});
  for (std::size_t pi = 0; pi < stretch.spec.p.size(); ++pi) {
    // The indicator sums come back as mean * count, which is inexact;
    // round back to the true integer count.
    const auto connected = static_cast<double>(
        std::llround(stretch_result.stats_for(pi, "connected")->sum()));
    const double stretch_sum =
        stretch_result.stats_for(pi, "stretch")->sum();
    const double tail_sum = stretch_result.stats_for(pi, "tail_125")->sum();
    t4.new_row()
        .add(stretch.spec.p[pi], 2)
        .add(static_cast<std::int64_t>(connected))
        .add(connected > 0 ? stretch_sum / connected : 0.0, 4)
        .add(connected > 0 ? tail_sum / connected : 0.0, 3);
  }
  t4.print();
  std::printf("expected shape: stretch decreasing toward 1 and the 1.25-"
              "tail vanishing as p grows.\n\n");

  std::printf("== Theorem 5 (cluster-radius decay, subcritical) ==\n");
  const int Lsub = static_cast<int>(args.get_int("Lsub", 61));
  const auto radius_trials =
      static_cast<std::size_t>(args.get_int("radius_trials", 400));

  seg::BuiltinCampaign radius;
  seg::make_builtin_campaign("percolation_radius",
                             {.n = Lsub, .replicas = radius_trials},
                             &radius);
  const seg::CampaignResult radius_result =
      seg::run_campaign(radius.spec, radius.points, radius.metric_names,
                        radius.replica, seed + 7, options);

  seg::TablePrinter t5({"p", "P(r>=2)", "P(r>=4)", "P(r>=8)", "P(r>=16)",
                        "decay rate psi"});
  const std::vector<int> ks{2, 4, 8, 16};
  for (std::size_t pi = 0; pi < radius.spec.p.size(); ++pi) {
    const double open_draws = radius_result.stats_for(pi, "open")->sum();
    t5.new_row().add(radius.spec.p[pi], 2);
    std::vector<double> xs, logs;
    for (std::size_t i = 0; i < ks.size(); ++i) {
      const std::string metric = "r_ge_" + std::to_string(ks[i]);
      const double hits = radius_result.stats_for(pi, metric)->sum();
      const double frac = open_draws > 0 ? hits / open_draws : 0.0;
      t5.add(frac, 4);
      if (frac > 0) {
        xs.push_back(ks[i]);
        logs.push_back(std::log(frac));
      }
    }
    const seg::LinearFit fit = seg::fit_line(xs, logs);
    t5.add(-fit.slope, 4);
  }
  t5.print();
  std::printf("expected shape: exponential tails, with the decay rate psi "
              "decreasing as p approaches p_c ~ %.3f from below.\n",
              seg::kSiteCriticalP);
  return 0;
}
