#include "firewall/expansion.h"

#include <algorithm>

namespace seg {

bool placement_makes_minus_unhappy(const SchellingModel& model,
                                   Point block_center, int block_r,
                                   Point agent) {
  const int w = model.horizon();
  const int n = model.side();
  // Same-type count of the (-1) agent after the hypothetical placement:
  // start from its current count and subtract the (-1) sites of its
  // neighborhood that the block overwrites with (+1).
  const std::uint32_t id = model.id_of(agent.x, agent.y);
  std::int32_t same = model.same_count(id);
  for (int dy = -w; dy <= w; ++dy) {
    for (int dx = -w; dx <= w; ++dx) {
      const Point p{agent.x + dx, agent.y + dy};
      if (torus_linf(p, block_center, n) > block_r) continue;
      if (model.spin_at(p.x, p.y) < 0) --same;
    }
  }
  // The agent itself is outside the block (callers place it on the
  // boundary ring), so its own contribution (+1 to same) is untouched.
  return same < model.happy_threshold_of(-1);
}

ExpansionRegionReport check_region_of_expansion(const SchellingModel& model,
                                                Point center, int region_r) {
  const int n = model.side();
  const int block_r = std::max(1, model.horizon() / 2);
  ExpansionRegionReport report;
  report.is_region_of_expansion = true;
  for (int dy = -region_r; dy <= region_r; ++dy) {
    for (int dx = -region_r; dx <= region_r; ++dx) {
      const Point block_center{torus_wrap(center.x + dx, n),
                               torus_wrap(center.y + dy, n)};
      ++report.placements_tested;
      // Boundary ring: sites at l-infinity distance exactly block_r + 1.
      const int ring = block_r + 1;
      bool placement_ok = true;
      for (int by = -ring; by <= ring && placement_ok; ++by) {
        for (int bx = -ring; bx <= ring; ++bx) {
          if (std::max(std::abs(bx), std::abs(by)) != ring) continue;
          const Point agent{torus_wrap(block_center.x + bx, n),
                            torus_wrap(block_center.y + by, n)};
          if (model.spin_at(agent.x, agent.y) >= 0) continue;  // only (-1)
          if (!placement_makes_minus_unhappy(model, block_center, block_r,
                                             agent)) {
            placement_ok = false;
            break;
          }
        }
      }
      if (!placement_ok) {
        report.is_region_of_expansion = false;
        if (report.first_failure.x < 0) report.first_failure = block_center;
        return report;
      }
    }
  }
  return report;
}

}  // namespace seg
