// A halo-padded snapshot of a torus field: the n x n interior plus a
// `halo`-wide wrapped border copied around it. Window scans of radius up
// to `halo` then read contiguous rows with no torus_wrap or modulo in the
// inner loop — the read-side counterpart of the span decomposition in
// window.h, used by the firewall scanners that probe every center of the
// grid against the same immutable field.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

#include "grid/point.h"

namespace seg {

template <typename T>
class HaloField {
 public:
  // Snapshot of `torus` (row-major n x n) with the given halo width.
  // halo may be up to n; larger windows would revisit sites anyway.
  HaloField(const std::vector<T>& torus, int n, int halo)
      : n_(n), halo_(halo), stride_(n + 2 * halo) {
    assert(n > 0 && halo >= 0 && halo <= n);
    assert(torus.size() == static_cast<std::size_t>(n) * n);
    cells_.resize(static_cast<std::size_t>(stride_) * stride_);
    for (int py = 0; py < stride_; ++py) {
      const std::size_t src =
          static_cast<std::size_t>(torus_wrap(py - halo, n)) * n;
      T* dst = cells_.data() + static_cast<std::size_t>(py) * stride_;
      // Interior columns are a straight copy; the x halo wraps around.
      for (int px = 0; px < stride_; ++px) {
        dst[px] = torus[src + torus_wrap(px - halo, n)];
      }
    }
  }

  int side() const { return n_; }
  int halo() const { return halo_; }

  // Pointer to (0, y) of the logical torus row y; valid x offsets are
  // [-halo, n + halo). y itself may range over [-halo, n + halo).
  const T* row(int y) const {
    assert(y >= -halo_ && y < n_ + halo_);
    return cells_.data() +
           static_cast<std::size_t>(y + halo_) * stride_ + halo_;
  }

  T at(int x, int y) const {
    assert(x >= -halo_ && x < n_ + halo_);
    return row(y)[x];
  }

  // Calls fn(ptr, len) for each row segment of the radius-r window around
  // (cx, cy); the segments are contiguous and never cross the halo edge.
  // Requires r <= halo and (cx, cy) in the interior.
  template <typename Fn>
  void for_each_window_row(int cx, int cy, int r, Fn&& fn) const {
    assert(r <= halo_);
    assert(cx >= 0 && cx < n_ && cy >= 0 && cy < n_);
    for (int dy = -r; dy <= r; ++dy) {
      fn(row(cy + dy) + (cx - r), 2 * r + 1);
    }
  }

 private:
  int n_;
  int halo_;
  int stride_;
  std::vector<T> cells_;
};

}  // namespace seg
