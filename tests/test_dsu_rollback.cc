// Unit tests for the rollback/epoch DSU behind the streaming observables
// engine: union-by-size forests, checkpoint/rollback inversion, external
// size adjustment, grow, and the O(1) epoch reset.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/dsu_rollback.h"
#include "rng/rng.h"

namespace seg {
namespace {

TEST(DsuRollback, SingletonsAtConstruction) {
  DsuRollback dsu(8);
  EXPECT_EQ(dsu.node_count(), 8u);
  for (std::uint32_t v = 0; v < 8; ++v) {
    EXPECT_EQ(dsu.find(v), v);
    EXPECT_EQ(dsu.size_of(v), 1);
  }
}

TEST(DsuRollback, UniteBySizeTracksComponents) {
  DsuRollback dsu(6);
  EXPECT_TRUE(dsu.unite(0, 1));
  EXPECT_TRUE(dsu.unite(2, 3));
  EXPECT_TRUE(dsu.unite(0, 2));
  EXPECT_FALSE(dsu.unite(1, 3));  // already joined
  EXPECT_EQ(dsu.find(1), dsu.find(3));
  EXPECT_EQ(dsu.size_of(3), 4);
  EXPECT_EQ(dsu.size_of(4), 1);
  EXPECT_NE(dsu.find(4), dsu.find(0));
}

TEST(DsuRollback, RollbackRestoresPartitionAndSizes) {
  DsuRollback dsu(10);
  dsu.unite(0, 1);
  dsu.unite(2, 3);
  const std::size_t mark = dsu.checkpoint();
  dsu.unite(0, 2);
  dsu.unite(4, 5);
  dsu.adjust_size(dsu.find(0), -1);
  EXPECT_EQ(dsu.find(1), dsu.find(3));
  dsu.rollback(mark);
  EXPECT_EQ(dsu.find(0), dsu.find(1));
  EXPECT_EQ(dsu.find(2), dsu.find(3));
  EXPECT_NE(dsu.find(1), dsu.find(3));
  EXPECT_NE(dsu.find(4), dsu.find(5));
  EXPECT_EQ(dsu.size_of(0), 2);
  EXPECT_EQ(dsu.size_of(2), 2);
  EXPECT_EQ(dsu.size_of(4), 1);
}

TEST(DsuRollback, RollbackUndoesGrow) {
  DsuRollback dsu(3);
  const std::size_t mark = dsu.checkpoint();
  const std::uint32_t a = dsu.grow();
  const std::uint32_t b = dsu.grow();
  EXPECT_EQ(a, 3u);
  EXPECT_EQ(b, 4u);
  dsu.unite(a, b);
  EXPECT_EQ(dsu.node_count(), 5u);
  dsu.rollback(mark);
  EXPECT_EQ(dsu.node_count(), 3u);
}

TEST(DsuRollback, AdjustSizeFeedsUnionBySize) {
  DsuRollback dsu(4);
  // Inflate node 0 so union-by-size must keep it as the root.
  dsu.adjust_size(0, 10);
  dsu.unite(1, 2);
  dsu.unite(1, 3);
  dsu.unite(0, 1);
  EXPECT_EQ(dsu.find(3), 0u);
  EXPECT_EQ(dsu.size_of(3), 14);
}

// Randomized inversion: a long mutation run rolled back to a checkpoint
// must restore the exact component structure, compared against a replay
// of only the pre-checkpoint prefix.
TEST(DsuRollback, RandomizedRollbackMatchesReplay) {
  constexpr std::size_t kNodes = 64;
  constexpr int kPrefix = 40;
  constexpr int kSuffix = 200;
  Rng rng(991);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> prefix_ops;
  DsuRollback dsu(kNodes);
  for (int i = 0; i < kPrefix; ++i) {
    const auto a = static_cast<std::uint32_t>(rng.uniform_below(kNodes));
    const auto b = static_cast<std::uint32_t>(rng.uniform_below(kNodes));
    prefix_ops.emplace_back(a, b);
    dsu.unite(a, b);
  }
  const std::size_t mark = dsu.checkpoint();
  for (int i = 0; i < kSuffix; ++i) {
    dsu.unite(static_cast<std::uint32_t>(rng.uniform_below(kNodes)),
              static_cast<std::uint32_t>(rng.uniform_below(kNodes)));
  }
  dsu.rollback(mark);

  DsuRollback replay(kNodes);
  for (const auto& [a, b] : prefix_ops) replay.unite(a, b);
  // Same partition: identical equivalence classes and sizes.
  for (std::uint32_t v = 0; v < kNodes; ++v) {
    EXPECT_EQ(dsu.size_of(v), replay.size_of(v)) << "node " << v;
    for (std::uint32_t u = 0; u < v; ++u) {
      EXPECT_EQ(dsu.find(u) == dsu.find(v),
                replay.find(u) == replay.find(v))
          << "pair " << u << "," << v;
    }
  }
}

TEST(DsuRollback, ResetClearsToSingletons) {
  DsuRollback dsu(5);
  dsu.unite(0, 1);
  dsu.unite(1, 2);
  dsu.grow();
  dsu.reset(4);
  EXPECT_EQ(dsu.node_count(), 4u);
  for (std::uint32_t v = 0; v < 4; ++v) {
    EXPECT_EQ(dsu.find(v), v);
    EXPECT_EQ(dsu.size_of(v), 1);
  }
  // Reset may also grow the arena.
  dsu.reset(12);
  EXPECT_EQ(dsu.node_count(), 12u);
  EXPECT_EQ(dsu.size_of(11), 1);
}

TEST(DsuRollback, ManyResetsStayCheap) {
  DsuRollback dsu(256);
  for (int round = 0; round < 1000; ++round) {
    dsu.unite(static_cast<std::uint32_t>(round % 255),
              static_cast<std::uint32_t>(round % 255 + 1));
    dsu.reset(256);
  }
  for (std::uint32_t v = 0; v < 256; ++v) EXPECT_EQ(dsu.find(v), v);
}

TEST(DsuRollback, NoLogModeStillUnites) {
  DsuRollback dsu(8, /*logging=*/false);
  EXPECT_FALSE(dsu.logging());
  dsu.unite(0, 1);
  dsu.unite(1, 2);
  EXPECT_EQ(dsu.size_of(2), 3);
  EXPECT_EQ(dsu.checkpoint(), 0u);  // nothing is ever logged
}

}  // namespace
}  // namespace seg
