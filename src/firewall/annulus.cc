#include "firewall/annulus.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "lattice/halo_field.h"
#include "theory/bounds.h"

namespace seg {

namespace {

// Classification of a site relative to the annulus geometry.
enum class Zone : std::uint8_t { kExterior, kAnnulus, kInterior };

Zone classify(Point center, Point site, double r, int w, int n) {
  const double d =
      std::sqrt(static_cast<double>(torus_l2_sq(center, site, n)));
  const double inner = r - std::sqrt(2.0) * w;
  if (d > r) return Zone::kExterior;
  if (d >= inner) return Zone::kAnnulus;
  return Zone::kInterior;
}

std::vector<Zone> classify_all(Point center, double r, int w, int n) {
  std::vector<Zone> zones(static_cast<std::size_t>(n) * n);
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      zones[static_cast<std::size_t>(y) * n + x] =
          classify(center, Point{x, y}, r, w, n);
    }
  }
  return zones;
}

}  // namespace

std::vector<std::uint32_t> annulus_sites(Point center, double r, int w,
                                         int n) {
  const auto zones = classify_all(center, r, w, n);
  std::vector<std::uint32_t> out;
  for (std::size_t i = 0; i < zones.size(); ++i) {
    if (zones[i] == Zone::kAnnulus) out.push_back(static_cast<std::uint32_t>(i));
  }
  return out;
}

std::vector<std::uint32_t> annulus_interior(Point center, double r, int w,
                                            int n) {
  const auto zones = classify_all(center, r, w, n);
  std::vector<std::uint32_t> out;
  for (std::size_t i = 0; i < zones.size(); ++i) {
    if (zones[i] == Zone::kInterior) {
      out.push_back(static_cast<std::uint32_t>(i));
    }
  }
  return out;
}

FirewallCertificate firewall_certificate(Point center, double r, int w,
                                         double tau, int n) {
  assert(2 * static_cast<int>(std::ceil(r)) + 1 <= n);
  const auto zones = classify_all(center, r, w, n);
  const int N = (2 * w + 1) * (2 * w + 1);
  const int K = happiness_threshold(tau, N);

  FirewallCertificate cert;
  cert.min_margin = N;  // upper bound; tightened below
  // Every annulus site windows over the same zone map: snapshot it into a
  // halo-padded copy so the inner scan reads contiguous wrap-free rows.
  const HaloField<Zone> padded(zones, n, w);
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      if (zones[static_cast<std::size_t>(y) * n + x] != Zone::kAnnulus) {
        continue;
      }
      ++cert.annulus_size;
      // Worst case: only annulus + interior sites share the agent's type.
      int same = 0;
      padded.for_each_window_row(x, y, w, [&](const Zone* row, int len) {
        for (int i = 0; i < len; ++i) {
          same += (row[i] != Zone::kExterior);
        }
      });
      cert.min_margin = std::min(cert.min_margin, same - K);
    }
  }
  cert.stable = cert.annulus_size > 0 && cert.min_margin >= 0;
  return cert;
}

int min_stable_firewall_radius(int w, double tau, int n, int r_lo, int r_hi) {
  assert(r_lo >= 1 && r_lo <= r_hi);
  const Point center{n / 2, n / 2};
  for (int r = r_lo; r <= r_hi; ++r) {
    if (2 * r + 1 > n) break;
    if (firewall_certificate(center, static_cast<double>(r), w, tau, n)
            .stable) {
      return r;
    }
  }
  return -1;
}

std::vector<std::int8_t> make_firewall_config(Point center, double r, int w,
                                              int n,
                                              std::int8_t inside_type) {
  assert(inside_type == 1 || inside_type == -1);
  const auto zones = classify_all(center, r, w, n);
  std::vector<std::int8_t> spins(zones.size());
  for (std::size_t i = 0; i < zones.size(); ++i) {
    spins[i] = zones[i] == Zone::kExterior
                   ? static_cast<std::int8_t>(-inside_type)
                   : inside_type;
  }
  return spins;
}

}  // namespace seg
