#include "grid/union_find.h"

#include <gtest/gtest.h>

namespace seg {
namespace {

TEST(UnionFind, InitiallyAllSingletons) {
  UnionFind uf(5);
  EXPECT_EQ(uf.components(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(uf.find(i), i);
    EXPECT_EQ(uf.component_size(i), 1u);
  }
}

TEST(UnionFind, UniteMergesComponents) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.same(0, 1));
  EXPECT_FALSE(uf.same(0, 2));
  EXPECT_EQ(uf.components(), 3u);
  EXPECT_EQ(uf.component_size(0), 2u);
}

TEST(UnionFind, UniteIsIdempotent) {
  UnionFind uf(3);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_EQ(uf.components(), 2u);
}

TEST(UnionFind, TransitiveConnectivity) {
  UnionFind uf(6);
  uf.unite(0, 1);
  uf.unite(2, 3);
  uf.unite(1, 2);
  EXPECT_TRUE(uf.same(0, 3));
  EXPECT_EQ(uf.component_size(3), 4u);
  EXPECT_FALSE(uf.same(0, 5));
}

TEST(UnionFind, ChainCollapsesToOneComponent) {
  const std::size_t n = 100;
  UnionFind uf(n);
  for (std::size_t i = 0; i + 1 < n; ++i) uf.unite(i, i + 1);
  EXPECT_EQ(uf.components(), 1u);
  EXPECT_EQ(uf.component_size(42), n);
  EXPECT_TRUE(uf.same(0, n - 1));
}

TEST(UnionFind, ElementCount) {
  UnionFind uf(7);
  EXPECT_EQ(uf.element_count(), 7u);
}

}  // namespace
}  // namespace seg
