#include "core/kawasaki.h"

#include <cassert>
#include <utility>
#include <vector>

namespace seg {

bool swap_improves(SchellingModel& model, std::uint32_t a, std::uint32_t b) {
  assert(model.spin(a) != model.spin(b));
  // Tentatively apply the swap (two flips), inspect, and revert. flip()
  // restores all invariants, so this is safe even when a and b are within
  // each other's neighborhoods.
  model.flip(a);
  model.flip(b);
  const bool both_happy = model.is_happy(a) && model.is_happy(b);
  if (!both_happy) {
    model.flip(b);
    model.flip(a);
  }
  return both_happy;
}

namespace {

std::pair<std::size_t, std::size_t> unhappy_partition(
    const SchellingModel& model) {
  std::size_t plus = 0;
  for (const std::uint32_t id : model.unhappy_set().items()) {
    plus += model.spin(id) > 0;
  }
  return {plus, model.unhappy_set().size() - plus};
}

}  // namespace

// Exact absorption check: does any unhappy (+1, -1) pair admit an
// improving swap? O(U+ * U-) tentative swaps; used sparingly. Walks
// every shard slice so the certificate is global for sharded models too
// (a sharded model's no-arg unhappy_set() only sees shard 0).
bool improving_swap_exists(SchellingModel& model) {
  std::vector<std::uint32_t> plus, minus;
  for (int shard = 0; shard < model.shard_count(); ++shard) {
    for (const std::uint32_t id : model.unhappy_set(shard).items()) {
      (model.spin(id) > 0 ? plus : minus).push_back(id);
    }
  }
  for (const std::uint32_t a : plus) {
    for (const std::uint32_t b : minus) {
      if (swap_improves(model, a, b)) {
        // swap_improves leaves the swap applied when it succeeds; revert.
        model.flip(b);
        model.flip(a);
        return true;
      }
    }
  }
  return false;
}

KawasakiResult run_kawasaki(SchellingModel& model, Rng& rng,
                            const KawasakiOptions& options) {
  KawasakiResult result;
  std::uint64_t consecutive_rejects = 0;
  // The unhappy set only changes on accepted swaps, so the type partition
  // of the unhappy agents is recomputed per acceptance, not per proposal.
  auto [plus_unhappy, minus_unhappy] = unhappy_partition(model);
  while (result.swaps < options.max_swaps) {
    if (plus_unhappy == 0 || minus_unhappy == 0) {
      result.terminated = true;
      break;
    }
    // Propose: uniform unhappy pair of opposite types via rejection
    // sampling on the unhappy set (both classes are nonempty here).
    const std::uint32_t a = model.unhappy_set().sample(rng);
    const std::uint32_t b = model.unhappy_set().sample(rng);
    ++result.proposals;
    if (model.spin(a) == model.spin(b)) continue;
    if (swap_improves(model, a, b)) {
      ++result.swaps;
      consecutive_rejects = 0;
      std::tie(plus_unhappy, minus_unhappy) = unhappy_partition(model);
      continue;
    }
    ++consecutive_rejects;
    if (consecutive_rejects >= options.stale_check_after &&
        consecutive_rejects % options.stale_check_after == 0) {
      if (!improving_swap_exists(model)) {
        result.terminated = true;
        break;
      }
    }
    if (options.max_consecutive_rejects > 0 &&
        consecutive_rejects >= options.max_consecutive_rejects) {
      result.gave_up = true;
      break;
    }
  }
  return result;
}

}  // namespace seg
