// Tests for the telemetry registry, trace sessions, and the progress
// reporter — plus the differential guarantee that none of it perturbs a
// simulation trajectory.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/dynamics.h"
#include "core/parallel_dynamics.h"
#include "golden_fixtures.h"
#include "json_checker.h"
#include "lattice/sharded.h"
#include "obs/progress.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace seg {
namespace {

using golden::hash_bytes;
using golden::mix;
using golden::mix_double;
using seg::testing::json_well_formed;

TEST(JsonChecker, AcceptsAndRejects) {
  EXPECT_TRUE(json_well_formed("{}"));
  EXPECT_TRUE(json_well_formed("{\"a\":[1,2.5,-3e4],\"b\":{\"c\":null}}"));
  EXPECT_TRUE(json_well_formed("[true,false,\"x\\\"y\"]"));
  EXPECT_FALSE(json_well_formed("{\"a\":}"));
  EXPECT_FALSE(json_well_formed("[1,2"));
  EXPECT_FALSE(json_well_formed("{} extra"));
}

// ---- registry ----------------------------------------------------------

TEST(Telemetry, CounterMergesThreadSlabsExactly) {
  obs::Registry& reg = obs::Registry::instance();
  const obs::MetricId id = reg.counter("test.obs.merge");
  const std::uint64_t before = reg.counter_value("test.obs.merge");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kAdds = 20000;
  constexpr std::uint64_t kDelta = 3;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, id] {
      for (std::uint64_t i = 0; i < kAdds; ++i) reg.add(id, kDelta);
    });
  }
  for (std::thread& th : threads) th.join();
  // Slabs released by exited threads must still be summed (and reused
  // slabs must not double-count).
  EXPECT_EQ(reg.counter_value("test.obs.merge") - before,
            kThreads * kAdds * kDelta);
}

TEST(Telemetry, RegistrationIsIdempotent) {
  obs::Registry& reg = obs::Registry::instance();
  const obs::MetricId a = reg.counter("test.obs.idempotent");
  const obs::MetricId b = reg.counter("test.obs.idempotent");
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(a.slot, b.slot);
}

TEST(Telemetry, HistogramBucketBoundaries) {
  obs::Registry& reg = obs::Registry::instance();
  const obs::MetricId id = reg.histogram("test.obs.hist");
  reg.observe(id, 0);                       // bucket 0
  reg.observe(id, 1);                       // bucket 1: [1,1]
  reg.observe(id, 2);                       // bucket 2: [2,3]
  reg.observe(id, 3);                       // bucket 2
  reg.observe(id, 4);                       // bucket 3: [4,7]
  reg.observe(id, 7);                       // bucket 3
  reg.observe(id, 8);                       // bucket 4: [8,15]
  reg.observe(id, (1ull << 62) - 1);        // bucket 62
  reg.observe(id, 1ull << 62);              // clamped into bucket 63
  reg.observe(id, ~0ull);                   // clamped into bucket 63
  const std::vector<std::uint64_t> b = reg.histogram_buckets("test.obs.hist");
  ASSERT_EQ(b.size(), static_cast<std::size_t>(obs::kHistogramBuckets));
  EXPECT_EQ(b[0], 1u);
  EXPECT_EQ(b[1], 1u);
  EXPECT_EQ(b[2], 2u);
  EXPECT_EQ(b[3], 2u);
  EXPECT_EQ(b[4], 1u);
  EXPECT_EQ(b[62], 1u);
  EXPECT_EQ(b[63], 2u);
}

TEST(Telemetry, GaugeSetAndMax) {
  obs::Registry& reg = obs::Registry::instance();
  const obs::MetricId id = reg.gauge("test.obs.gauge");
  reg.gauge_set(id, 42);
  EXPECT_EQ(reg.gauge_value("test.obs.gauge"), 42);
  reg.gauge_max(id, 17);
  EXPECT_EQ(reg.gauge_value("test.obs.gauge"), 42);
  reg.gauge_max(id, 99);
  EXPECT_EQ(reg.gauge_value("test.obs.gauge"), 99);
  reg.gauge_set(id, -5);
  EXPECT_EQ(reg.gauge_value("test.obs.gauge"), -5);
}

TEST(Telemetry, CountersWithPrefixSortedAndFiltered) {
  obs::Registry& reg = obs::Registry::instance();
  reg.add(reg.counter("test.obs.prefix.b"), 2);
  reg.add(reg.counter("test.obs.prefix.a"), 1);
  reg.add(reg.counter("test.obs.other"), 7);
  const auto rows = reg.counters_with_prefix("test.obs.prefix.");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].first, "test.obs.prefix.a");
  EXPECT_EQ(rows[1].first, "test.obs.prefix.b");
}

#if !defined(SEG_TELEMETRY_DISABLED)

TEST(Telemetry, MacrosAreNoOpsWhileRuntimeDisabled) {
  obs::set_enabled(false);
  SEG_COUNT("test.obs.runtime_gate", 5);
  // While disabled the macro must not even register the name.
  EXPECT_EQ(obs::Registry::instance().counter_value("test.obs.runtime_gate"),
            0u);
  obs::set_enabled(true);
  SEG_COUNT("test.obs.runtime_gate", 5);
  SEG_COUNT("test.obs.runtime_gate", 2);
  obs::set_enabled(false);
  SEG_COUNT("test.obs.runtime_gate", 100);
  EXPECT_EQ(obs::Registry::instance().counter_value("test.obs.runtime_gate"),
            7u);
}

#endif  // !SEG_TELEMETRY_DISABLED

// ---- tracing -----------------------------------------------------------

TEST(Trace, JsonIsWellFormedAcrossThreads) {
  obs::TraceSession session;
  session.start();
  ASSERT_TRUE(session.active());
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&session] {
      for (int i = 0; i < 50; ++i) {
        const double start = session.now_us();
        session.record_complete("span \"quoted\\\n", start,
                                session.now_us() - start);
        session.record_instant("tick");
        session.record_counter("queue", i - 25);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  session.stop();
  EXPECT_FALSE(session.active());
  EXPECT_EQ(session.event_count(), 4u * 50u * 3u);
  const std::string doc = session.to_json();
  EXPECT_TRUE(json_well_formed(doc)) << doc.substr(0, 400);
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"C\""), std::string::npos);
}

TEST(Trace, FirstSessionWinsAndSpansNoOpWithoutOne) {
  {
    // No active session: spans must be harmless.
    obs::TraceSpan idle("idle");
  }
  obs::TraceSession first;
  obs::TraceSession second;
  first.start();
  second.start();  // must not displace `first`
  EXPECT_TRUE(first.active());
  EXPECT_FALSE(second.active());
  EXPECT_EQ(obs::TraceSession::current(), &first);
  first.stop();
  EXPECT_EQ(obs::TraceSession::current(), nullptr);
}

TEST(Trace, WriteJsonRoundTripsThroughDisk) {
  obs::TraceSession session;
  session.start();
  session.record_instant("only");
  session.stop();
  const std::string path = ::testing::TempDir() + "seg_test_trace.json";
  ASSERT_TRUE(session.write_json(path));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), session.to_json());
  std::remove(path.c_str());
}

// ---- differential: telemetry must not perturb trajectories -------------

#if !defined(SEG_TELEMETRY_DISABLED)

std::uint64_t serial_glauber_hash() {
  ModelParams p{.n = 48, .w = 3, .tau = 0.45, .p = 0.5};
  Rng init = Rng::stream(1001, 0);
  SchellingModel m(p, init);
  Rng dyn = Rng::stream(1001, 1);
  const RunResult r = run_glauber(m, dyn);
  std::uint64_t h = hash_bytes(m.spins().data(), m.spins().size());
  h = mix(h, r.flips);
  return mix_double(h, r.final_time);
}

std::uint64_t sharded_glauber_hash() {
  ModelParams p{.n = 48, .w = 2, .tau = 0.4, .p = 0.5};
  Rng init = Rng::stream(2001, 0);
  SchellingModel m(p, init, ShardLayout::stripes(p.n, p.w, 4));
  ParallelOptions opt;
  opt.threads = 2;
  opt.max_flips = 4000;
  const RunResult r = to_run_result(run_parallel_glauber(m, 2002, opt));
  std::uint64_t h = hash_bytes(m.spins().data(), m.spins().size());
  return mix(h, r.flips);
}

// The golden-trajectory suite pins the serial hash with telemetry off;
// here the same run must produce the identical bits with the registry
// live, a trace session recording, and runtime telemetry enabled. This
// is the enforcement of the "telemetry touches no RNG" contract.
TEST(TelemetryDifferential, GoldenTrajectoryBitwiseUnchanged) {
  obs::set_enabled(false);
  const std::uint64_t off_serial = serial_glauber_hash();
  EXPECT_EQ(off_serial, golden::kGlauber);
  const std::uint64_t off_sharded = sharded_glauber_hash();

  obs::set_enabled(true);
  obs::TraceSession session;
  session.start();
  const std::uint64_t on_serial = serial_glauber_hash();
  const std::uint64_t on_sharded = sharded_glauber_hash();
  session.stop();
  obs::set_enabled(false);

  EXPECT_EQ(on_serial, off_serial);
  EXPECT_EQ(on_sharded, off_sharded);
  // The instrumented sharded path must actually have recorded something,
  // or this differential is vacuous.
  EXPECT_GT(session.event_count(), 0u);
  EXPECT_GT(obs::Registry::instance().counter_value("engine.flips"), 0u);
}

#endif  // !SEG_TELEMETRY_DISABLED

// ---- progress reporter -------------------------------------------------

TEST(Progress, WritesWellFormedJsonlAndFinalRecord) {
  const std::string path = ::testing::TempDir() + "seg_test_progress.jsonl";
  std::remove(path.c_str());
  {
    obs::ProgressOptions opt;
    opt.interval_s = 0.005;
    opt.jsonl_path = path;
    opt.stderr_line = false;
    opt.force_tty = -1;
    obs::ProgressReporter reporter(4, opt);
    auto cb = reporter.callback();
    cb(1, 4);
    cb(2, 4);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    cb(3, 4);
    cb(4, 4);
    reporter.finish();
    EXPECT_GE(reporter.records_written(), 1u);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::string last;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    EXPECT_TRUE(json_well_formed(line)) << line;
    last = line;
  }
  EXPECT_GE(lines, 1u);
  // finish() emits a final record reflecting the terminal state.
  EXPECT_NE(last.find("\"done\":4"), std::string::npos) << last;
  EXPECT_NE(last.find("\"total\":4"), std::string::npos) << last;
  EXPECT_NE(last.find("\"workers\":"), std::string::npos) << last;
  EXPECT_NE(last.find("\"streaming\":"), std::string::npos) << last;
  std::remove(path.c_str());
}

TEST(Progress, ZeroReplicaRunStillEmitsRecord) {
  const std::string path = ::testing::TempDir() + "seg_test_progress0.jsonl";
  std::remove(path.c_str());
  {
    obs::ProgressOptions opt;
    opt.interval_s = 60.0;  // ticker never fires on its own
    opt.jsonl_path = path;
    opt.stderr_line = false;
    opt.force_tty = -1;
    obs::ProgressReporter reporter(0, opt);
    reporter.finish();
    EXPECT_EQ(reporter.records_written(), 1u);
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_TRUE(json_well_formed(line)) << line;
  EXPECT_NE(line.find("\"done\":0"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace seg
