#include "util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "core/experiment.h"

namespace seg {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPool, ParallelForCoversEveryIndex) {
  ThreadPool pool(3);
  std::vector<int> hits(257, 0);
  parallel_for(pool, hits.size(), [&](std::size_t i) { hits[i] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(hits.size()));
}

TEST(ThreadPool, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&] { counter.fetch_add(1); });
  pool.wait_idle();
  pool.submit([&] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, DefaultThreadCountPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(RunTrials, ThreadCountDoesNotChangeResults) {
  const auto metric = [](std::size_t, Rng& rng) {
    double acc = 0;
    for (int i = 0; i < 10; ++i) acc += rng.uniform();
    return acc;
  };
  const RunningStats serial = run_trials(32, 99, metric, 1);
  const RunningStats threaded = run_trials(32, 99, metric, 4);
  EXPECT_EQ(serial.count(), threaded.count());
  EXPECT_DOUBLE_EQ(serial.mean(), threaded.mean());
  EXPECT_DOUBLE_EQ(serial.variance(), threaded.variance());
}

TEST(RunTrials, DistinctSeedsGiveDistinctStreams) {
  const auto metric = [](std::size_t, Rng& rng) { return rng.uniform(); };
  const RunningStats a = run_trials(8, 1, metric, 1);
  const RunningStats b = run_trials(8, 2, metric, 1);
  EXPECT_NE(a.mean(), b.mean());
}

}  // namespace
}  // namespace seg
