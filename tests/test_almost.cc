#include "analysis/almost.h"

#include <cmath>

#include <gtest/gtest.h>

#include "analysis/regions.h"
#include "core/model.h"

namespace seg {
namespace {

TEST(Almost, ThresholdFormula) {
  EXPECT_NEAR(almost_mono_threshold(0.1, 25), std::exp(-2.5), 1e-12);
  EXPECT_LT(almost_mono_threshold(0.1, 441), almost_mono_threshold(0.1, 25));
}

TEST(Almost, UniformGridSaturates) {
  const int n = 11;
  std::vector<std::int8_t> spins(n * n, -1);
  const auto field = almost_mono_field(spins, n, 0.05);
  EXPECT_EQ(largest_almost_region(field), ball_size((n - 1) / 2));
}

TEST(Almost, ToleratesSparseMinority) {
  // One -1 in a 13x13 all-+1 grid. With ratio threshold 0.05 a ball of
  // radius 3 (49 sites, 1 minority, ratio 1/48 ~ 0.021) passes, while the
  // strictly monochromatic radius at the minority's own center is 0.
  const int n = 13;
  std::vector<std::int8_t> spins(n * n, 1);
  spins[6 * n + 6] = -1;
  const auto field = almost_mono_field(spins, n, 0.05);
  const std::size_t center = 6 * n + 6;
  EXPECT_GE(field.radius[center], 3);
  const auto mono = mono_region_field(spins, n);
  EXPECT_EQ(mono.radius[center], 0);
}

TEST(Almost, RejectsBalancedMixtures) {
  // Checkerboard: minority ratio ~ 1 everywhere; no almost-mono ball of
  // radius >= 1 under a small threshold.
  const int n = 10;
  std::vector<std::int8_t> spins(n * n);
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      spins[y * n + x] = ((x + y) % 2 == 0) ? 1 : -1;
    }
  }
  const auto field = almost_mono_field(spins, n, 0.1);
  for (const auto r : field.radius) EXPECT_EQ(r, 0);
}

TEST(Almost, MatchesBruteForceOnRandomGrid) {
  const int n = 11;
  Rng rng(3);
  std::vector<std::int8_t> spins(n * n);
  for (auto& s : spins) s = rng.bernoulli(0.8) ? 1 : -1;
  const double threshold = 0.08;
  const auto field = almost_mono_field(spins, n, threshold);
  for (int cy = 0; cy < n; ++cy) {
    for (int cx = 0; cx < n; ++cx) {
      std::int32_t best = 0;
      for (int r = 1; r <= (n - 1) / 2; ++r) {
        std::int64_t plus = 0;
        for (int dy = -r; dy <= r; ++dy) {
          for (int dx = -r; dx <= r; ++dx) {
            plus += spins[torus_wrap(cy + dy, n) * n + torus_wrap(cx + dx, n)] > 0;
          }
        }
        const std::int64_t size = ball_size(r);
        const std::int64_t minority = std::min(plus, size - plus);
        if (static_cast<double>(minority) <=
            threshold * static_cast<double>(size - minority)) {
          best = r;
        }
      }
      EXPECT_EQ(field.radius[cy * n + cx], best)
          << "center (" << cx << "," << cy << ")";
    }
  }
}

TEST(Almost, RegionOfAgentAtLeastMonoRegion) {
  // Almost-mono regions generalize monochromatic ones (threshold >= 0), so
  // M'(u) >= M(u) pointwise for any threshold.
  const int n = 15;
  Rng rng(4);
  std::vector<std::int8_t> spins(n * n);
  for (auto& s : spins) s = rng.bernoulli(0.75) ? 1 : -1;
  const auto almost = almost_mono_field(spins, n, 0.05);
  const auto mono = mono_region_field(spins, n);
  for (const Point u : {Point{0, 0}, Point{7, 7}, Point{14, 3}}) {
    EXPECT_GE(almost_region_size_of(almost, u), mono_region_size_of(mono, u));
  }
}

TEST(Almost, MaxRadiusParameterCapsSearch) {
  const int n = 21;
  std::vector<std::int8_t> spins(n * n, 1);
  const auto field = almost_mono_field(spins, n, 0.1, 2);
  for (const auto r : field.radius) EXPECT_LE(r, 2);
}

TEST(Almost, MeanEstimatorWithinBounds) {
  const int n = 13;
  Rng rng(5);
  std::vector<std::int8_t> spins(n * n);
  for (auto& s : spins) s = rng.bernoulli(0.9) ? 1 : -1;
  const auto field = almost_mono_field(spins, n, 0.1);
  Rng sample(6);
  const double mean = mean_almost_region_size(field, 40, sample);
  EXPECT_GE(mean, 1.0);
  EXPECT_LE(mean, static_cast<double>(ball_size((n - 1) / 2)));
}

TEST(Almost, ModelOverloadUsesDynamicsN) {
  ModelParams p{.n = 16, .w = 2, .tau = 0.4, .p = 0.5};
  Rng rng(7);
  SchellingModel m(p, rng);
  const auto field = almost_mono_field(m, 0.1);
  EXPECT_NEAR(field.ratio_threshold, std::exp(-0.1 * 25), 1e-12);
}

}  // namespace
}  // namespace seg
