// Wrap-free iteration over l-infinity windows on the torus.
//
// A (2r+1) x (2r+1) window around a site decomposes into at most two
// contiguous x-intervals per row (the window either fits before the seam
// or splits into a tail [x0, n) and a head [0, rest)). Iterating those
// row spans keeps all modulo arithmetic at the row level: the inner loops
// see plain contiguous array segments and auto-vectorize.
//
// The visit order is exactly the legacy stencil order (dy = -r..r, then
// dx = -r..r, coordinates wrapped), which every engine relies on to keep
// AgentSet mutation order — and therefore sampled trajectories — bitwise
// identical to the pre-engine implementations.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>

#include "grid/point.h"
#include "lattice/bitfield.h"

namespace seg {

// +1 count of the radius-r window around (cx, cy) on a packed field —
// the popcount path: one masked-popcount row count per window row
// (BitField::count_row) instead of per-cell span iteration. (cx, cy)
// must lie in [0, n); requires 2r+1 <= n.
inline std::int32_t packed_window_count(const BitField& bits, int cx,
                                        int cy, int r) {
  const int n = bits.side();
  assert(2 * r + 1 <= n);
  assert(cx >= 0 && cx < n && cy >= 0 && cy < n);
  const int side = 2 * r + 1;
  int x0 = cx - r;
  if (x0 < 0) x0 += n;
  int y = cy - r;
  if (y < 0) y += n;
  std::int32_t total = 0;
  for (int row = 0; row < side; ++row) {
    total += bits.count_row(y, x0, side);
    if (++y == n) y = 0;
  }
  return total;
}

// Calls fn(base, len) for each contiguous row segment of the window of
// radius r around (cx, cy); `base` is a row-major index into an n*n field.
// (cx, cy) must already lie in [0, n); requires 2r+1 <= n.
template <typename Fn>
inline void for_each_window_span(int cx, int cy, int r, int n, Fn&& fn) {
  assert(2 * r + 1 <= n);
  assert(cx >= 0 && cx < n && cy >= 0 && cy < n);
  const int side = 2 * r + 1;
  int x0 = cx - r;
  if (x0 < 0) x0 += n;
  int y0 = cy - r;
  if (y0 < 0) y0 += n;
  const int tail = n - x0;  // cells from x0 to the seam
  const bool split = tail < side;
  for (int row = 0; row < side; ++row) {
    int y = y0 + row;
    if (y >= n) y -= n;
    const std::size_t base = static_cast<std::size_t>(y) * n;
    if (!split) {
      fn(base + x0, side);
    } else {
      fn(base + x0, tail);
      fn(base, side - tail);
    }
  }
}

// Calls fn(id) for every site of the window, in stencil order.
template <typename Fn>
inline void for_each_window_cell(int cx, int cy, int r, int n, Fn&& fn) {
  for_each_window_span(cx, cy, r, n, [&](std::size_t base, int len) {
    for (int i = 0; i < len; ++i) {
      fn(static_cast<std::uint32_t>(base + i));
    }
  });
}

// Calls fn(x, y, id) with wrapped coordinates, in stencil order. For
// callers that need the site position (e.g. distance filters) and not
// just the index.
template <typename Fn>
inline void for_each_window_point(int cx, int cy, int r, int n, Fn&& fn) {
  assert(2 * r + 1 <= n);
  const int side = 2 * r + 1;
  int x0 = cx - r;
  if (x0 < 0) x0 += n;
  int y0 = cy - r;
  if (y0 < 0) y0 += n;
  for (int row = 0; row < side; ++row) {
    int y = y0 + row;
    if (y >= n) y -= n;
    const std::size_t base = static_cast<std::size_t>(y) * n;
    int x = x0;
    for (int i = 0; i < side; ++i) {
      fn(x, y, static_cast<std::uint32_t>(base + x));
      if (++x == n) x = 0;
    }
  }
}

// As for_each_window_point, but fn returns false to stop the scan early;
// returns true iff the whole window was visited.
template <typename Fn>
inline bool for_each_window_point_until(int cx, int cy, int r, int n,
                                        Fn&& fn) {
  assert(2 * r + 1 <= n);
  const int side = 2 * r + 1;
  int x0 = cx - r;
  if (x0 < 0) x0 += n;
  int y0 = cy - r;
  if (y0 < 0) y0 += n;
  for (int row = 0; row < side; ++row) {
    int y = y0 + row;
    if (y >= n) y -= n;
    const std::size_t base = static_cast<std::size_t>(y) * n;
    int x = x0;
    for (int i = 0; i < side; ++i) {
      if (!fn(x, y, static_cast<std::uint32_t>(base + x))) return false;
      if (++x == n) x = 0;
    }
  }
  return true;
}

// Fixed-geometry binding of the span iteration: one torus side and window
// radius, id-addressed centers. Every 2-D engine owns one of these.
class WindowGeometry {
 public:
  WindowGeometry(int n, int w) : n_(n), w_(w) {
    assert(n > 0 && w >= 1 && 2 * w + 1 <= n);
  }

  int side() const { return n_; }
  int radius() const { return w_; }
  int window_side() const { return 2 * w_ + 1; }
  int window_size() const { return window_side() * window_side(); }
  std::size_t site_count() const {
    return static_cast<std::size_t>(n_) * n_;
  }

  std::uint32_t id_of(int x, int y) const {
    return static_cast<std::uint32_t>(
        static_cast<std::size_t>(torus_wrap(y, n_)) * n_ +
        torus_wrap(x, n_));
  }
  Point point_of(std::uint32_t id) const {
    return Point{static_cast<int>(id % n_), static_cast<int>(id / n_)};
  }

  template <typename Fn>
  void for_each_span(std::uint32_t center, Fn&& fn) const {
    for_each_window_span(static_cast<int>(center % n_),
                         static_cast<int>(center / n_), w_, n_,
                         static_cast<Fn&&>(fn));
  }

  template <typename Fn>
  void for_each_cell(std::uint32_t center, Fn&& fn) const {
    for_each_window_cell(static_cast<int>(center % n_),
                         static_cast<int>(center / n_), w_, n_,
                         static_cast<Fn&&>(fn));
  }

 private:
  int n_;
  int w_;
};

}  // namespace seg
