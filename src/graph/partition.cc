#include "graph/partition.h"

#include <deque>

#include "util/seg_assert.h"

namespace seg {

GraphPartition GraphPartition::greedy_bfs(const GraphTopology& graph,
                                          int parts) {
  SEG_ASSERT(parts >= 1, "part count " << parts);
  const std::size_t n = graph.node_count();
  GraphPartition p;
  p.part_count_ = parts;
  if (parts == 1) return p;
  SEG_ASSERT(static_cast<std::size_t>(parts) <= n,
             parts << " parts over " << n << " nodes");

  p.part_of_.assign(n, -1);
  std::size_t assigned = 0;
  std::uint32_t scan = 0;  // lowest possibly-unassigned id
  for (int part = 0; part < parts; ++part) {
    // Remaining nodes split evenly over remaining parts (ceiling), so the
    // last part absorbs any BFS shortfall from disconnected components.
    const std::size_t remaining_parts = static_cast<std::size_t>(parts - part);
    const std::size_t target =
        (n - assigned + remaining_parts - 1) / remaining_parts;
    std::deque<std::uint32_t> frontier;
    std::size_t size = 0;
    while (size < target) {
      if (frontier.empty()) {
        while (scan < n && p.part_of_[scan] != -1) ++scan;
        if (scan >= n) break;
        frontier.push_back(scan);
        p.part_of_[scan] = part;
        ++size;
        ++assigned;
        continue;
      }
      const std::uint32_t v = frontier.front();
      frontier.pop_front();
      const auto [row, len] = graph.row(v);
      for (int i = 0; i < len && size < target; ++i) {
        const std::uint32_t u = row[i];
        if (p.part_of_[u] != -1) continue;
        p.part_of_[u] = part;
        frontier.push_back(u);
        ++size;
        ++assigned;
      }
    }
  }
  SEG_ASSERT(assigned == n, "BFS assigned " << assigned << " of " << n);

  p.boundary_.assign(n, 0);
  for (std::uint32_t v = 0; v < n; ++v) {
    const auto [row, len] = graph.row(v);
    for (int i = 0; i < len; ++i) {
      if (p.part_of_[row[i]] != p.part_of_[v]) {
        p.boundary_[v] = 1;
        break;
      }
    }
  }
  return p;
}

std::size_t GraphPartition::boundary_site_count() const {
  std::size_t count = 0;
  for (const std::uint8_t b : boundary_) count += b;
  return count;
}

}  // namespace seg
