#include "theory/bounds.h"

#include <cmath>

#include <gtest/gtest.h>

#include "rng/rng.h"

namespace seg {
namespace {

TEST(Log2Binomial, SmallExactValues) {
  EXPECT_DOUBLE_EQ(log2_binomial(5, 0), 0.0);
  EXPECT_DOUBLE_EQ(log2_binomial(5, 5), 0.0);
  EXPECT_NEAR(log2_binomial(5, 2), std::log2(10.0), 1e-10);
  EXPECT_NEAR(log2_binomial(10, 5), std::log2(252.0), 1e-10);
}

TEST(Log2Binomial, OutOfRangeIsMinusInfinity) {
  EXPECT_TRUE(std::isinf(log2_binomial(5, -1)));
  EXPECT_TRUE(std::isinf(log2_binomial(5, 6)));
}

TEST(Log2BinomialCdf, MatchesDirectSummation) {
  // P(Bin(8, 1/2) <= 3) = (1 + 8 + 28 + 56) / 256 = 93/256.
  EXPECT_NEAR(std::exp2(log2_binomial_cdf_half(8, 3)), 93.0 / 256.0, 1e-12);
}

TEST(Log2BinomialCdf, FullRangeIsOne) {
  EXPECT_DOUBLE_EQ(log2_binomial_cdf_half(8, 8), 0.0);
  EXPECT_DOUBLE_EQ(log2_binomial_cdf_half(8, 20), 0.0);
}

TEST(Log2BinomialCdf, NegativeKIsZeroProbability) {
  EXPECT_TRUE(std::isinf(log2_binomial_cdf_half(8, -1)));
}

TEST(Log2BinomialCdf, MedianIsAboutHalf) {
  // P(Bin(2m+1, 1/2) <= m) = 1/2 exactly.
  EXPECT_NEAR(std::exp2(log2_binomial_cdf_half(9, 4)), 0.5, 1e-12);
}

TEST(HappinessThreshold, CeilConvention) {
  EXPECT_EQ(happiness_threshold(0.5, 9), 5);    // ceil(4.5)
  EXPECT_EQ(happiness_threshold(0.5, 10), 5);   // exact
  EXPECT_EQ(happiness_threshold(0.3, 10), 3);   // 3.0000000000000004 -> 3
  EXPECT_EQ(happiness_threshold(0.34, 25), 9);  // ceil(8.5)
  EXPECT_EQ(happiness_threshold(0.0, 25), 0);
  EXPECT_EQ(happiness_threshold(1.0, 25), 25);
}

TEST(HappinessThreshold, PaperFig1Parameters) {
  // tau = 0.42, N = 441 -> K = ceil(185.22) = 186.
  EXPECT_EQ(happiness_threshold(0.42, 441), 186);
}

TEST(UnhappyProbability, MatchesMonteCarlo) {
  const double tau = 0.45;
  const int w = 2;
  const int N = (2 * w + 1) * (2 * w + 1);
  const double exact = unhappy_probability_exact(tau, N);
  // Monte Carlo: draw the agent and its N-1 neighbors i.i.d. fair.
  Rng rng(1234);
  const int trials = 200000;
  const int K = happiness_threshold(tau, N);
  int unhappy = 0;
  for (int t = 0; t < trials; ++t) {
    int same = 1;  // self
    for (int i = 0; i < N - 1; ++i) same += rng.bernoulli(0.5);
    unhappy += same < K;
  }
  EXPECT_NEAR(static_cast<double>(unhappy) / trials, exact, 0.01);
}

TEST(UnhappyProbability, IncreasesWithTau) {
  const int N = 49;
  double prev = unhappy_probability_exact(0.2, N);
  for (double tau = 0.25; tau <= 0.5; tau += 0.05) {
    const double cur = unhappy_probability_exact(tau, N);
    EXPECT_GE(cur, prev) << tau;
    prev = cur;
  }
}

TEST(UnhappyProbability, ZeroWhenTauTiny) {
  // tau*N < 2 means even 1 same-type agent (self) suffices.
  EXPECT_DOUBLE_EQ(unhappy_probability_exact(0.01, 25), 0.0);
}

TEST(UnhappyProbability, AsymptoticTracksExactWithinPolyFactor) {
  const double tau = 0.45;
  for (const int w : {3, 5, 8}) {
    const int N = (2 * w + 1) * (2 * w + 1);
    const double exact = unhappy_probability_exact(tau, N);
    const double asym = unhappy_probability_asymptotic(tau, N);
    ASSERT_GT(exact, 0.0);
    ASSERT_GT(asym, 0.0);
    // Lemma 19: the ratio is bounded by constants (poly(N) slack allowed).
    const double ratio = exact / asym;
    EXPECT_GT(ratio, 1e-3) << "w=" << w;
    EXPECT_LT(ratio, 1e3) << "w=" << w;
  }
}

TEST(NeighborhoodSize, Squares) {
  EXPECT_EQ(neighborhood_size(0), 1);
  EXPECT_EQ(neighborhood_size(1), 9);
  EXPECT_EQ(neighborhood_size(10), 441);
}

TEST(RadicalRadius, FloorConvention) {
  EXPECT_EQ(radical_radius(10, 0.3), 13);
  EXPECT_EQ(radical_radius(4, 0.5), 6);
  EXPECT_EQ(radical_radius(3, 0.1), 3);
}

TEST(RadicalRegionProbability, InUnitInterval) {
  for (const double tau : {0.36, 0.40, 0.45}) {
    const double p = radical_region_probability_exact(tau, 4, 0.3, 0.25);
    EXPECT_GE(p, 0.0) << tau;
    EXPECT_LE(p, 1.0) << tau;
  }
}

TEST(RadicalRegionProbability, DecreasesWithW) {
  // Exponentially rarer as the neighborhood grows.
  const double p3 = radical_region_probability_exact(0.45, 3, 0.3, 0.25);
  const double p5 = radical_region_probability_exact(0.45, 5, 0.3, 0.25);
  const double p8 = radical_region_probability_exact(0.45, 8, 0.3, 0.25);
  EXPECT_GT(p3, p5);
  EXPECT_GT(p5, p8);
}

TEST(RadicalRegionProbability, IncreasesWithTau) {
  const double lo = radical_region_probability_exact(0.36, 5, 0.3, 0.25);
  const double hi = radical_region_probability_exact(0.48, 5, 0.3, 0.25);
  EXPECT_LT(lo, hi);
}

TEST(AzumaBound, BasicProperties) {
  EXPECT_LE(azuma_two_sided_bound(0.0, 10), 1.0);
  EXPECT_LT(azuma_two_sided_bound(10.0, 10), azuma_two_sided_bound(1.0, 10));
  EXPECT_GT(azuma_two_sided_bound(5.0, 100), azuma_two_sided_bound(5.0, 1));
}

TEST(Lemma18Bound, ShrinksWithN) {
  const double b1 = lemma18_bound(1.0, 0.1, 100);
  const double b2 = lemma18_bound(1.0, 0.1, 10000);
  EXPECT_LT(b2, b1);
  EXPECT_LE(b1, 1.0);
}

TEST(Lemma18Bound, EmpiricalCoverage) {
  // The bound must dominate the actual deviation probability.
  const int N = 400;
  const double c = 1.0, eps = 0.1;
  const double dev = c * std::pow(N, 0.5 + eps);
  Rng rng(99);
  const int trials = 20000;
  int exceed = 0;
  for (int t = 0; t < trials; ++t) {
    int wcount = 0;
    for (int i = 0; i < N; ++i) wcount += rng.bernoulli(0.5);
    if (std::abs(wcount - N / 2.0) >= dev) ++exceed;
  }
  EXPECT_LE(static_cast<double>(exceed) / trials,
            lemma18_bound(c, eps, N) + 0.01);
}

}  // namespace
}  // namespace seg
