// Empirical counterpart of the paper's FKG-Harris inequality (Lemma 23):
// increasing events on the process are positively correlated. The product
// initial measure satisfies FKG exactly; the dynamic extension (Harris'
// theorem) is checked here by Monte-Carlo on the actual process.
#include <gtest/gtest.h>

#include "core/dynamics.h"
#include "core/model.h"
#include "util/stats.h"

namespace seg {
namespace {

// Empirical correlation of two 0/1 event indicators across seeds.
struct EventCorrelation {
  double p_a = 0, p_b = 0, p_ab = 0;
  double covariance() const { return p_ab - p_a * p_b; }
};

template <typename EventA, typename EventB>
EventCorrelation correlate(std::size_t trials, EventA&& a, EventB&& b) {
  EventCorrelation c;
  for (std::size_t t = 0; t < trials; ++t) {
    const bool ea = a(t);
    const bool eb = b(t);
    c.p_a += ea;
    c.p_b += eb;
    c.p_ab += ea && eb;
  }
  c.p_a /= static_cast<double>(trials);
  c.p_b /= static_cast<double>(trials);
  c.p_ab /= static_cast<double>(trials);
  return c;
}

TEST(Fkg, StaticIncreasingEventsPositivelyCorrelated) {
  // Increasing events on the initial product measure: "ball around u is
  // majority +1" and the same for an overlapping ball. FKG is exact here;
  // the empirical covariance must be clearly positive.
  const int n = 16;
  std::vector<std::vector<std::int8_t>> fields;
  for (std::size_t t = 0; t < 4000; ++t) {
    Rng rng = Rng::stream(1234, t);
    fields.push_back(random_spins(n, 0.5, rng));
  }
  const auto majority_plus = [&](const std::vector<std::int8_t>& s, int cx,
                                 int cy) {
    int plus = 0;
    for (int dy = -2; dy <= 2; ++dy) {
      for (int dx = -2; dx <= 2; ++dx) {
        plus += s[torus_wrap(cy + dy, n) * n + torus_wrap(cx + dx, n)] > 0;
      }
    }
    return plus > 12;
  };
  const auto c = correlate(
      fields.size(),
      [&](std::size_t t) { return majority_plus(fields[t], 6, 8); },
      [&](std::size_t t) { return majority_plus(fields[t], 8, 8); });
  EXPECT_GT(c.covariance(), 0.05);
}

TEST(Fkg, DisjointEventsNearIndependent) {
  // Balls with disjoint supports: covariance ~ 0 (sanity check that the
  // positive correlation above is real, not an estimator artifact).
  const int n = 24;
  const auto majority_plus = [&](const std::vector<std::int8_t>& s, int cx,
                                 int cy) {
    int plus = 0;
    for (int dy = -2; dy <= 2; ++dy) {
      for (int dx = -2; dx <= 2; ++dx) {
        plus += s[torus_wrap(cy + dy, n) * n + torus_wrap(cx + dx, n)] > 0;
      }
    }
    return plus > 12;
  };
  std::vector<std::vector<std::int8_t>> fields;
  for (std::size_t t = 0; t < 4000; ++t) {
    Rng rng = Rng::stream(777, t);
    fields.push_back(random_spins(n, 0.5, rng));
  }
  const auto c = correlate(
      fields.size(),
      [&](std::size_t t) { return majority_plus(fields[t], 4, 4); },
      [&](std::size_t t) { return majority_plus(fields[t], 16, 16); });
  EXPECT_NEAR(c.covariance(), 0.0, 0.02);
}

TEST(Fkg, DynamicIncreasingEventsPositivelyCorrelated) {
  // Harris extension: run the actual Glauber process and test the
  // increasing events "agent u ends +1" / "agent v ends +1" for nearby
  // u, v. Positive association propagates through the dynamics.
  const int n = 24;
  const std::size_t trials = 300;
  std::vector<std::int8_t> final_u(trials), final_v(trials);
  for (std::size_t t = 0; t < trials; ++t) {
    ModelParams p{.n = n, .w = 2, .tau = 0.45, .p = 0.5};
    Rng init = Rng::stream(9000 + t, 0);
    SchellingModel m(p, init);
    Rng dyn = Rng::stream(9000 + t, 1);
    run_glauber(m, dyn);
    final_u[t] = m.spin(m.id_of(10, 10));
    final_v[t] = m.spin(m.id_of(13, 10));
  }
  const auto c = correlate(
      trials, [&](std::size_t t) { return final_u[t] > 0; },
      [&](std::size_t t) { return final_v[t] > 0; });
  // Nearby agents usually end inside the same monochromatic region: the
  // covariance is strongly positive.
  EXPECT_GT(c.covariance(), 0.05);
}

}  // namespace
}  // namespace seg
