// Minimal JSON well-formedness checker shared by the observability
// tests (trace export, progress records, flight-recorder dumps, run
// reports). Recursive-descent validator for the subset the writers emit
// (objects, arrays, strings, numbers, literals); json_well_formed
// returns false on any syntax error or trailing garbage.
#pragma once

#include <cstddef>
#include <string>

namespace seg::testing {

struct JsonChecker {
  const char* p;
  const char* end;
  int depth = 0;

  bool ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r'))
      ++p;
    return true;
  }
  bool literal(const char* lit) {
    const std::size_t len = std::string(lit).size();
    if (static_cast<std::size_t>(end - p) < len) return false;
    if (std::string(p, p + len) != lit) return false;
    p += len;
    return true;
  }
  bool string() {
    if (p >= end || *p != '"') return false;
    ++p;
    while (p < end && *p != '"') {
      if (*p == '\\') {
        ++p;
        if (p >= end) return false;
      }
      ++p;
    }
    if (p >= end) return false;
    ++p;  // closing quote
    return true;
  }
  bool number() {
    const char* start = p;
    if (p < end && (*p == '-' || *p == '+')) ++p;
    bool digits = false;
    while (p < end && ((*p >= '0' && *p <= '9') || *p == '.' || *p == 'e' ||
                       *p == 'E' || *p == '-' || *p == '+')) {
      digits = digits || (*p >= '0' && *p <= '9');
      ++p;
    }
    return digits && p > start;
  }
  bool value() {
    if (++depth > 64) return false;
    ws();
    bool ok = false;
    if (p >= end) {
      ok = false;
    } else if (*p == '{') {
      ++p;
      ws();
      if (p < end && *p == '}') {
        ++p;
        ok = true;
      } else {
        for (;;) {
          ws();
          if (!string()) return false;
          ws();
          if (p >= end || *p != ':') return false;
          ++p;
          if (!value()) return false;
          ws();
          if (p < end && *p == ',') {
            ++p;
            continue;
          }
          break;
        }
        ok = p < end && *p == '}';
        if (ok) ++p;
      }
    } else if (*p == '[') {
      ++p;
      ws();
      if (p < end && *p == ']') {
        ++p;
        ok = true;
      } else {
        for (;;) {
          if (!value()) return false;
          ws();
          if (p < end && *p == ',') {
            ++p;
            continue;
          }
          break;
        }
        ok = p < end && *p == ']';
        if (ok) ++p;
      }
    } else if (*p == '"') {
      ok = string();
    } else if (*p == 't') {
      ok = literal("true");
    } else if (*p == 'f') {
      ok = literal("false");
    } else if (*p == 'n') {
      ok = literal("null");
    } else {
      ok = number();
    }
    --depth;
    return ok;
  }
};

inline bool json_well_formed(const std::string& doc) {
  JsonChecker c{doc.data(), doc.data() + doc.size()};
  if (!c.value()) return false;
  c.ws();
  return c.p == c.end;
}

}  // namespace seg::testing
