// Campaign checkpoint persistence.
//
// A checkpoint stores the raw per-replica metric vectors (not the folded
// aggregates) so a resumed campaign can rebuild the exact same fold the
// uninterrupted run would have produced. Doubles are stored as their IEEE
// bit patterns in hex, so the round-trip is bit-exact. Files are written
// to a temp path and renamed into place, and carry a trailer line, so a
// half-written checkpoint is detected and ignored on load.
//
// Identity: a checkpoint records the campaign seed and an identity hash
// (spec text plus the actual expanded points, see campaign.cc); resuming
// against a different seed, spec, or point list must be refused by the
// caller (the engine checks all of it).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/stopping.h"

namespace seg {

struct CheckpointData {
  std::uint64_t seed = 0;
  std::uint64_t spec_hash = 0;
  std::size_t metric_count = 0;
  // One flag per global replica index; values[g] is meaningful iff
  // done[g] != 0 and then holds metric_count entries.
  std::vector<std::uint8_t> done;
  std::vector<std::vector<double>> values;

  // Stop decisions recorded so far (adaptive campaigns only), ordered by
  // point index. Persisted as `s` lines plus a `trace <fnv-hash>` line
  // folded over the entries; a load whose stored hash disagrees with its
  // own `s` lines is rejected as corrupt. Empty for rule-none campaigns —
  // their files stay byte-identical to the pre-adaptive format.
  std::vector<StopDecision> trace;

  std::size_t done_count() const;
};

// Atomically writes `data` to `path`. Returns false on I/O failure.
bool save_checkpoint(const std::string& path, const CheckpointData& data);

// Loads `path`. Returns false (leaving *out untouched) if the file is
// missing, truncated, or malformed.
bool load_checkpoint(const std::string& path, CheckpointData* out);

}  // namespace seg
