#include "util/stats.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace seg {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.sem(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, KnownMeanAndVariance) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations = 32.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStats, MinMaxTracked) {
  RunningStats s;
  s.add(-1.0);
  s.add(10.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.min(), -1.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
}

TEST(RunningStats, MergeMatchesCombinedStream) {
  RunningStats a, b, combined;
  for (int i = 0; i < 50; ++i) {
    const double v = std::sin(i) * 10.0;
    (i % 2 == 0 ? a : b).add(v);
    combined.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), combined.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(2.0);
  const double mean_before = a.mean();
  a.merge(b);  // no-op
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);
  b.merge(a);  // copies
  EXPECT_DOUBLE_EQ(b.mean(), mean_before);
}

TEST(RunningStats, SemShrinksWithSamples) {
  RunningStats s;
  s.add(0.0);
  s.add(1.0);
  const double sem2 = s.sem();
  for (int i = 0; i < 100; ++i) {
    s.add(i % 2);
  }
  EXPECT_LT(s.sem(), sem2);
  EXPECT_NEAR(s.ci95_half_width(), 1.96 * s.sem(), 1e-15);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(5.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(Histogram, BinsValuesCorrectly) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bin 0
  h.add(9.99);  // bin 9
  h.add(5.0);   // bin 5
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, UnderflowAndOverflow) {
  Histogram h(0.0, 1.0, 4);
  h.add(-0.1);
  h.add(1.0);  // hi is exclusive
  h.add(2.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, FractionIncludesOutliers) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.25);
  h.add(5.0);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.5);
}

TEST(LinearFitTest, RecoversExactLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i);
    y.push_back(2.5 * i - 7.0);
  }
  const LinearFit fit = fit_line(x, y);
  EXPECT_NEAR(fit.slope, 2.5, 1e-12);
  EXPECT_NEAR(fit.intercept, -7.0, 1e-10);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(LinearFitTest, ConstantDataHasZeroSlope) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{5, 5, 5, 5};
  const LinearFit fit = fit_line(x, y);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 5.0);
  EXPECT_DOUBLE_EQ(fit.r2, 1.0);  // convention: flat data is a perfect fit
}

TEST(LinearFitTest, TooFewPointsReturnsDefault) {
  const LinearFit fit = fit_line({1.0}, {2.0});
  EXPECT_EQ(fit.n, 1u);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
}

TEST(LinearFitTest, DegenerateXReturnsDefault) {
  const LinearFit fit = fit_line({3.0, 3.0, 3.0}, {1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
}

TEST(QuantileTest, MedianAndExtremes) {
  std::vector<double> v{5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
}

TEST(QuantileTest, InterpolatesBetweenOrderStatistics) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
}

TEST(QuantileTest, EmptyReturnsZero) {
  EXPECT_DOUBLE_EQ(quantile({}, 0.5), 0.0);
}

TEST(MeanOfTest, Basic) {
  EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
}

// Parallel-Welford shape: one shard per worker over contiguous blocks,
// folded left-to-right, must agree with the sequential stream.
TEST(RunningStats, ShardedMergeMatchesSequential) {
  constexpr int kShards = 16;
  constexpr int kPerShard = 250;
  RunningStats sequential;
  std::vector<RunningStats> shards(kShards);
  for (int s = 0; s < kShards; ++s) {
    for (int i = 0; i < kPerShard; ++i) {
      const double v = std::cos(s * kPerShard + i) * 3.0 + 0.5;
      sequential.add(v);
      shards[s].add(v);
    }
  }
  RunningStats folded;
  for (const RunningStats& shard : shards) folded.merge(shard);
  EXPECT_EQ(folded.count(), sequential.count());
  EXPECT_NEAR(folded.mean(), sequential.mean(), 1e-13);
  EXPECT_NEAR(folded.variance(), sequential.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(folded.min(), sequential.min());
  EXPECT_DOUBLE_EQ(folded.max(), sequential.max());
}

// Tree reduction (the order a parallel fold naturally produces) must agree
// with a flat left fold.
TEST(RunningStats, TreeMergeMatchesFlatMerge) {
  constexpr int kShards = 8;
  std::vector<RunningStats> shards(kShards);
  for (int s = 0; s < kShards; ++s) {
    for (int i = 0; i < 100; ++i) {
      shards[s].add(std::sin(0.1 * (s * 100 + i)));
    }
  }
  RunningStats flat;
  for (const RunningStats& shard : shards) flat.merge(shard);
  std::vector<RunningStats> level(shards);
  while (level.size() > 1) {
    std::vector<RunningStats> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      RunningStats pair = level[i];
      pair.merge(level[i + 1]);
      next.push_back(pair);
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
  }
  EXPECT_EQ(level[0].count(), flat.count());
  EXPECT_NEAR(level[0].mean(), flat.mean(), 1e-13);
  EXPECT_NEAR(level[0].variance(), flat.variance(), 1e-12);
}

// Large common offset with tiny spread: the catastrophic-cancellation
// regime a naive sum-of-squares merge gets wrong.
TEST(RunningStats, MergeStableUnderLargeOffset) {
  constexpr double kOffset = 1e9;
  RunningStats a, b, sequential;
  for (int i = 0; i < 1000; ++i) {
    const double v = kOffset + (i % 7) * 0.125;
    (i < 500 ? a : b).add(v);
    sequential.add(v);
  }
  a.merge(b);
  EXPECT_NEAR(a.mean(), sequential.mean(), 1e-6);
  EXPECT_NEAR(a.variance(), sequential.variance(), 1e-9);
  EXPECT_GT(a.variance(), 0.0);
}

// ---- empty-accumulator and single-sample edge cases of the parallel
// fold paths (Histogram::merge / parallel Welford) ----

TEST(RunningStats, SingleSampleMergesMatchTwoElementStream) {
  RunningStats a, b, sequential;
  a.add(3.0);
  b.add(7.0);
  sequential.add(3.0);
  sequential.add(7.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), sequential.mean());
  EXPECT_DOUBLE_EQ(a.variance(), sequential.variance());
  EXPECT_DOUBLE_EQ(a.min(), 3.0);
  EXPECT_DOUBLE_EQ(a.max(), 7.0);
}

TEST(RunningStats, EmptyMergeEmptyStaysEmpty) {
  RunningStats a, b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  // The empty accumulator's sentinel extrema must not leak into sums.
  EXPECT_DOUBLE_EQ(a.sum(), 0.0);
}

TEST(RunningStats, MergeSingleIntoEmptyPreservesExtrema) {
  RunningStats a, b;
  b.add(-2.5);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), -2.5);
  EXPECT_DOUBLE_EQ(a.min(), -2.5);
  EXPECT_DOUBLE_EQ(a.max(), -2.5);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

TEST(Histogram, MergeEmptyIsIdentityEvenAcrossBinnings) {
  Histogram a(0.0, 10.0, 10);
  a.add(1.5);
  const Histogram empty_same(0.0, 10.0, 10);
  const Histogram empty_other(-5.0, 5.0, 4);
  a.merge(empty_same);
  a.merge(empty_other);  // empty: no-op, not a mismatch
  EXPECT_EQ(a.total(), 1u);
  EXPECT_EQ(a.bin_count(1), 1u);
}

TEST(Histogram, MergeSingleSampleIntoEmpty) {
  Histogram a(0.0, 1.0, 4);
  Histogram b(0.0, 1.0, 4);
  b.add(0.6);
  a.merge(b);
  EXPECT_EQ(a.total(), 1u);
  EXPECT_EQ(a.bin_count(2), 1u);
  EXPECT_DOUBLE_EQ(a.fraction(2), 1.0);
}

TEST(Histogram, MergeMismatchedBinningIsIgnored) {
  Histogram a(0.0, 10.0, 10);
  Histogram b(0.0, 20.0, 10);
  a.add(1.0);
  b.add(15.0);
  a.merge(b);  // non-empty mismatch: fail closed, keep a intact
  EXPECT_EQ(a.total(), 1u);
  EXPECT_EQ(a.bin_count(1), 1u);
}

TEST(Histogram, DegenerateParametersFailSafe) {
  // bins == 0 and hi <= lo collapse to a single unit-range bin instead
  // of indexing out of bounds in release builds.
  Histogram zero_bins(0.0, 1.0, 0);
  EXPECT_EQ(zero_bins.bins(), 1u);
  zero_bins.add(0.5);
  EXPECT_EQ(zero_bins.bin_count(0), 1u);

  Histogram inverted(3.0, 3.0, 2);
  EXPECT_GT(inverted.bin_hi(inverted.bins() - 1), 3.0);
  inverted.add(3.5);
  inverted.add(2.0);
  EXPECT_EQ(inverted.total(), 2u);
  EXPECT_EQ(inverted.underflow(), 1u);
}

TEST(Histogram, MergeSumsBinsAndTails) {
  Histogram a(0.0, 10.0, 10);
  Histogram b(0.0, 10.0, 10);
  a.add(0.5);
  a.add(-1.0);
  b.add(0.7);
  b.add(5.5);
  b.add(11.0);
  a.merge(b);
  EXPECT_EQ(a.bin_count(0), 2u);
  EXPECT_EQ(a.bin_count(5), 1u);
  EXPECT_EQ(a.underflow(), 1u);
  EXPECT_EQ(a.overflow(), 1u);
  EXPECT_EQ(a.total(), 5u);
  EXPECT_DOUBLE_EQ(a.fraction(0), 2.0 / 5.0);
}

}  // namespace
}  // namespace seg
