// Lattice layer tests: window span decomposition (order and coverage),
// halo-padded fields, membership tables, and the BinarySpinEngine's
// threshold-crossing fast path against brute-force recounts — including
// the dense fallback used when a code table has too many boundaries.
#include <vector>

#include <gtest/gtest.h>

#include "core/model.h"
#include "lattice/engine.h"
#include "lattice/halo_field.h"
#include "lattice/membership.h"
#include "lattice/window.h"

namespace seg {
namespace {

// Reference order: the legacy double loop, dy then dx, wrapped.
std::vector<std::uint32_t> legacy_window(int cx, int cy, int r, int n) {
  std::vector<std::uint32_t> ids;
  for (int dy = -r; dy <= r; ++dy) {
    for (int dx = -r; dx <= r; ++dx) {
      ids.push_back(static_cast<std::uint32_t>(
          static_cast<std::size_t>(torus_wrap(cy + dy, n)) * n +
          torus_wrap(cx + dx, n)));
    }
  }
  return ids;
}

TEST(WindowSpans, MatchLegacyStencilOrderEverywhere) {
  for (const auto& [n, r] : {std::pair{7, 1}, {7, 3}, {16, 2}, {16, 5},
                             {9, 4}}) {
    for (int cy = 0; cy < n; ++cy) {
      for (int cx = 0; cx < n; ++cx) {
        std::vector<std::uint32_t> ids;
        for_each_window_cell(cx, cy, r, n,
                             [&](std::uint32_t id) { ids.push_back(id); });
        ASSERT_EQ(ids, legacy_window(cx, cy, r, n))
            << "n=" << n << " r=" << r << " center=(" << cx << "," << cy
            << ")";
      }
    }
  }
}

TEST(WindowSpans, PointVariantAgreesWithCellVariant) {
  const int n = 11, r = 3;
  for (const auto [cx, cy] : {std::pair{0, 0}, {10, 10}, {5, 5}, {1, 9}}) {
    std::vector<std::uint32_t> from_cells, from_points;
    for_each_window_cell(cx, cy, r, n,
                         [&](std::uint32_t id) { from_cells.push_back(id); });
    for_each_window_point(cx, cy, r, n, [&](int x, int y, std::uint32_t id) {
      EXPECT_EQ(static_cast<std::uint32_t>(y * n + x), id);
      from_points.push_back(id);
    });
    EXPECT_EQ(from_cells, from_points);
  }
}

TEST(WindowSpans, UntilVariantStopsEarly) {
  const int n = 8, r = 2;
  int visited = 0;
  const bool completed =
      for_each_window_point_until(4, 4, r, n, [&](int, int, std::uint32_t) {
        return ++visited < 7;
      });
  EXPECT_FALSE(completed);
  EXPECT_EQ(visited, 7);
  visited = 0;
  EXPECT_TRUE(for_each_window_point_until(
      4, 4, r, n, [&](int, int, std::uint32_t) {
        ++visited;
        return true;
      }));
  EXPECT_EQ(visited, (2 * r + 1) * (2 * r + 1));
}

TEST(WindowGeometry, IdPointRoundTrip) {
  const WindowGeometry g(12, 3);
  EXPECT_EQ(g.window_size(), 49);
  for (std::uint32_t id = 0; id < g.site_count(); ++id) {
    const Point p = g.point_of(id);
    EXPECT_EQ(g.id_of(p.x, p.y), id);
  }
  EXPECT_EQ(g.id_of(-1, -1), g.id_of(11, 11));
}

TEST(HaloField, MatchesTorusEverywhere) {
  const int n = 10, halo = 4;
  Rng rng(5);
  std::vector<std::int8_t> field(static_cast<std::size_t>(n) * n);
  for (auto& v : field) v = static_cast<std::int8_t>(rng.uniform_below(5));
  const HaloField<std::int8_t> padded(field, n, halo);
  for (int y = -halo; y < n + halo; ++y) {
    for (int x = -halo; x < n + halo; ++x) {
      ASSERT_EQ(padded.at(x, y),
                field[static_cast<std::size_t>(torus_wrap(y, n)) * n +
                      torus_wrap(x, n)]);
    }
  }
}

TEST(HaloField, WindowRowsCoverTheWindow) {
  const int n = 9, halo = 3, r = 3;
  Rng rng(6);
  std::vector<std::int32_t> field(static_cast<std::size_t>(n) * n);
  for (auto& v : field) v = static_cast<std::int32_t>(rng.uniform_below(100));
  const HaloField<std::int32_t> padded(field, n, halo);
  for (int cy = 0; cy < n; ++cy) {
    for (int cx = 0; cx < n; ++cx) {
      std::int64_t via_rows = 0;
      padded.for_each_window_row(cx, cy, r,
                                 [&](const std::int32_t* row, int len) {
                                   for (int i = 0; i < len; ++i) {
                                     via_rows += row[i];
                                   }
                                 });
      std::int64_t direct = 0;
      for_each_window_cell(cx, cy, r, n,
                           [&](std::uint32_t id) { direct += field[id]; });
      ASSERT_EQ(via_rows, direct);
    }
  }
}

TEST(MembershipTable, StoresCodesPerSpinAndCount) {
  const int N = 9;
  const MembershipTable table(N, [&](bool plus, int count) -> std::uint8_t {
    return plus ? (count >= 5 ? 0 : 1) : (count <= 3 ? 0 : 3);
  });
  for (int c = 0; c <= N; ++c) {
    EXPECT_EQ(table.code(true, c), c >= 5 ? 0 : 1);
    EXPECT_EQ(table.code(false, c), c <= 3 ? 0 : 3);
  }
  EXPECT_EQ(table.data()[table.spin_offset(+1) + 2], table.code(true, 2));
  EXPECT_EQ(table.data()[table.spin_offset(-1) + 2], table.code(false, 2));
}

// Random flips against the full recount audit, on both engine paths.
TEST(BinarySpinEngine, RandomFlipsKeepInvariants) {
  const int n = 12, w = 2;
  Rng rng(42);
  auto spins = random_spins(n, 0.5, rng);
  const int N = (2 * w + 1) * (2 * w + 1);
  // A Schelling-like two-set table (few boundaries: sparse fast path).
  MembershipTable table(N, [&](bool plus, int count) -> std::uint8_t {
    const int same = plus ? count : N - count;
    if (same >= 12) return 0;
    return (N - same + 1 >= 12) ? 3 : 1;
  });
  BinarySpinEngine engine(n, w, /*dense_window=*/true,
                          neighborhood_offsets(NeighborhoodShape::kMoore, w),
                          spins, std::move(table), 2);
  ASSERT_TRUE(engine.check_invariants());
  for (int step = 0; step < 500; ++step) {
    const auto id =
        static_cast<std::uint32_t>(rng.uniform_below(engine.size()));
    engine.flip(id);
    if (step % 50 == 0) ASSERT_TRUE(engine.check_invariants());
  }
  EXPECT_TRUE(engine.check_invariants());
}

TEST(BinarySpinEngine, DenseFallbackHandlesManyBoundaries) {
  const int n = 10, w = 1;
  Rng rng(43);
  auto spins = random_spins(n, 0.5, rng);
  const int N = (2 * w + 1) * (2 * w + 1);
  // Alternating code: a boundary at every count, forcing the per-cell
  // table fallback instead of the sparse-crossing fast path.
  MembershipTable table(N, [](bool plus, int count) -> std::uint8_t {
    return static_cast<std::uint8_t>((count + (plus ? 0 : 1)) & 1);
  });
  BinarySpinEngine engine(n, w, /*dense_window=*/true,
                          neighborhood_offsets(NeighborhoodShape::kMoore, w),
                          spins, std::move(table), 1);
  ASSERT_TRUE(engine.check_invariants());
  for (int step = 0; step < 300; ++step) {
    const auto id =
        static_cast<std::uint32_t>(rng.uniform_below(engine.size()));
    engine.flip(id);
  }
  EXPECT_TRUE(engine.check_invariants());
}

TEST(BinarySpinEngine, GenericStencilPathKeepsInvariants) {
  const int n = 11, w = 2;
  Rng rng(44);
  auto spins = random_spins(n, 0.4, rng);
  auto offsets = neighborhood_offsets(NeighborhoodShape::kVonNeumann, w);
  const int N = static_cast<int>(offsets.size());
  MembershipTable table(N, [&](bool plus, int count) -> std::uint8_t {
    const int same = plus ? count : N - count;
    return same < 6 ? 1 : 0;
  });
  BinarySpinEngine engine(n, w, /*dense_window=*/false, std::move(offsets),
                          spins, std::move(table), 1);
  ASSERT_TRUE(engine.check_invariants());
  for (int step = 0; step < 300; ++step) {
    const auto id =
        static_cast<std::uint32_t>(rng.uniform_below(engine.size()));
    engine.flip(id);
  }
  EXPECT_TRUE(engine.check_invariants());
}

}  // namespace
}  // namespace seg
