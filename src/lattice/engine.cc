#include "lattice/engine.h"

#include <cassert>

#include "grid/box_sum.h"

namespace seg {

BinarySpinEngine::BinarySpinEngine(int n, int w, bool dense_window,
                                   std::vector<Point> offsets,
                                   std::vector<std::int8_t> spins,
                                   MembershipTable table, int set_count,
                                   ShardLayout layout)
    : geometry_(n, w),
      layout_(std::move(layout)),
      shard_count_(layout_.shard_count()),
      dense_window_(dense_window),
      set_count_(set_count),
      offsets_(std::move(offsets)),
      table_(std::move(table)),
      spins_(std::move(spins)),
      plus_count_(spins_.size(), 0),
      status_(spins_.size(), 0) {
  assert(set_count_ >= 1 && set_count_ <= 8);
  assert(spins_.size() == geometry_.site_count());
  assert(!dense_window_ ||
         static_cast<int>(offsets_.size()) == geometry_.window_size());
  assert(layout_.compatible(n, w));
  sets_.reserve(static_cast<std::size_t>(set_count_) * shard_count_);
  for (int i = 0; i < set_count_ * shard_count_; ++i) {
    // Each shard slice spans only its shard's id window, so sharded set
    // memory stays O(sites) overall (exactly, for stripe layouts).
    const auto [base, extent] = layout_.id_window(i % shard_count_);
    if (extent == 0) {
      sets_.emplace_back(spins_.size());
    } else {
      sets_.emplace_back(extent, base);
    }
  }
  init_counts();
  init_codes();
  init_breaks();
}

void BinarySpinEngine::init_breaks() {
  const int N = window_size();
  sparse_crossings_ = true;
  int found = 0;
  for (int c = 1; c <= N; ++c) {
    if (table_.code(true, c) == table_.code(true, c - 1) &&
        table_.code(false, c) == table_.code(false, c - 1)) {
      continue;
    }
    if (found == kMaxBreaks) {
      sparse_crossings_ = false;
      break;
    }
    breaks_[found++] = c;
  }
  // Sentinel no count can reach: counts stay in [0, N] and the flip loop
  // compares against break or break - 1.
  for (int k = found; k < kMaxBreaks; ++k) breaks_[k] = -2;
}

void BinarySpinEngine::init_counts() {
  std::vector<std::int32_t> plus_indicator(spins_.size());
  for (std::size_t i = 0; i < spins_.size(); ++i) {
    assert(spins_[i] == 1 || spins_[i] == -1);
    plus_indicator[i] = spins_[i] > 0 ? 1 : 0;
  }
  const int n = geometry_.side();
  if (dense_window_) {
    // Separable sliding-window box sum, O(n^2) independent of w.
    plus_count_ = box_sum_torus(plus_indicator, n, geometry_.radius());
    return;
  }
  // Generic stencil: one cache-friendly shifted-add pass per offset,
  // O(n^2 N) at construction only.
  for (const Point o : offsets_) {
    for (int y = 0; y < n; ++y) {
      const std::size_t src_row =
          static_cast<std::size_t>(torus_wrap(y + o.y, n)) * n;
      std::int32_t* dst =
          plus_count_.data() + static_cast<std::size_t>(y) * n;
      for (int x = 0; x < n; ++x) {
        dst[x] += plus_indicator[src_row + torus_wrap(x + o.x, n)];
      }
    }
  }
}

void BinarySpinEngine::init_codes() {
  const std::uint8_t* tbl = table_.data();
  for (std::uint32_t id = 0; id < spins_.size(); ++id) {
    const std::uint8_t want =
        tbl[table_.spin_offset(spins_[id]) + plus_count_[id]];
    if (want != 0) {
      apply_code(id, 0, want);
      status_[id] = want;
    }
  }
}

void BinarySpinEngine::flip_impl(std::uint32_t id) {
  SEG_ASSERT(id < spins_.size(),
             "flip of out-of-range site " << id << " (lattice has "
                                          << spins_.size() << " sites)");
  SEG_ASSERT(spins_[id] == 1 || spins_[id] == -1,
             "site " << id << " holds corrupt spin "
                     << static_cast<int>(spins_[id]));
  const std::int8_t old_spin = spins_[id];
  spins_[id] = static_cast<std::int8_t>(-old_spin);
  const std::int32_t delta = old_spin > 0 ? -1 : +1;
  if (dense_window_ && sparse_crossings_) {
    // A code changes when the count crosses a piece boundary: arriving at
    // `break` going up, or at `break - 1` going down. Two passes per row
    // span — a count update and an any-hit OR-reduction, both against
    // register constants only, both auto-vectorizable — and a rescan of
    // the (rare) spans that contain a crossing.
    const std::int32_t shift = delta < 0 ? 1 : 0;
    const std::int32_t b0 = breaks_[0] - shift;
    const std::int32_t b1 = breaks_[1] - shift;
    const std::int32_t b2 = breaks_[2] - shift;
    const std::int32_t b3 = breaks_[3] - shift;
    const std::int32_t b4 = breaks_[4] - shift;
    const std::int32_t b5 = breaks_[5] - shift;
    const std::int32_t b6 = breaks_[6] - shift;
    const std::int32_t b7 = breaks_[7] - shift;
    geometry_.for_each_span(id, [&](std::size_t base, int len) {
      SEG_ASSERT(base + static_cast<std::size_t>(len) <= plus_count_.size(),
                 "window span [" << base << ", " << base + len
                                 << ") of site " << id
                                 << " escapes the lattice");
      std::int32_t* cnt = plus_count_.data() + base;
      // The flipped agent itself changes code by changing sign, not by
      // crossing a count boundary — its span always rescans, and the
      // rescan must hit it at its window position to keep the legacy set
      // mutation order.
      const bool has_center =
          id >= base && id < base + static_cast<std::size_t>(len);
      unsigned any = has_center ? 1 : 0;
      for (int i = 0; i < len; ++i) {
        const std::int32_t c = cnt[i] + delta;
        cnt[i] = c;
        any |= static_cast<unsigned>((c == b0) | (c == b1) | (c == b2) |
                                     (c == b3) | (c == b4) | (c == b5) |
                                     (c == b6) | (c == b7));
      }
      if (any) {
        for (int i = 0; i < len; ++i) {
          const auto j = static_cast<std::uint32_t>(base + i);
          const std::int32_t c = cnt[i];
          if ((c == b0) | (c == b1) | (c == b2) | (c == b3) | (c == b4) |
              (c == b5) | (c == b6) | (c == b7) | (j == id)) {
            touch(j, c);
          }
        }
      }
    });
    return;
  }
  if (dense_window_) {
    geometry_.for_each_span(id, [&](std::size_t base, int len) {
      std::int32_t* cnt = plus_count_.data() + base;
      for (int i = 0; i < len; ++i) {
        cnt[i] += delta;
        touch(static_cast<std::uint32_t>(base + i), cnt[i]);
      }
    });
    return;
  }
  const int n = geometry_.side();
  const int cx = static_cast<int>(id % n);
  const int cy = static_cast<int>(id / n);
  for (const Point o : offsets_) {
    const std::uint32_t j = static_cast<std::uint32_t>(
        static_cast<std::size_t>(torus_wrap(cy + o.y, n)) * n +
        torus_wrap(cx + o.x, n));
    plus_count_[j] += delta;
    touch(j, plus_count_[j]);
  }
}

bool BinarySpinEngine::check_invariants() const {
  const int n = geometry_.side();
  for (std::uint32_t id = 0; id < spins_.size(); ++id) {
    if (spins_[id] != 1 && spins_[id] != -1) return false;
    std::int32_t plus = 0;
    const int cx = static_cast<int>(id % n);
    const int cy = static_cast<int>(id / n);
    for (const Point o : offsets_) {
      plus += spins_[static_cast<std::size_t>(torus_wrap(cy + o.y, n)) * n +
                     torus_wrap(cx + o.x, n)] > 0;
    }
    if (plus != plus_count_[id]) return false;
    if (status_[id] != table_.code(spins_[id] > 0, plus)) return false;
    const int owner = layout_.shard_of(id);
    for (int s = 0; s < set_count_; ++s) {
      // The membership must live in the owning shard's slice and nowhere
      // else — a flip routed through the wrong shard would double-count.
      for (int shard = 0; shard < shard_count_; ++shard) {
        const bool want =
            shard == owner && (((status_[id] >> s) & 1) != 0);
        if (sets_[s * shard_count_ + shard].contains(id) != want) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace seg
