#include "campaign/campaign.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <limits>
#include <mutex>
#include <thread>

#include "campaign/checkpoint.h"
#include "campaign/metrics.h"
#include "obs/flight_recorder.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "rng/splitmix64.h"
#include "util/thread_pool.h"

namespace seg {

const char* point_state_name(PointState state) {
  switch (state) {
    case PointState::kFixed: return "fixed";
    case PointState::kStopped: return "stopped";
    case PointState::kCapped: return "capped";
    case PointState::kOpen: return "open";
  }
  return "fixed";
}

const RunningStats* CampaignResult::stats_for(
    std::size_t point_index, const std::string& metric) const {
  if (point_index >= points.size()) return nullptr;
  for (std::size_t m = 0; m < metric_names.size(); ++m) {
    if (metric_names[m] == metric) return &points[point_index].stats[m];
  }
  return nullptr;
}

std::uint64_t derive_replica_seed(std::uint64_t campaign_seed,
                                  std::size_t global_index) {
  return mix_seed(campaign_seed,
                  static_cast<std::uint64_t>(global_index));
}

namespace {

// Campaign identity for checkpoints: the spec hash alone is not enough
// because callers (e.g. the region_size built-in) may adjust the expanded
// points after expand_grid; hash what will actually run.
std::uint64_t campaign_identity(const ScenarioSpec& spec,
                                const std::vector<ScenarioPoint>& points) {
  std::uint64_t h = spec.hash();
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;  // FNV-1a prime
    }
  };
  auto mix_double = [&mix](double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    mix(bits);
  };
  for (const ScenarioPoint& pt : points) {
    mix(static_cast<std::uint64_t>(pt.params.n));
    mix(static_cast<std::uint64_t>(pt.params.w));
    mix_double(pt.params.tau);
    mix_double(pt.params.tau_minus);
    mix_double(pt.params.p);
    mix(static_cast<std::uint64_t>(pt.params.shape));
    mix(static_cast<std::uint64_t>(pt.dynamics));
    // Mixed only for non-torus points so every pre-graph campaign keeps
    // its identity (and its checkpoints). The graph_* parameters are
    // covered by the spec hash (non-default keys enter the canonical
    // text).
    if (pt.topology != TopologyFamily::kTorus) {
      mix(static_cast<std::uint64_t>(pt.topology));
    }
  }
  return h;
}

// Caller-supplied metric names define the column layout of the checkpoint
// rows, so they are part of the identity too (spec.metrics may differ
// from them for custom-replica campaigns).
std::uint64_t metrics_identity(std::uint64_t h,
                               const std::vector<std::string>& names) {
  for (const std::string& name : names) {
    for (const char c : name) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ULL;
    }
    h ^= 0xff;  // separator so {"ab","c"} != {"a","bc"}
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Shared mutable state of one engine run. `mutex` guards done / values /
// the counters and all adaptive state; `checkpoint_mutex` guards
// `checkpoint` and serializes writers so file I/O happens outside `mutex`.
struct EngineState {
  std::mutex mutex;
  std::mutex checkpoint_mutex;
  // Signaled after every completed replica: wakes workers parked because
  // every open point had already claimed its full run-ahead window.
  std::condition_variable claimable;
  std::vector<std::uint8_t> done;
  std::vector<std::vector<double>> values;
  std::size_t fresh_done = 0;       // completed in this run
  std::size_t since_checkpoint = 0;
  std::atomic<bool> stop{false};

  // Adaptive campaigns only. stoppers[p] folds point p's watched metric
  // in replica order; frontier[p] counts the replicas folded so far
  // (rows are folded only while contiguous from replica 0); next[p] is
  // the next replica index to claim. `trace` holds the decisions in fire
  // order — every snapshot sorts by point, and the content of each entry
  // is deterministic, so persisted traces are thread-invariant.
  std::vector<SequentialStopper> stoppers;
  std::vector<std::size_t> frontier;
  std::vector<std::size_t> next;
  std::vector<StopDecision> trace;
  // Replicas the campaign will actually run: the layout total, shrunk
  // whenever a rule fires (progress denominator, so ETA tracks the
  // adaptive workload rather than the worst-case cap).
  std::size_t effective_total = 0;

  // Accumulated snapshot written to disk; rows are added incrementally as
  // replicas complete, so a write never copies more than the delta.
  CheckpointData checkpoint;
  bool checkpoint_write_failed = false;  // guarded by checkpoint_mutex
};

// Folds newly completed rows into the persistent snapshot and writes it.
// Only the done-flag bytes and the decision trace are copied under the
// engine mutex; a row published there is immutable afterwards, so its
// values are copied outside the lock and workers never wait on the copy
// or the disk. checkpoint_mutex is taken first and never inside `mutex`.
// Decisions are recorded in the same critical section as the row that
// triggered them, so the (done, trace) snapshot is always coherent: the
// trace is exactly what a replay of the done rows produces.
void write_checkpoint(const std::string& path, EngineState& state) {
  SEG_TRACE_SPAN("checkpoint_write");
  SEG_TIMED("phase.checkpoint_write_us");
  SEG_COUNT("campaign.checkpoints", 1);
  SEG_FLIGHT("checkpoint_write", 0, 0);
  std::lock_guard<std::mutex> io_lock(state.checkpoint_mutex);
  std::vector<std::uint8_t> done_now;
  std::vector<StopDecision> trace_now;
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    done_now = state.done;
    trace_now = state.trace;
  }
  std::sort(trace_now.begin(), trace_now.end(),
            [](const StopDecision& a, const StopDecision& b) {
              return a.point < b.point;
            });
  CheckpointData& ck = state.checkpoint;
  for (std::size_t g = 0; g < done_now.size(); ++g) {
    if (done_now[g] && !ck.done[g]) {
      ck.values[g] = state.values[g];
      ck.done[g] = 1;
    }
  }
  ck.trace = std::move(trace_now);
  if (!save_checkpoint(path, ck)) {
    if (!state.checkpoint_write_failed) {
      std::fprintf(stderr,
                   "warning: failed to write campaign checkpoint %s\n",
                   path.c_str());
    }
    state.checkpoint_write_failed = true;
  }
}

}  // namespace

CampaignResult run_campaign(const ScenarioSpec& spec,
                            const std::vector<ScenarioPoint>& points,
                            const std::vector<std::string>& metric_names,
                            const ReplicaFn& replica, std::uint64_t seed,
                            const CampaignOptions& options) {
  const bool adaptive = spec.stop.rule != StopRule::kNone;
  const std::size_t replicas = spec.layout_replicas();
  const std::size_t metric_count = metric_names.size();
  const std::size_t npoints = points.size();
  const std::size_t total = npoints * replicas;
  const std::uint64_t identity =
      metrics_identity(campaign_identity(spec, points), metric_names);

  // Watched-metric column for the stopper; empty stop.metric = column 0.
  std::size_t watch = 0;
  if (adaptive && !spec.stop.metric.empty()) {
    const std::size_t idx = metric_index(metric_names, spec.stop.metric);
    if (idx < metric_count) watch = idx;
  }

  EngineState state;
  state.done.assign(total, 0);
  state.values.assign(total, {});
  state.effective_total = total;
  if (adaptive) {
    state.stoppers.assign(npoints, SequentialStopper(spec.stop));
    state.frontier.assign(npoints, 0);
    state.next.assign(npoints, 0);
  }

  // Publishes the live adaptive gauges the progress reporter samples.
  // Call with `state.mutex` held (or before workers start).
  auto update_gauges_locked = [&] {
    if (!obs::enabled()) return;
    std::size_t open = 0;
    double max_h = -1.0;
    for (std::size_t p = 0; p < npoints; ++p) {
      if (state.stoppers[p].fired() || state.frontier[p] >= replicas) continue;
      ++open;
      const double h = state.stoppers[p].half_width();
      if (std::isfinite(h) && h > max_h) max_h = h;
    }
    SEG_GAUGE_SET("campaign.open_points", open);
    if (max_h >= 0.0) {
      SEG_GAUGE_SET("campaign.max_ci_half_width_ppm", max_h * 1e6);
    }
  };

  // Advances point p's fold over its contiguous completed prefix; records
  // the stop decision the moment the rule fires. Call with `state.mutex`
  // held. The fold consumes rows strictly in replica order, so the
  // decision is a function of the campaign seed alone.
  auto fold_point_locked = [&](std::size_t p) {
    SequentialStopper& st = state.stoppers[p];
    if (st.fired()) return;
    std::size_t& fr = state.frontier[p];
    while (fr < replicas && state.done[p * replicas + fr]) {
      const double v = state.values[p * replicas + fr][watch];
      ++fr;
      if (st.observe(v)) {
        state.trace.push_back(StopDecision{
            static_cast<std::uint32_t>(p), static_cast<std::uint32_t>(fr),
            spec.stop.rule, st.bound_at_stop()});
        SEG_FLIGHT("stop_decision", p, fr);
        // The point's remaining cap shrinks to what is already claimed or
        // recorded: the decision prefix, claims in flight, and any
        // resumed row beyond them.
        std::size_t cap = std::max(fr, state.next[p]);
        for (std::size_t r = replicas; r > cap; --r) {
          if (state.done[p * replicas + (r - 1)]) {
            cap = r;
            break;
          }
        }
        state.effective_total -= replicas - cap;
        break;
      }
    }
  };

  // A checkpoint's stored trace must equal a replay of its raw rows —
  // torn files and edited traces are refused, and acceptance proves the
  // resumed run continues the exact decision sequence.
  auto replay_matches = [&](const CheckpointData& ck) {
    if (!adaptive) return ck.trace.empty();
    std::vector<StopDecision> replayed;
    for (std::size_t p = 0; p < npoints; ++p) {
      SequentialStopper st(spec.stop);
      for (std::size_t r = 0; r < replicas; ++r) {
        const std::size_t g = p * replicas + r;
        if (!ck.done[g]) break;
        if (st.observe(ck.values[g][watch])) {
          replayed.push_back(StopDecision{
              static_cast<std::uint32_t>(p), static_cast<std::uint32_t>(r + 1),
              spec.stop.rule, st.bound_at_stop()});
          break;
        }
      }
    }
    return replayed == ck.trace;
  };

  std::size_t resumed = 0;
  if (options.resume && !options.checkpoint_path.empty()) {
    CheckpointData ck;
    if (load_checkpoint(options.checkpoint_path, &ck) && ck.seed == seed &&
        ck.spec_hash == identity && ck.done.size() == total &&
        ck.metric_count == metric_count && replay_matches(ck)) {
      state.done = std::move(ck.done);
      state.values = std::move(ck.values);
      resumed = 0;
      for (const std::uint8_t d : state.done) resumed += d != 0;
    }
  }
  state.checkpoint.seed = seed;
  state.checkpoint.spec_hash = identity;
  state.checkpoint.metric_count = metric_count;
  state.checkpoint.done = state.done;      // resumed rows seed the snapshot
  state.checkpoint.values = state.values;

  if (adaptive) {
    // Replay the resumed rows through the live stoppers (a no-op on a
    // fresh run); replay_matches already proved the outcome equals the
    // stored trace.
    for (std::size_t p = 0; p < npoints; ++p) fold_point_locked(p);
    update_gauges_locked();
  }

  // Adaptive claims may run ahead of a point's fold frontier by at most
  // this many replicas. The stopper's half-width only moves when the
  // contiguous fold advances, so without a window one straggling replica
  // lets the other workers pile arbitrarily many claims onto the stalled
  // point — all waste if the rule then fires inside the backlog. With the
  // window, post-fire waste per point is bounded by the window instead of
  // by scheduling luck.
  const std::size_t workers_hint =
      options.threads != 0
          ? options.threads
          : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::size_t claim_window = 2 * workers_hint;
  const std::size_t kDry = total;          // nothing left to claim
  const std::size_t kBlocked = total + 1;  // open work, window exhausted

  std::size_t cursor = 0;  // fixed-mode claim position
  // Claims the next global replica index to run; kDry when no open point
  // has unclaimed replicas, kBlocked when open points exist but all have
  // their run-ahead window fully claimed (the caller should wait for a
  // completion, not exit). Fixed campaigns claim in plain global order.
  // Adaptive campaigns first bring every open point to the min_replicas
  // floor (breadth-first, fewest claims first), then feed the open point
  // with the widest confidence interval; ties go to the lowest point
  // index. A fired point is never claimed again. Call with `state.mutex`
  // held.
  auto claim_locked = [&]() -> std::size_t {
    if (!adaptive) {
      while (cursor < total && state.done[cursor]) ++cursor;
      return cursor < total ? cursor++ : kDry;
    }
    std::size_t best = npoints;
    std::size_t best_next = 0;
    double best_h = -1.0;
    bool best_below_min = false;
    bool blocked = false;
    for (std::size_t p = 0; p < npoints; ++p) {
      if (state.stoppers[p].fired()) continue;
      std::size_t& nx = state.next[p];
      while (nx < replicas && state.done[p * replicas + nx]) ++nx;
      if (nx >= replicas) continue;
      // The floor is always claimable (a fire needs min_replicas folds,
      // so those claims are never wasted); past it, the window applies.
      if (nx >= std::max(state.frontier[p] + claim_window,
                         spec.stop.min_replicas)) {
        blocked = true;
        continue;
      }
      if (nx < spec.stop.min_replicas) {
        if (!best_below_min || nx < best_next) {
          best = p;
          best_next = nx;
          best_below_min = true;
        }
      } else if (!best_below_min) {
        const double h = state.stoppers[p].half_width();
        if (best == npoints || h > best_h) {
          best = p;
          best_h = h;
        }
      }
    }
    if (best == npoints) return blocked ? kBlocked : kDry;
    return best * replicas + state.next[best]++;
  };

  auto run_one = [&](std::size_t g) {
    const ScenarioPoint& point = points[g / replicas];
    std::vector<double> row;
    {
      SEG_TRACE_SPAN("replica");
      // Replicas are whole simulations; the two clock reads bounding one
      // are noise, but skip even those unless telemetry is live.
      if (obs::enabled()) {
        using Clock = std::chrono::steady_clock;
        const Clock::time_point start = Clock::now();
        row = replica(point, g % replicas, derive_replica_seed(seed, g));
        const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                            Clock::now() - start)
                            .count();
        SEG_HISTOGRAM("campaign.replica_us", us);
      } else {
        row = replica(point, g % replicas, derive_replica_seed(seed, g));
      }
    }
    SEG_COUNT("campaign.replicas_done", 1);
    SEG_FLIGHT("replica_done", g, 0);
    assert(row.size() == metric_count && "replica returned a wrong-width row");
    row.resize(metric_count, 0.0);
    bool checkpoint_due = false;
    {
      std::lock_guard<std::mutex> lock(state.mutex);
      state.values[g] = std::move(row);
      state.done[g] = 1;
      ++state.fresh_done;
      if (adaptive) {
        fold_point_locked(g / replicas);
        update_gauges_locked();
      }
      if (options.max_new_replicas > 0 &&
          state.fresh_done >= options.max_new_replicas) {
        state.stop.store(true, std::memory_order_relaxed);
      }
      if (options.progress) {
        options.progress(resumed + state.fresh_done, state.effective_total);
      }
      if (!options.checkpoint_path.empty() &&
          ++state.since_checkpoint >= options.checkpoint_every) {
        state.since_checkpoint = 0;
        checkpoint_due = true;
      }
    }
    if (checkpoint_due) {
      write_checkpoint(options.checkpoint_path, state);
    }
    // Wake window-blocked workers: the fold frontier (and the stop flag)
    // may have moved. The published state change happened under the
    // mutex, so notifying after release cannot lose a wakeup.
    state.claimable.notify_all();
  };

  // Workers pull from the claim queue until it runs dry (or the
  // max_new_replicas budget trips the stop flag); a claimed replica is
  // always completed and recorded. kBlocked parks the worker until a
  // completion moves a frontier — a blocked point always has claimed
  // rows in flight with another worker, so a wakeup is guaranteed.
  auto worker_loop = [&] {
    for (;;) {
      if (state.stop.load(std::memory_order_relaxed)) return;
      std::size_t g = kDry;
      {
        std::unique_lock<std::mutex> lock(state.mutex);
        g = claim_locked();
        while (g == kBlocked &&
               !state.stop.load(std::memory_order_relaxed)) {
          state.claimable.wait(lock);
          g = claim_locked();
        }
      }
      if (g >= total) return;
      run_one(g);
    }
  };

  if (options.threads == 1) {
    worker_loop();
  } else {
    ThreadPool pool(options.threads, "campaign");
    const std::size_t workers = pool.thread_count();
    for (std::size_t t = 0; t < workers; ++t) pool.submit(worker_loop);
    pool.wait_idle();
  }

  if (!options.checkpoint_path.empty()) {
    write_checkpoint(options.checkpoint_path, state);
  }

  // Deterministic fold: global replica order, independent of which thread
  // produced each row and of any checkpoint/resume boundary. Fixed
  // campaigns fold every completed row; adaptive campaigns fold exactly
  // the frontier prefix each stopper consumed.
  CampaignResult result;
  result.seed = seed;
  result.metric_names = metric_names;
  result.points.resize(npoints);
  std::size_t done_total = 0;
  for (std::size_t g = 0; g < total; ++g) done_total += state.done[g] != 0;
  for (std::size_t i = 0; i < npoints; ++i) {
    PointResult& pr = result.points[i];
    pr.point = points[i];
    pr.stats.resize(metric_count);
    if (!adaptive) {
      pr.state = PointState::kFixed;
      pr.stop_bound = std::numeric_limits<double>::infinity();
      for (std::size_t r = 0; r < replicas; ++r) {
        const std::size_t g = i * replicas + r;
        if (!state.done[g]) continue;
        ++pr.replicas_used;
        for (std::size_t m = 0; m < metric_count; ++m) {
          pr.stats[m].add(state.values[g][m]);
        }
      }
    } else {
      const SequentialStopper& st = state.stoppers[i];
      const std::size_t used = state.frontier[i];
      for (std::size_t r = 0; r < used; ++r) {
        const std::size_t g = i * replicas + r;
        for (std::size_t m = 0; m < metric_count; ++m) {
          pr.stats[m].add(state.values[g][m]);
        }
      }
      pr.replicas_used = used;
      if (st.fired()) {
        pr.state = PointState::kStopped;
        pr.stop_bound = st.bound_at_stop();
      } else if (used == replicas) {
        pr.state = PointState::kCapped;
        pr.stop_bound = st.half_width();
      } else {
        pr.state = PointState::kOpen;
        pr.stop_bound = st.half_width();
      }
    }
  }
  result.replicas_done = done_total;
  result.replicas_resumed = resumed;
  if (adaptive) {
    result.decision_trace = state.trace;
    std::sort(result.decision_trace.begin(), result.decision_trace.end(),
              [](const StopDecision& a, const StopDecision& b) {
                return a.point < b.point;
              });
    bool resolved = true;
    for (const PointResult& pr : result.points) {
      if (pr.state == PointState::kOpen) {
        resolved = false;
        break;
      }
    }
    result.complete = resolved;
  } else {
    result.complete = done_total == total;
  }
  result.checkpoint_write_failed = state.checkpoint_write_failed;
  return result;
}

CampaignResult run_campaign(const ScenarioSpec& spec, std::uint64_t seed,
                            const CampaignOptions& options) {
  return run_campaign(spec, expand_grid(spec), expand_metric_names(spec.metrics),
                      make_schelling_replica(spec), seed, options);
}

}  // namespace seg
