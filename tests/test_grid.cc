#include "grid/point.h"
#include "grid/torus_grid.h"

#include <set>

#include <gtest/gtest.h>

namespace seg {
namespace {

TEST(TorusWrap, Identity) {
  EXPECT_EQ(torus_wrap(3, 10), 3);
  EXPECT_EQ(torus_wrap(0, 10), 0);
  EXPECT_EQ(torus_wrap(9, 10), 9);
}

TEST(TorusWrap, PositiveOverflow) {
  EXPECT_EQ(torus_wrap(10, 10), 0);
  EXPECT_EQ(torus_wrap(23, 10), 3);
}

TEST(TorusWrap, NegativeValues) {
  EXPECT_EQ(torus_wrap(-1, 10), 9);
  EXPECT_EQ(torus_wrap(-10, 10), 0);
  EXPECT_EQ(torus_wrap(-13, 10), 7);
}

TEST(TorusDelta, ShortestSignedDisplacement) {
  EXPECT_EQ(torus_delta(0, 3, 10), 3);
  EXPECT_EQ(torus_delta(3, 0, 10), -3);
  EXPECT_EQ(torus_delta(9, 0, 10), 1);   // wrapping forward is shorter
  EXPECT_EQ(torus_delta(0, 9, 10), -1);  // wrapping backward is shorter
}

TEST(TorusDelta, HalfwayConvention) {
  // Displacement of exactly n/2 is reported as +n/2.
  EXPECT_EQ(torus_delta(0, 5, 10), 5);
}

TEST(TorusDistances, LinfAcrossSeam) {
  EXPECT_EQ(torus_linf({0, 0}, {9, 9}, 10), 1);
  EXPECT_EQ(torus_linf({0, 0}, {5, 0}, 10), 5);
  EXPECT_EQ(torus_linf({2, 3}, {2, 3}, 10), 0);
}

TEST(TorusDistances, L1AcrossSeam) {
  EXPECT_EQ(torus_l1({0, 0}, {9, 9}, 10), 2);
  EXPECT_EQ(torus_l1({1, 1}, {4, 5}, 10), 7);
}

TEST(TorusDistances, L2Squared) {
  EXPECT_EQ(torus_l2_sq({0, 0}, {3, 4}, 100), 25);
  EXPECT_EQ(torus_l2_sq({0, 0}, {99, 0}, 100), 1);
}

TEST(TorusGridTest, FillAndAccess) {
  TorusGrid<int> g(4, 7);
  EXPECT_EQ(g.side(), 4);
  EXPECT_EQ(g.size(), 16u);
  EXPECT_EQ(g.at(2, 3), 7);
  g.at(2, 3) = 9;
  EXPECT_EQ(g.at(2, 3), 9);
}

TEST(TorusGridTest, WrappingAccessAliases) {
  TorusGrid<int> g(5);
  g.at(0, 0) = 42;
  EXPECT_EQ(g.at(5, 5), 42);
  EXPECT_EQ(g.at(-5, 0), 42);
  EXPECT_EQ(g.at(-5, 10), 42);
}

TEST(TorusGridTest, IndexPointRoundTrip) {
  TorusGrid<int> g(6);
  const std::size_t i = g.index_of(4, 5);
  const Point p = g.point_of(i);
  EXPECT_EQ(p.x, 4);
  EXPECT_EQ(p.y, 5);
}

TEST(TorusGridTest, EqualityComparesContents) {
  TorusGrid<int> a(3, 1), b(3, 1);
  EXPECT_EQ(a, b);
  b.at(1, 1) = 2;
  EXPECT_NE(a, b);
}

TEST(ForEachInBall, VisitsExactlyBallSize) {
  int count = 0;
  for_each_in_ball(2, 2, 1, 10, [&](int, int) { ++count; });
  EXPECT_EQ(count, 9);
  count = 0;
  for_each_in_ball(0, 0, 3, 10, [&](int, int) { ++count; });
  EXPECT_EQ(count, 49);
}

TEST(ForEachInBall, NoDuplicateSitesAndAllInRange) {
  std::set<std::pair<int, int>> seen;
  for_each_in_ball(1, 8, 2, 9, [&](int x, int y) {
    EXPECT_GE(x, 0);
    EXPECT_LT(x, 9);
    EXPECT_GE(y, 0);
    EXPECT_LT(y, 9);
    EXPECT_TRUE(seen.emplace(x, y).second) << "duplicate " << x << "," << y;
  });
  EXPECT_EQ(seen.size(), 25u);
}

TEST(ForEachInBall, CentersOnRequestedSite) {
  bool saw_center = false;
  for_each_in_ball(4, 4, 1, 8, [&](int x, int y) {
    if (x == 4 && y == 4) saw_center = true;
  });
  EXPECT_TRUE(saw_center);
}

TEST(ForEachInBall, WrapsAroundSeam) {
  std::set<std::pair<int, int>> seen;
  for_each_in_ball(0, 0, 1, 5, [&](int x, int y) { seen.emplace(x, y); });
  EXPECT_TRUE(seen.count({4, 4}));
  EXPECT_TRUE(seen.count({0, 4}));
  EXPECT_TRUE(seen.count({4, 0}));
  EXPECT_TRUE(seen.count({1, 1}));
}

}  // namespace
}  // namespace seg
