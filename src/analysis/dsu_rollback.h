// Disjoint-set union built for *streaming* cluster maintenance: nodes are
// allocated from a growable arena, unions are by size without path
// compression so every mutation is invertible, and three operations the
// classic UnionFind (grid/union_find.h) lacks make it suitable as the
// backbone of analysis/streaming.h:
//
//  * checkpoint()/rollback(mark) — every unite/grow/adjust_size is pushed
//    onto an undo log; rolling back to a mark restores the exact forest,
//    which lets callers probe tentative mutations (e.g. what-if flips)
//    without copying the structure.
//  * reset(n) — epoch-stamped O(1) wholesale reset to n fresh singletons,
//    the primitive behind the streaming engine's epoch-based rebuilds:
//    a rebuild pays one pass over the lattice, never a per-node clear of
//    the arena.
//  * adjust_size(root, delta) — cluster sizes are maintained by the
//    caller across element *removals* (a DSU cannot delete), so root
//    sizes must be externally adjustable yet still participate in
//    union-by-size and rollback.
//
// find() is O(log n) worst case (union-by-size, no compression); all
// mutations are O(1) plus one log entry.
#pragma once

#include <cstdint>
#include <vector>

namespace seg {

class DsuRollback {
 public:
  // `logging` enables the undo log (checkpoint/rollback). With logging
  // off, mutations skip the log and find() applies path halving — the
  // compression is only unsafe when a rollback could detach a node other
  // finds were compressed through, so the no-log mode trades rollback
  // for near-O(alpha) finds (what the streaming engine wants: it only
  // ever resets, never rolls back).
  explicit DsuRollback(std::size_t n = 0, bool logging = true);

  std::size_t node_count() const { return count_; }

  // Appends a fresh singleton node and returns its id.
  std::uint32_t grow();

  // Representative of v's component. Mutating only lazily (epoch
  // refresh), so logically const; no path compression.
  std::uint32_t find(std::uint32_t v);

  // Size-weighted union; returns true if the roots differed.
  bool unite(std::uint32_t a, std::uint32_t b);

  // Component size of v's root. Can be zero or negative only if the
  // caller's adjust_size bookkeeping made it so.
  std::int64_t size_of(std::uint32_t v) { return size_[find(v)]; }

  // Adds delta to a root's stored size (the caller models element
  // removals this way). `root` must be its own representative.
  void adjust_size(std::uint32_t root, std::int64_t delta);

  bool logging() const { return logging_; }

  // Undo-log mark for the current state. Requires logging.
  std::size_t checkpoint() const { return log_.size(); }

  // Rolls every mutation after `mark` back, newest first.
  void rollback(std::size_t mark);

  // O(1) reset to n fresh singletons (plus amortized storage growth).
  // Clears the undo log: checkpoints do not survive a reset.
  void reset(std::size_t n);

 private:
  enum class Op : std::uint8_t { kUnion, kAdjust, kGrow };
  struct Entry {
    Op op;
    std::uint32_t child = 0;   // kUnion: absorbed root; kAdjust: root
    std::uint32_t parent = 0;  // kUnion: surviving root
    std::int64_t delta = 0;    // kUnion: absorbed size; kAdjust: delta
  };

  // Epoch-lazy materialization: a node whose stamp predates the current
  // epoch is implicitly a fresh singleton.
  void refresh(std::uint32_t v) {
    if (stamp_[v] != epoch_) {
      stamp_[v] = epoch_;
      parent_[v] = v;
      size_[v] = 1;
    }
  }
  void ensure_storage(std::size_t n);

  std::size_t count_ = 0;
  bool logging_ = true;
  std::uint32_t epoch_ = 1;
  std::vector<std::uint32_t> parent_;
  std::vector<std::int64_t> size_;
  std::vector<std::uint32_t> stamp_;
  std::vector<Entry> log_;
};

}  // namespace seg
