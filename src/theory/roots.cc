#include "theory/roots.h"

#include <cassert>
#include <cmath>

namespace seg {

RootResult bisect(const std::function<double(double)>& f, double lo,
                  double hi, double tol_x, int max_iter) {
  RootResult result;
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) return {lo, true, 0};
  if (fhi == 0.0) return {hi, true, 0};
  assert(std::signbit(flo) != std::signbit(fhi) &&
         "bisect requires a sign change");
  for (int i = 0; i < max_iter; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    ++result.iterations;
    if (fmid == 0.0 || (hi - lo) * 0.5 < tol_x) {
      result.x = mid;
      result.converged = true;
      return result;
    }
    if (std::signbit(fmid) == std::signbit(flo)) {
      lo = mid;
      flo = fmid;
    } else {
      hi = mid;
    }
  }
  result.x = 0.5 * (lo + hi);
  result.converged = (hi - lo) * 0.5 < tol_x;
  return result;
}

}  // namespace seg
