#include "analysis/trace.h"

#include "analysis/clusters.h"
#include "io/csv.h"

namespace seg {

void TraceRecorder::sample(const SchellingModel& model, std::uint64_t flips,
                           double time) {
  TraceRow row;
  row.flips = flips;
  row.time = time;
  row.happy_fraction = model.happy_fraction();
  row.unhappy = model.count_unhappy();
  row.plus_fraction = model.plus_fraction();
  if (record_interface_) {
    row.interface_length = cluster_stats(model).interface_length;
  }
  rows_.push_back(row);
}

std::function<void(const SchellingModel&, std::uint64_t, double)>
TraceRecorder::callback() {
  return [this](const SchellingModel& model, std::uint64_t flips,
                double time) { sample(model, flips, time); };
}

std::string TraceRecorder::to_csv() const {
  CsvWriter csv({"flips", "time", "happy_fraction", "unhappy",
                 "plus_fraction", "interface_length"});
  for (const TraceRow& row : rows_) {
    csv.new_row()
        .add(static_cast<std::int64_t>(row.flips))
        .add(row.time)
        .add(row.happy_fraction)
        .add(static_cast<std::int64_t>(row.unhappy))
        .add(row.plus_fraction)
        .add(row.interface_length);
  }
  return csv.str();
}

}  // namespace seg
