#include "rng/rng.h"

#include <cassert>
#include <cmath>

namespace seg {

std::uint64_t Rng::uniform_below(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = gen_.next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = gen_.next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi - lo) + 1;  // hi-lo < 2^63 assumed
  return lo + static_cast<std::int64_t>(uniform_below(span));
}

double Rng::exponential(double rate) {
  assert(rate > 0.0);
  // uniform() < 1 strictly, so 1-u > 0 and the log is finite.
  return -std::log1p(-uniform()) / rate;
}

}  // namespace seg
