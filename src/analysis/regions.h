// Monochromatic-region measurement (paper Sec. II-A "Segregation" and the
// quantity M of Theorems 1-2).
//
// The monochromatic region of an agent u is the largest-radius
// l-infinity ball (neighborhood) of single-type agents that contains u;
// M is its size (agent count). We compute, per final configuration:
//   * radius(c) for every center c (one distance transform, O(n^2));
//   * M(u) for sampled agents u: max over centers c covering u;
//   * the grid-wide largest monochromatic ball.
#pragma once

#include <cstdint>
#include <vector>

#include "grid/point.h"
#include "rng/rng.h"

namespace seg {

class SchellingModel;

struct MonoRegionField {
  int n = 0;
  // Per-center radius of the largest monochromatic ball centered there.
  std::vector<std::int32_t> radius;
};

// One distance transform over the spin field.
MonoRegionField mono_region_field(const std::vector<std::int8_t>& spins,
                                  int n);

// Size (agent count) of a ball of radius r.
inline std::int64_t ball_size(std::int32_t r) {
  const std::int64_t side = 2 * static_cast<std::int64_t>(r) + 1;
  return side * side;
}

// M(u): size of the largest monochromatic ball containing the agent at u.
// O(n^2) scan over candidate centers.
std::int64_t mono_region_size_of(const MonoRegionField& field, Point u);

// Mean of M(u) over `samples` agents drawn uniformly (the estimator for
// E[M] of an arbitrary agent). Deterministic given rng.
double mean_mono_region_size(const MonoRegionField& field,
                             std::size_t samples, Rng& rng);

// Largest monochromatic ball size anywhere on the grid.
std::int64_t largest_mono_region(const MonoRegionField& field);

// Convenience overloads on a model's current spins.
MonoRegionField mono_region_field(const SchellingModel& model);

}  // namespace seg
