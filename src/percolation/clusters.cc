#include "percolation/clusters.h"

#include <algorithm>
#include <cassert>
#include <vector>

namespace seg {

namespace {
constexpr int kDx[4] = {1, -1, 0, 0};
constexpr int kDy[4] = {0, 0, 1, -1};
}  // namespace

PercClusters percolation_clusters(const SiteField& field) {
  const int L = field.side();
  PercClusters out;
  out.label.assign(static_cast<std::size_t>(L) * L, -1);
  std::vector<std::uint32_t> queue;
  for (int y = 0; y < L; ++y) {
    for (int x = 0; x < L; ++x) {
      if (!field.open(x, y) || out.label[field.index(x, y)] >= 0) continue;
      const auto label = static_cast<std::int32_t>(out.size.size());
      out.size.push_back(0);
      queue.clear();
      queue.push_back(static_cast<std::uint32_t>(field.index(x, y)));
      out.label[field.index(x, y)] = label;
      for (std::size_t head = 0; head < queue.size(); ++head) {
        const std::uint32_t cur = queue[head];
        ++out.size[label];
        const int cx = static_cast<int>(cur % L);
        const int cy = static_cast<int>(cur / L);
        for (int k = 0; k < 4; ++k) {
          const int nx = cx + kDx[k];
          const int ny = cy + kDy[k];
          if (!field.open(nx, ny)) continue;
          const std::size_t ni = field.index(nx, ny);
          if (out.label[ni] >= 0) continue;
          out.label[ni] = label;
          queue.push_back(static_cast<std::uint32_t>(ni));
        }
      }
    }
  }
  for (const std::int64_t s : out.size) out.largest = std::max(out.largest, s);
  return out;
}

int cluster_l1_radius(const SiteField& field, int x, int y) {
  if (!field.open(x, y)) return -1;
  const int L = field.side();
  std::vector<std::uint8_t> visited(static_cast<std::size_t>(L) * L, 0);
  std::vector<std::uint32_t> queue;
  queue.push_back(static_cast<std::uint32_t>(field.index(x, y)));
  visited[field.index(x, y)] = 1;
  int radius = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const std::uint32_t cur = queue[head];
    const int cx = static_cast<int>(cur % L);
    const int cy = static_cast<int>(cur / L);
    radius = std::max(radius, std::abs(cx - x) + std::abs(cy - y));
    for (int k = 0; k < 4; ++k) {
      const int nx = cx + kDx[k];
      const int ny = cy + kDy[k];
      if (!field.open(nx, ny)) continue;
      const std::size_t ni = field.index(nx, ny);
      if (visited[ni]) continue;
      visited[ni] = 1;
      queue.push_back(static_cast<std::uint32_t>(ni));
    }
  }
  return radius;
}

bool spans_horizontally(const SiteField& field) {
  const PercClusters clusters = percolation_clusters(field);
  const int L = field.side();
  std::vector<std::uint8_t> touches_left(clusters.size.size(), 0);
  for (int y = 0; y < L; ++y) {
    const std::int32_t l = clusters.label[field.index(0, y)];
    if (l >= 0) touches_left[l] = 1;
  }
  for (int y = 0; y < L; ++y) {
    const std::int32_t l = clusters.label[field.index(L - 1, y)];
    if (l >= 0 && touches_left[l]) return true;
  }
  return false;
}

double largest_cluster_fraction(const SiteField& field) {
  const PercClusters clusters = percolation_clusters(field);
  std::int64_t open_total = 0;
  for (const std::int64_t s : clusters.size) open_total += s;
  if (open_total == 0) return 0.0;
  return static_cast<double>(clusters.largest) /
         static_cast<double>(open_total);
}

}  // namespace seg
