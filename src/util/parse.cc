#include "util/parse.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>

namespace seg {
namespace {

void set_error(std::string* error, const std::string& token,
               const char* what) {
  if (error) *error = std::string(what) + ": '" + token + "'";
}

}  // namespace

bool parse_i64_checked(const std::string& token, std::int64_t* out,
                       std::string* error) {
  if (token.empty()) {
    set_error(error, token, "empty integer");
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(token.c_str(), &end, 10);
  if (end == token.c_str() || *end != '\0') {
    set_error(error, token, "not an integer");
    return false;
  }
  if (errno == ERANGE) {
    set_error(error, token, "integer out of range");
    return false;
  }
  *out = value;
  return true;
}

bool parse_u64_checked(const std::string& token, std::uint64_t* out,
                       std::string* error) {
  if (token.empty()) {
    set_error(error, token, "empty integer");
    return false;
  }
  // strtoull accepts "-1" and wraps it; a leading '-' (after optional
  // whitespace-free token start) is always a caller error here.
  if (token[0] == '-') {
    set_error(error, token, "negative value for unsigned field");
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
  if (end == token.c_str() || *end != '\0') {
    set_error(error, token, "not an integer");
    return false;
  }
  if (errno == ERANGE) {
    set_error(error, token, "integer out of range");
    return false;
  }
  *out = value;
  return true;
}

bool parse_int_checked(const std::string& token, int* out,
                       std::string* error) {
  std::int64_t wide = 0;
  if (!parse_i64_checked(token, &wide, error)) return false;
  if (wide < std::numeric_limits<int>::min() ||
      wide > std::numeric_limits<int>::max()) {
    set_error(error, token, "integer out of range");
    return false;
  }
  *out = static_cast<int>(wide);
  return true;
}

bool parse_double_checked(const std::string& token, double* out,
                          std::string* error) {
  if (token.empty()) {
    set_error(error, token, "empty number");
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0') {
    set_error(error, token, "not a number");
    return false;
  }
  if (errno == ERANGE && (value == HUGE_VAL || value == -HUGE_VAL)) {
    set_error(error, token, "number out of range");
    return false;
  }
  if (!std::isfinite(value)) {
    set_error(error, token, "number is not finite");
    return false;
  }
  *out = value;
  return true;
}

}  // namespace seg
