// Differential battery for adaptive campaigns (sequential stopping).
//
// Three contracts, all pinned bitwise:
//  1. stop_rule = none is the fixed-replica engine — aggregates, CSV,
//     manifest, and checkpoint bytes identical to a reference fold and
//     invariant across thread counts (the claim-queue scheduler must be
//     invisible when no rule is active).
//  2. Stopping decisions are a function of the campaign seed alone: the
//     decision trace (point, replica count, rule, bound bits) is
//     identical at 1/2/4/8 workers, and the folded aggregates with it.
//  3. Checkpoint/resume reproduces the uninterrupted run exactly: a
//     budget-interrupted adaptive campaign reports its unresolved points
//     open (never stopped), and resuming it yields the uninterrupted
//     trace, aggregates, and CSV.
//
// Replicas are synthetic (a scaled SplitMix64 draw per replica), so the
// battery runs tens of thousands of replicas in milliseconds and the
// per-point variance is set exactly — which also powers the acceptance
// check that the Bernstein rule saves >= 30% of the replica cap on a
// variance-skewed grid.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "campaign/campaign.h"
#include "campaign/checkpoint.h"
#include "campaign/sinks.h"
#include "rng/splitmix64.h"

namespace seg {
namespace {

double uniform01(std::uint64_t seed) {
  SplitMix64 rng(seed);
  return static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
}

// Per-point synthetic metric: mean 0.5, standard deviation sigma(point),
// exactly (a centered uniform draw has sd range/sqrt(12)), bounded well
// inside [0, 1] for every sigma below ~0.28.
double synthetic_value(std::size_t point_index, std::uint64_t replica_seed,
                       const std::vector<double>& sigmas) {
  const double sigma = sigmas[point_index % sigmas.size()];
  const double u = uniform01(replica_seed);
  return 0.5 + sigma * std::sqrt(3.0) * (2.0 * u - 1.0);
}

ReplicaFn synthetic_replica(std::vector<double> sigmas) {
  return [sigmas](const ScenarioPoint& point, std::size_t /*replica*/,
                  std::uint64_t replica_seed) {
    return std::vector<double>{
        synthetic_value(point.index, replica_seed, sigmas)};
  };
}

// A spec whose expanded grid has `points` cells; the tau axis is just an
// enumeration handle (the synthetic replica keys off point.index).
ScenarioSpec synthetic_spec(std::size_t points, std::size_t replicas) {
  ScenarioSpec spec;
  spec.name = "adaptive_test";
  spec.n = {8};
  spec.w = {1};
  spec.tau.clear();
  for (std::size_t i = 0; i < points; ++i) {
    spec.tau.push_back(0.30 + 0.01 * static_cast<double>(i));
  }
  spec.replicas = replicas;
  spec.metrics = {"flips"};  // layout placeholder; the replica is custom
  return spec;
}

const std::vector<std::string> kMetricNames = {"value"};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void expect_same_aggregates(const CampaignResult& a, const CampaignResult& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    ASSERT_EQ(a.points[i].stats.size(), b.points[i].stats.size());
    EXPECT_EQ(a.points[i].replicas_used, b.points[i].replicas_used)
        << "point " << i;
    EXPECT_EQ(a.points[i].state, b.points[i].state) << "point " << i;
    for (std::size_t m = 0; m < a.points[i].stats.size(); ++m) {
      const RunningStats& sa = a.points[i].stats[m];
      const RunningStats& sb = b.points[i].stats[m];
      ASSERT_EQ(sa.count(), sb.count()) << "point " << i;
      // Bitwise: the fold order must be identical, not merely close.
      EXPECT_EQ(sa.mean(), sb.mean()) << "point " << i;
      EXPECT_EQ(sa.variance(), sb.variance()) << "point " << i;
    }
  }
}

// ---- contract 1: rule none == fixed engine ------------------------------

TEST(AdaptiveDifferential, RuleNoneMatchesReferenceFoldBitwise) {
  const std::vector<double> sigmas = {0.05, 0.20, 0.10, 0.25};
  ScenarioSpec spec = synthetic_spec(4, 6);
  const auto points = expand_grid(spec);
  const ReplicaFn replica = synthetic_replica(sigmas);
  const std::uint64_t seed = 1234;

  CampaignOptions options;
  options.threads = 4;
  const CampaignResult result =
      run_campaign(spec, points, kMetricNames, replica, seed, options);

  // Reference: the fixed-replica engine's contract, restated from
  // scratch — replica g = p * replicas + r seeded mix(seed, g), folded
  // in global replica order.
  ASSERT_TRUE(result.complete);
  ASSERT_TRUE(result.decision_trace.empty());
  for (std::size_t p = 0; p < points.size(); ++p) {
    RunningStats expected;
    for (std::size_t r = 0; r < spec.replicas; ++r) {
      const std::uint64_t g = p * spec.replicas + r;
      expected.add(synthetic_value(p, derive_replica_seed(seed, g), sigmas));
    }
    EXPECT_EQ(result.points[p].state, PointState::kFixed);
    EXPECT_EQ(result.points[p].replicas_used, spec.replicas);
    EXPECT_EQ(result.points[p].stats[0].mean(), expected.mean());
    EXPECT_EQ(result.points[p].stats[0].variance(), expected.variance());
  }
}

TEST(AdaptiveDifferential, RuleNoneOutputsInvariantAcrossThreadCounts) {
  const std::vector<double> sigmas = {0.05, 0.20, 0.10, 0.25};
  ScenarioSpec spec = synthetic_spec(4, 8);
  const auto points = expand_grid(spec);
  const ReplicaFn replica = synthetic_replica(sigmas);

  std::string ref_csv, ref_manifest, ref_checkpoint;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    const std::string tag = "none_t" + std::to_string(threads);
    const std::string ck_path = "test_adaptive_" + tag + ".ck";
    CampaignOptions options;
    options.threads = threads;
    options.checkpoint_path = ck_path;
    options.checkpoint_every = 1;
    const CampaignResult result =
        run_campaign(spec, points, kMetricNames, replica, 99, options);
    const std::string csv = CsvSink::render(spec, result);
    ManifestSink manifest("test_adaptive_" + tag + ".manifest");
    ASSERT_TRUE(manifest.write(spec, result));
    const std::string manifest_bytes = read_file(manifest.path());
    const std::string checkpoint_bytes = read_file(ck_path);
    // A rule-none checkpoint must carry no decision trace — its bytes
    // are the pre-adaptive format.
    EXPECT_EQ(checkpoint_bytes.find("\ntrace "), std::string::npos);
    EXPECT_EQ(checkpoint_bytes.find("\ns "), std::string::npos);
    if (threads == 1) {
      ref_csv = csv;
      ref_manifest = manifest_bytes;
      ref_checkpoint = checkpoint_bytes;
      // No adaptive columns leak into fixed-mode documents.
      EXPECT_EQ(csv.find("stop_state"), std::string::npos);
      EXPECT_EQ(manifest_bytes.find("stop_rule"), std::string::npos);
    } else {
      EXPECT_EQ(csv, ref_csv) << threads << " threads";
      EXPECT_EQ(manifest_bytes, ref_manifest) << threads << " threads";
      EXPECT_EQ(checkpoint_bytes, ref_checkpoint) << threads << " threads";
    }
    std::remove(ck_path.c_str());
    std::remove(manifest.path().c_str());
  }
}

// ---- contract 2: decisions invariant to thread count --------------------

TEST(AdaptiveDifferential, DecisionTraceInvariantAcrossThreadCounts) {
  // The cap must clear the Bernstein linear term 3 * range * x / n even
  // for the highest-variance point (~n = 1050 at delta = 0.1), so every
  // point genuinely fires rather than capping out.
  const std::vector<double> sigmas = {0.02, 0.25, 0.05, 0.15, 0.10, 0.20};
  ScenarioSpec spec = synthetic_spec(6, 1536);
  spec.stop.rule = StopRule::kBernstein;
  spec.stop.delta = 0.1;
  spec.stop.alpha = 0.05;
  spec.stop.min_replicas = 4;
  const auto points = expand_grid(spec);
  const ReplicaFn replica = synthetic_replica(sigmas);

  std::vector<StopDecision> ref_trace;
  std::string ref_csv;
  CampaignResult ref_result;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    CampaignOptions options;
    options.threads = threads;
    const CampaignResult result =
        run_campaign(spec, points, kMetricNames, replica, 7, options);
    ASSERT_TRUE(result.complete);
    ASSERT_FALSE(result.decision_trace.empty());
    const std::string csv = CsvSink::render(spec, result);
    if (threads == 1) {
      ref_trace = result.decision_trace;
      ref_csv = csv;
      ref_result = result;
      // The adaptive document carries the stop columns.
      EXPECT_NE(csv.find("stop_state"), std::string::npos);
    } else {
      // operator== compares the bound bitwise — frozen trace, not an
      // approximate one.
      EXPECT_TRUE(result.decision_trace == ref_trace)
          << threads << " threads diverged from the 1-thread trace";
      EXPECT_EQ(decision_trace_hash(result.decision_trace),
                decision_trace_hash(ref_trace));
      EXPECT_EQ(csv, ref_csv) << threads << " threads";
      expect_same_aggregates(result, ref_result);
    }
  }
}

// ---- contract 3: checkpoint/resume --------------------------------------

TEST(AdaptiveDifferential, BudgetInterruptedPointsStayOpenAndResume) {
  const std::vector<double> sigmas = {0.02, 0.25, 0.05, 0.15};
  ScenarioSpec spec = synthetic_spec(4, 1536);
  spec.stop.rule = StopRule::kBernstein;
  spec.stop.delta = 0.1;
  spec.stop.alpha = 0.05;
  spec.stop.min_replicas = 4;
  const auto points = expand_grid(spec);
  const ReplicaFn replica = synthetic_replica(sigmas);
  const std::uint64_t seed = 42;

  CampaignOptions full_options;
  full_options.threads = 2;
  const CampaignResult uninterrupted =
      run_campaign(spec, points, kMetricNames, replica, seed, full_options);
  ASSERT_TRUE(uninterrupted.complete);

  const std::string ck_path = "test_adaptive_resume.ck";
  std::remove(ck_path.c_str());
  CampaignOptions partial_options;
  partial_options.threads = 2;
  partial_options.checkpoint_path = ck_path;
  partial_options.checkpoint_every = 16;
  partial_options.max_new_replicas = 100;  // well before any rule fires
  const CampaignResult partial = run_campaign(spec, points, kMetricNames,
                                              replica, seed, partial_options);
  EXPECT_FALSE(partial.complete);
  // The budget exhausted the run, not the rules: every unresolved point
  // must be reported open — a "stopped" here would silently truncate the
  // campaign's statistics.
  std::size_t open = 0;
  for (const PointResult& pr : partial.points) {
    EXPECT_NE(pr.state, PointState::kCapped);
    open += pr.state == PointState::kOpen;
  }
  EXPECT_GT(open, 0u);

  CampaignOptions resume_options;
  resume_options.threads = 4;  // resume may use a different pool
  resume_options.checkpoint_path = ck_path;
  resume_options.resume = true;
  const CampaignResult resumed = run_campaign(spec, points, kMetricNames,
                                              replica, seed, resume_options);
  EXPECT_TRUE(resumed.complete);
  EXPECT_GT(resumed.replicas_resumed, 0u);
  EXPECT_TRUE(resumed.decision_trace == uninterrupted.decision_trace)
      << "resume diverged from the uninterrupted decision trace";
  expect_same_aggregates(resumed, uninterrupted);
  EXPECT_EQ(CsvSink::render(spec, resumed),
            CsvSink::render(spec, uninterrupted));
  std::remove(ck_path.c_str());
}

TEST(AdaptiveDifferential, CheckpointPersistsAndVerifiesTheTrace) {
  const std::vector<double> sigmas = {0.02, 0.05};
  ScenarioSpec spec = synthetic_spec(2, 1536);
  spec.stop.rule = StopRule::kBernstein;
  spec.stop.delta = 0.1;
  spec.stop.min_replicas = 4;
  const auto points = expand_grid(spec);
  const std::string ck_path = "test_adaptive_trace.ck";
  std::remove(ck_path.c_str());

  CampaignOptions options;
  options.threads = 2;
  options.checkpoint_path = ck_path;
  const CampaignResult result = run_campaign(
      spec, points, kMetricNames, synthetic_replica(sigmas), 5, options);
  ASSERT_TRUE(result.complete);
  ASSERT_EQ(result.decision_trace.size(), 2u);

  CheckpointData ck;
  ASSERT_TRUE(load_checkpoint(ck_path, &ck));
  EXPECT_TRUE(ck.trace == result.decision_trace);
  // The file carries the trace hash trailer and refuses a tampered
  // decision line.
  std::string bytes = read_file(ck_path);
  EXPECT_NE(bytes.find("\ntrace "), std::string::npos);
  const std::size_t s_line = bytes.find("\ns 0 ");
  ASSERT_NE(s_line, std::string::npos);
  bytes[s_line + 3] = '1';  // decision now claims point 1 stopped twice
  const std::string tampered_path = "test_adaptive_trace_tampered.ck";
  std::ofstream(tampered_path, std::ios::binary) << bytes;
  CheckpointData rejected;
  EXPECT_FALSE(load_checkpoint(tampered_path, &rejected))
      << "a checkpoint whose trace hash mismatches its decisions must be "
         "refused";
  std::remove(ck_path.c_str());
  std::remove(tampered_path.c_str());
}

// ---- acceptance: replica savings on a variance-skewed grid --------------

TEST(AdaptiveDifferential, BernsteinSavesThirtyPercentOnSkewedGrid) {
  // The reference grid: 16 points whose metric sd ramps 0.02 -> 0.25.
  // A fixed-replica campaign needs the worst-case count everywhere —
  // the cap below is sized so the highest-variance point barely resolves
  // at delta = 0.05, i.e. the fixed engine would run ~the full cap. The
  // Bernstein stopper resolves the low-variance points an order of
  // magnitude earlier; the acceptance bar is >= 30% of the cap saved at
  // equal (delta-certified) CI width.
  constexpr std::size_t kPoints = 16;
  std::vector<double> sigmas;
  for (std::size_t i = 0; i < kPoints; ++i) {
    sigmas.push_back(0.02 + (0.25 - 0.02) * static_cast<double>(i) /
                                static_cast<double>(kPoints - 1));
  }
  ScenarioSpec spec = synthetic_spec(kPoints, 3072);
  spec.stop.rule = StopRule::kBernstein;
  spec.stop.delta = 0.05;
  spec.stop.alpha = 0.05;
  spec.stop.min_replicas = 16;
  const auto points = expand_grid(spec);

  CampaignOptions options;
  options.threads = 4;
  const CampaignResult result = run_campaign(
      spec, points, kMetricNames, synthetic_replica(sigmas), 2024, options);
  ASSERT_TRUE(result.complete);

  const std::size_t cap_total = kPoints * spec.layout_replicas();
  const double savings = 1.0 - static_cast<double>(result.replicas_done) /
                                   static_cast<double>(cap_total);
  std::printf("// adaptive savings: %zu / %zu replicas -> %.1f%% saved\n",
              result.replicas_done, cap_total, 100.0 * savings);
  EXPECT_GE(savings, 0.30);

  // Every stopped point genuinely met the target half-width, and lower
  // variance stopped no later than (much) higher variance.
  for (const PointResult& pr : result.points) {
    if (pr.state == PointState::kStopped) {
      EXPECT_LE(pr.stop_bound, spec.stop.delta);
    }
  }
  const PointResult& lo = result.points.front();   // sigma 0.02
  const PointResult& hi = result.points.back();    // sigma 0.25
  EXPECT_LT(lo.replicas_used, hi.replicas_used / 2)
      << "variance adaptivity missing: easy points must stop far earlier";
}

}  // namespace
}  // namespace seg
