#include "campaign/metrics.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>

#include "analysis/streaming.h"
#include "core/parallel_dynamics.h"
#include "graph/partition.h"
#include "graph/topology.h"
#include "lattice/sharded.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "rng/splitmix64.h"

namespace seg {
namespace {

double nan_metric() { return std::numeric_limits<double>::quiet_NaN(); }

double metric_flips(MetricContext& ctx) {
  return static_cast<double>(ctx.run.flips);
}

double metric_time(MetricContext& ctx) { return ctx.run.final_time; }

double metric_terminated(MetricContext& ctx) {
  return ctx.run.terminated ? 1.0 : 0.0;
}

double metric_fixation(MetricContext& ctx) {
  return completely_segregated(ctx.model.spins()) ? 1.0 : 0.0;
}

double metric_majority(MetricContext& ctx) {
  return majority_fraction(ctx.model.spins());
}

double metric_happy_fraction(MetricContext& ctx) {
  return ctx.model.happy_fraction();
}

double metric_unhappy_count(MetricContext& ctx) {
  return static_cast<double>(ctx.model.count_unhappy());
}

double metric_plus_fraction(MetricContext& ctx) {
  return ctx.model.plus_fraction();
}

double metric_mean_mono_region(MetricContext& ctx) {
  return mean_mono_region_size(ctx.mono(), ctx.spec.region_samples,
                               ctx.sample_rng);
}

double metric_largest_mono_region(MetricContext& ctx) {
  return static_cast<double>(largest_mono_region(ctx.mono()));
}

double metric_mean_almost_region(MetricContext& ctx) {
  return mean_almost_region_size(ctx.almost(), ctx.spec.region_samples,
                                 ctx.sample_rng);
}

double metric_largest_almost_region(MetricContext& ctx) {
  return static_cast<double>(largest_almost_region(ctx.almost()));
}

double metric_largest_cluster(MetricContext& ctx) {
  return static_cast<double>(ctx.clusters().largest_cluster);
}

double metric_cluster_count(MetricContext& ctx) {
  return static_cast<double>(ctx.clusters().cluster_count);
}

double metric_mean_cluster_size(MetricContext& ctx) {
  return ctx.clusters().mean_cluster_size;
}

double metric_interface_length(MetricContext& ctx) {
  return static_cast<double>(ctx.clusters().interface_length);
}

// ---- streaming observables (O(1) reads off the attached engine) ----

double metric_streaming_magnetization(MetricContext& ctx) {
  return ctx.streaming
             ? static_cast<double>(ctx.streaming->magnetization())
             : nan_metric();
}

double metric_streaming_interface(MetricContext& ctx) {
  return ctx.streaming
             ? static_cast<double>(ctx.streaming->interface_length())
             : nan_metric();
}

double metric_streaming_cluster_count(MetricContext& ctx) {
  return ctx.streaming
             ? static_cast<double>(ctx.streaming->cluster_count())
             : nan_metric();
}

double metric_streaming_largest_cluster(MetricContext& ctx) {
  return ctx.streaming
             ? static_cast<double>(ctx.streaming->largest_cluster())
             : nan_metric();
}

double metric_streaming_mean_cluster_size(MetricContext& ctx) {
  return ctx.streaming ? ctx.streaming->mean_cluster_size() : nan_metric();
}

double metric_streaming_autocorr_lag1(MetricContext& ctx) {
  return ctx.streaming ? ctx.streaming->autocorrelation(1) : nan_metric();
}

// The group the "streaming" pseudo-metric expands to, in column order.
constexpr const char* kStreamingGroup[] = {
    "streaming_magnetization",      "streaming_interface_length",
    "streaming_cluster_count",      "streaming_largest_cluster",
    "streaming_mean_cluster_size",  "streaming_autocorr_lag1",
};

struct MetricEntry {
  const char* name;
  MetricFn fn;
  // Meaningful on an arbitrary graph topology? The region, cluster and
  // streaming metrics read 2-d lattice structure (distance transforms,
  // site coordinates) and are lattice-only.
  bool graph_ok;
};

// Registry order is the order known_metrics() reports; metric evaluation
// order within a replica follows spec.metrics, not this table.
constexpr MetricEntry kRegistry[] = {
    {"flips", metric_flips, true},
    {"time", metric_time, true},
    {"terminated", metric_terminated, true},
    {"fixation", metric_fixation, true},
    {"majority", metric_majority, true},
    {"happy_fraction", metric_happy_fraction, true},
    {"unhappy_count", metric_unhappy_count, true},
    {"plus_fraction", metric_plus_fraction, true},
    {"mean_mono_region", metric_mean_mono_region, false},
    {"largest_mono_region", metric_largest_mono_region, false},
    {"mean_almost_region", metric_mean_almost_region, false},
    {"largest_almost_region", metric_largest_almost_region, false},
    {"largest_cluster", metric_largest_cluster, false},
    {"cluster_count", metric_cluster_count, false},
    {"mean_cluster_size", metric_mean_cluster_size, false},
    {"interface_length", metric_interface_length, false},
    {"streaming_magnetization", metric_streaming_magnetization, false},
    {"streaming_interface_length", metric_streaming_interface, false},
    {"streaming_cluster_count", metric_streaming_cluster_count, false},
    {"streaming_largest_cluster", metric_streaming_largest_cluster, false},
    {"streaming_mean_cluster_size", metric_streaming_mean_cluster_size,
     false},
    {"streaming_autocorr_lag1", metric_streaming_autocorr_lag1, false},
};

// Constructs the topology a non-torus point runs on, from the spec's
// graph_* parameters. nullptr (with *why) when construction fails — in
// practice only for edge_list files, since ScenarioSpec::valid() already
// vetted the synthetic-family parameters.
std::shared_ptr<const GraphTopology> build_topology(const ScenarioSpec& spec,
                                                    const ScenarioPoint& point,
                                                    std::string* why) {
  switch (point.topology) {
    case TopologyFamily::kTorus:
      break;
    case TopologyFamily::kLollipop:
      return std::make_shared<const GraphTopology>(
          GraphTopology::lollipop(spec.graph_clique, spec.graph_path));
    case TopologyFamily::kRandomRegular: {
      const std::size_t nodes =
          spec.graph_nodes > 0
              ? spec.graph_nodes
              : static_cast<std::size_t>(point.params.n) * point.params.n;
      return std::make_shared<const GraphTopology>(
          GraphTopology::random_regular(static_cast<int>(nodes),
                                        spec.graph_degree, spec.graph_seed));
    }
    case TopologyFamily::kSmallWorld:
      return std::make_shared<const GraphTopology>(GraphTopology::small_world(
          point.params.n,
          neighborhood_offsets(point.params.shape, point.params.w),
          spec.graph_beta, spec.graph_seed));
    case TopologyFamily::kEdgeList: {
      GraphTopology g;
      if (!GraphTopology::load_edge_list(spec.graph_file, &g, why)) {
        return nullptr;
      }
      return std::make_shared<const GraphTopology>(std::move(g));
    }
  }
  if (why) *why = "torus points do not build a graph";
  return nullptr;
}

}  // namespace

const MonoRegionField& MetricContext::mono() {
  if (!mono_) {
    mono_ = std::make_unique<MonoRegionField>(mono_region_field(model));
  }
  return *mono_;
}

const AlmostMonoField& MetricContext::almost() {
  if (!almost_) {
    almost_ = std::make_unique<AlmostMonoField>(
        almost_mono_field(model, spec.almost_eps));
  }
  return *almost_;
}

const ClusterStats& MetricContext::clusters() {
  if (!clusters_) {
    // The streaming engine tracked the whole run incrementally, so the
    // O(n^2) rescan is replaced by an O(1) read when one is attached.
    clusters_ = std::make_unique<ClusterStats>(
        streaming ? streaming->cluster_stats() : cluster_stats(model));
  }
  return *clusters_;
}

bool lookup_metric(const std::string& name, MetricFn* fn) {
  for (const MetricEntry& entry : kRegistry) {
    if (name == entry.name) {
      if (fn) *fn = entry.fn;
      return true;
    }
  }
  return false;
}

bool metric_supports_graph(const std::string& name) {
  for (const MetricEntry& entry : kRegistry) {
    if (name == entry.name) return entry.graph_ok;
  }
  return false;
}

std::vector<std::string> known_metrics() {
  std::vector<std::string> names;
  for (const MetricEntry& entry : kRegistry) names.emplace_back(entry.name);
  return names;
}

std::size_t metric_index(const std::vector<std::string>& names,
                         const std::string& name) {
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return i;
  }
  return names.size();
}

std::vector<std::string> expand_metric_names(
    const std::vector<std::string>& metrics) {
  std::vector<std::string> out;
  out.reserve(metrics.size());
  for (const std::string& name : metrics) {
    if (name == "streaming") {
      for (const char* member : kStreamingGroup) out.emplace_back(member);
    } else {
      out.push_back(name);
    }
  }
  return out;
}

ReplicaFn make_schelling_replica(const ScenarioSpec& spec) {
  const std::vector<std::string> expanded =
      expand_metric_names(spec.metrics);
  bool needs_streaming = false;
  std::vector<MetricFn> fns;
  fns.reserve(expanded.size());
  for (const std::string& name : expanded) {
    needs_streaming |= name.rfind("streaming_", 0) == 0;
    MetricFn fn = nullptr;
    const bool known = lookup_metric(name, &fn);
    assert(known && "unknown metric; validate the spec before running");
    if (!known) {
      // Release-build fallback: a constant NaN column is visible in the
      // output instead of silently shifting later columns.
      fn = +[](MetricContext&) {
        return std::numeric_limits<double>::quiet_NaN();
      };
    }
    fns.push_back(fn);
  }
  return [spec, fns, needs_streaming](const ScenarioPoint& point,
                                      std::size_t /*replica*/,
                                      std::uint64_t replica_seed) {
    if (point.topology != TopologyFamily::kTorus) {
      // Graph-topology replica: same stream layout as the torus path
      // (0 = init, 1 = dynamics, 2 = measurement), the model built over
      // the point's GraphTopology with per-node thresholds. Streaming
      // metrics are lattice-only and already refused by valid(), so no
      // observer is attached here.
      std::string why;
      const std::shared_ptr<const GraphTopology> graph =
          build_topology(spec, point, &why);
      if (!graph) {
        std::fprintf(stderr,
                     "campaign: point %zu: cannot build %s topology: %s\n",
                     point.index, topology_name(point.topology), why.c_str());
        return std::vector<double>(fns.size(), nan_metric());
      }
      const bool sharded =
          spec.shards > 1 && point.dynamics == DynamicsKind::kGlauber;
      Rng init = Rng::stream(replica_seed, 0);
      std::vector<std::int8_t> spins =
          random_spins_count(graph->node_count(), point.params.p, init);
      SchellingModel model =
          sharded ? SchellingModel(point.params, graph, std::move(spins),
                                   GraphPartition::greedy_bfs(
                                       *graph, static_cast<int>(spec.shards)))
                  : SchellingModel(point.params, graph, std::move(spins));
      RunOptions run_options;
      if (spec.max_flips > 0) run_options.max_flips = spec.max_flips;
      RunResult run;
      if (sharded) {
        SEG_TRACE_SPAN("replica_dynamics");
        ParallelOptions parallel_options;
        parallel_options.threads = 1;  // replica-level pool saturates cores
        parallel_options.max_flips = run_options.max_flips;
        run = to_run_result(run_parallel_glauber(
            model, mix_seed(replica_seed, 1), parallel_options));
      } else {
        SEG_TRACE_SPAN("replica_dynamics");
        Rng dyn = Rng::stream(replica_seed, 1);
        switch (point.dynamics) {
          case DynamicsKind::kGlauber:
            run = run_glauber(model, dyn, run_options);
            break;
          case DynamicsKind::kDiscrete:
            run = run_discrete(model, dyn, run_options);
            break;
          case DynamicsKind::kSynchronous:
            run = run_synchronous(model, spec.sync_max_rounds, run_options);
            break;
        }
      }
      SEG_HISTOGRAM("campaign.replica_flips", run.flips);
      SEG_TRACE_SPAN("replica_measure");
      Rng sample = Rng::stream(replica_seed, 2);
      MetricContext ctx(model, run, spec, sample, nullptr);
      std::vector<double> values;
      values.reserve(fns.size());
      for (const MetricFn fn : fns) values.push_back(fn(ctx));
      return values;
    }
    // Stream layout matches the bench convention: 0 = initial
    // configuration, 1 = dynamics, 2 = measurement sampling. The sharded
    // path derives its per-shard substreams from the dynamics stream's
    // seed (mix_seed(replica_seed, 1)), so they never collide with the
    // init or measurement streams.
    const bool sharded =
        spec.shards > 1 && point.dynamics == DynamicsKind::kGlauber;
    Rng init = Rng::stream(replica_seed, 0);
    SchellingModel model =
        sharded ? SchellingModel(
                      point.params, init,
                      ShardLayout::stripes(point.params.n, point.params.w,
                                           static_cast<int>(spec.shards)))
                : SchellingModel(point.params, init);
    // The streaming engine (when any streaming_* metric is requested)
    // subscribes to the dynamics' flip events and replaces every
    // measurement rescan; it consumes no RNG, so the trajectory is
    // bitwise the one an unmeasured run produces.
    std::unique_ptr<StreamingObservables> streaming;
    if (needs_streaming) {
      StreamingConfig streaming_config;
      streaming_config.autocorr_window = 64;
      streaming = std::make_unique<StreamingObservables>(
          model.spins(), point.params.n, streaming_config);
    }
    const std::uint64_t sample_every =
        spec.streaming_sample_every > 0
            ? spec.streaming_sample_every
            : std::max<std::uint64_t>(
                  1, static_cast<std::uint64_t>(point.params.n) *
                         point.params.n / 64);
    RunOptions run_options;
    if (spec.max_flips > 0) run_options.max_flips = spec.max_flips;
    RunResult run;
    if (sharded) {
      SEG_TRACE_SPAN("replica_dynamics");
      ParallelOptions parallel_options;
      // Campaigns parallelize at the *replica* level (the campaign pool),
      // so each replica's phase A runs single-threaded: with a replica
      // fleet in flight, outer-level parallelism already saturates the
      // cores, and nesting a per-replica pool would oversubscribe them.
      // --shards in a campaign therefore selects the k-shard *process*
      // (deterministic per k, comparable with the sharded drivers), not
      // a per-replica speedup; for wall-clock scaling of one giant run
      // use the drivers (fig1_dynamics --shards, exp_* --shards), which
      // give the sweep engine the whole machine.
      parallel_options.threads = 1;
      parallel_options.max_flips = run_options.max_flips;
      parallel_options.streaming = streaming.get();
      parallel_options.streaming_sample_every = sample_every;
      run = to_run_result(run_parallel_glauber(
          model, mix_seed(replica_seed, 1), parallel_options));
    } else {
      SEG_TRACE_SPAN("replica_dynamics");
      if (streaming) {
        model.set_flip_observer(streaming.get());
        run_options.snapshot_every = sample_every;
        StreamingObservables* sink = streaming.get();
        run_options.on_snapshot = [sink](const SchellingModel&,
                                         std::uint64_t, double) {
          sink->record_sample();
        };
      }
      Rng dyn = Rng::stream(replica_seed, 1);
      switch (point.dynamics) {
        case DynamicsKind::kGlauber:
          run = run_glauber(model, dyn, run_options);
          break;
        case DynamicsKind::kDiscrete:
          run = run_discrete(model, dyn, run_options);
          break;
        case DynamicsKind::kSynchronous:
          run = run_synchronous(model, spec.sync_max_rounds, run_options);
          break;
      }
      model.set_flip_observer(nullptr);
    }
    SEG_HISTOGRAM("campaign.replica_flips", run.flips);
    SEG_TRACE_SPAN("replica_measure");
    Rng sample = Rng::stream(replica_seed, 2);
    MetricContext ctx(model, run, spec, sample, streaming.get());
    std::vector<double> values;
    values.reserve(fns.size());
    for (const MetricFn fn : fns) values.push_back(fn(ctx));
    return values;
  };
}

}  // namespace seg
