// FIG1 — reproduces Figure 1: self-segregation over time at tau = 0.42
// with neighborhood size N = 441 (w = 10). The paper runs a 1000x1000
// grid; the default here is 256 for wall-clock reasons (pass --n 1000 for
// the full-size panel, and --shards K to sweep it on K stripes via the
// sharded parallel engine). Prints the happiness/segregation time series
// at the four panel epochs and writes the panels as PPM images.
//
// The cluster and interface panel columns are served by the streaming
// observables engine (analysis/streaming.h), which tracks them from flip
// events — serially as an engine observer, sharded via the per-shard
// event logs — so per-panel measurement is O(1) instead of an O(n^2)
// rescan (only the mono-ball column still runs a distance transform).
#include <cstdio>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "analysis/regions.h"
#include "analysis/streaming.h"
#include "core/dynamics.h"
#include "core/model.h"
#include "core/parallel_dynamics.h"
#include "io/ppm.h"
#include "io/table.h"
#include "lattice/sharded.h"
#include "rng/splitmix64.h"
#include "util/args.h"

namespace {

void write_frame(const seg::SchellingModel& model, const std::string& path) {
  const int n = model.side();
  seg::PpmImage img(n, n);
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      const std::uint32_t id = model.id_of(x, y);
      img.set(x, y, seg::fig1_color(model.spin(id), model.is_happy(id)));
    }
  }
  img.write_file(path);
}

}  // namespace

int main(int argc, char** argv) {
  const seg::ArgParser args(argc, argv);
  seg::ModelParams params;
  params.n = static_cast<int>(args.get_int("n", 512));
  params.w = static_cast<int>(args.get_int("w", 10));
  params.tau = args.get_double("tau", 0.42);
  params.p = 0.5;
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2017));
  const int shards = static_cast<int>(args.get_int("shards", 1));
  const std::string out_dir = args.get_string("out", "out_fig1");
  ::mkdir(out_dir.c_str(), 0755);

  std::printf("== Figure 1: segregation dynamics, tau=%.2f, %dx%d, N=%d, "
              "%d shard(s) ==\n\n",
              params.tau, params.n, params.n, params.neighborhood_size(),
              shards);

  seg::Rng init = seg::Rng::stream(seed, 0);
  seg::SchellingModel model =
      shards > 1
          ? seg::SchellingModel(params, init,
                                seg::ShardLayout::stripes(params.n, params.w,
                                                          shards))
          : seg::SchellingModel(params, init);
  seg::Rng dyn = seg::Rng::stream(seed, 1);
  // Streaming measurement: serial runs feed it inline through the engine
  // observer; sharded runs replay the per-shard flip logs at each
  // reconciliation barrier.
  seg::StreamingObservables streaming(model.spins(), params.n);
  if (shards <= 1) model.set_flip_observer(&streaming);
  // Serial epochs share `dyn`; sharded epochs re-derive fresh per-shard
  // substreams from (dynamics stream seed, epoch) so no epoch replays
  // another's draws.
  int epoch = 0;
  const auto advance = [&](std::uint64_t max_flips) -> seg::RunResult {
    if (shards > 1) {
      seg::ParallelOptions opt;
      if (max_flips > 0) opt.max_flips = max_flips;
      opt.streaming = &streaming;
      return seg::to_run_result(seg::run_parallel_glauber(
          model, seg::mix_seed(seg::mix_seed(seed, 1), epoch++), opt));
    }
    seg::RunOptions opt;
    if (max_flips > 0) opt.max_flips = max_flips;
    return seg::run_glauber(model, dyn, opt);
  };

  seg::TablePrinter table({"panel", "flips", "time", "happy%", "unhappy",
                           "largest_cluster", "clusters", "interface",
                           "largest_mono_ball"});
  const auto record = [&](const char* panel, std::uint64_t flips,
                          double time) {
    const auto field = seg::mono_region_field(model);
    table.new_row()
        .add(panel)
        .add(static_cast<std::int64_t>(flips))
        .add(time, 2)
        .add(100.0 * model.happy_fraction(), 2)
        .add(static_cast<std::int64_t>(model.count_unhappy()))
        .add(streaming.largest_cluster())
        .add(static_cast<std::int64_t>(streaming.cluster_count()))
        .add(streaming.interface_length())
        .add(seg::largest_mono_region(field));
  };

  record("(a) initial", 0, 0.0);
  write_frame(model, out_dir + "/panel_a.ppm");

  // Panels (b) and (c): two intermediate epochs; panel (d): absorption.
  const std::uint64_t chunk = static_cast<std::uint64_t>(params.n) *
                              static_cast<std::uint64_t>(params.n) / 6;
  std::uint64_t flips_total = 0;
  double time_total = 0.0;
  const char* names[2] = {"(b) early", "(c) mid"};
  for (int panel = 0; panel < 2; ++panel) {
    const seg::RunResult r = advance(chunk);
    flips_total += r.flips;
    time_total += r.final_time;
    record(names[panel], flips_total, time_total);
    write_frame(model, out_dir + "/panel_" +
                           std::string(panel == 0 ? "b" : "c") + ".ppm");
    if (r.terminated) break;
  }
  const seg::RunResult r = advance(0);
  flips_total += r.flips;
  time_total += r.final_time;
  record("(d) final", flips_total, time_total);
  write_frame(model, out_dir + "/panel_d.ppm");
  table.print();

  std::printf("\npaper's qualitative endpoint: all agents happy, large "
              "segregated regions.\n");
  std::printf("measured: happy fraction %.4f (paper: 1.0), largest "
              "monochromatic ball %lld sites on %d^2 grid.\n",
              model.happy_fraction(),
              static_cast<long long>(
                  seg::largest_mono_region(seg::mono_region_field(model))),
              params.n);
  std::printf("panels written to %s/panel_{a,b,c,d}.ppm\n", out_dir.c_str());
  return 0;
}
