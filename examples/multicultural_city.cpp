// Multi-type demo: a "city" of q cultural groups under the Schelling rule
// (the Potts-like generalization of Schulze [20]). Prints per-type shares,
// happiness and cluster structure before and after the dynamics, and
// renders the final map as a PPM.
//
//   ./multicultural_city --n 128 --w 3 --q 4 --tau 0.35 --out city.ppm
#include <cstdio>
#include <string>

#include "io/ppm.h"
#include "multitype/multi_model.h"
#include "util/args.h"

namespace {

seg::Rgb type_color(std::uint8_t t) {
  static constexpr seg::Rgb kPalette[] = {
      {46, 160, 67},   {33, 96, 196},  {214, 64, 48},   {255, 214, 0},
      {148, 62, 198},  {0, 180, 180},  {230, 120, 30},  {120, 120, 120},
      {200, 80, 140},  {90, 160, 220}, {160, 200, 60},  {70, 70, 160},
      {220, 180, 140}, {20, 120, 80},  {180, 40, 90},   {240, 240, 240},
  };
  return kPalette[t % 16];
}

}  // namespace

int main(int argc, char** argv) {
  const seg::ArgParser args(argc, argv);
  seg::MultiParams params;
  params.n = static_cast<int>(args.get_int("n", 128));
  params.w = static_cast<int>(args.get_int("w", 3));
  params.q = static_cast<int>(args.get_int("q", 4));
  params.tau = args.get_double("tau", 0.35);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 8));
  const std::string out = args.get_string("out", "city.ppm");
  if (!params.valid()) {
    std::fprintf(stderr, "invalid parameters\n");
    return 1;
  }

  seg::Rng init = seg::Rng::stream(seed, 0);
  seg::MultiTypeModel model(params, init);
  std::printf("%d cultural groups on a %dx%d torus, w=%d, tau=%.2f "
              "(K=%d of %d)\n",
              params.q, params.n, params.n, params.w, params.tau,
              params.happy_threshold(), params.neighborhood_size());
  std::printf("initial: happy %.1f%%, largest single-group district %lld\n",
              100.0 * model.happy_fraction(),
              static_cast<long long>(seg::largest_type_cluster(model)));

  seg::Rng dyn = seg::Rng::stream(seed, 1);
  const seg::MultiRunResult r = seg::run_multi(model, dyn, 1u << 23);
  std::printf("dynamics: %llu moves, %s\n",
              static_cast<unsigned long long>(r.flips),
              r.quiescent ? "quiescent" : "budget exhausted");
  std::printf("final:   happy %.1f%%, largest single-group district %lld\n",
              100.0 * model.happy_fraction(),
              static_cast<long long>(seg::largest_type_cluster(model)));
  const auto fractions = model.type_fractions();
  std::printf("group shares:");
  for (std::size_t t = 0; t < fractions.size(); ++t) {
    std::printf(" %zu:%.3f", t, fractions[t]);
  }
  std::printf("\n");

  seg::PpmImage img(params.n, params.n);
  for (int y = 0; y < params.n; ++y) {
    for (int x = 0; x < params.n; ++x) {
      img.set(x, y, type_color(model.type_at(x, y)));
    }
  }
  if (img.write_file(out)) std::printf("map written to %s\n", out.c_str());
  return 0;
}
