// Region of expansion (paper, Lemma 8): a neighborhood is a region of
// expansion when placing a monochromatic (+1) w-block (radius floor(w/2))
// anywhere inside it makes every (-1) agent on the block's outside
// boundary unhappy with probability one — the geometric condition that
// lets a seeded monochromatic block spread until it fills the firewall
// interior. This module checks the property exactly on a concrete
// configuration (no probability left: the paper's "probability one" is a
// deterministic count condition given the spins).
#pragma once

#include <cstdint>

#include "core/model.h"
#include "grid/point.h"

namespace seg {

struct ExpansionRegionReport {
  bool is_region_of_expansion = false;
  // Number of placements tested and the first failing placement (if any).
  std::int64_t placements_tested = 0;
  Point first_failure{-1, -1};
};

// Would placing an all-(+1) block of radius block_r at `block_center` make
// the (-1) agent at `agent` unhappy? Counts the agent's same-type
// neighbors after hypothetically overwriting the block with (+1).
bool placement_makes_minus_unhappy(const SchellingModel& model,
                                   Point block_center, int block_r,
                                   Point agent);

// Checks Lemma 8's condition over every placement of the w-block whose
// center lies within l-infinity distance `region_r` of `center`.
ExpansionRegionReport check_region_of_expansion(const SchellingModel& model,
                                                Point center, int region_r);

}  // namespace seg
