// First-passage percolation with i.i.d. site weights — the substrate for
// Kesten's concentration theorem (paper Thm. 3) and the spread-speed bound
// of Lemma 7. The passage time T*(path) is the sum of the weights of the
// path's sites (source excluded, so T to the source itself is 0 and
// passage times are additive along shortest paths); the passage time
// between sites is the infimum over connecting 4-neighbor paths, computed
// exactly with Dijkstra.
#pragma once

#include <cstdint>
#include <vector>

#include "rng/rng.h"

namespace seg {

class FppField {
 public:
  // L x L field of Exp(rate) i.i.d. site weights (mean 1/rate).
  FppField(int L, double rate, Rng& rng);
  // Explicit weights (row-major), for tests.
  FppField(int L, std::vector<double> weights);

  int side() const { return L_; }
  double weight(int x, int y) const {
    return weights_[static_cast<std::size_t>(y) * L_ + x];
  }

  // Dijkstra from (sx, sy): passage time to every site (infinity for
  // unreachable sites — impossible on the full box).
  std::vector<double> passage_times(int sx, int sy) const;

  // T_k of the paper: passage time from (sx, sy) to (sx + k, sy).
  double axis_passage_time(int sx, int sy, int k) const;

 private:
  int L_;
  std::vector<double> weights_;
};

}  // namespace seg
