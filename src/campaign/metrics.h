// The metric registry for Schelling campaigns: named per-replica
// observables evaluated on the absorbing (or stopped) configuration.
// ScenarioSpec.metrics picks rows from this registry by name; the built-in
// replica function runs the configured dynamics and evaluates each metric
// in the declared order.
//
// Expensive derived structures (the mono-region distance transform, the
// cluster decomposition, the almost-mono field) are computed lazily and
// shared across the metrics of one replica.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "analysis/almost.h"
#include "analysis/clusters.h"
#include "analysis/regions.h"
#include "campaign/campaign.h"
#include "core/dynamics.h"
#include "core/model.h"

namespace seg {

class StreamingObservables;

// Everything a metric may observe about a finished replica. Sampling
// estimators draw from `sample_rng`, a stream dedicated to measurement so
// metric evaluation never perturbs the dynamics.
class MetricContext {
 public:
  MetricContext(const SchellingModel& model, const RunResult& run,
                const ScenarioSpec& spec, Rng& sample_rng,
                const StreamingObservables* streaming = nullptr)
      : model(model),
        run(run),
        spec(spec),
        sample_rng(sample_rng),
        streaming(streaming) {}

  const SchellingModel& model;
  const RunResult& run;
  const ScenarioSpec& spec;
  Rng& sample_rng;
  // Streaming engine that tracked the replica's dynamics; nullptr when no
  // streaming metric was requested. The streaming_* metrics read it, and
  // clusters() is served from it in O(1) when present (the differential
  // suite pins streaming == batch, so the values are identical).
  const StreamingObservables* streaming;

  // Lazily computed, cached for the lifetime of the replica.
  const MonoRegionField& mono();
  const AlmostMonoField& almost();
  const ClusterStats& clusters();

 private:
  std::unique_ptr<MonoRegionField> mono_;
  std::unique_ptr<AlmostMonoField> almost_;
  std::unique_ptr<ClusterStats> clusters_;
};

using MetricFn = double (*)(MetricContext&);

// Looks a metric up by name; fn may be nullptr to just test existence.
bool lookup_metric(const std::string& name, MetricFn* fn);

// True if the metric is meaningful on an arbitrary graph topology.
// Scalar observables (flips, time, happy_fraction, ...) qualify; the
// region/cluster/streaming metrics read 2-d lattice structure and are
// refused by ScenarioSpec::valid() on non-torus points. Unknown names
// return false.
bool metric_supports_graph(const std::string& name);

// Registry names, in registry order.
std::vector<std::string> known_metrics();

// Position of `name` in an expanded metric-name list; names.size() when
// absent. The stopper and the sinks use it to locate watched columns.
std::size_t metric_index(const std::vector<std::string>& names,
                         const std::string& name);

// Replaces the "streaming" pseudo-metric with the streaming observable
// group, in group order; every other name passes through unchanged. The
// campaign engine and sinks must be given the expanded list — the
// replica's value vector is parallel to it.
std::vector<std::string> expand_metric_names(
    const std::vector<std::string>& metrics);

// Builds the engine ReplicaFn for the built-in Schelling model: constructs
// the model from the point's params, runs the point's dynamics, then
// evaluates spec.metrics (which must all be known). The spec is captured
// by value.
ReplicaFn make_schelling_replica(const ScenarioSpec& spec);

}  // namespace seg
