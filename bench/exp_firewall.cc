// FIRE — the proof machinery measured directly:
//
//  (Lemma 20) frequency of radical regions in the initial configuration
//             vs the exact binomial prediction;
//  (Lemma 4)  fraction of found radical regions whose nucleus holds the
//             required unhappy minority agents;
//  (Lemma 5)  expandability success vs the eps' > f(tau) threshold;
//  (Lemma 9)  smallest stable annular-firewall radius as w grows, plus a
//             dynamic protection check under adversarial exteriors.
#include <cstdio>

#include "core/dynamics.h"
#include "core/model.h"
#include "firewall/annulus.h"
#include "firewall/radical.h"
#include "io/table.h"
#include "theory/bounds.h"
#include "theory/constants.h"
#include "util/args.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  const seg::ArgParser args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 23));
  const auto trials = static_cast<std::size_t>(args.get_int("trials", 3));

  std::printf("== Lemma 20: radical-region frequency vs binomial "
              "prediction ==\n\n");
  seg::TablePrinter t20({"w", "tau", "eps'", "measured/center",
                         "predicted", "ratio"});
  // eps -> 0 gives the mildest deflation the definition permits
  // (tau^ = tau - N^{-(1/2-eps)}); at laptop-scale N anything stronger
  // makes radical regions unobservably rare (they are 2^{-Theta(N)}
  // events even here — exactly the Lemma 20 scaling).
  const seg::RadicalParams rp{.eps_prime = 0.5, .eps = 0.01};
  for (const int w : {2, 3}) {
    for (const double tau : {0.42, 0.45, 0.48}) {
      const int n = 128;
      seg::RunningStats freq;
      for (std::size_t t = 0; t < trials; ++t) {
        seg::ModelParams params{.n = n, .w = w, .tau = tau, .p = 0.5};
        seg::Rng init = seg::Rng::stream(seed + t, w * 100);
        seg::SchellingModel model(params, init);
        const auto centers = seg::find_radical_regions(model, rp, -1);
        freq.add(static_cast<double>(centers.size()) /
                 static_cast<double>(model.agent_count()));
      }
      const double predicted = seg::radical_region_probability_exact(
          tau, w, rp.eps_prime, rp.eps);
      t20.new_row()
          .add(static_cast<std::int64_t>(w))
          .add(tau, 2)
          .add(rp.eps_prime, 2)
          .add(freq.mean(), 6)
          .add(predicted, 6)
          .add(predicted > 0 ? freq.mean() / predicted : 0.0, 3);
    }
  }
  t20.print();
  std::printf("expected: measured within a small constant of the "
              "prediction (centers overlap, so the ratio is not exactly "
              "1).\n\n");

  std::printf("== Lemmas 4-5: nucleus and expandability at found radical "
              "regions ==\n\n");
  {
    const int n = 128, w = 3;
    const double tau = 0.45;
    const double f = seg::f_tau(tau);
    seg::TablePrinter t45({"eps'", "vs f(tau)", "regions", "nucleus holds",
                           "expandable"});
    for (const double eps_prime : {0.10, 0.30, 0.50}) {
      const seg::RadicalParams probe{.eps_prime = eps_prime, .eps = 0.01};
      std::size_t regions = 0, nucleus_ok = 0, expandable = 0;
      for (std::size_t t = 0; t < trials; ++t) {
        seg::ModelParams params{.n = n, .w = w, .tau = tau, .p = 0.5};
        seg::Rng init = seg::Rng::stream(seed + 40 + t, 0);
        seg::SchellingModel model(params, init);
        const auto centers = seg::find_radical_regions(model, probe, -1);
        // Probe a capped number of centers per trial (they overlap).
        std::size_t budget = 20;
        for (const seg::Point c : centers) {
          if (budget-- == 0) break;
          ++regions;
          nucleus_ok += seg::check_unhappy_nucleus(model, c, probe, -1).holds;
          expandable +=
              seg::try_expand_radical_region(model, c, probe, -1).expanded;
        }
      }
      char rel[32];
      std::snprintf(rel, sizeof(rel), "%s f(tau)=%.3f",
                    eps_prime > f ? ">" : "<", f);
      t45.new_row()
          .add(eps_prime, 2)
          .add(rel)
          .add(static_cast<std::int64_t>(regions))
          .add(regions ? static_cast<double>(nucleus_ok) / regions : 0.0, 3)
          .add(regions ? static_cast<double>(expandable) / regions : 0.0, 3);
    }
    t45.print();
    std::printf("expected: expandability rate increasing in eps', high "
                "for eps' > f(tau).\n\n");
  }

  std::printf("== Lemma 9: smallest stable annular firewall radius ==\n\n");
  seg::TablePrinter t9({"w", "tau", "min stable r", "w^3 (paper's "
                        "sufficient r)"});
  for (const int w : {2, 3, 4}) {
    for (const double tau : {0.37, 0.42, 0.45}) {
      const int n = 160;
      const int r = seg::min_stable_firewall_radius(w, tau, n, 3, n / 2 - 1);
      t9.new_row()
          .add(static_cast<std::int64_t>(w))
          .add(tau, 2)
          .add(static_cast<std::int64_t>(r))
          .add(static_cast<std::int64_t>(w) * w * w);
    }
  }
  t9.print();
  std::printf("expected: finite stable radii far below the w^3 sufficient "
              "bound. Where the straight-band margin fails (w(2w+1)+1 < K, "
              "e.g. w<=3 at tau=0.45),\nthe search only succeeds at "
              "lattice-accident radii or not at all — Lemma 9's "
              "'sufficiently large w' is visible as this discrete "
              "threshold.\n\n");

  std::printf("== Lemma 9 (dynamic): protected sites never flip ==\n\n");
  {
    const int n = 96, w = 3;
    const double tau = 0.42, r = 30.0;
    std::size_t violations = 0;
    for (std::size_t t = 0; t < trials; ++t) {
      auto spins = seg::make_firewall_config({n / 2, n / 2}, r, w, n, +1);
      const auto ring = seg::annulus_sites({n / 2, n / 2}, r, w, n);
      const auto inside = seg::annulus_interior({n / 2, n / 2}, r, w, n);
      std::vector<std::uint8_t> protected_site(spins.size(), 0);
      for (const auto id : ring) protected_site[id] = 1;
      for (const auto id : inside) protected_site[id] = 1;
      seg::Rng noise = seg::Rng::stream(seed + 80 + t, 0);
      for (std::size_t i = 0; i < spins.size(); ++i) {
        if (!protected_site[i]) spins[i] = noise.bernoulli(0.5) ? 1 : -1;
      }
      seg::ModelParams params{.n = n, .w = w, .tau = tau, .p = 0.5};
      seg::SchellingModel model(params, spins);
      seg::Rng dyn = seg::Rng::stream(seed + 80 + t, 1);
      seg::run_glauber(model, dyn);
      for (std::size_t i = 0; i < spins.size(); ++i) {
        if (protected_site[i] &&
            model.spin(static_cast<std::uint32_t>(i)) != 1) {
          ++violations;
        }
      }
    }
    std::printf("protected-site flips across %zu adversarial runs: %zu "
                "(expected 0)\n",
                trials, violations);
  }
  return 0;
}
