// SplitMix64 (Vigna): used only to expand user seeds into the state of
// xoshiro256** and to derive independent per-trial streams. Public domain
// algorithm; implemented from the reference description.
#pragma once

#include <cstdint>

namespace seg {

class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// Mixes two 64-bit values into one; used to derive stream seeds as
// mix(seed, stream_index) so streams are decorrelated even for adjacent
// indices.
constexpr std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b) {
  SplitMix64 sm(a ^ (0x9e3779b97f4a7c15ULL + (b << 6) + (b >> 2)));
  sm.next();
  return sm.next() ^ b;
}

}  // namespace seg
