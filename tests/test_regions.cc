#include "analysis/regions.h"

#include <gtest/gtest.h>

#include "core/dynamics.h"
#include "core/model.h"

namespace seg {
namespace {

TEST(Regions, BallSize) {
  EXPECT_EQ(ball_size(0), 1);
  EXPECT_EQ(ball_size(1), 9);
  EXPECT_EQ(ball_size(3), 49);
}

TEST(Regions, UniformGridHasMaximalRegions) {
  const int n = 9;
  std::vector<std::int8_t> spins(n * n, 1);
  const auto field = mono_region_field(spins, n);
  EXPECT_EQ(largest_mono_region(field), ball_size((n - 1) / 2));
  EXPECT_EQ(mono_region_size_of(field, {0, 0}), ball_size((n - 1) / 2));
}

TEST(Regions, MinorityAgentGetsSmallRegion) {
  const int n = 15;
  std::vector<std::int8_t> spins(n * n, 1);
  spins[7 * n + 7] = -1;
  const auto field = mono_region_field(spins, n);
  // The minority agent is in no monochromatic ball of radius >= 1.
  EXPECT_EQ(mono_region_size_of(field, {7, 7}), 1);
  // A far-away agent still enjoys a big region.
  EXPECT_GT(mono_region_size_of(field, {0, 0}), 9);
}

TEST(Regions, AgentCoveredByOffCenterBall) {
  // u can lie inside a large ball centered elsewhere even if every ball
  // centered at u is small.
  const int n = 17;
  std::vector<std::int8_t> spins(n * n, 1);
  // A -1 at distance 2 from u = (8, 8): balls centered at u have radius
  // <= 1, but a ball centered at (12, 12) with radius 3 still covers u...
  spins[10 * n + 10] = -1;
  const auto field = mono_region_field(spins, n);
  const std::size_t u_idx = 8 * n + 8;
  EXPECT_LE(field.radius[u_idx], 1);
  EXPECT_GT(mono_region_size_of(field, {8, 8}), ball_size(1));
}

TEST(Regions, MeanOverSamplesBetweenExtremes) {
  const int n = 21;
  std::vector<std::int8_t> spins(n * n, 1);
  spins[3 * n + 3] = -1;
  const auto field = mono_region_field(spins, n);
  Rng rng(5);
  const double mean = mean_mono_region_size(field, 64, rng);
  EXPECT_GE(mean, 1.0);
  EXPECT_LE(mean, static_cast<double>(ball_size((n - 1) / 2)));
}

TEST(Regions, SegregationIncreasesMeanRegionSize) {
  ModelParams p{.n = 40, .w = 2, .tau = 0.45, .p = 0.5};
  Rng init(6);
  SchellingModel m(p, init);
  const auto before_field = mono_region_field(m);
  Rng s1(7);
  const double before = mean_mono_region_size(before_field, 32, s1);
  Rng dyn(8);
  run_glauber(m, dyn);
  const auto after_field = mono_region_field(m);
  Rng s2(7);
  const double after = mean_mono_region_size(after_field, 32, s2);
  EXPECT_GT(after, before);
}

TEST(Regions, FieldFromModelMatchesFieldFromSpins) {
  ModelParams p{.n = 16, .w = 2, .tau = 0.45, .p = 0.5};
  Rng init(9);
  SchellingModel m(p, init);
  const auto a = mono_region_field(m);
  const auto b = mono_region_field(m.spins(), m.side());
  EXPECT_EQ(a.radius, b.radius);
}

TEST(Regions, BruteForceAgreementOnSmallRandomGrid) {
  const int n = 9;
  Rng rng(10);
  std::vector<std::int8_t> spins(n * n);
  for (auto& s : spins) s = rng.bernoulli(0.6) ? 1 : -1;
  const auto field = mono_region_field(spins, n);

  // Brute force M(u): enumerate all centers and radii.
  const auto brute_m = [&](Point u) {
    std::int64_t best = 1;
    for (int cy = 0; cy < n; ++cy) {
      for (int cx = 0; cx < n; ++cx) {
        for (int r = (n - 1) / 2; r >= 1; --r) {
          if (torus_linf({cx, cy}, u, n) > r) continue;
          bool mono = true;
          const std::int8_t t = spins[cy * n + cx];
          for (int dy = -r; dy <= r && mono; ++dy) {
            for (int dx = -r; dx <= r; ++dx) {
              if (spins[torus_wrap(cy + dy, n) * n + torus_wrap(cx + dx, n)] !=
                  t) {
                mono = false;
                break;
              }
            }
          }
          if (mono) {
            best = std::max(best, ball_size(r));
            break;
          }
        }
      }
    }
    return best;
  };

  for (const Point u : {Point{0, 0}, Point{4, 4}, Point{8, 2}, Point{3, 7}}) {
    EXPECT_EQ(mono_region_size_of(field, u), brute_m(u))
        << "u=(" << u.x << "," << u.y << ")";
  }
}

}  // namespace
}  // namespace seg
