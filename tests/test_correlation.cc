// Tests for pair correlations and the correlation length.
#include <cmath>

#include <gtest/gtest.h>

#include "analysis/correlation.h"
#include "core/dynamics.h"
#include "core/model.h"

namespace seg {
namespace {

TEST(Correlation, UniformFieldHasZeroCenteredCorrelation) {
  // <s> = 1, so C(r) = 1 - 1 = 0 everywhere.
  const int n = 16;
  std::vector<std::int8_t> spins(n * n, 1);
  const auto c = pair_correlation(spins, n, 5);
  for (const double v : c) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(Correlation, CheckerboardAlternatesSign) {
  const int n = 16;
  std::vector<std::int8_t> spins(n * n);
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      spins[y * n + x] = ((x + y) % 2 == 0) ? 1 : -1;
    }
  }
  const auto c = pair_correlation(spins, n, 4);
  EXPECT_NEAR(c[0], 1.0, 1e-12);
  // r = 1: axes give -1, diagonals give +1 -> average 0.
  EXPECT_NEAR(c[1], 0.0, 1e-12);
  // r = 2: all four directions land on the same sublattice -> +1.
  EXPECT_NEAR(c[2], 1.0, 1e-12);
}

TEST(Correlation, StripesDecorrelateAtHalfPeriod) {
  // Vertical stripes of width 4: C(4) along x is -1, along y +1,
  // diagonals -1 -> average negative at r = 4.
  const int n = 16;
  std::vector<std::int8_t> spins(n * n);
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      spins[y * n + x] = (x / 4) % 2 == 0 ? 1 : -1;
    }
  }
  const auto c = pair_correlation(spins, n, 4);
  EXPECT_NEAR(c[0], 1.0, 1e-12);
  EXPECT_LT(c[4], 0.0);
}

TEST(Correlation, RandomFieldDecorrelatesImmediately) {
  const int n = 64;
  Rng rng(1);
  const auto spins = random_spins(n, 0.5, rng);
  const auto c = pair_correlation(spins, n, 6);
  EXPECT_NEAR(c[0], 1.0, 0.01);
  for (std::size_t r = 1; r < c.size(); ++r) {
    EXPECT_NEAR(c[r], 0.0, 0.05) << r;
  }
}

TEST(Correlation, LengthOfRandomFieldIsTiny) {
  const int n = 64;
  Rng rng(2);
  const auto spins = random_spins(n, 0.5, rng);
  const auto c = pair_correlation(spins, n, 10);
  EXPECT_LT(correlation_length(c), 1.5);
}

TEST(Correlation, LengthGrowsUnderSegregationDynamics) {
  ModelParams p{.n = 64, .w = 2, .tau = 0.45, .p = 0.5};
  Rng init(3);
  SchellingModel m(p, init);
  const auto c0 = pair_correlation(m.spins(), m.side(), 16);
  const double len0 = correlation_length(c0);
  Rng dyn(4);
  run_glauber(m, dyn);
  const auto c1 = pair_correlation(m.spins(), m.side(), 16);
  const double len1 = correlation_length(c1);
  EXPECT_GT(len1, 2.0 * len0);
}

TEST(Correlation, LengthInterpolatesBetweenSamples) {
  // Construct an artificial exactly-exponential decay and recover its
  // crossing point.
  std::vector<double> c;
  for (int r = 0; r <= 10; ++r) c.push_back(std::exp(-r / 3.0));
  EXPECT_NEAR(correlation_length(c), 3.0, 0.15);
}

TEST(Correlation, NonPositiveC0ReturnsZero) {
  EXPECT_DOUBLE_EQ(correlation_length({0.0, 0.1}), 0.0);
}

}  // namespace
}  // namespace seg
