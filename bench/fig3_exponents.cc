// FIG3 — reproduces Figure 3: the exponent multipliers a(tau) and b(tau)
// in 2^{a N - o(N)} <= E[M] <= 2^{b N + o(N)} (Theorems 1-2), evaluated at
// the epsilon' -> f(tau) envelope on both sides of 1/2.
#include <cstdio>

#include "io/table.h"
#include "theory/constants.h"
#include "theory/exponents.h"

int main() {
  std::printf("== Figure 3: exponent multipliers a(tau), b(tau) ==\n");
  std::printf("a(tau) = [1-(2e'+e'^2)][1-H(tau)],  "
              "b(tau) = (3/2)(1+e')^2 [1-H(tau)],  e' = f(tau)\n\n");
  const double t1 = seg::tau1();
  const double t2 = seg::tau2();

  seg::TablePrinter table({"tau", "regime", "f(tau)", "a(tau)", "b(tau)"});
  const auto add_row = [&](double tau) {
    const char* regime =
        (tau > t1 && tau < 1.0 - t1) ? "mono (Thm 1)" : "almost (Thm 2)";
    table.new_row()
        .add(tau, 4)
        .add(regime)
        .add(seg::f_tau(tau), 5)
        .add(seg::a_exponent_envelope(tau), 5)
        .add(seg::b_exponent_envelope(tau), 5);
  };
  for (double tau = t2 + 0.005; tau < 0.4999; tau += 0.01) add_row(tau);
  add_row(0.4999);
  for (double tau = 0.5099; tau < 1.0 - t2; tau += 0.02) add_row(tau);
  table.print();

  std::printf("\nshape checks (paper, Fig. 3):\n");
  const bool decreasing =
      seg::a_exponent_envelope(0.36) > seg::a_exponent_envelope(0.45) &&
      seg::b_exponent_envelope(0.36) > seg::b_exponent_envelope(0.45);
  std::printf("  a, b decreasing toward 1/2 from below: %s\n",
              decreasing ? "yes" : "NO");
  const bool symmetric =
      std::abs(seg::a_exponent_envelope(0.45) -
               seg::a_exponent_envelope(0.55)) < 1e-12;
  std::printf("  symmetric about 1/2: %s\n", symmetric ? "yes" : "NO");
  const bool ordered = seg::a_exponent_envelope(0.4) <
                       seg::b_exponent_envelope(0.4);
  std::printf("  a(tau) < b(tau): %s\n", ordered ? "yes" : "NO");
  return 0;
}
