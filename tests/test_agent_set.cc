// AgentSet contract tests: O(1) swap-erase bookkeeping, idempotent edge
// cases, and — critically for the dynamics — uniformity of sample(),
// which realizes the Poisson-clock law.
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "lattice/agent_set.h"

namespace seg {
namespace {

TEST(AgentSet, DoubleInsertKeepsSingleCopy) {
  AgentSet s(8);
  s.insert(3);
  s.insert(3);
  s.insert(3);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.contains(3));
  s.erase(3);
  EXPECT_EQ(s.size(), 0u);
  EXPECT_FALSE(s.contains(3));
}

TEST(AgentSet, EraseAbsentIsNoOp) {
  AgentSet s(8);
  s.insert(1);
  s.insert(5);
  s.erase(2);   // never inserted
  s.erase(7);   // never inserted
  EXPECT_EQ(s.size(), 2u);
  s.erase(5);
  s.erase(5);   // already gone
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.contains(1));
}

TEST(AgentSet, EraseReinsertCycleStaysConsistent) {
  AgentSet s(4);
  for (int round = 0; round < 3; ++round) {
    for (std::uint32_t id = 0; id < 4; ++id) s.insert(id);
    EXPECT_EQ(s.size(), 4u);
    for (std::uint32_t id = 0; id < 4; ++id) s.erase(id);
    EXPECT_TRUE(s.empty());
  }
}

TEST(AgentSet, RandomizedMirrorsReferenceSet) {
  const std::uint32_t capacity = 64;
  AgentSet s(capacity);
  std::unordered_set<std::uint32_t> reference;
  Rng rng(99);
  for (int step = 0; step < 20000; ++step) {
    const auto id = static_cast<std::uint32_t>(rng.uniform_below(capacity));
    if (rng.bernoulli(0.5)) {
      s.insert(id);
      reference.insert(id);
    } else {
      s.erase(id);
      reference.erase(id);
    }
    ASSERT_EQ(s.size(), reference.size());
    ASSERT_EQ(s.contains(id), reference.count(id) == 1);
  }
  for (std::uint32_t id = 0; id < capacity; ++id) {
    ASSERT_EQ(s.contains(id), reference.count(id) == 1);
  }
}

// Chi-square goodness of fit for sample() uniformity, after churn that
// scrambles the internal item order. With k - 1 = 19 degrees of freedom
// the 99.9th percentile is 43.8; the fixed seed keeps the test
// deterministic, and a systematically biased sampler (e.g. modulo bias
// or stale positions after swap-erase) blows far past the bound.
TEST(AgentSet, SampleIsUniformChiSquare) {
  const std::uint32_t capacity = 256;
  AgentSet s(capacity);
  Rng churn(7);
  for (int step = 0; step < 4000; ++step) {
    const auto id = static_cast<std::uint32_t>(churn.uniform_below(capacity));
    if (churn.bernoulli(0.6)) {
      s.insert(id);
    } else {
      s.erase(id);
    }
  }
  // Reduce to exactly 20 members.
  std::vector<std::uint32_t> members(s.items());
  for (const std::uint32_t id : members) {
    if (s.size() > 20) s.erase(id);
  }
  while (s.size() < 20) {
    s.insert(static_cast<std::uint32_t>(churn.uniform_below(capacity)));
  }
  ASSERT_EQ(s.size(), 20u);

  const int draws = 40000;
  const double expected = static_cast<double>(draws) / 20.0;
  std::vector<int> observed(capacity, 0);
  Rng rng(1234);
  for (int i = 0; i < draws; ++i) {
    const std::uint32_t id = s.sample(rng);
    ASSERT_TRUE(s.contains(id));
    ++observed[id];
  }
  double chi2 = 0.0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const double diff = observed[s.at(i)] - expected;
    chi2 += diff * diff / expected;
  }
  EXPECT_LT(chi2, 43.8) << "sample() deviates from uniform";
  // Every member must actually be reachable.
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_GT(observed[s.at(i)], 0);
  }
}

}  // namespace
}  // namespace seg
