#include "graph/topology.h"

#include <algorithm>
#include <cstdio>
#include <unordered_set>

#include "rng/rng.h"
#include "util/parse.h"
#include "util/seg_assert.h"

namespace seg {
namespace {

// Undirected edge key for dedup sets; works for node counts < 2^32.
std::uint64_t edge_key(std::uint32_t a, std::uint32_t b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

}  // namespace

int GraphTopology::min_neighborhood_size() const {
  int m = 0;
  for (std::uint32_t v = 0; v < node_count(); ++v) {
    const int s = neighborhood_size(v);
    if (v == 0 || s < m) m = s;
  }
  return m;
}

int GraphTopology::max_neighborhood_size() const {
  int m = 0;
  for (std::uint32_t v = 0; v < node_count(); ++v) {
    m = std::max(m, neighborhood_size(v));
  }
  return m;
}

bool GraphTopology::adjacent(std::uint32_t u, std::uint32_t v) const {
  const auto [ptr, len] = row(u);
  for (int i = 0; i < len; ++i) {
    if (ptr[i] == v) return true;
  }
  return false;
}

bool GraphTopology::validate(std::string* error) const {
  auto fail = [&](const std::string& msg) {
    if (error) *error = msg;
    return false;
  };
  const std::size_t n = node_count();
  if (offsets_.size() != n + 1 || offsets_.front() != 0 ||
      offsets_.back() != adj_.size()) {
    return fail("CSR offsets inconsistent with adjacency size");
  }
  for (std::uint32_t v = 0; v < n; ++v) {
    if (offsets_[v + 1] < offsets_[v]) return fail("CSR offsets not monotone");
    const auto [ptr, len] = row(v);
    int self_entries = 0;
    std::unordered_set<std::uint32_t> seen;
    for (int i = 0; i < len; ++i) {
      const std::uint32_t u = ptr[i];
      if (u >= n) {
        return fail("node " + std::to_string(v) + " has out-of-range entry " +
                    std::to_string(u));
      }
      if (!seen.insert(u).second) {
        return fail("node " + std::to_string(v) + " lists " +
                    std::to_string(u) + " twice");
      }
      if (u == v) {
        ++self_entries;
      } else if (!adjacent(u, v)) {
        return fail("edge " + std::to_string(v) + "-" + std::to_string(u) +
                    " is not symmetric");
      }
    }
    if (self_entries != 1) {
      return fail("node " + std::to_string(v) + " has " +
                  std::to_string(self_entries) + " self entries (want 1)");
    }
  }
  return true;
}

GraphTopology GraphTopology::torus(int n, const std::vector<Point>& offsets) {
  SEG_ASSERT(n > 0, "torus size " << n);
  SEG_ASSERT(std::find(offsets.begin(), offsets.end(), Point{0, 0}) !=
                 offsets.end(),
             "torus stencil must contain (0,0)");
  GraphTopology g;
  const std::size_t sites = static_cast<std::size_t>(n) * n;
  g.offsets_.resize(sites + 1);
  g.adj_.resize(sites * offsets.size());
  std::size_t at = 0;
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      g.offsets_[static_cast<std::size_t>(y) * n + x] = at;
      // Stencil order, wrapped — matches both the span fast path's row
      // visitation and the generic offsets walk, so torus-as-graph flips
      // touch sites in the identical sequence (goldens pin this).
      for (const Point& d : offsets) {
        const int yy = torus_wrap(y + d.y, n);
        const int xx = torus_wrap(x + d.x, n);
        g.adj_[at++] = static_cast<std::uint32_t>(yy) * n + xx;
      }
    }
  }
  g.offsets_[sites] = at;
  return g;
}

GraphTopology GraphTopology::lollipop(int clique, int path) {
  SEG_ASSERT(clique >= 2 && path >= 1,
             "lollipop wants clique >= 2, path >= 1; got " << clique << ", "
                                                          << path);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t a = 0; a + 1 < static_cast<std::uint32_t>(clique); ++a) {
    for (std::uint32_t b = a + 1; b < static_cast<std::uint32_t>(clique); ++b) {
      edges.emplace_back(a, b);
    }
  }
  // Path hangs off the last clique node.
  std::uint32_t prev = static_cast<std::uint32_t>(clique) - 1;
  for (int i = 0; i < path; ++i) {
    const std::uint32_t next = static_cast<std::uint32_t>(clique + i);
    edges.emplace_back(prev, next);
    prev = next;
  }
  return from_edges(static_cast<std::size_t>(clique) + path, edges);
}

GraphTopology GraphTopology::random_regular(int nodes, int degree,
                                            std::uint64_t seed) {
  SEG_ASSERT(nodes > 0 && degree >= 1 && degree < nodes,
             "random_regular nodes=" << nodes << " degree=" << degree);
  SEG_ASSERT((static_cast<long long>(nodes) * degree) % 2 == 0,
             "random_regular needs an even stub count");
  // Configuration model: pair up degree stubs per node, then repair
  // self-loops and duplicate edges with seeded endpoint swaps. Rejection
  // sampling ("regenerate until simple") dies for d >= 4 — P(simple) is
  // roughly exp(-(d*d-1)/4) — so swap repair is the only practical route.
  for (std::uint64_t attempt = 0; attempt < 100; ++attempt) {
    Rng rng = Rng::stream(seed, attempt);
    std::vector<std::uint32_t> stubs;
    stubs.reserve(static_cast<std::size_t>(nodes) * degree);
    for (std::uint32_t v = 0; v < static_cast<std::uint32_t>(nodes); ++v) {
      for (int k = 0; k < degree; ++k) stubs.push_back(v);
    }
    // Fisher-Yates.
    for (std::size_t i = stubs.size() - 1; i > 0; --i) {
      std::swap(stubs[i], stubs[rng.uniform_below(i + 1)]);
    }
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
    edges.reserve(stubs.size() / 2);
    for (std::size_t i = 0; i < stubs.size(); i += 2) {
      edges.emplace_back(stubs[i], stubs[i + 1]);
    }
    // Repair passes: swap the second endpoint of each bad edge with the
    // second endpoint of a random edge. Each pass rescans, so a swap that
    // creates a new collision gets picked up next pass.
    bool simple = false;
    for (int pass = 0; pass < 200 && !simple; ++pass) {
      std::unordered_set<std::uint64_t> seen;
      std::vector<std::size_t> bad;
      for (std::size_t i = 0; i < edges.size(); ++i) {
        auto& [a, b] = edges[i];
        if (a == b || !seen.insert(edge_key(a, b)).second) bad.push_back(i);
      }
      if (bad.empty()) {
        simple = true;
        break;
      }
      for (std::size_t i : bad) {
        const std::size_t r = rng.uniform_below(edges.size());
        std::swap(edges[i].second, edges[r].second);
      }
    }
    if (!simple) continue;  // reseed and start over
    GraphTopology g = from_edges(static_cast<std::size_t>(nodes), edges);
    // from_edges collapses duplicates, so a repaired multigraph would show
    // up as a degree deficit here; the repair loop guarantees it cannot.
    SEG_ASSERT(g.min_neighborhood_size() == degree + 1,
               "repair left a degree deficit");
    return g;
  }
  SEG_ASSERT(false, "random_regular: repair failed on 100 seeds");
  return GraphTopology{};
}

GraphTopology GraphTopology::small_world(int n,
                                         const std::vector<Point>& offsets,
                                         double beta, std::uint64_t seed) {
  SEG_ASSERT(n > 0 && beta >= 0.0 && beta <= 1.0,
             "small_world n=" << n << " beta=" << beta);
  const GraphTopology base = torus(n, offsets);
  const std::size_t sites = base.node_count();
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  std::unordered_set<std::uint64_t> present;
  edges.reserve(base.edge_count());
  for (std::uint32_t u = 0; u < sites; ++u) {
    const auto [ptr, len] = base.row(u);
    for (int i = 0; i < len; ++i) {
      if (ptr[i] > u) {
        edges.emplace_back(u, ptr[i]);
        present.insert(edge_key(u, ptr[i]));
      }
    }
  }
  // Watts-Strogatz: rewire the far endpoint of each canonical edge with
  // probability beta, keeping the edge count constant and the graph simple.
  Rng rng = Rng::stream(seed, 0x5157u /* "WS" */);
  for (auto& [u, v] : edges) {
    if (!rng.bernoulli(beta)) continue;
    for (int tries = 0; tries < 32; ++tries) {
      const auto w = static_cast<std::uint32_t>(rng.uniform_below(sites));
      if (w == u || w == v || present.count(edge_key(u, w))) continue;
      present.erase(edge_key(u, v));
      present.insert(edge_key(u, w));
      v = w;
      break;
    }
    // All 32 draws collided (possible only on tiny/dense graphs): keep
    // the original edge rather than loop forever.
  }
  return from_edges(sites, edges);
}

GraphTopology GraphTopology::from_edges(
    std::size_t nodes,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges) {
  std::vector<std::vector<std::uint32_t>> adj(nodes);
  for (std::uint32_t v = 0; v < nodes; ++v) adj[v].push_back(v);
  for (const auto& [a, b] : edges) {
    SEG_ASSERT(a < nodes && b < nodes,
               "edge " << a << "-" << b << " out of range for " << nodes
                       << " nodes");
    if (a == b) continue;
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  GraphTopology g;
  g.offsets_.resize(nodes + 1);
  std::size_t at = 0;
  for (std::uint32_t v = 0; v < nodes; ++v) {
    auto& list = adj[v];
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
    g.offsets_[v] = at;
    g.adj_.insert(g.adj_.end(), list.begin(), list.end());
    at += list.size();
  }
  g.offsets_[nodes] = at;
  return g;
}

bool GraphTopology::load_edge_list(const std::string& path, GraphTopology* out,
                                   std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error) *error = msg;
    return false;
  };
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (!f) return fail("cannot open edge list '" + path + "'");
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  std::uint32_t max_node = 0;
  char line[256];
  int line_no = 0;
  while (std::fgets(line, sizeof line, f)) {
    ++line_no;
    std::string s(line);
    if (const auto hash = s.find('#'); hash != std::string::npos) {
      s.resize(hash);
    }
    // Tokenize on whitespace.
    std::vector<std::string> tokens;
    std::size_t i = 0;
    while (i < s.size()) {
      while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
        ++i;
      }
      std::size_t start = i;
      while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) {
        ++i;
      }
      if (i > start) tokens.push_back(s.substr(start, i - start));
    }
    if (tokens.empty()) continue;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::string parse_error;
    if (tokens.size() != 2 ||
        !parse_u64_checked(tokens[0], &a, &parse_error) ||
        !parse_u64_checked(tokens[1], &b, &parse_error) || a > 0xffffffffu ||
        b > 0xffffffffu) {
      std::fclose(f);
      return fail(path + ":" + std::to_string(line_no) +
                  ": expected 'u v' edge line" +
                  (parse_error.empty() ? "" : " (" + parse_error + ")"));
    }
    edges.emplace_back(static_cast<std::uint32_t>(a),
                       static_cast<std::uint32_t>(b));
    max_node = std::max({max_node, static_cast<std::uint32_t>(a),
                         static_cast<std::uint32_t>(b)});
  }
  std::fclose(f);
  if (edges.empty()) return fail("edge list '" + path + "' has no edges");
  *out = from_edges(static_cast<std::size_t>(max_node) + 1, edges);
  return true;
}

}  // namespace seg
