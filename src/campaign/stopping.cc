#include "campaign/stopping.h"

#include <cmath>
#include <cstring>
#include <limits>

namespace seg {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::uint64_t double_bits(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

const char* stop_rule_name(StopRule rule) {
  switch (rule) {
    case StopRule::kNone: return "none";
    case StopRule::kHoeffding: return "hoeffding";
    case StopRule::kBernstein: return "bernstein";
    case StopRule::kPassRate: return "pass_rate";
  }
  return "none";
}

bool parse_stop_rule(const std::string& name, StopRule* out) {
  if (name == "none") *out = StopRule::kNone;
  else if (name == "hoeffding") *out = StopRule::kHoeffding;
  else if (name == "bernstein") *out = StopRule::kBernstein;
  else if (name == "pass_rate") *out = StopRule::kPassRate;
  else return false;
  return true;
}

double anytime_alpha(std::size_t n, double alpha) {
  if (n == 0) return 0.0;
  const double dn = static_cast<double>(n);
  return alpha / (dn * (dn + 1.0));
}

double hoeffding_half_width(std::size_t n, double alpha, double range) {
  if (n == 0) return kInf;
  const double a_n = anytime_alpha(n, alpha);
  if (a_n <= 0.0) return kInf;
  const double dn = static_cast<double>(n);
  return range * std::sqrt(std::log(2.0 / a_n) / (2.0 * dn));
}

double empirical_bernstein_half_width(std::size_t n, double variance,
                                      double alpha, double range) {
  if (n == 0) return kInf;
  const double a_n = anytime_alpha(n, alpha);
  if (a_n <= 0.0) return kInf;
  const double dn = static_cast<double>(n);
  const double x = std::log(3.0 / a_n);
  const double var = variance > 0.0 ? variance : 0.0;
  return std::sqrt(2.0 * var * x / dn) + 3.0 * range * x / dn;
}

bool operator==(const StopDecision& a, const StopDecision& b) {
  return a.point == b.point && a.replicas == b.replicas &&
         a.rule == b.rule && double_bits(a.bound) == double_bits(b.bound);
}

std::uint64_t decision_trace_hash(const std::vector<StopDecision>& trace) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  for (const StopDecision& d : trace) {
    mix(d.point);
    mix(d.replicas);
    mix(static_cast<std::uint64_t>(d.rule));
    mix(double_bits(d.bound));
  }
  return h;
}

SequentialStopper::SequentialStopper(const StopConfig& config)
    : config_(config) {}

double SequentialStopper::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double SequentialStopper::half_width() const {
  const double range = config_.range_hi - config_.range_lo;
  switch (config_.rule) {
    case StopRule::kNone:
      return kInf;
    case StopRule::kHoeffding:
    case StopRule::kPassRate:
      return hoeffding_half_width(count_, config_.alpha, range);
    case StopRule::kBernstein:
      return empirical_bernstein_half_width(count_, variance(),
                                            config_.alpha, range);
  }
  return kInf;
}

bool SequentialStopper::rule_fires(double h) const {
  if (config_.rule == StopRule::kNone) return false;
  if (count_ < config_.min_replicas) return false;
  if (h <= config_.delta) return true;
  if (config_.rule == StopRule::kPassRate) {
    // The interval certifies which side of the threshold the rate is on.
    const double m = mean();
    if (m - h > config_.threshold || m + h < config_.threshold) return true;
  }
  return false;
}

bool SequentialStopper::observe(double value) {
  if (fired_) return false;
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
  const double h = half_width();
  if (rule_fires(h)) {
    fired_ = true;
    bound_ = h;
    return true;
  }
  return false;
}

}  // namespace seg
