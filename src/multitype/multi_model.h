// Multi-type (Potts-like) Schelling model — the q-type generalization the
// paper's related work surveys (Schulze [20], "Potts-like model for ghetto
// formation in multi-cultural societies"). Agents carry one of q >= 2
// types; the happiness rule is unchanged (same-type fraction >= tau over
// the l-infinity ball of radius w, self included). Under Glauber-style
// open dynamics an unhappy agent flips to a type that would make it happy,
// chosen uniformly among the feasible types (the two-type case with
// feasible = {other type} recovers the paper's model).
//
// Built on the lattice layer: a type switch touches exactly two count
// planes (old type -1, new type +1), so per-window-site work is O(1) —
// the flippable classification is maintained from an incrementally
// updated feasible-type counter instead of re-enumerating the q types
// (and allocating) at every neighbor, and set updates fire only when a
// count crosses the K-1 feasibility or K happiness boundary.
//
// Like the comfort variant, q > 2 admits no simple Lyapunov certificate,
// so runs always take a flip budget. (For q = 2 the budgeted run reaches
// the same absorbing states as the baseline engine.)
#pragma once

#include <cstdint>
#include <vector>

#include "grid/point.h"
#include "lattice/agent_set.h"
#include "rng/rng.h"
#include "theory/bounds.h"

namespace seg {

struct MultiParams {
  int n = 64;
  int w = 2;
  int q = 3;          // number of types
  double tau = 0.4;   // shared intolerance
  // Initial distribution: uniform over the q types.

  int neighborhood_size() const { return (2 * w + 1) * (2 * w + 1); }
  int happy_threshold() const {
    return happiness_threshold(tau, neighborhood_size());
  }
  bool valid() const {
    return n > 0 && w >= 1 && 2 * w + 1 <= n && q >= 2 && q <= 16 &&
           tau >= 0.0 && tau <= 1.0;
  }
};

class MultiTypeModel {
 public:
  MultiTypeModel(const MultiParams& params, Rng& rng);
  MultiTypeModel(const MultiParams& params, std::vector<std::uint8_t> types);

  const MultiParams& params() const { return params_; }
  int side() const { return params_.n; }
  int type_count() const { return params_.q; }
  std::size_t agent_count() const { return types_.size(); }

  std::uint8_t type_of(std::uint32_t id) const { return types_[id]; }
  std::uint8_t type_at(int x, int y) const;
  const std::vector<std::uint8_t>& types() const { return types_; }
  std::uint32_t id_of(int x, int y) const;

  // Count of type-t agents in the neighborhood of id (self included).
  std::int32_t type_count_at(std::uint32_t id, std::uint8_t t) const;
  std::int32_t same_count(std::uint32_t id) const {
    return type_count_at(id, types_[id]);
  }

  bool is_happy(std::uint32_t id) const {
    return same_count(id) >= K_;
  }
  // Types the agent could switch to and be happy (excludes its own type;
  // the count uses the post-switch tally, i.e. +1 for itself).
  std::vector<std::uint8_t> feasible_types(std::uint32_t id) const;
  // Number of such types, maintained incrementally (no enumeration).
  std::int32_t feasible_type_count(std::uint32_t id) const {
    return feasible_count_[id];
  }
  bool is_flippable(std::uint32_t id) const {
    return !is_happy(id) && feasible_count_[id] > 0;
  }

  const AgentSet& flippable_set() const { return flippable_; }
  bool quiescent() const { return flippable_.empty(); }
  double happy_fraction() const;
  // Fraction of agents per type.
  std::vector<double> type_fractions() const;

  // Switches id to new_type and restores all invariants in one span pass.
  void set_type(std::uint32_t id, std::uint8_t new_type);

  bool check_invariants() const;

 private:
  std::size_t count_index(std::uint32_t id, std::uint8_t t) const {
    return static_cast<std::size_t>(id) * params_.q + t;
  }
  std::int32_t recount_feasible(std::uint32_t id) const;

  MultiParams params_;
  int N_;
  int K_;
  std::vector<std::uint8_t> types_;
  // counts_[id * q + t] = # of type-t agents in N(id), self included.
  std::vector<std::int32_t> counts_;
  // # of types t != type_of(id) with counts_[id, t] + 1 >= K.
  std::vector<std::int32_t> feasible_count_;
  std::vector<std::uint8_t> in_flippable_;  // membership byte per agent
  AgentSet flippable_;
};

struct MultiRunResult {
  std::uint64_t flips = 0;
  double final_time = 0.0;
  bool quiescent = false;
};

// Glauber-style dynamics: uniformly random flippable agent switches to a
// uniformly random feasible type.
MultiRunResult run_multi(MultiTypeModel& model, Rng& rng,
                         std::uint64_t max_flips);

// Largest single-type connected cluster (4-neighbor), for segregation
// measurement across q types.
std::int64_t largest_type_cluster(const MultiTypeModel& model);

}  // namespace seg
