// Coordinate algebra on the n x n torus T = [0,n) x [0,n).
// All arithmetic over coordinates is modulo n, as in the paper (Sec. II-A).
#pragma once

#include <cassert>
#include <cstdint>
#include <cstdlib>

namespace seg {

struct Point {
  int x = 0;
  int y = 0;

  friend bool operator==(const Point&, const Point&) = default;
};

// Wraps a possibly-negative coordinate into [0, n).
inline int torus_wrap(int v, int n) {
  assert(n > 0);
  v %= n;
  return v < 0 ? v + n : v;
}

// Signed displacement from a to b along one axis, in (-n/2, n/2].
inline int torus_delta(int a, int b, int n) {
  int d = torus_wrap(b - a, n);
  if (d > n / 2) d -= n;
  return d;
}

// l-infinity (chessboard) distance on the torus.
inline int torus_linf(Point a, Point b, int n) {
  const int dx = std::abs(torus_delta(a.x, b.x, n));
  const int dy = std::abs(torus_delta(a.y, b.y, n));
  return dx > dy ? dx : dy;
}

// l1 (Manhattan) distance on the torus.
inline int torus_l1(Point a, Point b, int n) {
  return std::abs(torus_delta(a.x, b.x, n)) +
         std::abs(torus_delta(a.y, b.y, n));
}

// Squared Euclidean distance on the torus (used by the annular firewall).
inline long long torus_l2_sq(Point a, Point b, int n) {
  const long long dx = torus_delta(a.x, b.x, n);
  const long long dy = torus_delta(a.y, b.y, n);
  return dx * dx + dy * dy;
}

}  // namespace seg
