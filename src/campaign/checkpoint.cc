#include "campaign/checkpoint.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

#include "obs/telemetry.h"
#include "obs/trace.h"

namespace seg {
namespace {

constexpr char kMagic[] = "seg-campaign-checkpoint v1";

// Durability for the write-tmp-then-rename protocol. Renaming over the
// live checkpoint before the tmp file's data reaches disk inverts the
// guarantee the protocol exists for: after a crash the only copy can be
// the torn one. So the tmp file is flushed and fsync'd before the
// rename, and the parent directory is fsync'd after it so the rename
// itself (the directory entry) is durable too.
bool flush_and_sync(std::FILE* f) {
  if (std::fflush(f) != 0) return false;
#ifndef _WIN32
  if (fsync(fileno(f)) != 0) return false;
#endif
  return true;
}

void sync_parent_dir(const std::string& path) {
#ifndef _WIN32
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;  // best effort: the data itself is already synced
  fsync(fd);
  close(fd);
#else
  (void)path;
#endif
}

std::uint64_t double_bits(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double bits_double(std::uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace

std::size_t CheckpointData::done_count() const {
  std::size_t count = 0;
  for (const std::uint8_t d : done) count += d != 0;
  return count;
}

bool save_checkpoint(const std::string& path, const CheckpointData& data) {
  SEG_TRACE_SPAN("checkpoint_io");
  SEG_TIMED("phase.checkpoint_io_us");
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (!f) return false;
  bool ok = std::fprintf(f, "%s\n", kMagic) > 0;
  ok = ok && std::fprintf(f, "seed %" PRIu64 " hash %" PRIu64
                             " replicas %zu metrics %zu\n",
                          data.seed, data.spec_hash, data.done.size(),
                          data.metric_count) > 0;
  for (std::size_t g = 0; ok && g < data.done.size(); ++g) {
    if (!data.done[g]) continue;
    ok = std::fprintf(f, "r %zu", g) > 0;
    for (const double v : data.values[g]) {
      ok = ok && std::fprintf(f, " %016" PRIx64, double_bits(v)) > 0;
    }
    ok = ok && std::fprintf(f, "\n") > 0;
  }
  for (std::size_t i = 0; ok && i < data.trace.size(); ++i) {
    const StopDecision& d = data.trace[i];
    ok = std::fprintf(f, "s %" PRIu32 " %" PRIu32 " %s %016" PRIx64 "\n",
                      d.point, d.replicas, stop_rule_name(d.rule),
                      double_bits(d.bound)) > 0;
  }
  if (!data.trace.empty()) {
    ok = ok && std::fprintf(f, "trace %016" PRIx64 "\n",
                            decision_trace_hash(data.trace)) > 0;
  }
  ok = ok && std::fprintf(f, "end %zu\n", data.done_count()) > 0;
  ok = ok && flush_and_sync(f);
  ok = std::fclose(f) == 0 && ok;
  if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  sync_parent_dir(path);
  return true;
}

bool load_checkpoint(const std::string& path, CheckpointData* out) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (!f) return false;
  CheckpointData data;
  char magic[64] = {0};
  bool ok = std::fgets(magic, sizeof(magic), f) != nullptr;
  if (ok) {
    const std::size_t len = std::strlen(magic);
    if (len > 0 && magic[len - 1] == '\n') magic[len - 1] = '\0';
    ok = std::strcmp(magic, kMagic) == 0;
  }
  std::size_t replica_count = 0;
  ok = ok && std::fscanf(f, "seed %" SCNu64 " hash %" SCNu64
                            " replicas %zu metrics %zu\n",
                         &data.seed, &data.spec_hash, &replica_count,
                         &data.metric_count) == 4;
  // Cap allocations for corrupt headers (a campaign of a billion replicas
  // with values in memory is not a real workload).
  constexpr std::size_t kMaxReplicas = std::size_t{1} << 30;
  constexpr std::size_t kMaxMetrics = 4096;
  ok = ok && replica_count <= kMaxReplicas && data.metric_count <= kMaxMetrics;
  if (ok) {
    data.done.assign(replica_count, 0);
    data.values.assign(replica_count, {});
  }
  bool saw_trailer = false;
  std::size_t trailer_count = 0;
  bool saw_trace_hash = false;
  std::uint64_t trace_hash = 0;
  while (ok) {
    char tag[8] = {0};
    if (std::fscanf(f, "%7s", tag) != 1) break;  // EOF
    if (std::strcmp(tag, "r") == 0) {
      std::size_t g = 0;
      ok = std::fscanf(f, "%zu", &g) == 1 && g < replica_count;
      if (!ok) break;
      std::vector<double> row(data.metric_count);
      for (std::size_t m = 0; ok && m < data.metric_count; ++m) {
        std::uint64_t bits = 0;
        ok = std::fscanf(f, " %" SCNx64, &bits) == 1;
        row[m] = bits_double(bits);
      }
      if (ok) {
        data.done[g] = 1;
        data.values[g] = std::move(row);
      }
    } else if (std::strcmp(tag, "s") == 0) {
      StopDecision d;
      char rule_name[16] = {0};
      std::uint64_t bits = 0;
      ok = std::fscanf(f, " %" SCNu32 " %" SCNu32 " %15s %" SCNx64, &d.point,
                       &d.replicas, rule_name, &bits) == 4 &&
           parse_stop_rule(rule_name, &d.rule);
      if (ok) {
        d.bound = bits_double(bits);
        data.trace.push_back(d);
      }
    } else if (std::strcmp(tag, "trace") == 0) {
      ok = std::fscanf(f, " %" SCNx64, &trace_hash) == 1;
      saw_trace_hash = ok;
    } else if (std::strcmp(tag, "end") == 0) {
      // The trailer must be a complete line: a write cut anywhere inside
      // the final "end N\n" is a torn file, not a shorter checkpoint.
      ok = std::fscanf(f, "%zu", &trailer_count) == 1 &&
           std::fgetc(f) == '\n';
      saw_trailer = ok;
      break;
    } else {
      ok = false;
    }
  }
  std::fclose(f);
  if (!ok || !saw_trailer || trailer_count != data.done_count()) return false;
  // A decision trace must carry its own hash and the hash must fold back
  // from the entries — a torn or edited trace is a corrupt checkpoint.
  if (!data.trace.empty() || saw_trace_hash) {
    if (!saw_trace_hash || trace_hash != decision_trace_hash(data.trace)) {
      return false;
    }
  }
  *out = std::move(data);
  return true;
}

}  // namespace seg
