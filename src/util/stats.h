// Statistics accumulators and small numeric helpers used throughout the
// reproduction: running mean/variance (Welford), confidence intervals,
// histograms, quantiles and least-squares linear fits.
//
// Everything here is deliberately dependency-free and header-light so the
// hot loops in the simulator can use it without pulling in <iostream>.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace seg {

// Welford online accumulator for mean / variance / extrema.
// Numerically stable for long streams; O(1) per observation.
class RunningStats {
 public:
  void add(double x);
  // Combines another accumulator (Chan et al. pairwise update) so
  // per-thread shards can be folded into campaign-level aggregates.
  void merge(const RunningStats& other);
  void reset();

  std::size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  // Unbiased sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  // Standard error of the mean.
  double sem() const;
  // Half-width of the normal-approximation 95% confidence interval.
  double ci95_half_width() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Fixed-range histogram with uniform bins plus underflow/overflow counters.
class Histogram {
 public:
  // Degenerate parameters fail safe: bins == 0 is clamped to one bin and
  // hi <= lo to the unit range [lo, lo + 1).
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  // Combines another accumulator over the same binning (same lo/hi/bins);
  // the per-thread counterpart of RunningStats::merge. An empty `other`
  // is a no-op whatever its binning (the fold's identity element); a
  // non-empty mismatched binning is ignored (fail closed) in every
  // build type.
  void merge(const Histogram& other);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  // Fraction of all observations (including under/overflow) in bin i.
  double fraction(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

// Result of an ordinary least squares fit y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;  // coefficient of determination
  std::size_t n = 0;
};

// Fits a line through (x[i], y[i]). Requires x.size() == y.size() >= 2.
LinearFit fit_line(const std::vector<double>& x, const std::vector<double>& y);

// Returns the q-quantile (0 <= q <= 1) of `values` using linear
// interpolation between order statistics. `values` is copied and sorted.
double quantile(std::vector<double> values, double q);

// Sample mean of a vector (0 for empty input).
double mean_of(const std::vector<double>& values);

}  // namespace seg
