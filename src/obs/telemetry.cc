#include "obs/telemetry.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace seg::obs {

namespace {

std::atomic<bool> g_enabled{false};

// Slab geometry. 4096 cells of 8 bytes = 32 KiB per writing thread;
// counters take one cell, histograms take kHistogramBuckets. Cell 0 is a
// spill sink for registrations that arrive after the slot space is
// exhausted — their writes stay memory-safe but are not reported.
constexpr std::uint32_t kSlabCells = 4096;
constexpr std::uint32_t kSpillSlot = 0;
constexpr std::uint32_t kMaxMetrics = 1024;

// Plain per-thread cells with cache-line guards fore and aft: the owning
// thread is the only writer, the aggregator only loads, and the guards
// keep a neighboring allocation's hot data off this slab's lines. Relaxed
// atomics make the cross-thread reads well-defined without ever issuing
// an atomic RMW — a counter add is load + store on the owner's cell.
struct Slab {
  alignas(64) char guard_front[64] = {};
  std::atomic<std::uint64_t> cells[kSlabCells] = {};
  alignas(64) char guard_back[64] = {};

  void bump(std::uint32_t slot, std::uint64_t delta) {
    std::atomic<std::uint64_t>& cell = cells[slot];
    cell.store(cell.load(std::memory_order_relaxed) + delta,
               std::memory_order_relaxed);
  }
};

struct Metric {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint32_t slot = kSpillSlot;
  std::atomic<std::int64_t> gauge{0};
};

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

struct Registry::Impl {
  mutable std::mutex mutex;
  std::map<std::string, std::uint32_t> by_name;
  // Fixed-capacity metric table: entries are never moved once published,
  // so gauge_set/gauge_max may index without the lock.
  std::unique_ptr<Metric[]> metrics{new Metric[kMaxMetrics]};
  std::atomic<std::uint32_t> metric_count{0};
  std::uint32_t next_slot = 1;  // cell 0 is the spill sink
  bool warned_spill = false;

  std::vector<std::unique_ptr<Slab>> slabs;  // all slabs ever created
  std::vector<Slab*> free_slabs;             // returned by exited threads

  Slab* acquire_slab() {
    std::lock_guard<std::mutex> lock(mutex);
    if (!free_slabs.empty()) {
      Slab* s = free_slabs.back();
      free_slabs.pop_back();
      return s;
    }
    slabs.push_back(std::make_unique<Slab>());
    return slabs.back().get();
  }

  void release_slab(Slab* slab) {
    std::lock_guard<std::mutex> lock(mutex);
    free_slabs.push_back(slab);  // cells keep their totals
  }

  MetricId register_metric(const std::string& name, MetricKind kind,
                           std::uint32_t cells_needed) {
    std::lock_guard<std::mutex> lock(mutex);
    auto it = by_name.find(name);
    if (it != by_name.end()) {
      const Metric& m = metrics[it->second];
      assert(m.kind == kind && "metric re-registered with another kind");
      (void)kind;
      return MetricId{it->second, m.slot};
    }
    const std::uint32_t index = metric_count.load(std::memory_order_relaxed);
    if (index >= kMaxMetrics) {
      // Structural overflow: alias everything to the spill sink.
      return MetricId{kMaxMetrics - 1, kSpillSlot};
    }
    std::uint32_t slot = kSpillSlot;
    if (cells_needed > 0) {
      if (next_slot + cells_needed <= kSlabCells) {
        slot = next_slot;
        next_slot += cells_needed;
      } else if (!warned_spill) {
        warned_spill = true;
        std::fprintf(stderr,
                     "seg::obs: telemetry slot space exhausted; metric "
                     "'%s' (and later ones) will not be reported\n",
                     name.c_str());
      }
    }
    Metric& m = metrics[index];
    m.name = name;
    m.kind = kind;
    m.slot = slot;
    by_name.emplace(name, index);
    metric_count.store(index + 1, std::memory_order_release);
    return MetricId{index, slot};
  }

  std::uint64_t sum_slot(std::uint32_t slot) const {
    // Caller holds `mutex` (slab list is mutated under it).
    std::uint64_t total = 0;
    for (const auto& slab : slabs) {
      total += slab->cells[slot].load(std::memory_order_relaxed);
    }
    return total;
  }
};

namespace {

// The registry Impl is leaked (never destroyed), so thread exit hooks
// may reference it unconditionally regardless of destruction order.
Registry::Impl* g_impl = nullptr;

// Per-thread cached slab. The handle returns the slab to the registry's
// free list at thread exit so a later thread can adopt it — totals are
// preserved and slab memory is bounded by the peak thread count.
struct SlabHandle {
  Slab* slab = nullptr;
  ~SlabHandle() {
    if (slab != nullptr && g_impl != nullptr) g_impl->release_slab(slab);
  }
};

thread_local SlabHandle t_slab;

}  // namespace

Registry& Registry::instance() {
  // Leaked on purpose: thread_local slab handles and static-destruction-
  // order races can outlive any non-leaked singleton.
  static Registry* r = new Registry();
  return *r;
}

Registry::Registry() : impl_(new Impl()) { g_impl = impl_; }

MetricId Registry::counter(const std::string& name) {
  return impl_->register_metric(name, MetricKind::kCounter, 1);
}

MetricId Registry::gauge(const std::string& name) {
  return impl_->register_metric(name, MetricKind::kGauge, 0);
}

MetricId Registry::histogram(const std::string& name) {
  return impl_->register_metric(name, MetricKind::kHistogram,
                                kHistogramBuckets);
}

void Registry::add(MetricId id, std::uint64_t delta) {
  if (id.slot == kSpillSlot) return;
  if (t_slab.slab == nullptr) t_slab.slab = impl_->acquire_slab();
  t_slab.slab->bump(id.slot, delta);
}

void Registry::observe(MetricId id, std::uint64_t value) {
  if (id.slot == kSpillSlot) return;
  // Bucket 0 holds the value 0; bucket b >= 1 holds bit_width(v) == b,
  // i.e. [2^(b-1), 2^b - 1]. bit_width(uint64) <= 64 > 63 is impossible
  // here because kHistogramBuckets == 64 covers widths 0..63; width 64
  // (v >= 2^63) clamps into the last bucket.
  const int bucket = std::min(static_cast<int>(std::bit_width(value)),
                              kHistogramBuckets - 1);
  if (t_slab.slab == nullptr) t_slab.slab = impl_->acquire_slab();
  t_slab.slab->bump(id.slot + static_cast<std::uint32_t>(bucket), 1);
}

void Registry::gauge_set(MetricId id, std::int64_t value) {
  impl_->metrics[id.index].gauge.store(value, std::memory_order_relaxed);
}

void Registry::gauge_max(MetricId id, std::int64_t value) {
  std::atomic<std::int64_t>& g = impl_->metrics[id.index].gauge;
  std::int64_t cur = g.load(std::memory_order_relaxed);
  while (value > cur &&
         !g.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

std::uint64_t Registry::counter_value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto it = impl_->by_name.find(name);
  if (it == impl_->by_name.end()) return 0;
  const Metric& m = impl_->metrics[it->second];
  if (m.kind != MetricKind::kCounter || m.slot == kSpillSlot) return 0;
  return impl_->sum_slot(m.slot);
}

std::int64_t Registry::gauge_value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto it = impl_->by_name.find(name);
  if (it == impl_->by_name.end()) return 0;
  return impl_->metrics[it->second].gauge.load(std::memory_order_relaxed);
}

std::vector<std::uint64_t> Registry::histogram_buckets(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto it = impl_->by_name.find(name);
  if (it == impl_->by_name.end()) return {};
  const Metric& m = impl_->metrics[it->second];
  if (m.kind != MetricKind::kHistogram || m.slot == kSpillSlot) return {};
  std::vector<std::uint64_t> buckets(kHistogramBuckets, 0);
  for (int b = 0; b < kHistogramBuckets; ++b) {
    buckets[static_cast<std::size_t>(b)] =
        impl_->sum_slot(m.slot + static_cast<std::uint32_t>(b));
  }
  return buckets;
}

std::vector<MetricSample> Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<MetricSample> out;
  out.reserve(impl_->by_name.size());
  for (const auto& [name, index] : impl_->by_name) {  // map: sorted
    const Metric& m = impl_->metrics[index];
    MetricSample s;
    s.name = name;
    s.kind = m.kind;
    switch (m.kind) {
      case MetricKind::kCounter:
        s.value = m.slot == kSpillSlot ? 0 : impl_->sum_slot(m.slot);
        break;
      case MetricKind::kGauge:
        s.gauge = m.gauge.load(std::memory_order_relaxed);
        break;
      case MetricKind::kHistogram: {
        if (m.slot == kSpillSlot) break;
        s.buckets.resize(kHistogramBuckets);
        for (int b = 0; b < kHistogramBuckets; ++b) {
          s.buckets[static_cast<std::size_t>(b)] =
              impl_->sum_slot(m.slot + static_cast<std::uint32_t>(b));
          s.histogram_count += s.buckets[static_cast<std::size_t>(b)];
        }
        break;
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<std::pair<std::string, std::uint64_t>>
Registry::counters_with_prefix(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (auto it = impl_->by_name.lower_bound(prefix);
       it != impl_->by_name.end() &&
       it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    const Metric& m = impl_->metrics[it->second];
    if (m.kind != MetricKind::kCounter || m.slot == kSpillSlot) continue;
    out.emplace_back(it->first, impl_->sum_slot(m.slot));
  }
  return out;
}

namespace {

// Representative value of histogram bucket b (midpoint of its range).
std::uint64_t bucket_mid(int b) {
  if (b == 0) return 0;
  const std::uint64_t lo = 1ULL << (b - 1);
  const std::uint64_t hi = b >= 64 ? ~0ULL : (1ULL << b) - 1;
  return lo + (hi - lo) / 2;
}

}  // namespace

double quantile_from_log2_buckets(const std::vector<std::uint64_t>& buckets,
                                  double q) {
  std::uint64_t total = 0;
  for (const std::uint64_t c : buckets) total += c;
  if (total == 0) return std::numeric_limits<double>::quiet_NaN();
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(total);
  double cum = 0.0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    const double c = static_cast<double>(buckets[b]);
    if (c == 0.0) continue;
    if (cum + c >= rank) {
      // Linear interpolation across the bucket's value range [lo, hi]:
      // crude inside one bucket, but log2 buckets make the relative
      // error bounded (the range spans one octave).
      const double lo = b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b) - 1);
      const double hi =
          b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b)) - 1.0;
      const double frac = c > 0.0 ? (rank - cum) / c : 0.0;
      return lo + frac * (hi - lo);
    }
    cum += c;
  }
  // q == 1 (or rounding): top of the highest nonempty bucket.
  for (std::size_t b = buckets.size(); b > 0; --b) {
    if (buckets[b - 1] > 0) {
      return b - 1 == 0 ? 0.0
                        : std::ldexp(1.0, static_cast<int>(b - 1)) - 1.0;
    }
  }
  return std::numeric_limits<double>::quiet_NaN();
}

double Registry::histogram_quantile(const std::string& name, double q) const {
  return quantile_from_log2_buckets(histogram_buckets(name), q);
}

std::vector<std::pair<std::string, std::string>> Registry::summary() const {
  std::vector<std::pair<std::string, std::string>> out;
  for (const MetricSample& s : snapshot()) {
    char buf[128];
    switch (s.kind) {
      case MetricKind::kCounter:
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(s.value));
        break;
      case MetricKind::kGauge:
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(s.gauge));
        break;
      case MetricKind::kHistogram: {
        // Bucket-midpoint p50 and the top nonempty bucket's midpoint.
        std::uint64_t seen = 0;
        std::uint64_t p50 = 0, top = 0;
        for (int b = 0; b < kHistogramBuckets; ++b) {
          const std::uint64_t c = s.buckets[static_cast<std::size_t>(b)];
          if (c == 0) continue;
          top = bucket_mid(b);
          if (seen * 2 < s.histogram_count &&
              (seen + c) * 2 >= s.histogram_count) {
            p50 = bucket_mid(b);
          }
          seen += c;
        }
        std::snprintf(buf, sizeof(buf),
                      "count=%llu p50~%llu max~%llu",
                      static_cast<unsigned long long>(s.histogram_count),
                      static_cast<unsigned long long>(p50),
                      static_cast<unsigned long long>(top));
        break;
      }
    }
    out.emplace_back(s.name, buf);
  }
  return out;
}

void Registry::reset_values() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (const auto& slab : impl_->slabs) {
    for (std::uint32_t c = 0; c < kSlabCells; ++c) {
      slab->cells[c].store(0, std::memory_order_relaxed);
    }
  }
  const std::uint32_t count =
      impl_->metric_count.load(std::memory_order_relaxed);
  for (std::uint32_t i = 0; i < count; ++i) {
    impl_->metrics[i].gauge.store(0, std::memory_order_relaxed);
  }
}

std::size_t Registry::metric_count() const {
  return impl_->metric_count.load(std::memory_order_acquire);
}

}  // namespace seg::obs
