#include "core1d/ring_model.h"

#include <numeric>

#include <gtest/gtest.h>

namespace seg {
namespace {

TEST(Ring, UniformRingIsTerminated) {
  RingParams p{.n = 64, .w = 2, .tau = 0.5, .p = 0.5};
  RingModel m(p, std::vector<std::int8_t>(64, 1));
  EXPECT_TRUE(m.terminated());
  EXPECT_EQ(m.run_lengths(), std::vector<int>{64});
  EXPECT_DOUBLE_EQ(m.mean_run_length(), 64.0);
}

TEST(Ring, SameCountMatchesBruteForce) {
  RingParams p{.n = 32, .w = 3, .tau = 0.5, .p = 0.5};
  Rng rng(1);
  RingModel m(p, rng);
  EXPECT_TRUE(m.check_invariants());
}

TEST(Ring, FlipTogglesAndPreservesInvariants) {
  RingParams p{.n = 32, .w = 2, .tau = 0.4, .p = 0.5};
  Rng rng(2);
  RingModel m(p, rng);
  const std::int8_t before = m.spin(10);
  m.flip(10);
  EXPECT_EQ(m.spin(10), -before);
  EXPECT_TRUE(m.check_invariants());
  m.flip(10);
  EXPECT_TRUE(m.check_invariants());
}

TEST(Ring, WrappingIndices) {
  RingParams p{.n = 16, .w = 1, .tau = 0.4, .p = 0.5};
  Rng rng(3);
  RingModel m(p, rng);
  EXPECT_EQ(m.spin(-1), m.spin(15));
  EXPECT_EQ(m.spin(16), m.spin(0));
}

TEST(Ring, GlauberTerminates) {
  RingParams p{.n = 256, .w = 2, .tau = 0.45, .p = 0.5};
  Rng rng(4);
  RingModel m(p, rng);
  Rng dyn(5);
  m.run_glauber(dyn);
  EXPECT_TRUE(m.terminated());
  EXPECT_TRUE(m.check_invariants());
}

TEST(Ring, RunLengthsPartitionTheRing) {
  RingParams p{.n = 128, .w = 2, .tau = 0.45, .p = 0.5};
  Rng rng(6);
  RingModel m(p, rng);
  const auto lengths = m.run_lengths();
  EXPECT_EQ(std::accumulate(lengths.begin(), lengths.end(), 0), 128);
  for (const int l : lengths) EXPECT_GE(l, 1);
}

TEST(Ring, RunLengthsAlternateTypes) {
  RingParams p{.n = 12, .w = 1, .tau = 0.4, .p = 0.5};
  // Explicit pattern: +++--+-----+ (wrapped).
  std::vector<std::int8_t> spins{1, 1, 1, -1, -1, 1, -1, -1, -1, -1, -1, 1};
  RingModel m(p, spins);
  const auto lengths = m.run_lengths();
  // Wrapped runs: the leading +++ joins the trailing +: runs are
  // {4 (+), 2 (-), 1 (+), 5 (-)} in some rotation.
  EXPECT_EQ(lengths.size(), 4u);
  EXPECT_EQ(std::accumulate(lengths.begin(), lengths.end(), 0), 12);
}

TEST(Ring, SegregationGrowsRunLengths) {
  RingParams p{.n = 4096, .w = 4, .tau = 0.45, .p = 0.5};
  Rng rng(7);
  RingModel m(p, rng);
  const double before = m.mean_run_length();
  Rng dyn(8);
  m.run_glauber(dyn);
  const double after = m.mean_run_length();
  EXPECT_GT(after, before);
}

TEST(Ring, MeanRunLengthGrowsWithW) {
  // Barmpalias et al.: segregated regions grow with the neighborhood.
  double prev = 0.0;
  for (const int w : {2, 4, 8}) {
    RingParams p{.n = 1 << 13, .w = w, .tau = 0.45, .p = 0.5};
    Rng rng(100 + w);
    RingModel m(p, rng);
    Rng dyn(200 + w);
    m.run_glauber(dyn);
    const double mean = m.mean_run_length();
    EXPECT_GT(mean, prev) << "w=" << w;
    prev = mean;
  }
}

TEST(Ring, VeryLowTauIsNearlyStatic) {
  RingParams p{.n = 4096, .w = 4, .tau = 0.2, .p = 0.5};
  Rng rng(9);
  RingModel m(p, rng);
  Rng dyn(10);
  const std::uint64_t flips = m.run_glauber(dyn);
  // tau = 0.2 < tau* ~ 0.35: w.h.p. the configuration is static.
  EXPECT_LT(flips, 50u);
}

TEST(Ring, FlipBudgetHonored) {
  RingParams p{.n = 2048, .w = 3, .tau = 0.45, .p = 0.5};
  Rng rng(11);
  RingModel m(p, rng);
  Rng dyn(12);
  EXPECT_LE(m.run_glauber(dyn, 7), 7u);
}

TEST(Ring, DeterministicForSeed) {
  RingParams p{.n = 512, .w = 2, .tau = 0.45, .p = 0.5};
  Rng ra(13), rb(13);
  RingModel a(p, ra), b(p, rb);
  Rng da(14), db(14);
  a.run_glauber(da);
  b.run_glauber(db);
  EXPECT_EQ(a.spins(), b.spins());
}

}  // namespace
}  // namespace seg
