// Differential battery for the graph-topology engine (graph/topology.h
// driving lattice/engine.h in graph mode).
//
// The contract, strongest first:
//  1. The torus expressed as a GraphTopology reproduces the native span
//     engine BITWISE on every frozen golden trajectory — same flips, same
//     RNG consumption, same hashes as test_golden_trajectory.cc. The
//     graph rows are emitted in stencil order, so the touch/set-mutation
//     history is identical; any ordering regression lands here.
//  2. Graph-partition sharding is sound: one part reproduces the serial
//     graph engine bitwise through run_parallel_glauber, and a k-part
//     greedy-BFS partition is thread-count invariant with exact
//     invariants at absorption — on non-torus topologies (lollipop,
//     random regular, small world) whose cuts are irregular.
#include <gtest/gtest.h>

#include <memory>

#include "core/comfort.h"
#include "core/dynamics.h"
#include "core/kawasaki.h"
#include "core/model.h"
#include "core/parallel_dynamics.h"
#include "golden_fixtures.h"
#include "graph/partition.h"
#include "graph/topology.h"

namespace seg {
namespace {

using golden::hash_bytes;
using golden::mix;
using golden::mix_double;

std::shared_ptr<const GraphTopology> torus_graph(int n,
                                                 NeighborhoodShape shape,
                                                 int w) {
  return std::make_shared<const GraphTopology>(
      GraphTopology::torus(n, neighborhood_offsets(shape, w)));
}

// ---- torus-as-graph vs the frozen golden hashes ----------------------------

TEST(GraphDifferential, GlauberGoldenBitwise) {
  ModelParams p{.n = 48, .w = 3, .tau = 0.45, .p = 0.5};
  Rng init = Rng::stream(1001, 0);
  SchellingModel m(p, torus_graph(p.n, p.shape, p.w), init);
  ASSERT_TRUE(m.graph_mode());
  Rng dyn = Rng::stream(1001, 1);
  const RunResult r = run_glauber(m, dyn);
  EXPECT_TRUE(r.terminated);
  std::uint64_t h = hash_bytes(m.spins().data(), m.spins().size());
  h = mix(h, r.flips);
  h = mix_double(h, r.final_time);
  EXPECT_EQ(h, golden::kGlauber);
}

TEST(GraphDifferential, DiscreteGoldenBitwise) {
  ModelParams p{.n = 40, .w = 2, .tau = 0.55, .p = 0.5};
  Rng init = Rng::stream(1002, 0);
  SchellingModel m(p, torus_graph(p.n, p.shape, p.w), init);
  Rng dyn = Rng::stream(1002, 1);
  RunOptions opt;
  opt.max_flips = 3000;
  const RunResult r = run_discrete(m, dyn, opt);
  std::uint64_t h = hash_bytes(m.spins().data(), m.spins().size());
  h = mix(h, r.flips);
  h = mix_double(h, r.final_time);
  EXPECT_EQ(h, golden::kDiscrete);
}

TEST(GraphDifferential, AsymmetricVonNeumannGoldenBitwise) {
  ModelParams p{.n = 40, .w = 3, .tau = 0.4, .p = 0.5, .tau_minus = 0.55,
                .shape = NeighborhoodShape::kVonNeumann};
  Rng init = Rng::stream(1003, 0);
  SchellingModel m(p, torus_graph(p.n, p.shape, p.w), init);
  Rng dyn = Rng::stream(1003, 1);
  RunOptions opt;
  opt.max_flips = 4000;
  const RunResult r = run_glauber(m, dyn, opt);
  std::uint64_t h = hash_bytes(m.spins().data(), m.spins().size());
  h = mix(h, r.flips);
  h = mix_double(h, r.final_time);
  EXPECT_EQ(h, golden::kAsymVonNeumann);
}

TEST(GraphDifferential, SynchronousGoldenBitwise) {
  ModelParams p{.n = 32, .w = 2, .tau = 0.45, .p = 0.5};
  Rng init = Rng::stream(1004, 0);
  SchellingModel m(p, torus_graph(p.n, p.shape, p.w), init);
  const RunResult r = run_synchronous(m, 64);
  std::uint64_t h = hash_bytes(m.spins().data(), m.spins().size());
  h = mix(h, r.flips);
  h = mix(h, r.rounds);
  h = mix(h, r.cycle_detected ? 1 : 0);
  EXPECT_EQ(h, golden::kSynchronous);
}

TEST(GraphDifferential, ComfortGoldenBitwise) {
  ComfortParams p{.n = 40, .w = 2, .tau_lo = 0.4, .tau_hi = 0.8, .p = 0.5};
  Rng init = Rng::stream(1005, 0);
  const auto spins = random_spins(p.n, p.p, init);
  ComfortModel m(p, torus_graph(p.n, NeighborhoodShape::kMoore, p.w), spins);
  ASSERT_TRUE(m.graph_mode());
  Rng dyn = Rng::stream(1005, 1);
  const ComfortRunResult r = run_comfort(m, dyn, 5000);
  std::uint64_t h = hash_bytes(m.spins().data(), m.spins().size());
  h = mix(h, r.flips);
  h = mix_double(h, r.final_time);
  EXPECT_EQ(h, golden::kComfort);
}

TEST(GraphDifferential, KawasakiGoldenBitwise) {
  ModelParams p{.n = 32, .w = 2, .tau = 0.4, .p = 0.5};
  Rng init = Rng::stream(1007, 0);
  SchellingModel m(p, torus_graph(p.n, p.shape, p.w), init);
  Rng dyn = Rng::stream(1007, 1);
  KawasakiOptions opt;
  opt.max_swaps = 1500;
  const KawasakiResult r = run_kawasaki(m, dyn, opt);
  std::uint64_t h = hash_bytes(m.spins().data(), m.spins().size());
  h = mix(h, r.swaps);
  h = mix(h, r.proposals);
  EXPECT_EQ(h, golden::kKawasaki);
}

// ---- graph-partition sharding ----------------------------------------------

// One part is the serial graph engine, bitwise, on an irregular topology.
TEST(GraphDifferential, OnePartGlauberIsSerialBitwise) {
  ModelParams p{.tau = 0.35, .p = 0.5};
  const auto graph = std::make_shared<const GraphTopology>(
      GraphTopology::lollipop(/*clique=*/24, /*path=*/40));
  const std::uint64_t dyn_seed = 988001;

  Rng init_a = Rng::stream(3001, 0);
  const auto spins =
      random_spins_count(graph->node_count(), p.p, init_a);
  SchellingModel serial(p, graph, spins);
  Rng dyn = Rng::stream(dyn_seed, 0);
  RunOptions serial_opt;
  serial_opt.max_flips = 4000;
  const RunResult serial_run = run_glauber(serial, dyn, serial_opt);

  SchellingModel sharded(p, graph, spins,
                         GraphPartition::greedy_bfs(*graph, 1));
  ParallelOptions opt;
  opt.max_flips = 4000;
  const ParallelRunResult parallel_run =
      run_parallel_glauber(sharded, dyn_seed, opt);

  EXPECT_EQ(parallel_run.flips, serial_run.flips);
  EXPECT_EQ(parallel_run.final_time, serial_run.final_time);  // bitwise
  EXPECT_EQ(parallel_run.deferred, 0u);
  EXPECT_EQ(sharded.spins(), serial.spins());
  EXPECT_TRUE(sharded.check_invariants());
}

// k parts: thread-count invariant, boundary machinery exercised, exact
// invariants at the end — on each of the three non-torus families.
TEST(GraphDifferential, MultiPartGlauberInvariantAcrossThreadCounts) {
  ModelParams p{.tau = 0.4, .p = 0.5};
  const std::vector<Point> stencil =
      neighborhood_offsets(NeighborhoodShape::kMoore, 1);
  const auto topologies = {
      std::make_shared<const GraphTopology>(
          GraphTopology::lollipop(32, 96)),
      std::make_shared<const GraphTopology>(
          GraphTopology::random_regular(512, 8, /*seed=*/7)),
      std::make_shared<const GraphTopology>(
          GraphTopology::small_world(24, stencil, 0.1, /*seed=*/7)),
  };
  for (const auto& graph : topologies) {
    ASSERT_TRUE(graph->validate());
    const GraphPartition partition = GraphPartition::greedy_bfs(*graph, 4);
    EXPECT_GT(partition.boundary_site_count(), 0u);

    Rng init = Rng::stream(3002, 0);
    const auto spins =
        random_spins_count(graph->node_count(), p.p, init);

    std::uint64_t reference_hash = 0;
    ParallelRunResult reference;
    for (const std::size_t threads : {1u, 4u}) {
      SchellingModel model(p, graph, spins, partition);
      ParallelOptions opt;
      opt.threads = threads;
      opt.max_flips = 3000;
      const ParallelRunResult run =
          run_parallel_glauber(model, /*seed=*/988002, opt);
      EXPECT_TRUE(model.check_invariants());
      const auto field = model.spins();
      std::uint64_t h = hash_bytes(field.data(), field.size());
      h = mix(h, run.flips);
      h = mix(h, run.sweeps);
      if (threads == 1) {
        reference_hash = h;
        reference = run;
      } else {
        EXPECT_EQ(h, reference_hash);
        EXPECT_EQ(run.flips, reference.flips);
        EXPECT_EQ(run.deferred, reference.deferred);
        EXPECT_EQ(run.reconciled, reference.reconciled);
        EXPECT_EQ(run.final_time, reference.final_time);
      }
    }
  }
}

// The partition isolation guarantee phase A relies on, verified directly:
// a flip at a non-boundary node touches only nodes of its own part.
TEST(GraphDifferential, PartitionIsolationInvariant) {
  const auto graph = GraphTopology::random_regular(256, 6, /*seed=*/11);
  const GraphPartition partition = GraphPartition::greedy_bfs(graph, 4);
  for (std::uint32_t v = 0; v < graph.node_count(); ++v) {
    if (partition.boundary(v)) continue;
    const auto [row, len] = graph.row(v);
    for (int i = 0; i < len; ++i) {
      ASSERT_EQ(partition.part_of(row[i]), partition.part_of(v))
          << "interior node " << v << " reaches part-crossing neighbor "
          << row[i];
    }
  }
}

}  // namespace
}  // namespace seg
