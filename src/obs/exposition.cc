#include "obs/exposition.h"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "obs/telemetry.h"

namespace seg::obs {

namespace {

void append_u64(std::string* out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  *out += buf;
}

void append_i64(std::string* out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  *out += buf;
}

// Upper value bound of log2 bucket b (inclusive): 0 for the zero
// bucket, 2^b - 1 above it. Rendered exactly — the boundaries are
// integers, so the cumulative `le` labels stay precise.
std::uint64_t bucket_upper(int b) {
  if (b <= 0) return 0;
  if (b >= 64) return ~0ULL;
  return (1ULL << b) - 1;
}

// Midpoint of bucket b's value range, for the approximate _sum.
double bucket_mid(int b) {
  if (b <= 0) return 0.0;
  const double lo = std::ldexp(1.0, b - 1);
  return lo + (std::ldexp(1.0, b) - 1.0 - lo) / 2.0;
}

void render_histogram(std::string* out, const std::string& name,
                      const MetricSample& s) {
  std::uint64_t cum = 0;
  double approx_sum = 0.0;
  int top = -1;  // highest nonempty bucket
  for (int b = 0; b < static_cast<int>(s.buckets.size()); ++b) {
    if (s.buckets[static_cast<std::size_t>(b)] > 0) top = b;
  }
  // Every boundary up to the highest nonempty bucket is emitted (empty
  // buckets included) so consecutive scrapes keep a stable bucket
  // layout while the histogram grows only at the top.
  for (int b = 0; b <= top; ++b) {
    cum += s.buckets[static_cast<std::size_t>(b)];
    approx_sum += bucket_mid(b) *
                  static_cast<double>(s.buckets[static_cast<std::size_t>(b)]);
    *out += name + "_bucket{le=\"";
    append_u64(out, bucket_upper(b));
    *out += "\"} ";
    append_u64(out, cum);
    *out += '\n';
  }
  *out += name + "_bucket{le=\"+Inf\"} ";
  append_u64(out, s.histogram_count);
  *out += '\n';
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", approx_sum);
  *out += name + "_sum " + buf + "\n";
  *out += name + "_count ";
  append_u64(out, s.histogram_count);
  *out += '\n';
}

}  // namespace

std::string prometheus_name(const std::string& registry_name) {
  std::string out = "seg_";
  for (const char c : registry_name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string render_prometheus() {
  std::string out;
  out.reserve(4096);
  for (const MetricSample& s : Registry::instance().snapshot()) {
    const std::string name = prometheus_name(s.name);
    out += "# HELP " + name + " registry metric " + s.name;
    if (s.kind == MetricKind::kHistogram) {
      out += " (log2 buckets; _sum is a bucket-midpoint estimate)";
    }
    out += '\n';
    switch (s.kind) {
      case MetricKind::kCounter:
        out += "# TYPE " + name + " counter\n" + name + ' ';
        append_u64(&out, s.value);
        out += '\n';
        break;
      case MetricKind::kGauge:
        out += "# TYPE " + name + " gauge\n" + name + ' ';
        append_i64(&out, s.gauge);
        out += '\n';
        break;
      case MetricKind::kHistogram:
        out += "# TYPE " + name + " histogram\n";
        render_histogram(&out, name, s);
        break;
    }
  }
  return out;
}

}  // namespace seg::obs
